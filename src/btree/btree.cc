#include "btree/btree.h"

#include <algorithm>
#include <cstring>

namespace lruk {

namespace {

// Index of the first slot with slot.key >= key.
size_t LeafLowerBound(const BTreeLeafPage* leaf, uint64_t key) {
  size_t lo = 0;
  size_t hi = leaf->header.count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (leaf->slots[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child subtree that covers `key`: the number of separators <= key.
size_t ChildIndexFor(const BTreeInternalPage* node, uint64_t key) {
  size_t lo = 0;
  size_t hi = node->header.count;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (node->keys[mid] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BTree::BTree(PoolInterface* pool, BTreeOptions options, PageId root)
    : pool_(pool), options_(options), root_(root) {
  LRUK_ASSERT(pool_ != nullptr, "BTree needs a buffer pool");
  leaf_capacity_ = options.leaf_capacity == 0
                       ? kLeafPhysicalCapacity
                       : std::min(options.leaf_capacity, kLeafPhysicalCapacity);
  internal_capacity_ =
      options.internal_capacity == 0
          ? kInternalPhysicalCapacity
          : std::min(options.internal_capacity, kInternalPhysicalCapacity);
  LRUK_ASSERT(leaf_capacity_ >= 2, "leaf capacity must be at least 2");
  LRUK_ASSERT(internal_capacity_ >= 2, "internal capacity must be at least 2");
}

Result<PageGuard> BTree::NewLeaf() {
  auto guard = PageGuard::New(*pool_);
  if (!guard.ok()) return guard.status();
  auto* leaf = guard->AsMut<BTreeLeafPage>();
  leaf->header.type = BTreeNodeType::kLeaf;
  leaf->header.count = 0;
  leaf->next_leaf = kInvalidPageId;
  return guard;
}

Result<PageGuard> BTree::NewInternal() {
  auto guard = PageGuard::New(*pool_);
  if (!guard.ok()) return guard.status();
  auto* node = guard->AsMut<BTreeInternalPage>();
  node->header.type = BTreeNodeType::kInternal;
  node->header.count = 0;
  return guard;
}

Result<PageGuard> BTree::FindLeaf(uint64_t key, AccessType type) {
  if (root_ == kInvalidPageId) {
    return Status::NotFound("tree is empty");
  }
  auto guard = PageGuard::Fetch(*pool_, root_, type);
  if (!guard.ok()) return guard.status();
  PageGuard current = std::move(*guard);
  while (current.As<BTreeNodeHeader>()->type == BTreeNodeType::kInternal) {
    const auto* node = current.As<BTreeInternalPage>();
    PageId child = node->children[ChildIndexFor(node, key)];
    auto next = PageGuard::Fetch(*pool_, child, type);
    if (!next.ok()) return next.status();
    current = std::move(*next);  // Parent unpins here.
  }
  return current;
}

Status BTree::Insert(uint64_t key, uint64_t value) {
  if (root_ == kInvalidPageId) {
    auto guard = NewLeaf();
    if (!guard.ok()) return guard.status();
    auto* leaf = guard->AsMut<BTreeLeafPage>();
    leaf->slots[0] = {key, value};
    leaf->header.count = 1;
    root_ = guard->id();
    size_ = 1;
    return Status::Ok();
  }

  std::optional<SplitResult> split;
  LRUK_RETURN_IF_ERROR(InsertRec(root_, key, value, &split));
  ++size_;
  if (split.has_value()) {
    // Grow the tree: a new root over the old root and the split sibling.
    auto guard = NewInternal();
    if (!guard.ok()) return guard.status();
    auto* node = guard->AsMut<BTreeInternalPage>();
    node->keys[0] = split->separator;
    node->children[0] = root_;
    node->children[1] = split->right;
    node->header.count = 1;
    root_ = guard->id();
  }
  return Status::Ok();
}

Status BTree::InsertRec(PageId node_id, uint64_t key, uint64_t value,
                        std::optional<SplitResult>* split) {
  auto guard = PageGuard::Fetch(*pool_, node_id);
  if (!guard.ok()) return guard.status();

  if (guard->As<BTreeNodeHeader>()->type == BTreeNodeType::kLeaf) {
    const auto* leaf_ro = guard->As<BTreeLeafPage>();
    size_t pos = LeafLowerBound(leaf_ro, key);
    if (pos < leaf_ro->header.count && leaf_ro->slots[pos].key == key) {
      return Status::AlreadyExists("key " + std::to_string(key));
    }
    auto* leaf = guard->AsMut<BTreeLeafPage>();
    if (leaf->header.count < leaf_capacity_) {
      std::memmove(&leaf->slots[pos + 1], &leaf->slots[pos],
                   (leaf->header.count - pos) * sizeof(BTreeLeafPage::Slot));
      leaf->slots[pos] = {key, value};
      ++leaf->header.count;
      return Status::Ok();
    }

    // Leaf split: distribute count+1 slots across old (left) and new
    // (right) leaves via a merged temporary.
    std::vector<BTreeLeafPage::Slot> merged(leaf->header.count + 1);
    std::memcpy(merged.data(), leaf->slots, pos * sizeof(merged[0]));
    merged[pos] = {key, value};
    std::memcpy(merged.data() + pos + 1, &leaf->slots[pos],
                (leaf->header.count - pos) * sizeof(merged[0]));

    auto right_guard = NewLeaf();
    if (!right_guard.ok()) return right_guard.status();
    auto* right = right_guard->AsMut<BTreeLeafPage>();

    size_t left_count = merged.size() - merged.size() / 2;  // Ceil half.
    if (options_.pack_sequential_inserts &&
        leaf->next_leaf == kInvalidPageId && pos == leaf->header.count) {
      // Appending to the tail leaf: keep it packed, push only the new key
      // right (see BTreeOptions::pack_sequential_inserts).
      left_count = merged.size() - 1;
    }
    size_t right_count = merged.size() - left_count;
    std::memcpy(leaf->slots, merged.data(), left_count * sizeof(merged[0]));
    leaf->header.count = static_cast<uint32_t>(left_count);
    std::memcpy(right->slots, merged.data() + left_count,
                right_count * sizeof(merged[0]));
    right->header.count = static_cast<uint32_t>(right_count);
    right->next_leaf = leaf->next_leaf;
    leaf->next_leaf = right_guard->id();

    *split = SplitResult{right->slots[0].key, right_guard->id()};
    return Status::Ok();
  }

  // Internal node: descend, then absorb a possible child split.
  size_t child_index = ChildIndexFor(guard->As<BTreeInternalPage>(), key);
  PageId child = guard->As<BTreeInternalPage>()->children[child_index];
  std::optional<SplitResult> child_split;
  LRUK_RETURN_IF_ERROR(InsertRec(child, key, value, &child_split));
  if (!child_split.has_value()) return Status::Ok();

  auto* node = guard->AsMut<BTreeInternalPage>();
  if (node->header.count < internal_capacity_) {
    std::memmove(&node->keys[child_index + 1], &node->keys[child_index],
                 (node->header.count - child_index) * sizeof(uint64_t));
    std::memmove(&node->children[child_index + 2],
                 &node->children[child_index + 1],
                 (node->header.count - child_index) * sizeof(PageId));
    node->keys[child_index] = child_split->separator;
    node->children[child_index + 1] = child_split->right;
    ++node->header.count;
    return Status::Ok();
  }

  // Internal split: merge in the new separator, promote the middle key.
  size_t old_count = node->header.count;
  std::vector<uint64_t> keys(old_count + 1);
  std::vector<PageId> children(old_count + 2);
  std::memcpy(keys.data(), node->keys, child_index * sizeof(uint64_t));
  keys[child_index] = child_split->separator;
  std::memcpy(keys.data() + child_index + 1, &node->keys[child_index],
              (old_count - child_index) * sizeof(uint64_t));
  std::memcpy(children.data(), node->children,
              (child_index + 1) * sizeof(PageId));
  children[child_index + 1] = child_split->right;
  std::memcpy(children.data() + child_index + 2,
              &node->children[child_index + 1],
              (old_count - child_index) * sizeof(PageId));

  auto right_guard = NewInternal();
  if (!right_guard.ok()) return right_guard.status();
  auto* right = right_guard->AsMut<BTreeInternalPage>();

  size_t promote = keys.size() / 2;
  size_t left_keys = promote;
  size_t right_keys = keys.size() - promote - 1;

  std::memcpy(node->keys, keys.data(), left_keys * sizeof(uint64_t));
  std::memcpy(node->children, children.data(),
              (left_keys + 1) * sizeof(PageId));
  node->header.count = static_cast<uint32_t>(left_keys);

  std::memcpy(right->keys, keys.data() + promote + 1,
              right_keys * sizeof(uint64_t));
  std::memcpy(right->children, children.data() + promote + 1,
              (right_keys + 1) * sizeof(PageId));
  right->header.count = static_cast<uint32_t>(right_keys);

  *split = SplitResult{keys[promote], right_guard->id()};
  return Status::Ok();
}

Result<uint64_t> BTree::Get(uint64_t key) {
  auto leaf_guard = FindLeaf(key, AccessType::kRead);
  if (!leaf_guard.ok()) {
    if (leaf_guard.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("key " + std::to_string(key));
    }
    return leaf_guard.status();
  }
  const auto* leaf = leaf_guard->As<BTreeLeafPage>();
  size_t pos = LeafLowerBound(leaf, key);
  if (pos < leaf->header.count && leaf->slots[pos].key == key) {
    return leaf->slots[pos].value;
  }
  return Status::NotFound("key " + std::to_string(key));
}

Status BTree::Update(uint64_t key, uint64_t value) {
  // Traverse read-only; AsMut dirties just the leaf.
  auto leaf_guard = FindLeaf(key, AccessType::kRead);
  if (!leaf_guard.ok()) {
    if (leaf_guard.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("key " + std::to_string(key));
    }
    return leaf_guard.status();
  }
  const auto* leaf_ro = leaf_guard->As<BTreeLeafPage>();
  size_t pos = LeafLowerBound(leaf_ro, key);
  if (pos >= leaf_ro->header.count || leaf_ro->slots[pos].key != key) {
    return Status::NotFound("key " + std::to_string(key));
  }
  leaf_guard->AsMut<BTreeLeafPage>()->slots[pos].value = value;
  return Status::Ok();
}

Status BTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t key, uint64_t value)>& visit) {
  if (lo > hi) return Status::InvalidArgument("scan range is inverted");
  if (root_ == kInvalidPageId) return Status::Ok();
  auto leaf_guard = FindLeaf(lo, AccessType::kRead);
  if (!leaf_guard.ok()) return leaf_guard.status();
  PageGuard current = std::move(*leaf_guard);
  size_t pos = LeafLowerBound(current.As<BTreeLeafPage>(), lo);
  while (true) {
    const auto* leaf = current.As<BTreeLeafPage>();
    for (; pos < leaf->header.count; ++pos) {
      if (leaf->slots[pos].key > hi) return Status::Ok();
      if (!visit(leaf->slots[pos].key, leaf->slots[pos].value)) {
        return Status::Ok();
      }
    }
    if (leaf->next_leaf == kInvalidPageId) return Status::Ok();
    auto next = PageGuard::Fetch(*pool_, leaf->next_leaf);
    if (!next.ok()) return next.status();
    current = std::move(*next);
    pos = 0;
  }
}

Result<std::vector<std::pair<uint64_t, uint64_t>>> BTree::Range(uint64_t lo,
                                                                uint64_t hi) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  Status status = Scan(lo, hi, [&out](uint64_t k, uint64_t v) {
    out.emplace_back(k, v);
    return true;
  });
  if (!status.ok()) return status;
  return out;
}

Status BTree::Delete(uint64_t key) {
  if (root_ == kInvalidPageId) {
    return Status::NotFound("key " + std::to_string(key));
  }
  bool underflow = false;
  LRUK_RETURN_IF_ERROR(DeleteRec(root_, key, &underflow));
  --size_;

  // Root adjustments: an empty leaf root disappears; an internal root with
  // no separators collapses onto its only child.
  auto guard = PageGuard::Fetch(*pool_, root_);
  if (!guard.ok()) return guard.status();
  const auto* header = guard->As<BTreeNodeHeader>();
  if (header->type == BTreeNodeType::kLeaf) {
    if (header->count == 0) {
      PageId dead = root_;
      root_ = kInvalidPageId;
      guard->Release();
      return pool_->DeletePage(dead);
    }
  } else if (header->count == 0) {
    PageId dead = root_;
    root_ = guard->As<BTreeInternalPage>()->children[0];
    guard->Release();
    return pool_->DeletePage(dead);
  }
  return Status::Ok();
}

Status BTree::DeleteRec(PageId node_id, uint64_t key, bool* underflow) {
  auto guard = PageGuard::Fetch(*pool_, node_id);
  if (!guard.ok()) return guard.status();

  if (guard->As<BTreeNodeHeader>()->type == BTreeNodeType::kLeaf) {
    const auto* leaf_ro = guard->As<BTreeLeafPage>();
    size_t pos = LeafLowerBound(leaf_ro, key);
    if (pos >= leaf_ro->header.count || leaf_ro->slots[pos].key != key) {
      return Status::NotFound("key " + std::to_string(key));
    }
    auto* leaf = guard->AsMut<BTreeLeafPage>();
    std::memmove(&leaf->slots[pos], &leaf->slots[pos + 1],
                 (leaf->header.count - pos - 1) * sizeof(BTreeLeafPage::Slot));
    --leaf->header.count;
    *underflow = leaf->header.count < LeafMin();
    return Status::Ok();
  }

  size_t child_index = ChildIndexFor(guard->As<BTreeInternalPage>(), key);
  PageId child = guard->As<BTreeInternalPage>()->children[child_index];
  bool child_underflow = false;
  LRUK_RETURN_IF_ERROR(DeleteRec(child, key, &child_underflow));
  if (child_underflow) {
    auto* node = guard->AsMut<BTreeInternalPage>();
    LRUK_RETURN_IF_ERROR(
        RebalanceChild(node, *guard, child_index, underflow));
  } else {
    *underflow = false;
  }
  return Status::Ok();
}

Status BTree::RebalanceChild(BTreeInternalPage* parent,
                             PageGuard& /*parent_guard*/, size_t child_index,
                             bool* parent_underflow) {
  // Prefer the left sibling (merge target convention: merge into the left
  // node of the pair).
  size_t left_index = child_index > 0 ? child_index - 1 : child_index;
  size_t right_index = left_index + 1;
  LRUK_ASSERT(right_index <= parent->header.count,
              "rebalance needs two children");

  auto left_guard = PageGuard::Fetch(*pool_, parent->children[left_index]);
  if (!left_guard.ok()) return left_guard.status();
  auto right_guard = PageGuard::Fetch(*pool_, parent->children[right_index]);
  if (!right_guard.ok()) return right_guard.status();

  size_t sep = left_index;  // parent->keys[sep] separates the pair.
  bool is_leaf =
      left_guard->As<BTreeNodeHeader>()->type == BTreeNodeType::kLeaf;

  if (is_leaf) {
    auto* left = left_guard->AsMut<BTreeLeafPage>();
    auto* right = right_guard->AsMut<BTreeLeafPage>();
    bool child_is_left = child_index == left_index;

    if (child_is_left && right->header.count > LeafMin()) {
      // Borrow the right sibling's first slot.
      left->slots[left->header.count] = right->slots[0];
      ++left->header.count;
      std::memmove(&right->slots[0], &right->slots[1],
                   (right->header.count - 1) * sizeof(BTreeLeafPage::Slot));
      --right->header.count;
      parent->keys[sep] = right->slots[0].key;
      *parent_underflow = false;
      return Status::Ok();
    }
    if (!child_is_left && left->header.count > LeafMin()) {
      // Borrow the left sibling's last slot.
      std::memmove(&right->slots[1], &right->slots[0],
                   right->header.count * sizeof(BTreeLeafPage::Slot));
      right->slots[0] = left->slots[left->header.count - 1];
      ++right->header.count;
      --left->header.count;
      parent->keys[sep] = right->slots[0].key;
      *parent_underflow = false;
      return Status::Ok();
    }

    // Merge right into left.
    std::memcpy(&left->slots[left->header.count], right->slots,
                right->header.count * sizeof(BTreeLeafPage::Slot));
    left->header.count += right->header.count;
    left->next_leaf = right->next_leaf;
  } else {
    auto* left = left_guard->AsMut<BTreeInternalPage>();
    auto* right = right_guard->AsMut<BTreeInternalPage>();
    bool child_is_left = child_index == left_index;

    if (child_is_left && right->header.count > InternalMin()) {
      // Rotate left through the parent separator.
      left->keys[left->header.count] = parent->keys[sep];
      left->children[left->header.count + 1] = right->children[0];
      ++left->header.count;
      parent->keys[sep] = right->keys[0];
      std::memmove(&right->keys[0], &right->keys[1],
                   (right->header.count - 1) * sizeof(uint64_t));
      std::memmove(&right->children[0], &right->children[1],
                   right->header.count * sizeof(PageId));
      --right->header.count;
      *parent_underflow = false;
      return Status::Ok();
    }
    if (!child_is_left && left->header.count > InternalMin()) {
      // Rotate right through the parent separator.
      std::memmove(&right->keys[1], &right->keys[0],
                   right->header.count * sizeof(uint64_t));
      std::memmove(&right->children[1], &right->children[0],
                   (right->header.count + 1) * sizeof(PageId));
      right->keys[0] = parent->keys[sep];
      right->children[0] = left->children[left->header.count];
      ++right->header.count;
      parent->keys[sep] = left->keys[left->header.count - 1];
      --left->header.count;
      *parent_underflow = false;
      return Status::Ok();
    }

    // Merge right into left, pulling the separator down.
    left->keys[left->header.count] = parent->keys[sep];
    std::memcpy(&left->keys[left->header.count + 1], right->keys,
                right->header.count * sizeof(uint64_t));
    std::memcpy(&left->children[left->header.count + 1], right->children,
                (right->header.count + 1) * sizeof(PageId));
    left->header.count += right->header.count + 1;
  }

  // Remove the separator and the right child from the parent.
  PageId dead = right_guard->id();
  right_guard->Release();
  left_guard->Release();
  std::memmove(&parent->keys[sep], &parent->keys[sep + 1],
               (parent->header.count - sep - 1) * sizeof(uint64_t));
  std::memmove(&parent->children[right_index],
               &parent->children[right_index + 1],
               (parent->header.count - right_index) * sizeof(PageId));
  --parent->header.count;
  *parent_underflow = parent->header.count < InternalMin();
  return pool_->DeletePage(dead);
}

Status BTree::CheckRec(PageId node_id, uint64_t lo, uint64_t hi, int depth,
                       int* leaf_depth, PageId* prev_leaf, uint64_t* prev_key,
                       bool is_root) {
  auto guard = PageGuard::Fetch(*pool_, node_id);
  if (!guard.ok()) return guard.status();
  const auto* header = guard->As<BTreeNodeHeader>();

  if (header->type == BTreeNodeType::kLeaf) {
    const auto* leaf = guard->As<BTreeLeafPage>();
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at different depths");
    }
    // The tail leaf may be underfull when pack_sequential_inserts is on
    // (bulk-load convention); every other non-root leaf honors the minimum.
    bool is_tail = leaf->next_leaf == kInvalidPageId;
    if (!is_root && !is_tail && leaf->header.count < LeafMin()) {
      return Status::Internal("leaf below minimum occupancy");
    }
    if (leaf->header.count > leaf_capacity_) {
      return Status::Internal("leaf above capacity");
    }
    for (size_t i = 0; i < leaf->header.count; ++i) {
      uint64_t k = leaf->slots[i].key;
      if (k < lo || k > hi) return Status::Internal("leaf key out of bounds");
      if (i > 0 && leaf->slots[i - 1].key >= k) {
        return Status::Internal("leaf keys not strictly ascending");
      }
      if (*prev_leaf != kInvalidPageId || i > 0) {
        if (*prev_key >= k) {
          return Status::Internal("global key order violated");
        }
      }
      *prev_key = k;
    }
    // The in-order predecessor leaf must chain to this one.
    if (*prev_leaf != kInvalidPageId) {
      auto prev_guard = PageGuard::Fetch(*pool_, *prev_leaf);
      if (!prev_guard.ok()) return prev_guard.status();
      if (prev_guard->As<BTreeLeafPage>()->next_leaf != node_id) {
        return Status::Internal("broken leaf sibling chain");
      }
    }
    *prev_leaf = node_id;
    return Status::Ok();
  }

  if (header->type != BTreeNodeType::kInternal) {
    return Status::Internal("node with invalid type tag");
  }
  const auto* node = guard->As<BTreeInternalPage>();
  if (!is_root && node->header.count < InternalMin()) {
    return Status::Internal("internal node below minimum occupancy");
  }
  if (is_root && node->header.count < 1) {
    return Status::Internal("internal root without separators");
  }
  if (node->header.count > internal_capacity_) {
    return Status::Internal("internal node above capacity");
  }
  for (size_t i = 0; i < node->header.count; ++i) {
    uint64_t k = node->keys[i];
    if (k < lo || k > hi) {
      return Status::Internal("separator out of bounds");
    }
    if (i > 0 && node->keys[i - 1] >= k) {
      return Status::Internal("separators not strictly ascending");
    }
  }
  // Copy what recursion needs before the guard is released.
  uint32_t count = node->header.count;
  std::vector<uint64_t> keys(node->keys, node->keys + count);
  std::vector<PageId> children(node->children, node->children + count + 1);
  guard->Release();

  for (size_t i = 0; i <= count; ++i) {
    uint64_t child_lo = i == 0 ? lo : keys[i - 1];
    uint64_t child_hi = i == count ? hi : keys[i] - 1;
    LRUK_RETURN_IF_ERROR(CheckRec(children[i], child_lo, child_hi, depth + 1,
                                  leaf_depth, prev_leaf, prev_key,
                                  /*is_root=*/false));
  }
  return Status::Ok();
}

Status BTree::CheckInvariants() {
  if (root_ == kInvalidPageId) {
    return size_ == 0 ? Status::Ok()
                      : Status::Internal("empty tree with nonzero size");
  }
  int leaf_depth = -1;
  PageId prev_leaf = kInvalidPageId;
  uint64_t prev_key = 0;
  LRUK_RETURN_IF_ERROR(CheckRec(root_, 0, UINT64_MAX, 0, &leaf_depth,
                                &prev_leaf, &prev_key, /*is_root=*/true));
  // The final leaf must terminate the chain.
  if (prev_leaf != kInvalidPageId) {
    auto guard = PageGuard::Fetch(*pool_, prev_leaf);
    if (!guard.ok()) return guard.status();
    if (guard->As<BTreeLeafPage>()->next_leaf != kInvalidPageId) {
      return Status::Internal("leaf chain extends past the last leaf");
    }
  }
  return Status::Ok();
}

Result<uint64_t> BTree::CountPages() {
  if (root_ == kInvalidPageId) return uint64_t{0};
  uint64_t count = 0;
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    ++count;
    auto guard = PageGuard::Fetch(*pool_, id);
    if (!guard.ok()) return guard.status();
    const auto* header = guard->As<BTreeNodeHeader>();
    if (header->type == BTreeNodeType::kInternal) {
      const auto* node = guard->As<BTreeInternalPage>();
      for (size_t i = 0; i <= node->header.count; ++i) {
        stack.push_back(node->children[i]);
      }
    }
  }
  return count;
}

Result<std::vector<PageId>> BTree::LeafPageIds() {
  std::vector<PageId> out;
  if (root_ == kInvalidPageId) return out;
  // Walk down the leftmost spine, then follow the sibling chain.
  PageId current = root_;
  while (true) {
    auto guard = PageGuard::Fetch(*pool_, current);
    if (!guard.ok()) return guard.status();
    if (guard->As<BTreeNodeHeader>()->type == BTreeNodeType::kLeaf) break;
    current = guard->As<BTreeInternalPage>()->children[0];
  }
  while (current != kInvalidPageId) {
    out.push_back(current);
    auto guard = PageGuard::Fetch(*pool_, current);
    if (!guard.ok()) return guard.status();
    current = guard->As<BTreeLeafPage>()->next_leaf;
  }
  return out;
}

}  // namespace lruk
