// Disk-page B+tree over variable-length byte-string keys (uint64 values),
// on the buffer pool — the general-purpose sibling of the fixed-key BTree.
// Where BTree matches Example 1.1's integer CUST-ID geometry exactly, this
// tree serves the paper's broader setting (Section 5's "post-relational"
// databases) where keys are strings and entries vary in size.
//
// Node layout (within the 4 KiB frame): a slot directory grows from the
// head, key bytes (plus an 8-byte value on leaves / a child PageId on
// internals) are allocated from the tail, and the slot directory is kept
// sorted by key so lookups binary-search the slots.
//
// Deletes are lazy, PostgreSQL-nbtree-style: an entry is removed from its
// leaf but nodes are never merged or rebalanced; underfull (even empty)
// leaves simply persist until the tree is rebuilt offline. Inserts split
// nodes by entry count, which always fits because a single entry is
// bounded by kMaxKeySize + overhead (enforced at Insert).

#ifndef LRUK_BTREE_STRING_BTREE_H_
#define LRUK_BTREE_STRING_BTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bufferpool/pool_interface.h"
#include "bufferpool/page_guard.h"
#include "util/status.h"

namespace lruk {

class StringBTree {
 public:
  // Largest accepted key, chosen so any four entries fit in a node.
  static constexpr size_t kMaxKeySize = 512;

  // `pool` must outlive the tree; pass `root` to re-attach.
  explicit StringBTree(PoolInterface* pool, PageId root = kInvalidPageId);
  LRUK_DISALLOW_COPY_AND_MOVE(StringBTree);

  // Inserts a new key. kAlreadyExists if present; kInvalidArgument for an
  // empty or oversized key.
  Status Insert(std::string_view key, uint64_t value);

  // Point lookup. kNotFound if absent.
  Result<uint64_t> Get(std::string_view key);

  // Overwrites an existing key's value. kNotFound if absent.
  Status Update(std::string_view key, uint64_t value);

  // Removes a key (lazy: no rebalancing). kNotFound if absent.
  Status Delete(std::string_view key);

  // Visits pairs with lo <= key <= hi in ascending key order; the visitor
  // returns false to stop.
  Status Scan(std::string_view lo, std::string_view hi,
              const std::function<bool(std::string_view, uint64_t)>& visit);

  uint64_t Size() const { return size_; }
  bool Empty() const { return root_ == kInvalidPageId; }
  PageId RootPageId() const { return root_; }

  // Structural self-check: slot order, in-node sortedness, separator
  // bounds, uniform leaf depth, sibling chain. Returns the first
  // violation.
  Status CheckInvariants();

 private:
  struct SplitResult {
    std::string separator;  // Smallest key of the new right node.
    PageId right;
  };

  Result<PageGuard> NewNode(bool leaf);
  Status InsertRec(PageId node, std::string_view key, uint64_t value,
                   std::optional<SplitResult>* split);
  // Returns the leaf that would contain `key`.
  Result<PageGuard> FindLeaf(std::string_view key, AccessType type);

  Status CheckRec(PageId node, std::string_view lo,
                  std::optional<std::string> hi, int depth, int* leaf_depth,
                  PageId* prev_leaf, std::string* prev_key);

  PoolInterface* pool_;
  PageId root_;
  uint64_t size_ = 0;
};

}  // namespace lruk

#endif  // LRUK_BTREE_STRING_BTREE_H_
