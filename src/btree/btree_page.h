// On-page layouts for the disk B+tree. Both node kinds are plain trivially
// copyable structs interpreted over the 4 KiB page image.

#ifndef LRUK_BTREE_BTREE_PAGE_H_
#define LRUK_BTREE_BTREE_PAGE_H_

#include <cstdint>

#include "core/types.h"
#include "storage/disk_manager.h"

namespace lruk {

enum class BTreeNodeType : uint32_t {
  kInvalid = 0,
  kLeaf = 1,
  kInternal = 2,
};

struct BTreeNodeHeader {
  BTreeNodeType type;
  uint32_t count;  // Leaf: slots used. Internal: separator keys (children
                   // in use = count + 1).
};

// Physical capacities derived from the page size.
inline constexpr size_t kLeafSlotSize = 2 * sizeof(uint64_t);
inline constexpr size_t kLeafHeaderSize =
    sizeof(BTreeNodeHeader) + sizeof(PageId);
inline constexpr size_t kLeafPhysicalCapacity =
    (kPageSize - kLeafHeaderSize) / kLeafSlotSize;

inline constexpr size_t kInternalHeaderSize =
    sizeof(BTreeNodeHeader) + sizeof(PageId);  // Header + extra child slot.
inline constexpr size_t kInternalPhysicalCapacity =
    (kPageSize - kInternalHeaderSize) / (sizeof(uint64_t) + sizeof(PageId));

struct BTreeLeafPage {
  struct Slot {
    uint64_t key;
    uint64_t value;
  };

  BTreeNodeHeader header;
  PageId next_leaf;  // Right sibling, kInvalidPageId at the rightmost leaf.
  Slot slots[kLeafPhysicalCapacity];
};
static_assert(sizeof(BTreeLeafPage) <= kPageSize);

struct BTreeInternalPage {
  BTreeNodeHeader header;
  uint64_t keys[kInternalPhysicalCapacity];
  // children[i] holds keys < keys[i]; children[count] holds the rest.
  PageId children[kInternalPhysicalCapacity + 1];
};
static_assert(sizeof(BTreeInternalPage) <= kPageSize);

}  // namespace lruk

#endif  // LRUK_BTREE_BTREE_PAGE_H_
