// A disk-page B+tree (uint64 keys -> uint64 values) living entirely on top
// of the BufferPool, so every tree operation generates the index/record
// reference pattern of the paper's Example 1.1 through the replacement
// policy under test.
//
// Features: point insert (duplicate keys rejected), point lookup, delete
// with borrow/merge rebalancing, ordered range scans via the leaf sibling
// chain, and an invariant checker used by the tests.
//
// Node capacities default to what a 4 KiB page can physically hold but can
// be lowered (BTreeOptions) to reproduce specific geometries — Example 1.1
// packs 200 index entries per leaf, giving exactly 100 leaves for 20,000
// records.
//
// The root page id lives in the BTree object; callers that persist the
// database re-attach with the `root` constructor argument.

#ifndef LRUK_BTREE_BTREE_H_
#define LRUK_BTREE_BTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bufferpool/pool_interface.h"
#include "bufferpool/page_guard.h"
#include "btree/btree_page.h"
#include "util/status.h"

namespace lruk {

struct BTreeOptions {
  // 0 = use the physical page capacity. Values are clamped to it.
  size_t leaf_capacity = 0;
  size_t internal_capacity = 0;
  // Rightmost-leaf split optimization: when an insert appends past the end
  // of the rightmost (tail) leaf, keep that leaf full and start the new
  // leaf with just the appended key. Ascending loads then produce packed
  // leaves (Example 1.1's "packed full" pages: 20,000 keys at 200 per leaf
  // = exactly 100 leaves) instead of half-full ones. The tail leaf is
  // exempt from the minimum-occupancy invariant, as in bulk-loaded trees.
  bool pack_sequential_inserts = true;
};

class BTree {
 public:
  // `pool` must outlive the tree. Pass `root` to re-attach to an existing
  // tree; kInvalidPageId starts empty.
  explicit BTree(PoolInterface* pool, BTreeOptions options = {},
                 PageId root = kInvalidPageId);
  LRUK_DISALLOW_COPY_AND_MOVE(BTree);

  // Inserts a new key. kAlreadyExists if the key is present.
  Status Insert(uint64_t key, uint64_t value);

  // Looks a key up. kNotFound if absent.
  Result<uint64_t> Get(uint64_t key);

  // Overwrites an existing key's value in place. kNotFound if absent.
  Status Update(uint64_t key, uint64_t value);

  // Removes a key. kNotFound if absent.
  Status Delete(uint64_t key);

  // Visits all pairs with lo <= key <= hi in ascending order. The visitor
  // returns false to stop early.
  Status Scan(uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t key, uint64_t value)>& visit);

  // Collects a bounded range into a vector (convenience over Scan).
  Result<std::vector<std::pair<uint64_t, uint64_t>>> Range(uint64_t lo,
                                                           uint64_t hi);

  uint64_t Size() const { return size_; }
  bool Empty() const { return root_ == kInvalidPageId; }
  PageId RootPageId() const { return root_; }

  // Structural self-check: key order, occupancy bounds, uniform depth,
  // child separation, leaf chain consistency. Returns the first violation.
  Status CheckInvariants();

  // Number of tree pages (leaves + internals); walks the tree.
  Result<uint64_t> CountPages();

  // Page ids of every leaf, left to right (benches classify buffer
  // composition with this).
  Result<std::vector<PageId>> LeafPageIds();

  size_t leaf_capacity() const { return leaf_capacity_; }
  size_t internal_capacity() const { return internal_capacity_; }

 private:
  struct SplitResult {
    uint64_t separator;
    PageId right;
  };

  Result<PageGuard> NewLeaf();
  Result<PageGuard> NewInternal();

  // Descends for lookup; returns the leaf guard containing key's position.
  Result<PageGuard> FindLeaf(uint64_t key, AccessType type);

  // Recursive insert. On split, fills `*split` with the new right sibling.
  Status InsertRec(PageId node, uint64_t key, uint64_t value,
                   std::optional<SplitResult>* split);

  // Recursive delete. Sets `*underflow` when the node dropped below its
  // minimum occupancy and needs parent-side rebalancing.
  Status DeleteRec(PageId node, uint64_t key, bool* underflow);

  // Rebalances `parent`'s child at `child_index` (which underflowed) by
  // borrowing from or merging with a sibling.
  Status RebalanceChild(BTreeInternalPage* parent, PageGuard& parent_guard,
                        size_t child_index, bool* parent_underflow);

  Status CheckRec(PageId node, uint64_t lo, uint64_t hi, int depth,
                  int* leaf_depth, PageId* prev_leaf, uint64_t* prev_key,
                  bool is_root);

  size_t LeafMin() const { return leaf_capacity_ / 2; }
  size_t InternalMin() const { return internal_capacity_ / 2; }

  PoolInterface* pool_;
  BTreeOptions options_;
  size_t leaf_capacity_;
  size_t internal_capacity_;
  PageId root_;
  uint64_t size_ = 0;
};

}  // namespace lruk

#endif  // LRUK_BTREE_BTREE_H_
