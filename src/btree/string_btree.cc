#include "btree/string_btree.h"

#include <cstring>

namespace lruk {

namespace {

constexpr uint32_t kLeafType = 1;
constexpr uint32_t kInternalType = 2;

struct NodeHeader {
  uint32_t type;
  uint32_t count;
  uint32_t free_start;  // Lowest byte offset used by entry data.
  uint32_t padding;
  // Leaf: right-sibling page. Internal: leftmost child (keys below every
  // separator).
  PageId link;
};

struct NodeSlot {
  uint16_t offset;
  uint16_t key_len;
};

// PageGuard's non-const Data() marks the guard dirty; these make the
// intent explicit so read-only traversals stay clean.
const char* ReadData(const PageGuard& guard) { return guard.Data(); }
char* MutData(PageGuard& guard) { return guard.Data(); }

NodeHeader* Header(char* data) { return reinterpret_cast<NodeHeader*>(data); }
const NodeHeader* Header(const char* data) {
  return reinterpret_cast<const NodeHeader*>(data);
}
NodeSlot* Slots(char* data) {
  return reinterpret_cast<NodeSlot*>(data + sizeof(NodeHeader));
}
const NodeSlot* Slots(const char* data) {
  return reinterpret_cast<const NodeSlot*>(data + sizeof(NodeHeader));
}

std::string_view KeyAt(const char* data, uint32_t slot) {
  const NodeSlot& s = Slots(data)[slot];
  return std::string_view(data + s.offset, s.key_len);
}

// The 8-byte payload following the key: a value (leaf) or child (internal).
uint64_t PayloadAt(const char* data, uint32_t slot) {
  const NodeSlot& s = Slots(data)[slot];
  uint64_t value;
  std::memcpy(&value, data + s.offset + s.key_len, sizeof(value));
  return value;
}

void SetPayloadAt(char* data, uint32_t slot, uint64_t value) {
  NodeSlot& s = Slots(data)[slot];
  std::memcpy(data + s.offset + s.key_len, &value, sizeof(value));
}

// First slot whose key is >= `key`.
uint32_t LowerBound(const char* data, std::string_view key) {
  uint32_t lo = 0;
  uint32_t hi = Header(data)->count;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (KeyAt(data, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child subtree of an internal node covering `key`: separators are the
// smallest keys of their subtrees, so take the last separator <= key.
PageId ChildFor(const char* data, std::string_view key) {
  uint32_t idx = LowerBound(data, key);
  const NodeHeader* header = Header(data);
  if (idx < header->count && KeyAt(data, idx) == key) {
    return static_cast<PageId>(PayloadAt(data, idx));
  }
  if (idx == 0) return header->link;
  return static_cast<PageId>(PayloadAt(data, idx - 1));
}

size_t DirectoryEnd(uint32_t count) {
  return sizeof(NodeHeader) + count * sizeof(NodeSlot);
}

bool Fits(const char* data, size_t key_len) {
  const NodeHeader* header = Header(data);
  return DirectoryEnd(header->count + 1) + key_len + sizeof(uint64_t) <=
         header->free_start;
}

// Rewrites entry data flush against the page end (reclaims delete holes).
void CompactNode(char* data) {
  NodeHeader* header = Header(data);
  NodeSlot* slots = Slots(data);
  std::vector<std::string> entries(header->count);
  for (uint32_t i = 0; i < header->count; ++i) {
    entries[i].assign(data + slots[i].offset,
                      slots[i].key_len + sizeof(uint64_t));
  }
  uint32_t cursor = kPageSize;
  for (uint32_t i = 0; i < header->count; ++i) {
    cursor -= static_cast<uint32_t>(entries[i].size());
    std::memcpy(data + cursor, entries[i].data(), entries[i].size());
    slots[i].offset = static_cast<uint16_t>(cursor);
  }
  header->free_start = cursor;
}

// Inserts (key, payload) at slot position `pos`; the caller has verified
// Fits() (possibly after CompactNode).
void InsertEntry(char* data, uint32_t pos, std::string_view key,
                 uint64_t payload) {
  NodeHeader* header = Header(data);
  NodeSlot* slots = Slots(data);
  std::memmove(&slots[pos + 1], &slots[pos],
               (header->count - pos) * sizeof(NodeSlot));
  header->free_start -=
      static_cast<uint32_t>(key.size() + sizeof(uint64_t));
  std::memcpy(data + header->free_start, key.data(), key.size());
  std::memcpy(data + header->free_start + key.size(), &payload,
              sizeof(payload));
  slots[pos].offset = static_cast<uint16_t>(header->free_start);
  slots[pos].key_len = static_cast<uint16_t>(key.size());
  ++header->count;
}

void RemoveEntry(char* data, uint32_t pos) {
  NodeHeader* header = Header(data);
  NodeSlot* slots = Slots(data);
  std::memmove(&slots[pos], &slots[pos + 1],
               (header->count - pos - 1) * sizeof(NodeSlot));
  --header->count;
  // Data bytes become a hole; CompactNode reclaims them when needed.
}

}  // namespace

StringBTree::StringBTree(PoolInterface* pool, PageId root)
    : pool_(pool), root_(root) {
  LRUK_ASSERT(pool_ != nullptr, "StringBTree needs a buffer pool");
  if (root_ == kInvalidPageId) return;
  // Re-attach: count live entries by walking the leaf chain.
  PageId current = root_;
  while (true) {
    auto guard = PageGuard::Fetch(*pool_, current);
    LRUK_ASSERT(guard.ok(), "tree page unreadable");
    if (Header(ReadData(*guard))->type == kLeafType) break;
    current = Header(ReadData(*guard))->link;
  }
  while (current != kInvalidPageId) {
    auto guard = PageGuard::Fetch(*pool_, current);
    LRUK_ASSERT(guard.ok(), "leaf chain page unreadable");
    size_ += Header(ReadData(*guard))->count;
    current = Header(ReadData(*guard))->link;
  }
}

Result<PageGuard> StringBTree::NewNode(bool leaf) {
  auto guard = PageGuard::New(*pool_);
  if (!guard.ok()) return guard.status();
  NodeHeader* header = Header(MutData(*guard));
  header->type = leaf ? kLeafType : kInternalType;
  header->count = 0;
  header->free_start = kPageSize;
  header->link = kInvalidPageId;
  return guard;
}

Result<PageGuard> StringBTree::FindLeaf(std::string_view key,
                                        AccessType type) {
  if (root_ == kInvalidPageId) return Status::NotFound("tree is empty");
  auto guard = PageGuard::Fetch(*pool_, root_, type);
  if (!guard.ok()) return guard.status();
  PageGuard current = std::move(*guard);
  while (Header(ReadData(current))->type == kInternalType) {
    PageId child = ChildFor(ReadData(current), key);
    auto next = PageGuard::Fetch(*pool_, child, type);
    if (!next.ok()) return next.status();
    current = std::move(*next);
  }
  return current;
}

Status StringBTree::Insert(std::string_view key, uint64_t value) {
  if (key.empty() || key.size() > kMaxKeySize) {
    return Status::InvalidArgument("key must be 1.." +
                                   std::to_string(kMaxKeySize) + " bytes");
  }
  if (root_ == kInvalidPageId) {
    auto guard = NewNode(/*leaf=*/true);
    if (!guard.ok()) return guard.status();
    InsertEntry(MutData(*guard), 0, key, value);
    root_ = guard->id();
    size_ = 1;
    return Status::Ok();
  }
  std::optional<SplitResult> split;
  LRUK_RETURN_IF_ERROR(InsertRec(root_, key, value, &split));
  ++size_;
  if (split.has_value()) {
    auto guard = NewNode(/*leaf=*/false);
    if (!guard.ok()) return guard.status();
    Header(MutData(*guard))->link = root_;
    InsertEntry(MutData(*guard), 0, split->separator, split->right);
    root_ = guard->id();
  }
  return Status::Ok();
}

Status StringBTree::InsertRec(PageId node_id, std::string_view key,
                              uint64_t value,
                              std::optional<SplitResult>* split) {
  auto guard = PageGuard::Fetch(*pool_, node_id);
  if (!guard.ok()) return guard.status();

  if (Header(ReadData(*guard))->type == kInternalType) {
    PageId child = ChildFor(ReadData(*guard), key);
    std::optional<SplitResult> child_split;
    LRUK_RETURN_IF_ERROR(InsertRec(child, key, value, &child_split));
    if (!child_split.has_value()) return Status::Ok();
    // Absorb the child's split: insert (separator -> right child).
    char* data = MutData(*guard);
    uint32_t pos = LowerBound(data, child_split->separator);
    if (!Fits(data, child_split->separator.size())) CompactNode(data);
    if (Fits(data, child_split->separator.size())) {
      InsertEntry(data, pos, child_split->separator, child_split->right);
      return Status::Ok();
    }
    // Internal split: move the upper half of separators to a new node,
    // promoting the middle separator (it becomes the new node's link).
    auto right_guard = NewNode(/*leaf=*/false);
    if (!right_guard.ok()) return right_guard.status();
    char* right = MutData(*right_guard);
    NodeHeader* header = Header(data);
    uint32_t mid = header->count / 2;
    std::string promoted(KeyAt(data, mid));
    Header(right)->link = static_cast<PageId>(PayloadAt(data, mid));
    for (uint32_t i = mid + 1; i < header->count; ++i) {
      InsertEntry(right, Header(right)->count, KeyAt(data, i),
                  PayloadAt(data, i));
    }
    header->count = mid;  // Drops [mid..] incl. the promoted separator.
    CompactNode(data);
    // Route the pending separator to the correct half.
    if (child_split->separator < promoted) {
      InsertEntry(data, LowerBound(data, child_split->separator),
                  child_split->separator, child_split->right);
    } else {
      InsertEntry(right, LowerBound(right, child_split->separator),
                  child_split->separator, child_split->right);
    }
    *split = SplitResult{std::move(promoted), right_guard->id()};
    return Status::Ok();
  }

  // Leaf.
  {
    const char* rdata = ReadData(*guard);
    uint32_t pos = LowerBound(rdata, key);
    if (pos < Header(rdata)->count && KeyAt(rdata, pos) == key) {
      return Status::AlreadyExists("duplicate key");
    }
  }
  char* data = MutData(*guard);
  if (!Fits(data, key.size())) CompactNode(data);
  if (Fits(data, key.size())) {
    InsertEntry(data, LowerBound(data, key), key, value);
    return Status::Ok();
  }
  // Leaf split by entry count; the new key goes to whichever half covers
  // it afterwards.
  auto right_guard = NewNode(/*leaf=*/true);
  if (!right_guard.ok()) return right_guard.status();
  char* right = MutData(*right_guard);
  NodeHeader* header = Header(data);
  uint32_t mid = header->count / 2;
  for (uint32_t i = mid; i < header->count; ++i) {
    InsertEntry(right, Header(right)->count, KeyAt(data, i),
                PayloadAt(data, i));
  }
  Header(right)->link = header->link;
  header->link = right_guard->id();
  header->count = mid;
  CompactNode(data);

  std::string separator(KeyAt(right, 0));
  if (key < separator) {
    InsertEntry(data, LowerBound(data, key), key, value);
  } else {
    InsertEntry(right, LowerBound(right, key), key, value);
  }
  *split = SplitResult{std::move(separator), right_guard->id()};
  return Status::Ok();
}

Result<uint64_t> StringBTree::Get(std::string_view key) {
  auto leaf = FindLeaf(key, AccessType::kRead);
  if (!leaf.ok()) return Status::NotFound("key not found");
  const char* data = ReadData(*leaf);
  uint32_t pos = LowerBound(data, key);
  if (pos < Header(data)->count && KeyAt(data, pos) == key) {
    return PayloadAt(data, pos);
  }
  return Status::NotFound("key not found");
}

Status StringBTree::Update(std::string_view key, uint64_t value) {
  // Traverse read-only; only the leaf is dirtied.
  auto leaf = FindLeaf(key, AccessType::kRead);
  if (!leaf.ok()) return Status::NotFound("key not found");
  uint32_t pos = LowerBound(ReadData(*leaf), key);
  const char* rdata = ReadData(*leaf);
  if (pos < Header(rdata)->count && KeyAt(rdata, pos) == key) {
    SetPayloadAt(MutData(*leaf), pos, value);
    return Status::Ok();
  }
  return Status::NotFound("key not found");
}

Status StringBTree::Delete(std::string_view key) {
  auto leaf = FindLeaf(key, AccessType::kRead);
  if (!leaf.ok()) return Status::NotFound("key not found");
  const char* rdata = ReadData(*leaf);
  uint32_t pos = LowerBound(rdata, key);
  if (pos >= Header(rdata)->count || KeyAt(rdata, pos) != key) {
    return Status::NotFound("key not found");
  }
  RemoveEntry(MutData(*leaf), pos);
  --size_;
  return Status::Ok();
}

Status StringBTree::Scan(
    std::string_view lo, std::string_view hi,
    const std::function<bool(std::string_view, uint64_t)>& visit) {
  if (lo > hi) return Status::InvalidArgument("scan range is inverted");
  if (root_ == kInvalidPageId) return Status::Ok();
  auto leaf = FindLeaf(lo, AccessType::kRead);
  if (!leaf.ok()) return leaf.status();
  PageGuard current = std::move(*leaf);
  uint32_t pos = LowerBound(ReadData(current), lo);
  while (true) {
    const char* data = ReadData(current);
    const NodeHeader* header = Header(data);
    for (; pos < header->count; ++pos) {
      std::string_view key = KeyAt(data, pos);
      if (key > hi) return Status::Ok();
      if (!visit(key, PayloadAt(data, pos))) return Status::Ok();
    }
    if (header->link == kInvalidPageId) return Status::Ok();
    auto next = PageGuard::Fetch(*pool_, header->link);
    if (!next.ok()) return next.status();
    current = std::move(*next);
    pos = 0;
  }
}

Status StringBTree::CheckRec(PageId node_id, std::string_view lo,
                             std::optional<std::string> hi, int depth,
                             int* leaf_depth, PageId* prev_leaf,
                             std::string* prev_key) {
  auto guard = PageGuard::Fetch(*pool_, node_id);
  if (!guard.ok()) return guard.status();
  const char* data = ReadData(*guard);
  const NodeHeader* header = Header(data);

  // In-node key order + bounds (shared by both node kinds).
  for (uint32_t i = 0; i < header->count; ++i) {
    std::string_view key = KeyAt(data, i);
    if (key < lo) return Status::Internal("key below subtree bound");
    if (hi.has_value() && key >= *hi) {
      return Status::Internal("key above subtree bound");
    }
    if (i > 0 && !(KeyAt(data, i - 1) < key)) {
      return Status::Internal("keys not strictly ascending");
    }
  }

  if (header->type == kLeafType) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at different depths");
    }
    for (uint32_t i = 0; i < header->count; ++i) {
      std::string_view key = KeyAt(data, i);
      if (!prev_key->empty()) {
        if (!(*prev_key < key)) {
          return Status::Internal("global key order violated");
        }
      }
      prev_key->assign(key);
    }
    if (*prev_leaf != kInvalidPageId) {
      auto prev_guard = PageGuard::Fetch(*pool_, *prev_leaf);
      if (!prev_guard.ok()) return prev_guard.status();
      if (Header(ReadData(*prev_guard))->link != node_id) {
        return Status::Internal("broken leaf sibling chain");
      }
    }
    *prev_leaf = node_id;
    return Status::Ok();
  }

  if (header->type != kInternalType) {
    return Status::Internal("node with invalid type tag");
  }
  if (header->count == 0) {
    return Status::Internal("internal node without separators");
  }
  // Copy children/separators before releasing the guard.
  std::vector<std::string> seps;
  std::vector<PageId> children = {header->link};
  for (uint32_t i = 0; i < header->count; ++i) {
    seps.emplace_back(KeyAt(data, i));
    children.push_back(static_cast<PageId>(PayloadAt(data, i)));
  }
  guard->Release();
  for (size_t i = 0; i < children.size(); ++i) {
    std::string_view child_lo = i == 0 ? lo : std::string_view(seps[i - 1]);
    std::optional<std::string> child_hi =
        i == seps.size() ? hi : std::optional<std::string>(seps[i]);
    LRUK_RETURN_IF_ERROR(CheckRec(children[i], child_lo,
                                  std::move(child_hi), depth + 1,
                                  leaf_depth, prev_leaf, prev_key));
  }
  return Status::Ok();
}

Status StringBTree::CheckInvariants() {
  if (root_ == kInvalidPageId) {
    return size_ == 0 ? Status::Ok()
                      : Status::Internal("empty tree with nonzero size");
  }
  int leaf_depth = -1;
  PageId prev_leaf = kInvalidPageId;
  std::string prev_key;
  LRUK_RETURN_IF_ERROR(CheckRec(root_, std::string_view(), std::nullopt, 0,
                                &leaf_depth, &prev_leaf, &prev_key));
  if (prev_leaf != kInvalidPageId) {
    auto guard = PageGuard::Fetch(*pool_, prev_leaf);
    if (!guard.ok()) return guard.status();
    if (Header(ReadData(*guard))->link != kInvalidPageId) {
      return Status::Internal("leaf chain extends past the last leaf");
    }
  }
  return Status::Ok();
}

}  // namespace lruk
