// Slotted-page heap file: variable-length records over the buffer pool,
// addressed by RecordId (page, slot). This is the "record pages" half of
// Example 1.1 as a real component: a clustered B+tree maps keys to
// RecordIds and the heap stores the 2,000-byte customer rows.
//
// Page layout (within the 4 KiB frame):
//   [HeapPageHeader][slot directory ...>    <... record data][end]
// Records are allocated from the page tail; the slot directory grows from
// the head. Deleting a record tombstones its slot (length 0); the slot id
// is reused by later inserts but freed record bytes are only reclaimed
// when the page is compacted (Compact(), or automatically when an insert
// needs the space).
//
// The heap chains pages through `next_page` and keeps an insertion cursor
// at the tail page, so inserts are O(1) amortized; full scans follow the
// chain.

#ifndef LRUK_HEAP_HEAP_FILE_H_
#define LRUK_HEAP_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "bufferpool/pool_interface.h"
#include "bufferpool/page_guard.h"
#include "util/status.h"

namespace lruk {

// Identifies a record: the page holding it and its slot index.
struct RecordId {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  friend bool operator==(const RecordId&, const RecordId&) = default;

  // Packs into a uint64 (for storing RecordIds as B+tree values). The page
  // id must fit in 48 bits.
  uint64_t Pack() const { return (page << 16) | slot; }
  static RecordId Unpack(uint64_t packed) {
    return RecordId{packed >> 16, static_cast<uint16_t>(packed & 0xFFFF)};
  }
};

class HeapFile {
 public:
  // `pool` must outlive the heap. Pass `head` to re-attach to an existing
  // chain; kInvalidPageId starts a new (empty) heap.
  explicit HeapFile(PoolInterface* pool, PageId head = kInvalidPageId);
  LRUK_DISALLOW_COPY_AND_MOVE(HeapFile);

  // Appends a record; returns its address. Fails with INVALID_ARGUMENT if
  // the record cannot fit in a page even when empty, or if it is empty.
  Result<RecordId> Insert(std::string_view record);

  // Reads a record. kNotFound for tombstoned or never-allocated ids.
  Result<std::string> Get(const RecordId& rid);

  // Overwrites a record in place when the new payload fits in the old
  // space (or the page has room); otherwise fails with RESOURCE_EXHAUSTED
  // and the caller should Delete + Insert.
  Status Update(const RecordId& rid, std::string_view record);

  // Tombstones a record. kNotFound if absent.
  Status Delete(const RecordId& rid);

  // Visits every live record in chain order; the visitor returns false to
  // stop early.
  Status Scan(
      const std::function<bool(RecordId, std::string_view)>& visit);

  // Number of live records.
  uint64_t Size() const { return size_; }
  // First page of the chain (persist this to re-attach).
  PageId HeadPageId() const { return head_; }
  // Pages in the chain.
  Result<uint64_t> CountPages();

  // Capacity of an empty page (the largest insertable record).
  static size_t MaxRecordSize();

 private:
  Result<PageGuard> AppendPage();

  PoolInterface* pool_;
  PageId head_;
  PageId tail_;
  uint64_t size_ = 0;
};

}  // namespace lruk

#endif  // LRUK_HEAP_HEAP_FILE_H_
