#include "heap/heap_file.h"

#include <cstring>
#include <vector>

namespace lruk {

namespace {

struct HeapPageHeader {
  uint32_t slot_count;  // Slots allocated, including tombstones.
  uint32_t free_start;  // Lowest byte offset used by record data.
  PageId next_page;     // Chain link; kInvalidPageId at the tail.
};

struct Slot {
  uint16_t offset;  // Byte offset of the record within the page.
  uint16_t length;  // 0 = tombstone.
};

Slot* SlotArray(char* data) {
  return reinterpret_cast<Slot*>(data + sizeof(HeapPageHeader));
}
const Slot* SlotArray(const char* data) {
  return reinterpret_cast<const Slot*>(data + sizeof(HeapPageHeader));
}
HeapPageHeader* Header(char* data) {
  return reinterpret_cast<HeapPageHeader*>(data);
}
const HeapPageHeader* Header(const char* data) {
  return reinterpret_cast<const HeapPageHeader*>(data);
}

// Free bytes if a record of `length` is inserted using `new_slots`
// additional slot entries.
bool Fits(const HeapPageHeader* header, size_t length, size_t new_slots) {
  size_t directory_end = sizeof(HeapPageHeader) +
                         (header->slot_count + new_slots) * sizeof(Slot);
  return directory_end + length <= header->free_start;
}

// Rewrites the page's live records flush against the page end, closing
// holes left by deletes and updates.
void CompactPage(char* data) {
  HeapPageHeader* header = Header(data);
  Slot* slots = SlotArray(data);
  // Copy live records out, then re-place them from the tail down.
  std::vector<std::string> payloads(header->slot_count);
  for (uint32_t s = 0; s < header->slot_count; ++s) {
    if (slots[s].length > 0) {
      payloads[s].assign(data + slots[s].offset, slots[s].length);
    }
  }
  uint32_t cursor = kPageSize;
  for (uint32_t s = 0; s < header->slot_count; ++s) {
    if (slots[s].length == 0) continue;
    cursor -= slots[s].length;
    std::memcpy(data + cursor, payloads[s].data(), slots[s].length);
    slots[s].offset = static_cast<uint16_t>(cursor);
  }
  header->free_start = cursor;
}

}  // namespace

HeapFile::HeapFile(PoolInterface* pool, PageId head)
    : pool_(pool), head_(head), tail_(head) {
  LRUK_ASSERT(pool_ != nullptr, "HeapFile needs a buffer pool");
  // Re-attach: walk the chain to find the tail and count live records.
  PageId current = head;
  while (current != kInvalidPageId) {
    auto guard = PageGuard::Fetch(*pool_, current);
    LRUK_ASSERT(guard.ok(), "heap chain page unreadable");
    const char* data = guard->Data();
    const HeapPageHeader* header = Header(data);
    const Slot* slots = SlotArray(data);
    for (uint32_t s = 0; s < header->slot_count; ++s) {
      if (slots[s].length > 0) ++size_;
    }
    tail_ = current;
    current = header->next_page;
  }
}

size_t HeapFile::MaxRecordSize() {
  return kPageSize - sizeof(HeapPageHeader) - sizeof(Slot);
}

Result<PageGuard> HeapFile::AppendPage() {
  auto guard = PageGuard::New(*pool_);
  if (!guard.ok()) return guard.status();
  HeapPageHeader* header = Header(guard->Data());
  header->slot_count = 0;
  header->free_start = kPageSize;
  header->next_page = kInvalidPageId;

  if (head_ == kInvalidPageId) {
    head_ = guard->id();
  } else {
    auto tail_guard = PageGuard::Fetch(*pool_, tail_, AccessType::kWrite);
    if (!tail_guard.ok()) return tail_guard.status();
    Header(tail_guard->Data())->next_page = guard->id();
    tail_guard->MarkDirty();
  }
  tail_ = guard->id();
  return guard;
}

Result<RecordId> HeapFile::Insert(std::string_view record) {
  if (record.empty()) {
    return Status::InvalidArgument("empty records are not supported");
  }
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument("record exceeds page capacity");
  }

  PageGuard guard;
  if (tail_ == kInvalidPageId) {
    auto fresh = AppendPage();
    if (!fresh.ok()) return fresh.status();
    guard = std::move(*fresh);
  } else {
    auto tail_guard = PageGuard::Fetch(*pool_, tail_, AccessType::kWrite);
    if (!tail_guard.ok()) return tail_guard.status();
    guard = std::move(*tail_guard);
  }

  char* data = guard.Data();
  HeapPageHeader* header = Header(data);
  Slot* slots = SlotArray(data);

  // Prefer reusing a tombstoned slot id (needs no directory growth).
  uint32_t slot_index = header->slot_count;
  size_t new_slots = 1;
  for (uint32_t s = 0; s < header->slot_count; ++s) {
    if (slots[s].length == 0) {
      slot_index = s;
      new_slots = 0;
      break;
    }
  }

  if (!Fits(header, record.size(), new_slots)) {
    CompactPage(data);
    if (!Fits(header, record.size(), new_slots)) {
      // Page genuinely full: start a fresh page.
      guard.Release();
      auto fresh = AppendPage();
      if (!fresh.ok()) return fresh.status();
      guard = std::move(*fresh);
      data = guard.Data();
      header = Header(data);
      slots = SlotArray(data);
      slot_index = 0;
      new_slots = 1;
    }
  }

  header->free_start -= static_cast<uint32_t>(record.size());
  std::memcpy(data + header->free_start, record.data(), record.size());
  if (new_slots == 1) ++header->slot_count;
  slots[slot_index].offset = static_cast<uint16_t>(header->free_start);
  slots[slot_index].length = static_cast<uint16_t>(record.size());
  guard.MarkDirty();
  ++size_;
  return RecordId{guard.id(), static_cast<uint16_t>(slot_index)};
}

Result<std::string> HeapFile::Get(const RecordId& rid) {
  auto guard = PageGuard::Fetch(*pool_, rid.page);
  if (!guard.ok()) return guard.status();
  const char* data = guard->Data();
  const HeapPageHeader* header = Header(data);
  const Slot* slots = SlotArray(data);
  if (rid.slot >= header->slot_count || slots[rid.slot].length == 0) {
    return Status::NotFound("no record at the given id");
  }
  return std::string(data + slots[rid.slot].offset, slots[rid.slot].length);
}

Status HeapFile::Update(const RecordId& rid, std::string_view record) {
  if (record.empty() || record.size() > MaxRecordSize()) {
    return Status::InvalidArgument("bad record size");
  }
  auto guard = PageGuard::Fetch(*pool_, rid.page, AccessType::kWrite);
  if (!guard.ok()) return guard.status();
  char* data = guard->Data();
  HeapPageHeader* header = Header(data);
  Slot* slots = SlotArray(data);
  if (rid.slot >= header->slot_count || slots[rid.slot].length == 0) {
    return Status::NotFound("no record at the given id");
  }
  if (record.size() <= slots[rid.slot].length) {
    // Shrinking or same-size: overwrite in place.
    std::memcpy(data + slots[rid.slot].offset, record.data(), record.size());
    slots[rid.slot].length = static_cast<uint16_t>(record.size());
    guard->MarkDirty();
    return Status::Ok();
  }
  // Growing: tombstone the old copy, then allocate fresh space (compacting
  // if needed). The slot id must stay stable. Keep the old payload aside:
  // compaction discards tombstoned bytes, so a failed grow re-allocates it.
  std::string old_payload(data + slots[rid.slot].offset,
                          slots[rid.slot].length);
  slots[rid.slot].length = 0;
  if (!Fits(header, record.size(), 0)) CompactPage(data);
  std::string_view payload = record;
  bool fits = Fits(header, record.size(), 0);
  if (!fits) {
    // Roll back by re-allocating the old payload (it occupied this page a
    // moment ago, so post-compaction space is guaranteed to cover it).
    payload = old_payload;
  }
  header->free_start -= static_cast<uint32_t>(payload.size());
  std::memcpy(data + header->free_start, payload.data(), payload.size());
  slots[rid.slot].offset = static_cast<uint16_t>(header->free_start);
  slots[rid.slot].length = static_cast<uint16_t>(payload.size());
  guard->MarkDirty();
  if (!fits) {
    return Status::ResourceExhausted(
        "record does not fit in its page; delete and reinsert");
  }
  return Status::Ok();
}

Status HeapFile::Delete(const RecordId& rid) {
  auto guard = PageGuard::Fetch(*pool_, rid.page, AccessType::kWrite);
  if (!guard.ok()) return guard.status();
  char* data = guard->Data();
  HeapPageHeader* header = Header(data);
  Slot* slots = SlotArray(data);
  if (rid.slot >= header->slot_count || slots[rid.slot].length == 0) {
    return Status::NotFound("no record at the given id");
  }
  slots[rid.slot].length = 0;
  guard->MarkDirty();
  --size_;
  return Status::Ok();
}

Status HeapFile::Scan(
    const std::function<bool(RecordId, std::string_view)>& visit) {
  PageId current = head_;
  while (current != kInvalidPageId) {
    auto guard = PageGuard::Fetch(*pool_, current);
    if (!guard.ok()) return guard.status();
    const char* data = guard->Data();
    const HeapPageHeader* header = Header(data);
    const Slot* slots = SlotArray(data);
    for (uint32_t s = 0; s < header->slot_count; ++s) {
      if (slots[s].length == 0) continue;
      std::string_view record(data + slots[s].offset, slots[s].length);
      if (!visit(RecordId{current, static_cast<uint16_t>(s)}, record)) {
        return Status::Ok();
      }
    }
    current = header->next_page;
  }
  return Status::Ok();
}

Result<uint64_t> HeapFile::CountPages() {
  uint64_t count = 0;
  PageId current = head_;
  while (current != kInvalidPageId) {
    auto guard = PageGuard::Fetch(*pool_, current);
    if (!guard.ok()) return guard.status();
    ++count;
    current = Header(guard->Data())->next_page;
  }
  return count;
}

}  // namespace lruk
