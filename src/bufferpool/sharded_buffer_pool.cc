#include "bufferpool/sharded_buffer_pool.h"

#include <utility>

namespace lruk {

namespace {
bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

ShardedBufferPool::ShardedBufferPool(size_t capacity, size_t num_shards,
                                     DiskManager* disk,
                                     ShardPolicyFactory factory,
                                     BufferPoolOptions shard_options)
    : capacity_(capacity), shard_mask_(num_shards - 1), disk_(disk) {
  LRUK_ASSERT(IsPowerOfTwo(num_shards),
              "shard count must be a power of two");
  LRUK_ASSERT(capacity_ >= num_shards,
              "sharded pool needs at least one frame per shard");
  LRUK_ASSERT(disk_ != nullptr, "sharded pool needs a disk manager");
  LRUK_ASSERT(factory != nullptr, "sharded pool needs a policy factory");

  if (shard_options.io_dispatcher) {
    // One dispatcher (one worker fleet, one bounded queue) serves every
    // shard; the shards receive it as a shared dispatcher instead of each
    // spinning up its own.
    io_ = std::make_unique<IoDispatcher>(
        IoDispatcherOptions{shard_options.io_workers,
                            shard_options.io_queue_depth,
                            shard_options.io_starvation_budget});
    if (shard_options.readahead.enabled) {
      readahead_ =
          std::make_unique<ReadaheadDetector>(shard_options.readahead);
    }
  }
  // The scan detector (if any) lives at the pool level: shard-local fetch
  // streams are hash-interleaved and would never show a stride run.
  BufferPoolOptions per_shard = shard_options;
  per_shard.readahead.enabled = false;

  // Distribute frames as evenly as possible: the first capacity % N
  // shards absorb the remainder.
  size_t base = capacity_ / num_shards;
  size_t remainder = capacity_ % num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    size_t shard_capacity = base + (i < remainder ? 1 : 0);
    auto policy = factory(i, shard_capacity);
    LRUK_ASSERT(policy != nullptr, "shard policy factory returned null");
    shards_.push_back(std::make_unique<BufferPool>(
        shard_capacity, disk_, std::move(policy), per_shard, io_.get()));
  }
}

Result<Page*> ShardedBufferPool::FetchPage(PageId p, AccessType type) {
  bool observable = false;
  auto page = shards_[ShardOf(p)]->FetchPage(
      p, type, readahead_ != nullptr ? &observable : nullptr);
  if (readahead_ != nullptr && page.ok() && observable) {
    // Observe the pool-level fetch stream (wait-free; concurrent fetch
    // streams vote over the merged history) and fan the prefetch targets
    // out to their owning shards (each dedups against its own residents
    // and in-flight tracker). Only OBSERVABLE references — shard demand
    // misses and prefetch-confirmation hits — feed the detector: a scan
    // is made of exactly those, and steady warm hits skipping Observe
    // keeps the detector tax off the shards' latch-free hit paths (the
    // same policy BufferPool applies internally; see its FetchPage
    // overload).
    std::vector<PageId> targets;
    readahead_->Observe(p, &targets);
    for (PageId q : targets) shards_[ShardOf(q)]->RequestPrefetch(q);
  }
  return page;
}

void ShardedBufferPool::RequestPrefetch(PageId p) {
  shards_[ShardOf(p)]->RequestPrefetch(p);
}

void ShardedBufferPool::Quiesce() {
  for (auto& shard : shards_) shard->Quiesce();
}

Result<Page*> ShardedBufferPool::NewPage() {
  // The id must be allocated before the owning shard's latch can be taken
  // (the shard depends on the id's hash), so admission happens in a window
  // where other threads can race on the id. Two races matter when the
  // allocator reuses a previously-deleted id:
  //
  //  * a stale FetchPage of the old id lands in the window, reads the
  //    (re-)allocated disk page and resurrects it in the shard. The admit
  //    then reports AlreadyExists; the id is live in the pool and must NOT
  //    be deallocated — retry with a fresh id.
  //  * a stale DeletePage of the old id lands in the window and, finding
  //    the id non-resident, would free the disk page we are admitting.
  //    The pending set (checked by DeletePage under alloc_latch_) closes
  //    this.
  for (int attempt = 0; attempt < 8; ++attempt) {
    PageId p;
    {
      std::lock_guard<std::mutex> guard(alloc_latch_);
      auto allocated = disk_->AllocatePage();
      if (!allocated.ok()) return allocated.status();
      p = *allocated;
      pending_admits_.insert(p);
    }
    auto page = shards_[ShardOf(p)]->AdmitNewPage(p);
    std::lock_guard<std::mutex> guard(alloc_latch_);
    pending_admits_.erase(p);
    if (page.ok()) return page;
    if (page.status().code() == StatusCode::kAlreadyExists) continue;
    // Reclaim the unused id through the shard (not a raw deallocation):
    // the shard latch serializes against any in-flight fetch that may
    // have resurrected the id, and alloc_latch_ (held) keeps it out of
    // the allocator until the reclaim settles.
    (void)shards_[ShardOf(p)]->DeletePage(p);
    return page;
  }
  return Status::Internal("NewPage lost the admission race repeatedly");
}

Status ShardedBufferPool::UnpinPage(PageId p, bool dirty) {
  return shards_[ShardOf(p)]->UnpinPage(p, dirty);
}

Status ShardedBufferPool::FlushPage(PageId p) {
  return shards_[ShardOf(p)]->FlushPage(p);
}

Status ShardedBufferPool::FlushAll() {
  // Mirror BufferPool::FlushAll's try-all semantics across shards: one
  // failing shard must not leave later shards' dirty pages unattempted.
  // Failed pages keep their dirty flag inside their shard.
  Status first_error = Status::Ok();
  for (auto& shard : shards_) {
    Status flushed = shard->FlushAll();
    if (!flushed.ok() && first_error.ok()) first_error = flushed;
  }
  return first_error;
}

Status ShardedBufferPool::DeletePage(PageId p) {
  // Holding alloc_latch_ for the whole delete (lock order: alloc -> shard
  // -> disk, never the reverse) pins down the two id-reuse races: an id
  // mid-admission is refused instead of having its disk page freed out
  // from under NewPage, and the allocator cannot hand the id out again
  // until the shard-side removal and deallocation have settled.
  std::lock_guard<std::mutex> guard(alloc_latch_);
  if (pending_admits_.contains(p)) {
    return Status::NotFound("page " + std::to_string(p) +
                            " was deleted; its id is being reallocated");
  }
  return shards_[ShardOf(p)]->DeletePage(p);
}

size_t ShardedBufferPool::ResidentCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->ResidentCount();
  return total;
}

bool ShardedBufferPool::IsResident(PageId p) const {
  return shards_[ShardOf(p)]->IsResident(p);
}

BufferPoolStats ShardedBufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) total += shard->stats();
  return total;
}

BufferPoolStats ShardedBufferPool::StatsSnapshot() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) total += shard->StatsSnapshot();
  return total;
}

void ShardedBufferPool::ResetStats() {
  for (auto& shard : shards_) shard->ResetStats();
}

std::vector<BufferPoolStats> ShardedBufferPool::ShardStats() const {
  std::vector<BufferPoolStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->stats());
  return out;
}

}  // namespace lruk
