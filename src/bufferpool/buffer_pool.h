// The buffer pool manager: a fixed set of frames caching disk pages, with
// the replacement decision delegated to any ReplacementPolicy — this is
// the substrate in which LRU-K is meant to live (the paper's prototype was
// built inside the Huron database's buffer manager).
//
// Pin protocol: FetchPage/NewPage return the page pinned; callers must
// balance every fetch with UnpinPage (or use PageGuard). Pinned pages are
// never victims. A fetch when every frame is pinned fails with
// RESOURCE_EXHAUSTED.
//
// Thread safety: all pool operations (and through them the policy and the
// disk manager) are serialized by one internal latch — coarse-grained by
// design, since the replacement *decision* is the subject of this library
// and per-frame latching would obscure it. Page *contents* are accessed
// outside the latch under the pin protocol: a pinned page cannot be
// evicted, and Page pointers stay stable for the pool's lifetime, so
// concurrent readers are safe; concurrent writers to the same page must
// coordinate among themselves (as with per-page latches in a real DBMS).
// For multi-core scaling, ShardedBufferPool composes several of these
// pools behind the same PoolInterface.

#ifndef LRUK_BUFFERPOOL_BUFFER_POOL_H_
#define LRUK_BUFFERPOOL_BUFFER_POOL_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bufferpool/page.h"
#include "bufferpool/pool_interface.h"
#include "core/replacement_policy.h"
#include "storage/disk_manager.h"
#include "util/status.h"

namespace lruk {

class BufferPool final : public PoolInterface {
 public:
  // `disk` must outlive the pool. The pool owns the policy.
  BufferPool(size_t capacity, DiskManager* disk,
             std::unique_ptr<ReplacementPolicy> policy);
  ~BufferPool() override;

  Result<Page*> FetchPage(PageId p,
                          AccessType type = AccessType::kRead) override;
  Result<Page*> NewPage() override;

  // Admits the already-allocated disk page `p` as a fresh resident page:
  // pinned, zero-filled, and dirty, exactly as NewPage leaves it. Used by
  // ShardedBufferPool, whose page-id allocation happens at the pool level
  // before the owning shard is known. Precondition: `p` is allocated on
  // disk and not resident here.
  Result<Page*> AdmitNewPage(PageId p);

  Status UnpinPage(PageId p, bool dirty) override;
  Status FlushPage(PageId p) override;
  Status FlushAll() override;
  Status DeletePage(PageId p) override;

  size_t capacity() const override { return capacity_; }
  size_t ResidentCount() const override {
    std::lock_guard<std::mutex> guard(latch_);
    return page_table_.size();
  }
  bool IsResident(PageId p) const override {
    std::lock_guard<std::mutex> guard(latch_);
    return page_table_.contains(p);
  }
  BufferPoolStats stats() const override {
    std::lock_guard<std::mutex> guard(latch_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> guard(latch_);
    stats_ = BufferPoolStats{};
  }
  ReplacementPolicy& policy() { return *policy_; }
  DiskManager& disk() { return *disk_; }

 private:
  // Finds a frame for a new resident page: the free list first, then a
  // policy eviction (with dirty write-back).
  Result<FrameId> AcquireFrame();
  // NewPage/AdmitNewPage body; the latch is already held.
  Result<Page*> AdmitNewPageLocked(PageId p);

  mutable std::mutex latch_;
  size_t capacity_;
  DiskManager* disk_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<Page> frames_;
  std::vector<FrameId> free_frames_;
  std::unordered_map<PageId, FrameId> page_table_;
  BufferPoolStats stats_;
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_BUFFER_POOL_H_
