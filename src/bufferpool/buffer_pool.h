// The buffer pool manager: a fixed set of frames caching disk pages, with
// the replacement decision delegated to any ReplacementPolicy — this is
// the substrate in which LRU-K is meant to live (the paper's prototype was
// built inside the Huron database's buffer manager).
//
// Pin protocol: FetchPage/NewPage return the page pinned; callers must
// balance every fetch with UnpinPage (or use PageGuard). Pinned pages are
// never victims. A fetch when every frame is pinned fails with
// RESOURCE_EXHAUSTED.
//
// Thread safety: all pool MUTATIONS (and through them the policy and the
// disk manager) are serialized by one internal latch — coarse-grained by
// design, since the replacement *decision* is the subject of this library.
// Page *contents* are accessed outside the latch under the pin protocol: a
// pinned page cannot be evicted, and Page pointers stay stable for the
// pool's lifetime, so concurrent readers are safe; concurrent writers to
// the same page must coordinate among themselves (as with per-page latches
// in a real DBMS). For multi-core scaling, ShardedBufferPool composes
// several of these pools behind the same PoolInterface,
// BufferPoolOptions::batch_capacity moves the policy-bookkeeping half of
// the hit path out of the latch hold (latch-free AccessBuffer, drained in
// batches), and BufferPoolOptions::optimistic_hits takes the latch off
// warm hits and unpins entirely (see below).
//
// Optimistic hit protocol (DESIGN.md "Optimistic page table & pin
// protocol"): with optimistic_hits on, a hit is — probe the version-
// stamped PageTable without any lock, speculatively fetch_add the frame's
// atomic pin count, re-validate the bucket version, publish the reference
// to the AccessBuffer, go. Any instability falls back to the latched slow
// path. The cross-cutting invariant every mutation path upholds: no frame
// is evicted, flushed-while-unpinned, deleted, or reused for another page
// without first bumping its page-table bucket version (PageTable::
// LockBucket) and THEN re-checking the pin count — the seq_cst store-load
// handshake that guarantees an optimistic reader either fails validation
// or is seen by the mutator as pinned, never neither.

#ifndef LRUK_BUFFERPOOL_BUFFER_POOL_H_
#define LRUK_BUFFERPOOL_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bufferpool/page.h"
#include "bufferpool/page_table.h"
#include "bufferpool/pool_interface.h"
#include "core/access_buffer.h"
#include "core/replacement_policy.h"
#include "io/io_dispatcher.h"
#include "io/readahead.h"
#include "storage/disk_manager.h"
#include "util/retry.h"
#include "util/status.h"

namespace lruk {

// Knobs shared by BufferPool and (per shard) ShardedBufferPool.
struct BufferPoolOptions {
  // Batched access recording (DESIGN.md "Batched access recording").
  // 0 — disabled: every hit applies ReplacementPolicy::RecordAccess under
  //     the pool latch, today's exact semantics.
  // >=1 — hits enqueue an AccessRecord into a latch-free AccessBuffer of
  //     this per-stripe capacity (rounded up to a power of two) after the
  //     latch is released; the buffer is drained in FIFO order under the
  //     latch when a stripe fills, before any admission/eviction/removal,
  //     and on flush/stats calls. Single-threaded, the policy sees the
  //     exact same call sequence as batch_capacity = 0 (drains preserve
  //     order), so replacement behaviour is identical; multi-threaded, a
  //     reference may be applied up to one buffer-capacity late.
  size_t batch_capacity = 0;
  // Number of independent rings inside the AccessBuffer. 1 =
  // one shared ring per pool/shard; >= the thread count approximates a
  // per-thread buffer (uncontended per-stripe producer mutex, per-stripe
  // rather than global FIFO).
  size_t batch_stripes = 1;
  // Bounded retry of transient (kIoError) disk read/write failures before
  // the error surfaces to the caller. Off by default (max_attempts = 1);
  // see util/retry.h. The retry runs under the pool latch — size the
  // backoff accordingly (or leave `sleep` null for immediate re-issue).
  RetryOptions io_retry;

  // Latch-free hit path (DESIGN.md "Optimistic page table & pin
  // protocol"). Off (default): hits and unpins take the pool latch.
  // On: warm hits and unpins run entirely without the latch (optimistic
  // version-validated page-table probe + atomic pin counts), falling back
  // to the latched path on any miss or instability. Implies batching:
  // batch_capacity is bumped to 64 if left 0, because a latch-free hit
  // can only publish its reference through the AccessBuffer. Replacement
  // behaviour is byte-identical to the latched path single-threaded;
  // concurrently, references to pages evicted before the next drain are
  // dropped and counted (access_drops — bounded staleness, same contract
  // as batching). Composes with readahead: the voting detector's Observe
  // is wait-free, so a latch-free hit feeds it directly and only an
  // actual stride trigger (or a due flusher pass) touches the latch.
  bool optimistic_hits = false;

  // --- Async I/O dispatcher (DESIGN.md "Async I/O dispatcher") ---
  // Master switch: miss reads execute through an IoDispatcher with the
  // pool latch released and a per-page request tracker coalescing
  // concurrent misses on the same page into one physical read. Off (the
  // default) keeps today's direct path, byte-for-byte.
  bool io_dispatcher = false;
  // Dispatcher worker threads. 0 = inline mode: every request executes
  // synchronously on the issuing thread, in issue order — single-threaded
  // behaviour (pages, victims, stats, fault replay) is identical to the
  // direct path. > 0: miss reads run on workers, prefetches and flusher
  // passes run in the background.
  size_t io_workers = 0;
  // Bounded dispatcher queue depth (worker mode), PER priority lane
  // (Demand/Flush/Prefetch): miss reads block while the Demand lane is
  // full, background work is dropped instead.
  size_t io_queue_depth = 64;
  // Anti-starvation bound for the dispatcher's background lanes: at most
  // this many consecutive demand dispatches while Flush/Prefetch work
  // waits queued, then one background item is served (see io_dispatcher.h).
  size_t io_starvation_budget = 16;
  // Write-behind eviction: when a dirty victim is chosen and the
  // dispatcher runs in worker mode, the evicting thread copies the frame
  // image aside, posts the write on the Flush lane, and admits the new
  // page immediately — the victim write-back leaves the miss path
  // entirely (writebehind_writes; a full Flush lane falls back to the
  // synchronous write, dirty_writebacks). A failed write-behind re-admits
  // the page dirty, exactly, via ReplacementPolicy::Restore
  // (writebehind_readmits). Inert in inline mode (io_workers == 0):
  // deterministic replay keeps the direct path's exact disk-op order.
  bool write_behind = false;
  // Background flusher: every `flusher_every_ops` fetches, a pass peeks
  // the policy's next `flusher_batch` victims (Evict + exact Restore) and
  // writes the dirty ones back, so eviction write-back rarely lands on the
  // miss path. Requires io_dispatcher; with io_workers == 0 the pass runs
  // synchronously at the trigger point (deterministic).
  bool flusher = false;
  size_t flusher_every_ops = 64;
  size_t flusher_batch = 8;
  // Adaptive flusher pacing: instead of the fixed cadence above, each
  // pass re-plans the next one from the measured dirty ratio and the
  // dispatcher's Demand-lane depth. Cadence moves linearly from
  // `flusher_max_every` (dirty ratio <= flusher_dirty_low) down to
  // `flusher_min_every` (ratio >= flusher_dirty_high), and the batch from
  // `flusher_batch` up to `flusher_max_batch` over the same ramp; while
  // the Demand lane is deeper than the worker count the controller backs
  // off (doubled cadence, halved batch) so cleaning never competes with
  // waiting misses for the disk. Deterministic given a deterministic
  // fetch stream (the inputs are pool-local counters).
  bool flusher_adaptive = false;
  size_t flusher_min_every = 8;
  size_t flusher_max_every = 256;
  size_t flusher_max_batch = 32;
  double flusher_dirty_low = 0.10;
  double flusher_dirty_high = 0.50;
  // Scan readahead: a stride detector observes the fetch stream and
  // prefetches the next `readahead.window` pages of a detected sequential
  // run (the Example 1.2 scan shape). Requires io_dispatcher; inline mode
  // prefetches synchronously (deterministic), worker mode streams them in
  // the background. ShardedBufferPool runs one detector above the shards
  // (hash routing destroys per-shard sequentiality).
  ReadaheadOptions readahead;
};

class BufferPool final : public PoolInterface {
 public:
  // `disk` must outlive the pool. The pool owns the policy. When
  // `options.io_dispatcher` is set, the pool routes its miss I/O through
  // `shared_dispatcher` if given (it must outlive the pool — this is how
  // ShardedBufferPool gives every shard one worker fleet), else through a
  // private dispatcher built from options.io_workers/io_queue_depth.
  BufferPool(size_t capacity, DiskManager* disk,
             std::unique_ptr<ReplacementPolicy> policy,
             BufferPoolOptions options = {},
             IoDispatcher* shared_dispatcher = nullptr);
  ~BufferPool() override;

  Result<Page*> FetchPage(PageId p,
                          AccessType type = AccessType::kRead) override;

  // FetchPage variant reporting whether this reference is OBSERVABLE for
  // scan detection: a demand miss, or the first demand touch of a
  // prefetched frame (the reference that consumes the prefetched flag).
  // Steady-state warm hits are not observable — the pools deliberately
  // keep them off the detector (see CollectBackgroundWorkLocked): a scan
  // only ever produces misses and prefetch-confirmation hits, so skipping
  // the rest loses no detection while keeping the detector's cost off the
  // latch-free warm path. ShardedBufferPool uses this to gate its
  // pool-level detector the same way.
  Result<Page*> FetchPage(PageId p, AccessType type, bool* observable);

  Result<Page*> NewPage() override;

  // Admits the already-allocated disk page `p` as a fresh resident page:
  // pinned, zero-filled, and dirty, exactly as NewPage leaves it. Used by
  // ShardedBufferPool, whose page-id allocation happens at the pool level
  // before the owning shard is known. Precondition: `p` is allocated on
  // disk and not resident here.
  Result<Page*> AdmitNewPage(PageId p);

  Status UnpinPage(PageId p, bool dirty) override;
  Status FlushPage(PageId p) override;
  Status FlushAll() override;
  Status DeletePage(PageId p) override;

  size_t capacity() const override { return capacity_; }
  size_t ResidentCount() const override {
    auto guard = Lock();
    return page_table_.size();
  }
  bool IsResident(PageId p) const override {
    auto guard = Lock();
    return page_table_.contains(p);
  }
  BufferPoolStats stats() const override {
    // Observation points drain so the policy's view is current (and so a
    // caller inspecting the policy right after sees no pending records).
    auto guard = Lock();
    DrainAccessBufferLocked();
    return stats_.ToStats();
  }
  // Lock-free counter snapshot (never blocks or is blocked by the hit
  // path; pending access-buffer records stay pending).
  BufferPoolStats StatsSnapshot() const override { return stats_.ToStats(); }
  void ResetStats() override {
    auto guard = Lock();
    DrainAccessBufferLocked();
    stats_.Reset();
  }
  ReplacementPolicy& policy() { return *policy_; }
  // Meta-policy counters (adaptive expert regret/switches); a default
  // snapshot (`adaptive == false`) for plain policies. Drains pending
  // access records first so the regret window is current.
  MetaPolicyStats MetaStats() const {
    auto guard = Lock();
    DrainAccessBufferLocked();
    return policy_->GetMetaStats();
  }
  DiskManager& disk() { return *disk_; }
  const BufferPoolOptions& options() const { return options_; }
  // Drain/push counters for the batching buffer; all-zero when batching is
  // disabled (batch_capacity == 0).
  AccessBufferStats access_buffer_stats() const {
    auto guard = Lock();
    return access_buffer_ ? access_buffer_->stats() : AccessBufferStats{};
  }

  // --- Async I/O dispatcher surface (no-ops unless io_dispatcher) ---

  // The dispatcher this pool submits through (null when disabled).
  IoDispatcher* io_dispatcher() { return io_; }
  // Requests a background prefetch of `p`: registered in the per-page
  // tracker (so demand fetches coalesce onto it), admitted unpinned and
  // clean on completion. A no-op if `p` is resident or already in flight;
  // silently dropped (prefetch_dropped) if the dispatcher queue is full,
  // no frame is evictable, or the read fails. Used by the readahead paths;
  // public so callers with workload foreknowledge can warm the pool.
  void RequestPrefetch(PageId p);
  // One flusher pass now, on the calling thread: peeks the policy's next
  // flusher_batch victims via Evict + Restore and writes back the dirty
  // ones (background_cleans). Public for tests and manual scheduling; the
  // flusher trigger calls it every flusher_every_ops fetches.
  void RunFlusherPass();
  // Blocks until every in-flight dispatcher request targeting this pool
  // (miss reads, prefetches, scheduled flusher passes) has completed.
  // FlushAll fences through this; DeletePage fences per page. Trivial in
  // inline mode (nothing outlives its issuing call).
  void Quiesce();
  // In-flight tracked reads (misses + prefetches); 0 after Quiesce().
  size_t PendingIoCount() const {
    auto guard = Lock();
    return pending_reads_.size();
  }
  // Frames on the free list (capacity == resident + pending + free).
  size_t FreeFrameCount() const {
    auto guard = Lock();
    return free_frames_.size();
  }
  // In-flight write-behind victim writes; 0 after Quiesce().
  size_t PendingVictimWriteCount() const {
    auto guard = Lock();
    return pending_victim_writes_.size();
  }
  // Evicted pages whose write-behind failed AND whose re-admission found
  // no frame: their images are parked (no data loss) until a fetch
  // re-admits them, a flush persists them, or a delete drops them.
  size_t ParkedVictimCount() const {
    auto guard = Lock();
    return parked_victims_.size();
  }
  // The flusher cadence/batch currently in force (the configured constants
  // unless flusher_adaptive re-planned them). Exposed for tests and
  // benches observing the controller.
  size_t flusher_cadence() const {
    return adaptive_every_.load(std::memory_order_relaxed);
  }
  size_t flusher_batch_size() const {
    return adaptive_batch_.load(std::memory_order_relaxed);
  }

 private:
  // One tracked in-flight read (a miss or a prefetch). Waiters sleep on
  // `cv` with the pool latch; the issuer marks `done`, sets `status`,
  // erases the map entry and notifies. Waiters hold the shared_ptr, so
  // the record outlives the erase.
  struct PendingIo {
    Status status;
    bool done = false;
    // Set when a prefetch is abandoned (queue full, no frame, failed
    // read): coalesced demand waiters must not inherit the failure — they
    // re-loop and issue their own primary read instead.
    bool retry_as_primary = false;
    std::condition_variable cv;
  };

  // The pool's counters as relaxed atomics, so the latch-free hit path
  // can count without the latch and StatsSnapshot can read without it.
  // Individually exact; a snapshot is not an atomic cut across fields.
  struct AtomicPoolStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> dirty_writebacks{0};
    std::atomic<uint64_t> read_failures{0};
    std::atomic<uint64_t> write_failures{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> coalesced_reads{0};
    std::atomic<uint64_t> prefetch_issued{0};
    std::atomic<uint64_t> prefetch_used{0};
    std::atomic<uint64_t> prefetch_dropped{0};
    std::atomic<uint64_t> background_cleans{0};
    std::atomic<uint64_t> writebehind_writes{0};
    std::atomic<uint64_t> writebehind_readmits{0};
    std::atomic<uint64_t> io_drops_flush{0};
    std::atomic<uint64_t> io_drops_prefetch{0};
    std::atomic<uint64_t> optimistic_hits{0};
    std::atomic<uint64_t> optimistic_fallbacks{0};
    std::atomic<uint64_t> fallback_probe_miss{0};
    std::atomic<uint64_t> fallback_version_conflict{0};
    std::atomic<uint64_t> fallback_resize{0};
    std::atomic<uint64_t> access_drops{0};
    std::atomic<uint64_t> pin_cas_retries{0};
    std::atomic<uint64_t> latch_acquires{0};

    BufferPoolStats ToStats() const;
    void Reset();
  };

  // Acquires the pool latch, counting the acquisition (the
  // `latch_acquires` proxy asserted by the zero-mutex-on-hit test).
  // Condition-variable re-acquisitions inside waits are not counted;
  // explicit guard.lock() re-acquisitions count via CountLatchAcquire.
  std::unique_lock<std::mutex> Lock() const {
    std::unique_lock<std::mutex> guard(latch_);
    stats_.latch_acquires.fetch_add(1, std::memory_order_relaxed);
    return guard;
  }
  void CountLatchAcquire() const {
    stats_.latch_acquires.fetch_add(1, std::memory_order_relaxed);
  }

  // Counts one optimistic attempt that fell back to the latched path,
  // attributed to its cause — optimistic_fallbacks stays the exact sum
  // of the three attributed counters.
  void CountOptimisticFallback(PageTable::ProbeFail why) const {
    if (why == PageTable::ProbeFail::kNone) return;
    stats_.optimistic_fallbacks.fetch_add(1, std::memory_order_relaxed);
    switch (why) {
      case PageTable::ProbeFail::kMiss:
        stats_.fallback_probe_miss.fetch_add(1, std::memory_order_relaxed);
        break;
      case PageTable::ProbeFail::kVersionConflict:
        stats_.fallback_version_conflict.fetch_add(1,
                                                   std::memory_order_relaxed);
        break;
      case PageTable::ProbeFail::kDisplacementBound:
        stats_.fallback_resize.fetch_add(1, std::memory_order_relaxed);
        break;
      case PageTable::ProbeFail::kNone:
        break;
    }
  }

  // One in-flight write-behind victim write: the evicted page's image,
  // copied out of the frame before the frame was reused ("pinned copy").
  // Waiters (a re-fetch of the page, a fence) sleep on `cv` with the pool
  // latch; the writer marks `done`, erases the map entry and notifies.
  struct VictimWrite {
    std::unique_ptr<char[]> image;
    Status status;
    bool done = false;
    std::condition_variable cv;
  };

  // Disk I/O under options_.io_retry, with the pool's failure/retry
  // accounting. Caller holds the latch.
  Status DiskRead(PageId p, char* out);
  Status DiskWrite(PageId p, const char* data);
  // Finds a frame for a new resident page: the free list first, then a
  // policy eviction (with dirty write-back). If the victim's write-back
  // fails, the eviction is rolled back (policy_->Restore) and the pool is
  // left exactly as before the call. In optimistic mode the policy may
  // nominate pinned victims (SetEvictable is unused there — pin counts
  // are ground truth); they are skipped under the bucket handshake and
  // restored afterwards.
  //
  // Write-behind: when `deferred_writes` is non-null and write-behind is
  // in force, a dirty victim's image is copied into a VictimWrite entry,
  // the victim's id is appended to `deferred_writes`, and the frame is
  // returned immediately — the caller MUST pass the list to
  // LaunchDeferredVictimWrites after releasing the latch. A null
  // `deferred_writes` forces the synchronous write-back (used on failure
  // paths that must not cascade).
  Result<FrameId> AcquireFrame(std::vector<PageId>* deferred_writes);
  // NewPage/AdmitNewPage body; the latch is already held.
  Result<Page*> AdmitNewPageLocked(PageId p,
                                   std::vector<PageId>* deferred_writes);
  // Applies every buffered access record to the policy (in optimistic
  // mode, dropping records whose page was evicted since — see
  // AccessBuffer::Drain). Caller holds the latch. Declared const because
  // observation paths (stats) drain too; the mutation happens through the
  // shallow-const member pointers.
  void DrainAccessBufferLocked() const;
  // The latch-free hit attempt: optimistic probe, speculative pin,
  // validate, count, publish. Returns the pinned page, or null on any
  // miss/instability (caller falls back to the latched path). Never
  // acquires the latch except to drain a full access-buffer stripe or to
  // schedule a due flusher pass. `observable` (optional) reports whether
  // the hit consumed the prefetched flag (see the FetchPage overload).
  Page* TryOptimisticHit(PageId p, AccessType type,
                         bool* observable = nullptr);
  // Bumps the fetch counter and reports whether a flusher pass is due
  // (both hit paths share it so trigger points are mode-independent).
  bool TickFlusher() {
    if (!options_.flusher || io_ == nullptr) return false;
    // adaptive_every_ holds flusher_every_ops verbatim unless
    // flusher_adaptive re-planned it (never 0; the ctor clamps).
    uint64_t every = adaptive_every_.load(std::memory_order_relaxed);
    return (ops_since_flusher_.fetch_add(1, std::memory_order_relaxed) + 1) %
               every ==
           0;
  }

  // --- Dispatcher internals (io_ != nullptr only) ---
  // Completes a tracked read: publishes status, erases the tracker entry,
  // wakes coalesced waiters and Quiesce. Caller holds the latch.
  void FinishPendingLocked(PageId p, const std::shared_ptr<PendingIo>& entry,
                           Status status);
  // Blocks until no read of `p` is in flight (DeletePage's fence). Caller
  // holds `guard`.
  void FencePageLocked(std::unique_lock<std::mutex>& guard, PageId p);
  // Quiesce body; caller holds `guard`.
  void QuiesceLocked(std::unique_lock<std::mutex>& guard);
  // Registers a prefetch of `p` in the tracker if it is neither resident
  // nor in flight; returns whether registered. Caller holds the latch.
  bool RegisterPrefetchLocked(PageId p);
  // Executes one registered prefetch (on a worker, or inline).
  void ExecutePrefetch(PageId p);
  // Posts registered prefetches + a due flusher pass. Caller must NOT
  // hold the latch (inline mode runs them synchronously right here).
  void LaunchBackgroundWork(const std::vector<PageId>& prefetches,
                            bool flusher_due);
  // Readahead bookkeeping on the fetch path: observes `p` (only when
  // `observe` — the reference is a demand miss or a prefetch-confirmation
  // hit; steady warm hits stay off the detector), collects and registers
  // prefetch targets into `targets`, and decides whether a flusher pass
  // is due. Caller holds the latch.
  void CollectBackgroundWorkLocked(PageId p, bool observe,
                                   std::vector<PageId>* targets,
                                   bool* flusher_due);

  // --- Write-behind internals (write_behind_ only) ---
  // Posts each deferred victim write on the Flush lane; a full lane falls
  // back to executing it synchronously right here (io_drops_flush +
  // dirty_writebacks instead of writebehind_writes). Caller must NOT hold
  // the latch. Safe from dispatcher workers (TryPost never blocks).
  void LaunchDeferredVictimWrites(const std::vector<PageId>& victims);
  // Writes one pending victim image to disk (latch released for the I/O),
  // then completes the VictimWrite entry: on failure the page is
  // re-admitted dirty (or parked), waiters and Quiesce are woken.
  // `foreground` selects the counter: the submitting thread ran it
  // synchronously (dirty_writebacks) vs a Flush-lane worker
  // (writebehind_writes).
  void ExecuteVictimWrite(PageId v, bool foreground);
  // Exact rollback of a failed write-behind: re-admit `v` dirty and
  // unpinned via ReplacementPolicy::Restore into a freshly acquired frame
  // (synchronous write-backs only — no cascading deferral), or park the
  // image when every frame is pinned. Caller holds the latch.
  void ReadmitFailedVictimLocked(PageId v, std::unique_ptr<char[]> image);
  // Adaptive-pacing controller (flusher_adaptive only): re-plans
  // adaptive_every_/adaptive_batch_ from the measured dirty ratio and the
  // Demand-lane depth. Called at the end of each flusher pass, latch held.
  void ReplanFlusherLocked();

  mutable std::mutex latch_;
  size_t capacity_;
  DiskManager* disk_;
  std::unique_ptr<ReplacementPolicy> policy_;
  BufferPoolOptions options_;
  // options_.optimistic_hits: mutation paths use the bucket handshake and
  // SetEvictable is suppressed (pin counts are the ground truth).
  bool optimistic_ = false;
  // Mirrors optimistic_: FetchPage attempts TryOptimisticHit first. The
  // readahead detector no longer forces a stand-down — its Observe is
  // wait-free, so the latch-free hit feeds it directly.
  bool fast_path_ = false;
  // Present iff options_.batch_capacity > 0.
  std::unique_ptr<AccessBuffer> access_buffer_;
  // Owned dispatcher (private to this pool); io_ points here or at the
  // shared one passed in. Null iff options_.io_dispatcher is false.
  std::unique_ptr<IoDispatcher> owned_io_;
  IoDispatcher* io_ = nullptr;
  // Present iff readahead is enabled on a non-sharded pool.
  std::unique_ptr<ReadaheadDetector> readahead_;
  // Scratch for ReadaheadDetector::Observe on the LATCHED fetch path
  // (latch-guarded, reused to avoid a per-fetch allocation). The
  // latch-free hit path uses a stack-local vector instead: it only pays
  // for an allocation when a stride actually triggers.
  std::vector<PageId> readahead_scratch_;
  // AcquireFrame's batched-nomination scratch (latch-guarded like the
  // frame it hands out): reused across misses so the steady-state miss
  // path performs no allocation — the capacity sticks after warm-up.
  std::vector<PageId> nominee_scratch_;
  std::vector<PageId> batch_scratch_;
  // Frames live in a fixed array (Page is immovable now that its pin
  // count and dirty flag are atomics).
  std::unique_ptr<Page[]> frames_;
  std::vector<FrameId> free_frames_;
  // Per-frame "prefetched and not yet demand-referenced" flag, feeding
  // prefetch_used; atomic so the latch-free hit can consume it.
  std::unique_ptr<std::atomic<uint8_t>[]> frame_prefetched_;
  // The resident-page index; see page_table.h for the seqlock protocol.
  PageTable page_table_;
  // The per-page request tracker: at most one in-flight read per page.
  std::unordered_map<PageId, std::shared_ptr<PendingIo>> pending_reads_;
  // options_.write_behind in force: requires a dispatcher in worker mode
  // (inline mode keeps the direct path's exact disk-op order).
  bool write_behind_ = false;
  // At most one in-flight victim write per page: created at eviction time
  // (pinned copy), erased on completion. A page is never simultaneously
  // resident, in pending_reads_, and here — fetches of such a page wait
  // out the write first.
  std::unordered_map<PageId, std::shared_ptr<VictimWrite>> pending_victim_writes_;
  // Failed write-behind images with nowhere to go (every frame pinned at
  // re-admit time). Resolved by the next fetch (re-admit), FlushPage/
  // FlushAll (persist), or DeletePage (discard). Never dropped silently.
  std::unordered_map<PageId, std::unique_ptr<char[]>> parked_victims_;
  // Pages whose image snapshot the flusher is writing right now with the
  // latch released (the page itself stays resident and pinned for the
  // duration). FencePageLocked waits these out so an explicit flush or
  // delete never races a newer image against the in-flight snapshot;
  // waiters sleep on quiesce_cv_.
  std::unordered_set<PageId> flusher_cleaning_;
  // Prefetch reads currently in flight, bounded by
  // ReadaheadOptions::max_inflight in worker mode (latch-guarded).
  size_t inflight_prefetches_ = 0;
  // Background work items (prefetches + scheduled flusher passes) issued
  // but not finished; Quiesce waits for 0 alongside pending_reads_.
  uint64_t inflight_background_ = 0;
  std::condition_variable quiesce_cv_;
  // Fetches since the last flusher trigger; atomic (modulo trigger, no
  // reset) so latch-free hits pace the flusher identically to latched
  // ones.
  std::atomic<uint64_t> ops_since_flusher_{0};
  // The flusher cadence/batch in force: the configured constants, unless
  // flusher_adaptive re-plans them after each pass. Atomics because
  // TickFlusher reads the cadence on the latch-free hit path.
  std::atomic<uint64_t> adaptive_every_{0};
  std::atomic<uint64_t> adaptive_batch_{0};
  mutable AtomicPoolStats stats_;
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_BUFFER_POOL_H_
