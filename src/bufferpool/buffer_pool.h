// The buffer pool manager: a fixed set of frames caching disk pages, with
// the replacement decision delegated to any ReplacementPolicy — this is
// the substrate in which LRU-K is meant to live (the paper's prototype was
// built inside the Huron database's buffer manager).
//
// Pin protocol: FetchPage/NewPage return the page pinned; callers must
// balance every fetch with UnpinPage (or use PageGuard). Pinned pages are
// never victims. A fetch when every frame is pinned fails with
// RESOURCE_EXHAUSTED.
//
// Thread safety: all pool operations (and through them the policy and the
// disk manager) are serialized by one internal latch — coarse-grained by
// design, since the replacement *decision* is the subject of this library
// and per-frame latching would obscure it. Page *contents* are accessed
// outside the latch under the pin protocol: a pinned page cannot be
// evicted, and Page pointers stay stable for the pool's lifetime, so
// concurrent readers are safe; concurrent writers to the same page must
// coordinate among themselves (as with per-page latches in a real DBMS).
// For multi-core scaling, ShardedBufferPool composes several of these
// pools behind the same PoolInterface, and BufferPoolOptions::
// batch_capacity moves the policy-bookkeeping half of the hit path out
// of the latch hold entirely (latch-free AccessBuffer, drained in
// batches).

#ifndef LRUK_BUFFERPOOL_BUFFER_POOL_H_
#define LRUK_BUFFERPOOL_BUFFER_POOL_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bufferpool/page.h"
#include "bufferpool/pool_interface.h"
#include "core/access_buffer.h"
#include "core/replacement_policy.h"
#include "storage/disk_manager.h"
#include "util/retry.h"
#include "util/status.h"

namespace lruk {

// Knobs shared by BufferPool and (per shard) ShardedBufferPool.
struct BufferPoolOptions {
  // Batched access recording (DESIGN.md "Batched access recording").
  // 0 — disabled: every hit applies ReplacementPolicy::RecordAccess under
  //     the pool latch, today's exact semantics.
  // >=1 — hits enqueue an AccessRecord into a latch-free AccessBuffer of
  //     this per-stripe capacity (rounded up to a power of two) after the
  //     latch is released; the buffer is drained in FIFO order under the
  //     latch when a stripe fills, before any admission/eviction/removal,
  //     and on flush/stats calls. Single-threaded, the policy sees the
  //     exact same call sequence as batch_capacity = 0 (drains preserve
  //     order), so replacement behaviour is identical; multi-threaded, a
  //     reference may be applied up to one buffer-capacity late.
  size_t batch_capacity = 0;
  // Number of independent rings inside the AccessBuffer. 1 =
  // one shared ring per pool/shard; >= the thread count approximates a
  // per-thread buffer (uncontended per-stripe producer mutex, per-stripe
  // rather than global FIFO).
  size_t batch_stripes = 1;
  // Bounded retry of transient (kIoError) disk read/write failures before
  // the error surfaces to the caller. Off by default (max_attempts = 1);
  // see util/retry.h. The retry runs under the pool latch — size the
  // backoff accordingly (or leave `sleep` null for immediate re-issue).
  RetryOptions io_retry;
};

class BufferPool final : public PoolInterface {
 public:
  // `disk` must outlive the pool. The pool owns the policy.
  BufferPool(size_t capacity, DiskManager* disk,
             std::unique_ptr<ReplacementPolicy> policy,
             BufferPoolOptions options = {});
  ~BufferPool() override;

  Result<Page*> FetchPage(PageId p,
                          AccessType type = AccessType::kRead) override;
  Result<Page*> NewPage() override;

  // Admits the already-allocated disk page `p` as a fresh resident page:
  // pinned, zero-filled, and dirty, exactly as NewPage leaves it. Used by
  // ShardedBufferPool, whose page-id allocation happens at the pool level
  // before the owning shard is known. Precondition: `p` is allocated on
  // disk and not resident here.
  Result<Page*> AdmitNewPage(PageId p);

  Status UnpinPage(PageId p, bool dirty) override;
  Status FlushPage(PageId p) override;
  Status FlushAll() override;
  Status DeletePage(PageId p) override;

  size_t capacity() const override { return capacity_; }
  size_t ResidentCount() const override {
    std::lock_guard<std::mutex> guard(latch_);
    return page_table_.size();
  }
  bool IsResident(PageId p) const override {
    std::lock_guard<std::mutex> guard(latch_);
    return page_table_.contains(p);
  }
  BufferPoolStats stats() const override {
    // Observation points drain so the policy's view is current (and so a
    // caller inspecting the policy right after sees no pending records).
    std::lock_guard<std::mutex> guard(latch_);
    DrainAccessBufferLocked();
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> guard(latch_);
    DrainAccessBufferLocked();
    stats_ = BufferPoolStats{};
  }
  ReplacementPolicy& policy() { return *policy_; }
  DiskManager& disk() { return *disk_; }
  const BufferPoolOptions& options() const { return options_; }
  // Drain/push counters for the batching buffer; all-zero when batching is
  // disabled (batch_capacity == 0).
  AccessBufferStats access_buffer_stats() const {
    std::lock_guard<std::mutex> guard(latch_);
    return access_buffer_ ? access_buffer_->stats() : AccessBufferStats{};
  }

 private:
  // Disk I/O under options_.io_retry, with the pool's failure/retry
  // accounting. Caller holds the latch.
  Status DiskRead(PageId p, char* out);
  Status DiskWrite(PageId p, const char* data);
  // Finds a frame for a new resident page: the free list first, then a
  // policy eviction (with dirty write-back). If the victim's write-back
  // fails, the eviction is rolled back (policy_->Restore) and the pool is
  // left exactly as before the call.
  Result<FrameId> AcquireFrame();
  // NewPage/AdmitNewPage body; the latch is already held.
  Result<Page*> AdmitNewPageLocked(PageId p);
  // Applies every buffered access record to the policy. Caller holds the
  // latch. Declared const because observation paths (stats) drain too;
  // the mutation happens through the shallow-const member pointers.
  void DrainAccessBufferLocked() const;

  mutable std::mutex latch_;
  size_t capacity_;
  DiskManager* disk_;
  std::unique_ptr<ReplacementPolicy> policy_;
  BufferPoolOptions options_;
  // Present iff options_.batch_capacity > 0.
  std::unique_ptr<AccessBuffer> access_buffer_;
  std::vector<Page> frames_;
  std::vector<FrameId> free_frames_;
  std::unordered_map<PageId, FrameId> page_table_;
  BufferPoolStats stats_;
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_BUFFER_POOL_H_
