// The buffer pool manager: a fixed set of frames caching disk pages, with
// the replacement decision delegated to any ReplacementPolicy — this is
// the substrate in which LRU-K is meant to live (the paper's prototype was
// built inside the Huron database's buffer manager).
//
// Pin protocol: FetchPage/NewPage return the page pinned; callers must
// balance every fetch with UnpinPage (or use PageGuard). Pinned pages are
// never victims. A fetch when every frame is pinned fails with
// RESOURCE_EXHAUSTED.
//
// Thread safety: all pool operations (and through them the policy and the
// disk manager) are serialized by one internal latch — coarse-grained by
// design, since the replacement *decision* is the subject of this library
// and per-frame latching would obscure it. Page *contents* are accessed
// outside the latch under the pin protocol: a pinned page cannot be
// evicted, and Page pointers stay stable for the pool's lifetime, so
// concurrent readers are safe; concurrent writers to the same page must
// coordinate among themselves (as with per-page latches in a real DBMS).

#ifndef LRUK_BUFFERPOOL_BUFFER_POOL_H_
#define LRUK_BUFFERPOOL_BUFFER_POOL_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bufferpool/page.h"
#include "core/replacement_policy.h"
#include "storage/disk_manager.h"
#include "util/status.h"

namespace lruk {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  double HitRatio() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class BufferPool {
 public:
  // `disk` must outlive the pool. The pool owns the policy.
  BufferPool(size_t capacity, DiskManager* disk,
             std::unique_ptr<ReplacementPolicy> policy);
  ~BufferPool();
  LRUK_DISALLOW_COPY_AND_MOVE(BufferPool);

  // Returns the page pinned, reading it from disk on a miss. `type`
  // reaches the replacement policy (and kWrite marks the page dirty).
  Result<Page*> FetchPage(PageId p, AccessType type = AccessType::kRead);

  // Allocates a new disk page, returns it pinned, zeroed, and dirty.
  Result<Page*> NewPage();

  // Drops one pin; `dirty` accumulates into the page's dirty flag. The
  // page becomes evictable when its pin count reaches zero.
  Status UnpinPage(PageId p, bool dirty);

  // Writes the page image to disk now (page stays resident and keeps its
  // pins). Clears the dirty flag.
  Status FlushPage(PageId p);

  // Flushes every dirty resident page.
  Status FlushAll();

  // Removes the page from the pool and deallocates it on disk. Fails if
  // pinned.
  Status DeletePage(PageId p);

  size_t capacity() const { return capacity_; }
  size_t ResidentCount() const {
    std::lock_guard<std::mutex> guard(latch_);
    return page_table_.size();
  }
  bool IsResident(PageId p) const {
    std::lock_guard<std::mutex> guard(latch_);
    return page_table_.contains(p);
  }
  BufferPoolStats stats() const {
    std::lock_guard<std::mutex> guard(latch_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> guard(latch_);
    stats_ = BufferPoolStats{};
  }
  ReplacementPolicy& policy() { return *policy_; }
  DiskManager& disk() { return *disk_; }

 private:
  // Finds a frame for a new resident page: the free list first, then a
  // policy eviction (with dirty write-back).
  Result<FrameId> AcquireFrame();

  mutable std::mutex latch_;
  size_t capacity_;
  DiskManager* disk_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<Page> frames_;
  std::vector<FrameId> free_frames_;
  std::unordered_map<PageId, FrameId> page_table_;
  BufferPoolStats stats_;
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_BUFFER_POOL_H_
