// A sharded buffer pool: frames are partitioned across N single-latch
// BufferPool shards (N a power of two), with pages routed to shards by a
// hash of their PageId. Each shard owns its own latch, page table,
// ReplacementPolicy instance and BufferPoolStats, so operations on pages
// in different shards never contend — the multi-core scaling answer the
// single coarse latch cannot give (see DESIGN.md "Concurrency & sharding").
//
// Semantics, relative to the single-latch BufferPool:
//
//  * Per-shard, the replacement behaviour is exactly the wrapped policy's:
//    each shard runs an unmodified BufferPool, so LRU-K's victim ordering
//    (or 2Q's, ARC's, ...) holds among the pages of that shard. There is
//    NO global eviction order — the globally coldest page survives if its
//    shard happens to be under less pressure than another shard's merely
//    cool page. With 1 shard the pool is behaviourally identical to
//    BufferPool (the differential test asserts byte-for-byte equal stats).
//  * Capacity is partitioned, not pooled: a fetch fails with
//    RESOURCE_EXHAUSTED when every frame of the *owning shard* is pinned,
//    even if other shards have free frames. Frames are distributed as
//    evenly as the remainder allows (the first capacity % N shards get one
//    extra frame).
//  * Page ids are allocated by a single pool-level allocator (the disk
//    manager, serialized by one allocation latch), so NewPage ids are
//    unique across shards; the new page then lives in whichever shard its
//    id hashes to.
//  * Statistics: stats() aggregates across shards; ShardStats() exposes
//    the per-shard breakdown for observability. Hit/miss counting
//    semantics are BufferPoolStats's (re-pins count as hits).
//  * The DiskManager must be thread-safe: shards issue reads/write-backs
//    concurrently under their own latches. SimDiskManager and
//    FileDiskManager are internally latched.
//  * DeletePage frees the disk id for reuse, so a thread that fetches a
//    page id concurrently with (or after) another thread's delete may get
//    NotFound, a freshly reallocated page whose contents it does not
//    recognize, or — if the reallocation is still mid-admission — an I/O
//    error. The pool's internal invariants hold in every interleaving;
//    coordinating "who may still use this id" is the caller's job, exactly
//    as it is for the single-latch pool.
//
// Policy construction: the pool builds one policy per shard through a
// ShardPolicyFactory callback, so any policy in the catalog (LRU-K, 2Q,
// ARC, ...) — or a custom one — can be supplied without this header
// knowing its type. MakeShardPolicyFactory adapts a PolicyConfig.

#ifndef LRUK_BUFFERPOOL_SHARDED_BUFFER_POOL_H_
#define LRUK_BUFFERPOOL_SHARDED_BUFFER_POOL_H_

#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/pool_interface.h"
#include "core/policy_factory.h"
#include "storage/disk_manager.h"

namespace lruk {

class ShardedBufferPool final : public PoolInterface {
 public:
  // Partitions `capacity` frames across `num_shards` shards (a power of
  // two, <= capacity). `disk` must outlive the pool and be thread-safe.
  // `factory` is invoked once per shard as factory(shard_index,
  // shard_capacity) and must return a fresh policy each time.
  // `shard_options` is applied to every shard; batch_capacity > 0 turns
  // on batched access recording per shard (each shard drains its own
  // AccessBuffer under its own latch — see DESIGN.md "Batched access
  // recording"). optimistic_hits makes every shard's warm hits and unpins
  // latch-free (the pool-level readahead detector still observes the full
  // fetch stream here, above the shards, so readahead and the optimistic
  // fast path compose).
  ShardedBufferPool(size_t capacity, size_t num_shards, DiskManager* disk,
                    ShardPolicyFactory factory,
                    BufferPoolOptions shard_options = {});

  Result<Page*> FetchPage(PageId p,
                          AccessType type = AccessType::kRead) override;
  Result<Page*> NewPage() override;
  Status UnpinPage(PageId p, bool dirty) override;
  Status FlushPage(PageId p) override;
  Status FlushAll() override;
  Status DeletePage(PageId p) override;

  size_t capacity() const override { return capacity_; }
  size_t ResidentCount() const override;
  bool IsResident(PageId p) const override;

  // Aggregate counters: the sum of every shard's stats.
  BufferPoolStats stats() const override;
  // Lock-free aggregate snapshot: sums every shard's atomic counters
  // without taking any shard latch or draining buffered records.
  BufferPoolStats StatsSnapshot() const override;
  void ResetStats() override;

  // --- Sharding observability ---

  size_t shard_count() const { return shards_.size(); }
  // Which shard owns `p` (a pure function of the page id).
  size_t ShardOf(PageId p) const { return MixPageId(p) & shard_mask_; }
  // Direct access to one shard (its capacity, policy, stats, ...).
  BufferPool& shard(size_t i) { return *shards_[i]; }
  const BufferPool& shard(size_t i) const { return *shards_[i]; }
  // Per-shard counter breakdown, indexed by shard.
  std::vector<BufferPoolStats> ShardStats() const;
  // Meta-policy counters merged across shards (expert-wise sums; shards
  // adapt independently, so active_expert is shard 0's choice — use
  // shard(i).MetaStats() for the per-shard view).
  MetaPolicyStats MetaStats() const {
    MetaPolicyStats total;
    for (const auto& shard : shards_) total += shard->MetaStats();
    return total;
  }
  // Batching-buffer counters summed across shards (all-zero when
  // batch_capacity == 0).
  AccessBufferStats access_buffer_stats() const {
    AccessBufferStats total;
    for (const auto& shard : shards_) total += shard->access_buffer_stats();
    return total;
  }

  DiskManager& disk() { return *disk_; }

  // --- Async I/O dispatcher surface (no-ops unless shard_options
  //     .io_dispatcher; see DESIGN.md "Async I/O dispatcher") ---

  // The dispatcher every shard submits through (one worker fleet for the
  // whole pool); null when disabled.
  IoDispatcher* io_dispatcher() { return io_.get(); }
  // Background prefetch of `p`, routed to its owning shard.
  void RequestPrefetch(PageId p);
  // Blocks until every shard's in-flight dispatcher work has completed.
  void Quiesce();

 private:
  // SplitMix64 finalizer: page ids are typically dense small integers, so
  // route through a strong mix to spread them uniformly across shards
  // (p & mask would put entire hot ranges in one shard).
  static uint64_t MixPageId(PageId p) {
    uint64_t z = p + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  size_t capacity_;
  size_t shard_mask_;
  DiskManager* disk_;
  // Serializes page-id allocation and deletion at the pool level. Lock
  // order is alloc_latch_ -> shard latch -> disk latch; nothing acquires
  // them in the reverse direction.
  std::mutex alloc_latch_;
  // Ids handed out by the allocator whose shard admission has not settled
  // yet (guarded by alloc_latch_). DeletePage refuses these: a stale
  // delete of a reused id must not free the disk page mid-admission.
  std::unordered_set<PageId> pending_admits_;
  // One dispatcher shared by all shards (declared before shards_ so the
  // shards — which quiesce through it in their destructors — are torn
  // down while it is still alive).
  std::unique_ptr<IoDispatcher> io_;
  // Pool-level scan detector: hash routing destroys per-shard
  // sequentiality, so the shards' own detectors stay off and the fetch
  // stream is observed here, after each shard fetch. Observe is
  // wait-free (stride voting over an atomic history ring), so no
  // detector latch serializes the fetch streams.
  std::unique_ptr<ReadaheadDetector> readahead_;
  std::vector<std::unique_ptr<BufferPool>> shards_;
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_SHARDED_BUFFER_POOL_H_
