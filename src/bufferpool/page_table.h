// The buffer pool's resident-page index: an open-addressing hash table
// (linear probing, SplitMix64 — the HistoryTable's scheme) mapping PageId
// to FrameId, with a per-bucket version stamp that makes LOOKUPS safe
// without the pool latch while MUTATIONS stay serialized under it.
//
// Concurrency protocol (DESIGN.md "Optimistic page table & pin protocol"):
//
//  * Every bucket carries an atomic version counter. Even = stable, odd =
//    a mutation is in progress. A mutator (always holding the pool latch)
//    bumps the version to odd before touching a bucket's payload and back
//    to even (original + 2) afterwards, so versions only grow and a bucket
//    whose version is even AND unchanged across a read window held its
//    payload constant through that window — a seqlock per bucket.
//  * An optimistic reader probes without any lock: load version, load
//    payload, and treat ANY instability — odd version, version changed,
//    page absent, probe too long — as "fall back to the latched path".
//    False negatives are therefore harmless (the latched path re-checks
//    authoritatively); the protocol only has to make false POSITIVES
//    impossible, which is what Validate() after the speculative pin is
//    for (see BufferPool::FetchPage).
//  * Deletion is backward-shift (no tombstones), exactly like the
//    HistoryTable's, except every moved entry bumps both buckets'
//    versions so a reader can never validate against a relocated slot.
//    The table never grows: it is sized at construction for `capacity`
//    live entries at a load factor <= 1/2 (residents are bounded by the
//    pool's frame count), so probes always terminate at an empty bucket.
//  * LockBucket/Unlock* expose the version dance to the pool's eviction,
//    deletion and flusher paths, which must invalidate a bucket BEFORE
//    checking the frame's pin count (the store-load handshake that makes
//    "no frame is evicted or reused while an optimistic reader is
//    mid-validation" hold; see the pin protocol notes in buffer_pool.h).
//
// Memory ordering: all version/payload atomics use seq_cst. The handshake
// needs store-load ordering (Dekker-style) between a mutator's odd-version
// store + pin-count load and a reader's pin fetch_add + version re-load;
// seq_cst everywhere makes that airtight, keeps TSan exact, and costs
// nothing on the hit path (seq_cst loads are plain loads on x86/ARM —
// the only RMW a hit performs is the pin CAS it needs anyway).

#ifndef LRUK_BUFFERPOOL_PAGE_TABLE_H_
#define LRUK_BUFFERPOOL_PAGE_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/macros.h"

namespace lruk {

class PageTable {
 public:
  // Sizes the table for up to `capacity` live entries (the pool's frame
  // count): bucket count is the next power of two >= 2 * capacity, so the
  // load factor never exceeds 1/2 and the table never needs to grow.
  explicit PageTable(size_t capacity);
  LRUK_DISALLOW_COPY_AND_MOVE(PageTable);

  size_t size() const { return size_; }
  size_t bucket_count() const { return mask_ + 1; }

  // --- Latched surface (caller holds the pool latch) ---

  bool contains(PageId p) const { return FindBucket(p) != kNpos; }
  // Looks up p; returns false if absent.
  bool Find(PageId p, FrameId* frame) const;
  // Inserts p -> frame. Precondition: p is absent and size() < capacity.
  void Insert(PageId p, FrameId frame);
  // Removes p (present), backward-shifting the probe cluster.
  void Erase(PageId p);
  // Locks p's bucket: version goes odd, so every optimistic reader that
  // probed it falls back (and any reader that pins afterwards fails
  // validation). Returns the bucket index for the matching Unlock call.
  // Precondition: p is present.
  size_t LockBucket(PageId p);
  // Releases a locked bucket with its mapping intact (version +2, even).
  void UnlockUnchanged(size_t bucket);
  // Releases a locked bucket by erasing its entry (backward shift; every
  // touched bucket's version is bumped).
  void UnlockErased(size_t bucket);
  // Visits every (page, frame) pair in unspecified order. Caller holds the
  // latch; the callback must not mutate the table.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Bucket& b : buckets_) {
      PageId p = b.page.load(std::memory_order_relaxed);
      if (p != kInvalidPageId) {
        fn(p, b.frame.load(std::memory_order_relaxed));
      }
    }
  }

  // --- Optimistic surface (no latch) ---

  // A consistent (version, frame) observation of p's bucket.
  struct Snapshot {
    uint64_t version = 0;
    FrameId frame = 0;
    size_t bucket = 0;
  };

  // Why an optimistic probe gave up — the pool re-exports these as the
  // fallback_probe_miss / fallback_version_conflict / fallback_resize
  // counters so bench output can attribute latched fallbacks.
  enum class ProbeFail : uint8_t {
    kNone = 0,
    // A clean empty bucket terminated the probe: the page is absent (or a
    // concurrent backward shift left a transient hole — indistinguishable
    // without the latch, and the latched path re-checks either way).
    kMiss,
    // The bucket was mid-mutation (odd version) or its version moved
    // between the page and frame reads.
    kVersionConflict,
    // The displacement bound (a full ring scan) was exhausted without an
    // empty terminator — the overload condition a growable table would
    // resolve by resizing.
    kDisplacementBound,
  };

  // Probes for p without the latch. True = the bucket mapped p -> frame
  // with a stable (even) version across the reads; the caller may then
  // speculatively pin frames()[frame] and MUST re-check with Validate().
  // False = absent or unstable (`*why`, when non-null, says which); fall
  // back to the latched path (which is authoritative), never conclude a
  // miss from this alone.
  bool OptimisticFind(PageId p, Snapshot* out,
                      ProbeFail* why = nullptr) const;

  // True iff the bucket's version still equals the snapshot's — i.e. the
  // mapping held continuously since OptimisticFind, so a pin taken in
  // between landed on the right frame.
  bool Validate(const Snapshot& snap) const {
    return buckets_[snap.bucket].version.load() == snap.version;
  }

 private:
  struct Bucket {
    std::atomic<uint64_t> version{0};
    std::atomic<PageId> page{kInvalidPageId};
    std::atomic<FrameId> frame{0};
  };

  static constexpr size_t kNpos = static_cast<size_t>(-1);

  // SplitMix64 finalizer (same mix as HistoryTable and shard routing).
  static uint64_t Mix(PageId p) {
    uint64_t z = p + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  size_t IdealBucket(PageId p) const { return Mix(p) & mask_; }
  // Authoritative probe under the latch; kNpos if absent.
  size_t FindBucket(PageId p) const;
  // Backward-shift erase starting from `hole`, whose version the caller
  // has already made odd. Leaves every touched bucket even again.
  void EraseFromLockedBucket(size_t hole);

  size_t mask_;
  size_t capacity_;
  size_t size_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_PAGE_TABLE_H_
