#include "bufferpool/page_guard.h"

#include <utility>

namespace lruk {

PageGuard::PageGuard(PoolInterface* pool, Page* page, bool dirty)
    : pool_(pool), page_(page), dirty_(dirty) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      page_(std::exchange(other.page_, nullptr)),
      dirty_(std::exchange(other.dirty_, false)) {}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = std::exchange(other.pool_, nullptr);
    page_ = std::exchange(other.page_, nullptr);
    dirty_ = std::exchange(other.dirty_, false);
  }
  return *this;
}

Result<PageGuard> PageGuard::Fetch(PoolInterface& pool, PageId p,
                                   AccessType type) {
  auto page = pool.FetchPage(p, type);
  if (!page.ok()) return page.status();
  return PageGuard(&pool, *page, type == AccessType::kWrite);
}

Result<PageGuard> PageGuard::New(PoolInterface& pool) {
  auto page = pool.NewPage();
  if (!page.ok()) return page.status();
  return PageGuard(&pool, *page, /*dirty=*/true);
}

void PageGuard::Release() {
  if (page_ != nullptr) {
    // UnpinPage performs no I/O (write-back happens at eviction or flush
    // time), so there is no fault path here: the unpin can only fail on
    // protocol misuse, which the guard rules out. A failed Fetch/New never
    // constructs a guard, so a guard never holds a pin the pool rolled
    // back.
    Status status = pool_->UnpinPage(page_->id(), dirty_);
    LRUK_ASSERT(status.ok(), status.ToString().c_str());
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }
}

}  // namespace lruk
