// A buffer frame's in-memory page image plus its control metadata.

#ifndef LRUK_BUFFERPOOL_PAGE_H_
#define LRUK_BUFFERPOOL_PAGE_H_

#include <atomic>
#include <cstring>
#include <memory>

#include "core/types.h"
#include "storage/disk_manager.h"
#include "util/macros.h"

namespace lruk {

class BufferPool;

// One buffer slot. Lifetime and pinning are managed by BufferPool; user
// code receives Page* from FetchPage/NewPage and must Unpin when done
// (or hold a PageGuard, which does it automatically).
//
// pin_count_ and dirty_ are atomics because the optimistic hit path
// (BufferPoolOptions::optimistic_hits) pins and dirties frames without
// the pool latch. Two rules keep the counts exact:
//  * pin_count_ is only ever modified with fetch_add/fetch_sub/CAS,
//    never store() — a stale optimistic reader may hold a transient +1
//    on any frame (undone after validation fails), and a blind store
//    would erase it.
//  * id_ stays a plain field: it is written only under the pool latch
//    while the page-table bucket is locked (odd version), and the
//    bucket-version validation orders those writes before any
//    optimistic reader's access.
class Page {
 public:
  Page() : data_(std::make_unique<char[]>(kPageSize)) {}
  LRUK_DISALLOW_COPY_AND_MOVE(Page);

  PageId id() const { return id_; }
  int pin_count() const { return pin_count_.load(std::memory_order_relaxed); }
  bool is_dirty() const { return dirty_.load(std::memory_order_relaxed); }

  char* Data() { return data_.get(); }
  const char* Data() const { return data_.get(); }

  // Reinterprets the page image as a struct layout. T must be trivially
  // copyable and fit in a page.
  template <typename T>
  T* As() {
    static_assert(sizeof(T) <= kPageSize, "layout exceeds the page size");
    return reinterpret_cast<T*>(data_.get());
  }
  template <typename T>
  const T* As() const {
    static_assert(sizeof(T) <= kPageSize, "layout exceeds the page size");
    return reinterpret_cast<const T*>(data_.get());
  }

  void ZeroFill() { std::memset(data_.get(), 0, kPageSize); }

 private:
  friend class BufferPool;

  std::unique_ptr<char[]> data_;
  PageId id_ = kInvalidPageId;
  std::atomic<int> pin_count_{0};
  std::atomic<bool> dirty_{false};
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_PAGE_H_
