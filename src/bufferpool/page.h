// A buffer frame's in-memory page image plus its control metadata.

#ifndef LRUK_BUFFERPOOL_PAGE_H_
#define LRUK_BUFFERPOOL_PAGE_H_

#include <cstring>
#include <memory>

#include "core/types.h"
#include "storage/disk_manager.h"
#include "util/macros.h"

namespace lruk {

class BufferPool;

// One buffer slot. Lifetime and pinning are managed by BufferPool; user
// code receives Page* from FetchPage/NewPage and must Unpin when done
// (or hold a PageGuard, which does it automatically).
class Page {
 public:
  Page() : data_(std::make_unique<char[]>(kPageSize)) {}
  LRUK_DISALLOW_COPY(Page);
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  PageId id() const { return id_; }
  int pin_count() const { return pin_count_; }
  bool is_dirty() const { return dirty_; }

  char* Data() { return data_.get(); }
  const char* Data() const { return data_.get(); }

  // Reinterprets the page image as a struct layout. T must be trivially
  // copyable and fit in a page.
  template <typename T>
  T* As() {
    static_assert(sizeof(T) <= kPageSize, "layout exceeds the page size");
    return reinterpret_cast<T*>(data_.get());
  }
  template <typename T>
  const T* As() const {
    static_assert(sizeof(T) <= kPageSize, "layout exceeds the page size");
    return reinterpret_cast<const T*>(data_.get());
  }

  void ZeroFill() { std::memset(data_.get(), 0, kPageSize); }

 private:
  friend class BufferPool;

  std::unique_ptr<char[]> data_;
  PageId id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool dirty_ = false;
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_PAGE_H_
