#include "bufferpool/buffer_pool.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

namespace lruk {

BufferPoolStats BufferPool::AtomicPoolStats::ToStats() const {
  BufferPoolStats s;
  s.hits = hits.load(std::memory_order_relaxed);
  s.misses = misses.load(std::memory_order_relaxed);
  s.evictions = evictions.load(std::memory_order_relaxed);
  s.dirty_writebacks = dirty_writebacks.load(std::memory_order_relaxed);
  s.read_failures = read_failures.load(std::memory_order_relaxed);
  s.write_failures = write_failures.load(std::memory_order_relaxed);
  s.retries = retries.load(std::memory_order_relaxed);
  s.coalesced_reads = coalesced_reads.load(std::memory_order_relaxed);
  s.prefetch_issued = prefetch_issued.load(std::memory_order_relaxed);
  s.prefetch_used = prefetch_used.load(std::memory_order_relaxed);
  s.prefetch_dropped = prefetch_dropped.load(std::memory_order_relaxed);
  s.background_cleans = background_cleans.load(std::memory_order_relaxed);
  s.writebehind_writes = writebehind_writes.load(std::memory_order_relaxed);
  s.writebehind_readmits =
      writebehind_readmits.load(std::memory_order_relaxed);
  s.io_drops_flush = io_drops_flush.load(std::memory_order_relaxed);
  s.io_drops_prefetch = io_drops_prefetch.load(std::memory_order_relaxed);
  s.optimistic_hits = optimistic_hits.load(std::memory_order_relaxed);
  s.optimistic_fallbacks = optimistic_fallbacks.load(std::memory_order_relaxed);
  s.fallback_probe_miss = fallback_probe_miss.load(std::memory_order_relaxed);
  s.fallback_version_conflict =
      fallback_version_conflict.load(std::memory_order_relaxed);
  s.fallback_resize = fallback_resize.load(std::memory_order_relaxed);
  s.access_drops = access_drops.load(std::memory_order_relaxed);
  s.pin_cas_retries = pin_cas_retries.load(std::memory_order_relaxed);
  s.latch_acquires = latch_acquires.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::AtomicPoolStats::Reset() {
  hits.store(0, std::memory_order_relaxed);
  misses.store(0, std::memory_order_relaxed);
  evictions.store(0, std::memory_order_relaxed);
  dirty_writebacks.store(0, std::memory_order_relaxed);
  read_failures.store(0, std::memory_order_relaxed);
  write_failures.store(0, std::memory_order_relaxed);
  retries.store(0, std::memory_order_relaxed);
  coalesced_reads.store(0, std::memory_order_relaxed);
  prefetch_issued.store(0, std::memory_order_relaxed);
  prefetch_used.store(0, std::memory_order_relaxed);
  prefetch_dropped.store(0, std::memory_order_relaxed);
  background_cleans.store(0, std::memory_order_relaxed);
  writebehind_writes.store(0, std::memory_order_relaxed);
  writebehind_readmits.store(0, std::memory_order_relaxed);
  io_drops_flush.store(0, std::memory_order_relaxed);
  io_drops_prefetch.store(0, std::memory_order_relaxed);
  optimistic_hits.store(0, std::memory_order_relaxed);
  optimistic_fallbacks.store(0, std::memory_order_relaxed);
  fallback_probe_miss.store(0, std::memory_order_relaxed);
  fallback_version_conflict.store(0, std::memory_order_relaxed);
  fallback_resize.store(0, std::memory_order_relaxed);
  access_drops.store(0, std::memory_order_relaxed);
  pin_cas_retries.store(0, std::memory_order_relaxed);
  latch_acquires.store(0, std::memory_order_relaxed);
}

BufferPool::BufferPool(size_t capacity, DiskManager* disk,
                       std::unique_ptr<ReplacementPolicy> policy,
                       BufferPoolOptions options,
                       IoDispatcher* shared_dispatcher)
    : capacity_(capacity),
      disk_(disk),
      policy_(std::move(policy)),
      options_(options),
      page_table_(capacity) {
  LRUK_ASSERT(capacity_ >= 1, "buffer pool needs at least one frame");
  LRUK_ASSERT(disk_ != nullptr, "buffer pool needs a disk manager");
  LRUK_ASSERT(policy_ != nullptr, "buffer pool needs a replacement policy");
  optimistic_ = options_.optimistic_hits;
  if (optimistic_ && options_.batch_capacity == 0) {
    // A latch-free hit can only publish its reference through the
    // AccessBuffer (RecordAccess needs the latch), so optimistic mode
    // implies batching.
    options_.batch_capacity = 64;
  }
  if (options_.batch_capacity > 0) {
    access_buffer_ = std::make_unique<AccessBuffer>(
        options_.batch_capacity,
        options_.batch_stripes == 0 ? 1 : options_.batch_stripes);
  }
  if (options_.io_dispatcher) {
    if (shared_dispatcher != nullptr) {
      io_ = shared_dispatcher;
    } else {
      owned_io_ = std::make_unique<IoDispatcher>(
          IoDispatcherOptions{options_.io_workers, options_.io_queue_depth,
                              options_.io_starvation_budget});
      io_ = owned_io_.get();
    }
    if (options_.readahead.enabled) {
      readahead_ = std::make_unique<ReadaheadDetector>(options_.readahead);
    }
  }
  // Write-behind needs somewhere off the miss path to run: a worker-mode
  // dispatcher. Inline mode stays on the direct synchronous write-back so
  // deterministic replay sees the exact same disk-op order.
  write_behind_ =
      options_.write_behind && io_ != nullptr && !io_->inline_mode();
  {
    // The cadence/batch in force until (if adaptive) the first re-plan.
    uint64_t every = options_.flusher_adaptive ? options_.flusher_max_every
                                               : options_.flusher_every_ops;
    adaptive_every_.store(every == 0 ? 1 : every, std::memory_order_relaxed);
    uint64_t batch = options_.flusher_batch;
    adaptive_batch_.store(batch == 0 ? 1 : batch, std::memory_order_relaxed);
  }
  // A pool-level readahead detector no longer forces a stand-down: its
  // Observe is wait-free (an atomic history ring + stride voting, see
  // io/readahead.h), so latch-free hits feed it directly, and batched
  // victim nomination (EvictBatch) keeps skipped pinned nominees from
  // churning LRU-K's bounded retained-history budget.
  fast_path_ = optimistic_;
  frames_ = std::make_unique<Page[]>(capacity_);
  frame_prefetched_ = std::make_unique<std::atomic<uint8_t>[]>(capacity_);
  for (size_t f = 0; f < capacity_; ++f) {
    frame_prefetched_[f].store(0, std::memory_order_relaxed);
  }
  free_frames_.reserve(capacity_);
  for (FrameId f = 0; f < capacity_; ++f) {
    free_frames_.push_back(static_cast<FrameId>(capacity_ - 1 - f));
  }
}

BufferPool::~BufferPool() {
  // Settle in-flight dispatcher work first (prefetch reads land in frame
  // buffers), then best-effort write-back of surviving dirty pages.
  Quiesce();
  (void)FlushAll();
}

Status BufferPool::DiskRead(PageId p, char* out) {
  RetryOutcome outcome = RetryWithBackoff(
      options_.io_retry, [&] { return disk_->ReadPage(p, out); });
  stats_.retries += outcome.retries;
  if (!outcome.status.ok()) ++stats_.read_failures;
  return outcome.status;
}

Status BufferPool::DiskWrite(PageId p, const char* data) {
  RetryOutcome outcome = RetryWithBackoff(
      options_.io_retry, [&] { return disk_->WritePage(p, data); });
  stats_.retries += outcome.retries;
  if (!outcome.status.ok()) ++stats_.write_failures;
  return outcome.status;
}

Result<FrameId> BufferPool::AcquireFrame(
    std::vector<PageId>* deferred_writes) {
  if (!free_frames_.empty()) {
    FrameId f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  bool defer = write_behind_ && deferred_writes != nullptr;
  if (!optimistic_) {
    auto victim = policy_->Evict();
    if (!victim.has_value()) {
      return Status::ResourceExhausted(
          "all buffer frames are pinned; cannot evict");
    }
    FrameId f = 0;
    bool found = page_table_.Find(*victim, &f);
    LRUK_ASSERT(found, "policy evicted a page the pool does not hold");
    Page& page = frames_[f];
    LRUK_ASSERT(page.pin_count_.load(std::memory_order_relaxed) == 0,
                "policy evicted a pinned page");
    if (page.is_dirty()) {
      if (defer) {
        // Write-behind: copy the image aside (the "pinned copy") and hand
        // the write to the Flush lane after the latch drops — the frame is
        // reusable immediately and the miss path never waits on it. A
        // failed write re-admits exactly (ReadmitFailedVictimLocked).
        auto vw = std::make_shared<VictimWrite>();
        vw->image = std::make_unique<char[]>(kPageSize);
        std::memcpy(vw->image.get(), page.Data(), kPageSize);
        pending_victim_writes_.emplace(*victim, std::move(vw));
        deferred_writes->push_back(*victim);
      } else {
        // Write back BEFORE dismantling any pool state, so a failure can
        // roll the eviction back: the frame still holds the page image and
        // its page-table entry, pin count (0) and dirty bit are untouched —
        // Restore() re-registers the victim with the policy and the pool is
        // exactly as it was before Evict(). No eviction is counted.
        Status written = DiskWrite(page.id_, page.Data());
        if (!written.ok()) {
          policy_->Restore(*victim);
          return written;
        }
        ++stats_.dirty_writebacks;
      }
    }
    page_table_.Erase(*victim);
    page.id_ = kInvalidPageId;
    page.dirty_.store(false, std::memory_order_relaxed);
    ++stats_.evictions;
    return f;
  }
  // Optimistic mode: SetEvictable is unused (a latch-free unpin cannot
  // call it), so the policy nominates pinned pages too; pin counts are
  // the ground truth. Nominate victims in escalating batches — EvictBatch
  // defers the retained-history insertion, so a skipped pinned nominee
  // costs one Restore instead of a full OnEvicted + resurrection round
  // trip through LRU-K's bounded non-resident budget. Take the first
  // unpinned nominee that survives the bucket handshake, then restore
  // every unused one in reverse pop order (exact for LRU-K;
  // single-threaded there are no pinned nominations in steady fetch/unpin
  // loops, so the first batch of one behaves identically to the latched
  // path's single Evict()).
  std::vector<PageId>& nominees = nominee_scratch_;  // Latch-guarded.
  std::vector<PageId>& batch = batch_scratch_;
  nominees.clear();
  size_t used = static_cast<size_t>(-1);
  bool stop = false;
  Result<FrameId> result = Status::ResourceExhausted(
      "all buffer frames are pinned; cannot evict");
  size_t want = 1;
  while (!stop) {
    if (policy_->EvictBatch(want, &batch) == 0) break;
    for (PageId victim : batch) {
      nominees.push_back(victim);
      if (stop) continue;  // Unexamined tail of the batch: restore below.
      FrameId f = 0;
      bool found = page_table_.Find(victim, &f);
      LRUK_ASSERT(found, "policy evicted a page the pool does not hold");
      Page& page = frames_[f];
      // Invalidate the bucket FIRST, then read the pin count: any
      // optimistic reader that pinned before our version bump is visible
      // here (seq_cst store-load handshake); any later one fails its
      // validation and undoes its pin. A transient speculative pin from a
      // stale reader can park a +1 on any frame, so a nonzero count only
      // means "skip", never "corrupt".
      size_t bucket = page_table_.LockBucket(victim);
      if (page.pin_count_.load() != 0) {
        page_table_.UnlockUnchanged(bucket);
        continue;
      }
      // Unpinned and the bucket is odd: no reader can validate a new pin
      // until we release the bucket, so the frame is exclusively ours —
      // the write-back (or write-behind image copy) below cannot race a
      // page writer.
      if (page.is_dirty()) {
        if (defer) {
          auto vw = std::make_shared<VictimWrite>();
          vw->image = std::make_unique<char[]>(kPageSize);
          std::memcpy(vw->image.get(), page.Data(), kPageSize);
          pending_victim_writes_.emplace(victim, std::move(vw));
          deferred_writes->push_back(victim);
        } else {
          Status written = DiskWrite(page.id_, page.Data());
          if (!written.ok()) {
            // The failed nominee is restored below with the rest (it is
            // the most recent examined pop, so reverse order restores it
            // in its exact Evict-undo position).
            page_table_.UnlockUnchanged(bucket);
            result = written;
            stop = true;
            continue;
          }
          ++stats_.dirty_writebacks;
        }
      }
      page_table_.UnlockErased(bucket);
      page.id_ = kInvalidPageId;
      page.dirty_.store(false, std::memory_order_relaxed);
      ++stats_.evictions;
      result = f;
      used = nominees.size() - 1;
      stop = true;
    }
    // Every nominee so far was pinned: widen the net.
    want = want < 4 ? 4 : 16;
  }
  for (size_t i = nominees.size(); i-- > 0;) {
    if (i != used) policy_->Restore(nominees[i]);
  }
  return result;
}

void BufferPool::DrainAccessBufferLocked() const {
  // unique_ptr members are shallow-const, so observation paths (stats)
  // can drain through the same helper as mutating ones. Records for
  // since-evicted pages are dropped and counted (access_drops): with the
  // lock-free ring a record can stall behind another producer's
  // unpublished claim and surface only after its page was evicted, and
  // with optimistic_hits a latch-free pin + publish + unpin can complete
  // entirely inside another thread's latch hold — so residency at drain
  // time is the only safe filter. Single-threaded nothing is ever
  // dropped: every eviction point drains first, and the ring is exactly
  // FIFO without concurrent producers.
  if (access_buffer_ == nullptr) return;
  size_t dropped = 0;
  access_buffer_->Drain(*policy_, /*skip_non_resident=*/true, &dropped);
  if (dropped != 0) {
    stats_.access_drops.fetch_add(dropped, std::memory_order_relaxed);
  }
}

void BufferPool::FinishPendingLocked(PageId p,
                                     const std::shared_ptr<PendingIo>& entry,
                                     Status status) {
  entry->status = std::move(status);
  entry->done = true;
  pending_reads_.erase(p);
  entry->cv.notify_all();
  quiesce_cv_.notify_all();
}

void BufferPool::FencePageLocked(std::unique_lock<std::mutex>& guard,
                                 PageId p) {
  // Waits out every in-flight read of `p`, any in-flight write-behind
  // victim write of `p`, and any flusher clean of `p` mid-disk-write
  // (there is at most one of each at a time, but a completion can be
  // followed by a new one before we re-acquire the latch, hence the
  // loop). The flusher fence is what lets FlushPage/DeletePage run
  // against the clean's snapshot write without racing a newer image.
  while (io_ != nullptr) {
    auto it = pending_reads_.find(p);
    if (it != pending_reads_.end()) {
      std::shared_ptr<PendingIo> entry = it->second;
      entry->cv.wait(guard, [&] { return entry->done; });
      continue;
    }
    auto vw = pending_victim_writes_.find(p);
    if (vw != pending_victim_writes_.end()) {
      std::shared_ptr<VictimWrite> entry = vw->second;
      entry->cv.wait(guard, [&] { return entry->done; });
      continue;
    }
    if (flusher_cleaning_.contains(p)) {
      quiesce_cv_.wait(guard, [&] { return !flusher_cleaning_.contains(p); });
      continue;
    }
    return;
  }
}

void BufferPool::QuiesceLocked(std::unique_lock<std::mutex>& guard) {
  if (io_ == nullptr) return;
  quiesce_cv_.wait(guard, [&] {
    return pending_reads_.empty() && pending_victim_writes_.empty() &&
           inflight_background_ == 0;
  });
}

void BufferPool::Quiesce() {
  auto guard = Lock();
  QuiesceLocked(guard);
}

bool BufferPool::RegisterPrefetchLocked(PageId p) {
  if (page_table_.contains(p) || pending_reads_.contains(p)) return false;
  // A page with its own victim write in flight (or a parked image) will be
  // re-served from pool state, not from the possibly-stale disk image.
  if (pending_victim_writes_.contains(p) || parked_victims_.contains(p)) {
    return false;
  }
  if (io_ != nullptr && !io_->inline_mode()) {
    // Worker mode: bound concurrently in-flight prefetches. (Inline mode
    // never has more than the one executing synchronously right now.)
    size_t cap = options_.readahead.max_inflight != 0
                     ? options_.readahead.max_inflight
                     : options_.readahead.window;
    if (cap != 0 && inflight_prefetches_ >= cap) return false;
  }
  pending_reads_.emplace(p, std::make_shared<PendingIo>());
  ++inflight_prefetches_;
  ++inflight_background_;
  ++stats_.prefetch_issued;
  return true;
}

void BufferPool::ExecutePrefetch(PageId p) {
  auto guard = Lock();
  auto it = pending_reads_.find(p);
  LRUK_ASSERT(it != pending_reads_.end(), "prefetch lost its tracker entry");
  std::shared_ptr<PendingIo> entry = it->second;
  // A page stays out of the page table for as long as its tracker entry is
  // alive (demand fetches coalesce onto the entry, AdmitNewPage fences).
  LRUK_ASSERT(!page_table_.contains(p),
              "page admitted while its prefetch was in flight");
  auto abandon = [&](Status status) {
    // Prefetch failures never surface to demand fetches: coalesced waiters
    // retry as primaries and take their own (fully accounted) read.
    ++stats_.prefetch_dropped;
    entry->retry_as_primary = true;
    FinishPendingLocked(p, entry, std::move(status));
    --inflight_prefetches_;
    --inflight_background_;
    quiesce_cv_.notify_all();
  };
  DrainAccessBufferLocked();
  policy_->PrepareAdmit(p);
  std::vector<PageId> deferred;
  auto frame = AcquireFrame(&deferred);
  if (!frame.ok()) {
    abandon(frame.status());
    guard.unlock();
    LaunchDeferredVictimWrites(deferred);
    return;
  }
  Page& page = frames_[*frame];
  // The read itself runs with the latch released (we are on a worker in
  // worker mode, or past the foreground admission in inline mode); the
  // frame is reserved — in neither the free list nor the page table — and
  // the tracker entry keeps every other path off the page. The deferred
  // victim write (if any) is posted first so it overlaps the read
  // (TryPost from a worker never blocks).
  RetryOutcome outcome;
  guard.unlock();
  LaunchDeferredVictimWrites(deferred);
  outcome = RetryWithBackoff(options_.io_retry,
                             [&] { return disk_->ReadPage(p, page.Data()); });
  guard.lock();
  CountLatchAcquire();
  stats_.retries += outcome.retries;
  if (!outcome.status.ok()) {
    free_frames_.push_back(*frame);
    abandon(outcome.status);
    return;
  }
  page.id_ = p;
  // The frame came out of AcquireFrame with pin 0 and its clean image is
  // being installed; only the dirty flag needs (re)setting — pin counts
  // are never blind-stored (a stale optimistic reader may hold a
  // transient +1 it is about to undo).
  page.dirty_.store(false, std::memory_order_relaxed);
  page_table_.Insert(p, *frame);
  frame_prefetched_[*frame].store(1, std::memory_order_relaxed);
  // The admission ticks the policy clock; the demand reference that
  // (hopefully) follows lands as a hit within the correlated period.
  policy_->Admit(p, AccessType::kRead);
  FinishPendingLocked(p, entry, Status::Ok());
  --inflight_prefetches_;
  --inflight_background_;
  quiesce_cv_.notify_all();
}

void BufferPool::CollectBackgroundWorkLocked(PageId p, bool observe,
                                             std::vector<PageId>* targets,
                                             bool* flusher_due) {
  if (readahead_ != nullptr && observe) {
    readahead_->Observe(p, &readahead_scratch_);
    for (PageId q : readahead_scratch_) {
      if (RegisterPrefetchLocked(q)) targets->push_back(q);
    }
  }
  if (TickFlusher()) {
    *flusher_due = true;
    ++inflight_background_;
  }
}

void BufferPool::LaunchBackgroundWork(const std::vector<PageId>& prefetches,
                                      bool flusher_due) {
  if (io_ == nullptr) return;
  for (PageId q : prefetches) {
    if (io_->TryPost([this, q] { ExecutePrefetch(q); }, IoClass::kPrefetch)) {
      continue;
    }
    // Lane full: the prefetch never runs, so retire its tracker entry
    // here. Any demand fetch already waiting retries as a primary.
    auto guard = Lock();
    auto it = pending_reads_.find(q);
    LRUK_ASSERT(it != pending_reads_.end() && !it->second->done,
                "rejected prefetch already completed");
    std::shared_ptr<PendingIo> entry = it->second;
    ++stats_.prefetch_dropped;
    ++stats_.io_drops_prefetch;
    entry->retry_as_primary = true;
    FinishPendingLocked(q, entry,
                        Status::ResourceExhausted("dispatcher queue full"));
    --inflight_prefetches_;
    --inflight_background_;
    quiesce_cv_.notify_all();
  }
  if (!flusher_due) return;
  bool posted = io_->TryPost(
      [this] {
        RunFlusherPass();
        auto guard = Lock();
        --inflight_background_;
        quiesce_cv_.notify_all();
      },
      IoClass::kFlush);
  if (!posted) {
    // Dropped pass; the next trigger tries again.
    auto guard = Lock();
    ++stats_.io_drops_flush;
    --inflight_background_;
    quiesce_cv_.notify_all();
  }
}

void BufferPool::RequestPrefetch(PageId p) {
  if (io_ == nullptr) return;
  {
    auto guard = Lock();
    if (!RegisterPrefetchLocked(p)) return;
  }
  LaunchBackgroundWork({p}, /*flusher_due=*/false);
}

void BufferPool::RunFlusherPass() {
  auto guard = Lock();
  DrainAccessBufferLocked();
  // Peek the next victims without evicting: EvictBatch pops them in
  // victim order, Restore() puts them back exactly (LRU-K resurrects the HIST
  // block without a tick; policies with the default re-admitting Restore
  // pay one tick per peeked page — the flusher is opt-in). LIFO restore
  // order keeps Restore's "most recent Evict result" contract.
  std::vector<PageId> victims;
  // The pages the pass will try to clean. Latched mode: every peeked
  // victim (they are all unpinned by construction). Optimistic mode: the
  // policy nominates pinned pages too, so keep popping until
  // flusher_batch unpinned ones surface (or the policy runs dry) — the
  // clean set matches the latched peek exactly when nothing is pinned.
  std::vector<PageId> clean_set;
  size_t batch = options_.flusher_adaptive
                     ? adaptive_batch_.load(std::memory_order_relaxed)
                     : options_.flusher_batch;
  if (!optimistic_) {
    size_t want = batch;
    if (want > policy_->EvictableCount()) want = policy_->EvictableCount();
    policy_->EvictBatch(want, &victims);
    clean_set = victims;
  } else {
    // EvictBatch keeps the pinned-nominee churn off the retained-history
    // budget here too; chunk size tracks how many unpinned pages are
    // still wanted, so the pop sequence matches the latched peek exactly
    // when nothing is pinned.
    std::vector<PageId> chunk;
    bool dry = false;
    while (clean_set.size() < batch && !dry) {
      size_t want = batch - clean_set.size();
      if (policy_->EvictBatch(want, &chunk) < want) dry = true;
      for (PageId victim : chunk) {
        victims.push_back(victim);
        if (clean_set.size() >= batch) continue;
        FrameId f = 0;
        bool found = page_table_.Find(victim, &f);
        LRUK_ASSERT(found, "flusher peeked a page the pool does not hold");
        if (frames_[f].pin_count() == 0) clean_set.push_back(victim);
      }
    }
  }
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
    policy_->Restore(*it);
  }
  // Clean in victim order, most imminent first, WITHOUT holding the pool
  // latch across the disk writes (a batch of slow writes under the latch
  // would put the whole pass back on every other thread's miss path).
  // Per page: under the latch, pin it (no eviction, no delete can take
  // it), claim the dirty bit and snapshot the image; write the snapshot
  // unlatched; relock to unpin and settle. A client that re-dirties the
  // page mid-write just leaves it dirty for a later pass — the snapshot
  // is a valid prior version. FencePageLocked waits on flusher_cleaning_
  // so no explicit FlushPage can race a newer image against the
  // snapshot; a failed write re-sets the dirty bit.
  auto scratch = std::make_unique<char[]>(kPageSize);
  for (PageId v : clean_set) {
    FrameId f = 0;
    // Re-validate per page: the latch drops between cleans, so a peeked
    // page can be evicted or deleted before its turn comes.
    if (!page_table_.Find(v, &f)) continue;
    Page& page = frames_[f];
    if (optimistic_) {
      // Same handshake as eviction: bucket odd, THEN re-check the pin —
      // a concurrent latch-free pin either lands before the bump (seen
      // here: skip) or fails validation. Claim and copy while the bucket
      // is still odd (no latch-free pin can land and mutate the image
      // mid-copy); the pin taken here blocks eviction for the whole
      // snapshot write after the bucket is released.
      size_t bucket = page_table_.LockBucket(v);
      if (page.pin_count_.load() != 0 || !page.is_dirty()) {
        page_table_.UnlockUnchanged(bucket);
        continue;
      }
      page.pin_count_.fetch_add(1);
      page.dirty_.store(false, std::memory_order_relaxed);
      std::memcpy(scratch.get(), page.Data(), kPageSize);
      page_table_.UnlockUnchanged(bucket);
    } else {
      // Claim-then-copy under the latch: pins need the latch in latched
      // mode, so with pin_count == 0 here nobody is mutating the image
      // during the copy.
      if (page.pin_count_.load(std::memory_order_relaxed) != 0 ||
          !page.is_dirty()) {
        continue;
      }
      page.pin_count_.fetch_add(1);
      policy_->SetEvictable(v, false);
      page.dirty_.store(false, std::memory_order_relaxed);
      std::memcpy(scratch.get(), page.Data(), kPageSize);
    }
    flusher_cleaning_.insert(v);
    guard.unlock();
    Status written = DiskWrite(v, scratch.get());
    guard.lock();
    CountLatchAcquire();
    flusher_cleaning_.erase(v);
    if (written.ok()) {
      ++stats_.background_cleans;
    } else {
      page.dirty_.store(true, std::memory_order_release);
    }
    if (page.pin_count_.fetch_sub(1) == 1 && !optimistic_) {
      policy_->SetEvictable(v, true);
    }
    quiesce_cv_.notify_all();
  }
  ReplanFlusherLocked();
}

void BufferPool::ReplanFlusherLocked() {
  if (!options_.flusher_adaptive) return;
  // Dirty ratio over the whole pool: an O(capacity) frame scan, amortized
  // over a pass that just did `batch` Evict/Restore pairs and up to
  // `batch` disk writes.
  size_t dirty = 0;
  for (size_t f = 0; f < capacity_; ++f) {
    if (frames_[f].id_ != kInvalidPageId && frames_[f].is_dirty()) ++dirty;
  }
  double ratio = static_cast<double>(dirty) / static_cast<double>(capacity_);
  double lo = options_.flusher_dirty_low;
  double hi = options_.flusher_dirty_high;
  double t = hi <= lo ? (ratio >= hi ? 1.0 : 0.0)
                      : std::min(1.0, std::max(0.0, (ratio - lo) / (hi - lo)));
  // Cadence ramps max_every -> min_every and batch flusher_batch ->
  // max_batch as the dirty ratio crosses [lo, hi].
  uint64_t max_e = std::max<uint64_t>(1, options_.flusher_max_every);
  uint64_t min_e = std::max<uint64_t>(
      1, std::min<uint64_t>(options_.flusher_min_every, max_e));
  uint64_t every =
      max_e - static_cast<uint64_t>(static_cast<double>(max_e - min_e) * t);
  uint64_t min_b = std::max<uint64_t>(1, options_.flusher_batch);
  uint64_t max_b = std::max<uint64_t>(min_b, options_.flusher_max_batch);
  uint64_t next_batch =
      min_b + static_cast<uint64_t>(static_cast<double>(max_b - min_b) * t);
  // Demand back-pressure: misses queued deeper than the worker fleet means
  // the disk is the bottleneck right now — cleaning should yield, not
  // compete (the Flush lane already ranks below Demand; this also shrinks
  // how much we submit at all). Skipped in inline mode, where the depth is
  // identically zero and determinism matters.
  if (io_ != nullptr && !io_->inline_mode() &&
      io_->LaneDepth(IoClass::kDemand) > io_->options().workers) {
    every = std::min<uint64_t>(every * 2, max_e);
    next_batch = std::max<uint64_t>(1, next_batch / 2);
  }
  adaptive_every_.store(every == 0 ? 1 : every, std::memory_order_relaxed);
  adaptive_batch_.store(next_batch, std::memory_order_relaxed);
}

Page* BufferPool::TryOptimisticHit(PageId p, AccessType type,
                                   bool* observable) {
  PageTable::Snapshot snap;
  PageTable::ProbeFail why = PageTable::ProbeFail::kNone;
  if (!page_table_.OptimisticFind(p, &snap, &why)) {
    CountOptimisticFallback(why);
    return nullptr;
  }
  Page& page = frames_[snap.frame];
  // Speculative pin, then re-validate: if the bucket's version moved, an
  // eviction/delete/shift touched the mapping and the pin may sit on the
  // wrong (or recycled) frame — undo and fall back. If it validates, the
  // seq_cst handshake guarantees every mutator that subsequently locks
  // the bucket sees this pin (see AcquireFrame).
  page.pin_count_.fetch_add(1);
  if (!page_table_.Validate(snap)) {
    page.pin_count_.fetch_sub(1);
    CountOptimisticFallback(PageTable::ProbeFail::kVersionConflict);
    return nullptr;
  }
  // Pinned and validated: p -> snap.frame is stable until our unpin.
  if (type == AccessType::kWrite) {
    page.dirty_.store(true, std::memory_order_release);
  }
  const bool was_prefetched =
      frame_prefetched_[snap.frame].exchange(0, std::memory_order_relaxed) !=
      0;
  if (was_prefetched) {
    stats_.prefetch_used.fetch_add(1, std::memory_order_relaxed);
  }
  if (observable != nullptr) *observable = was_prefetched;
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  stats_.optimistic_hits.fetch_add(1, std::memory_order_relaxed);
  // Publish the reference after the pin, never under any latch. The pin
  // keeps p resident until at least our own unpin; a record that outlives
  // the page's residency anyway (late drain) is dropped by the
  // skip-non-resident drain.
  if (!access_buffer_->TryPush({p, /*process=*/0, type})) {
    // Stripe full: the latched slow path — drain and apply directly,
    // preserving FIFO order exactly as the latched hit branch does.
    auto guard = Lock();
    DrainAccessBufferLocked();
    policy_->RecordAccess(p, type);
  }
  // Background work, after the publish (same order as the latched hit
  // branch, so an inline-mode prefetch admission drains this reference
  // first). The detector sees only OBSERVABLE references — demand misses
  // and prefetch-confirmation hits like this one. A steady-state warm
  // hit skips Observe entirely: a scan's references are always misses or
  // first touches of prefetched frames (a scan visits each page once),
  // so nothing detectable is lost, and the detector's per-call cost —
  // small, but a measurable fraction of a ~650 ns latch-free hit — comes
  // off the warm path completely. A scan entering cold territory from a
  // fully-resident stretch re-arms within min_run misses.
  bool flusher_due = TickFlusher();
  std::vector<PageId> targets;
  if (readahead_ != nullptr && was_prefetched) {
    readahead_->Observe(p, &targets);
    if (!targets.empty()) {
      // Latch-free pre-filter: drop targets the wait-free probe already
      // finds resident. RegisterPrefetchLocked would refuse them anyway,
      // so this only avoids taking the latch for triggers whose window
      // is already cached (common when clustered non-scan traffic
      // happens to vote) — exactly what the latched register would have
      // concluded; uncertain probes (conflict/bound) are kept for it.
      size_t kept = 0;
      for (PageId q : targets) {
        PageTable::Snapshot snap;
        if (!page_table_.OptimisticFind(q, &snap)) targets[kept++] = q;
      }
      targets.resize(kept);
    }
  }
  if (!targets.empty() || flusher_due) {
    std::vector<PageId> registered;
    auto guard = Lock();
    for (PageId q : targets) {
      if (RegisterPrefetchLocked(q)) registered.push_back(q);
    }
    if (flusher_due) ++inflight_background_;
    guard.unlock();
    LaunchBackgroundWork(registered, flusher_due);
  }
  return &page;
}

Result<Page*> BufferPool::FetchPage(PageId p, AccessType type) {
  return FetchPage(p, type, nullptr);
}

Result<Page*> BufferPool::FetchPage(PageId p, AccessType type,
                                    bool* observable) {
  if (observable != nullptr) *observable = false;
  if (fast_path_) {
    if (Page* page = TryOptimisticHit(p, type, observable)) return page;
    if (observable != nullptr) *observable = false;  // Fallback re-decides.
  }
  auto guard = Lock();
  // Whether this fetch has already been counted (a coalesced waiter counts
  // its miss when it starts waiting, then resolves through the hit branch
  // or the primary path below without recounting).
  bool counted = false;
  for (;;) {
    FrameId f = 0;
    if (page_table_.Find(p, &f)) {
      Page& page = frames_[f];
      if (!counted) ++stats_.hits;
      const bool was_prefetched =
          frame_prefetched_[f].exchange(0, std::memory_order_relaxed) != 0;
      if (was_prefetched) ++stats_.prefetch_used;
      if (observable != nullptr) *observable = was_prefetched;
      if (access_buffer_ == nullptr) policy_->RecordAccess(p, type);
      if (!optimistic_ &&
          page.pin_count_.load(std::memory_order_relaxed) == 0) {
        policy_->SetEvictable(p, false);
      }
      page.pin_count_.fetch_add(1);
      if (type == AccessType::kWrite) {
        page.dirty_.store(true, std::memory_order_release);
      }
      std::vector<PageId> targets;
      bool flusher_due = false;
      if (io_ != nullptr) {
        // Same observation policy as the optimistic hit path: only a
        // prefetch-confirmation hit feeds the scan detector.
        CollectBackgroundWorkLocked(p, was_prefetched, &targets,
                                    &flusher_due);
      }
      guard.unlock();
      if (access_buffer_ != nullptr) {
        // Batched hit path: publish the reference outside the latch. The
        // pin taken above keeps the page resident (and un-evictable) until
        // the record is drained, so a deferred RecordAccess can never land
        // on a non-resident page.
        if (!access_buffer_->TryPush({p, /*process=*/0, type})) {
          // The stripe is full: drain under the latch and apply this
          // (newest) reference directly, preserving FIFO order.
          guard.lock();
          CountLatchAcquire();
          DrainAccessBufferLocked();
          policy_->RecordAccess(p, type);
          guard.unlock();
        }
      }
      LaunchBackgroundWork(targets, flusher_due);
      return &page;
    }
    if (io_ != nullptr) {
      // The page's own write-behind victim write may still be in flight: a
      // disk read now could return the stale pre-eviction image. Wait it
      // out; the re-loop then sees the page re-admitted (failed write), or
      // takes a normal miss against the fresh on-disk image.
      auto vw = pending_victim_writes_.find(p);
      if (vw != pending_victim_writes_.end()) {
        std::shared_ptr<VictimWrite> entry = vw->second;
        entry->cv.wait(guard, [&] { return entry->done; });
        continue;
      }
      // A parked image (failed write-behind, no frame at re-admit time) is
      // the authoritative copy — the disk's is stale. Re-admit it here,
      // dirty, with its retained LRU-K history (Restore), then serve the
      // fetch as the reference it is.
      auto parked = parked_victims_.find(p);
      if (parked != parked_victims_.end()) {
        if (!counted) ++stats_.misses;  // Not resident; no physical read.
        if (observable != nullptr) *observable = true;  // A miss.
        std::unique_ptr<char[]> image = std::move(parked->second);
        parked_victims_.erase(parked);
        DrainAccessBufferLocked();
        std::vector<PageId> deferred;
        auto frame = AcquireFrame(&deferred);
        if (!frame.ok()) {
          parked_victims_.emplace(p, std::move(image));  // Still parked.
          guard.unlock();
          LaunchDeferredVictimWrites(deferred);
          return frame.status();
        }
        Page& page = frames_[*frame];
        std::memcpy(page.Data(), image.get(), kPageSize);
        page.id_ = p;
        page.pin_count_.fetch_add(1);  // Never a store; see below.
        page.dirty_.store(true, std::memory_order_relaxed);
        page_table_.Insert(p, *frame);
        frame_prefetched_[*frame].store(0, std::memory_order_relaxed);
        policy_->Restore(p);
        policy_->RecordAccess(p, type);
        if (!optimistic_) policy_->SetEvictable(p, false);
        if (type == AccessType::kWrite) {
          page.dirty_.store(true, std::memory_order_release);
        }
        ++stats_.writebehind_readmits;
        guard.unlock();
        LaunchDeferredVictimWrites(deferred);
        return &page;
      }
      // The per-page request tracker: a read of p already in flight
      // (another thread's miss, or a prefetch) absorbs this miss — wait
      // for it instead of issuing a second physical read.
      auto pending = pending_reads_.find(p);
      if (pending != pending_reads_.end()) {
        if (!counted) {
          ++stats_.misses;
          ++stats_.coalesced_reads;
          counted = true;
        }
        std::shared_ptr<PendingIo> entry = pending->second;
        entry->cv.wait(guard, [&] { return entry->done; });
        if (!entry->status.ok() && !entry->retry_as_primary) {
          // The coalesced read failed: every waiter reports the same
          // status the primary saw (the failure was counted once, by the
          // primary).
          return entry->status;
        }
        // Success: the page should be resident now (re-loop to the hit
        // branch). An abandoned prefetch (retry_as_primary) or an
        // admission already evicted again falls through to a fresh
        // primary miss instead.
        continue;
      }
    }
    break;
  }

  if (!counted) ++stats_.misses;
  if (observable != nullptr) *observable = true;  // A demand miss.
  // Deferred references precede this fault in the reference string; apply
  // them before the policy sees the admission (and before any eviction
  // decision, which must act on a fully drained view).
  DrainAccessBufferLocked();
  policy_->PrepareAdmit(p);
  std::vector<PageId> deferred;
  auto frame = AcquireFrame(&deferred);
  if (!frame.ok()) return frame.status();  // Nothing deferred on failure.
  Page& page = frames_[*frame];
  Status read;
  if (io_ != nullptr) {
    // Register in the tracker, release the latch, and run the read through
    // the dispatcher: concurrent misses on p coalesce onto this entry, and
    // the rest of the pool stays serviceable during the I/O. The frame is
    // reserved (neither free nor mapped), so nothing else can claim it.
    // The deferred victim write (if any) is posted before the demand read
    // is issued, so the write-back overlaps the read instead of preceding
    // it — the point of write-behind.
    auto entry = std::make_shared<PendingIo>();
    pending_reads_.emplace(p, entry);
    RetryOutcome outcome;
    guard.unlock();
    LaunchDeferredVictimWrites(deferred);
    deferred.clear();
    io_->Run([&] {
      outcome = RetryWithBackoff(
          options_.io_retry, [&] { return disk_->ReadPage(p, page.Data()); });
    });
    guard.lock();
    CountLatchAcquire();
    stats_.retries += outcome.retries;
    if (!outcome.status.ok()) ++stats_.read_failures;
    read = outcome.status;
    FinishPendingLocked(p, entry, read);
  } else {
    read = DiskRead(p, page.Data());
  }
  if (!read.ok()) {
    // The page was never admitted: the policy has no entry for p, the
    // page table is untouched, and the frame (legitimately freed by a
    // completed eviction, or taken from the free list) goes back unused.
    free_frames_.push_back(*frame);
    return read;
  }
  page.id_ = p;
  // fetch_add, not a store: in optimistic mode a stale reader may be
  // holding a transient speculative +1 on this frame (it will undo it
  // after failing validation), and a blind store would erase that.
  page.pin_count_.fetch_add(1);
  page.dirty_.store(type == AccessType::kWrite, std::memory_order_relaxed);
  page_table_.Insert(p, *frame);
  frame_prefetched_[*frame].store(0, std::memory_order_relaxed);
  policy_->Admit(p, type);
  if (!optimistic_) policy_->SetEvictable(p, false);
  std::vector<PageId> targets;
  bool flusher_due = false;
  if (io_ != nullptr) {
    // A demand miss is always observable: the cold front of a scan is a
    // run of misses, which is exactly where detection must lock on.
    CollectBackgroundWorkLocked(p, /*observe=*/true, &targets, &flusher_due);
  }
  guard.unlock();
  LaunchBackgroundWork(targets, flusher_due);
  return &page;
}

Result<Page*> BufferPool::NewPage() {
  std::vector<PageId> deferred;
  auto guard = Lock();
  auto allocated = disk_->AllocatePage();
  if (!allocated.ok()) return allocated.status();
  PageId p = *allocated;
  auto page = AdmitNewPageLocked(p, &deferred);
  if (!page.ok()) (void)disk_->DeallocatePage(p);
  guard.unlock();
  LaunchDeferredVictimWrites(deferred);
  return page;
}

Result<Page*> BufferPool::AdmitNewPage(PageId p) {
  std::vector<PageId> deferred;
  auto guard = Lock();
  auto page = AdmitNewPageLocked(p, &deferred);
  guard.unlock();
  LaunchDeferredVictimWrites(deferred);
  return page;
}

Result<Page*> BufferPool::AdmitNewPageLocked(
    PageId p, std::vector<PageId>* deferred_writes) {
  // A reallocated id can have a stale prefetch in flight (the readahead
  // window ran past a page another thread deleted); wait it out so the
  // admission cannot race the prefetch's own admission of p.
  {
    std::unique_lock<std::mutex> reacquired(latch_, std::adopt_lock);
    FencePageLocked(reacquired, p);
    reacquired.release();  // The caller's guard still owns the latch.
  }
  if (page_table_.contains(p)) {
    return Status::AlreadyExists("admit of resident page " +
                                 std::to_string(p));
  }
  DrainAccessBufferLocked();  // As on the miss path: admit/evict on a
                              // fully drained view.
  policy_->PrepareAdmit(p);
  auto frame = AcquireFrame(deferred_writes);
  if (!frame.ok()) return frame.status();
  Page& page = frames_[*frame];
  page.ZeroFill();
  page.id_ = p;
  page.pin_count_.fetch_add(1);  // Never a store; see FetchPage.
  page.dirty_.store(true, std::memory_order_relaxed);  // Must reach disk
                                                       // at least once.
  page_table_.Insert(p, *frame);
  frame_prefetched_[*frame].store(0, std::memory_order_relaxed);
  policy_->Admit(p, AccessType::kWrite);
  if (!optimistic_) policy_->SetEvictable(p, false);
  return &page;
}

Status BufferPool::UnpinPage(PageId p, bool dirty) {
  if (fast_path_) {
    PageTable::Snapshot snap;
    PageTable::ProbeFail why = PageTable::ProbeFail::kNone;
    if (page_table_.OptimisticFind(p, &snap, &why)) {
      // The caller's own pin (its API obligation) keeps p resident, and a
      // resident page never changes frames — so a consistent probe gives
      // the right frame even if the bucket shifts afterwards. Order
      // matters: set dirty BEFORE the decrement, so a mutator that sees
      // pin == 0 under its bucket lock also sees the dirty bit.
      Page& page = frames_[snap.frame];
      int cur = page.pin_count_.load();
      if (cur > 0) {
        if (dirty) page.dirty_.store(true, std::memory_order_release);
        while (cur > 0) {
          if (page.pin_count_.compare_exchange_weak(cur, cur - 1)) {
            return Status::Ok();
          }
          stats_.pin_cas_retries.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // cur dropped to 0: unpin of an unpinned page (or a misuse race) —
      // let the latched path produce the authoritative error. (Not an
      // attributed fallback: the probe itself succeeded.)
    } else {
      // Probe failed (absent or unstable): latched path for the
      // authoritative NotFound / InvalidArgument.
      CountOptimisticFallback(why);
    }
  }
  auto guard = Lock();
  FrameId f = 0;
  if (!page_table_.Find(p, &f)) {
    return Status::NotFound("unpin of non-resident page " + std::to_string(p));
  }
  Page& page = frames_[f];
  if (page.pin_count_.load(std::memory_order_relaxed) <= 0) {
    return Status::InvalidArgument("unpin of unpinned page " +
                                   std::to_string(p));
  }
  if (dirty) page.dirty_.store(true, std::memory_order_release);
  if (page.pin_count_.fetch_sub(1) == 1 && !optimistic_) {
    policy_->SetEvictable(p, true);
  }
  return Status::Ok();
}

Status BufferPool::FlushPage(PageId p) {
  auto guard = Lock();
  // A read in flight may be admitting p; a victim write in flight IS the
  // flush (on failure the fence's wake-up sees the page re-admitted dirty
  // below, or parked).
  FencePageLocked(guard, p);
  DrainAccessBufferLocked();
  {
    auto parked = parked_victims_.find(p);
    if (parked != parked_victims_.end()) {
      // The parked image is the authoritative copy; persisting it IS the
      // flush. On failure it stays parked (retried by the next flush).
      LRUK_RETURN_IF_ERROR(DiskWrite(p, parked->second.get()));
      parked_victims_.erase(p);
      return Status::Ok();
    }
  }
  FrameId f = 0;
  if (!page_table_.Find(p, &f)) {
    return Status::NotFound("flush of non-resident page " + std::to_string(p));
  }
  Page& page = frames_[f];
  // On failure the dirty flag is untouched, so the write is retried by
  // the next flush or eviction rather than silently dropped.
  // (Like the latched pool, an explicit flush may run while the caller —
  // who requested it — still writes the pinned page; coordinating that is
  // the caller's job, in both modes.)
  LRUK_RETURN_IF_ERROR(DiskWrite(p, page.Data()));
  page.dirty_.store(false, std::memory_order_relaxed);
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  auto guard = Lock();
  // Drain the dispatcher first: in-flight reads are landing in frame
  // buffers and queued background work may still dirty the picture; after
  // the quiesce this call sees a settled pool.
  QuiesceLocked(guard);
  // Also the teardown drain: the destructor flushes, so no reference is
  // ever lost to a dropped buffer.
  DrainAccessBufferLocked();
  // Try every dirty page even after a failure (a single bad page must not
  // shadow the rest); report the first error. Failed pages keep their
  // dirty flag so a later FlushAll completes the job.
  Status first_error = Status::Ok();
  page_table_.ForEach([&](PageId p, FrameId frame) {
    Page& page = frames_[frame];
    if (!page.is_dirty()) return;
    Status written = DiskWrite(p, page.Data());
    if (written.ok()) {
      page.dirty_.store(false, std::memory_order_relaxed);
    } else if (first_error.ok()) {
      first_error = written;
    }
  });
  // Parked victim images (failed write-behind, no frame to re-admit into)
  // are dirty pages too; the quiesce above guarantees the set is settled.
  for (auto it = parked_victims_.begin(); it != parked_victims_.end();) {
    Status written = DiskWrite(it->first, it->second.get());
    if (written.ok()) {
      it = parked_victims_.erase(it);
    } else {
      if (first_error.ok()) first_error = written;
      ++it;
    }
  }
  return first_error;
}

Status BufferPool::DeletePage(PageId p) {
  auto guard = Lock();
  // Fence in-flight reads of p: a prefetch that already left the queue
  // must finish (and admit its page) before the delete dismantles it —
  // otherwise its completion would resurrect a page the disk no longer
  // holds. No new read of p can start while we hold the latch.
  FencePageLocked(guard, p);
  // Any buffered reference to p must reach the policy before Remove()
  // forgets the page (a post-Remove RecordAccess would fault). A record
  // not yet visible here implies its producer still pins p, in which case
  // the delete fails below anyway. (In optimistic mode a reference can
  // also be fully published and unpinned latch-free; a record that drains
  // after the delete is dropped by the skip-non-resident drain.)
  DrainAccessBufferLocked();
  FrameId f = 0;
  bool resident = page_table_.Find(p, &f);
  if (resident && !optimistic_ &&
      frames_[f].pin_count_.load(std::memory_order_relaxed) > 0) {
    return Status::InvalidArgument("delete of pinned page " +
                                   std::to_string(p));
  }
  size_t bucket = 0;
  if (resident && optimistic_) {
    // Bucket handshake before the pin check, exactly as in eviction: a
    // concurrent latch-free pin is either visible here (delete refused —
    // a transient speculative pin can cause a spurious refusal, which is
    // inherent to deleting a page others may be fetching) or fails its
    // validation.
    bucket = page_table_.LockBucket(p);
    if (frames_[f].pin_count_.load() != 0) {
      page_table_.UnlockUnchanged(bucket);
      return Status::InvalidArgument("delete of pinned page " +
                                     std::to_string(p));
    }
  }
  // Deallocate on disk FIRST: if it fails, the pool (frame table, policy
  // history, dirty image) is untouched and the page is still usable.
  Status deallocated = disk_->DeallocatePage(p);
  if (!deallocated.ok()) {
    if (resident && optimistic_) page_table_.UnlockUnchanged(bucket);
    return deallocated;
  }
  // A parked image of a deleted page is intentionally discarded: its data
  // has no home on disk anymore.
  parked_victims_.erase(p);
  if (resident) {
    Page& page = frames_[f];
    policy_->Remove(p);
    free_frames_.push_back(f);
    frame_prefetched_[f].store(0, std::memory_order_relaxed);
    page.id_ = kInvalidPageId;
    page.dirty_.store(false, std::memory_order_relaxed);
    if (optimistic_) {
      page_table_.UnlockErased(bucket);
    } else {
      page_table_.Erase(p);
    }
  }
  return Status::Ok();
}

void BufferPool::LaunchDeferredVictimWrites(
    const std::vector<PageId>& victims) {
  for (PageId v : victims) {
    if (io_->TryPost([this, v] { ExecuteVictimWrite(v, /*foreground=*/false); },
                     IoClass::kFlush)) {
      continue;
    }
    // Flush lane full: the image must still reach disk (or the page be
    // re-admitted) before anyone can read p again, so run the write here,
    // synchronously — the one case where write-behind stalls the
    // foreground, and it counts as such (dirty_writebacks).
    ++stats_.io_drops_flush;
    ExecuteVictimWrite(v, /*foreground=*/true);
  }
}

void BufferPool::ExecuteVictimWrite(PageId v, bool foreground) {
  auto guard = Lock();
  auto it = pending_victim_writes_.find(v);
  LRUK_ASSERT(it != pending_victim_writes_.end(),
              "victim write lost its entry");
  std::shared_ptr<VictimWrite> vw = it->second;
  // The write runs with the latch released (a Flush-lane worker, or the
  // submitting thread on lane-full fallback). The map entry keeps every
  // reader of p waiting: a demand fetch of p, a prefetch registration, a
  // fence — none can touch p's stale disk image while we are here.
  RetryOutcome outcome;
  guard.unlock();
  outcome = RetryWithBackoff(options_.io_retry,
                             [&] { return disk_->WritePage(v, vw->image.get()); });
  guard.lock();
  CountLatchAcquire();
  stats_.retries += outcome.retries;
  Status written = outcome.status;
  if (written.ok()) {
    if (foreground) {
      ++stats_.dirty_writebacks;
    } else {
      ++stats_.writebehind_writes;
    }
  } else {
    ++stats_.write_failures;
    // Exact rollback, just later than the synchronous path's: the page
    // comes back dirty with its retained policy history (or its image is
    // parked when every frame is pinned). The eviction stays counted.
    ReadmitFailedVictimLocked(v, std::move(vw->image));
  }
  vw->status = written;
  vw->done = true;
  pending_victim_writes_.erase(v);
  vw->cv.notify_all();
  quiesce_cv_.notify_all();
}

void BufferPool::ReadmitFailedVictimLocked(PageId v,
                                           std::unique_ptr<char[]> image) {
  DrainAccessBufferLocked();  // Evict below acts on a fully drained view.
  // No deferral here: a nested dirty victim is written synchronously, so a
  // failing disk cannot cascade write-behind entries indefinitely.
  auto frame = AcquireFrame(nullptr);
  if (!frame.ok()) {
    // Every frame pinned (or the nested write-back failed too): park the
    // image — the only copy of the page's data — rather than lose it.
    // FetchPage re-admits it, FlushPage/FlushAll persist it, DeletePage
    // discards it.
    parked_victims_.emplace(v, std::move(image));
    return;
  }
  Page& page = frames_[*frame];
  std::memcpy(page.Data(), image.get(), kPageSize);
  page.id_ = v;
  page.dirty_.store(true, std::memory_order_relaxed);
  page_table_.Insert(v, *frame);
  frame_prefetched_[*frame].store(0, std::memory_order_relaxed);
  policy_->Restore(v);  // Unpinned and evictable, history intact.
  ++stats_.writebehind_readmits;
}

}  // namespace lruk
