#include "bufferpool/buffer_pool.h"

#include <mutex>
#include <utility>

namespace lruk {

BufferPool::BufferPool(size_t capacity, DiskManager* disk,
                       std::unique_ptr<ReplacementPolicy> policy)
    : capacity_(capacity), disk_(disk), policy_(std::move(policy)) {
  LRUK_ASSERT(capacity_ >= 1, "buffer pool needs at least one frame");
  LRUK_ASSERT(disk_ != nullptr, "buffer pool needs a disk manager");
  LRUK_ASSERT(policy_ != nullptr, "buffer pool needs a replacement policy");
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (FrameId f = 0; f < capacity_; ++f) {
    free_frames_.push_back(static_cast<FrameId>(capacity_ - 1 - f));
  }
}

BufferPool::~BufferPool() {
  // Best-effort write-back of surviving dirty pages.
  (void)FlushAll();
}

Result<FrameId> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    FrameId f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  auto victim = policy_->Evict();
  if (!victim.has_value()) {
    return Status::ResourceExhausted(
        "all buffer frames are pinned; cannot evict");
  }
  auto it = page_table_.find(*victim);
  LRUK_ASSERT(it != page_table_.end(),
              "policy evicted a page the pool does not hold");
  FrameId f = it->second;
  Page& page = frames_[f];
  LRUK_ASSERT(page.pin_count_ == 0, "policy evicted a pinned page");
  Status written = Status::Ok();
  if (page.dirty_) {
    written = disk_->WritePage(page.id_, page.Data());
    if (written.ok()) ++stats_.dirty_writebacks;
    // On failure the eviction still completes below: the policy already
    // dropped the victim, and leaving it in the page table would let a
    // later fetch take the hit path for a page the policy no longer
    // tracks. The victim's unwritten changes are lost; the caller sees
    // the write error instead of a frame.
  }
  page_table_.erase(it);
  page.id_ = kInvalidPageId;
  page.dirty_ = false;
  ++stats_.evictions;
  if (!written.ok()) {
    free_frames_.push_back(f);
    return written;
  }
  return f;
}

Result<Page*> BufferPool::FetchPage(PageId p, AccessType type) {
  std::lock_guard<std::mutex> guard(latch_);
  auto it = page_table_.find(p);
  if (it != page_table_.end()) {
    Page& page = frames_[it->second];
    ++stats_.hits;
    policy_->RecordAccess(p, type);
    if (page.pin_count_ == 0) policy_->SetEvictable(p, false);
    ++page.pin_count_;
    if (type == AccessType::kWrite) page.dirty_ = true;
    return &page;
  }

  ++stats_.misses;
  policy_->PrepareAdmit(p);
  auto frame = AcquireFrame();
  if (!frame.ok()) return frame.status();
  Page& page = frames_[*frame];
  Status read = disk_->ReadPage(p, page.Data());
  if (!read.ok()) {
    free_frames_.push_back(*frame);
    return read;
  }
  page.id_ = p;
  page.pin_count_ = 1;
  page.dirty_ = type == AccessType::kWrite;
  page_table_.emplace(p, *frame);
  policy_->Admit(p, type);
  policy_->SetEvictable(p, false);
  return &page;
}

Result<Page*> BufferPool::NewPage() {
  std::lock_guard<std::mutex> guard(latch_);
  auto allocated = disk_->AllocatePage();
  if (!allocated.ok()) return allocated.status();
  PageId p = *allocated;
  auto page = AdmitNewPageLocked(p);
  if (!page.ok()) (void)disk_->DeallocatePage(p);
  return page;
}

Result<Page*> BufferPool::AdmitNewPage(PageId p) {
  std::lock_guard<std::mutex> guard(latch_);
  if (page_table_.contains(p)) {
    return Status::AlreadyExists("admit of resident page " +
                                 std::to_string(p));
  }
  return AdmitNewPageLocked(p);
}

Result<Page*> BufferPool::AdmitNewPageLocked(PageId p) {
  policy_->PrepareAdmit(p);
  auto frame = AcquireFrame();
  if (!frame.ok()) return frame.status();
  Page& page = frames_[*frame];
  page.ZeroFill();
  page.id_ = p;
  page.pin_count_ = 1;
  page.dirty_ = true;  // Must reach disk at least once.
  page_table_.emplace(p, *frame);
  policy_->Admit(p, AccessType::kWrite);
  policy_->SetEvictable(p, false);
  return &page;
}

Status BufferPool::UnpinPage(PageId p, bool dirty) {
  std::lock_guard<std::mutex> guard(latch_);
  auto it = page_table_.find(p);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page " + std::to_string(p));
  }
  Page& page = frames_[it->second];
  if (page.pin_count_ <= 0) {
    return Status::InvalidArgument("unpin of unpinned page " +
                                   std::to_string(p));
  }
  page.dirty_ = page.dirty_ || dirty;
  --page.pin_count_;
  if (page.pin_count_ == 0) policy_->SetEvictable(p, true);
  return Status::Ok();
}

Status BufferPool::FlushPage(PageId p) {
  std::lock_guard<std::mutex> guard(latch_);
  auto it = page_table_.find(p);
  if (it == page_table_.end()) {
    return Status::NotFound("flush of non-resident page " + std::to_string(p));
  }
  Page& page = frames_[it->second];
  LRUK_RETURN_IF_ERROR(disk_->WritePage(p, page.Data()));
  page.dirty_ = false;
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> guard(latch_);
  for (const auto& [p, frame] : page_table_) {
    Page& page = frames_[frame];
    if (!page.dirty_) continue;
    LRUK_RETURN_IF_ERROR(disk_->WritePage(p, page.Data()));
    page.dirty_ = false;
  }
  return Status::Ok();
}

Status BufferPool::DeletePage(PageId p) {
  std::lock_guard<std::mutex> guard(latch_);
  auto it = page_table_.find(p);
  if (it != page_table_.end()) {
    Page& page = frames_[it->second];
    if (page.pin_count_ > 0) {
      return Status::InvalidArgument("delete of pinned page " +
                                     std::to_string(p));
    }
    policy_->Remove(p);
    free_frames_.push_back(it->second);
    page.id_ = kInvalidPageId;
    page.dirty_ = false;
    page_table_.erase(it);
  }
  return disk_->DeallocatePage(p);
}

}  // namespace lruk
