#include "bufferpool/buffer_pool.h"

#include <mutex>
#include <utility>

namespace lruk {

BufferPool::BufferPool(size_t capacity, DiskManager* disk,
                       std::unique_ptr<ReplacementPolicy> policy,
                       BufferPoolOptions options)
    : capacity_(capacity),
      disk_(disk),
      policy_(std::move(policy)),
      options_(options) {
  LRUK_ASSERT(capacity_ >= 1, "buffer pool needs at least one frame");
  LRUK_ASSERT(disk_ != nullptr, "buffer pool needs a disk manager");
  LRUK_ASSERT(policy_ != nullptr, "buffer pool needs a replacement policy");
  if (options_.batch_capacity > 0) {
    access_buffer_ = std::make_unique<AccessBuffer>(
        options_.batch_capacity,
        options_.batch_stripes == 0 ? 1 : options_.batch_stripes);
  }
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (FrameId f = 0; f < capacity_; ++f) {
    free_frames_.push_back(static_cast<FrameId>(capacity_ - 1 - f));
  }
}

BufferPool::~BufferPool() {
  // Best-effort write-back of surviving dirty pages.
  (void)FlushAll();
}

Status BufferPool::DiskRead(PageId p, char* out) {
  RetryOutcome outcome = RetryWithBackoff(
      options_.io_retry, [&] { return disk_->ReadPage(p, out); });
  stats_.retries += outcome.retries;
  if (!outcome.status.ok()) ++stats_.read_failures;
  return outcome.status;
}

Status BufferPool::DiskWrite(PageId p, const char* data) {
  RetryOutcome outcome = RetryWithBackoff(
      options_.io_retry, [&] { return disk_->WritePage(p, data); });
  stats_.retries += outcome.retries;
  if (!outcome.status.ok()) ++stats_.write_failures;
  return outcome.status;
}

Result<FrameId> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    FrameId f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  auto victim = policy_->Evict();
  if (!victim.has_value()) {
    return Status::ResourceExhausted(
        "all buffer frames are pinned; cannot evict");
  }
  auto it = page_table_.find(*victim);
  LRUK_ASSERT(it != page_table_.end(),
              "policy evicted a page the pool does not hold");
  FrameId f = it->second;
  Page& page = frames_[f];
  LRUK_ASSERT(page.pin_count_ == 0, "policy evicted a pinned page");
  if (page.dirty_) {
    // Write back BEFORE dismantling any pool state, so a failure can roll
    // the eviction back: the frame still holds the page image and its
    // page-table entry, pin count (0) and dirty bit are untouched —
    // Restore() re-registers the victim with the policy and the pool is
    // exactly as it was before Evict(). No eviction is counted.
    Status written = DiskWrite(page.id_, page.Data());
    if (!written.ok()) {
      policy_->Restore(*victim);
      return written;
    }
    ++stats_.dirty_writebacks;
  }
  page_table_.erase(it);
  page.id_ = kInvalidPageId;
  page.dirty_ = false;
  ++stats_.evictions;
  return f;
}

void BufferPool::DrainAccessBufferLocked() const {
  // unique_ptr members are shallow-const, so observation paths (stats)
  // can drain through the same helper as mutating ones.
  if (access_buffer_ != nullptr) access_buffer_->Drain(*policy_);
}

Result<Page*> BufferPool::FetchPage(PageId p, AccessType type) {
  std::unique_lock<std::mutex> guard(latch_);
  auto it = page_table_.find(p);
  if (it != page_table_.end()) {
    Page& page = frames_[it->second];
    ++stats_.hits;
    if (access_buffer_ == nullptr) policy_->RecordAccess(p, type);
    if (page.pin_count_ == 0) policy_->SetEvictable(p, false);
    ++page.pin_count_;
    if (type == AccessType::kWrite) page.dirty_ = true;
    if (access_buffer_ != nullptr) {
      // Batched hit path: publish the reference outside the latch. The
      // pin taken above keeps the page resident (and un-evictable) until
      // the record is drained, so a deferred RecordAccess can never land
      // on a non-resident page.
      guard.unlock();
      if (!access_buffer_->TryPush({p, /*process=*/0, type})) {
        // The stripe is full: drain under the latch and apply this
        // (newest) reference directly, preserving FIFO order.
        guard.lock();
        DrainAccessBufferLocked();
        policy_->RecordAccess(p, type);
      }
    }
    return &page;
  }

  ++stats_.misses;
  // Deferred references precede this fault in the reference string; apply
  // them before the policy sees the admission (and before any eviction
  // decision, which must act on a fully drained view).
  DrainAccessBufferLocked();
  policy_->PrepareAdmit(p);
  auto frame = AcquireFrame();
  if (!frame.ok()) return frame.status();
  Page& page = frames_[*frame];
  Status read = DiskRead(p, page.Data());
  if (!read.ok()) {
    // The page was never admitted: the policy has no entry for p, the
    // page table is untouched, and the frame (legitimately freed by a
    // completed eviction, or taken from the free list) goes back unused.
    free_frames_.push_back(*frame);
    return read;
  }
  page.id_ = p;
  page.pin_count_ = 1;
  page.dirty_ = type == AccessType::kWrite;
  page_table_.emplace(p, *frame);
  policy_->Admit(p, type);
  policy_->SetEvictable(p, false);
  return &page;
}

Result<Page*> BufferPool::NewPage() {
  std::lock_guard<std::mutex> guard(latch_);
  auto allocated = disk_->AllocatePage();
  if (!allocated.ok()) return allocated.status();
  PageId p = *allocated;
  auto page = AdmitNewPageLocked(p);
  if (!page.ok()) (void)disk_->DeallocatePage(p);
  return page;
}

Result<Page*> BufferPool::AdmitNewPage(PageId p) {
  std::lock_guard<std::mutex> guard(latch_);
  if (page_table_.contains(p)) {
    return Status::AlreadyExists("admit of resident page " +
                                 std::to_string(p));
  }
  return AdmitNewPageLocked(p);
}

Result<Page*> BufferPool::AdmitNewPageLocked(PageId p) {
  DrainAccessBufferLocked();  // As on the miss path: admit/evict on a
                              // fully drained view.
  policy_->PrepareAdmit(p);
  auto frame = AcquireFrame();
  if (!frame.ok()) return frame.status();
  Page& page = frames_[*frame];
  page.ZeroFill();
  page.id_ = p;
  page.pin_count_ = 1;
  page.dirty_ = true;  // Must reach disk at least once.
  page_table_.emplace(p, *frame);
  policy_->Admit(p, AccessType::kWrite);
  policy_->SetEvictable(p, false);
  return &page;
}

Status BufferPool::UnpinPage(PageId p, bool dirty) {
  std::lock_guard<std::mutex> guard(latch_);
  auto it = page_table_.find(p);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page " + std::to_string(p));
  }
  Page& page = frames_[it->second];
  if (page.pin_count_ <= 0) {
    return Status::InvalidArgument("unpin of unpinned page " +
                                   std::to_string(p));
  }
  page.dirty_ = page.dirty_ || dirty;
  --page.pin_count_;
  if (page.pin_count_ == 0) policy_->SetEvictable(p, true);
  return Status::Ok();
}

Status BufferPool::FlushPage(PageId p) {
  std::lock_guard<std::mutex> guard(latch_);
  DrainAccessBufferLocked();
  auto it = page_table_.find(p);
  if (it == page_table_.end()) {
    return Status::NotFound("flush of non-resident page " + std::to_string(p));
  }
  Page& page = frames_[it->second];
  // On failure the dirty flag is untouched, so the write is retried by
  // the next flush or eviction rather than silently dropped.
  LRUK_RETURN_IF_ERROR(DiskWrite(p, page.Data()));
  page.dirty_ = false;
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> guard(latch_);
  // Also the teardown drain: the destructor flushes, so no reference is
  // ever lost to a dropped buffer.
  DrainAccessBufferLocked();
  // Try every dirty page even after a failure (a single bad page must not
  // shadow the rest); report the first error. Failed pages keep their
  // dirty flag so a later FlushAll completes the job.
  Status first_error = Status::Ok();
  for (const auto& [p, frame] : page_table_) {
    Page& page = frames_[frame];
    if (!page.dirty_) continue;
    Status written = DiskWrite(p, page.Data());
    if (written.ok()) {
      page.dirty_ = false;
    } else if (first_error.ok()) {
      first_error = written;
    }
  }
  return first_error;
}

Status BufferPool::DeletePage(PageId p) {
  std::lock_guard<std::mutex> guard(latch_);
  // Any buffered reference to p must reach the policy before Remove()
  // forgets the page (a post-Remove RecordAccess would fault). A record
  // not yet visible here implies its producer still pins p, in which case
  // the delete fails below anyway.
  DrainAccessBufferLocked();
  auto it = page_table_.find(p);
  if (it != page_table_.end() && frames_[it->second].pin_count_ > 0) {
    return Status::InvalidArgument("delete of pinned page " +
                                   std::to_string(p));
  }
  // Deallocate on disk FIRST: if it fails, the pool (frame table, policy
  // history, dirty image) is untouched and the page is still usable.
  LRUK_RETURN_IF_ERROR(disk_->DeallocatePage(p));
  if (it != page_table_.end()) {
    Page& page = frames_[it->second];
    policy_->Remove(p);
    free_frames_.push_back(it->second);
    page.id_ = kInvalidPageId;
    page.dirty_ = false;
    page_table_.erase(it);
  }
  return Status::Ok();
}

}  // namespace lruk
