#include "bufferpool/buffer_pool.h"

#include <mutex>
#include <utility>

namespace lruk {

BufferPool::BufferPool(size_t capacity, DiskManager* disk,
                       std::unique_ptr<ReplacementPolicy> policy,
                       BufferPoolOptions options,
                       IoDispatcher* shared_dispatcher)
    : capacity_(capacity),
      disk_(disk),
      policy_(std::move(policy)),
      options_(options) {
  LRUK_ASSERT(capacity_ >= 1, "buffer pool needs at least one frame");
  LRUK_ASSERT(disk_ != nullptr, "buffer pool needs a disk manager");
  LRUK_ASSERT(policy_ != nullptr, "buffer pool needs a replacement policy");
  if (options_.batch_capacity > 0) {
    access_buffer_ = std::make_unique<AccessBuffer>(
        options_.batch_capacity,
        options_.batch_stripes == 0 ? 1 : options_.batch_stripes);
  }
  if (options_.io_dispatcher) {
    if (shared_dispatcher != nullptr) {
      io_ = shared_dispatcher;
    } else {
      owned_io_ = std::make_unique<IoDispatcher>(IoDispatcherOptions{
          options_.io_workers, options_.io_queue_depth});
      io_ = owned_io_.get();
    }
    if (options_.readahead.enabled) {
      readahead_ = std::make_unique<ReadaheadDetector>(options_.readahead);
    }
  }
  frames_.resize(capacity_);
  frame_prefetched_.assign(capacity_, 0);
  free_frames_.reserve(capacity_);
  for (FrameId f = 0; f < capacity_; ++f) {
    free_frames_.push_back(static_cast<FrameId>(capacity_ - 1 - f));
  }
}

BufferPool::~BufferPool() {
  // Settle in-flight dispatcher work first (prefetch reads land in frame
  // buffers), then best-effort write-back of surviving dirty pages.
  Quiesce();
  (void)FlushAll();
}

Status BufferPool::DiskRead(PageId p, char* out) {
  RetryOutcome outcome = RetryWithBackoff(
      options_.io_retry, [&] { return disk_->ReadPage(p, out); });
  stats_.retries += outcome.retries;
  if (!outcome.status.ok()) ++stats_.read_failures;
  return outcome.status;
}

Status BufferPool::DiskWrite(PageId p, const char* data) {
  RetryOutcome outcome = RetryWithBackoff(
      options_.io_retry, [&] { return disk_->WritePage(p, data); });
  stats_.retries += outcome.retries;
  if (!outcome.status.ok()) ++stats_.write_failures;
  return outcome.status;
}

Result<FrameId> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    FrameId f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  auto victim = policy_->Evict();
  if (!victim.has_value()) {
    return Status::ResourceExhausted(
        "all buffer frames are pinned; cannot evict");
  }
  auto it = page_table_.find(*victim);
  LRUK_ASSERT(it != page_table_.end(),
              "policy evicted a page the pool does not hold");
  FrameId f = it->second;
  Page& page = frames_[f];
  LRUK_ASSERT(page.pin_count_ == 0, "policy evicted a pinned page");
  if (page.dirty_) {
    // Write back BEFORE dismantling any pool state, so a failure can roll
    // the eviction back: the frame still holds the page image and its
    // page-table entry, pin count (0) and dirty bit are untouched —
    // Restore() re-registers the victim with the policy and the pool is
    // exactly as it was before Evict(). No eviction is counted.
    Status written = DiskWrite(page.id_, page.Data());
    if (!written.ok()) {
      policy_->Restore(*victim);
      return written;
    }
    ++stats_.dirty_writebacks;
  }
  page_table_.erase(it);
  page.id_ = kInvalidPageId;
  page.dirty_ = false;
  ++stats_.evictions;
  return f;
}

void BufferPool::DrainAccessBufferLocked() const {
  // unique_ptr members are shallow-const, so observation paths (stats)
  // can drain through the same helper as mutating ones.
  if (access_buffer_ != nullptr) access_buffer_->Drain(*policy_);
}

void BufferPool::FinishPendingLocked(PageId p,
                                     const std::shared_ptr<PendingIo>& entry,
                                     Status status) {
  entry->status = std::move(status);
  entry->done = true;
  pending_reads_.erase(p);
  entry->cv.notify_all();
  quiesce_cv_.notify_all();
}

void BufferPool::FencePageLocked(std::unique_lock<std::mutex>& guard,
                                 PageId p) {
  // Waits out every in-flight read of `p` (there is at most one at a time,
  // but its completion can be followed by a new one before we re-acquire
  // the latch, hence the loop).
  while (io_ != nullptr) {
    auto it = pending_reads_.find(p);
    if (it == pending_reads_.end()) return;
    std::shared_ptr<PendingIo> entry = it->second;
    entry->cv.wait(guard, [&] { return entry->done; });
  }
}

void BufferPool::QuiesceLocked(std::unique_lock<std::mutex>& guard) {
  if (io_ == nullptr) return;
  quiesce_cv_.wait(guard, [&] {
    return pending_reads_.empty() && inflight_background_ == 0;
  });
}

void BufferPool::Quiesce() {
  std::unique_lock<std::mutex> guard(latch_);
  QuiesceLocked(guard);
}

bool BufferPool::RegisterPrefetchLocked(PageId p) {
  if (page_table_.contains(p) || pending_reads_.contains(p)) return false;
  pending_reads_.emplace(p, std::make_shared<PendingIo>());
  ++inflight_background_;
  ++stats_.prefetch_issued;
  return true;
}

void BufferPool::ExecutePrefetch(PageId p) {
  std::unique_lock<std::mutex> guard(latch_);
  auto it = pending_reads_.find(p);
  LRUK_ASSERT(it != pending_reads_.end(), "prefetch lost its tracker entry");
  std::shared_ptr<PendingIo> entry = it->second;
  // A page stays out of the page table for as long as its tracker entry is
  // alive (demand fetches coalesce onto the entry, AdmitNewPage fences).
  LRUK_ASSERT(!page_table_.contains(p),
              "page admitted while its prefetch was in flight");
  auto abandon = [&](Status status) {
    // Prefetch failures never surface to demand fetches: coalesced waiters
    // retry as primaries and take their own (fully accounted) read.
    ++stats_.prefetch_dropped;
    entry->retry_as_primary = true;
    FinishPendingLocked(p, entry, std::move(status));
    --inflight_background_;
    quiesce_cv_.notify_all();
  };
  DrainAccessBufferLocked();
  policy_->PrepareAdmit(p);
  auto frame = AcquireFrame();
  if (!frame.ok()) {
    abandon(frame.status());
    return;
  }
  Page& page = frames_[*frame];
  // The read itself runs with the latch released (we are on a worker in
  // worker mode, or past the foreground admission in inline mode); the
  // frame is reserved — in neither the free list nor the page table — and
  // the tracker entry keeps every other path off the page.
  RetryOutcome outcome;
  guard.unlock();
  outcome = RetryWithBackoff(options_.io_retry,
                             [&] { return disk_->ReadPage(p, page.Data()); });
  guard.lock();
  stats_.retries += outcome.retries;
  if (!outcome.status.ok()) {
    free_frames_.push_back(*frame);
    abandon(outcome.status);
    return;
  }
  page.id_ = p;
  page.pin_count_ = 0;
  page.dirty_ = false;
  page_table_.emplace(p, *frame);
  frame_prefetched_[*frame] = 1;
  // The admission ticks the policy clock; the demand reference that
  // (hopefully) follows lands as a hit within the correlated period.
  policy_->Admit(p, AccessType::kRead);
  FinishPendingLocked(p, entry, Status::Ok());
  --inflight_background_;
  quiesce_cv_.notify_all();
}

void BufferPool::CollectBackgroundWorkLocked(PageId p,
                                             std::vector<PageId>* targets,
                                             bool* flusher_due) {
  if (readahead_ != nullptr) {
    readahead_->Observe(p, &readahead_scratch_);
    for (PageId q : readahead_scratch_) {
      if (RegisterPrefetchLocked(q)) targets->push_back(q);
    }
  }
  if (options_.flusher &&
      ++ops_since_flusher_ >= options_.flusher_every_ops) {
    ops_since_flusher_ = 0;
    *flusher_due = true;
    ++inflight_background_;
  }
}

void BufferPool::LaunchBackgroundWork(const std::vector<PageId>& prefetches,
                                      bool flusher_due) {
  if (io_ == nullptr) return;
  for (PageId q : prefetches) {
    if (io_->TryPost([this, q] { ExecutePrefetch(q); })) continue;
    // Queue full: the prefetch never runs, so retire its tracker entry
    // here. Any demand fetch already waiting retries as a primary.
    std::lock_guard<std::mutex> guard(latch_);
    auto it = pending_reads_.find(q);
    LRUK_ASSERT(it != pending_reads_.end() && !it->second->done,
                "rejected prefetch already completed");
    std::shared_ptr<PendingIo> entry = it->second;
    ++stats_.prefetch_dropped;
    entry->retry_as_primary = true;
    FinishPendingLocked(q, entry,
                        Status::ResourceExhausted("dispatcher queue full"));
    --inflight_background_;
    quiesce_cv_.notify_all();
  }
  if (!flusher_due) return;
  bool posted = io_->TryPost([this] {
    RunFlusherPass();
    std::lock_guard<std::mutex> guard(latch_);
    --inflight_background_;
    quiesce_cv_.notify_all();
  });
  if (!posted) {
    // Dropped pass; the next trigger tries again.
    std::lock_guard<std::mutex> guard(latch_);
    --inflight_background_;
    quiesce_cv_.notify_all();
  }
}

void BufferPool::RequestPrefetch(PageId p) {
  if (io_ == nullptr) return;
  {
    std::lock_guard<std::mutex> guard(latch_);
    if (!RegisterPrefetchLocked(p)) return;
  }
  LaunchBackgroundWork({p}, /*flusher_due=*/false);
}

void BufferPool::RunFlusherPass() {
  std::unique_lock<std::mutex> guard(latch_);
  DrainAccessBufferLocked();
  // Peek the next victims without evicting: Evict() pops them in victim
  // order, Restore() puts them back exactly (LRU-K resurrects the HIST
  // block without a tick; policies with the default re-admitting Restore
  // pay one tick per peeked page — the flusher is opt-in). LIFO restore
  // order keeps Restore's "most recent Evict result" contract.
  std::vector<PageId> victims;
  size_t want = options_.flusher_batch;
  if (want > policy_->EvictableCount()) want = policy_->EvictableCount();
  victims.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    auto victim = policy_->Evict();
    if (!victim.has_value()) break;
    victims.push_back(*victim);
  }
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
    policy_->Restore(*it);
  }
  // Clean in victim order, most imminent first. A failed write-back
  // leaves the page dirty (and resident — it was restored above); the
  // eviction path retries the write when the page's turn really comes.
  for (PageId v : victims) {
    auto entry = page_table_.find(v);
    LRUK_ASSERT(entry != page_table_.end(),
                "flusher peeked a page the pool does not hold");
    Page& page = frames_[entry->second];
    if (!page.dirty_) continue;
    Status written = DiskWrite(v, page.Data());
    if (written.ok()) {
      page.dirty_ = false;
      ++stats_.background_cleans;
    }
  }
}

Result<Page*> BufferPool::FetchPage(PageId p, AccessType type) {
  std::unique_lock<std::mutex> guard(latch_);
  // Whether this fetch has already been counted (a coalesced waiter counts
  // its miss when it starts waiting, then resolves through the hit branch
  // or the primary path below without recounting).
  bool counted = false;
  for (;;) {
    auto it = page_table_.find(p);
    if (it != page_table_.end()) {
      Page& page = frames_[it->second];
      if (!counted) ++stats_.hits;
      if (frame_prefetched_[it->second] != 0) {
        frame_prefetched_[it->second] = 0;
        ++stats_.prefetch_used;
      }
      if (access_buffer_ == nullptr) policy_->RecordAccess(p, type);
      if (page.pin_count_ == 0) policy_->SetEvictable(p, false);
      ++page.pin_count_;
      if (type == AccessType::kWrite) page.dirty_ = true;
      std::vector<PageId> targets;
      bool flusher_due = false;
      if (io_ != nullptr) {
        CollectBackgroundWorkLocked(p, &targets, &flusher_due);
      }
      guard.unlock();
      if (access_buffer_ != nullptr) {
        // Batched hit path: publish the reference outside the latch. The
        // pin taken above keeps the page resident (and un-evictable) until
        // the record is drained, so a deferred RecordAccess can never land
        // on a non-resident page.
        if (!access_buffer_->TryPush({p, /*process=*/0, type})) {
          // The stripe is full: drain under the latch and apply this
          // (newest) reference directly, preserving FIFO order.
          guard.lock();
          DrainAccessBufferLocked();
          policy_->RecordAccess(p, type);
          guard.unlock();
        }
      }
      LaunchBackgroundWork(targets, flusher_due);
      return &page;
    }
    // The per-page request tracker: a read of p already in flight (another
    // thread's miss, or a prefetch) absorbs this miss — wait for it
    // instead of issuing a second physical read.
    if (io_ != nullptr) {
      auto pending = pending_reads_.find(p);
      if (pending != pending_reads_.end()) {
        if (!counted) {
          ++stats_.misses;
          ++stats_.coalesced_reads;
          counted = true;
        }
        std::shared_ptr<PendingIo> entry = pending->second;
        entry->cv.wait(guard, [&] { return entry->done; });
        if (!entry->status.ok() && !entry->retry_as_primary) {
          // The coalesced read failed: every waiter reports the same
          // status the primary saw (the failure was counted once, by the
          // primary).
          return entry->status;
        }
        // Success: the page should be resident now (re-loop to the hit
        // branch). An abandoned prefetch (retry_as_primary) or an
        // admission already evicted again falls through to a fresh
        // primary miss instead.
        continue;
      }
    }
    break;
  }

  if (!counted) ++stats_.misses;
  // Deferred references precede this fault in the reference string; apply
  // them before the policy sees the admission (and before any eviction
  // decision, which must act on a fully drained view).
  DrainAccessBufferLocked();
  policy_->PrepareAdmit(p);
  auto frame = AcquireFrame();
  if (!frame.ok()) return frame.status();
  Page& page = frames_[*frame];
  Status read;
  if (io_ != nullptr) {
    // Register in the tracker, release the latch, and run the read through
    // the dispatcher: concurrent misses on p coalesce onto this entry, and
    // the rest of the pool stays serviceable during the I/O. The frame is
    // reserved (neither free nor mapped), so nothing else can claim it.
    auto entry = std::make_shared<PendingIo>();
    pending_reads_.emplace(p, entry);
    RetryOutcome outcome;
    guard.unlock();
    io_->Run([&] {
      outcome = RetryWithBackoff(
          options_.io_retry, [&] { return disk_->ReadPage(p, page.Data()); });
    });
    guard.lock();
    stats_.retries += outcome.retries;
    if (!outcome.status.ok()) ++stats_.read_failures;
    read = outcome.status;
    FinishPendingLocked(p, entry, read);
  } else {
    read = DiskRead(p, page.Data());
  }
  if (!read.ok()) {
    // The page was never admitted: the policy has no entry for p, the
    // page table is untouched, and the frame (legitimately freed by a
    // completed eviction, or taken from the free list) goes back unused.
    free_frames_.push_back(*frame);
    return read;
  }
  page.id_ = p;
  page.pin_count_ = 1;
  page.dirty_ = type == AccessType::kWrite;
  page_table_.emplace(p, *frame);
  frame_prefetched_[*frame] = 0;
  policy_->Admit(p, type);
  policy_->SetEvictable(p, false);
  std::vector<PageId> targets;
  bool flusher_due = false;
  if (io_ != nullptr) CollectBackgroundWorkLocked(p, &targets, &flusher_due);
  guard.unlock();
  LaunchBackgroundWork(targets, flusher_due);
  return &page;
}

Result<Page*> BufferPool::NewPage() {
  std::unique_lock<std::mutex> guard(latch_);
  auto allocated = disk_->AllocatePage();
  if (!allocated.ok()) return allocated.status();
  PageId p = *allocated;
  auto page = AdmitNewPageLocked(p);
  if (!page.ok()) (void)disk_->DeallocatePage(p);
  return page;
}

Result<Page*> BufferPool::AdmitNewPage(PageId p) {
  std::unique_lock<std::mutex> guard(latch_);
  auto page = AdmitNewPageLocked(p);
  return page;
}

Result<Page*> BufferPool::AdmitNewPageLocked(PageId p) {
  // A reallocated id can have a stale prefetch in flight (the readahead
  // window ran past a page another thread deleted); wait it out so the
  // admission cannot race the prefetch's own admission of p.
  {
    std::unique_lock<std::mutex> reacquired(latch_, std::adopt_lock);
    FencePageLocked(reacquired, p);
    reacquired.release();  // The caller's guard still owns the latch.
  }
  if (page_table_.contains(p)) {
    return Status::AlreadyExists("admit of resident page " +
                                 std::to_string(p));
  }
  DrainAccessBufferLocked();  // As on the miss path: admit/evict on a
                              // fully drained view.
  policy_->PrepareAdmit(p);
  auto frame = AcquireFrame();
  if (!frame.ok()) return frame.status();
  Page& page = frames_[*frame];
  page.ZeroFill();
  page.id_ = p;
  page.pin_count_ = 1;
  page.dirty_ = true;  // Must reach disk at least once.
  page_table_.emplace(p, *frame);
  frame_prefetched_[*frame] = 0;
  policy_->Admit(p, AccessType::kWrite);
  policy_->SetEvictable(p, false);
  return &page;
}

Status BufferPool::UnpinPage(PageId p, bool dirty) {
  std::lock_guard<std::mutex> guard(latch_);
  auto it = page_table_.find(p);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page " + std::to_string(p));
  }
  Page& page = frames_[it->second];
  if (page.pin_count_ <= 0) {
    return Status::InvalidArgument("unpin of unpinned page " +
                                   std::to_string(p));
  }
  page.dirty_ = page.dirty_ || dirty;
  --page.pin_count_;
  if (page.pin_count_ == 0) policy_->SetEvictable(p, true);
  return Status::Ok();
}

Status BufferPool::FlushPage(PageId p) {
  std::unique_lock<std::mutex> guard(latch_);
  FencePageLocked(guard, p);  // A read in flight may be admitting p.
  DrainAccessBufferLocked();
  auto it = page_table_.find(p);
  if (it == page_table_.end()) {
    return Status::NotFound("flush of non-resident page " + std::to_string(p));
  }
  Page& page = frames_[it->second];
  // On failure the dirty flag is untouched, so the write is retried by
  // the next flush or eviction rather than silently dropped.
  LRUK_RETURN_IF_ERROR(DiskWrite(p, page.Data()));
  page.dirty_ = false;
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  std::unique_lock<std::mutex> guard(latch_);
  // Drain the dispatcher first: in-flight reads are landing in frame
  // buffers and queued background work may still dirty the picture; after
  // the quiesce this call sees a settled pool.
  QuiesceLocked(guard);
  // Also the teardown drain: the destructor flushes, so no reference is
  // ever lost to a dropped buffer.
  DrainAccessBufferLocked();
  // Try every dirty page even after a failure (a single bad page must not
  // shadow the rest); report the first error. Failed pages keep their
  // dirty flag so a later FlushAll completes the job.
  Status first_error = Status::Ok();
  for (const auto& [p, frame] : page_table_) {
    Page& page = frames_[frame];
    if (!page.dirty_) continue;
    Status written = DiskWrite(p, page.Data());
    if (written.ok()) {
      page.dirty_ = false;
    } else if (first_error.ok()) {
      first_error = written;
    }
  }
  return first_error;
}

Status BufferPool::DeletePage(PageId p) {
  std::unique_lock<std::mutex> guard(latch_);
  // Fence in-flight reads of p: a prefetch that already left the queue
  // must finish (and admit its page) before the delete dismantles it —
  // otherwise its completion would resurrect a page the disk no longer
  // holds. No new read of p can start while we hold the latch.
  FencePageLocked(guard, p);
  // Any buffered reference to p must reach the policy before Remove()
  // forgets the page (a post-Remove RecordAccess would fault). A record
  // not yet visible here implies its producer still pins p, in which case
  // the delete fails below anyway.
  DrainAccessBufferLocked();
  auto it = page_table_.find(p);
  if (it != page_table_.end() && frames_[it->second].pin_count_ > 0) {
    return Status::InvalidArgument("delete of pinned page " +
                                   std::to_string(p));
  }
  // Deallocate on disk FIRST: if it fails, the pool (frame table, policy
  // history, dirty image) is untouched and the page is still usable.
  LRUK_RETURN_IF_ERROR(disk_->DeallocatePage(p));
  if (it != page_table_.end()) {
    Page& page = frames_[it->second];
    policy_->Remove(p);
    free_frames_.push_back(it->second);
    frame_prefetched_[it->second] = 0;
    page.id_ = kInvalidPageId;
    page.dirty_ = false;
    page_table_.erase(it);
  }
  return Status::Ok();
}

}  // namespace lruk
