#include "bufferpool/page_table.h"

namespace lruk {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

PageTable::PageTable(size_t capacity)
    : capacity_(capacity) {
  size_t want = capacity < 8 ? 16 : 2 * capacity;
  size_t buckets = NextPow2(want);
  mask_ = buckets - 1;
  buckets_ = std::vector<Bucket>(buckets);
}

size_t PageTable::FindBucket(PageId p) const {
  size_t i = IdealBucket(p);
  while (true) {
    PageId got = buckets_[i].page.load(std::memory_order_relaxed);
    if (got == p) return i;
    if (got == kInvalidPageId) return kNpos;
    i = (i + 1) & mask_;
  }
}

bool PageTable::Find(PageId p, FrameId* frame) const {
  size_t i = FindBucket(p);
  if (i == kNpos) return false;
  *frame = buckets_[i].frame.load(std::memory_order_relaxed);
  return true;
}

void PageTable::Insert(PageId p, FrameId frame) {
  LRUK_ASSERT(size_ < capacity_, "PageTable overfull");
  size_t i = IdealBucket(p);
  while (true) {
    PageId got = buckets_[i].page.load(std::memory_order_relaxed);
    LRUK_ASSERT(got != p, "PageTable::Insert duplicate page");
    if (got == kInvalidPageId) break;
    i = (i + 1) & mask_;
  }
  Bucket& b = buckets_[i];
  uint64_t v = b.version.load(std::memory_order_relaxed);
  b.version.store(v + 1);  // odd: mutating
  b.page.store(p);
  b.frame.store(frame);
  b.version.store(v + 2);  // even: stable
  ++size_;
}

size_t PageTable::LockBucket(PageId p) {
  size_t i = FindBucket(p);
  LRUK_ASSERT(i != kNpos, "PageTable::LockBucket absent page");
  Bucket& b = buckets_[i];
  // seq_cst store: the caller's subsequent pin-count load must not be
  // reordered before this (Dekker handshake with the optimistic pinner).
  b.version.store(b.version.load(std::memory_order_relaxed) + 1);
  return i;
}

void PageTable::UnlockUnchanged(size_t bucket) {
  Bucket& b = buckets_[bucket];
  b.version.store(b.version.load(std::memory_order_relaxed) + 1);
}

void PageTable::UnlockErased(size_t bucket) {
  EraseFromLockedBucket(bucket);
  --size_;
}

void PageTable::Erase(PageId p) {
  UnlockErased(LockBucket(p));
}

void PageTable::EraseFromLockedBucket(size_t hole) {
  // buckets_[hole].version is odd (caller locked it). Backward-shift the
  // probe cluster into the hole, giving every moved-from bucket the same
  // odd/even dance so no optimistic reader can validate across a move.
  size_t j = hole;
  while (true) {
    j = (j + 1) & mask_;
    Bucket& bj = buckets_[j];
    PageId pj = bj.page.load(std::memory_order_relaxed);
    if (pj == kInvalidPageId) break;
    size_t ideal = IdealBucket(pj);
    // Move pj into the hole iff the hole lies within pj's probe path,
    // i.e. cyclic distance(ideal -> j) >= distance(hole -> j).
    if (((j - ideal) & mask_) < ((j - hole) & mask_)) continue;
    bj.version.store(bj.version.load(std::memory_order_relaxed) + 1);  // odd
    Bucket& bh = buckets_[hole];
    bh.page.store(pj);
    bh.frame.store(bj.frame.load(std::memory_order_relaxed));
    bh.version.store(bh.version.load(std::memory_order_relaxed) + 1);  // even
    hole = j;  // bj stays odd; it is the new hole
  }
  Bucket& bh = buckets_[hole];
  bh.page.store(kInvalidPageId);
  bh.version.store(bh.version.load(std::memory_order_relaxed) + 1);  // even
}

bool PageTable::OptimisticFind(PageId p, Snapshot* out,
                               ProbeFail* why) const {
  if (why != nullptr) *why = ProbeFail::kNone;
  size_t i = IdealBucket(p);
  // Probes are bounded by the longest cluster; cap defensively so a
  // torn concurrent erase can never spin a reader (fallback is cheap).
  for (size_t step = 0; step <= mask_; ++step, i = (i + 1) & mask_) {
    const Bucket& b = buckets_[i];
    uint64_t v = b.version.load();
    PageId got = b.page.load();
    if (got == p) {
      if (v & 1) {  // mutating: fall back
        if (why != nullptr) *why = ProbeFail::kVersionConflict;
        return false;
      }
      FrameId frame = b.frame.load();
      // Re-check the version so (page, frame) is a consistent pair.
      if (b.version.load() != v) {
        if (why != nullptr) *why = ProbeFail::kVersionConflict;
        return false;
      }
      out->version = v;
      out->frame = frame;
      out->bucket = i;
      return true;
    }
    if (got == kInvalidPageId) {
      // Could be a transient hole from a concurrent backward shift, but
      // a false miss only costs a latched lookup.
      if (why != nullptr) *why = ProbeFail::kMiss;
      return false;
    }
  }
  if (why != nullptr) *why = ProbeFail::kDisplacementBound;
  return false;
}

}  // namespace lruk
