// RAII pin management: a PageGuard unpins its page on destruction, marking
// it dirty if it was acquired (or later upgraded) for writing. Works over
// any PoolInterface (single-latch or sharded).

#ifndef LRUK_BUFFERPOOL_PAGE_GUARD_H_
#define LRUK_BUFFERPOOL_PAGE_GUARD_H_

#include "bufferpool/pool_interface.h"
#include "bufferpool/page.h"
#include "util/status.h"

namespace lruk {

class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PoolInterface* pool, Page* page, bool dirty);
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  // Fetches `p` from `pool` and wraps it. `type` kWrite pre-marks dirty.
  static Result<PageGuard> Fetch(PoolInterface& pool, PageId p,
                                 AccessType type = AccessType::kRead);

  // Allocates a new page and wraps it (already dirty).
  static Result<PageGuard> New(PoolInterface& pool);

  bool valid() const { return page_ != nullptr; }
  PageId id() const { return page_ != nullptr ? page_->id() : kInvalidPageId; }

  char* Data() {
    MarkDirty();
    return page_->Data();
  }
  const char* Data() const { return page_->Data(); }

  template <typename T>
  T* AsMut() {
    MarkDirty();
    return page_->As<T>();
  }
  template <typename T>
  const T* As() const {
    return page_->As<T>();
  }

  // Records that the holder modified the page.
  void MarkDirty() { dirty_ = true; }

  // Unpins now (destruction becomes a no-op).
  void Release();

 private:
  PoolInterface* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_PAGE_GUARD_H_
