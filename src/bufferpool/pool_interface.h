// The buffer-pool surface shared by the single-latch BufferPool and the
// ShardedBufferPool: substrates (B+tree, heap file), PageGuard, examples
// and benches program against this interface so either pool can be swapped
// in underneath them.

#ifndef LRUK_BUFFERPOOL_POOL_INTERFACE_H_
#define LRUK_BUFFERPOOL_POOL_INTERFACE_H_

#include <cstdint>

#include "bufferpool/page.h"
#include "core/types.h"
#include "util/status.h"

namespace lruk {

// Counting semantics: every FetchPage resolves to exactly one hit or one
// miss. A fetch of a resident page is a hit even when the page is already
// pinned by this or another caller — a re-pin saved an I/O just as surely
// as a first pin did, so hits measure "fetches that did not touch disk".
// NewPage, FlushPage and DeletePage count neither hits nor misses.
// `evictions` counts policy-chosen victims only (DeletePage is not an
// eviction, and an eviction whose dirty write-back failed — and was rolled
// back — is not counted); `dirty_writebacks` counts eviction-time
// write-backs (explicit FlushPage/FlushAll writes are not included).
// `read_failures`/`write_failures` count pool-issued disk ops that failed
// after exhausting any configured retries; `retries` counts the re-issues
// spent by BufferPoolOptions::io_retry (0 when retries are off).
//
// Dispatcher counters (all zero unless BufferPoolOptions::io_dispatcher is
// on — see DESIGN.md "Async I/O dispatcher"): a fetch that finds its page's
// read already in flight counts one miss AND one `coalesced_read` (it
// waited on the existing read instead of issuing its own, so physical
// reads == misses - coalesced_reads - prefetch hits). `prefetch_issued`
// counts readahead requests registered; `prefetch_used` counts hits that
// landed on a prefetched frame before any demand reference touched it;
// `prefetch_dropped` counts prefetches abandoned (full dispatcher queue,
// no evictable frame, or a failed read — never an error surfaced to
// callers). `background_cleans` counts flusher write-backs that cleaned a
// dirty page ahead of eviction (they are not `dirty_writebacks`, which
// stay eviction-time only).
//
// Write-behind counters (all zero unless BufferPoolOptions::write_behind
// is on — see DESIGN.md "Priority lanes, write-behind eviction, and
// flusher pacing"): with write-behind, `dirty_writebacks` narrows to
// victim writes the evicting thread performed synchronously (the
// foreground-stall metric: inline mode, or a full Flush lane), while
// `writebehind_writes` counts victim writes completed off the miss path
// from a pinned copy. `writebehind_readmits` counts failed write-behind
// writes whose page was re-admitted dirty (exact rollback via
// ReplacementPolicy::Restore — the eviction stays counted).
// `io_drops_flush`/`io_drops_prefetch` count this pool's TryPost
// submissions refused by a full dispatcher lane, per request class
// (dropped flusher passes and write-behind fallbacks on the Flush lane;
// on the Prefetch lane a queue-full subset of `prefetch_dropped`) —
// with a shared dispatcher these are counted at the submitting pool, so
// shard sums stay exact.
//
// Optimistic-path counters (all zero unless BufferPoolOptions::
// optimistic_hits is on — see DESIGN.md "Optimistic page table & pin
// protocol"): `optimistic_hits` counts hits served entirely without the
// pool latch; they are also counted in `hits`. `optimistic_fallbacks`
// counts every optimistic attempt that ended up on the latched path, and
// splits exactly into three attributed causes: `fallback_probe_miss`
// (the probe found a clean empty bucket — the page is simply absent, so
// single-threaded this equals the miss count plus any unpin probes of
// non-resident pages), `fallback_version_conflict` (an odd or changed
// bucket version, including post-pin validation failures — a concurrent
// mutation raced the probe), and `fallback_resize` (the displacement
// bound was exhausted without finding a terminator — the condition a
// growable table would resolve by resizing; the fixed-size table falls
// back to the exact latched probe instead). `pin_cas_retries` counts
// failed compare-exchange iterations in latch-free unpins — a contention
// proxy. `latch_acquires` counts acquisitions of the pool mutex (per
// shard, summed); it is a proxy, not a lock census: condition-variable
// re-acquisitions inside waits are not counted. With optimistic_hits on,
// a warm hit+unpin pair performs zero latch acquisitions.
//
// `access_drops` counts buffered access records dropped at drain time
// because their page had already been evicted (the record stalled behind
// a lock-free publish gap, or — with optimistic_hits — its pin+publish+
// unpin completed without the latch). Each drop is one policy reference
// that was observed but never applied: bounded staleness, surfaced so
// accounting like clock == hits + misses + admits - drops stays exact.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  uint64_t read_failures = 0;
  uint64_t write_failures = 0;
  uint64_t retries = 0;
  uint64_t coalesced_reads = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_used = 0;
  uint64_t prefetch_dropped = 0;
  uint64_t background_cleans = 0;
  uint64_t writebehind_writes = 0;
  uint64_t writebehind_readmits = 0;
  uint64_t io_drops_flush = 0;
  uint64_t io_drops_prefetch = 0;
  uint64_t optimistic_hits = 0;
  uint64_t optimistic_fallbacks = 0;
  uint64_t fallback_probe_miss = 0;
  uint64_t fallback_version_conflict = 0;
  uint64_t fallback_resize = 0;
  uint64_t access_drops = 0;
  uint64_t pin_cas_retries = 0;
  uint64_t latch_acquires = 0;

  double HitRatio() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  BufferPoolStats& operator+=(const BufferPoolStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    dirty_writebacks += other.dirty_writebacks;
    read_failures += other.read_failures;
    write_failures += other.write_failures;
    retries += other.retries;
    coalesced_reads += other.coalesced_reads;
    prefetch_issued += other.prefetch_issued;
    prefetch_used += other.prefetch_used;
    prefetch_dropped += other.prefetch_dropped;
    background_cleans += other.background_cleans;
    writebehind_writes += other.writebehind_writes;
    writebehind_readmits += other.writebehind_readmits;
    io_drops_flush += other.io_drops_flush;
    io_drops_prefetch += other.io_drops_prefetch;
    optimistic_hits += other.optimistic_hits;
    optimistic_fallbacks += other.optimistic_fallbacks;
    fallback_probe_miss += other.fallback_probe_miss;
    fallback_version_conflict += other.fallback_version_conflict;
    fallback_resize += other.fallback_resize;
    access_drops += other.access_drops;
    pin_cas_retries += other.pin_cas_retries;
    latch_acquires += other.latch_acquires;
    return *this;
  }
};

// Abstract page-caching pool. Implementations pin pages on fetch; callers
// balance every FetchPage/NewPage with UnpinPage (or hold a PageGuard).
class PoolInterface {
 public:
  PoolInterface() = default;
  virtual ~PoolInterface() = default;
  LRUK_DISALLOW_COPY_AND_MOVE(PoolInterface);

  // Returns the page pinned, reading it from disk on a miss. `type`
  // reaches the replacement policy (and kWrite marks the page dirty).
  virtual Result<Page*> FetchPage(PageId p,
                                  AccessType type = AccessType::kRead) = 0;

  // Allocates a new disk page, returns it pinned, zeroed, and dirty.
  virtual Result<Page*> NewPage() = 0;

  // Drops one pin; `dirty` accumulates into the page's dirty flag. The
  // page becomes evictable when its pin count reaches zero.
  virtual Status UnpinPage(PageId p, bool dirty) = 0;

  // Writes the page image to disk now (page stays resident and keeps its
  // pins). Clears the dirty flag.
  virtual Status FlushPage(PageId p) = 0;

  // Flushes every dirty resident page. On write failure, attempts every
  // remaining dirty page anyway and returns the first error; pages whose
  // write failed keep their dirty flag, so a later FlushAll can complete
  // the job once the fault clears.
  virtual Status FlushAll() = 0;

  // Removes the page from the pool and deallocates it on disk. Fails if
  // pinned.
  virtual Status DeletePage(PageId p) = 0;

  // Total frames across the whole pool.
  virtual size_t capacity() const = 0;

  // Currently resident pages across the whole pool.
  virtual size_t ResidentCount() const = 0;

  virtual bool IsResident(PageId p) const = 0;

  // Aggregate counters (summed across shards for a sharded pool).
  // Drains pending access-buffer records first so the returned counters
  // reflect every completed operation — which takes the pool latch.
  virtual BufferPoolStats stats() const = 0;

  // Lock-free counter snapshot: reads the atomic counters without taking
  // any latch or draining buffered records, so observation never blocks
  // the hit path. Counters are individually exact but the snapshot is not
  // an atomic cut across them under concurrency.
  virtual BufferPoolStats StatsSnapshot() const { return stats(); }

  virtual void ResetStats() = 0;
};

}  // namespace lruk

#endif  // LRUK_BUFFERPOOL_POOL_INTERFACE_H_
