// The asynchronous I/O dispatcher: a bounded blocking work queue served by
// N worker threads, sitting between the buffer pools and any DiskManager.
//
// Two lanes:
//
//  * Run(fn)     — the foreground lane. The caller needs the result before
//    it can proceed (a miss read), so Run executes `fn` through the
//    dispatcher and returns only once it has run: on the calling thread in
//    inline mode, or on a worker after queueing (blocking while the queue
//    is full) in worker mode.
//  * TryPost(fn) — the background lane. The work is optional (a readahead
//    prefetch, a flusher pass): in worker mode it is enqueued without
//    blocking and rejected when the queue is full — background work must
//    never stall a foreground miss; in inline mode it runs immediately on
//    the calling thread.
//
// Inline mode (workers == 0) is the determinism contract: every request
// executes synchronously on the thread that issued it, in issue order, so
// a single-threaded caller drives the disk through the dispatcher in
// exactly the same op sequence as calling the disk directly. This is what
// keeps the PR 4 replay story intact — a (seed, fault-schedule) pair
// reproduces byte-identical traces with the dispatcher on.
//
// The dispatcher runs closures, not typed requests, on purpose: the
// per-page request tracker that coalesces concurrent misses needs the
// pool's page table and latch, so it lives in BufferPool (DESIGN.md
// "Async I/O dispatcher"); the dispatcher supplies the threads, the
// bounded queue, and the completion signalling.
//
// Thread safety: all public methods are safe to call concurrently.
// Restriction: a closure running on a worker must not call Run or TryPost
// on the same dispatcher (with one worker, Run would wait on a queue only
// itself could drain). The pools respect this: only foreground paths
// submit.

#ifndef LRUK_IO_IO_DISPATCHER_H_
#define LRUK_IO_IO_DISPATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace lruk {

struct IoDispatcherOptions {
  // Worker threads serving the queue. 0 = inline mode: no threads, no
  // queue, every submission executes synchronously on the caller.
  size_t workers = 0;
  // Bounded queue capacity (worker mode). Run() blocks while the queue is
  // full; TryPost() is rejected instead.
  size_t queue_depth = 64;
};

// Cumulative dispatcher counters. `queue_highwater` is the deepest the
// queue has been; `rejected` counts TryPost calls refused by a full queue.
struct IoDispatcherStats {
  uint64_t submitted = 0;        // Run() calls.
  uint64_t posted = 0;           // TryPost() calls accepted.
  uint64_t rejected = 0;         // TryPost() calls refused (queue full).
  uint64_t executed_inline = 0;  // Closures run on the submitting thread.
  uint64_t executed_async = 0;   // Closures run on a worker.
  uint64_t queue_highwater = 0;
};

class IoDispatcher {
 public:
  explicit IoDispatcher(IoDispatcherOptions options = {});
  // Drains the queue (workers finish every accepted item) and joins.
  ~IoDispatcher();
  LRUK_DISALLOW_COPY_AND_MOVE(IoDispatcher);

  bool inline_mode() const { return options_.workers == 0; }
  const IoDispatcherOptions& options() const { return options_; }

  // Foreground lane: executes `fn` through the dispatcher, returning once
  // it has run. Never rejected; blocks while the queue is full.
  void Run(std::function<void()> fn);

  // Background lane: fire-and-forget. Returns false (and does not run
  // `fn`) when the worker queue is full. Inline mode always runs and
  // returns true.
  bool TryPost(std::function<void()> fn);

  // Blocks until every accepted item has finished executing. New
  // submissions during the wait extend it.
  void Drain();

  IoDispatcherStats stats() const;

 private:
  struct Completion;  // Stack-allocated Run() completion signal (in .cc).
  struct Item {
    std::function<void()> fn;
    // Completion signal for Run(); null for TryPost items.
    Completion* completion = nullptr;
  };

  void WorkerLoop();

  IoDispatcherOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // Queue became non-empty / stopping.
  std::condition_variable space_cv_;  // Queue lost an item (Run backpressure).
  std::condition_variable idle_cv_;   // Queue empty and workers idle (Drain).
  std::deque<Item> queue_;
  size_t executing_ = 0;  // Items currently running on workers.
  bool stopping_ = false;
  IoDispatcherStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace lruk

#endif  // LRUK_IO_IO_DISPATCHER_H_
