// The asynchronous I/O dispatcher: bounded per-class work queues served by
// N worker threads, sitting between the buffer pools and any DiskManager.
//
// Request classes (priority lanes), highest priority first:
//
//  * kDemand   — a caller is blocked on the result (a miss read). Served
//    with strict preference over the background lanes.
//  * kFlush    — dirty-page write-back running ahead of (or behind) the
//    eviction decision: background flusher passes and write-behind victim
//    writes. Durability work — it must complete eventually, but no caller
//    is synchronously blocked on it in the common case.
//  * kPrefetch — advisory readahead. The first casualty under pressure:
//    dropped when its lane is full, served last when demand is waiting.
//
// Submission surfaces:
//
//  * Run(fn, cls)     — the blocking lane. The caller needs the result
//    before it can proceed, so Run executes `fn` through the dispatcher
//    and returns only once it has run: on the calling thread in inline
//    mode, or on a worker after queueing (blocking while the class queue
//    is full) in worker mode. Defaults to kDemand.
//  * TryPost(fn, cls) — fire-and-forget. In worker mode it is enqueued
//    without blocking and rejected when the class queue is full —
//    background work must never stall a foreground miss; in inline mode
//    it runs immediately on the calling thread. Defaults to kPrefetch.
//
// Scheduling: workers pop Demand first. To bound background starvation,
// after `starvation_budget` consecutive demand dispatches while background
// work waits, one background item (Flush before Prefetch) is dispatched
// and the budget resets — so under sustained demand load every accepted
// background request still executes within a bounded number of demand
// dispatches (the anti-starvation property test asserts this).
//
// Inline mode (workers == 0) is the determinism contract: every request
// executes synchronously on the thread that issued it, in issue order
// (priorities never reorder — there is no queue), so a single-threaded
// caller drives the disk through the dispatcher in exactly the same op
// sequence as calling the disk directly. This is what keeps the PR 4
// replay story intact — a (seed, fault-schedule) pair reproduces
// byte-identical traces with the dispatcher on.
//
// The dispatcher runs closures, not typed requests, on purpose: the
// per-page request tracker that coalesces concurrent misses needs the
// pool's page table and latch, so it lives in BufferPool (DESIGN.md
// "Async I/O dispatcher"); the dispatcher supplies the threads, the
// bounded lanes, and the completion signalling.
//
// Thread safety: all public methods are safe to call concurrently.
// Restriction: a closure running on a worker must not call Run on the
// same dispatcher (with one worker, Run would wait on a queue only itself
// could drain). TryPost from a worker is safe — it never blocks — and the
// pools use it (a worker-mode prefetch admission can defer a write-behind
// victim write).

#ifndef LRUK_IO_IO_DISPATCHER_H_
#define LRUK_IO_IO_DISPATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace lruk {

// Request class = priority lane. Order is priority order (lower enumerator
// value wins); kIoClassCount sizes per-class arrays.
enum class IoClass : uint8_t { kDemand = 0, kFlush = 1, kPrefetch = 2 };
inline constexpr size_t kIoClassCount = 3;

inline const char* IoClassName(IoClass cls) {
  switch (cls) {
    case IoClass::kDemand:
      return "demand";
    case IoClass::kFlush:
      return "flush";
    case IoClass::kPrefetch:
      return "prefetch";
  }
  return "?";
}

struct IoDispatcherOptions {
  // Worker threads serving the lanes. 0 = inline mode: no threads, no
  // queues, every submission executes synchronously on the caller.
  size_t workers = 0;
  // Bounded capacity of EACH class lane (worker mode). Run() blocks while
  // its lane is full; TryPost() is rejected instead.
  size_t queue_depth = 64;
  // Anti-starvation bound: the maximum number of consecutive demand
  // dispatches while background (Flush/Prefetch) work waits queued. Once
  // the budget is spent, one background item is dispatched (Flush before
  // Prefetch) and the budget resets. 0 behaves as 1 (alternate fairly).
  size_t starvation_budget = 16;
};

// Per-lane cumulative counters. `accepted` counts submissions enqueued (or
// executed inline); `rejected` counts TryPost calls refused by a full
// lane; `queue_highwater` is the deepest this lane has been; the wait
// fields measure enqueue-to-dispatch latency on workers (0 in inline
// mode, where nothing ever queues).
struct IoLaneStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t executed = 0;
  uint64_t queue_highwater = 0;
  double wait_micros = 0.0;      // Total enqueue->dispatch wait.
  double max_wait_micros = 0.0;  // Worst single wait.
};

// Cumulative dispatcher counters. The aggregate fields keep their PR 5
// meanings (`rejected` counts TryPost calls refused by a full lane,
// `queue_highwater` is the deepest the lanes have been in total); `lanes`
// breaks the same activity down per request class, and
// `starvation_grants` counts background dispatches forced by the
// anti-starvation budget while demand was still waiting.
struct IoDispatcherStats {
  uint64_t submitted = 0;        // Run() calls.
  uint64_t posted = 0;           // TryPost() calls accepted.
  uint64_t rejected = 0;         // TryPost() calls refused (lane full).
  uint64_t executed_inline = 0;  // Closures run on the submitting thread.
  uint64_t executed_async = 0;   // Closures run on a worker.
  uint64_t queue_highwater = 0;  // Across all lanes combined.
  uint64_t starvation_grants = 0;
  IoLaneStats lanes[kIoClassCount];

  const IoLaneStats& lane(IoClass cls) const {
    return lanes[static_cast<size_t>(cls)];
  }
};

class IoDispatcher {
 public:
  explicit IoDispatcher(IoDispatcherOptions options = {});
  // Drains the lanes (workers finish every accepted item) and joins.
  ~IoDispatcher();
  LRUK_DISALLOW_COPY_AND_MOVE(IoDispatcher);

  bool inline_mode() const { return options_.workers == 0; }
  const IoDispatcherOptions& options() const { return options_; }

  // Blocking lane: executes `fn` through the dispatcher, returning once
  // it has run. Never rejected; blocks while the class lane is full.
  void Run(std::function<void()> fn, IoClass cls = IoClass::kDemand);

  // Fire-and-forget: returns false (and does not run `fn`) when the class
  // lane is full. Inline mode always runs and returns true.
  bool TryPost(std::function<void()> fn, IoClass cls = IoClass::kPrefetch);

  // Blocks until every accepted item has finished executing. New
  // submissions during the wait extend it.
  void Drain();

  // Items currently queued (not yet dispatched) in one lane.
  size_t LaneDepth(IoClass cls) const;

  IoDispatcherStats stats() const;

 private:
  struct Completion;  // Stack-allocated Run() completion signal (in .cc).
  struct Item {
    std::function<void()> fn;
    // Completion signal for Run(); null for TryPost items.
    Completion* completion = nullptr;
    std::chrono::steady_clock::time_point enqueued;
  };

  size_t TotalQueuedLocked() const {
    return lanes_[0].size() + lanes_[1].size() + lanes_[2].size();
  }
  // Picks the next lane to dispatch from (the scheduling policy above).
  // Returns kIoClassCount when every lane is empty. Caller holds mutex_.
  size_t PickLaneLocked();
  void EnqueueLocked(Item item, IoClass cls);
  void WorkerLoop();

  IoDispatcherOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // A lane became non-empty / stopping.
  std::condition_variable space_cv_;  // A lane lost an item (Run backpressure).
  std::condition_variable idle_cv_;   // Lanes empty and workers idle (Drain).
  std::deque<Item> lanes_[kIoClassCount];
  // Consecutive demand dispatches since the last background dispatch (or
  // since background work last started waiting).
  size_t demand_streak_ = 0;
  size_t executing_ = 0;  // Items currently running on workers.
  bool stopping_ = false;
  IoDispatcherStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace lruk

#endif  // LRUK_IO_IO_DISPATCHER_H_
