// Sequential-scan readahead detection for the buffer pools.
//
// The paper's Example 1.2 problem is a batch process faulting a sequential
// scan in page-at-a-time while interactive traffic waits behind each
// synchronous read. The fix on the I/O side (the policy side is LRU-K
// itself) is to notice the scan shape and stream the next pages in before
// they are asked for.
//
// Detection is by STRIDE VOTING over a short history window rather than a
// strict last-page match: Observe(p) checks, for every candidate stride
// s in [-max_stride, -1] u [1, max_stride], how many distinct depths d
// have p - s*d among the last `vote_window` observed fetches. A genuine
// stride-s scan puts its last several pages exactly at those offsets, so
// the winning stride collects one vote per visible predecessor; when
// votes + 1 (p itself) reaches min_run, the detector emits the next
// `window` pages along the stride. Ties go to the larger |s| so a
// stride-2 scan is not misread as stride 1 via its even offsets.
//
// Voting is what makes the detector tolerant of SAMPLED and OUT-OF-ORDER
// fetch streams: an interleaved hot-page reference (the Example 1.2 mix)
// lands in the history but votes for nothing, and the scan's own pages
// keep voting no matter what sits between them — where the old
// last-page-match detector dropped its run on every interruption.
// Re-references (diff 0) never vote, and a candidate predecessor only
// counts when |p - q| <= max_stride * vote_window, so a hot-page loop
// costs one comparison per history slot and never triggers.
//
// The detector re-triggers on every OBSERVED reference while a run holds,
// keeping the prefetch horizon a steady `window` pages ahead of the scan
// cursor; callers dedup against their resident set and in-flight request
// tracker, which makes the re-issue cheap. The pools feed it only demand
// misses and prefetch-confirmation hits (the first demand touch of a
// prefetched frame): a scan visits each page once, so its references are
// always one of those two, and withholding steady-state warm hits keeps
// even this Observe's cost entirely off the latch-free hit path — while
// ALSO cleaning the observed stream (hot-page re-references never reach
// the ring, so clustered warm traffic cannot vote at all). The conservative bias (no trigger
// without min_run aligned references) is intentional — a false prefetch
// evicts someone else's page and, on the optimistic pools, drags the
// latch back onto an otherwise latch-free reference. Because votes are
// deliberately loose matches, min_run is the precision knob (see its
// comment for the measured false-trigger rates) and vote_window the
// tolerance knob.
//
// Thread safety: Observe is WAIT-FREE and safe to call concurrently — the
// history is a lock-free ring of atomic PageIds (racy-increment slot
// cursor, relaxed stores) and voting reads a racy snapshot of it. The
// cursor is deliberately a relaxed load + store rather than a locked
// fetch_add: a locked RMW is a full fence on x86 and was the single
// largest cost of an Observe on the latch-free hit path, while the only
// thing the fence bought was never losing a slot race — and a lost race
// just overwrites one history entry, i.e. drops at most one vote, which
// racy ring snapshots allow anyway. Concurrent observers may interleave
// their streams in the ring, which can only make votes (and therefore
// triggers) a property of the merged stream — the same merged stream a
// latched detector would have seen, modulo slot races that at worst drop
// a vote. Single-threaded, the cursor increments exactly and the
// detector is fully deterministic. Reset is best-effort under
// concurrency (slots are cleared one at a time).

#ifndef LRUK_IO_READAHEAD_H_
#define LRUK_IO_READAHEAD_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/types.h"

namespace lruk {

struct ReadaheadOptions {
  // Master switch; the pools ignore the detector entirely when false.
  bool enabled = false;
  // Pages to keep in flight ahead of the detected cursor.
  size_t window = 8;
  // Aligned references (votes + the current page) before a trigger (>= 2).
  // The default is deliberately higher than the old exact-run detector's 3:
  // votes are tolerant matches (any of vote_window history slots, either
  // direction), so small thresholds fire on clustered NON-scan traffic —
  // on an 80-20 skew over 4096 pages, min_run = 3 triggers on 11% of
  // references (each spurious trigger costs a latched register and junk
  // prefetch I/O) while 5 triggers on 0.14%, and a genuine scan sampled
  // 1:1 with hot-page traffic is still caught at its 5th page. Tolerance
  // of sparser sampling is bought with vote_window, not by lowering this:
  // a scan page can vote from vote_window observations back, so detection
  // needs min_run - 1 scan pages per vote_window references.
  size_t min_run = 5;
  // Strides with |stride| beyond this are not "sequential" (a Zipfian
  // workload occasionally lands on neighbouring hot pages; a real scan
  // steps by a small constant). Voting considers at most |stride| <= 16.
  int64_t max_stride = 4;
  // Cap on prefetch reads concurrently in flight per pool (0 = the
  // window). Prefetch rides the dispatcher's lowest-priority lane, so a
  // deep backlog would only ever be serviced by anti-starvation grants —
  // better to not register targets the lane cannot absorb (enforced by
  // the pools, not the detector).
  size_t max_inflight = 0;
  // History depth the voting runs over: the last `vote_window` observed
  // fetches. Deeper windows tolerate more interleaved traffic between
  // scan references (a scan page can vote from up to vote_window
  // observations back) at slightly higher per-Observe cost. Clamped to
  // [2, 63].
  size_t vote_window = 8;
};

class ReadaheadDetector {
 public:
  explicit ReadaheadDetector(ReadaheadOptions options) : options_(options) {
    depth_ = options_.vote_window < 2 ? 2 : options_.vote_window;
    if (depth_ > kMaxVoteWindow) depth_ = kMaxVoteWindow;
    ring_ = std::make_unique<std::atomic<PageId>[]>(depth_);
    for (size_t i = 0; i < depth_; ++i) {
      ring_[i].store(kInvalidPageId, std::memory_order_relaxed);
    }
    // Precompute the divisor table: for every |diff| = ad in [1, gate],
    // the (stride, depth) factorizations ad = s*d with s <= smax and
    // d <= depth_. Observe sits on the latch-free hit path, and |diff|s
    // inside the gate are common under clustered (Zipfian) page ids, so
    // the per-candidate trial divisions are replaced by one table row
    // scan (a handful of ORs — the divisor count of ad).
    smax_ = options_.max_stride < kMaxVoteStride ? options_.max_stride
                                                 : kMaxVoteStride;
    gate_ = smax_ > 0 ? smax_ * static_cast<int64_t>(depth_) : 0;
    std::vector<uint32_t> counts(static_cast<size_t>(gate_), 0);
    for (int64_t s = 1; s <= smax_; ++s) {
      for (int64_t d = 1; d <= static_cast<int64_t>(depth_); ++d) {
        ++counts[static_cast<size_t>(s * d - 1)];
      }
    }
    starts_.assign(static_cast<size_t>(gate_) + 1, 0);
    for (size_t i = 0; i < counts.size(); ++i) {
      starts_[i + 1] = starts_[i] + counts[i];
    }
    pairs_.resize(starts_.back());
    std::vector<uint32_t> fill(starts_.begin(), starts_.end() - 1);
    for (int64_t s = 1; s <= smax_; ++s) {
      for (int64_t d = 1; d <= static_cast<int64_t>(depth_); ++d) {
        size_t row = static_cast<size_t>(s * d - 1);
        pairs_[fill[row]++] = {static_cast<uint8_t>(s - 1),
                               static_cast<uint8_t>(d)};
      }
    }
    // Default-sized configs additionally get the packed single-word
    // table (see Observe): 8 lanes of 8 depth bits cover smax <= 4 in
    // each direction with the negative direction a 32-bit shift away.
    if (smax_ >= 1 && smax_ <= static_cast<int64_t>(kPackedNegShift) &&
        depth_ <= 8) {
      packed_.assign(static_cast<size_t>(gate_), 0);
      for (int64_t s = 1; s <= smax_; ++s) {
        for (int64_t d = 1; d <= static_cast<int64_t>(depth_); ++d) {
          packed_[static_cast<size_t>(s * d - 1)] |=
              uint64_t{1} << ((s - 1) * 8 + (d - 1));
        }
      }
    }
  }

  // Observes the next fetched page. If some stride collects min_run - 1
  // votes from the history, appends the next `window` page ids along that
  // stride to `out` (targets that would underflow page-id zero are
  // dropped). `out` is cleared first. Wait-free; see the header comment.
  void Observe(PageId p, std::vector<PageId>* out) {
    out->clear();
    // Locals for everything the scan reads: out->clear() above writes
    // through a pointer the compiler must assume may alias *this, so
    // member loads would otherwise be re-issued every iteration.
    const size_t depth = depth_;
    const int64_t gate = gate_;
    const std::atomic<PageId>* ring = ring_.get();
    if (!packed_.empty()) {
      // Packed path for default-sized configs (|stride| <= 4, vote_window
      // <= 8): the whole vote table is ONE uint64_t of eight 8-bit lanes
      // (lane s-1 = positive stride s, lane s+3 = negative; bit d-1 of a
      // lane = matched depth d). Each in-gate history entry contributes
      // one table load and one OR — no scratch array, no per-call zeroing
      // — and a negative diff is the same mask shifted into the high
      // lanes. Observe sits on the latch-free hit path; together with
      // the count-only gate pass and the unlocked publish below, this
      // keeps the always-on detector from taxing warm hits (~90 ns ->
      // ~37 ns per call on an 80-20 skew).
      //
      // Snapshot the ring once (relaxed atomic loads into locals), then
      // run a COUNT-ONLY branchless gate pass over the snapshot: no
      // table loads, just |p - q| <= gate per entry. An entry sets at
      // most one depth bit per stride (ad = s*d fixes d given s), so
      // fewer than min_run - 1 in-gate entries cannot reach a trigger
      // no matter how they vote — the common case on non-scan traffic,
      // which pays only the gate arithmetic and skips the vote
      // gathering and winner scan entirely.
      PageId snap[8];
      for (size_t i = 0; i < depth; ++i) {
        snap[i] = ring[i].load(std::memory_order_relaxed);
      }
      size_t in_gate_count = 0;
      for (size_t i = 0; i < depth; ++i) {
        PageId q = snap[i];
        int64_t diff = static_cast<int64_t>(p) - static_cast<int64_t>(q);
        int64_t ad = diff < 0 ? -diff : diff;
        in_gate_count += (q != kInvalidPageId) & (diff != 0) & (ad <= gate);
      }
      // Publish p before any early return so the NEXT Observe sees it
      // (racy-increment cursor; see the header comment for why this is
      // not a fetch_add).
      uint64_t cur = pos_.load(std::memory_order_relaxed);
      pos_.store(cur + 1, std::memory_order_relaxed);
      ring_[cur % depth].store(p, std::memory_order_relaxed);
      if (in_gate_count + 1 < options_.min_run) return;
      // Gather votes from the SAME snapshot (the live ring now contains
      // p itself).
      const uint64_t* packed = packed_.data();
      uint64_t votes = 0;
      for (size_t i = 0; i < depth; ++i) {
        PageId q = snap[i];
        if (q == kInvalidPageId) continue;
        int64_t diff = static_cast<int64_t>(p) - static_cast<int64_t>(q);
        if (diff == 0) continue;  // A re-reference is never scan progress.
        int64_t ad = diff < 0 ? -diff : diff;
        if (ad > gate) continue;  // Too far to be s*d for any candidate.
        // diff >> 63 is all-ones for negative diffs: branchless select of
        // the high (negative-stride) lanes.
        votes |= packed[ad - 1] << (static_cast<uint64_t>(diff >> 63) & 32);
      }
      // Winner: most votes (distinct-depth popcount per lane, so a page
      // observed twice still votes once); ties to the larger |s| (a
      // stride-2 scan also matches s=1 at even depths — the larger
      // stride is the real one).
      const size_t smax = static_cast<size_t>(smax_);
      int64_t best_stride = 0;
      size_t best_votes = 0;
      for (size_t s = 1; s <= smax; ++s) {
        for (int neg = 0; neg < 2; ++neg) {
          size_t lane = (s - 1) + (neg != 0 ? kPackedNegShift : 0);
          size_t count = PopCount((votes >> (lane * 8)) & 0xff);
          if (count >= best_votes && count > 0) {
            best_votes = count;
            best_stride = neg != 0 ? -static_cast<int64_t>(s)
                                   : static_cast<int64_t>(s);
          }
        }
      }
      if (best_votes + 1 < options_.min_run) return;
      Emit(p, best_stride, out);
      return;
    }
    // Generic path (larger strides or deeper windows than the packed
    // lanes can hold). First pass: collect the in-gate offsets (a racy
    // snapshot of the history; p is not in it yet), with the same
    // fewer-than-min_run-1 early-out as above.
    struct InGate {
      uint32_t row;
      uint32_t neg;
    };
    InGate in_gate[kMaxVoteWindow];
    size_t in_gate_count = 0;
    const size_t smax = static_cast<size_t>(smax_ > 0 ? smax_ : 0);
    for (size_t i = 0; i < depth; ++i) {
      PageId q = ring[i].load(std::memory_order_relaxed);
      if (q == kInvalidPageId) continue;
      int64_t diff = static_cast<int64_t>(p) - static_cast<int64_t>(q);
      if (diff == 0) continue;  // A re-reference is never scan progress.
      int64_t ad = diff < 0 ? -diff : diff;
      if (ad > gate) continue;  // Too far to be s*d for any candidate.
      // Slots 0..smax-1: positive strides; smax..2*smax-1: negative.
      in_gate[in_gate_count++] = {static_cast<uint32_t>(ad - 1),
                                 diff < 0 ? static_cast<uint32_t>(smax) : 0};
    }
    // Publish p before any early return so the NEXT Observe sees it
    // (racy-increment cursor; see the header comment).
    uint64_t cur = pos_.load(std::memory_order_relaxed);
    pos_.store(cur + 1, std::memory_order_relaxed);
    ring_[cur % depth].store(p, std::memory_order_relaxed);
    if (in_gate_count + 1 < options_.min_run) return;
    // votes[slot] is a bitmask of matched depths d; distinct-d popcount
    // is the vote count, so a page observed twice still votes once.
    uint64_t votes[2 * kMaxVoteStride];
    for (size_t i = 0; i < 2 * smax; ++i) votes[i] = 0;
    for (size_t i = 0; i < in_gate_count; ++i) {
      const size_t row = in_gate[i].row;
      const size_t neg = in_gate[i].neg;
      for (uint32_t j = starts_[row]; j < starts_[row + 1]; ++j) {
        votes[pairs_[j].s + neg] |= uint64_t{1} << pairs_[j].d;
      }
    }
    // Winner: most votes; ties to the larger |s| (a stride-2 scan also
    // matches s=1 at even depths — the larger stride is the real one).
    int64_t best_stride = 0;
    size_t best_votes = 0;
    for (size_t s = 1; s <= smax; ++s) {
      for (int neg = 0; neg < 2; ++neg) {
        size_t count = PopCount(votes[(s - 1) + (neg != 0 ? smax : 0)]);
        if (count >= best_votes && count > 0) {
          best_votes = count;
          best_stride = neg != 0 ? -static_cast<int64_t>(s)
                                 : static_cast<int64_t>(s);
        }
      }
    }
    if (best_votes + 1 < options_.min_run) return;
    Emit(p, best_stride, out);
  }

  // Forgets the history (e.g. after a workload phase change known to the
  // caller). The options stay. Best-effort under concurrent Observe.
  void Reset() {
    for (size_t i = 0; i < depth_; ++i) {
      ring_[i].store(kInvalidPageId, std::memory_order_relaxed);
    }
  }

  const ReadaheadOptions& options() const { return options_; }
  size_t vote_depth() const { return depth_; }

 private:
  // Voting considers strides up to +/-16 regardless of max_stride; the
  // stack-local vote table is sized by this bound.
  static constexpr int64_t kMaxVoteStride = 16;
  // vote_window's clamp ceiling; sizes Observe's stack-local in-gate list.
  static constexpr size_t kMaxVoteWindow = 63;

  static size_t PopCount(uint64_t m) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<size_t>(__builtin_popcountll(m));
#else
    size_t c = 0;
    while (m != 0) {
      m &= m - 1;
      ++c;
    }
    return c;
#endif
  }

  // Lane offset of the negative strides in the packed vote word (lanes
  // 0..3 positive, 4..7 negative); also bounds the packed path to
  // smax <= 4 and depth <= 8 so every (s, d) bit fits the low 32 bits.
  static constexpr size_t kPackedNegShift = 4;

  void Emit(PageId p, int64_t stride, std::vector<PageId>* out) const {
    int64_t cursor = static_cast<int64_t>(p);
    for (size_t i = 1; i <= options_.window; ++i) {
      int64_t target = cursor + stride * static_cast<int64_t>(i);
      if (target < 0) break;
      out->push_back(static_cast<PageId>(target));
    }
  }

  // One (stride, depth) factorization of some |diff|: s is the 0-based
  // positive-stride vote slot, d the matched history depth (bit index).
  struct VotePair {
    uint8_t s;
    uint8_t d;
  };

  ReadaheadOptions options_;
  size_t depth_;
  std::unique_ptr<std::atomic<PageId>[]> ring_;
  std::atomic<uint64_t> pos_{0};
  // Divisor table (built once in the constructor, read-only after): row
  // ad-1 spans pairs_[starts_[ad-1] .. starts_[ad]) — every s*d == ad
  // with s <= smax_ and d <= depth_.
  int64_t smax_ = 0;
  int64_t gate_ = 0;
  std::vector<uint32_t> starts_;
  std::vector<VotePair> pairs_;
  // Packed-path table (non-empty iff smax_ <= 4 and depth_ <= 8): row
  // ad-1 is the uint64_t lane word with bit (s-1)*8 + (d-1) set for
  // every s*d == ad.
  std::vector<uint64_t> packed_;
};

}  // namespace lruk

#endif  // LRUK_IO_READAHEAD_H_
