// Sequential-scan readahead detection for the buffer pools.
//
// The paper's Example 1.2 problem is a batch process faulting a sequential
// scan in page-at-a-time while interactive traffic waits behind each
// synchronous read. The fix on the I/O side (the policy side is LRU-K
// itself) is to notice the scan shape and stream the next pages in before
// they are asked for. A simple stride detector is enough for that shape:
// track the difference between successive fetched page ids; after min_run
// references with the same nonzero stride, emit the next `window` pages
// along the stride as prefetch candidates.
//
// The detector deliberately re-triggers on every reference while a run
// holds, keeping the prefetch horizon a steady `window` pages ahead of the
// scan cursor; callers dedup against their resident set and in-flight
// request tracker, which makes the re-issue cheap. Interleaved traffic
// (the Example 1.2 hot-set references between scan pages) breaks runs and
// simply pauses the readahead until the scan shape re-establishes; that
// conservative bias is intentional — a false prefetch evicts someone
// else's page.
//
// Not thread-safe; callers serialize Observe (the single-latch pool calls
// it under its latch, the sharded pool under a dedicated detector mutex).

#ifndef LRUK_IO_READAHEAD_H_
#define LRUK_IO_READAHEAD_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/types.h"

namespace lruk {

struct ReadaheadOptions {
  // Master switch; the pools ignore the detector entirely when false.
  bool enabled = false;
  // Pages to keep in flight ahead of the detected cursor.
  size_t window = 8;
  // Consecutive same-stride references before the first trigger (>= 2).
  size_t min_run = 3;
  // Strides with |stride| beyond this are not "sequential" (a Zipfian
  // workload occasionally lands on neighbouring hot pages; a real scan
  // steps by a small constant).
  int64_t max_stride = 4;
  // Cap on prefetch reads concurrently in flight per pool (0 = the
  // window). Prefetch rides the dispatcher's lowest-priority lane, so a
  // deep backlog would only ever be serviced by anti-starvation grants —
  // better to not register targets the lane cannot absorb (enforced by
  // the pools, not the detector).
  size_t max_inflight = 0;
};

class ReadaheadDetector {
 public:
  explicit ReadaheadDetector(ReadaheadOptions options) : options_(options) {}

  // Observes the next fetched page. If the stride run is long enough,
  // appends the next `window` page ids along the stride to `out` (targets
  // that would underflow page-id zero are dropped). `out` is cleared
  // first.
  void Observe(PageId p, std::vector<PageId>* out) {
    out->clear();
    if (last_ != kInvalidPageId) {
      int64_t stride = static_cast<int64_t>(p) - static_cast<int64_t>(last_);
      bool sequential = stride != 0 && std::abs(stride) <= options_.max_stride;
      if (sequential && stride == stride_) {
        ++run_;
      } else {
        stride_ = stride;
        run_ = sequential ? 2 : 1;  // p and last_ already form a pair.
      }
    }
    last_ = p;
    if (run_ < options_.min_run) return;
    int64_t cursor = static_cast<int64_t>(p);
    for (size_t i = 1; i <= options_.window; ++i) {
      int64_t target = cursor + stride_ * static_cast<int64_t>(i);
      if (target < 0) break;
      out->push_back(static_cast<PageId>(target));
    }
  }

  // Forgets the current run (e.g. after a workload phase change known to
  // the caller). The options stay.
  void Reset() {
    last_ = kInvalidPageId;
    stride_ = 0;
    run_ = 1;
  }

  size_t run_length() const { return run_; }
  int64_t stride() const { return stride_; }
  const ReadaheadOptions& options() const { return options_; }

 private:
  ReadaheadOptions options_;
  PageId last_ = kInvalidPageId;
  int64_t stride_ = 0;
  size_t run_ = 1;
};

}  // namespace lruk

#endif  // LRUK_IO_READAHEAD_H_
