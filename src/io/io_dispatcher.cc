#include "io/io_dispatcher.h"

#include <utility>

namespace lruk {

// Stack-allocated completion signal for Run(): the submitting thread waits
// on it, the executing worker fires it. Lives in the submitter's frame, so
// the worker must touch it only before signalling.
struct IoDispatcher::Completion {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
};

IoDispatcher::IoDispatcher(IoDispatcherOptions options) : options_(options) {
  LRUK_ASSERT(options_.workers == 0 || options_.queue_depth >= 1,
              "worker-mode dispatcher needs a queue");
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoDispatcher::~IoDispatcher() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers drain the queue before exiting, so nothing accepted is lost.
  LRUK_ASSERT(queue_.empty(), "dispatcher destroyed with queued work");
}

void IoDispatcher::WorkerLoop() {
  std::unique_lock<std::mutex> guard(mutex_);
  for (;;) {
    work_cv_.wait(guard, [&] { return !queue_.empty() || stopping_; });
    if (queue_.empty()) return;  // stopping_ and fully drained.
    Item item = std::move(queue_.front());
    queue_.pop_front();
    ++executing_;
    ++stats_.executed_async;
    space_cv_.notify_one();
    guard.unlock();
    item.fn();
    if (item.completion != nullptr) {
      std::lock_guard<std::mutex> signal(item.completion->m);
      item.completion->done = true;
      item.completion->cv.notify_all();
    }
    guard.lock();
    --executing_;
    if (queue_.empty() && executing_ == 0) idle_cv_.notify_all();
  }
}

void IoDispatcher::Run(std::function<void()> fn) {
  if (inline_mode()) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.submitted;
      ++stats_.executed_inline;
    }
    fn();
    return;
  }
  Completion completion;
  {
    std::unique_lock<std::mutex> guard(mutex_);
    ++stats_.submitted;
    space_cv_.wait(guard,
                   [&] { return queue_.size() < options_.queue_depth; });
    queue_.push_back(Item{std::move(fn), &completion});
    if (queue_.size() > stats_.queue_highwater) {
      stats_.queue_highwater = queue_.size();
    }
  }
  work_cv_.notify_one();
  std::unique_lock<std::mutex> wait(completion.m);
  completion.cv.wait(wait, [&] { return completion.done; });
}

bool IoDispatcher::TryPost(std::function<void()> fn) {
  if (inline_mode()) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.posted;
      ++stats_.executed_inline;
    }
    fn();
    return true;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (queue_.size() >= options_.queue_depth) {
      ++stats_.rejected;
      return false;
    }
    ++stats_.posted;
    queue_.push_back(Item{std::move(fn), nullptr});
    if (queue_.size() > stats_.queue_highwater) {
      stats_.queue_highwater = queue_.size();
    }
  }
  work_cv_.notify_one();
  return true;
}

void IoDispatcher::Drain() {
  std::unique_lock<std::mutex> guard(mutex_);
  idle_cv_.wait(guard, [&] { return queue_.empty() && executing_ == 0; });
}

IoDispatcherStats IoDispatcher::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

}  // namespace lruk
