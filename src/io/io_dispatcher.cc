#include "io/io_dispatcher.h"

#include <utility>

namespace lruk {

namespace {
double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

// Stack-allocated completion signal for Run(): the submitting thread waits
// on it, the executing worker fires it. Lives in the submitter's frame, so
// the worker must touch it only before signalling.
struct IoDispatcher::Completion {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
};

IoDispatcher::IoDispatcher(IoDispatcherOptions options) : options_(options) {
  LRUK_ASSERT(options_.workers == 0 || options_.queue_depth >= 1,
              "worker-mode dispatcher needs a queue");
  if (options_.starvation_budget == 0) options_.starvation_budget = 1;
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoDispatcher::~IoDispatcher() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers drain the lanes before exiting, so nothing accepted is lost.
  LRUK_ASSERT(TotalQueuedLocked() == 0, "dispatcher destroyed with queued work");
}

size_t IoDispatcher::PickLaneLocked() {
  constexpr size_t kDemand = static_cast<size_t>(IoClass::kDemand);
  size_t background = kIoClassCount;
  for (size_t lane = kDemand + 1; lane < kIoClassCount; ++lane) {
    if (!lanes_[lane].empty()) {
      background = lane;
      break;
    }
  }
  if (!lanes_[kDemand].empty()) {
    // Strict demand preference — until the anti-starvation budget runs
    // out with background work still waiting.
    if (background == kIoClassCount ||
        demand_streak_ < options_.starvation_budget) {
      ++demand_streak_;
      return kDemand;
    }
    demand_streak_ = 0;
    ++stats_.starvation_grants;
    return background;
  }
  demand_streak_ = 0;
  return background;  // kIoClassCount when everything is empty.
}

void IoDispatcher::EnqueueLocked(Item item, IoClass cls) {
  size_t lane = static_cast<size_t>(cls);
  item.enqueued = std::chrono::steady_clock::now();
  lanes_[lane].push_back(std::move(item));
  IoLaneStats& ls = stats_.lanes[lane];
  if (lanes_[lane].size() > ls.queue_highwater) {
    ls.queue_highwater = lanes_[lane].size();
  }
  size_t total = TotalQueuedLocked();
  if (total > stats_.queue_highwater) stats_.queue_highwater = total;
}

void IoDispatcher::WorkerLoop() {
  std::unique_lock<std::mutex> guard(mutex_);
  for (;;) {
    work_cv_.wait(guard, [&] { return TotalQueuedLocked() > 0 || stopping_; });
    size_t lane = PickLaneLocked();
    if (lane == kIoClassCount) return;  // stopping_ and fully drained.
    Item item = std::move(lanes_[lane].front());
    lanes_[lane].pop_front();
    ++executing_;
    ++stats_.executed_async;
    IoLaneStats& ls = stats_.lanes[lane];
    ++ls.executed;
    double waited = MicrosSince(item.enqueued);
    ls.wait_micros += waited;
    if (waited > ls.max_wait_micros) ls.max_wait_micros = waited;
    space_cv_.notify_all();
    guard.unlock();
    item.fn();
    if (item.completion != nullptr) {
      std::lock_guard<std::mutex> signal(item.completion->m);
      item.completion->done = true;
      item.completion->cv.notify_all();
    }
    guard.lock();
    --executing_;
    if (TotalQueuedLocked() == 0 && executing_ == 0) idle_cv_.notify_all();
  }
}

void IoDispatcher::Run(std::function<void()> fn, IoClass cls) {
  size_t lane = static_cast<size_t>(cls);
  if (inline_mode()) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.submitted;
      ++stats_.executed_inline;
      IoLaneStats& ls = stats_.lanes[lane];
      ++ls.accepted;
      ++ls.executed;
    }
    fn();
    return;
  }
  Completion completion;
  {
    std::unique_lock<std::mutex> guard(mutex_);
    ++stats_.submitted;
    space_cv_.wait(guard,
                   [&] { return lanes_[lane].size() < options_.queue_depth; });
    ++stats_.lanes[lane].accepted;
    EnqueueLocked(Item{std::move(fn), &completion, {}}, cls);
  }
  work_cv_.notify_one();
  std::unique_lock<std::mutex> wait(completion.m);
  completion.cv.wait(wait, [&] { return completion.done; });
}

bool IoDispatcher::TryPost(std::function<void()> fn, IoClass cls) {
  size_t lane = static_cast<size_t>(cls);
  if (inline_mode()) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++stats_.posted;
      ++stats_.executed_inline;
      IoLaneStats& ls = stats_.lanes[lane];
      ++ls.accepted;
      ++ls.executed;
    }
    fn();
    return true;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (lanes_[lane].size() >= options_.queue_depth) {
      ++stats_.rejected;
      ++stats_.lanes[lane].rejected;
      return false;
    }
    ++stats_.posted;
    ++stats_.lanes[lane].accepted;
    EnqueueLocked(Item{std::move(fn), nullptr, {}}, cls);
  }
  work_cv_.notify_one();
  return true;
}

void IoDispatcher::Drain() {
  std::unique_lock<std::mutex> guard(mutex_);
  idle_cv_.wait(guard,
                [&] { return TotalQueuedLocked() == 0 && executing_ == 0; });
}

size_t IoDispatcher::LaneDepth(IoClass cls) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return lanes_[static_cast<size_t>(cls)].size();
}

IoDispatcherStats IoDispatcher::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return stats_;
}

}  // namespace lruk
