// MRU: evicts the *most* recently used page. A niche baseline that is
// optimal for cyclic scans larger than the buffer (where LRU degenerates to
// a 0% hit ratio); included for the scan-resistance experiments.

#ifndef LRUK_CORE_MRU_H_
#define LRUK_CORE_MRU_H_

#include <list>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "core/replacement_policy.h"

namespace lruk {

class MruPolicy final : public ReplacementPolicy {
 public:
  MruPolicy() = default;

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return evictable_count_; }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "MRU"; }

 private:
  struct Entry {
    std::list<PageId>::iterator pos;
    bool evictable = true;
  };

  // Most recently used at the front; victims come from the front.
  std::list<PageId> recency_;
  std::unordered_map<PageId, Entry> entries_;
  size_t evictable_count_ = 0;
};

}  // namespace lruk

#endif  // LRUK_CORE_MRU_H_
