#include "core/gclock.h"

#include <algorithm>

namespace lruk {

GClockPolicy::GClockPolicy(GClockOptions options) : options_(options) {}

void GClockPolicy::AdvanceHand() {
  if (ring_.empty()) {
    hand_ = ring_.end();
    return;
  }
  ++hand_;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
}

void GClockPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "RecordAccess on a non-resident page");
  uint32_t& count = it->second.pos->count;
  if (options_.increment_on_reference) {
    count = std::min(count + options_.reference_increment, options_.max_count);
  } else {
    count = std::min(options_.reference_increment, options_.max_count);
  }
}

void GClockPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  auto pos =
      (hand_ == ring_.end())
          ? ring_.insert(ring_.end(), Slot{p, options_.initial_count})
          : ring_.insert(hand_, Slot{p, options_.initial_count});
  if (hand_ == ring_.end()) hand_ = pos;
  entries_.emplace(p, Entry{pos, /*evictable=*/true});
  ++evictable_count_;
}

std::optional<PageId> GClockPolicy::Evict() {
  if (evictable_count_ == 0 || ring_.empty()) return std::nullopt;
  // Each full sweep decrements every evictable counter at least once, so
  // max_count+1 sweeps guarantee a zero-count victim.
  size_t budget = ring_.size() * (static_cast<size_t>(options_.max_count) + 2);
  while (budget-- > 0) {
    LRUK_ASSERT(hand_ != ring_.end(), "gclock hand detached from the ring");
    auto entry_it = entries_.find(hand_->page);
    if (!entry_it->second.evictable) {
      AdvanceHand();
      continue;
    }
    if (hand_->count > 0) {
      --hand_->count;
      AdvanceHand();
      continue;
    }
    PageId victim = hand_->page;
    auto dead = hand_;
    AdvanceHand();
    if (hand_ == dead) hand_ = ring_.end();
    ring_.erase(dead);
    entries_.erase(entry_it);
    --evictable_count_;
    return victim;
  }
  LRUK_UNREACHABLE("gclock sweep failed to find a victim");
  return std::nullopt;
}

void GClockPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) --evictable_count_;
  if (hand_ == it->second.pos) AdvanceHand();
  if (hand_ == it->second.pos) hand_ = ring_.end();
  ring_.erase(it->second.pos);
  entries_.erase(it);
}

void GClockPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable != evictable) {
    it->second.evictable = evictable;
    evictable_count_ += evictable ? 1 : -1;
  }
}


void GClockPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
