// B0 — Belady's MIN/OPT algorithm [BELADY]: evicts the resident page whose
// next reference lies farthest in the future. Requires an oracle (the full
// reference string), so it is only usable offline; the paper argues A0, not
// B0, is the right optimality yardstick under probabilistic knowledge, but
// B0 gives the absolute hit-ratio ceiling for any concrete trace.
//
// The policy is constructed with the exact trace it will observe. Each
// RecordAccess/Admit consumes one trace position and must reference the
// page at that position (asserted), keeping the oracle honest.

#ifndef LRUK_CORE_BELADY_H_
#define LRUK_CORE_BELADY_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/replacement_policy.h"

namespace lruk {

class BeladyPolicy final : public ReplacementPolicy {
 public:
  // `trace[i]` is the page referenced at logical time i (0-based).
  explicit BeladyPolicy(std::vector<PageId> trace);

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return order_.size(); }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "B0"; }

  // Number of trace positions consumed so far.
  size_t Position() const { return pos_; }

 private:
  static constexpr uint64_t kNever = UINT64_MAX;

  struct OrderKey {
    uint64_t next_use;  // kNever sorts last == evicted first (we use max).
    PageId page;
    friend auto operator<=>(const OrderKey&, const OrderKey&) = default;
  };
  struct Entry {
    uint64_t next_use = kNever;
    bool evictable = true;
  };

  // Consumes the current trace position for page p and returns the position
  // of p's next reference (kNever if none).
  uint64_t ConsumeReference(PageId p);

  std::vector<PageId> trace_;
  // next_occurrence_[i] = position of the next reference to trace_[i] after
  // i, or kNever.
  std::vector<uint64_t> next_occurrence_;
  size_t pos_ = 0;
  std::unordered_map<PageId, Entry> entries_;
  // Evictable resident pages; victim = max next_use.
  std::set<OrderKey> order_;
};

}  // namespace lruk

#endif  // LRUK_CORE_BELADY_H_
