// Classic LRU (the paper's LRU-1): evicts the least recently used page.

#ifndef LRUK_CORE_LRU_H_
#define LRUK_CORE_LRU_H_

#include <list>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "core/replacement_policy.h"

namespace lruk {

// O(1) per operation: a recency list plus a hash map of list iterators.
// Pinned pages stay in the list (their recency position is preserved) and
// are skipped during victim search.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy() = default;

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return evictable_count_; }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "LRU"; }

 private:
  struct Entry {
    std::list<PageId>::iterator pos;
    bool evictable = true;
  };

  void MoveToFront(Entry& entry);

  // Most recently used at the front.
  std::list<PageId> recency_;
  std::unordered_map<PageId, Entry> entries_;
  size_t evictable_count_ = 0;
};

}  // namespace lruk

#endif  // LRUK_CORE_LRU_H_
