#include "core/clock_policy.h"

namespace lruk {

void ClockPolicy::AdvanceHand() {
  if (ring_.empty()) {
    hand_ = ring_.end();
    return;
  }
  ++hand_;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
}

void ClockPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "RecordAccess on a non-resident page");
  it->second.pos->referenced = true;
}

void ClockPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  // Insert just behind the hand so the new page is swept last.
  auto pos = (hand_ == ring_.end())
                 ? ring_.insert(ring_.end(), Slot{p, /*referenced=*/true})
                 : ring_.insert(hand_, Slot{p, /*referenced=*/true});
  if (hand_ == ring_.end()) hand_ = pos;
  entries_.emplace(p, Entry{pos, /*evictable=*/true});
  ++evictable_count_;
}

std::optional<PageId> ClockPolicy::Evict() {
  if (evictable_count_ == 0 || ring_.empty()) return std::nullopt;
  // Two full sweeps suffice: the first clears reference bits, the second
  // must find an unreferenced evictable page.
  size_t budget = 2 * ring_.size() + 1;
  while (budget-- > 0) {
    LRUK_ASSERT(hand_ != ring_.end(), "clock hand detached from the ring");
    auto entry_it = entries_.find(hand_->page);
    if (!entry_it->second.evictable) {
      AdvanceHand();
      continue;
    }
    if (hand_->referenced) {
      hand_->referenced = false;
      AdvanceHand();
      continue;
    }
    PageId victim = hand_->page;
    auto dead = hand_;
    AdvanceHand();
    if (hand_ == dead) hand_ = ring_.end();  // Last element removed.
    ring_.erase(dead);
    entries_.erase(entry_it);
    --evictable_count_;
    return victim;
  }
  LRUK_UNREACHABLE("clock sweep failed to find a victim");
  return std::nullopt;
}

void ClockPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) --evictable_count_;
  if (hand_ == it->second.pos) AdvanceHand();
  if (hand_ == it->second.pos) hand_ = ring_.end();  // Sole element.
  ring_.erase(it->second.pos);
  entries_.erase(it);
}

void ClockPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable != evictable) {
    it->second.evictable = evictable;
    evictable_count_ += evictable ? 1 : -1;
  }
}


void ClockPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
