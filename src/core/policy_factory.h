// Uniform construction of replacement policies for sweeps and benches.
//
// Some policies need context beyond their own knobs: 2Q sizes its queues
// from the buffer capacity, A0 needs the workload's true probability
// vector, and Belady needs the full future trace. PolicyContext carries
// all three; factories ignore what they don't need.

#ifndef LRUK_CORE_POLICY_FACTORY_H_
#define LRUK_CORE_POLICY_FACTORY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/domain_separation.h"
#include "core/gclock.h"
#include "core/lfu.h"
#include "core/lrd.h"
#include "core/lru_k.h"
#include "core/replacement_policy.h"
#include "core/two_q.h"
#include "util/status.h"

namespace lruk {

enum class PolicyKind {
  kLru,
  kLruK,
  kLfu,
  kFifo,
  kClock,
  kGClock,
  kLrd,
  kMru,
  kRandom,
  kTwoQ,
  kArc,
  kDomainSeparation,
  kA0,
  kBelady,
  kAdaptive,
};

struct PolicyConfig;

// kAdaptive: the expert list plus the meta-policy's switching and tuning
// knobs (mirrors AdaptivePolicyOptions; the ghost capacity always comes
// from PolicyContext::capacity). std::vector of the enclosing,
// still-incomplete PolicyConfig is legal since C++17 — experts cannot
// themselves be adaptive (MakePolicy rejects nesting).
struct AdaptiveConfig {
  std::vector<PolicyConfig> experts;
  // Display names, parallel to `experts` (stats, Name()). Missing entries
  // fall back to the built expert's own Name().
  std::vector<std::string> expert_names;
  uint64_t window_refs = 4096;
  size_t window_buckets = 8;
  double switch_margin = 0.10;
  uint64_t min_window_misses = 16;
  uint64_t cooldown_refs = 1024;
  bool tune_lruk = false;
  uint64_t tune_interval = 8192;
};

// Everything needed to build any policy in the catalog.
struct PolicyConfig {
  PolicyKind kind = PolicyKind::kLru;
  // Only consulted by the matching policy kind:
  LruKOptions lru_k;       // kLruK
  LfuOptions lfu;          // kLfu
  GClockOptions gclock;    // kGClock
  LrdOptions lrd;          // kLrd
  TwoQOptions two_q;       // kTwoQ (capacity filled from context if 0)
  // kArc: capacity; 0 = take PolicyContext::capacity.
  size_t arc_capacity = 0;
  // kDomainSeparation: classifier + per-domain frame counts.
  DomainSeparationOptions domain_separation;
  uint64_t random_seed = 0xC0FFEE;  // kRandom
  // kAdaptive: expert list + meta knobs.
  AdaptiveConfig adaptive;

  // Convenience constructors for the common cases.
  static PolicyConfig Of(PolicyKind kind) {
    PolicyConfig c;
    c.kind = kind;
    return c;
  }
  static PolicyConfig Lru() { return Of(PolicyKind::kLru); }
  static PolicyConfig LruK(int k, Timestamp crp = 0,
                           Timestamp rip = kInfinitePeriod) {
    PolicyConfig c = Of(PolicyKind::kLruK);
    c.lru_k.k = k;
    c.lru_k.correlated_reference_period = crp;
    c.lru_k.retained_information_period = rip;
    return c;
  }
  static PolicyConfig Lfu() { return Of(PolicyKind::kLfu); }
  static PolicyConfig A0() { return Of(PolicyKind::kA0); }
  static PolicyConfig Belady() { return Of(PolicyKind::kBelady); }
  static PolicyConfig TwoQ() { return Of(PolicyKind::kTwoQ); }
  static PolicyConfig Arc() { return Of(PolicyKind::kArc); }
  static PolicyConfig Adaptive(std::vector<PolicyConfig> experts,
                               std::vector<std::string> expert_names = {}) {
    PolicyConfig c = Of(PolicyKind::kAdaptive);
    c.adaptive.experts = std::move(experts);
    c.adaptive.expert_names = std::move(expert_names);
    return c;
  }
};

// Per-experiment context the factory may consult.
struct PolicyContext {
  // Buffer capacity in pages (2Q queue sizing).
  size_t capacity = 0;
  // True per-page reference probabilities (A0). Indexed by PageId.
  std::vector<double> probabilities;
  // The exact upcoming reference string (Belady).
  std::vector<PageId> trace;
};

// Builds the configured policy. Returns an error status when a required
// context field is missing (e.g. A0 without probabilities).
Result<std::unique_ptr<ReplacementPolicy>> MakePolicy(
    const PolicyConfig& config, const PolicyContext& context);

// Builds one policy instance per buffer-pool shard: invoked as
// factory(shard_index, shard_capacity), must return a fresh, non-null
// policy on every call. ShardedBufferPool calls it once per shard;
// custom policies can be supplied with a hand-written lambda.
using ShardPolicyFactory = std::function<std::unique_ptr<ReplacementPolicy>(
    size_t shard_index, size_t shard_capacity)>;

// Adapts a PolicyConfig into a ShardPolicyFactory: every shard gets an
// independent policy built from `config`, with PolicyContext::capacity
// rewritten to the shard's own frame count (so 2Q/ARC size their queues
// per shard); the rest of `context` (A0 probabilities, Belady trace) is
// shared as-is. The config is validated eagerly — a misconfiguration
// surfaces here as a Status, not later inside a shard.
Result<ShardPolicyFactory> MakeShardPolicyFactory(const PolicyConfig& config,
                                                  PolicyContext context = {});

// Parses a policy spec string. Simple names: "LRU", "LRU-2", "LRU-3",
// "LFU", "FIFO", "CLOCK", "GCLOCK", "LRD", "MRU", "RANDOM", "2Q", "ARC",
// "A0", "B0"/"BELADY" (case insensitive; LRU-K also accepts the compact
// "LRUK2" form, with 1 <= K <= kMaxHistoryK). Adaptive meta-policy specs:
// "adaptive:lruk2+arc+2q" — experts joined by '+', each any simple name
// except A0/Belady (they need oracle context) — and "adaptive-tuned:..."
// for the same with online CRP/RIP re-estimation enabled. On failure the
// Status names the offending token (unknown expert, out-of-range K,
// nested adaptive, empty expert list). DOMAIN-SEP is not parseable — it
// needs a programmatic classifier.
Result<PolicyConfig> ParsePolicySpec(const std::string& spec);

// Thin wrapper over ParsePolicySpec for callers that only care about
// success: nullopt on any parse error.
std::optional<PolicyConfig> ParsePolicyName(const std::string& name);

}  // namespace lruk

#endif  // LRUK_CORE_POLICY_FACTORY_H_
