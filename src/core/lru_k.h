// LRU-K — the paper's contribution (Definition 2.2 + Figure 2.1).
//
// On each uncorrelated reference the policy records the reference time in
// the page's history control block; the eviction victim is the page with
// the maximum Backward K-distance b_t(p,K), i.e. the minimum HIST(p,K),
// among pages outside their Correlated Reference Period. Pages with fewer
// than K recorded references have b_t(p,K) = infinity (HIST(p,K) == 0) and
// are preferred victims, ordered among themselves by classical LRU on
// HIST(p,1) — the paper's suggested subsidiary policy.
//
// Differences from the literal Figure 2.1 pseudo-code, all deliberate:
//  * The history shift loops run highest-index-first so they implement the
//    intended simultaneous shift (ascending sequential execution would
//    smear HIST(p,1) across all entries for K >= 3).
//  * A shift never turns an unknown entry (0) into a known one: for K >= 3
//    and a nonzero correlated-period adjustment, Figure 2.1 would
//    fabricate HIST(p,i) = correlation_period out of HIST(p,i-1) == 0.
//  * If every evictable page is inside its Correlated Reference Period the
//    paper's loop finds no victim; a buffer manager must still make room,
//    so we fall back to the best key regardless of eligibility and count
//    the event (fallback_evictions()).
//
// Victim search is pluggable (LruKOptions::victim_index, DESIGN.md "Victim
// index structures"): a lazy min-heap whose hit path is allocation- and
// rebalance-free (the default), the ordered std::set index keyed by
// (HIST(p,K), HIST(p,1), page), or the paper's O(n) scan. Property tests
// drive all three in lockstep to prove them behaviourally identical.

#ifndef LRUK_CORE_LRU_K_H_
#define LRUK_CORE_LRU_K_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/history_table.h"
#include "core/replacement_policy.h"
#include "util/clock.h"

namespace lruk {

// Which data structure serves PickVictim (see DESIGN.md "Victim index
// structures" for the cost model and the lazy-heap staleness invariant).
enum class VictimIndex {
  // Lazy min-heap: a hit only rewrites the page's history block — its heap
  // entry is left stale and re-keyed when an eviction pops it. Hits are
  // O(1) (no allocation, no rebalance); evictions are amortized O(log n).
  kLazyHeap,
  // Ordered std::set of (HIST(p,K), HIST(p,1), page): every uncorrelated
  // hit repositions the page's key (red-black rebalance). Kept as a
  // differential oracle for the heap.
  kOrderedSet,
  // The paper's Figure 2.1 "for all pages q in the buffer" loop; no index
  // is maintained at all. O(1) hits, O(n) evictions.
  kLinear,
};

struct LruKOptions {
  // The K in LRU-K. K = 1 is classical LRU; the paper advocates K = 2.
  // Bounded by kMaxHistoryK (history is stored inline in the block).
  int k = 2;
  // Correlated Reference Period, in logical ticks (Section 2.1.1). 0 means
  // every reference is uncorrelated — the setting used for the paper's
  // simulation experiments (their workloads have no correlated bursts).
  Timestamp correlated_reference_period = 0;
  // Retained Information Period, in logical ticks (Section 2.1.2);
  // kInfinitePeriod keeps history forever (the paper's simulation setup).
  Timestamp retained_information_period = kInfinitePeriod;
  // How often (in ticks) the retained-information demon runs when the RIP
  // is finite. 0 disables the automatic demon (PurgeHistory() still works).
  uint64_t purge_interval = 4096;
  // Hard bound on history-only (non-resident) control blocks; 0 =
  // unbounded. When full, the longest-idle block is dropped — the memory
  // knob behind the paper's Section 5 open question, swept by
  // bench/ablation_memory_budget.
  size_t max_nonresident_history = 0;
  // Expected resident-page count (the owning pool's capacity). Pre-sizes
  // the history table's index (and the victim heap's backing store) so
  // warm-up does not rehash on every few admissions; 0 = no hint.
  // MakePolicy fills it from PolicyContext::capacity when unset.
  size_t capacity_hint = 0;
  // Victim-search structure; kLazyHeap unless a test/bench pins one of the
  // oracles.
  VictimIndex victim_index = VictimIndex::kLazyHeap;
  // Legacy alias (predates the victim_index enum): true forces kLinear.
  bool use_linear_scan = false;
  // Distinguish processes when deciding whether a reference is correlated
  // (Section 2.1.1: intra-transaction / intra-process pairs are
  // correlated, inter-process pairs are independent). When true, a
  // re-reference within the CRP still counts as a NEW uncorrelated
  // reference if a different process issued it. Approximation: each page
  // remembers only its most recent referencing process, so an interleaved
  // A-B-A burst counts A's second touch as independent — conservative in
  // the direction of the paper's type-4 rule (inter-process references
  // are evidence of genuine popularity). Processes are announced via
  // SetReferencingProcess (the simulator forwards PageRef::process).
  bool per_process_correlation = false;
  // Optional wall-clock time source (not owned; must outlive the policy).
  // When set, reference times come from the clock and the CRP / RIP /
  // purge_interval are in the clock's units (the paper's "5 seconds" /
  // "200 seconds" defaults become expressible directly). When null
  // (default), time is logical: one tick per reference.
  Clock* clock = nullptr;
};

class LruKPolicy final : public ReplacementPolicy {
 public:
  explicit LruKPolicy(LruKOptions options = {});

  void SetReferencingProcess(uint32_t process) override {
    current_process_ = process;
  }
  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  // Exact batch nomination: pops up to k victims in precisely the order k
  // Evict() calls would (the budget drops OnEvicted performs only affect
  // non-resident blocks, never victim selection, so deferring them cannot
  // change the sequence — the argument is spelled out in DESIGN.md
  // "Wait-free publish & batched nomination"). History retention for the
  // nominees is *deferred*: nothing enters the non-resident index (or
  // burns the max_nonresident_history budget) until the next
  // Evict/EvictBatch/Admit/Remove call flushes the still-evicted nominees.
  // A nominee Restored before that flush therefore round-trips with zero
  // retained-history churn — the whole point of batched nomination.
  size_t EvictBatch(size_t k, std::vector<PageId>* out) override;
  // Exact un-evict: re-marks the page resident against its retained
  // history block, without ticking the clock — a failed write-back leaves
  // the policy byte-identical to the pre-Evict state. If the block was
  // dropped (non-resident budget, RIP expiry) the page restarts with
  // infinite backward distance, i.e. preferred victim, which is the most
  // conservative recovery. Works on deferred EvictBatch nominees too: the
  // pending retention entry is simply dropped at the next flush.
  void Restore(PageId p) override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return resident_count_; }
  size_t EvictableCount() const override { return evictable_count_; }
  bool IsResident(PageId p) const override;
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return name_; }

  // --- Introspection (tests, benches, EXPERIMENTS.md plumbing) ---

  const LruKOptions& options() const { return options_; }
  // The victim-search structure in use (use_linear_scan folded in).
  VictimIndex victim_index() const { return index_kind_; }
  // Current logical time (count of references seen).
  Timestamp CurrentTime() const { return time_; }
  // b_t(p,K) at the current time; nullopt encodes infinity (page unknown,
  // history expired, or fewer than K uncorrelated references).
  std::optional<Timestamp> BackwardKDistance(PageId p) const;
  // The page's history block, or nullptr if none is retained.
  const HistoryBlock* DebugBlock(PageId p) const;
  // Number of history control blocks currently retained (resident +
  // non-resident).
  size_t HistorySize() const { return table_.size(); }
  // Approximate bytes those blocks occupy.
  size_t HistoryMemoryBytes() const {
    return table_.ApproximateMemoryBytes();
  }
  // History-only (non-resident) blocks currently retained.
  size_t NonResidentHistorySize() const {
    return table_.NonResidentCount();
  }
  // Entries in the lazy victim heap (kLazyHeap mode only; 0 otherwise).
  // May exceed EvictableCount() by the stale/dangling entries not yet
  // reaped, but tests assert it stays bounded.
  size_t VictimHeapSize() const { return heap_.size(); }
  // Runs the retained-information demon immediately; returns blocks purged.
  size_t PurgeHistory() { return table_.PurgeExpired(time_); }
  // Evictions that had to ignore the Correlated Reference Period because no
  // eligible page existed.
  uint64_t fallback_evictions() const { return fallback_evictions_; }
  // Online re-tuning entry points (the adaptive meta-policy's interval
  // estimator). Both take effect from the next reference; past decisions
  // (already-recorded history shifts, already-purged blocks) stand.
  void SetCorrelatedReferencePeriod(Timestamp crp) {
    options_.correlated_reference_period = crp;
  }
  void SetRetainedInformationPeriod(Timestamp rip) {
    options_.retained_information_period = rip;
    table_.SetRetainedInformationPeriod(rip);
  }
  // EvictBatch nominees whose history retention is still deferred (neither
  // flushed into the non-resident index nor cancelled by a Restore).
  size_t PendingDeferredEvictions() const {
    return deferred_evictions_.size();
  }

 private:
  struct VictimKey {
    Timestamp hist_k;  // 0 == infinite backward distance, evicted first.
    Timestamp hist1;   // Subsidiary LRU tie-break.
    PageId page;
    friend auto operator<=>(const VictimKey&, const VictimKey&) = default;
  };

  static VictimKey KeyFor(PageId p, const HistoryBlock& block) {
    return VictimKey{block.HistK(), block.Hist1(), p};
  }

  // Advances the logical clock by one reference and returns the new time.
  Timestamp Tick();
  // One victim pop: selection + de-indexing, shared by Evict and
  // EvictBatch. With `defer_retention` the block is only marked
  // non-resident and queued on deferred_evictions_; otherwise history
  // retention (OnEvicted) runs immediately.
  std::optional<PageId> EvictOne(bool defer_retention);
  // Settles deferred EvictBatch nominations: every queued page still
  // non-resident (i.e. not Restored meanwhile) enters the non-resident
  // history index, enforcing the budget. Called on entry to every
  // operation whose semantics depend on retention being current.
  void FlushDeferredEvictions();
  // Whether `block` is outside its Correlated Reference Period at time `t`.
  bool EligibleAt(const HistoryBlock& block, Timestamp t) const;
  // Pushes p's current key unless the heap already holds an entry for it
  // (block.in_victim_heap). Keeps the heap at ~one entry per page.
  void HeapPushIfAbsent(PageId p, HistoryBlock& block);
  // Victim search: lazy heap / ordered index / the paper's linear scan.
  std::optional<PageId> PickVictimLazyHeap(Timestamp t);
  std::optional<PageId> PickVictimIndexed(Timestamp t);
  std::optional<PageId> PickVictimLinear(Timestamp t);

  LruKOptions options_;
  VictimIndex index_kind_;
  std::string name_;
  Timestamp time_ = 0;
  Timestamp last_purge_time_ = 0;
  uint32_t current_process_ = 0;
  HistoryTable table_;
  // kOrderedSet: evictable resident pages ordered by eviction preference.
  std::set<VictimKey> queue_;
  // kLazyHeap: min-heap of (possibly stale) keys; see DESIGN.md "Victim
  // index structures" for the staleness protocol.
  std::priority_queue<VictimKey, std::vector<VictimKey>,
                      std::greater<VictimKey>>
      heap_;
  size_t resident_count_ = 0;
  size_t evictable_count_ = 0;
  uint64_t fallback_evictions_ = 0;
  // EvictBatch nominees awaiting history retention (see EvictOne /
  // FlushDeferredEvictions). At most one batch deep in practice.
  std::vector<PageId> deferred_evictions_;
};

}  // namespace lruk

#endif  // LRUK_CORE_LRU_K_H_
