// A0 (Definition 3.1, after [COFFDENN] Theorem 6.3): the optimal policy
// under the Independent Reference Model *without* an oracle over the future.
// It knows the true per-page reference probabilities beta_p and always
// evicts the resident page with the smallest beta_p. The paper uses A0 as
// the yardstick LRU-K should approach; it cannot be implemented in a real
// system (the probabilities are unknown) but is exactly implementable in
// simulation where the workload generator's distribution is known.

#ifndef LRUK_CORE_A0_H_
#define LRUK_CORE_A0_H_

#include <optional>
#include <set>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/replacement_policy.h"

namespace lruk {

class A0Policy final : public ReplacementPolicy {
 public:
  // `probabilities[p]` is beta_p for page id p (pages are the indices).
  // Pages outside the vector are treated as probability 0 (always the
  // first choice for eviction).
  explicit A0Policy(std::vector<double> probabilities);

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return order_.size(); }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "A0"; }

  double ProbabilityOf(PageId p) const;

 private:
  struct OrderKey {
    double prob;
    PageId page;
    friend auto operator<=>(const OrderKey&, const OrderKey&) = default;
  };
  struct Entry {
    bool evictable = true;
  };

  std::vector<double> probabilities_;
  std::unordered_map<PageId, Entry> entries_;
  // Evictable resident pages ordered by ascending probability.
  std::set<OrderKey> order_;
};

}  // namespace lruk

#endif  // LRUK_CORE_A0_H_
