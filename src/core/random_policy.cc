#include "core/random_policy.h"

namespace lruk {

RandomPolicy::RandomPolicy(uint64_t seed) : rng_(seed) {}

void RandomPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(entries_.contains(p), "RecordAccess on a non-resident page");
}

void RandomPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  evictable_.push_back(p);
  entries_.emplace(p, Entry{evictable_.size() - 1});
}

void RandomPolicy::RemoveFromEvictable(Entry& entry) {
  size_t slot = entry.slot;
  PageId moved = evictable_.back();
  evictable_[slot] = moved;
  evictable_.pop_back();
  if (slot < evictable_.size()) {
    entries_.at(moved).slot = slot;
  }
  entry.slot = SIZE_MAX;
}

std::optional<PageId> RandomPolicy::Evict() {
  if (evictable_.empty()) return std::nullopt;
  size_t slot = static_cast<size_t>(rng_.NextBounded(evictable_.size()));
  PageId victim = evictable_[slot];
  RemoveFromEvictable(entries_.at(victim));
  entries_.erase(victim);
  return victim;
}

void RandomPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.slot != SIZE_MAX) RemoveFromEvictable(it->second);
  entries_.erase(it);
}

void RandomPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  bool currently = it->second.slot != SIZE_MAX;
  if (currently == evictable) return;
  if (evictable) {
    evictable_.push_back(p);
    it->second.slot = evictable_.size() - 1;
  } else {
    RemoveFromEvictable(it->second);
  }
}


void RandomPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
