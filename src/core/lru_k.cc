#include "core/lru_k.h"

#include <string>
#include <utility>

namespace lruk {

LruKPolicy::LruKPolicy(LruKOptions options)
    : options_(options),
      index_kind_(options.use_linear_scan ? VictimIndex::kLinear
                                          : options.victim_index),
      name_("LRU-" + std::to_string(options.k)),
      table_(options.k, options.retained_information_period,
             options.max_nonresident_history, options.capacity_hint) {
  LRUK_ASSERT(options_.k >= 1 && options_.k <= kMaxHistoryK,
              "LRU-K requires 1 <= K <= kMaxHistoryK");
  if (index_kind_ == VictimIndex::kLazyHeap && options_.capacity_hint > 0) {
    // Pre-size the heap's backing vector for the expected resident count.
    std::vector<VictimKey> storage;
    storage.reserve(options_.capacity_hint);
    heap_ = decltype(heap_)(std::greater<VictimKey>{}, std::move(storage));
  }
}

bool LruKPolicy::IsResident(PageId p) const {
  const HistoryBlock* block = table_.Find(p);
  return block != nullptr && block->resident;
}

void LruKPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  table_.ForEach([&](PageId page, const HistoryBlock& block) {
    if (block.resident) visit(page);
  });
}

Timestamp LruKPolicy::Tick() {
  if (options_.clock != nullptr) {
    // Wall-clock mode: take the clock's reading, clamped monotone (two
    // references in the same clock quantum share a timestamp, which the
    // victim ordering disambiguates by page id).
    Timestamp now = options_.clock->Now();
    time_ = now > time_ ? now : time_;
  } else {
    ++time_;
  }
  if (options_.retained_information_period != kInfinitePeriod &&
      options_.purge_interval != 0 &&
      time_ - last_purge_time_ >= options_.purge_interval) {
    table_.PurgeExpired(time_);
    last_purge_time_ = time_;
  }
  return time_;
}

void LruKPolicy::HeapPushIfAbsent(PageId p, HistoryBlock& block) {
  if (block.in_victim_heap) return;
  heap_.push(KeyFor(p, block));
  block.in_victim_heap = true;
}

void LruKPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  Timestamp t = Tick();
  HistoryBlock* block = table_.Find(p);
  LRUK_ASSERT(block != nullptr && block->resident,
              "RecordAccess on a non-resident page");

  bool process_differs = options_.per_process_correlation &&
                         block->last_process != current_process_;
  if (process_differs ||
      t - block->last > options_.correlated_reference_period) {
    // A new, uncorrelated reference (Figure 2.1, then-branch): close the
    // correlated period and credit only its start-to-start interval.
    Timestamp correlation_period = block->last - block->hist.front();
    // kOrderedSet repositions the victim index via extract()/insert() of
    // the same node so the hit never round-trips the allocator. kLazyHeap
    // touches nothing here — the heap entry goes stale and is re-keyed
    // when an eviction pops it (the O(1) hit path). The key only ever
    // grows under this shift, which is what makes staleness safe (see
    // DESIGN.md "Victim index structures").
    std::set<VictimKey>::node_type node;
    bool reposition =
        index_kind_ == VictimIndex::kOrderedSet && block->evictable;
    if (reposition) {
      node = queue_.extract(KeyFor(p, *block));
      LRUK_ASSERT(!node.empty(), "evictable page missing from victim index");
    }
    for (size_t i = block->hist.size() - 1; i >= 1; --i) {
      // Simultaneous shift; unknown entries (0) stay unknown.
      block->hist[i] =
          block->hist[i - 1] == 0 ? 0 : block->hist[i - 1] + correlation_period;
    }
    block->hist.front() = t;
    block->last = t;
    if (reposition) {
      node.value() = KeyFor(p, *block);
      queue_.insert(std::move(node));
    }
  } else {
    // A correlated reference: only LAST(p) moves; the history (and thus the
    // page's position in the victim order) is unchanged.
    block->last = t;
  }
  block->last_process = current_process_;
}

void LruKPolicy::Admit(PageId p, AccessType /*type*/) {
  // Settle any deferred nominations first: a sequential Evict would have
  // retained its victim's history before this admission ticked the clock,
  // so flushing here keeps the batched path's observable state identical.
  FlushDeferredEvictions();
  Timestamp t = Tick();
  bool had_history = false;
  HistoryBlock& block = table_.GetOrCreate(p, t, &had_history);
  LRUK_ASSERT(!block.resident, "Admit on an already-resident page");

  if (had_history) {
    // Figure 2.1, miss path with existing HIST(p): shift the retained
    // references down one slot to make room for this one.
    for (size_t i = block.hist.size() - 1; i >= 1; --i) {
      block.hist[i] = block.hist[i - 1];
    }
  }
  // Fresh blocks already have every entry at 0 ("no earlier reference").
  block.hist.front() = t;
  block.last = t;
  block.last_process = current_process_;
  block.resident = true;
  block.evictable = true;
  switch (index_kind_) {
    case VictimIndex::kOrderedSet:
      queue_.insert(KeyFor(p, block));
      break;
    case VictimIndex::kLazyHeap:
      // A pre-eviction entry may survive in the heap (flagged); its key is
      // <= the post-shift key, so it covers this page until re-keyed.
      // Fresh/reset blocks have the flag cleared and get a new entry.
      HeapPushIfAbsent(p, block);
      break;
    case VictimIndex::kLinear:
      break;
  }
  ++resident_count_;
  ++evictable_count_;
}

bool LruKPolicy::EligibleAt(const HistoryBlock& block, Timestamp t) const {
  return t - block.last > options_.correlated_reference_period;
}

std::optional<PageId> LruKPolicy::PickVictimLazyHeap(Timestamp t) {
  // Pops ascend by key. Invariant: every evictable resident page has a
  // heap entry with key <= its current key (keys only grow while a block
  // keeps its history; the paths that can shrink a key — RIP expiry,
  // Remove — clear the flag, and the next Admit pushes a fresh entry). So
  // the first pop whose key still matches its block is the true minimum,
  // exactly the entry the ordered index would surface first.
  std::vector<VictimKey> ineligible;  // Fresh pops inside their CRP.
  std::optional<VictimKey> victim;
  while (!heap_.empty()) {
    VictimKey entry = heap_.top();
    heap_.pop();
    HistoryBlock* block = table_.Find(entry.page);
    if (block == nullptr || !block->resident || !block->evictable) {
      // Dead entry: the page left the evictable-resident set after the
      // push (eviction, pin, or removal — all lazy). Clearing the flag
      // lets SetEvictable/Admit re-index the page later.
      if (block != nullptr) block->in_victim_heap = false;
      continue;
    }
    VictimKey current = KeyFor(entry.page, *block);
    if (current != entry) {
      // Stale entry: hits advanced the key since the push. Re-key it —
      // each stale entry is re-keyed at most once per search, so the loop
      // terminates and the amortized cost stays one heap op per hit.
      heap_.push(current);
      continue;
    }
    if (EligibleAt(*block, t)) {
      victim = entry;
      break;
    }
    ineligible.push_back(entry);
  }
  size_t keep_from = 0;
  if (!victim && !ineligible.empty()) {
    // Everyone is inside a correlated period; a real buffer manager still
    // has to yield a slot (see header). The first fresh pop is the minimum
    // current key over all evictable residents, eligible or not — the same
    // fallback the ordered index and the linear scan take.
    victim = ineligible.front();
    keep_from = 1;
    ++fallback_evictions_;
  }
  // Fresh-but-ineligible keys go back; the victim's entry stays consumed.
  for (size_t i = keep_from; i < ineligible.size(); ++i) {
    heap_.push(ineligible[i]);
  }
  if (!victim) return std::nullopt;
  table_.Find(victim->page)->in_victim_heap = false;
  return victim->page;
}

std::optional<PageId> LruKPolicy::PickVictimIndexed(Timestamp t) {
  // Keys ascend by (HIST(p,K), HIST(p,1)), so the first eligible entry is
  // the page with maximum Backward K-distance; infinite-distance pages
  // (HIST(p,K) == 0) come first, ordered by subsidiary LRU.
  for (const VictimKey& key : queue_) {
    const HistoryBlock* block = table_.Find(key.page);
    if (EligibleAt(*block, t)) return key.page;
  }
  if (!queue_.empty()) {
    // Everyone is inside a correlated period; a real buffer manager still
    // has to yield a slot (see header). Take the best key regardless.
    ++fallback_evictions_;
    return queue_.begin()->page;
  }
  return std::nullopt;
}

std::optional<PageId> LruKPolicy::PickVictimLinear(Timestamp t) {
  // Figure 2.1's "for all pages q in the buffer" loop, extended with the
  // subsidiary-LRU tie-break on HIST(q,1) and the pinning filter.
  std::optional<VictimKey> best;
  std::optional<VictimKey> best_ineligible;
  table_.ForEach([&](PageId page, const HistoryBlock& block) {
    if (!block.resident || !block.evictable) return;
    VictimKey key = KeyFor(page, block);
    if (EligibleAt(block, t)) {
      if (!best || key < *best) best = key;
    } else {
      if (!best_ineligible || key < *best_ineligible) best_ineligible = key;
    }
  });
  if (best) return best->page;
  if (best_ineligible) {
    ++fallback_evictions_;
    return best_ineligible->page;
  }
  return std::nullopt;
}

std::optional<PageId> LruKPolicy::EvictOne(bool defer_retention) {
  if (evictable_count_ == 0) return std::nullopt;
  // The eviction happens while servicing the *next* reference (Figure 2.1
  // runs victim selection at the faulting reference's time t); our caller
  // invokes Evict() just before Admit() ticks the clock, so eligibility is
  // tested against the prospective time.
  Timestamp t;
  if (options_.clock != nullptr) {
    Timestamp now = options_.clock->Now();
    t = now > time_ ? now : time_;
  } else {
    t = time_ + 1;
  }
  std::optional<PageId> victim;
  switch (index_kind_) {
    case VictimIndex::kLazyHeap:
      victim = PickVictimLazyHeap(t);
      break;
    case VictimIndex::kOrderedSet:
      victim = PickVictimIndexed(t);
      break;
    case VictimIndex::kLinear:
      victim = PickVictimLinear(t);
      break;
  }
  // With evictable pages present, every search mode must produce a victim
  // (the lazy heap's coverage invariant guarantees an entry exists).
  LRUK_ASSERT(victim.has_value(), "victim index lost an evictable page");
  if (!victim) return std::nullopt;
  HistoryBlock* block = table_.Find(*victim);
  if (index_kind_ == VictimIndex::kOrderedSet) {
    queue_.erase(KeyFor(*victim, *block));
  }
  // History is retained past residence — the whole point of Section 2.1.2
  // — up to the configured non-resident block budget. EvictBatch defers
  // the retention (and the budget enforcement) so a nominee the caller
  // hands straight back via Restore never churns the budget.
  if (defer_retention) {
    block->resident = false;
    deferred_evictions_.push_back(*victim);
  } else {
    table_.OnEvicted(*victim, *block);
  }
  --resident_count_;
  --evictable_count_;
  return victim;
}

std::optional<PageId> LruKPolicy::Evict() {
  FlushDeferredEvictions();
  return EvictOne(/*defer_retention=*/false);
}

size_t LruKPolicy::EvictBatch(size_t k, std::vector<PageId>* out) {
  FlushDeferredEvictions();
  out->clear();
  while (out->size() < k) {
    std::optional<PageId> victim = EvictOne(/*defer_retention=*/true);
    if (!victim.has_value()) break;
    out->push_back(*victim);
  }
  return out->size();
}

void LruKPolicy::FlushDeferredEvictions() {
  if (deferred_evictions_.empty()) return;
  for (PageId p : deferred_evictions_) {
    HistoryBlock* block = table_.Find(p);
    // Skip nominees whose block is gone (RIP purge) or resident again
    // (Restored — the nomination was cancelled, nothing to retain).
    if (block == nullptr || block->resident) continue;
    table_.RetainEvicted(p, *block);
  }
  deferred_evictions_.clear();
}

void LruKPolicy::Restore(PageId p) {
  // No Tick(): restoring a failed eviction is not a reference. GetOrCreate
  // pulls the block back out of the non-resident index; if the eviction's
  // OnEvicted dropped it (budget) or it expired, the page restarts fresh.
  bool had_history = false;
  HistoryBlock& block = table_.GetOrCreate(p, time_, &had_history);
  LRUK_ASSERT(!block.resident, "Restore on a resident page");
  if (!had_history) {
    block.hist.front() = time_;
    block.last = time_;
    block.last_process = current_process_;
  }
  block.resident = true;
  block.evictable = true;
  switch (index_kind_) {
    case VictimIndex::kOrderedSet:
      queue_.insert(KeyFor(p, block));
      break;
    case VictimIndex::kLazyHeap:
      // Evict()'s pop cleared in_victim_heap for the true victim, so this
      // re-establishes heap coverage with the page's current key.
      HeapPushIfAbsent(p, block);
      break;
    case VictimIndex::kLinear:
      break;
  }
  ++resident_count_;
  ++evictable_count_;
}

void LruKPolicy::Remove(PageId p) {
  FlushDeferredEvictions();
  HistoryBlock* block = table_.Find(p);
  LRUK_ASSERT(block != nullptr && block->resident,
              "Remove on a non-resident page");
  if (block->evictable) {
    if (index_kind_ == VictimIndex::kOrderedSet) {
      queue_.erase(KeyFor(p, *block));
    }
    // kLazyHeap: the entry dangles and is discarded when popped.
    --evictable_count_;
  }
  --resident_count_;
  // Remove() means the page object was destroyed (not merely evicted), so
  // its history dies with it.
  table_.Erase(p);
}

void LruKPolicy::SetEvictable(PageId p, bool evictable) {
  HistoryBlock* block = table_.Find(p);
  LRUK_ASSERT(block != nullptr && block->resident,
              "SetEvictable on a non-resident page");
  if (block->evictable == evictable) return;
  if (evictable) {
    if (index_kind_ == VictimIndex::kOrderedSet) {
      queue_.insert(KeyFor(p, *block));
    }
    ++evictable_count_;
  } else {
    if (index_kind_ == VictimIndex::kOrderedSet) {
      queue_.erase(KeyFor(p, *block));
    }
    // kLazyHeap: pinning leaves the entry in place; a pop while the page
    // is pinned discards it as dead.
    --evictable_count_;
  }
  block->evictable = evictable;
  if (evictable && index_kind_ == VictimIndex::kLazyHeap) {
    // Un-pinning must restore heap coverage. If the pinned-era entry was
    // never popped the flag is still set and this is a no-op.
    HeapPushIfAbsent(p, *block);
  }
}

std::optional<Timestamp> LruKPolicy::BackwardKDistance(PageId p) const {
  const HistoryBlock* block = table_.Find(p);
  if (block == nullptr || table_.Expired(*block, time_)) return std::nullopt;
  if (block->HistK() == 0) return std::nullopt;  // Fewer than K references.
  return time_ - block->HistK();
}

const HistoryBlock* LruKPolicy::DebugBlock(PageId p) const {
  return table_.Find(p);
}

}  // namespace lruk
