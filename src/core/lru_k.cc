#include "core/lru_k.h"

#include <string>

namespace lruk {

LruKPolicy::LruKPolicy(LruKOptions options)
    : options_(options),
      name_("LRU-" + std::to_string(options.k)),
      table_(options.k, options.retained_information_period,
             options.max_nonresident_history, options.capacity_hint) {
  LRUK_ASSERT(options_.k >= 1, "LRU-K requires K >= 1");
}

bool LruKPolicy::IsResident(PageId p) const {
  const HistoryBlock* block = table_.Find(p);
  return block != nullptr && block->resident;
}

void LruKPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& [page, block] : table_) {
    if (block.resident) visit(page);
  }
}

Timestamp LruKPolicy::Tick() {
  if (options_.clock != nullptr) {
    // Wall-clock mode: take the clock's reading, clamped monotone (two
    // references in the same clock quantum share a timestamp, which the
    // victim ordering disambiguates by page id).
    Timestamp now = options_.clock->Now();
    time_ = now > time_ ? now : time_;
  } else {
    ++time_;
  }
  if (options_.retained_information_period != kInfinitePeriod &&
      options_.purge_interval != 0 &&
      time_ - last_purge_time_ >= options_.purge_interval) {
    table_.PurgeExpired(time_);
    last_purge_time_ = time_;
  }
  return time_;
}

void LruKPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  Timestamp t = Tick();
  HistoryBlock* block = table_.Find(p);
  LRUK_ASSERT(block != nullptr && block->resident,
              "RecordAccess on a non-resident page");

  bool process_differs = options_.per_process_correlation &&
                         block->last_process != current_process_;
  if (process_differs ||
      t - block->last > options_.correlated_reference_period) {
    // A new, uncorrelated reference (Figure 2.1, then-branch): close the
    // correlated period and credit only its start-to-start interval.
    Timestamp correlation_period = block->last - block->hist.front();
    // The victim index is repositioned via extract()/insert() of the same
    // node so the hot hit path never round-trips the allocator.
    std::set<VictimKey>::node_type node;
    if (block->evictable) {
      node = queue_.extract(KeyFor(p, *block));
      LRUK_ASSERT(!node.empty(), "evictable page missing from victim index");
    }
    for (size_t i = block->hist.size() - 1; i >= 1; --i) {
      // Simultaneous shift; unknown entries (0) stay unknown.
      block->hist[i] =
          block->hist[i - 1] == 0 ? 0 : block->hist[i - 1] + correlation_period;
    }
    block->hist.front() = t;
    block->last = t;
    if (block->evictable) {
      node.value() = KeyFor(p, *block);
      queue_.insert(std::move(node));
    }
  } else {
    // A correlated reference: only LAST(p) moves; the history (and thus the
    // page's position in the victim order) is unchanged.
    block->last = t;
  }
  block->last_process = current_process_;
}

void LruKPolicy::Admit(PageId p, AccessType /*type*/) {
  Timestamp t = Tick();
  bool had_history = false;
  HistoryBlock& block = table_.GetOrCreate(p, t, &had_history);
  LRUK_ASSERT(!block.resident, "Admit on an already-resident page");

  if (had_history) {
    // Figure 2.1, miss path with existing HIST(p): shift the retained
    // references down one slot to make room for this one.
    for (size_t i = block.hist.size() - 1; i >= 1; --i) {
      block.hist[i] = block.hist[i - 1];
    }
  }
  // Fresh blocks already have every entry at 0 ("no earlier reference").
  block.hist.front() = t;
  block.last = t;
  block.last_process = current_process_;
  block.resident = true;
  block.evictable = true;
  queue_.insert(KeyFor(p, block));
  ++resident_count_;
  ++evictable_count_;
}

bool LruKPolicy::EligibleAt(const HistoryBlock& block, Timestamp t) const {
  return t - block.last > options_.correlated_reference_period;
}

std::optional<PageId> LruKPolicy::PickVictimIndexed(Timestamp t) {
  // Keys ascend by (HIST(p,K), HIST(p,1)), so the first eligible entry is
  // the page with maximum Backward K-distance; infinite-distance pages
  // (HIST(p,K) == 0) come first, ordered by subsidiary LRU.
  for (const VictimKey& key : queue_) {
    const HistoryBlock* block = table_.Find(key.page);
    if (EligibleAt(*block, t)) return key.page;
  }
  if (!queue_.empty()) {
    // Everyone is inside a correlated period; a real buffer manager still
    // has to yield a slot (see header). Take the best key regardless.
    ++fallback_evictions_;
    return queue_.begin()->page;
  }
  return std::nullopt;
}

std::optional<PageId> LruKPolicy::PickVictimLinear(Timestamp t) {
  // Figure 2.1's "for all pages q in the buffer" loop, extended with the
  // subsidiary-LRU tie-break on HIST(q,1) and the pinning filter.
  std::optional<VictimKey> best;
  std::optional<VictimKey> best_ineligible;
  for (const auto& [page, block] : table_) {
    if (!block.resident || !block.evictable) continue;
    VictimKey key = KeyFor(page, block);
    if (EligibleAt(block, t)) {
      if (!best || key < *best) best = key;
    } else {
      if (!best_ineligible || key < *best_ineligible) best_ineligible = key;
    }
  }
  if (best) return best->page;
  if (best_ineligible) {
    ++fallback_evictions_;
    return best_ineligible->page;
  }
  return std::nullopt;
}

std::optional<PageId> LruKPolicy::Evict() {
  if (evictable_count_ == 0) return std::nullopt;
  // The eviction happens while servicing the *next* reference (Figure 2.1
  // runs victim selection at the faulting reference's time t); our caller
  // invokes Evict() just before Admit() ticks the clock, so eligibility is
  // tested against the prospective time.
  Timestamp t;
  if (options_.clock != nullptr) {
    Timestamp now = options_.clock->Now();
    t = now > time_ ? now : time_;
  } else {
    t = time_ + 1;
  }
  std::optional<PageId> victim = options_.use_linear_scan
                                     ? PickVictimLinear(t)
                                     : PickVictimIndexed(t);
  if (!victim) return std::nullopt;
  HistoryBlock* block = table_.Find(*victim);
  queue_.erase(KeyFor(*victim, *block));
  // History is retained past residence — the whole point of Section 2.1.2
  // — up to the configured non-resident block budget.
  table_.OnEvicted(*victim, *block);
  --resident_count_;
  --evictable_count_;
  return victim;
}

void LruKPolicy::Remove(PageId p) {
  HistoryBlock* block = table_.Find(p);
  LRUK_ASSERT(block != nullptr && block->resident,
              "Remove on a non-resident page");
  if (block->evictable) {
    queue_.erase(KeyFor(p, *block));
    --evictable_count_;
  }
  --resident_count_;
  // Remove() means the page object was destroyed (not merely evicted), so
  // its history dies with it.
  table_.Erase(p);
}

void LruKPolicy::SetEvictable(PageId p, bool evictable) {
  HistoryBlock* block = table_.Find(p);
  LRUK_ASSERT(block != nullptr && block->resident,
              "SetEvictable on a non-resident page");
  if (block->evictable == evictable) return;
  if (evictable) {
    queue_.insert(KeyFor(p, *block));
    ++evictable_count_;
  } else {
    queue_.erase(KeyFor(p, *block));
    --evictable_count_;
  }
  block->evictable = evictable;
}

std::optional<Timestamp> LruKPolicy::BackwardKDistance(PageId p) const {
  const HistoryBlock* block = table_.Find(p);
  if (block == nullptr || table_.Expired(*block, time_)) return std::nullopt;
  if (block->HistK() == 0) return std::nullopt;  // Fewer than K references.
  return time_ - block->HistK();
}

const HistoryBlock* LruKPolicy::DebugBlock(PageId p) const {
  return table_.Find(p);
}

}  // namespace lruk
