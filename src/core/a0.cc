#include "core/a0.h"

#include <utility>

namespace lruk {

A0Policy::A0Policy(std::vector<double> probabilities)
    : probabilities_(std::move(probabilities)) {}

double A0Policy::ProbabilityOf(PageId p) const {
  return p < probabilities_.size() ? probabilities_[p] : 0.0;
}

void A0Policy::RecordAccess(PageId p, AccessType /*type*/) {
  // Probabilities are static: a reference changes nothing for A0.
  LRUK_ASSERT(entries_.contains(p), "RecordAccess on a non-resident page");
}

void A0Policy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  entries_.emplace(p, Entry{/*evictable=*/true});
  order_.insert(OrderKey{ProbabilityOf(p), p});
}

std::optional<PageId> A0Policy::Evict() {
  if (order_.empty()) return std::nullopt;
  OrderKey key = *order_.begin();
  order_.erase(order_.begin());
  entries_.erase(key.page);
  return key.page;
}

void A0Policy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) order_.erase(OrderKey{ProbabilityOf(p), p});
  entries_.erase(it);
}

void A0Policy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable == evictable) return;
  if (evictable) {
    order_.insert(OrderKey{ProbabilityOf(p), p});
  } else {
    order_.erase(OrderKey{ProbabilityOf(p), p});
  }
  it->second.evictable = evictable;
}


void A0Policy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
