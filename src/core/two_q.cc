#include "core/two_q.h"

#include <algorithm>
#include <cmath>

namespace lruk {

TwoQPolicy::TwoQPolicy(TwoQOptions options) : options_(options) {
  LRUK_ASSERT(options_.capacity > 0, "2Q requires a positive capacity");
  kin_ = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options_.kin_fraction *
                                          static_cast<double>(options_.capacity))));
  kout_ = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options_.kout_fraction *
                                          static_cast<double>(options_.capacity))));
}

void TwoQPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "RecordAccess on a non-resident page");
  if (it->second.queue == Queue::kAm) {
    am_.splice(am_.begin(), am_, it->second.pos);
  }
  // A hit in A1in deliberately does not move the page (2Q's correlated-
  // reference defense: a quick second touch is not evidence of hotness).
}

void TwoQPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  auto ghost = a1out_index_.find(p);
  if (ghost != a1out_index_.end()) {
    // Second (uncorrelated) reference within the ghost window: hot page.
    a1out_.erase(ghost->second);
    a1out_index_.erase(ghost);
    am_.push_front(p);
    entries_.emplace(p, Entry{Queue::kAm, am_.begin(), /*evictable=*/true});
  } else {
    a1in_.push_front(p);
    entries_.emplace(p,
                     Entry{Queue::kA1in, a1in_.begin(), /*evictable=*/true});
  }
  ++evictable_count_;
}

std::optional<PageId> TwoQPolicy::EvictFromTail(std::list<PageId>& list) {
  for (auto it = list.rbegin(); it != list.rend(); ++it) {
    auto entry_it = entries_.find(*it);
    if (!entry_it->second.evictable) continue;
    PageId victim = *it;
    list.erase(std::next(it).base());
    entries_.erase(entry_it);
    --evictable_count_;
    return victim;
  }
  return std::nullopt;
}

void TwoQPolicy::PushGhost(PageId p) {
  a1out_.push_front(p);
  a1out_index_.emplace(p, a1out_.begin());
  while (a1out_.size() > kout_) {
    a1out_index_.erase(a1out_.back());
    a1out_.pop_back();
  }
}

std::optional<PageId> TwoQPolicy::Evict() {
  if (a1in_.size() > kin_ || am_.empty()) {
    if (auto victim = EvictFromTail(a1in_)) {
      PushGhost(*victim);
      return victim;
    }
    return EvictFromTail(am_);
  }
  if (auto victim = EvictFromTail(am_)) return victim;
  // All of Am pinned; fall back to A1in.
  if (auto victim = EvictFromTail(a1in_)) {
    PushGhost(*victim);
    return victim;
  }
  return std::nullopt;
}

void TwoQPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) --evictable_count_;
  (it->second.queue == Queue::kA1in ? a1in_ : am_).erase(it->second.pos);
  entries_.erase(it);
}

void TwoQPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable != evictable) {
    it->second.evictable = evictable;
    evictable_count_ += evictable ? 1 : -1;
  }
}


void TwoQPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
