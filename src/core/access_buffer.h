// AccessBuffer — a fixed-capacity, latch-free staging area for page
// references, decoupling *observing* a reference (hit path, no pool latch
// for policy bookkeeping) from *applying* it to a ReplacementPolicy (batch
// drain under the pool latch). This is the mechanism behind the pools'
// `batch_capacity` option (see DESIGN.md "Batched access recording").
//
// Structure: one or more stripes, each a bounded ring of sequence-numbered
// cells. A producer takes the stripe's micro-mutex (never the pool latch),
// writes the `(page, process, access_type)` record into the tail cell,
// publishes it with a release store on the cell's sequence number, and
// only then advances the tail — so the published region of a stripe is
// always contiguous. With `stripes == 1` the buffer is shared per pool
// (per shard); with more stripes each thread hashes to its own ring, so
// `stripes` at or above the expected thread count makes the micro-mutex
// uncontended ("per-thread" mode).
//
// Contiguity is load-bearing, not cosmetic. An earlier revision used a
// fully lock-free multi-producer protocol (claim a ticket by CAS, publish
// later); a producer preempted between claim and publish then left a *gap*
// that stalled records published behind it by other threads — records
// whose pages were already unpinned and could be evicted before their
// reference was ever applied. Serializing claim+publish per stripe removes
// the gap state entirely: every record a drain cannot see belongs to a
// producer that has not yet returned from FetchPage and therefore still
// holds a pin on its page (the pools' safety invariant), so victim
// selection after a drain can never choose a page with an unapplied
// reference.
//
// Draining runs under the pool latch (single consumer at a time) and
// applies records to the policy in per-stripe FIFO order via
// RecordAccessBatch; it never takes the producer mutexes.
//
// TryPush returning false means the target stripe is full: the caller must
// take the latch, Drain(), and apply its own reference directly — that
// keeps FIFO order and bounds staleness at the buffer capacity.

#ifndef LRUK_CORE_ACCESS_BUFFER_H_
#define LRUK_CORE_ACCESS_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/replacement_policy.h"
#include "core/types.h"
#include "util/macros.h"

namespace lruk {

// Drain/push counters for a buffer's lifetime, exposed so benches can see
// *why* batching wins or loses (bench/micro_contention prints records per
// drain; DESIGN.md's batch-capacity guidance is derived from it).
struct AccessBufferStats {
  // Drain() calls, and how many records they applied in total.
  uint64_t drains = 0;
  uint64_t drained_records = 0;
  // Drains that found nothing published (pure overhead).
  uint64_t empty_drains = 0;
  // TryPush refusals (stripe full) — each one forced the caller onto the
  // slow path: take the latch, drain, apply directly.
  uint64_t full_pushes = 0;

  AccessBufferStats& operator+=(const AccessBufferStats& o) {
    drains += o.drains;
    drained_records += o.drained_records;
    empty_drains += o.empty_drains;
    full_pushes += o.full_pushes;
    return *this;
  }
};

class AccessBuffer {
 public:
  // `capacity` (>= 1) is the per-stripe record count at which TryPush
  // starts refusing; the physical ring is the next power of two (min 2).
  // `stripes` >= 1; threads are spread across stripes by a per-thread id,
  // so stripes >= the expected thread count approximates one buffer per
  // thread.
  explicit AccessBuffer(size_t capacity, size_t stripes = 1);
  LRUK_DISALLOW_COPY_AND_MOVE(AccessBuffer);

  // Enqueue into the calling thread's stripe under that stripe's
  // micro-mutex (uncontended when stripes >= threads; never the pool
  // latch). Returns false when the stripe is full; the caller then drains
  // under its latch and applies the record itself.
  bool TryPush(const AccessRecord& record);

  // Applies every published record to `policy` in per-stripe FIFO order
  // (via RecordAccessBatch) and returns how many were applied. Caller must
  // hold the latch that serializes policy access: the drain is
  // single-consumer, while concurrent TryPush calls remain safe.
  //
  // With `skip_non_resident` set, records whose page is no longer resident
  // in `policy` are dropped instead of applied. The latch-free hit path
  // (BufferPoolOptions::optimistic_hits) needs this: a pin + publish +
  // unpin can complete entirely without the pool latch, so by the time a
  // drain runs the page may already have been evicted — the record is then
  // bounded staleness the batching contract already permits, not a
  // reference the policy can still apply. Latched pools keep the default:
  // there the pin invariant guarantees residency, and an assert firing
  // means a real bug.
  size_t Drain(ReplacementPolicy& policy, bool skip_non_resident = false);

  // Per-stripe record count at which TryPush refuses (the configured
  // capacity; the physical ring may be one power-of-two larger).
  size_t stripe_capacity() const { return capacity_; }
  size_t stripe_count() const { return stripes_.size(); }

  // Lifetime counters. The drain-side fields are guarded by the caller's
  // latch (like Drain itself); full_pushes is accumulated with relaxed
  // atomics, so a concurrent reader sees a value at most a few pushes
  // stale — fine for bench reporting.
  AccessBufferStats stats() const {
    AccessBufferStats s = drain_stats_;
    s.full_pushes = full_pushes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    AccessRecord record;
  };

  // Ring with sequence-numbered cells: cell i carries seq == ticket while
  // empty, the producer publishes seq == ticket + 1, and the consumer
  // restores seq = ticket + ring size for the next lap. `tail` (next
  // producer ticket) is guarded by `producer_mutex`; `head` (next consumer
  // ticket) is written by the drain and read by producers for the
  // fullness check.
  struct Stripe {
    explicit Stripe(size_t capacity);
    std::vector<Cell> cells;
    std::mutex producer_mutex;
    uint64_t tail = 0;
    alignas(64) std::atomic<uint64_t> head{0};
  };

  // Stable small integer per thread, used to pick a stripe.
  static size_t ThreadIndex();

  size_t capacity_;
  size_t mask_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  // Drain-side scratch; guarded by the caller's latch like the drain.
  std::vector<AccessRecord> scratch_;
  // Drain-side counters, same guard as scratch_; full_pushes_ is updated
  // on the producer side without the latch.
  AccessBufferStats drain_stats_;
  std::atomic<uint64_t> full_pushes_{0};
};

}  // namespace lruk

#endif  // LRUK_CORE_ACCESS_BUFFER_H_
