// AccessBuffer — a fixed-capacity, lock-free staging area for page
// references, decoupling *observing* a reference (hit path, no pool latch
// for policy bookkeeping) from *applying* it to a ReplacementPolicy (batch
// drain under the pool latch). This is the mechanism behind the pools'
// `batch_capacity` option (see DESIGN.md "Batched access recording" and
// "Wait-free publish & batched nomination").
//
// Structure: one or more stripes, each a bounded ring of sequence-numbered
// cells. A producer claims a ticket with a single fetch_add on the
// stripe's atomic tail (wait-free), then acquires its cell by CAS-ing the
// cell's sequence number from `ticket` to `ticket | kClaimedBit`, writes
// the `(page, process, access_type)` record, and publishes it with a
// release store of `ticket + 1`. No mutex anywhere on the push path. With
// `stripes == 1` the buffer is shared per pool (per shard); with more
// stripes each thread hashes to its own ring, so `stripes` at or above the
// expected thread count makes even the ticket fetch_add uncontended.
//
// Because claim and publish are no longer serialized, a producer preempted
// between them leaves a *gap*: records published behind it by other
// threads are stalled until it publishes. The drain handles gaps by
// stopping the stripe at the first claimed-but-unpublished cell (after a
// bounded spin) — FIFO order within the stripe is preserved, the stalled
// records are simply picked up by a later drain. The price is that a
// stalled record's page can be unpinned, and even evicted, before its
// reference is applied; pools therefore always drain with
// `skip_non_resident` set and surface the skipped records as
// `access_drops` (bounded staleness the batching contract already
// permits, not lost bookkeeping — every drop is counted). An earlier
// revision instead serialized claim+publish under a per-stripe micro-mutex
// to make gaps impossible; that mutex was the last lock on the warm hit
// path, which is exactly what this design removes.
//
// Tickets can also be *abandoned*: TryPush refuses without touching a cell
// when the stripe is logically full, and a producer that loses its claim
// CAS (its ticket was sealed, or the previous lap is still unconsumed
// after a bounded spin) gives up the same way. The drain reclaims
// abandoned tickets by sealing them — CAS-ing the untouched cell from
// `ticket` to `ticket + ring` — so the ring never wedges on a ticket
// nobody will publish. A refused TryPush returns false and the caller
// takes the latch, drains, and applies its record directly; that record
// is never lost, though it may be applied ahead of records still stalled
// behind a gap (per-thread FIFO is exact for records that flow through
// the ring, best-effort across the refusal path).
//
// Draining runs under the pool latch (single consumer at a time) and
// applies records to the policy in per-stripe FIFO order via
// RecordAccessBatch; it synchronizes with producers only through the
// per-cell sequence numbers.

#ifndef LRUK_CORE_ACCESS_BUFFER_H_
#define LRUK_CORE_ACCESS_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/replacement_policy.h"
#include "core/types.h"
#include "util/macros.h"

namespace lruk {

// Drain/push counters for a buffer's lifetime, exposed so benches can see
// *why* batching wins or loses (bench/micro_contention prints records per
// drain; DESIGN.md's batch-capacity guidance is derived from it).
struct AccessBufferStats {
  // Drain() calls, and how many records they applied in total.
  uint64_t drains = 0;
  uint64_t drained_records = 0;
  // Drains that found nothing published (pure overhead).
  uint64_t empty_drains = 0;
  // TryPush refusals — stripe logically full, ticket sealed by a drain, or
  // the previous lap's cell still unconsumed after the bounded spin. Each
  // one forced the caller onto the slow path: take the latch, drain, apply
  // directly.
  uint64_t full_pushes = 0;
  // Records dropped by a skip_non_resident drain instead of applied: their
  // page was evicted while the record was buffered (typically stalled
  // behind a publish gap). The pools re-export this as `access_drops`.
  uint64_t dropped_records = 0;

  AccessBufferStats& operator+=(const AccessBufferStats& o) {
    drains += o.drains;
    drained_records += o.drained_records;
    empty_drains += o.empty_drains;
    full_pushes += o.full_pushes;
    dropped_records += o.dropped_records;
    return *this;
  }
};

class AccessBuffer {
 public:
  // `capacity` (>= 1) is the per-stripe record count at which TryPush
  // starts refusing; the physical ring is the next power of two (min 2).
  // `stripes` >= 1; threads are spread across stripes by a per-thread id,
  // so stripes >= the expected thread count approximates one buffer per
  // thread.
  explicit AccessBuffer(size_t capacity, size_t stripes = 1);
  LRUK_DISALLOW_COPY_AND_MOVE(AccessBuffer);

  // Enqueue into the calling thread's stripe: one fetch_add to claim a
  // ticket, one CAS to acquire the cell, one release store to publish.
  // Lock-free (wait-free when uncontended and the drain keeps up). Returns
  // false when the stripe is full or the cell could not be acquired; the
  // caller then drains under its latch and applies the record itself.
  bool TryPush(const AccessRecord& record);

  // Applies every published record to `policy` in per-stripe FIFO order
  // (via RecordAccessBatch) and returns how many were applied. Caller must
  // hold the latch that serializes policy access: the drain is
  // single-consumer, while concurrent TryPush calls remain safe. A stripe
  // is consumed up to its first claimed-but-unpublished cell (a producer
  // preempted mid-publish); anything beyond stays buffered for the next
  // drain.
  //
  // With `skip_non_resident` set, records whose page is no longer resident
  // in `policy` are dropped instead of applied, and the number dropped is
  // added to `*dropped` (when non-null) and to stats(). The pools always
  // set this: with the lock-free publish path a record can stall behind a
  // gap past its page's eviction, and with latch-free hits
  // (BufferPoolOptions::optimistic_hits) a pin + publish + unpin can
  // complete entirely without the pool latch — either way the drain may
  // see records for pages already evicted, which the policy must not be
  // asked to apply.
  size_t Drain(ReplacementPolicy& policy, bool skip_non_resident = false,
               size_t* dropped = nullptr);

  // Per-stripe record count at which TryPush refuses (the configured
  // capacity; the physical ring may be one power-of-two larger).
  size_t stripe_capacity() const { return capacity_; }
  size_t stripe_count() const { return stripes_.size(); }

  // Lifetime counters. The drain-side fields are guarded by the caller's
  // latch (like Drain itself); full_pushes is accumulated with relaxed
  // atomics, so a concurrent reader sees a value at most a few pushes
  // stale — fine for bench reporting.
  AccessBufferStats stats() const {
    AccessBufferStats s = drain_stats_;
    s.full_pushes = full_pushes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Cell sequence protocol, for the producer holding `ticket` (ring = the
  // physical cell count):
  //   seq == ticket               free for this lap; claim it by CAS.
  //   seq == ticket | kClaimedBit claimed by us, record write in flight.
  //   seq == ticket + 1           published; drain may consume.
  //   seq == ticket + ring        consumed (or sealed) — the *next* lap's
  //                               free state.
  // The claim CAS is the only contended transition: it can lose to the
  // drain sealing an abandoned-looking ticket, in which case the producer
  // gives up and takes the slow path.
  static constexpr uint64_t kClaimedBit = uint64_t{1} << 63;
  // Bounded spins: a producer waiting for the previous lap's cell to be
  // consumed (drain overdue), and the drain waiting for a claimed cell to
  // be published (producer mid-write, a few stores away).
  static constexpr int kClaimSpins = 64;
  static constexpr int kPublishSpins = 128;

  struct Cell {
    std::atomic<uint64_t> seq{0};
    AccessRecord record;
  };

  // `tail` is the next producer ticket (fetch_add claim); `head` is the
  // next consumer ticket, written by the drain and read by producers for
  // the fullness check. Both only ever advance.
  struct Stripe {
    explicit Stripe(size_t capacity);
    std::vector<Cell> cells;
    alignas(64) std::atomic<uint64_t> tail{0};
    alignas(64) std::atomic<uint64_t> head{0};
  };

  // Stable small integer per thread, used to pick a stripe.
  static size_t ThreadIndex();

  size_t capacity_;
  size_t mask_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  // Drain-side scratch; guarded by the caller's latch like the drain.
  std::vector<AccessRecord> scratch_;
  // Drain-side counters, same guard as scratch_; full_pushes_ is updated
  // on the producer side without the latch.
  AccessBufferStats drain_stats_;
  std::atomic<uint64_t> full_pushes_{0};
};

}  // namespace lruk

#endif  // LRUK_CORE_ACCESS_BUFFER_H_
