// Page reference history for LRU-K (Section 2.1.2 / 2.1.3 of the paper).
//
// Each tracked page has a history control block:
//   hist[0..K-1] — HIST(p,1)..HIST(p,K): the K most recent *uncorrelated*
//                  reference times, already adjusted for correlated-period
//                  collapse; 0 means "no such reference known".
//   last         — LAST(p): the raw time of the most recent reference,
//                  correlated or not.
//
// Blocks outlive buffer residency (the Page Reference Retained Information
// Problem): a page's block survives eviction and is purged only once the
// page has gone unreferenced for longer than the Retained Information
// Period. Purging is the job the paper assigns to "an asynchronous demon
// process"; here it is PurgeExpired(), invoked lazily by LruKPolicy on an
// amortized schedule (and available to callers directly).

#ifndef LRUK_CORE_HISTORY_TABLE_H_
#define LRUK_CORE_HISTORY_TABLE_H_

#include <cstdint>
#include <limits>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.h"
#include "util/macros.h"

namespace lruk {

// "Infinite" period: retained information is never purged. This matches the
// paper's simulation setup, where history is kept for the whole run.
inline constexpr Timestamp kInfinitePeriod =
    std::numeric_limits<Timestamp>::max();

struct HistoryBlock {
  // hist[i] is HIST(p, i+1); hist[k-1] is the K-th most recent reference.
  // A value of 0 means the page has fewer than i+1 known uncorrelated
  // references (backward distance infinity for that depth).
  std::vector<Timestamp> hist;
  // LAST(p): raw time of the most recent reference.
  Timestamp last = 0;
  // Process that issued the most recent reference (per-process
  // correlation mode only).
  uint32_t last_process = 0;
  // Whether the page currently occupies a buffer slot.
  bool resident = false;
  // Whether the page may be chosen as a victim (buffer-pool pinning).
  bool evictable = true;

  explicit HistoryBlock(int k) : hist(static_cast<size_t>(k), 0) {}

  // HIST(p, K): the key the LRU-K victim search minimizes. 0 encodes an
  // infinite Backward K-distance.
  Timestamp HistK() const { return hist.back(); }
  // HIST(p, 1): time of the most recent uncorrelated reference.
  Timestamp Hist1() const { return hist.front(); }
};

class HistoryTable {
 public:
  // `k` is the LRU-K depth (>= 1); `retained_information_period` in logical
  // ticks, kInfinitePeriod to disable purging; `max_nonresident_blocks`
  // bounds the history-only blocks (0 = unbounded) — when the bound is
  // exceeded, the non-resident block with the oldest LAST is dropped
  // (Section 5's open question about history space, made a knob).
  // `capacity_hint` (0 = none) pre-sizes the hash buckets for the expected
  // resident count plus non-resident headroom, so warm-up admissions do
  // not trigger a rehash storm.
  HistoryTable(int k, Timestamp retained_information_period,
               size_t max_nonresident_blocks = 0, size_t capacity_hint = 0);

  int k() const { return k_; }
  size_t size() const { return blocks_.size(); }
  Timestamp retained_information_period() const { return rip_; }

  // Approximate bytes held by history control blocks (block struct + HIST
  // array + hash-map node overhead) — the memory the Retained Information
  // Period controls, the paper's open question in Section 5.
  size_t ApproximateMemoryBytes() const {
    size_t per_block = sizeof(HistoryBlock) +
                       static_cast<size_t>(k_) * sizeof(Timestamp) +
                       kMapNodeOverhead;
    return blocks_.size() * per_block;
  }

  // Returns the block for p, or nullptr if none is retained.
  HistoryBlock* Find(PageId p);
  const HistoryBlock* Find(PageId p) const;

  // Returns the block for p, creating a fresh one if absent. If a block
  // exists but its retained information has expired (now - last > RIP and
  // the page is not resident), the stale history is discarded first and the
  // returned block is fresh. `*had_history` reports whether prior history
  // survived.
  HistoryBlock& GetOrCreate(PageId p, Timestamp now, bool* had_history);

  // Transitions p's block to non-resident (the page left the buffer but
  // its history is retained), enforcing the non-resident block bound.
  void OnEvicted(PageId p, HistoryBlock& block);

  // Drops the block for p entirely (page deleted from the database).
  void Erase(PageId p);

  // Number of history-only (non-resident) blocks currently retained.
  size_t NonResidentCount() const { return nonresident_.size(); }

  // The retained-information demon: drops every non-resident block with
  // now - last > RIP. Returns the number of blocks purged. O(table size).
  size_t PurgeExpired(Timestamp now);

  // Whether the block's retained information has expired at `now`.
  bool Expired(const HistoryBlock& block, Timestamp now) const;

  // Iteration support (victim scans, tests).
  auto begin() { return blocks_.begin(); }
  auto end() { return blocks_.end(); }
  auto begin() const { return blocks_.begin(); }
  auto end() const { return blocks_.end(); }

 private:
  // Estimated unordered_map node overhead (hash bucket pointer + node
  // header + key), platform-typical.
  static constexpr size_t kMapNodeOverhead = 4 * sizeof(void*);

  int k_;
  Timestamp rip_;
  size_t max_nonresident_;
  std::unordered_map<PageId, HistoryBlock> blocks_;
  // Non-resident blocks ordered by LAST (oldest first). LAST of a
  // non-resident block never changes (a reference makes the page resident
  // again), so entries are stable until removal.
  std::set<std::pair<Timestamp, PageId>> nonresident_;
};

}  // namespace lruk

#endif  // LRUK_CORE_HISTORY_TABLE_H_
