// Page reference history for LRU-K (Section 2.1.2 / 2.1.3 of the paper).
//
// Each tracked page has a history control block:
//   hist[0..K-1] — HIST(p,1)..HIST(p,K): the K most recent *uncorrelated*
//                  reference times, already adjusted for correlated-period
//                  collapse; 0 means "no such reference known".
//   last         — LAST(p): the raw time of the most recent reference,
//                  correlated or not.
//
// Blocks outlive buffer residency (the Page Reference Retained Information
// Problem): a page's block survives eviction and is purged only once the
// page has gone unreferenced for longer than the Retained Information
// Period. Purging is the job the paper assigns to "an asynchronous demon
// process"; here it is PurgeExpired(), invoked lazily by LruKPolicy on an
// amortized schedule (and available to callers directly).
//
// Storage layout (see DESIGN.md "Victim index structures"): the K
// timestamps live *inline* in the block (fixed array, K <= kMaxHistoryK),
// and blocks are allocated from a chunked slab with a free list, indexed
// by an open-addressing hash table (linear probing, backward-shift
// deletion) keyed by PageId. A hit therefore touches one index slot and
// one block — no per-block heap node, no bucket chain — and block
// addresses are stable across insertions (LruKPolicy and callers hold
// HistoryBlock* across table growth).

#ifndef LRUK_CORE_HISTORY_TABLE_H_
#define LRUK_CORE_HISTORY_TABLE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/types.h"
#include "util/macros.h"

namespace lruk {

// "Infinite" period: retained information is never purged. This matches the
// paper's simulation setup, where history is kept for the whole run.
inline constexpr Timestamp kInfinitePeriod =
    std::numeric_limits<Timestamp>::max();

// Upper bound on the K in LRU-K with inline history storage. The paper
// finds K = 2 sufficient and K = 3 already past the point of diminishing
// returns (Section 4), so 8 slots is generous; ParsePolicyName enforces the
// same bound.
inline constexpr int kMaxHistoryK = 8;

// HIST(p,1..K) as a fixed inline array with a runtime length of K. Keeps
// the std::vector surface the history code uses (size/operator[]/front/
// back and brace assignment) without the heap indirection.
class HistArray {
 public:
  HistArray() { v_.fill(0); }
  explicit HistArray(int k) : k_(static_cast<uint8_t>(k)) {
    LRUK_ASSERT(k >= 1 && k <= kMaxHistoryK,
                "LRU-K history depth must be in [1, kMaxHistoryK]");
    v_.fill(0);
  }

  // Assigns the leading entries and zeroes the rest ("no such reference").
  HistArray& operator=(std::initializer_list<Timestamp> values) {
    LRUK_ASSERT(values.size() <= k_, "more history entries than K");
    v_.fill(0);
    size_t i = 0;
    for (Timestamp t : values) v_[i++] = t;
    return *this;
  }

  size_t size() const { return k_; }
  Timestamp& operator[](size_t i) { return v_[i]; }
  const Timestamp& operator[](size_t i) const { return v_[i]; }
  Timestamp& front() { return v_[0]; }
  const Timestamp& front() const { return v_[0]; }
  // HIST(p,K): the oldest tracked reference.
  const Timestamp& back() const { return v_[k_ - 1]; }

 private:
  std::array<Timestamp, kMaxHistoryK> v_;
  uint8_t k_ = 1;
};

struct HistoryBlock {
  // hist[i] is HIST(p, i+1); hist[k-1] is the K-th most recent reference.
  // A value of 0 means the page has fewer than i+1 known uncorrelated
  // references (backward distance infinity for that depth).
  HistArray hist;
  // LAST(p): raw time of the most recent reference.
  Timestamp last = 0;
  // Process that issued the most recent reference (per-process
  // correlation mode only).
  uint32_t last_process = 0;
  // Whether the page currently occupies a buffer slot.
  bool resident = false;
  // Whether the page may be chosen as a victim (buffer-pool pinning).
  bool evictable = true;
  // LruKPolicy lazy-heap bookkeeping: whether the victim heap holds an
  // entry for this page. Owned by the policy, stored here so the hit path
  // needs no side lookup. Reset (like everything else) when retained
  // information expires — the policy re-pushes on the next Admit.
  bool in_victim_heap = false;

  // Default-constructible (K = 1) so slab chunks can be allocated as
  // arrays; HistoryTable re-initializes each block with its real K on
  // allocation.
  HistoryBlock() = default;
  explicit HistoryBlock(int k) : hist(k) {}

  // HIST(p, K): the key the LRU-K victim search minimizes. 0 encodes an
  // infinite Backward K-distance.
  Timestamp HistK() const { return hist.back(); }
  // HIST(p, 1): time of the most recent uncorrelated reference.
  Timestamp Hist1() const { return hist.front(); }
};

class HistoryTable {
 public:
  // `k` is the LRU-K depth (1 <= k <= kMaxHistoryK); `retained_
  // information_period` in logical ticks, kInfinitePeriod to disable
  // purging; `max_nonresident_blocks` bounds the history-only blocks (0 =
  // unbounded) — when the bound is exceeded, the non-resident block with
  // the oldest LAST is dropped (Section 5's open question about history
  // space, made a knob). `capacity_hint` (0 = none) pre-sizes the index
  // for the expected resident count plus non-resident headroom, so warm-up
  // admissions do not trigger a rehash storm.
  HistoryTable(int k, Timestamp retained_information_period,
               size_t max_nonresident_blocks = 0, size_t capacity_hint = 0);

  int k() const { return k_; }
  size_t size() const { return size_; }
  Timestamp retained_information_period() const { return rip_; }
  // Re-tunes the RIP online (the adaptive meta-policy's CRP/RIP estimator).
  // Takes effect from the next expiry check; already-purged blocks are not
  // resurrected.
  void SetRetainedInformationPeriod(Timestamp rip) { rip_ = rip; }

  // Approximate bytes held by history control blocks — the memory the
  // Retained Information Period controls, the paper's open question in
  // Section 5. Charged per live block (block + its index-slot share at the
  // table's bounded load factor), not per slab-allocated capacity, so the
  // number tracks the retained set the way the RIP knob moves it
  // (bench/ablation_memory_budget divides a frame budget by this).
  size_t ApproximateMemoryBytes() const {
    return size_ * (sizeof(HistoryBlock) + 2 * sizeof(Slot));
  }

  // Returns the block for p, or nullptr if none is retained. The pointer
  // is stable until the block is erased (slab storage does not move).
  HistoryBlock* Find(PageId p) {
    size_t i = FindSlot(p);
    return i == kNpos ? nullptr : slots_[i].block;
  }
  const HistoryBlock* Find(PageId p) const {
    size_t i = FindSlot(p);
    return i == kNpos ? nullptr : slots_[i].block;
  }

  // Returns the block for p, creating a fresh one if absent. If a block
  // exists but its retained information has expired (now - last > RIP and
  // the page is not resident), the stale history is discarded first and the
  // returned block is fresh. `*had_history` reports whether prior history
  // survived.
  HistoryBlock& GetOrCreate(PageId p, Timestamp now, bool* had_history);

  // Transitions p's block to non-resident (the page left the buffer but
  // its history is retained), enforcing the non-resident block bound.
  // May free blocks (including, if everything else is fresher, the one
  // passed in) — callers must not dereference `block` afterwards.
  void OnEvicted(PageId p, HistoryBlock& block);

  // The retention half of OnEvicted for a block already marked
  // non-resident: registers it in the non-resident index and enforces the
  // budget. LruKPolicy's batched nomination defers this step until the
  // nominations settle, so a nominate-then-Restore round trip never
  // touches the budget. Same caveat as OnEvicted: may free blocks,
  // including the one passed in.
  void RetainEvicted(PageId p, HistoryBlock& block);

  // Drops the block for p entirely (page deleted from the database).
  void Erase(PageId p);

  // Number of history-only (non-resident) blocks currently retained.
  size_t NonResidentCount() const { return nonresident_.size(); }

  // The retained-information demon: drops every non-resident block with
  // now - last > RIP. Returns the number of blocks purged. O(table size).
  size_t PurgeExpired(Timestamp now);

  // Whether the block's retained information has expired at `now`.
  bool Expired(const HistoryBlock& block, Timestamp now) const;

  // Visits every (page, block) pair in unspecified order. The callback
  // must not insert or erase blocks.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.page != kInvalidPageId) fn(s.page, *s.block);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.page != kInvalidPageId) {
        fn(s.page, static_cast<const HistoryBlock&>(*s.block));
      }
    }
  }

 private:
  // One open-addressing index entry; page == kInvalidPageId marks an
  // empty slot.
  struct Slot {
    PageId page = kInvalidPageId;
    HistoryBlock* block = nullptr;
  };

  static constexpr size_t kNpos = static_cast<size_t>(-1);
  // Blocks per slab chunk; chunks are never returned to the allocator, so
  // block addresses stay stable for the table's lifetime.
  static constexpr size_t kChunkBlocks = 256;

  // SplitMix64 finalizer: page ids are typically dense small integers, so
  // spread them before masking (same mix the sharded pool routes with).
  static uint64_t Mix(PageId p) {
    uint64_t z = p + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  size_t IdealSlot(PageId p) const { return Mix(p) & mask_; }
  // Index of p's slot, or kNpos. Linear probe; terminates because the
  // load factor is capped well below 1.
  size_t FindSlot(PageId p) const;
  // Inserts a (page, block) pair not currently present, growing first if
  // the insert would push the load factor past ~0.7.
  void InsertSlot(PageId p, HistoryBlock* block);
  // Removes slot i with backward-shift deletion (no tombstones).
  void EraseSlotAt(size_t i);
  void Grow();
  HistoryBlock* AllocateBlock();

  int k_;
  Timestamp rip_;
  size_t max_nonresident_;
  size_t size_ = 0;
  size_t mask_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<HistoryBlock[]>> chunks_;
  std::vector<HistoryBlock*> free_blocks_;
  // Non-resident blocks ordered by LAST (oldest first). LAST of a
  // non-resident block never changes (a reference makes the page resident
  // again), so entries are stable until removal.
  std::set<std::pair<Timestamp, PageId>> nonresident_;
};

}  // namespace lruk

#endif  // LRUK_CORE_HISTORY_TABLE_H_
