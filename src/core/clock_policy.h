// CLOCK (second-chance): pages sit on a circular list with a reference bit;
// the sweep hand clears bits and evicts the first unreferenced page. A
// cheap LRU approximation, the base of the GCLOCK family [EFFEHAER].

#ifndef LRUK_CORE_CLOCK_POLICY_H_
#define LRUK_CORE_CLOCK_POLICY_H_

#include <list>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "core/replacement_policy.h"

namespace lruk {

class ClockPolicy final : public ReplacementPolicy {
 public:
  ClockPolicy() = default;

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return evictable_count_; }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "CLOCK"; }

 private:
  struct Slot {
    PageId page;
    bool referenced;
  };
  struct Entry {
    std::list<Slot>::iterator pos;
    bool evictable = true;
  };

  void AdvanceHand();

  // Circular order; hand_ points at the next sweep position.
  std::list<Slot> ring_;
  std::list<Slot>::iterator hand_ = ring_.end();
  std::unordered_map<PageId, Entry> entries_;
  size_t evictable_count_ = 0;
};

}  // namespace lruk

#endif  // LRUK_CORE_CLOCK_POLICY_H_
