// GCLOCK (Generalized CLOCK, [EFFEHAER]): like CLOCK but each page carries a
// reference *counter* instead of a single bit. A reference sets (or
// increments) the counter; the sweep decrements counters and evicts the
// first page whose counter is zero. The paper cites GCLOCK as the kind of
// counter-based aging scheme that "depends critically on a careful choice of
// various workload-dependent parameters" — the knobs below are exactly
// those parameters.

#ifndef LRUK_CORE_GCLOCK_H_
#define LRUK_CORE_GCLOCK_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "core/replacement_policy.h"

namespace lruk {

struct GClockOptions {
  // Counter value given to a page when it is admitted.
  uint32_t initial_count = 1;
  // If true a re-reference adds `reference_increment` to the counter
  // (capped at max_count); if false it *sets* the counter to
  // reference_increment (the "set on reference" GCLOCK variant).
  bool increment_on_reference = true;
  uint32_t reference_increment = 1;
  uint32_t max_count = 8;
};

class GClockPolicy final : public ReplacementPolicy {
 public:
  explicit GClockPolicy(GClockOptions options = {});

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return evictable_count_; }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "GCLOCK"; }

 private:
  struct Slot {
    PageId page;
    uint32_t count;
  };
  struct Entry {
    std::list<Slot>::iterator pos;
    bool evictable = true;
  };

  void AdvanceHand();

  GClockOptions options_;
  std::list<Slot> ring_;
  std::list<Slot>::iterator hand_ = ring_.end();
  std::unordered_map<PageId, Entry> entries_;
  size_t evictable_count_ = 0;
};

}  // namespace lruk

#endif  // LRUK_CORE_GCLOCK_H_
