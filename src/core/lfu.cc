#include "core/lfu.h"

namespace lruk {

LfuPolicy::LfuPolicy(LfuOptions options) : options_(options) {}

LfuPolicy::HeapKey LfuPolicy::KeyFor(PageId p,
                                     const ResidentEntry& entry) const {
  auto it = counts_.find(p);
  uint64_t count = (it == counts_.end()) ? 0 : it->second;
  return HeapKey{count, entry.last_tick, p};
}

uint64_t LfuPolicy::ReferenceCount(PageId p) const {
  auto it = counts_.find(p);
  return (it == counts_.end()) ? 0 : it->second;
}

void LfuPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  auto it = resident_.find(p);
  LRUK_ASSERT(it != resident_.end(), "RecordAccess on a non-resident page");
  ++tick_;
  if (it->second.evictable) heap_.erase(KeyFor(p, it->second));
  ++counts_[p];
  it->second.last_tick = tick_;
  if (it->second.evictable) heap_.insert(KeyFor(p, it->second));
}

void LfuPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!resident_.contains(p), "Admit on an already-resident page");
  ++tick_;
  ++counts_[p];
  auto [it, inserted] =
      resident_.emplace(p, ResidentEntry{tick_, /*evictable=*/true});
  heap_.insert(KeyFor(p, it->second));
}

std::optional<PageId> LfuPolicy::Evict() {
  if (heap_.empty()) return std::nullopt;
  HeapKey key = *heap_.begin();
  heap_.erase(heap_.begin());
  resident_.erase(key.page);
  if (options_.forget_on_eviction) counts_.erase(key.page);
  return key.page;
}

void LfuPolicy::Remove(PageId p) {
  auto it = resident_.find(p);
  LRUK_ASSERT(it != resident_.end(), "Remove on a non-resident page");
  if (it->second.evictable) heap_.erase(KeyFor(p, it->second));
  resident_.erase(it);
  if (options_.forget_on_eviction) counts_.erase(p);
}

void LfuPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = resident_.find(p);
  LRUK_ASSERT(it != resident_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable == evictable) return;
  if (evictable) {
    heap_.insert(KeyFor(p, it->second));
  } else {
    heap_.erase(KeyFor(p, it->second));
  }
  it->second.evictable = evictable;
}


void LfuPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : resident_) visit(kv.first);
}

}  // namespace lruk
