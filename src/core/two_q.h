// 2Q (Johnson & Shasha, VLDB 1994) — the direct successor of LRU-2 and part
// of the lineage this paper spawned. Included as the "future work"
// comparison point: 2Q approximates LRU-2's discrimination with constant-
// time operations.
//
// Structure (full version):
//   A1in  — FIFO of pages seen once recently (resident)
//   A1out — FIFO ghost queue of page ids recently evicted from A1in
//           (history only, like LRU-K's retained information)
//   Am    — LRU of pages re-referenced while in A1out (the hot set)
//
// A page faulting in from A1out goes straight to Am; a brand-new page goes
// to A1in. Victims come from A1in's tail while |A1in| > kin, otherwise from
// Am's tail.

#ifndef LRUK_CORE_TWO_Q_H_
#define LRUK_CORE_TWO_Q_H_

#include <list>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "core/replacement_policy.h"

namespace lruk {

struct TwoQOptions {
  // Total buffer capacity in pages; sizes the internal thresholds.
  size_t capacity = 0;
  // |A1in| threshold as a fraction of capacity (paper recommends ~25%).
  double kin_fraction = 0.25;
  // |A1out| ghost size as a fraction of capacity (paper recommends ~50%).
  double kout_fraction = 0.50;
};

class TwoQPolicy final : public ReplacementPolicy {
 public:
  explicit TwoQPolicy(TwoQOptions options);

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return evictable_count_; }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "2Q"; }

  // Introspection for tests.
  size_t A1inSize() const { return a1in_.size(); }
  size_t A1outSize() const { return a1out_.size(); }
  size_t AmSize() const { return am_.size(); }
  bool InGhost(PageId p) const { return a1out_index_.contains(p); }

 private:
  enum class Queue { kA1in, kAm };

  struct Entry {
    Queue queue;
    std::list<PageId>::iterator pos;
    bool evictable = true;
  };

  // Evicts from `list`'s tail, skipping pinned pages. Returns the victim or
  // nullopt if every page in the list is pinned.
  std::optional<PageId> EvictFromTail(std::list<PageId>& list);
  void PushGhost(PageId p);

  TwoQOptions options_;
  size_t kin_;
  size_t kout_;

  std::list<PageId> a1in_;   // FIFO: newest at front.
  std::list<PageId> am_;     // LRU: most recent at front.
  std::list<PageId> a1out_;  // Ghost FIFO: newest at front.
  std::unordered_map<PageId, Entry> entries_;
  std::unordered_map<PageId, std::list<PageId>::iterator> a1out_index_;
  size_t evictable_count_ = 0;
};

}  // namespace lruk

#endif  // LRUK_CORE_TWO_Q_H_
