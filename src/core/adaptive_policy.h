// Adaptive meta-policy: online expert selection with ghost caches.
//
// The paper fixes K, the Correlated Reference Period, and the Retained
// Information Period offline and concedes in Section 5 that they must be
// tuned to the workload. This policy closes that loop in the spirit of
// expert-mixing cache management (EEvA, arXiv:2405.00154; AWRP,
// arXiv:1107.4851): it wraps a set of ordinary ReplacementPolicy experts
// (LRU-K, ARC, 2Q, LFU, ...) and
//
//   * keeps every expert's *live* instance synchronized with the true
//     resident set (all of them see every RecordAccess/Admit/Remove/pin),
//     but lets only the currently *active* expert choose eviction victims;
//   * runs one *ghost cache* per expert — a key-only shadow simulation of
//     that expert alone at the same capacity, fed the raw reference
//     stream — whose miss count is the expert's would-have-missed regret
//     signal;
//   * compares per-expert ghost misses over a sliding window (a ring of
//     fixed-width buckets) and switches the active expert with hysteresis:
//     a challenger must beat the incumbent by a relative margin, the
//     incumbent must have accumulated a minimum number of window misses,
//     and switches are rate-limited by a cooldown;
//   * optionally re-estimates the LRU-K expert's CRP/RIP online from the
//     measured inter-reference gap distribution (analysis/
//     interval_estimator.h) and applies the tuned values to both the live
//     and the ghost LRU-K instance.
//
// Composition with the pools: Evict/EvictBatch/Restore forward to the
// active expert exactly, so with a single expert this wrapper is
// behaviourally identical to the bare expert (including LRU-K's deferred
// EvictBatch retention and exact Restore — the fixed-expert differential
// test asserts byte equality). Victims are Remove()d from the non-active
// experts when nominated and re-Admit()ed if the pool Restores them; the
// nominating expert is remembered per in-flight victim so a delayed
// Restore (write-behind failure after an expert switch) still routes to
// the expert whose Evict produced it. Switch decisions run only on
// clock-ticking paths (RecordAccess/RecordAccessBatch/Admit), never inside
// Evict/EvictBatch — a batch nomination can therefore never straddle an
// expert change.

#ifndef LRUK_CORE_ADAPTIVE_POLICY_H_
#define LRUK_CORE_ADAPTIVE_POLICY_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/interval_estimator.h"
#include "core/replacement_policy.h"
#include "core/types.h"

namespace lruk {

class LruKPolicy;

// One configured expert: a live instance (mirrors the true resident set)
// and a ghost instance (shadow-simulates the expert alone).
struct AdaptiveExpert {
  std::string name;
  std::unique_ptr<ReplacementPolicy> live;
  std::unique_ptr<ReplacementPolicy> ghost;
};

struct AdaptivePolicyOptions {
  // Frame budget of the ghost simulations; must equal the owning pool's
  // (shard's) capacity for the regret signal to be meaningful. Required.
  size_t capacity = 0;
  // Sliding regret window, in references, and the number of ring buckets
  // it is divided into. Switch decisions are evaluated once per bucket
  // rotation (every window_refs / window_buckets references).
  uint64_t window_refs = 4096;
  size_t window_buckets = 8;
  // Hysteresis: a challenger switches in only if its window misses are at
  // most (1 - switch_margin) of the incumbent's, the incumbent has at
  // least min_window_misses in the window, and at least cooldown_refs
  // references have passed since the last switch.
  double switch_margin = 0.10;
  uint64_t min_window_misses = 16;
  uint64_t cooldown_refs = 1024;
  // Online CRP/RIP re-estimation for the (first) LRU-K expert. Off by
  // default so `adaptive:lruk2` stays byte-identical to plain `lruk2`.
  bool tune_lruk = false;
  uint64_t tune_interval = 8192;
  // Clamps on the tuned values: CRP is capped (0 = capacity / 2) so an
  // aggressive estimate cannot mark most of the buffer correlated-hence-
  // ineligible, and a finite RIP is floored (0 = 8 * capacity) so history
  // is not purged while it can still matter.
  Timestamp max_tuned_crp = 0;
  Timestamp min_tuned_rip = 0;
  IntervalEstimatorOptions estimator;
  // Record each ghost's victim sequence (tests: the ghost-exactness grid).
  bool record_ghost_victims = false;
};

class AdaptivePolicy final : public ReplacementPolicy {
 public:
  // `experts` must be non-empty; every expert needs both instances.
  AdaptivePolicy(std::vector<AdaptiveExpert> experts,
                 AdaptivePolicyOptions options);
  ~AdaptivePolicy() override;

  void SetReferencingProcess(uint32_t process) override;
  void PrepareAdmit(PageId p) override;
  void RecordAccess(PageId p, AccessType type) override;
  void RecordAccessBatch(const AccessRecord* records, size_t n) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  size_t EvictBatch(size_t k, std::vector<PageId>* out) override;
  void Restore(PageId p) override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override;
  size_t EvictableCount() const override;
  bool IsResident(PageId p) const override;
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return name_; }
  MetaPolicyStats GetMetaStats() const override;

  // --- Introspection (tests, benches) ---

  size_t num_experts() const { return experts_.size(); }
  size_t active_expert() const { return active_; }
  uint64_t switches() const { return switches_; }
  uint64_t evaluations() const { return evaluations_; }
  const std::string& expert_name(size_t i) const { return experts_[i].name; }
  const ReplacementPolicy& expert_live(size_t i) const {
    return *experts_[i].live;
  }
  const ReplacementPolicy& expert_ghost(size_t i) const {
    return *experts_[i].ghost;
  }
  uint64_t ghost_misses(size_t i) const { return cum_ghost_misses_[i]; }
  uint64_t window_ghost_misses(size_t i) const {
    return window_ghost_misses_[i];
  }
  uint64_t window_meta_misses() const { return window_meta_misses_; }
  uint64_t total_meta_misses() const { return total_meta_misses_; }
  // Victim sequence of ghost i; empty unless record_ghost_victims.
  const std::vector<PageId>& ghost_victims(size_t i) const {
    return ghost_victims_[i];
  }
  Timestamp tuned_crp() const { return tuned_crp_; }
  Timestamp tuned_rip() const { return tuned_rip_; }
  uint64_t retunes() const { return retunes_; }
  const AdaptivePolicyOptions& options() const { return options_; }

 private:
  struct Bucket {
    std::vector<uint64_t> ghost_misses;
    uint64_t meta_misses = 0;
  };

  // Shared tail of every reference-observing path: feeds the ghosts,
  // advances the window, and (on bucket rotation) evaluates a switch.
  void OnReference(PageId p, AccessType type, bool live_miss);
  void ObserveGhost(size_t i, PageId p, AccessType type);
  void RotateBucket();
  void MaybeSwitch();
  void MaybeRetune();
  // Books a victim nominated by the active expert: removes it from the
  // other live experts and remembers the nominator for Restore routing.
  void BookVictim(PageId v);

  std::vector<AdaptiveExpert> experts_;
  AdaptivePolicyOptions options_;
  std::string name_;
  size_t active_ = 0;
  uint32_t current_process_ = 0;

  // Sliding window ring. buckets_[bucket_index_] accumulates; the window
  // sums are maintained incrementally on rotation.
  std::vector<Bucket> buckets_;
  size_t bucket_index_ = 0;
  uint64_t refs_in_bucket_ = 0;
  uint64_t bucket_refs_ = 0;
  std::vector<uint64_t> window_ghost_misses_;
  uint64_t window_meta_misses_ = 0;
  std::vector<uint64_t> cum_ghost_misses_;
  uint64_t total_meta_misses_ = 0;
  std::vector<uint64_t> active_refs_;
  std::vector<uint64_t> selections_;

  uint64_t refs_ = 0;
  uint64_t refs_since_switch_ = 0;
  uint64_t switches_ = 0;
  uint64_t evaluations_ = 0;
  bool in_evict_batch_ = false;

  // In-flight victims: page -> index of the expert whose Evict nominated
  // it. Entries are dropped on Restore or on a later re-admission of the
  // page; pages evicted and never referenced again keep a 16-byte entry,
  // the same order of residual state as LRU-K's retained history.
  std::unordered_map<PageId, size_t> evicted_by_;

  std::vector<std::vector<PageId>> ghost_victims_;

  // CRP/RIP tuning (null when disabled or no LRU-K expert is configured).
  IntervalEstimator estimator_;
  LruKPolicy* live_lruk_ = nullptr;
  LruKPolicy* ghost_lruk_ = nullptr;
  Timestamp tuned_crp_ = 0;
  Timestamp tuned_rip_ = 0;
  uint64_t retunes_ = 0;
};

}  // namespace lruk

#endif  // LRUK_CORE_ADAPTIVE_POLICY_H_
