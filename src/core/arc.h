// ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST 2003), the most
// prominent descendant of the LRU-2 / 2Q lineage this paper started.
// Included as a forward-looking comparison point: like LRU-K it
// distinguishes recency from frequency and keeps history past residence
// (ghost lists B1/B2 play the role of the Retained Information Period),
// but it replaces LRU-K's fixed parameters with a self-tuning target `p`
// that continuously rebalances the recency (T1) and frequency (T2) sides.
//
// Structure:
//   T1 — pages seen once recently (resident)        |T1| + |T2| <= c
//   T2 — pages seen at least twice recently         (the cache)
//   B1 — ghost ids recently evicted from T1         |T1| + |B1| <= c
//   B2 — ghost ids recently evicted from T2         total <= 2c
//   p  — adaptive target for |T1| (0 <= p <= c)
//
// Interface mapping: the victim that REPLACE() picks depends on whether
// the faulting page sits in B2, so callers must announce the incoming
// page via PrepareAdmit(p) before Evict() — both the simulator and the
// buffer pool do. Pinned pages are skipped from the tail of the chosen
// side, falling over to the other side when necessary.

#ifndef LRUK_CORE_ARC_H_
#define LRUK_CORE_ARC_H_

#include <list>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "core/replacement_policy.h"

namespace lruk {

class ArcPolicy final : public ReplacementPolicy {
 public:
  // `capacity` is c, the number of buffer frames ARC manages.
  explicit ArcPolicy(size_t capacity);

  void PrepareAdmit(PageId p) override { pending_ = p; }
  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return evictable_count_; }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "ARC"; }

  // Introspection for tests.
  size_t T1Size() const { return t1_.size(); }
  size_t T2Size() const { return t2_.size(); }
  size_t B1Size() const { return b1_.size(); }
  size_t B2Size() const { return b2_.size(); }
  double target_p() const { return p_; }
  bool InGhostB1(PageId p) const { return b1_index_.contains(p); }
  bool InGhostB2(PageId p) const { return b2_index_.contains(p); }

 private:
  enum class Queue { kT1, kT2 };

  struct Entry {
    Queue queue;
    std::list<PageId>::iterator pos;
    bool evictable = true;
  };

  using GhostIndex = std::unordered_map<PageId, std::list<PageId>::iterator>;

  // Megiddo-Modha REPLACE: demotes the LRU page of T1 or T2 (per the `p`
  // target and whether the incoming page is a B2 ghost) to the matching
  // ghost list. Skips pinned pages; returns nullopt if everything is
  // pinned.
  std::optional<PageId> Replace(bool incoming_in_b2);

  // Evicts from `list`'s tail skipping pinned pages; demotes the victim
  // to `ghost` when non-null.
  std::optional<PageId> EvictTail(std::list<PageId>& list,
                                  std::list<PageId>* ghost,
                                  GhostIndex* ghost_index);

  void DropGhostLru(std::list<PageId>& ghost, GhostIndex& index);

  size_t capacity_;
  double p_ = 0.0;

  std::list<PageId> t1_;  // MRU at front.
  std::list<PageId> t2_;
  std::list<PageId> b1_;  // Most recent ghost at front.
  std::list<PageId> b2_;
  std::unordered_map<PageId, Entry> entries_;
  GhostIndex b1_index_;
  GhostIndex b2_index_;
  size_t evictable_count_ = 0;
  std::optional<PageId> pending_;
};

}  // namespace lruk

#endif  // LRUK_CORE_ARC_H_
