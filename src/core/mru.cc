#include "core/mru.h"

namespace lruk {

void MruPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "RecordAccess on a non-resident page");
  recency_.splice(recency_.begin(), recency_, it->second.pos);
}

void MruPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  recency_.push_front(p);
  entries_.emplace(p, Entry{recency_.begin(), /*evictable=*/true});
  ++evictable_count_;
}

std::optional<PageId> MruPolicy::Evict() {
  for (auto it = recency_.begin(); it != recency_.end(); ++it) {
    auto entry_it = entries_.find(*it);
    if (!entry_it->second.evictable) continue;
    PageId victim = *it;
    recency_.erase(it);
    entries_.erase(entry_it);
    --evictable_count_;
    return victim;
  }
  return std::nullopt;
}

void MruPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) --evictable_count_;
  recency_.erase(it->second.pos);
  entries_.erase(it);
}

void MruPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable != evictable) {
    it->second.evictable = evictable;
    evictable_count_ += evictable ? 1 : -1;
  }
}


void MruPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
