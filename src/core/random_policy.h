// RANDOM: evicts a uniformly random evictable page. The memoryless control
// baseline — any policy worth its bookkeeping must beat it on skewed
// workloads.

#ifndef LRUK_CORE_RANDOM_POLICY_H_
#define LRUK_CORE_RANDOM_POLICY_H_

#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/replacement_policy.h"
#include "util/random.h"

namespace lruk {

// O(1) per operation via the swap-with-last vector trick.
class RandomPolicy final : public ReplacementPolicy {
 public:
  explicit RandomPolicy(uint64_t seed = 0xC0FFEE);

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return evictable_.size(); }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "RANDOM"; }

 private:
  struct Entry {
    // Index into evictable_, or SIZE_MAX when pinned.
    size_t slot = SIZE_MAX;
  };

  void RemoveFromEvictable(Entry& entry);

  RandomEngine rng_;
  std::vector<PageId> evictable_;
  std::unordered_map<PageId, Entry> entries_;
};

}  // namespace lruk

#endif  // LRUK_CORE_RANDOM_POLICY_H_
