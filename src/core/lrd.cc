#include "core/lrd.h"

namespace lruk {

LrdPolicy::LrdPolicy(LrdOptions options) : options_(options) {
  LRUK_ASSERT(options_.aging_divisor >= 1, "aging divisor must be >= 1");
}

void LrdPolicy::Tick() {
  ++clock_;
  if (options_.aging_interval != 0 && clock_ % options_.aging_interval == 0) {
    for (auto& [page, entry] : entries_) {
      entry.reference_count /= options_.aging_divisor;
    }
  }
}

double LrdPolicy::DensityOf(const Entry& entry) const {
  uint64_t age = clock_ - entry.admitted_at;
  if (age == 0) age = 1;  // Admitted this tick; avoid division by zero.
  return static_cast<double>(entry.reference_count) /
         static_cast<double>(age);
}

double LrdPolicy::Density(PageId p) const {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Density of a non-resident page");
  return DensityOf(it->second);
}

void LrdPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "RecordAccess on a non-resident page");
  Tick();
  ++it->second.reference_count;
}

void LrdPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  Tick();
  entries_.emplace(
      p, Entry{/*reference_count=*/1, /*admitted_at=*/clock_ - 1,
               /*evictable=*/true});
  ++evictable_count_;
}

std::optional<PageId> LrdPolicy::Evict() {
  const Entry* best = nullptr;
  PageId victim = kInvalidPageId;
  double best_density = 0.0;
  for (const auto& [page, entry] : entries_) {
    if (!entry.evictable) continue;
    double d = DensityOf(entry);
    // Ties broken by smaller page id for determinism.
    if (best == nullptr || d < best_density ||
        (d == best_density && page < victim)) {
      best = &entry;
      victim = page;
      best_density = d;
    }
  }
  if (best == nullptr) return std::nullopt;
  entries_.erase(victim);
  --evictable_count_;
  return victim;
}

void LrdPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) --evictable_count_;
  entries_.erase(it);
}

void LrdPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable != evictable) {
    it->second.evictable = evictable;
    evictable_count_ += evictable ? 1 : -1;
  }
}


void LrdPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
