#include "core/policy_factory.h"

#include <algorithm>
#include <cctype>

#include "core/a0.h"
#include "core/arc.h"
#include "core/belady.h"
#include "core/clock_policy.h"
#include "core/fifo.h"
#include "core/lru.h"
#include "core/mru.h"
#include "core/random_policy.h"

namespace lruk {

Result<std::unique_ptr<ReplacementPolicy>> MakePolicy(
    const PolicyConfig& config, const PolicyContext& context) {
  switch (config.kind) {
    case PolicyKind::kLru:
      return std::unique_ptr<ReplacementPolicy>(new LruPolicy());
    case PolicyKind::kLruK: {
      LruKOptions options = config.lru_k;
      if (options.capacity_hint == 0) options.capacity_hint = context.capacity;
      return std::unique_ptr<ReplacementPolicy>(new LruKPolicy(options));
    }
    case PolicyKind::kLfu:
      return std::unique_ptr<ReplacementPolicy>(new LfuPolicy(config.lfu));
    case PolicyKind::kFifo:
      return std::unique_ptr<ReplacementPolicy>(new FifoPolicy());
    case PolicyKind::kClock:
      return std::unique_ptr<ReplacementPolicy>(new ClockPolicy());
    case PolicyKind::kGClock:
      return std::unique_ptr<ReplacementPolicy>(
          new GClockPolicy(config.gclock));
    case PolicyKind::kLrd:
      return std::unique_ptr<ReplacementPolicy>(new LrdPolicy(config.lrd));
    case PolicyKind::kMru:
      return std::unique_ptr<ReplacementPolicy>(new MruPolicy());
    case PolicyKind::kRandom:
      return std::unique_ptr<ReplacementPolicy>(
          new RandomPolicy(config.random_seed));
    case PolicyKind::kTwoQ: {
      TwoQOptions options = config.two_q;
      if (options.capacity == 0) options.capacity = context.capacity;
      if (options.capacity == 0) {
        return Status::InvalidArgument(
            "2Q needs a capacity (set PolicyContext::capacity)");
      }
      return std::unique_ptr<ReplacementPolicy>(new TwoQPolicy(options));
    }
    case PolicyKind::kArc: {
      size_t capacity =
          config.arc_capacity != 0 ? config.arc_capacity : context.capacity;
      if (capacity == 0) {
        return Status::InvalidArgument(
            "ARC needs a capacity (set PolicyContext::capacity)");
      }
      return std::unique_ptr<ReplacementPolicy>(new ArcPolicy(capacity));
    }
    case PolicyKind::kDomainSeparation:
      if (config.domain_separation.classifier == nullptr ||
          config.domain_separation.domain_capacities.empty()) {
        return Status::InvalidArgument(
            "domain separation needs a classifier and domain capacities");
      }
      return std::unique_ptr<ReplacementPolicy>(
          new DomainSeparationPolicy(config.domain_separation));
    case PolicyKind::kA0:
      if (context.probabilities.empty()) {
        return Status::InvalidArgument(
            "A0 needs the true probability vector "
            "(set PolicyContext::probabilities)");
      }
      return std::unique_ptr<ReplacementPolicy>(
          new A0Policy(context.probabilities));
    case PolicyKind::kBelady:
      if (context.trace.empty()) {
        return Status::InvalidArgument(
            "Belady needs the future trace (set PolicyContext::trace)");
      }
      return std::unique_ptr<ReplacementPolicy>(
          new BeladyPolicy(context.trace));
  }
  return Status::Internal("unhandled policy kind");
}

Result<ShardPolicyFactory> MakeShardPolicyFactory(const PolicyConfig& config,
                                                  PolicyContext context) {
  // Probe-build once with a stand-in capacity (shards always have >= 1
  // frame) so config errors are reported now, as a Status.
  PolicyContext probe = context;
  if (probe.capacity == 0) probe.capacity = 1;
  auto trial = MakePolicy(config, probe);
  if (!trial.ok()) return trial.status();

  return ShardPolicyFactory(
      [config, context](size_t /*shard_index*/, size_t shard_capacity) {
        PolicyContext shard_context = context;
        shard_context.capacity = shard_capacity;
        auto policy = MakePolicy(config, shard_context);
        LRUK_ASSERT(policy.ok(),
                    "validated policy config failed to build for a shard");
        return std::move(*policy);
      });
}

std::optional<PolicyConfig> ParsePolicyName(const std::string& name) {
  std::string upper(name.size(), '\0');
  std::transform(name.begin(), name.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });

  if (upper == "LRU" || upper == "LRU-1") return PolicyConfig::Lru();
  if (upper.rfind("LRU-", 0) == 0) {
    int k = 0;
    for (size_t i = 4; i < upper.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(upper[i]))) {
        return std::nullopt;
      }
      k = k * 10 + (upper[i] - '0');
    }
    // Inline history storage bounds K (see kMaxHistoryK); the paper never
    // goes past K = 3 anyway.
    if (k < 1 || k > kMaxHistoryK) return std::nullopt;
    return PolicyConfig::LruK(k);
  }
  if (upper == "LFU") return PolicyConfig::Lfu();
  if (upper == "FIFO") return PolicyConfig::Of(PolicyKind::kFifo);
  if (upper == "CLOCK") return PolicyConfig::Of(PolicyKind::kClock);
  if (upper == "GCLOCK") return PolicyConfig::Of(PolicyKind::kGClock);
  if (upper == "LRD" || upper == "LRD-V1") {
    return PolicyConfig::Of(PolicyKind::kLrd);
  }
  if (upper == "LRD-V2") {
    PolicyConfig c = PolicyConfig::Of(PolicyKind::kLrd);
    c.lrd.aging_interval = 10000;
    return c;
  }
  if (upper == "MRU") return PolicyConfig::Of(PolicyKind::kMru);
  if (upper == "RANDOM") return PolicyConfig::Of(PolicyKind::kRandom);
  if (upper == "2Q" || upper == "TWOQ") return PolicyConfig::TwoQ();
  if (upper == "ARC") return PolicyConfig::Arc();
  if (upper == "A0") return PolicyConfig::A0();
  if (upper == "B0" || upper == "BELADY" || upper == "OPT") {
    return PolicyConfig::Belady();
  }
  return std::nullopt;
}

}  // namespace lruk
