#include "core/policy_factory.h"

#include <algorithm>
#include <cctype>

#include "core/a0.h"
#include "core/adaptive_policy.h"
#include "core/arc.h"
#include "core/belady.h"
#include "core/clock_policy.h"
#include "core/fifo.h"
#include "core/lru.h"
#include "core/mru.h"
#include "core/random_policy.h"

namespace lruk {

Result<std::unique_ptr<ReplacementPolicy>> MakePolicy(
    const PolicyConfig& config, const PolicyContext& context) {
  switch (config.kind) {
    case PolicyKind::kLru:
      return std::unique_ptr<ReplacementPolicy>(new LruPolicy());
    case PolicyKind::kLruK: {
      LruKOptions options = config.lru_k;
      if (options.capacity_hint == 0) options.capacity_hint = context.capacity;
      return std::unique_ptr<ReplacementPolicy>(new LruKPolicy(options));
    }
    case PolicyKind::kLfu:
      return std::unique_ptr<ReplacementPolicy>(new LfuPolicy(config.lfu));
    case PolicyKind::kFifo:
      return std::unique_ptr<ReplacementPolicy>(new FifoPolicy());
    case PolicyKind::kClock:
      return std::unique_ptr<ReplacementPolicy>(new ClockPolicy());
    case PolicyKind::kGClock:
      return std::unique_ptr<ReplacementPolicy>(
          new GClockPolicy(config.gclock));
    case PolicyKind::kLrd:
      return std::unique_ptr<ReplacementPolicy>(new LrdPolicy(config.lrd));
    case PolicyKind::kMru:
      return std::unique_ptr<ReplacementPolicy>(new MruPolicy());
    case PolicyKind::kRandom:
      return std::unique_ptr<ReplacementPolicy>(
          new RandomPolicy(config.random_seed));
    case PolicyKind::kTwoQ: {
      TwoQOptions options = config.two_q;
      if (options.capacity == 0) options.capacity = context.capacity;
      if (options.capacity == 0) {
        return Status::InvalidArgument(
            "2Q needs a capacity (set PolicyContext::capacity)");
      }
      return std::unique_ptr<ReplacementPolicy>(new TwoQPolicy(options));
    }
    case PolicyKind::kArc: {
      size_t capacity =
          config.arc_capacity != 0 ? config.arc_capacity : context.capacity;
      if (capacity == 0) {
        return Status::InvalidArgument(
            "ARC needs a capacity (set PolicyContext::capacity)");
      }
      return std::unique_ptr<ReplacementPolicy>(new ArcPolicy(capacity));
    }
    case PolicyKind::kDomainSeparation:
      if (config.domain_separation.classifier == nullptr ||
          config.domain_separation.domain_capacities.empty()) {
        return Status::InvalidArgument(
            "domain separation needs a classifier and domain capacities");
      }
      return std::unique_ptr<ReplacementPolicy>(
          new DomainSeparationPolicy(config.domain_separation));
    case PolicyKind::kA0:
      if (context.probabilities.empty()) {
        return Status::InvalidArgument(
            "A0 needs the true probability vector "
            "(set PolicyContext::probabilities)");
      }
      return std::unique_ptr<ReplacementPolicy>(
          new A0Policy(context.probabilities));
    case PolicyKind::kBelady:
      if (context.trace.empty()) {
        return Status::InvalidArgument(
            "Belady needs the future trace (set PolicyContext::trace)");
      }
      return std::unique_ptr<ReplacementPolicy>(
          new BeladyPolicy(context.trace));
    case PolicyKind::kAdaptive: {
      const AdaptiveConfig& ac = config.adaptive;
      if (ac.experts.empty()) {
        return Status::InvalidArgument(
            "adaptive policy needs at least one expert");
      }
      if (context.capacity == 0) {
        return Status::InvalidArgument(
            "adaptive policy needs a capacity for its ghost caches "
            "(set PolicyContext::capacity)");
      }
      std::vector<AdaptiveExpert> experts;
      experts.reserve(ac.experts.size());
      for (size_t i = 0; i < ac.experts.size(); ++i) {
        if (ac.experts[i].kind == PolicyKind::kAdaptive) {
          return Status::InvalidArgument(
              "adaptive experts cannot nest another adaptive policy");
        }
        auto live = MakePolicy(ac.experts[i], context);
        if (!live.ok()) return live.status();
        auto ghost = MakePolicy(ac.experts[i], context);
        if (!ghost.ok()) return ghost.status();
        std::string name = i < ac.expert_names.size() && !ac.expert_names[i].empty()
                               ? ac.expert_names[i]
                               : std::string((*live)->Name());
        experts.push_back(
            {std::move(name), std::move(*live), std::move(*ghost)});
      }
      AdaptivePolicyOptions options;
      options.capacity = context.capacity;
      options.window_refs = ac.window_refs;
      options.window_buckets = ac.window_buckets;
      options.switch_margin = ac.switch_margin;
      options.min_window_misses = ac.min_window_misses;
      options.cooldown_refs = ac.cooldown_refs;
      options.tune_lruk = ac.tune_lruk;
      options.tune_interval = ac.tune_interval;
      return std::unique_ptr<ReplacementPolicy>(
          new AdaptivePolicy(std::move(experts), options));
    }
  }
  return Status::Internal("unhandled policy kind");
}

Result<ShardPolicyFactory> MakeShardPolicyFactory(const PolicyConfig& config,
                                                  PolicyContext context) {
  // Probe-build once with a stand-in capacity (shards always have >= 1
  // frame) so config errors are reported now, as a Status.
  PolicyContext probe = context;
  if (probe.capacity == 0) probe.capacity = 1;
  auto trial = MakePolicy(config, probe);
  if (!trial.ok()) return trial.status();

  return ShardPolicyFactory(
      [config, context](size_t /*shard_index*/, size_t shard_capacity) {
        PolicyContext shard_context = context;
        shard_context.capacity = shard_capacity;
        auto policy = MakePolicy(config, shard_context);
        LRUK_ASSERT(policy.ok(),
                    "validated policy config failed to build for a shard");
        return std::move(*policy);
      });
}

namespace {

std::string UpperCopy(const std::string& s) {
  std::string upper(s.size(), '\0');
  std::transform(s.begin(), s.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return upper;
}

// Parses the digits of "LRU-<K>" / "LRUK<K>". `token` is the original
// (pre-uppercasing) text, quoted verbatim in error messages.
Result<PolicyConfig> ParseLruKDepth(const std::string& token,
                                    const std::string& digits) {
  if (digits.empty()) {
    return Status::InvalidArgument("policy token '" + token +
                                   "': missing LRU-K depth");
  }
  int k = 0;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("policy token '" + token +
                                     "': malformed LRU-K depth '" + digits +
                                     "'");
    }
    if (k <= kMaxHistoryK) k = k * 10 + (c - '0');
  }
  // Inline history storage bounds K (see kMaxHistoryK); the paper never
  // goes past K = 3 anyway.
  if (k < 1 || k > kMaxHistoryK) {
    return Status::InvalidArgument(
        "policy token '" + token + "': LRU-K depth must be between 1 and " +
        std::to_string(kMaxHistoryK));
  }
  return PolicyConfig::LruK(k);
}

// Parses one simple (non-adaptive) policy token.
Result<PolicyConfig> ParseSimpleToken(const std::string& token) {
  std::string upper = UpperCopy(token);
  if (upper == "LRU" || upper == "LRU-1" || upper == "LRUK1") {
    return PolicyConfig::Lru();
  }
  if (upper.rfind("LRU-", 0) == 0) {
    return ParseLruKDepth(token, upper.substr(4));
  }
  // Compact form used inside adaptive specs ("lruk2"), accepted anywhere.
  if (upper.rfind("LRUK", 0) == 0 && upper.size() > 4) {
    return ParseLruKDepth(token, upper.substr(4));
  }
  if (upper == "LFU") return PolicyConfig::Lfu();
  if (upper == "FIFO") return PolicyConfig::Of(PolicyKind::kFifo);
  if (upper == "CLOCK") return PolicyConfig::Of(PolicyKind::kClock);
  if (upper == "GCLOCK") return PolicyConfig::Of(PolicyKind::kGClock);
  if (upper == "LRD" || upper == "LRD-V1") {
    return PolicyConfig::Of(PolicyKind::kLrd);
  }
  if (upper == "LRD-V2") {
    PolicyConfig c = PolicyConfig::Of(PolicyKind::kLrd);
    c.lrd.aging_interval = 10000;
    return c;
  }
  if (upper == "MRU") return PolicyConfig::Of(PolicyKind::kMru);
  if (upper == "RANDOM") return PolicyConfig::Of(PolicyKind::kRandom);
  if (upper == "2Q" || upper == "TWOQ") return PolicyConfig::TwoQ();
  if (upper == "ARC") return PolicyConfig::Arc();
  if (upper == "A0") return PolicyConfig::A0();
  if (upper == "B0" || upper == "BELADY" || upper == "OPT") {
    return PolicyConfig::Belady();
  }
  return Status::InvalidArgument("unknown policy name '" + token + "'");
}

}  // namespace

Result<PolicyConfig> ParsePolicySpec(const std::string& spec) {
  const std::string upper = UpperCopy(spec);
  constexpr std::string_view kAdaptivePrefix = "ADAPTIVE:";
  constexpr std::string_view kTunedPrefix = "ADAPTIVE-TUNED:";
  size_t prefix = 0;
  bool tuned = false;
  if (upper.rfind(kAdaptivePrefix, 0) == 0) {
    prefix = kAdaptivePrefix.size();
  } else if (upper.rfind(kTunedPrefix, 0) == 0) {
    prefix = kTunedPrefix.size();
    tuned = true;
  } else if (upper.rfind("ADAPTIVE", 0) == 0) {
    return Status::InvalidArgument(
        "adaptive spec '" + spec +
        "' must list experts as 'adaptive:<e1>+<e2>+...' "
        "(or 'adaptive-tuned:' for online CRP/RIP tuning)");
  } else {
    return ParseSimpleToken(spec);
  }

  PolicyConfig config = PolicyConfig::Of(PolicyKind::kAdaptive);
  config.adaptive.tune_lruk = tuned;
  const std::string list = spec.substr(prefix);
  if (list.empty()) {
    return Status::InvalidArgument("adaptive spec '" + spec +
                                   "' lists no experts");
  }
  std::vector<std::string> seen;
  size_t start = 0;
  while (start <= list.size()) {
    size_t plus = list.find('+', start);
    std::string token = list.substr(
        start, plus == std::string::npos ? std::string::npos : plus - start);
    start = plus == std::string::npos ? list.size() + 1 : plus + 1;
    if (token.empty()) {
      return Status::InvalidArgument("adaptive spec '" + spec +
                                     "' has an empty expert token");
    }
    if (UpperCopy(token).rfind("ADAPTIVE", 0) == 0) {
      return Status::InvalidArgument("adaptive spec '" + spec +
                                     "': expert '" + token +
                                     "' nests another adaptive policy");
    }
    auto expert = ParseSimpleToken(token);
    if (!expert.ok()) {
      return Status::InvalidArgument("adaptive spec '" + spec + "': " +
                                     std::string(expert.status().message()));
    }
    if (expert->kind == PolicyKind::kA0 ||
        expert->kind == PolicyKind::kBelady) {
      return Status::InvalidArgument(
          "adaptive spec '" + spec + "': expert '" + token +
          "' needs oracle context (A0/Belady cannot be ghost-simulated)");
    }
    // Canonical duplicate check: "2q" and "twoq" are the same expert.
    std::string canonical =
        std::to_string(static_cast<int>(expert->kind)) + "/" +
        std::to_string(expert->lru_k.k) + "/" +
        std::to_string(expert->lrd.aging_interval);
    if (std::find(seen.begin(), seen.end(), canonical) != seen.end()) {
      return Status::InvalidArgument("adaptive spec '" + spec +
                                     "': duplicate expert '" + token + "'");
    }
    seen.push_back(canonical);
    config.adaptive.experts.push_back(std::move(*expert));
    config.adaptive.expert_names.push_back(token);
  }
  return config;
}

std::optional<PolicyConfig> ParsePolicyName(const std::string& name) {
  auto parsed = ParsePolicySpec(name);
  if (!parsed.ok()) return std::nullopt;
  return std::move(*parsed);
}

}  // namespace lruk
