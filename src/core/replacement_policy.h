// The page replacement policy abstraction.
//
// A policy tracks the set of buffer-resident pages and chooses eviction
// victims. It owns its own logical clock: every RecordAccess/Admit call is
// one tick, matching the paper's convention that time is the index into the
// reference string.
//
// Contract (shared by the CacheSimulator and the BufferPool):
//
//   hit:   policy->RecordAccess(p, type);
//   miss:  if (need room) victim = policy->Evict();   // then write back
//          policy->Admit(p, type);                    // p becomes resident
//
// Admit() also counts as the reference to p (one tick), so a trace of T
// references always advances the clock exactly T times regardless of the
// hit/miss split.
//
// Pinning: SetEvictable(p, false) removes p from Evict()'s candidate set
// without forgetting its statistics; the buffer pool pins pages while user
// code holds them. Policies driven by a simulator never see pins.

#ifndef LRUK_CORE_REPLACEMENT_POLICY_H_
#define LRUK_CORE_REPLACEMENT_POLICY_H_

#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "core/meta_stats.h"
#include "core/types.h"
#include "util/macros.h"

namespace lruk {

class ReplacementPolicy {
 public:
  ReplacementPolicy() = default;
  virtual ~ReplacementPolicy() = default;
  LRUK_DISALLOW_COPY_AND_MOVE(ReplacementPolicy);

  // Announces which process issues the next RecordAccess/Admit. Policies
  // that implement per-process correlated-reference handling (LRU-K with
  // per_process_correlation) consume it; the default ignores it, matching
  // the paper's simplifying assumption that "references are not
  // distinguished by process".
  virtual void SetReferencingProcess(uint32_t /*process*/) {}

  // Announces that `p` is about to be admitted (the page that faulted).
  // Callers invoke this before Evict() on the miss path so policies whose
  // victim choice depends on the incoming page (ARC's ghost-directed
  // REPLACE, domain-separated partitions) can see it. Default: no-op;
  // most policies choose victims independently of the newcomer.
  virtual void PrepareAdmit(PageId /*p*/) {}

  // Records a reference to the resident page `p`. Precondition:
  // IsResident(p). One clock tick.
  virtual void RecordAccess(PageId p, AccessType type) = 0;

  // Applies `n` deferred references in order, each one clock tick, with
  // the same outcome as calling SetReferencingProcess + RecordAccess per
  // record. Precondition: every record's page is resident. Buffer pools
  // with batched access recording drain their AccessBuffer through this
  // entry point; policies may override it to exploit batch locality.
  virtual void RecordAccessBatch(const AccessRecord* records, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      SetReferencingProcess(records[i].process);
      RecordAccess(records[i].page, records[i].type);
    }
  }

  // Makes `p` resident and records the reference that faulted it in.
  // Precondition: !IsResident(p). One clock tick. The caller is responsible
  // for having created room (Evict) first; policies do not enforce a
  // capacity themselves.
  virtual void Admit(PageId p, AccessType type) = 0;

  // Selects a victim among evictable resident pages, removes it from the
  // resident set, and returns it. Returns nullopt when no page is
  // evictable. Does not tick the clock.
  virtual std::optional<PageId> Evict() = 0;

  // Batch victim nomination: pops up to `k` victims in exactly the order
  // repeated Evict() calls would return them, appends them to `*out`
  // (cleared first), and returns how many were nominated. Callers that
  // must skip ineligible nominees (pinned frames on the latch-free hit
  // path, the flusher's clean-peek) use this to nominate once instead of
  // paying an Evict/Restore round-trip per skipped candidate; every
  // nominee the caller does not consume must still be handed back via
  // Restore, in reverse nomination order (a consumed nominee simply
  // stays evicted mid-sequence). The default is a literal Evict() loop;
  // policies that retain history on eviction (LRU-K) override it to defer
  // that retention until the nominations settle, so a nominate-then-
  // Restore round trip no longer churns the retained-history budget.
  virtual size_t EvictBatch(size_t k, std::vector<PageId>* out) {
    out->clear();
    while (out->size() < k) {
      std::optional<PageId> victim = Evict();
      if (!victim.has_value()) break;
      out->push_back(*victim);
    }
    return out->size();
  }

  // Re-registers a page Evict() returned, because the eviction's side
  // effects failed (the dirty write-back errored) or were provisional (a
  // flusher peek; a write-behind victim write still in flight).
  // Precondition: !IsResident(p) and p was returned by Evict() with no
  // intervening Admit/Restore of p. Afterwards p is resident and
  // evictable again, as if Evict() had never chosen it. Callers use this
  // immediately (synchronous write-back failure), in LIFO order over a
  // batch (the flusher's Evict×k peek), or DELAYED — a failed
  // write-behind write re-admits its page after unrelated admissions and
  // evictions have happened. The default costs one clock tick by
  // re-admitting; policies that retain history (LRU-K) override it to
  // restore exactly from the retained block, without a tick (falling back
  // to a fresh re-admission if the history budget has since dropped it).
  virtual void Restore(PageId p) { Admit(p, AccessType::kRead); }

  // Forgets the resident page `p` without an eviction decision (e.g. the
  // containing object was deleted). Precondition: IsResident(p).
  virtual void Remove(PageId p) = 0;

  // Marks `p` (resident) as evictable or pinned. Newly admitted pages are
  // evictable. Precondition: IsResident(p).
  virtual void SetEvictable(PageId p, bool evictable) = 0;

  // Number of resident pages tracked by the policy.
  virtual size_t ResidentCount() const = 0;

  // Number of resident pages currently eligible for Evict().
  virtual size_t EvictableCount() const = 0;

  virtual bool IsResident(PageId p) const = 0;

  // Invokes `visit` for every resident page, in unspecified order. Used
  // for buffer-composition statistics; not a hot path.
  virtual void ForEachResident(
      const std::function<void(PageId)>& visit) const = 0;

  // Stable human-readable policy name ("LRU-2", "LFU", ...).
  virtual std::string_view Name() const = 0;

  // Meta-policy counters (per-expert regret, switch counts). Plain policies
  // report a default snapshot with `adaptive == false`; the adaptive
  // meta-policy overrides this. Pools surface it next to their own stats.
  virtual MetaPolicyStats GetMetaStats() const { return {}; }
};

}  // namespace lruk

#endif  // LRUK_CORE_REPLACEMENT_POLICY_H_
