#include "core/domain_separation.h"

#include <utility>

namespace lruk {

DomainSeparationPolicy::DomainSeparationPolicy(
    DomainSeparationOptions options)
    : options_(std::move(options)) {
  LRUK_ASSERT(options_.classifier != nullptr,
              "domain separation needs a classifier");
  LRUK_ASSERT(!options_.domain_capacities.empty(),
              "domain separation needs at least one domain");
  for (size_t capacity : options_.domain_capacities) {
    LRUK_ASSERT(capacity >= 1, "every domain needs at least one frame");
    domains_.push_back(std::make_unique<LruPolicy>());
  }
}

uint32_t DomainSeparationPolicy::DomainOf(PageId p) const {
  uint32_t domain = options_.classifier(p);
  LRUK_ASSERT(domain < domains_.size(), "classifier returned a bad domain");
  return domain;
}

void DomainSeparationPolicy::RecordAccess(PageId p, AccessType type) {
  domains_[DomainOf(p)]->RecordAccess(p, type);
}

void DomainSeparationPolicy::Admit(PageId p, AccessType type) {
  if (pending_ == p) pending_.reset();
  uint32_t domain = DomainOf(p);
  LruPolicy& lru = *domains_[domain];
  if (lru.ResidentCount() == options_.domain_capacities[domain]) {
    // The domain is full even though the pool as a whole may not be: evict
    // within the domain (the whole point of Reiter's scheme).
    auto victim = lru.Evict();
    LRUK_ASSERT(victim.has_value(), "domain full but nothing evictable");
    internal_evictions_.push_back(*victim);
  }
  lru.Admit(p, type);
}

std::optional<PageId> DomainSeparationPolicy::Evict() {
  // Preferred victim: the faulting page's own domain (announced via
  // PrepareAdmit); domains at capacity otherwise.
  if (pending_.has_value()) {
    uint32_t domain = DomainOf(*pending_);
    if (auto victim = domains_[domain]->Evict()) return victim;
  }
  for (size_t d = 0; d < domains_.size(); ++d) {
    if (domains_[d]->ResidentCount() >= options_.domain_capacities[d]) {
      if (auto victim = domains_[d]->Evict()) return victim;
    }
  }
  for (auto& domain : domains_) {
    if (auto victim = domain->Evict()) return victim;
  }
  return std::nullopt;
}

void DomainSeparationPolicy::Remove(PageId p) {
  domains_[DomainOf(p)]->Remove(p);
}

void DomainSeparationPolicy::SetEvictable(PageId p, bool evictable) {
  domains_[DomainOf(p)]->SetEvictable(p, evictable);
}

size_t DomainSeparationPolicy::ResidentCount() const {
  size_t total = 0;
  for (const auto& domain : domains_) total += domain->ResidentCount();
  return total;
}

size_t DomainSeparationPolicy::EvictableCount() const {
  size_t total = 0;
  for (const auto& domain : domains_) total += domain->EvictableCount();
  return total;
}

bool DomainSeparationPolicy::IsResident(PageId p) const {
  return domains_[DomainOf(p)]->IsResident(p);
}

void DomainSeparationPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& domain : domains_) domain->ForEachResident(visit);
}

std::vector<PageId> DomainSeparationPolicy::TakeInternalEvictions() {
  return std::exchange(internal_evictions_, {});
}

size_t DomainSeparationPolicy::DomainResidentCount(uint32_t domain) const {
  LRUK_ASSERT(domain < domains_.size(), "bad domain index");
  return domains_[domain]->ResidentCount();
}

}  // namespace lruk
