#include "core/belady.h"

#include <unordered_map>
#include <utility>

namespace lruk {

BeladyPolicy::BeladyPolicy(std::vector<PageId> trace)
    : trace_(std::move(trace)) {
  // Backward pass: next_occurrence_[i] = next position referencing the same
  // page, computed in O(T) with a page -> latest position map.
  next_occurrence_.assign(trace_.size(), kNever);
  std::unordered_map<PageId, uint64_t> latest;
  latest.reserve(trace_.size() / 4 + 1);
  for (size_t i = trace_.size(); i-- > 0;) {
    auto it = latest.find(trace_[i]);
    if (it != latest.end()) next_occurrence_[i] = it->second;
    latest[trace_[i]] = i;
  }
}

uint64_t BeladyPolicy::ConsumeReference(PageId p) {
  LRUK_ASSERT(pos_ < trace_.size(), "reference past the end of the trace");
  LRUK_ASSERT(trace_[pos_] == p,
              "reference stream diverged from the oracle trace");
  uint64_t next = next_occurrence_[pos_];
  ++pos_;
  return next;
}

void BeladyPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "RecordAccess on a non-resident page");
  uint64_t next = ConsumeReference(p);
  if (it->second.evictable) {
    order_.erase(OrderKey{it->second.next_use, p});
    order_.insert(OrderKey{next, p});
  }
  it->second.next_use = next;
}

void BeladyPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  uint64_t next = ConsumeReference(p);
  entries_.emplace(p, Entry{next, /*evictable=*/true});
  order_.insert(OrderKey{next, p});
}

std::optional<PageId> BeladyPolicy::Evict() {
  if (order_.empty()) return std::nullopt;
  // Victim: farthest next use (kNever — never referenced again — first).
  auto it = std::prev(order_.end());
  PageId victim = it->page;
  order_.erase(it);
  entries_.erase(victim);
  return victim;
}

void BeladyPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) order_.erase(OrderKey{it->second.next_use, p});
  entries_.erase(it);
}

void BeladyPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable == evictable) return;
  if (evictable) {
    order_.insert(OrderKey{it->second.next_use, p});
  } else {
    order_.erase(OrderKey{it->second.next_use, p});
  }
  it->second.evictable = evictable;
}


void BeladyPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
