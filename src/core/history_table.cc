#include "core/history_table.h"

#include <algorithm>

namespace lruk {

HistoryTable::HistoryTable(int k, Timestamp retained_information_period,
                           size_t max_nonresident_blocks,
                           size_t capacity_hint)
    : k_(k),
      rip_(retained_information_period),
      max_nonresident_(max_nonresident_blocks) {
  LRUK_ASSERT(k >= 1, "LRU-K requires K >= 1");
  if (capacity_hint > 0) {
    // Resident blocks plus an equal measure of history-only headroom; the
    // table keeps growing past this if the retained set demands it.
    blocks_.reserve(capacity_hint * 2);
  }
}

HistoryBlock* HistoryTable::Find(PageId p) {
  auto it = blocks_.find(p);
  return it == blocks_.end() ? nullptr : &it->second;
}

const HistoryBlock* HistoryTable::Find(PageId p) const {
  auto it = blocks_.find(p);
  return it == blocks_.end() ? nullptr : &it->second;
}

bool HistoryTable::Expired(const HistoryBlock& block, Timestamp now) const {
  if (rip_ == kInfinitePeriod || block.resident) return false;
  return now > block.last && (now - block.last) > rip_;
}

HistoryBlock& HistoryTable::GetOrCreate(PageId p, Timestamp now,
                                        bool* had_history) {
  auto [it, inserted] = blocks_.try_emplace(p, k_);
  if (inserted) {
    *had_history = false;
    return it->second;
  }
  if (!it->second.resident) {
    // The page is coming back into the buffer: it stops being a
    // history-only block (the caller marks it resident).
    nonresident_.erase({it->second.last, p});
  }
  if (Expired(it->second, now)) {
    // The demon would have purged this block already; treat it as absent.
    it->second = HistoryBlock(k_);
    *had_history = false;
  } else {
    *had_history = true;
  }
  return it->second;
}

void HistoryTable::OnEvicted(PageId p, HistoryBlock& block) {
  LRUK_ASSERT(block.resident, "OnEvicted on a non-resident block");
  block.resident = false;
  nonresident_.insert({block.last, p});
  // Enforce the history budget: drop the longest-idle history-only block
  // (possibly the one just evicted, if everything else is fresher).
  while (max_nonresident_ != 0 && nonresident_.size() > max_nonresident_) {
    auto oldest = nonresident_.begin();
    PageId victim = oldest->second;
    nonresident_.erase(oldest);
    blocks_.erase(victim);
  }
}

void HistoryTable::Erase(PageId p) {
  auto it = blocks_.find(p);
  if (it == blocks_.end()) return;
  if (!it->second.resident) nonresident_.erase({it->second.last, p});
  blocks_.erase(it);
}

size_t HistoryTable::PurgeExpired(Timestamp now) {
  if (rip_ == kInfinitePeriod) return 0;
  size_t purged = 0;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (Expired(it->second, now)) {
      nonresident_.erase({it->second.last, it->first});
      it = blocks_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

}  // namespace lruk
