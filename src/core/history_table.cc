#include "core/history_table.h"

#include <algorithm>

namespace lruk {

namespace {
size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

HistoryTable::HistoryTable(int k, Timestamp retained_information_period,
                           size_t max_nonresident_blocks,
                           size_t capacity_hint)
    : k_(k),
      rip_(retained_information_period),
      max_nonresident_(max_nonresident_blocks) {
  LRUK_ASSERT(k >= 1 && k <= kMaxHistoryK,
              "LRU-K requires 1 <= K <= kMaxHistoryK");
  // Resident blocks plus history-only headroom, kept under the ~0.7 load
  // cap without growing; 16 slots minimum so tiny tables do not rehash on
  // their first few inserts. The table keeps growing past this if the
  // retained set demands it.
  size_t initial = RoundUpPowerOfTwo(
      std::max<size_t>(16, capacity_hint * 3));
  slots_.assign(initial, Slot{});
  mask_ = initial - 1;
}

size_t HistoryTable::FindSlot(PageId p) const {
  size_t i = IdealSlot(p);
  for (;;) {
    if (slots_[i].page == p) return i;
    if (slots_[i].page == kInvalidPageId) return kNpos;
    i = (i + 1) & mask_;
  }
}

void HistoryTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.page == kInvalidPageId) continue;
    size_t i = IdealSlot(s.page);
    while (slots_[i].page != kInvalidPageId) i = (i + 1) & mask_;
    slots_[i] = s;
  }
}

void HistoryTable::InsertSlot(PageId p, HistoryBlock* block) {
  if ((size_ + 1) * 10 > slots_.size() * 7) Grow();
  size_t i = IdealSlot(p);
  while (slots_[i].page != kInvalidPageId) i = (i + 1) & mask_;
  slots_[i].page = p;
  slots_[i].block = block;
  ++size_;
}

void HistoryTable::EraseSlotAt(size_t i) {
  // Backward-shift deletion: refill the hole with the next probe-chain
  // entry that may legally move there (its ideal slot is not cyclically
  // inside (i, j]), repeating until the chain ends at an empty slot.
  size_t j = i;
  for (;;) {
    slots_[i] = Slot{};
    for (;;) {
      j = (j + 1) & mask_;
      if (slots_[j].page == kInvalidPageId) return;
      size_t ideal = IdealSlot(slots_[j].page);
      bool stuck = (i <= j) ? (i < ideal && ideal <= j)
                            : (i < ideal || ideal <= j);
      if (!stuck) break;
    }
    slots_[i] = slots_[j];
    i = j;
  }
}

HistoryBlock* HistoryTable::AllocateBlock() {
  if (free_blocks_.empty()) {
    chunks_.push_back(std::make_unique<HistoryBlock[]>(kChunkBlocks));
    HistoryBlock* base = chunks_.back().get();
    free_blocks_.reserve(kChunkBlocks);
    for (size_t i = kChunkBlocks; i > 0; --i) {
      free_blocks_.push_back(base + (i - 1));
    }
  }
  HistoryBlock* block = free_blocks_.back();
  free_blocks_.pop_back();
  *block = HistoryBlock(k_);
  return block;
}

bool HistoryTable::Expired(const HistoryBlock& block, Timestamp now) const {
  if (rip_ == kInfinitePeriod || block.resident) return false;
  return now > block.last && (now - block.last) > rip_;
}

HistoryBlock& HistoryTable::GetOrCreate(PageId p, Timestamp now,
                                        bool* had_history) {
  size_t i = FindSlot(p);
  if (i == kNpos) {
    HistoryBlock* block = AllocateBlock();
    InsertSlot(p, block);
    *had_history = false;
    return *block;
  }
  HistoryBlock& block = *slots_[i].block;
  if (!block.resident) {
    // The page is coming back into the buffer: it stops being a
    // history-only block (the caller marks it resident).
    nonresident_.erase({block.last, p});
  }
  if (Expired(block, now)) {
    // The demon would have purged this block already; treat it as absent.
    block = HistoryBlock(k_);
    *had_history = false;
  } else {
    *had_history = true;
  }
  return block;
}

void HistoryTable::OnEvicted(PageId p, HistoryBlock& block) {
  LRUK_ASSERT(block.resident, "OnEvicted on a non-resident block");
  block.resident = false;
  RetainEvicted(p, block);
}

void HistoryTable::RetainEvicted(PageId p, HistoryBlock& block) {
  LRUK_ASSERT(!block.resident, "RetainEvicted on a resident block");
  nonresident_.insert({block.last, p});
  // Enforce the history budget: drop the longest-idle history-only block
  // (possibly the one just evicted, if everything else is fresher).
  while (max_nonresident_ != 0 && nonresident_.size() > max_nonresident_) {
    auto oldest = nonresident_.begin();
    PageId victim = oldest->second;
    nonresident_.erase(oldest);
    size_t i = FindSlot(victim);
    LRUK_ASSERT(i != kNpos, "non-resident index out of sync with table");
    free_blocks_.push_back(slots_[i].block);
    EraseSlotAt(i);
    --size_;
  }
}

void HistoryTable::Erase(PageId p) {
  size_t i = FindSlot(p);
  if (i == kNpos) return;
  HistoryBlock* block = slots_[i].block;
  if (!block->resident) nonresident_.erase({block->last, p});
  free_blocks_.push_back(block);
  EraseSlotAt(i);
  --size_;
}

size_t HistoryTable::PurgeExpired(Timestamp now) {
  if (rip_ == kInfinitePeriod) return 0;
  // Two passes: backward-shift deletion moves slots around, so collecting
  // victims first keeps the scan from skipping (or re-visiting) entries.
  std::vector<PageId> expired;
  ForEach([&](PageId p, const HistoryBlock& block) {
    if (Expired(block, now)) expired.push_back(p);
  });
  for (PageId p : expired) Erase(p);
  return expired.size();
}

}  // namespace lruk
