// Domain Separation ([REITER], the paper's Section 1.1 "Page Pool Tuning"
// alternative): the DBA statically partitions the buffer into domains —
// "B-tree node pages would compete only against other node pages for
// buffers, data pages would compete only against other data pages" — each
// domain running plain LRU within its fixed allotment.
//
// This is the manually tuned baseline that LRU-K is meant to match without
// hints. It needs two pieces of external knowledge the self-reliant
// policies do without: a page -> domain classifier and per-domain
// capacities.
//
// Contract note: a faulting page may overflow its own domain while other
// domains still have room, so Admit() evicts *within the domain* when the
// domain is full even though the caller saw total ResidentCount() <
// capacity. Such internally evicted pages are queued and retrievable via
// TakeInternalEvictions() — the CacheSimulator needs nothing (it tracks
// residency through the policy), but a buffer pool reclaiming frames
// would drain that queue.

#ifndef LRUK_CORE_DOMAIN_SEPARATION_H_
#define LRUK_CORE_DOMAIN_SEPARATION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/lru.h"
#include "core/replacement_policy.h"

namespace lruk {

struct DomainSeparationOptions {
  // Maps a page to its domain index in [0, domain_capacities.size()).
  std::function<uint32_t(PageId)> classifier;
  // Frames dedicated to each domain. The effective total capacity is the
  // sum; drive the simulator with exactly that capacity.
  std::vector<size_t> domain_capacities;
};

class DomainSeparationPolicy final : public ReplacementPolicy {
 public:
  explicit DomainSeparationPolicy(DomainSeparationOptions options);

  void PrepareAdmit(PageId p) override { pending_ = p; }
  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override;
  size_t EvictableCount() const override;
  bool IsResident(PageId p) const override;
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "DOMAIN-SEP"; }

  // Pages evicted inside Admit() because their domain was full; cleared by
  // the call. See the header comment.
  std::vector<PageId> TakeInternalEvictions();

  size_t NumDomains() const { return domains_.size(); }
  size_t DomainResidentCount(uint32_t domain) const;

 private:
  uint32_t DomainOf(PageId p) const;

  DomainSeparationOptions options_;
  std::vector<std::unique_ptr<LruPolicy>> domains_;
  std::optional<PageId> pending_;
  std::vector<PageId> internal_evictions_;
};

}  // namespace lruk

#endif  // LRUK_CORE_DOMAIN_SEPARATION_H_
