#include "core/lru.h"

namespace lruk {

void LruPolicy::MoveToFront(Entry& entry) {
  recency_.splice(recency_.begin(), recency_, entry.pos);
}

void LruPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "RecordAccess on a non-resident page");
  MoveToFront(it->second);
}

void LruPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  recency_.push_front(p);
  entries_.emplace(p, Entry{recency_.begin(), /*evictable=*/true});
  ++evictable_count_;
}

std::optional<PageId> LruPolicy::Evict() {
  // Walk from the LRU end, skipping pinned pages.
  for (auto it = recency_.rbegin(); it != recency_.rend(); ++it) {
    auto entry_it = entries_.find(*it);
    if (!entry_it->second.evictable) continue;
    PageId victim = *it;
    recency_.erase(std::next(it).base());
    entries_.erase(entry_it);
    --evictable_count_;
    return victim;
  }
  return std::nullopt;
}

void LruPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) --evictable_count_;
  recency_.erase(it->second.pos);
  entries_.erase(it);
}

void LruPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable != evictable) {
    it->second.evictable = evictable;
    evictable_count_ += evictable ? 1 : -1;
  }
}


void LruPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
