#include "core/access_buffer.h"

namespace lruk {

namespace {
size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

AccessBuffer::Stripe::Stripe(size_t capacity) : cells(capacity) {
  for (size_t i = 0; i < capacity; ++i) {
    cells[i].seq.store(i, std::memory_order_relaxed);
  }
}

AccessBuffer::AccessBuffer(size_t capacity, size_t stripes)
    : capacity_(capacity) {
  LRUK_ASSERT(capacity >= 1, "access buffer needs capacity >= 1");
  LRUK_ASSERT(stripes >= 1, "access buffer needs at least one stripe");
  // Keep >= 2 physical cells so a lap's published sequence (ticket + 1)
  // never collides with the next ticket; TryPush enforces the logical
  // `capacity_` itself.
  size_t rounded = RoundUpPowerOfTwo(capacity < 2 ? 2 : capacity);
  mask_ = rounded - 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(rounded));
  }
  scratch_.reserve(rounded);
}

size_t AccessBuffer::ThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

bool AccessBuffer::TryPush(const AccessRecord& record) {
  Stripe& stripe = *stripes_[ThreadIndex() % stripes_.size()];
  // Wait-free ticket claim. An abandoned ticket (any `return false` below)
  // is reclaimed by the drain sealing its cell, so advancing the tail here
  // is always safe.
  uint64_t ticket = stripe.tail.fetch_add(1, std::memory_order_relaxed);
  // Logical capacity bound. A stale `head` only under-counts drains and
  // makes this conservatively refuse; the cell CAS below is the hard
  // occupancy bound at the physical ring size.
  if (ticket - stripe.head.load(std::memory_order_relaxed) >= capacity_) {
    full_pushes_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Cell& cell = stripe.cells[ticket & mask_];
  // Acquire the cell: CAS seq from `ticket` to `ticket | kClaimedBit`.
  // Success-order acquire pairs with the drain's release restore of the
  // previous lap, proving its record was fully consumed before we
  // overwrite it.
  bool claimed = false;
  int spins = kClaimSpins;
  for (;;) {
    uint64_t expected = ticket;
    if (cell.seq.compare_exchange_weak(expected, ticket | kClaimedBit,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      claimed = true;
      break;
    }
    // A plain value above our ticket means the drain sealed it (or a later
    // lap already owns the cell): this ticket is dead, give up now. Any
    // other value is the previous lap still in flight — published but
    // undrained, or claimed by its producer — which a concurrent drain may
    // clear, so spin briefly.
    if ((expected & kClaimedBit) == 0 && expected > ticket) break;
    if (--spins < 0) break;
  }
  if (!claimed) {
    full_pushes_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  cell.record = record;
  cell.seq.store(ticket + 1, std::memory_order_release);
  return true;
}

size_t AccessBuffer::Drain(ReplacementPolicy& policy, bool skip_non_resident,
                           size_t* dropped) {
  size_t applied = 0;
  size_t skipped = 0;
  ++drain_stats_.drains;
  for (auto& owned : stripes_) {
    Stripe& stripe = *owned;
    scratch_.clear();
    uint64_t ticket = stripe.head.load(std::memory_order_relaxed);
    // A relaxed tail is a monotonic lower bound on the tickets handed out:
    // anything below it was definitely claimed (or abandoned) by some
    // producer, so sealing is safe; anything at or above it may be a
    // future ticket and must be left alone.
    const uint64_t tail = stripe.tail.load(std::memory_order_relaxed);
    int publish_spins = kPublishSpins;
    while (ticket != tail) {
      Cell& cell = stripe.cells[ticket & mask_];
      uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq == ticket + 1) {
        // Published: consume, then release the cell for the next lap.
        scratch_.push_back(cell.record);
        cell.seq.store(ticket + mask_ + 1, std::memory_order_release);
        ++ticket;
        continue;
      }
      if (seq == ticket) {
        // Unclaimed but below the tail: an abandoned ticket, or a producer
        // between fetch_add and its claim CAS. Seal it so the ring cannot
        // wedge; if the producer sneaks its claim in first, our CAS fails
        // and we re-examine the cell.
        uint64_t want = ticket;
        if (cell.seq.compare_exchange_strong(want, ticket + mask_ + 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
          ++ticket;
        }
        continue;
      }
      if (seq == (ticket | kClaimedBit)) {
        // Claimed, record write in flight — the producer is a few stores
        // away from publishing. Spin briefly, then stop the stripe here:
        // head stays put and the next drain picks this record (and
        // everything stalled behind it) up.
        if (--publish_spins >= 0) continue;
        break;
      }
      // Any other value (a later lap) means this ticket was already
      // consumed under a different head snapshot — cannot happen while we
      // are the only consumer.
      LRUK_ASSERT(false, "access buffer drain saw an inconsistent cell");
      break;
    }
    stripe.head.store(ticket, std::memory_order_relaxed);
    if (skip_non_resident) {
      // Compact in place, preserving FIFO order of the survivors.
      size_t kept = 0;
      for (const AccessRecord& r : scratch_) {
        if (policy.IsResident(r.page)) scratch_[kept++] = r;
      }
      skipped += scratch_.size() - kept;
      scratch_.resize(kept);
    }
    if (!scratch_.empty()) {
      policy.RecordAccessBatch(scratch_.data(), scratch_.size());
      applied += scratch_.size();
    }
  }
  drain_stats_.drained_records += applied;
  drain_stats_.dropped_records += skipped;
  if (applied == 0) ++drain_stats_.empty_drains;
  if (dropped != nullptr) *dropped += skipped;
  return applied;
}

}  // namespace lruk
