#include "core/access_buffer.h"

namespace lruk {

namespace {
size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

AccessBuffer::Stripe::Stripe(size_t capacity) : cells(capacity) {
  for (size_t i = 0; i < capacity; ++i) {
    cells[i].seq.store(i, std::memory_order_relaxed);
  }
}

AccessBuffer::AccessBuffer(size_t capacity, size_t stripes)
    : capacity_(capacity) {
  LRUK_ASSERT(capacity >= 1, "access buffer needs capacity >= 1");
  LRUK_ASSERT(stripes >= 1, "access buffer needs at least one stripe");
  // Keep >= 2 physical cells so a lap's published sequence (ticket + 1)
  // never collides with the next ticket; TryPush enforces the logical
  // `capacity_` itself.
  size_t rounded = RoundUpPowerOfTwo(capacity < 2 ? 2 : capacity);
  mask_ = rounded - 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(rounded));
  }
  scratch_.reserve(rounded);
}

size_t AccessBuffer::ThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

bool AccessBuffer::TryPush(const AccessRecord& record) {
  Stripe& stripe = *stripes_[ThreadIndex() % stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.producer_mutex);
  uint64_t ticket = stripe.tail;
  // Logical capacity bound. A stale `head` only under-counts drains and
  // makes this conservatively refuse; the cell check below is the hard
  // occupancy bound at the physical ring size.
  if (ticket - stripe.head.load(std::memory_order_relaxed) >= capacity_) {
    full_pushes_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Cell& cell = stripe.cells[ticket & mask_];
  // The acquire load pairs with the drain's release restore: seeing
  // seq == ticket proves the previous lap's record was fully consumed, so
  // overwriting `record` is safe. seq != ticket means the cell is still
  // un-drained — the ring is full at its physical size.
  if (cell.seq.load(std::memory_order_acquire) != ticket) {
    full_pushes_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  cell.record = record;
  cell.seq.store(ticket + 1, std::memory_order_release);
  // Publish before advancing the tail: the stripe's published region stays
  // contiguous, which is what the drain's stop-at-first-unpublished scan
  // relies on (see the header — no record can stall behind a gap).
  stripe.tail = ticket + 1;
  return true;
}

size_t AccessBuffer::Drain(ReplacementPolicy& policy, bool skip_non_resident) {
  size_t applied = 0;
  ++drain_stats_.drains;
  for (auto& owned : stripes_) {
    Stripe& stripe = *owned;
    scratch_.clear();
    uint64_t ticket = stripe.head.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = stripe.cells[ticket & mask_];
      uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<int64_t>(seq) - static_cast<int64_t>(ticket + 1) < 0) {
        // Empty, or a producer in TryPush has not published this cell
        // yet. Stop here: publication is serialized per stripe, so
        // nothing can be published beyond this cell either, and the
        // in-flight record's page is still pinned by its producer (see
        // header) — the next drain picks it up.
        break;
      }
      scratch_.push_back(cell.record);
      cell.seq.store(ticket + mask_ + 1, std::memory_order_release);
      ++ticket;
    }
    stripe.head.store(ticket, std::memory_order_relaxed);
    if (skip_non_resident) {
      // Compact in place, preserving FIFO order of the survivors.
      size_t kept = 0;
      for (const AccessRecord& r : scratch_) {
        if (policy.IsResident(r.page)) scratch_[kept++] = r;
      }
      scratch_.resize(kept);
    }
    if (!scratch_.empty()) {
      policy.RecordAccessBatch(scratch_.data(), scratch_.size());
      applied += scratch_.size();
    }
  }
  drain_stats_.drained_records += applied;
  if (applied == 0) ++drain_stats_.empty_drains;
  return applied;
}

}  // namespace lruk
