// LRD (Least Reference Density, [EFFEHAER]): evicts the resident page with
// the smallest reference density. Two classic variants:
//
//   V1: density = total references / age-in-buffer  (no aging)
//   V2: like V1, but every `aging_interval` references all counts are
//       divided by `aging_divisor`, so history decays.
//
// Reference densities drift with global time, so no static ordering exists;
// Evict() performs the textbook O(n) scan over resident pages.

#ifndef LRUK_CORE_LRD_H_
#define LRUK_CORE_LRD_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "core/replacement_policy.h"

namespace lruk {

struct LrdOptions {
  // 0 disables aging (variant V1). Otherwise counts decay every
  // aging_interval clock ticks (variant V2).
  uint64_t aging_interval = 0;
  uint64_t aging_divisor = 2;
};

class LrdPolicy final : public ReplacementPolicy {
 public:
  explicit LrdPolicy(LrdOptions options = {});

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return evictable_count_; }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override {
    return options_.aging_interval == 0 ? "LRD-V1" : "LRD-V2";
  }

  // Current reference density of resident page p; exposed for tests.
  double Density(PageId p) const;

 private:
  struct Entry {
    uint64_t reference_count = 0;
    uint64_t admitted_at = 0;  // Clock value when the page entered.
    bool evictable = true;
  };

  void Tick();
  double DensityOf(const Entry& entry) const;

  LrdOptions options_;
  uint64_t clock_ = 0;
  std::unordered_map<PageId, Entry> entries_;
  size_t evictable_count_ = 0;
};

}  // namespace lruk

#endif  // LRUK_CORE_LRD_H_
