#include "core/adaptive_policy.h"

#include <algorithm>

#include "core/lru_k.h"
#include "util/macros.h"

namespace lruk {

AdaptivePolicy::AdaptivePolicy(std::vector<AdaptiveExpert> experts,
                               AdaptivePolicyOptions options)
    : experts_(std::move(experts)),
      options_(options),
      estimator_(options.estimator) {
  LRUK_ASSERT(!experts_.empty(), "adaptive policy needs at least one expert");
  LRUK_ASSERT(options_.capacity > 0,
              "adaptive policy needs the pool capacity for its ghost caches");
  LRUK_ASSERT(options_.window_buckets >= 1, "window needs at least one bucket");
  for (const AdaptiveExpert& e : experts_) {
    LRUK_ASSERT(e.live != nullptr && e.ghost != nullptr,
                "every adaptive expert needs a live and a ghost instance");
  }
  bucket_refs_ =
      std::max<uint64_t>(1, options_.window_refs / options_.window_buckets);
  buckets_.resize(options_.window_buckets);
  for (Bucket& b : buckets_) b.ghost_misses.resize(experts_.size(), 0);
  window_ghost_misses_.resize(experts_.size(), 0);
  cum_ghost_misses_.resize(experts_.size(), 0);
  active_refs_.resize(experts_.size(), 0);
  selections_.resize(experts_.size(), 0);
  ghost_victims_.resize(experts_.size());

  name_ = "adaptive(";
  for (size_t i = 0; i < experts_.size(); ++i) {
    if (i > 0) name_ += "+";
    name_ += experts_[i].name;
  }
  name_ += ")";

  if (options_.tune_lruk) {
    for (AdaptiveExpert& e : experts_) {
      auto* live = dynamic_cast<LruKPolicy*>(e.live.get());
      if (live != nullptr) {
        live_lruk_ = live;
        ghost_lruk_ = dynamic_cast<LruKPolicy*>(e.ghost.get());
        break;
      }
    }
    if (options_.max_tuned_crp == 0) {
      options_.max_tuned_crp = std::max<Timestamp>(1, options_.capacity / 2);
    }
    if (options_.min_tuned_rip == 0) {
      options_.min_tuned_rip = 8 * static_cast<Timestamp>(options_.capacity);
    }
  }
}

AdaptivePolicy::~AdaptivePolicy() = default;

void AdaptivePolicy::SetReferencingProcess(uint32_t process) {
  current_process_ = process;
  for (AdaptiveExpert& e : experts_) e.live->SetReferencingProcess(process);
}

void AdaptivePolicy::PrepareAdmit(PageId p) {
  for (AdaptiveExpert& e : experts_) e.live->PrepareAdmit(p);
}

void AdaptivePolicy::RecordAccess(PageId p, AccessType type) {
  for (AdaptiveExpert& e : experts_) e.live->RecordAccess(p, type);
  OnReference(p, type, /*live_miss=*/false);
}

void AdaptivePolicy::RecordAccessBatch(const AccessRecord* records,
                                       size_t n) {
  for (AdaptiveExpert& e : experts_) e.live->RecordAccessBatch(records, n);
  for (size_t i = 0; i < n; ++i) {
    current_process_ = records[i].process;
    OnReference(records[i].page, records[i].type, /*live_miss=*/false);
  }
}

void AdaptivePolicy::Admit(PageId p, AccessType type) {
  evicted_by_.erase(p);
  for (AdaptiveExpert& e : experts_) e.live->Admit(p, type);
  OnReference(p, type, /*live_miss=*/true);
}

std::optional<PageId> AdaptivePolicy::Evict() {
  std::optional<PageId> victim = experts_[active_].live->Evict();
  if (victim.has_value()) BookVictim(*victim);
  return victim;
}

size_t AdaptivePolicy::EvictBatch(size_t k, std::vector<PageId>* out) {
  in_evict_batch_ = true;
  size_t n = experts_[active_].live->EvictBatch(k, out);
  for (PageId v : *out) BookVictim(v);
  in_evict_batch_ = false;
  return n;
}

void AdaptivePolicy::BookVictim(PageId v) {
  for (size_t i = 0; i < experts_.size(); ++i) {
    if (i != active_) experts_[i].live->Remove(v);
  }
  evicted_by_[v] = active_;
}

void AdaptivePolicy::Restore(PageId p) {
  auto it = evicted_by_.find(p);
  // Unknown nominator can only mean the caller broke the Restore
  // precondition; routing to the active expert keeps the failure local.
  size_t nominator = it != evicted_by_.end() ? it->second : active_;
  if (it != evicted_by_.end()) evicted_by_.erase(it);
  for (size_t i = 0; i < experts_.size(); ++i) {
    if (i == nominator) {
      // The nominator gets its exact Restore (LRU-K: no tick, retained
      // history reinstated byte-identically).
      experts_[i].live->Restore(p);
    } else {
      // The others Removed the page at nomination; re-learn it as a fresh
      // admission. Their internal clocks tick — an accepted approximation,
      // invisible when a single expert is configured.
      experts_[i].live->Admit(p, AccessType::kRead);
    }
  }
}

void AdaptivePolicy::Remove(PageId p) {
  evicted_by_.erase(p);
  for (AdaptiveExpert& e : experts_) {
    e.live->Remove(p);
    if (e.ghost->IsResident(p)) e.ghost->Remove(p);
  }
}

void AdaptivePolicy::SetEvictable(PageId p, bool evictable) {
  for (AdaptiveExpert& e : experts_) e.live->SetEvictable(p, evictable);
}

size_t AdaptivePolicy::ResidentCount() const {
  return experts_[active_].live->ResidentCount();
}

size_t AdaptivePolicy::EvictableCount() const {
  return experts_[active_].live->EvictableCount();
}

bool AdaptivePolicy::IsResident(PageId p) const {
  return experts_[active_].live->IsResident(p);
}

void AdaptivePolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  experts_[active_].live->ForEachResident(visit);
}

void AdaptivePolicy::OnReference(PageId p, AccessType type, bool live_miss) {
  for (size_t i = 0; i < experts_.size(); ++i) ObserveGhost(i, p, type);
  Bucket& bucket = buckets_[bucket_index_];
  if (live_miss) {
    ++bucket.meta_misses;
    ++window_meta_misses_;
    ++total_meta_misses_;
  }
  ++active_refs_[active_];
  ++refs_;
  ++refs_since_switch_;
  if (live_lruk_ != nullptr) {
    estimator_.Observe(p, refs_);
    if (refs_ % options_.tune_interval == 0) MaybeRetune();
  }
  if (++refs_in_bucket_ >= bucket_refs_) {
    refs_in_bucket_ = 0;
    RotateBucket();
    MaybeSwitch();
  }
}

void AdaptivePolicy::ObserveGhost(size_t i, PageId p, AccessType type) {
  // Mirrors the simulator's reference loop exactly (sim/simulator.cc):
  // ghost victim sequences are byte-identical to a standalone run of the
  // expert at the same capacity over the same reference stream — the
  // ghost-exactness property grid in tests/adaptive_policy_test.cc.
  ReplacementPolicy& g = *experts_[i].ghost;
  g.SetReferencingProcess(current_process_);
  if (g.IsResident(p)) {
    g.RecordAccess(p, type);
    return;
  }
  Bucket& bucket = buckets_[bucket_index_];
  ++bucket.ghost_misses[i];
  ++window_ghost_misses_[i];
  ++cum_ghost_misses_[i];
  g.PrepareAdmit(p);
  if (g.ResidentCount() >= options_.capacity) {
    std::optional<PageId> victim = g.Evict();
    LRUK_ASSERT(victim.has_value(), "ghost cache found no evictable page");
    if (options_.record_ghost_victims) ghost_victims_[i].push_back(*victim);
  }
  g.Admit(p, type);
}

void AdaptivePolicy::RotateBucket() {
  bucket_index_ = (bucket_index_ + 1) % buckets_.size();
  // The slot we rotate into holds the counts from one full window ago;
  // retire them from the running sums before reuse.
  Bucket& reused = buckets_[bucket_index_];
  for (size_t i = 0; i < experts_.size(); ++i) {
    window_ghost_misses_[i] -= reused.ghost_misses[i];
    reused.ghost_misses[i] = 0;
  }
  window_meta_misses_ -= reused.meta_misses;
  reused.meta_misses = 0;
}

void AdaptivePolicy::MaybeSwitch() {
  if (experts_.size() < 2) return;
  if (refs_since_switch_ < options_.cooldown_refs) return;
  ++evaluations_;
  size_t best = active_;
  for (size_t i = 0; i < experts_.size(); ++i) {
    if (window_ghost_misses_[i] < window_ghost_misses_[best]) best = i;
  }
  if (best == active_) return;
  uint64_t incumbent = window_ghost_misses_[active_];
  if (incumbent < options_.min_window_misses) return;
  double bar = (1.0 - options_.switch_margin) * static_cast<double>(incumbent);
  if (static_cast<double>(window_ghost_misses_[best]) > bar) return;
  LRUK_ASSERT(!in_evict_batch_, "expert switch attempted mid-EvictBatch");
  active_ = best;
  ++switches_;
  ++selections_[best];
  refs_since_switch_ = 0;
}

void AdaptivePolicy::MaybeRetune() {
  IntervalEstimator::Estimate est = estimator_.Current();
  if (est.samples < options_.estimator.min_samples) return;
  Timestamp crp = std::min(est.crp, options_.max_tuned_crp);
  Timestamp rip = est.rip;
  if (rip != kInfinitePeriod) rip = std::max(rip, options_.min_tuned_rip);
  live_lruk_->SetCorrelatedReferencePeriod(crp);
  live_lruk_->SetRetainedInformationPeriod(rip);
  if (ghost_lruk_ != nullptr) {
    ghost_lruk_->SetCorrelatedReferencePeriod(crp);
    ghost_lruk_->SetRetainedInformationPeriod(rip);
  }
  tuned_crp_ = crp;
  tuned_rip_ = rip;
  ++retunes_;
}

MetaPolicyStats AdaptivePolicy::GetMetaStats() const {
  MetaPolicyStats s;
  s.adaptive = true;
  s.active_expert = active_;
  s.switches = switches_;
  s.evaluations = evaluations_;
  s.window_misses = window_meta_misses_;
  s.total_misses = total_meta_misses_;
  s.tuned_crp = tuned_crp_;
  s.tuned_rip = tuned_rip_ == kInfinitePeriod ? 0 : tuned_rip_;
  s.retunes = retunes_;
  s.experts.resize(experts_.size());
  for (size_t i = 0; i < experts_.size(); ++i) {
    s.experts[i].name = experts_[i].name;
    s.experts[i].ghost_misses = cum_ghost_misses_[i];
    s.experts[i].window_misses = window_ghost_misses_[i];
    s.experts[i].active_refs = active_refs_[i];
    s.experts[i].selections = selections_[i];
  }
  return s;
}

}  // namespace lruk
