// FIFO: evicts the page that has been resident the longest, ignoring
// re-references entirely. The simplest baseline (analyzed alongside LRU in
// [DANTOWS], cited by the paper).

#ifndef LRUK_CORE_FIFO_H_
#define LRUK_CORE_FIFO_H_

#include <list>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "core/replacement_policy.h"

namespace lruk {

class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy() = default;

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return entries_.size(); }
  size_t EvictableCount() const override { return evictable_count_; }
  bool IsResident(PageId p) const override { return entries_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override { return "FIFO"; }

 private:
  struct Entry {
    std::list<PageId>::iterator pos;
    bool evictable = true;
  };

  // Newest admission at the front; victims come from the back.
  std::list<PageId> arrival_;
  std::unordered_map<PageId, Entry> entries_;
  size_t evictable_count_ = 0;
};

}  // namespace lruk

#endif  // LRUK_CORE_FIFO_H_
