// Counters exported by meta-policies (currently only AdaptivePolicy).
//
// Kept in a header of its own so `ReplacementPolicy` can expose a virtual
// `GetMetaStats()` accessor without dragging the adaptive machinery into
// every policy translation unit. Plain policies return a default-constructed
// snapshot (`adaptive == false`); pools forward whatever the policy reports
// and the sharded pool merges shard snapshots with `operator+=`.

#ifndef LRUK_CORE_META_STATS_H_
#define LRUK_CORE_META_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace lruk {

// Per-expert regret counters. `ghost_misses` is the cumulative
// would-have-missed count of the expert's ghost cache over the observed
// reference stream; `window_misses` is the same signal restricted to the
// sliding regret window the switch decision reads.
struct MetaExpertStats {
  std::string name;
  uint64_t ghost_misses = 0;
  uint64_t window_misses = 0;
  // References observed while this expert was the live victim selector.
  uint64_t active_refs = 0;
  // Times a switch decision landed on this expert (including the initial
  // selection of expert 0 only if a switch explicitly re-selected it).
  uint64_t selections = 0;
};

struct MetaPolicyStats {
  // False for plain policies; true when a meta-policy produced the snapshot.
  bool adaptive = false;
  // Index (into `experts`) of the expert currently selecting victims. After
  // a sharded merge this is the first shard's choice — shards adapt
  // independently, so per-shard snapshots are the precise view.
  size_t active_expert = 0;
  uint64_t switches = 0;
  // Switch evaluations performed (bucket rotations that passed cooldown).
  uint64_t evaluations = 0;
  // Live-stream misses (admissions) in the current window / in total.
  uint64_t window_misses = 0;
  uint64_t total_misses = 0;
  // Online LRU-K tuning state: last applied values and how often the
  // estimator re-tuned the live LRU-K expert. Zero / unused when tuning is
  // off or no LRU-K expert is configured.
  Timestamp tuned_crp = 0;
  Timestamp tuned_rip = 0;
  uint64_t retunes = 0;
  std::vector<MetaExpertStats> experts;

  // Shard merge: sums counters element-wise by expert index. Expert lists
  // are expected to be congruent (same factory spec per shard); names from
  // the first non-empty snapshot win.
  MetaPolicyStats& operator+=(const MetaPolicyStats& other) {
    adaptive = adaptive || other.adaptive;
    switches += other.switches;
    evaluations += other.evaluations;
    window_misses += other.window_misses;
    total_misses += other.total_misses;
    retunes += other.retunes;
    if (tuned_crp == 0) tuned_crp = other.tuned_crp;
    if (tuned_rip == 0) tuned_rip = other.tuned_rip;
    if (experts.size() < other.experts.size()) {
      experts.resize(other.experts.size());
    }
    for (size_t i = 0; i < other.experts.size(); ++i) {
      if (experts[i].name.empty()) experts[i].name = other.experts[i].name;
      experts[i].ghost_misses += other.experts[i].ghost_misses;
      experts[i].window_misses += other.experts[i].window_misses;
      experts[i].active_refs += other.experts[i].active_refs;
      experts[i].selections += other.experts[i].selections;
    }
    return *this;
  }
};

}  // namespace lruk

#endif  // LRUK_CORE_META_STATS_H_
