#include "core/fifo.h"

namespace lruk {

void FifoPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  // FIFO ignores re-references; only validate the precondition.
  LRUK_ASSERT(entries_.contains(p), "RecordAccess on a non-resident page");
}

void FifoPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  arrival_.push_front(p);
  entries_.emplace(p, Entry{arrival_.begin(), /*evictable=*/true});
  ++evictable_count_;
}

std::optional<PageId> FifoPolicy::Evict() {
  for (auto it = arrival_.rbegin(); it != arrival_.rend(); ++it) {
    auto entry_it = entries_.find(*it);
    if (!entry_it->second.evictable) continue;
    PageId victim = *it;
    arrival_.erase(std::next(it).base());
    entries_.erase(entry_it);
    --evictable_count_;
    return victim;
  }
  return std::nullopt;
}

void FifoPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) --evictable_count_;
  arrival_.erase(it->second.pos);
  entries_.erase(it);
}

void FifoPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable != evictable) {
    it->second.evictable = evictable;
    evictable_count_ += evictable ? 1 : -1;
  }
}


void FifoPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
