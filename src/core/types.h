// Fundamental identifier and time types shared across the library.

#ifndef LRUK_CORE_TYPES_H_
#define LRUK_CORE_TYPES_H_

#include <cstdint>
#include <limits>

namespace lruk {

// Identifies a disk page. Workload generators number pages densely from 0;
// the buffer pool allocates them monotonically.
using PageId = uint64_t;

// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

// Logical time, measured in counts of successive page references (the paper
// measures all intervals this way, Section 2). Starts at 1 so that 0 can
// mean "never referenced" in history blocks.
using Timestamp = uint64_t;

// Identifies a frame (buffer slot) inside a BufferPool.
using FrameId = uint32_t;

inline constexpr FrameId kInvalidFrameId =
    std::numeric_limits<FrameId>::max();

// How a page was referenced. Replacement policies in this library are
// self-reliant (the paper's design goal) and ignore the distinction, but
// the buffer pool uses it for dirty tracking, and workloads carry it so
// traces are faithful.
enum class AccessType : uint8_t {
  kRead = 0,
  kWrite = 1,
};

// One deferred page reference: what a buffer pool's hit path captures when
// batched access recording is enabled, and what
// ReplacementPolicy::RecordAccessBatch later applies. `process` feeds
// SetReferencingProcess for policies with per-process correlation.
struct AccessRecord {
  PageId page = kInvalidPageId;
  uint32_t process = 0;
  AccessType type = AccessType::kRead;
};

}  // namespace lruk

#endif  // LRUK_CORE_TYPES_H_
