#include "core/arc.h"

#include <algorithm>

namespace lruk {

ArcPolicy::ArcPolicy(size_t capacity) : capacity_(capacity) {
  LRUK_ASSERT(capacity_ >= 1, "ARC requires a positive capacity");
}

void ArcPolicy::RecordAccess(PageId p, AccessType /*type*/) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "RecordAccess on a non-resident page");
  // Case I: a hit in T1 or T2 promotes to the MRU position of T2.
  if (it->second.queue == Queue::kT1) {
    t2_.splice(t2_.begin(), t1_, it->second.pos);
    it->second.queue = Queue::kT2;
  } else {
    t2_.splice(t2_.begin(), t2_, it->second.pos);
  }
  it->second.pos = t2_.begin();
}

void ArcPolicy::DropGhostLru(std::list<PageId>& ghost, GhostIndex& index) {
  if (ghost.empty()) return;
  index.erase(ghost.back());
  ghost.pop_back();
}

std::optional<PageId> ArcPolicy::EvictTail(std::list<PageId>& list,
                                           std::list<PageId>* ghost,
                                           GhostIndex* ghost_index) {
  for (auto it = list.rbegin(); it != list.rend(); ++it) {
    auto entry_it = entries_.find(*it);
    if (!entry_it->second.evictable) continue;
    PageId victim = *it;
    list.erase(std::next(it).base());
    entries_.erase(entry_it);
    --evictable_count_;
    if (ghost != nullptr) {
      ghost->push_front(victim);
      ghost_index->emplace(victim, ghost->begin());
    }
    return victim;
  }
  return std::nullopt;
}

std::optional<PageId> ArcPolicy::Replace(bool incoming_in_b2) {
  bool take_t1 =
      !t1_.empty() &&
      ((incoming_in_b2 && static_cast<double>(t1_.size()) == p_) ||
       static_cast<double>(t1_.size()) > p_);
  if (take_t1) {
    if (auto victim = EvictTail(t1_, &b1_, &b1_index_)) return victim;
    return EvictTail(t2_, &b2_, &b2_index_);  // T1 fully pinned.
  }
  if (auto victim = EvictTail(t2_, &b2_, &b2_index_)) return victim;
  return EvictTail(t1_, &b1_, &b1_index_);  // T2 empty or fully pinned.
}

std::optional<PageId> ArcPolicy::Evict() {
  // The victim choice depends on the page about to come in (set by
  // PrepareAdmit). Without a hint, fall back to a plain REPLACE.
  PageId x = pending_.value_or(kInvalidPageId);
  bool in_b1 = x != kInvalidPageId && b1_index_.contains(x);
  bool in_b2 = x != kInvalidPageId && b2_index_.contains(x);

  if (in_b1 || in_b2) {
    // Cases II/III: the ghost hit redirects REPLACE; `p` adapts in Admit.
    return Replace(in_b2);
  }
  // Case IV: a brand-new page.
  if (t1_.size() + b1_.size() == capacity_) {
    if (t1_.size() < capacity_) {
      DropGhostLru(b1_, b1_index_);
      return Replace(false);
    }
    // |T1| == c: evict T1's LRU outright, bypassing the ghost list.
    if (auto victim = EvictTail(t1_, nullptr, nullptr)) return victim;
    return EvictTail(t2_, &b2_, &b2_index_);  // T1 fully pinned.
  }
  if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >= 2 * capacity_) {
    DropGhostLru(b2_, b2_index_);
  }
  return Replace(false);
}

void ArcPolicy::Admit(PageId p, AccessType /*type*/) {
  LRUK_ASSERT(!entries_.contains(p), "Admit on an already-resident page");
  if (pending_ == p) pending_.reset();

  auto ghost1 = b1_index_.find(p);
  if (ghost1 != b1_index_.end()) {
    // Case II: adapt p upward (favor recency) and promote into T2.
    double delta = b1_.empty()
                       ? 1.0
                       : std::max(1.0, static_cast<double>(b2_.size()) /
                                           static_cast<double>(b1_.size()));
    p_ = std::min(static_cast<double>(capacity_), p_ + delta);
    b1_.erase(ghost1->second);
    b1_index_.erase(ghost1);
    t2_.push_front(p);
    entries_.emplace(p, Entry{Queue::kT2, t2_.begin(), /*evictable=*/true});
    ++evictable_count_;
    return;
  }
  auto ghost2 = b2_index_.find(p);
  if (ghost2 != b2_index_.end()) {
    // Case III: adapt p downward (favor frequency) and promote into T2.
    double delta = b2_.empty()
                       ? 1.0
                       : std::max(1.0, static_cast<double>(b1_.size()) /
                                           static_cast<double>(b2_.size()));
    p_ = std::max(0.0, p_ - delta);
    b2_.erase(ghost2->second);
    b2_index_.erase(ghost2);
    t2_.push_front(p);
    entries_.emplace(p, Entry{Queue::kT2, t2_.begin(), /*evictable=*/true});
    ++evictable_count_;
    return;
  }
  // Case IV: first sighting goes to T1.
  t1_.push_front(p);
  entries_.emplace(p, Entry{Queue::kT1, t1_.begin(), /*evictable=*/true});
  ++evictable_count_;
}

void ArcPolicy::Remove(PageId p) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "Remove on a non-resident page");
  if (it->second.evictable) --evictable_count_;
  (it->second.queue == Queue::kT1 ? t1_ : t2_).erase(it->second.pos);
  entries_.erase(it);
}

void ArcPolicy::SetEvictable(PageId p, bool evictable) {
  auto it = entries_.find(p);
  LRUK_ASSERT(it != entries_.end(), "SetEvictable on a non-resident page");
  if (it->second.evictable != evictable) {
    it->second.evictable = evictable;
    evictable_count_ += evictable ? 1 : -1;
  }
}

void ArcPolicy::ForEachResident(
    const std::function<void(PageId)>& visit) const {
  for (const auto& kv : entries_) visit(kv.first);
}

}  // namespace lruk
