// LFU: evicts the resident page with the lowest total reference count.
//
// Per Section 4.3 of the paper, "the inherent drawback of LFU is that it
// never 'forgets' any previous references": the count is cumulative over the
// page's entire lifetime, surviving evictions. That is the variant measured
// in Table 4.3 and the default here; `forget_on_eviction` switches to the
// in-buffer-only variant for ablations. Ties are broken by LRU order.

#ifndef LRUK_CORE_LFU_H_
#define LRUK_CORE_LFU_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string_view>
#include <unordered_map>

#include "core/replacement_policy.h"

namespace lruk {

struct LfuOptions {
  // If true, a page's count resets when it leaves the buffer (in-buffer
  // LFU). If false (default, the paper's variant) counts persist forever.
  bool forget_on_eviction = false;
};

class LfuPolicy final : public ReplacementPolicy {
 public:
  explicit LfuPolicy(LfuOptions options = {});

  void RecordAccess(PageId p, AccessType type) override;
  void Admit(PageId p, AccessType type) override;
  std::optional<PageId> Evict() override;
  void Remove(PageId p) override;
  void SetEvictable(PageId p, bool evictable) override;
  size_t ResidentCount() const override { return resident_.size(); }
  size_t EvictableCount() const override { return heap_.size(); }
  bool IsResident(PageId p) const override { return resident_.contains(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override;
  std::string_view Name() const override {
    return options_.forget_on_eviction ? "LFU-inbuf" : "LFU";
  }

  // Total reference count recorded for p (0 if never seen). Exposed for
  // tests and the adaptivity experiments.
  uint64_t ReferenceCount(PageId p) const;

 private:
  struct HeapKey {
    uint64_t count;
    uint64_t last_tick;  // LRU tie-break: smaller = older
    PageId page;
    friend auto operator<=>(const HeapKey&, const HeapKey&) = default;
  };

  struct ResidentEntry {
    uint64_t last_tick = 0;
    bool evictable = true;
  };

  HeapKey KeyFor(PageId p, const ResidentEntry& entry) const;

  LfuOptions options_;
  uint64_t tick_ = 0;
  // Persistent counts (all pages ever seen, unless forget_on_eviction).
  std::unordered_map<PageId, uint64_t> counts_;
  std::unordered_map<PageId, ResidentEntry> resident_;
  // Evictable resident pages ordered by (count, recency).
  std::set<HeapKey> heap_;
};

}  // namespace lruk

#endif  // LRUK_CORE_LFU_H_
