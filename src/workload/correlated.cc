#include "workload/correlated.h"

#include <utility>

#include "util/macros.h"

namespace lruk {

CorrelatedWorkload::CorrelatedWorkload(
    std::unique_ptr<ReferenceStringGenerator> base, CorrelatedOptions options)
    : base_(std::move(base)), options_(options), rng_(options.seed) {
  LRUK_ASSERT(base_ != nullptr, "CorrelatedWorkload needs a base workload");
  LRUK_ASSERT(options_.max_burst_length >= 2, "bursts must repeat the page");
}

PageRef CorrelatedWorkload::Next() {
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    return pending_;
  }
  PageRef ref = base_->Next();
  if (rng_.NextBernoulli(options_.burst_probability)) {
    uint32_t total =
        2 + static_cast<uint32_t>(rng_.NextBounded(options_.max_burst_length - 1));
    pending_ = ref;
    burst_remaining_ = total - 1;  // This call emits the first of `total`.
  }
  return ref;
}

void CorrelatedWorkload::Reset() {
  base_->Reset();
  rng_ = RandomEngine(options_.seed);
  burst_remaining_ = 0;
}

}  // namespace lruk
