#include "workload/transactional.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace lruk {

TransactionalWorkload::TransactionalWorkload(TransactionalOptions options)
    : options_(options),
      dist_(options.alpha, options.beta, options.num_pages),
      rng_(options.seed) {
  LRUK_ASSERT(options_.num_processes >= 1, "need at least one process");
  LRUK_ASSERT(options_.mean_pages_per_transaction >= 1.0,
              "transactions must touch at least one page");
  processes_.resize(options_.num_processes);
}

void TransactionalWorkload::StartTransaction(uint32_t pid) {
  Process& proc = processes_[pid];

  // Type 2: re-execute the previous transaction verbatim.
  if (!proc.last_txn.empty() &&
      rng_.NextBernoulli(options_.retry_probability)) {
    proc.script.assign(proc.last_txn.begin(), proc.last_txn.end());
    return;
  }

  // Geometric transaction length.
  double p = 1.0 / options_.mean_pages_per_transaction;
  double u = rng_.NextDouble();
  uint64_t length = static_cast<uint64_t>(
      std::max(1.0, std::ceil(std::log1p(-u) / std::log1p(-p))));
  length = std::min<uint64_t>(length, 64);

  std::vector<PageRef> txn;
  txn.reserve(length * 2);
  for (uint64_t i = 0; i < length; ++i) {
    PageId page;
    if (i == 0 && proc.last_page != kInvalidPageId &&
        rng_.NextBernoulli(options_.batch_continuation)) {
      page = proc.last_page;  // Type 3: continue on the same page.
    } else {
      page = dist_.Sample(rng_) - 1;
    }
    txn.push_back(PageRef{page, AccessType::kRead, pid});
    if (rng_.NextBernoulli(options_.intra_transaction_reref)) {
      // Type 1: read now, update later in the same transaction.
      txn.push_back(PageRef{page, AccessType::kWrite, pid});
    }
  }
  // Updates happen after the initial reads: stable-partition writes to the
  // second half, preserving read order (classic read-set-then-write-set).
  std::stable_partition(txn.begin(), txn.end(), [](const PageRef& r) {
    return r.type == AccessType::kRead;
  });

  proc.last_txn = txn;
  proc.last_page = txn.back().page;
  proc.script.assign(txn.begin(), txn.end());
}

PageRef TransactionalWorkload::Next() {
  // Round-robin scheduler: one reference per process per turn.
  uint32_t pid = next_process_;
  next_process_ = (next_process_ + 1) % options_.num_processes;
  Process& proc = processes_[pid];
  if (proc.script.empty()) StartTransaction(pid);
  PageRef ref = proc.script.front();
  proc.script.pop_front();
  return ref;
}

void TransactionalWorkload::Reset() {
  rng_ = RandomEngine(options_.seed);
  processes_.assign(options_.num_processes, Process{});
  next_process_ = 0;
}

}  // namespace lruk
