// Evolving access patterns: a hot window that migrates across the database.
// Used for the adaptivity experiments (the paper, Section 4.1: "For
// evolving access patterns ... LRU-3 is less responsive than LRU-2", and
// Section 4.3: LFU "does not adapt itself to evolving access patterns").
//
// With probability `hot_probability` a reference hits the current hot
// window (uniform within it); otherwise it hits the whole database
// uniformly. Every `epoch_length` references the window advances by
// `shift` pages (wrapping), so pages cool down and fresh pages heat up.

#ifndef LRUK_WORKLOAD_MOVING_HOTSPOT_H_
#define LRUK_WORKLOAD_MOVING_HOTSPOT_H_

#include "util/random.h"
#include "workload/workload.h"

namespace lruk {

struct MovingHotspotOptions {
  uint64_t num_pages = 10000;
  uint64_t hot_pages = 100;
  double hot_probability = 0.8;
  uint64_t epoch_length = 10000;  // References per hot-window position.
  uint64_t shift = 100;           // Pages the window moves per epoch.
  uint64_t seed = 42;
};

class MovingHotspotWorkload final : public ReferenceStringGenerator {
 public:
  explicit MovingHotspotWorkload(MovingHotspotOptions options);

  PageRef Next() override;
  void Reset() override;
  uint64_t NumPages() const override { return options_.num_pages; }
  std::string_view Name() const override { return "moving-hotspot"; }

  // Class 0 = currently hot, 1 = currently cold (time-varying!).
  uint32_t ClassOf(PageId page) const override;
  uint32_t NumClasses() const override { return 2; }
  std::string_view ClassName(uint32_t cls) const override {
    return cls == 0 ? "hot-now" : "cold-now";
  }

  PageId hot_window_start() const { return window_start_; }

 private:
  MovingHotspotOptions options_;
  RandomEngine rng_;
  PageId window_start_ = 0;
  uint64_t refs_in_epoch_ = 0;
};

}  // namespace lruk

#endif  // LRUK_WORKLOAD_MOVING_HOTSPOT_H_
