// Correlated-reference decorator (Section 2.1.1): wraps any base workload
// and, with probability `burst_probability` per base reference, expands it
// into a burst of `1 + extra` back-to-back references to the same page —
// modeling intra-transaction re-reads, transaction retries, and batch
// intra-process patterns (the paper's correlated reference-pair types 1-3).
//
// The burst length is uniform in [2, max_burst_length]. Bursts are exactly
// the pattern the Correlated Reference Period is designed to neutralize:
// with CRP >= max gap, LRU-K collapses each burst into a single
// uncorrelated reference; with CRP = 0 a burst of b references makes a
// cold page look like it has interarrival time ~1 and poisons the buffer.

#ifndef LRUK_WORKLOAD_CORRELATED_H_
#define LRUK_WORKLOAD_CORRELATED_H_

#include <memory>

#include "util/random.h"
#include "workload/workload.h"

namespace lruk {

struct CorrelatedOptions {
  double burst_probability = 0.3;
  uint32_t max_burst_length = 4;  // Total references per burst, >= 2.
  uint64_t seed = 42;
};

class CorrelatedWorkload final : public ReferenceStringGenerator {
 public:
  CorrelatedWorkload(std::unique_ptr<ReferenceStringGenerator> base,
                     CorrelatedOptions options);

  PageRef Next() override;
  void Reset() override;
  uint64_t NumPages() const override { return base_->NumPages(); }
  std::string_view Name() const override { return "correlated"; }
  // The stationary per-reference distribution is distorted by bursts, so
  // no exact probability vector is exposed.
  uint32_t ClassOf(PageId page) const override { return base_->ClassOf(page); }
  uint32_t NumClasses() const override { return base_->NumClasses(); }
  std::string_view ClassName(uint32_t cls) const override {
    return base_->ClassName(cls);
  }

 private:
  std::unique_ptr<ReferenceStringGenerator> base_;
  CorrelatedOptions options_;
  RandomEngine rng_;
  PageRef pending_;          // Page the active burst repeats.
  uint32_t burst_remaining_ = 0;
};

}  // namespace lruk

#endif  // LRUK_WORKLOAD_CORRELATED_H_
