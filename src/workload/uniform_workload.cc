#include "workload/uniform_workload.h"

#include "util/macros.h"

namespace lruk {

UniformWorkload::UniformWorkload(UniformOptions options)
    : options_(options), rng_(options.seed) {
  LRUK_ASSERT(options_.num_pages >= 1, "need at least one page");
}

PageRef UniformWorkload::Next() {
  PageRef ref;
  ref.page = rng_.NextBounded(options_.num_pages);
  ref.type = rng_.NextBernoulli(options_.write_fraction) ? AccessType::kWrite
                                                         : AccessType::kRead;
  return ref;
}

void UniformWorkload::Reset() { rng_ = RandomEngine(options_.seed); }

std::optional<std::vector<double>> UniformWorkload::Probabilities() const {
  return std::vector<double>(options_.num_pages,
                             1.0 / static_cast<double>(options_.num_pages));
}

}  // namespace lruk
