#include "workload/moving_hotspot.h"

#include "util/macros.h"

namespace lruk {

MovingHotspotWorkload::MovingHotspotWorkload(MovingHotspotOptions options)
    : options_(options), rng_(options.seed) {
  LRUK_ASSERT(options_.hot_pages >= 1 &&
                  options_.hot_pages <= options_.num_pages,
              "hot window must fit in the database");
  LRUK_ASSERT(options_.epoch_length >= 1, "epoch must be nonempty");
}

uint32_t MovingHotspotWorkload::ClassOf(PageId page) const {
  // Window [window_start_, window_start_ + hot_pages) with wraparound.
  uint64_t offset =
      (page + options_.num_pages - window_start_) % options_.num_pages;
  return offset < options_.hot_pages ? 0 : 1;
}

PageRef MovingHotspotWorkload::Next() {
  if (refs_in_epoch_ == options_.epoch_length) {
    refs_in_epoch_ = 0;
    window_start_ = (window_start_ + options_.shift) % options_.num_pages;
  }
  ++refs_in_epoch_;

  PageRef ref;
  if (rng_.NextBernoulli(options_.hot_probability)) {
    uint64_t offset = rng_.NextBounded(options_.hot_pages);
    ref.page = (window_start_ + offset) % options_.num_pages;
  } else {
    ref.page = rng_.NextBounded(options_.num_pages);
  }
  return ref;
}

void MovingHotspotWorkload::Reset() {
  rng_ = RandomEngine(options_.seed);
  window_start_ = 0;
  refs_in_epoch_ = 0;
}

}  // namespace lruk
