#include "workload/zipfian_workload.h"

#include <numeric>

namespace lruk {

ZipfianWorkload::ZipfianWorkload(ZipfianOptions options)
    : options_(options),
      dist_(options.alpha, options.beta, options.num_pages),
      rng_(options.seed) {
  page_of_rank_.resize(options_.num_pages);
  std::iota(page_of_rank_.begin(), page_of_rank_.end(), PageId{0});
  if (options_.shuffle_pages) {
    // A dedicated engine so the mapping is stable across Reset().
    RandomEngine shuffle_rng(options_.seed ^ 0x5eed5eedULL);
    shuffle_rng.Shuffle(page_of_rank_);
  }
}

PageRef ZipfianWorkload::Next() {
  uint64_t rank = dist_.Sample(rng_);
  PageRef ref;
  ref.page = page_of_rank_[rank - 1];
  ref.type = rng_.NextBernoulli(options_.write_fraction) ? AccessType::kWrite
                                                         : AccessType::kRead;
  return ref;
}

void ZipfianWorkload::Reset() { rng_ = RandomEngine(options_.seed); }

std::optional<std::vector<double>> ZipfianWorkload::Probabilities() const {
  std::vector<double> probs(options_.num_pages);
  for (uint64_t rank = 1; rank <= options_.num_pages; ++rank) {
    probs[page_of_rank_[rank - 1]] = dist_.Pmf(rank);
  }
  return probs;
}

}  // namespace lruk
