// The two-pool workload of Section 4.1 / Example 1.1: strictly alternating
// references to a small hot pool (B-tree leaf pages) and a large cold pool
// (record pages), each reference uniform within its pool. Every hot page
// has probability 1/(2*N1) and every cold page 1/(2*N2).
//
// Page ids: [0, n1) is pool 1 (hot), [n1, n1+n2) is pool 2 (cold).

#ifndef LRUK_WORKLOAD_TWO_POOL_H_
#define LRUK_WORKLOAD_TWO_POOL_H_

#include "util/random.h"
#include "workload/workload.h"

namespace lruk {

struct TwoPoolOptions {
  uint64_t n1 = 100;     // Hot pool size (index leaf pages).
  uint64_t n2 = 10000;   // Cold pool size (record pages).
  uint64_t seed = 42;
  double write_fraction = 0.0;  // Fraction of references that are writes.
};

class TwoPoolWorkload final : public ReferenceStringGenerator {
 public:
  explicit TwoPoolWorkload(TwoPoolOptions options);

  PageRef Next() override;
  void Reset() override;
  uint64_t NumPages() const override { return options_.n1 + options_.n2; }
  std::string_view Name() const override { return "two-pool"; }
  std::optional<std::vector<double>> Probabilities() const override;

  uint32_t ClassOf(PageId page) const override {
    return page < options_.n1 ? 0 : 1;
  }
  uint32_t NumClasses() const override { return 2; }
  std::string_view ClassName(uint32_t cls) const override {
    return cls == 0 ? "pool1(hot)" : "pool2(cold)";
  }

 private:
  TwoPoolOptions options_;
  RandomEngine rng_;
  bool next_is_pool1_ = true;
};

}  // namespace lruk

#endif  // LRUK_WORKLOAD_TWO_POOL_H_
