// Uniform independent references over N pages — the skewless control
// workload (every policy should converge to hit ratio ~ B/N).

#ifndef LRUK_WORKLOAD_UNIFORM_WORKLOAD_H_
#define LRUK_WORKLOAD_UNIFORM_WORKLOAD_H_

#include "util/random.h"
#include "workload/workload.h"

namespace lruk {

struct UniformOptions {
  uint64_t num_pages = 1000;
  uint64_t seed = 42;
  double write_fraction = 0.0;
};

class UniformWorkload final : public ReferenceStringGenerator {
 public:
  explicit UniformWorkload(UniformOptions options);

  PageRef Next() override;
  void Reset() override;
  uint64_t NumPages() const override { return options_.num_pages; }
  std::string_view Name() const override { return "uniform"; }
  std::optional<std::vector<double>> Probabilities() const override;

 private:
  UniformOptions options_;
  RandomEngine rng_;
};

}  // namespace lruk

#endif  // LRUK_WORKLOAD_UNIFORM_WORKLOAD_H_
