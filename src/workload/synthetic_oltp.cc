#include "workload/synthetic_oltp.h"

#include <algorithm>
#include <numeric>
#include <cmath>

#include "util/macros.h"

namespace lruk {

SyntheticOltpWorkload::SyntheticOltpWorkload(SyntheticOltpOptions options)
    : options_(options),
      probe_dist_(options.skew_ref_fraction, options.skew_page_fraction,
                  options.num_pages),
      rng_(options.seed),
      drift_rng_(options.seed ^ 0xD81F7ULL) {
  LRUK_ASSERT(options_.num_pages >= 100, "trace database too small");
  double probe_share =
      1.0 - options_.sequential_share - options_.navigational_share;
  LRUK_ASSERT(probe_share >= 0.0, "mixture shares exceed 1");
  LRUK_ASSERT(options_.mean_scan_run >= 1.0 && options_.mean_nav_run >= 1.0,
              "mean run lengths must be >= 1");

  // Convert reference shares into run-start probabilities. Each idle
  // decision yields `mean_run` references for a run mode and 1 for a
  // probe, so per-decision expected references are
  //   E = 1 / (probe_share + seq/mean_scan + nav/mean_nav)
  // and the start probability of a mode is share * E / mean_run.
  double denom = probe_share +
                 options_.sequential_share / options_.mean_scan_run +
                 options_.navigational_share / options_.mean_nav_run;
  LRUK_ASSERT(denom > 0.0, "degenerate mixture");
  double per_decision_refs = 1.0 / denom;
  scan_start_probability_ =
      options_.sequential_share * per_decision_refs / options_.mean_scan_run;
  nav_start_probability_ =
      options_.navigational_share * per_decision_refs / options_.mean_nav_run;

  a_end_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(options_.skew_page_fraction *
                               static_cast<double>(options_.num_pages)));
  b_end_ = std::min(
      options_.num_pages - 1,
      std::max(a_end_ + 1,
               static_cast<uint64_t>(0.65 *
                                     static_cast<double>(options_.num_pages))));
  page_of_rank_.resize(options_.num_pages);
  rank_of_page_.resize(options_.num_pages);
  std::iota(page_of_rank_.begin(), page_of_rank_.end(), PageId{0});
  std::iota(rank_of_page_.begin(), rank_of_page_.end(), uint64_t{0});
}

void SyntheticOltpWorkload::ChurnStep() {
  // One random hot-band rank trades places with one random colder rank:
  // a hot record abruptly goes cold and an unknown one becomes hot.
  uint64_t hot_rank = drift_rng_.NextBounded(a_end_);
  uint64_t cold_rank =
      a_end_ + drift_rng_.NextBounded(options_.num_pages - a_end_);
  PageId hot_page = page_of_rank_[hot_rank];
  PageId cold_page = page_of_rank_[cold_rank];
  std::swap(page_of_rank_[hot_rank], page_of_rank_[cold_rank]);
  std::swap(rank_of_page_[hot_page], rank_of_page_[cold_page]);
}

uint32_t SyntheticOltpWorkload::ClassOf(PageId page) const {
  uint64_t rank_pos = rank_of_page_[page];
  if (rank_pos < a_end_) return 0;
  if (rank_pos < b_end_) return 1;
  return 2;
}

PageId SyntheticOltpWorkload::SampleProbe() {
  return page_of_rank_[probe_dist_.Sample(rng_) - 1];
}

uint64_t SyntheticOltpWorkload::GeometricLength(double mean) {
  // Geometric with the given mean (>= 1): P(len = n) = p(1-p)^(n-1),
  // p = 1/mean, sampled by inversion.
  double p = 1.0 / std::max(1.0, mean);
  double u = rng_.NextDouble();
  double len = std::ceil(std::log1p(-u) / std::log1p(-p));
  if (len < 1.0) len = 1.0;
  if (len > 1e6) len = 1e6;
  return static_cast<uint64_t>(len);
}

PageRef SyntheticOltpWorkload::Next() {
  PageRef ref;
  ++refs_emitted_;
  if (options_.hot_drift_period != 0 &&
      refs_emitted_ % options_.hot_drift_period == 0) {
    ChurnStep();
  }
  if (mode_ != Mode::kIdle) {
    // Continue the active run.
    if (mode_ == Mode::kScan) {
      cursor_ = (cursor_ + 1) % options_.num_pages;
    } else {
      // Navigational hop: forward along the record chain (no revisits
      // within a run; CODASYL set traversal moves forward).
      cursor_ = (cursor_ + 1 + rng_.NextBounded(options_.nav_stride)) %
                options_.num_pages;
    }
    ref.page = cursor_;
    if (--run_remaining_ == 0) mode_ = Mode::kIdle;
  } else {
    double u = rng_.NextDouble();
    if (u < scan_start_probability_) {
      // Start a scan run at a uniformly random position.
      cursor_ = rng_.NextBounded(options_.num_pages);
      run_remaining_ = GeometricLength(options_.mean_scan_run);
      mode_ = Mode::kScan;
      ref.page = cursor_;
      if (--run_remaining_ == 0) mode_ = Mode::kIdle;
    } else if (u < scan_start_probability_ + nav_start_probability_) {
      // Start a navigational walk from a skew-sampled record.
      cursor_ = SampleProbe();
      run_remaining_ = GeometricLength(options_.mean_nav_run);
      mode_ = Mode::kNav;
      ref.page = cursor_;
      if (--run_remaining_ == 0) mode_ = Mode::kIdle;
    } else {
      ref.page = SampleProbe();
    }
  }
  ref.type = rng_.NextBernoulli(options_.write_fraction) ? AccessType::kWrite
                                                         : AccessType::kRead;
  return ref;
}

void SyntheticOltpWorkload::Reset() {
  rng_ = RandomEngine(options_.seed);
  drift_rng_ = RandomEngine(options_.seed ^ 0xD81F7ULL);
  mode_ = Mode::kIdle;
  run_remaining_ = 0;
  cursor_ = 0;
  refs_emitted_ = 0;
  std::iota(page_of_rank_.begin(), page_of_rank_.end(), PageId{0});
  std::iota(rank_of_page_.begin(), rank_of_page_.end(), uint64_t{0});
}

}  // namespace lruk
