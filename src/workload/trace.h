// Trace capture and replay, so users can feed real page-reference traces
// (the role the bank's OLTP trace plays in Section 4.3) into the simulator.
//
// Text format, one reference per line:
//     <page-id> [R|W] [process-id]
// Blank lines and lines starting with '#' are ignored; the access type
// defaults to R and the process id to 0. The writer always emits all
// three columns.

#ifndef LRUK_WORKLOAD_TRACE_H_
#define LRUK_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "workload/workload.h"

namespace lruk {

// Replays a fixed reference vector. Unlike the generative workloads the
// stream *does* end; Next() past the end wraps around (and exhausted() can
// be checked to stop at one pass).
class TraceWorkload final : public ReferenceStringGenerator {
 public:
  explicit TraceWorkload(std::vector<PageRef> refs);

  PageRef Next() override;
  void Reset() override { pos_ = 0; }
  uint64_t NumPages() const override { return num_pages_; }
  std::string_view Name() const override { return "trace"; }

  size_t size() const { return refs_.size(); }
  // True once one full pass has been emitted (wraps afterwards).
  bool exhausted() const { return pos_ >= refs_.size(); }
  const std::vector<PageRef>& refs() const { return refs_; }

 private:
  std::vector<PageRef> refs_;
  uint64_t num_pages_ = 0;
  size_t pos_ = 0;
};

// Parses the text trace format from a file.
Result<std::vector<PageRef>> ReadTraceFile(const std::string& path);

// Parses the text trace format from a string (tests).
Result<std::vector<PageRef>> ParseTrace(const std::string& text);

// Writes refs in the text trace format. Overwrites `path`.
Status WriteTraceFile(const std::string& path,
                      const std::vector<PageRef>& refs);

}  // namespace lruk

#endif  // LRUK_WORKLOAD_TRACE_H_
