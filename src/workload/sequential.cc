#include "workload/sequential.h"

#include "util/macros.h"

namespace lruk {

SequentialScanWorkload::SequentialScanWorkload(SequentialScanOptions options)
    : options_(options), next_(options.start % options.num_pages) {
  LRUK_ASSERT(options_.num_pages >= 1, "need at least one page");
}

PageRef SequentialScanWorkload::Next() {
  PageRef ref;
  ref.page = next_;
  next_ = (next_ + 1) % options_.num_pages;
  return ref;
}

void SequentialScanWorkload::Reset() {
  next_ = options_.start % options_.num_pages;
}

MixedScanWorkload::MixedScanWorkload(MixedScanOptions options)
    : options_(options),
      rng_(options.seed),
      scan_active_(options.scan_initially_active) {
  LRUK_ASSERT(options_.hot_pages >= 1 &&
                  options_.hot_pages <= options_.total_pages,
              "hot set must fit in the database");
}

PageRef MixedScanWorkload::InteractiveRef() {
  PageRef ref;
  if (rng_.NextBernoulli(options_.hot_probability)) {
    ref.page = rng_.NextBounded(options_.hot_pages);
  } else {
    ref.page = rng_.NextBounded(options_.total_pages);
  }
  return ref;
}

PageRef MixedScanWorkload::Next() {
  if (scan_active_ && rng_.NextBernoulli(options_.scan_fraction)) {
    PageRef ref;
    ref.page = scan_cursor_;
    scan_cursor_ = (scan_cursor_ + 1) % options_.total_pages;
    return ref;
  }
  return InteractiveRef();
}

void MixedScanWorkload::Reset() {
  rng_ = RandomEngine(options_.seed);
  scan_active_ = options_.scan_initially_active;
  scan_cursor_ = 0;
}

}  // namespace lruk
