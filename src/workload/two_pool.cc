#include "workload/two_pool.h"

#include "util/macros.h"

namespace lruk {

TwoPoolWorkload::TwoPoolWorkload(TwoPoolOptions options)
    : options_(options), rng_(options.seed) {
  LRUK_ASSERT(options_.n1 >= 1 && options_.n2 >= 1,
              "both pools must be nonempty");
}

PageRef TwoPoolWorkload::Next() {
  PageRef ref;
  if (next_is_pool1_) {
    ref.page = rng_.NextBounded(options_.n1);
  } else {
    ref.page = options_.n1 + rng_.NextBounded(options_.n2);
  }
  next_is_pool1_ = !next_is_pool1_;
  ref.type = rng_.NextBernoulli(options_.write_fraction) ? AccessType::kWrite
                                                         : AccessType::kRead;
  return ref;
}

void TwoPoolWorkload::Reset() {
  rng_ = RandomEngine(options_.seed);
  next_is_pool1_ = true;
}

std::optional<std::vector<double>> TwoPoolWorkload::Probabilities() const {
  std::vector<double> probs(NumPages());
  double p1 = 1.0 / (2.0 * static_cast<double>(options_.n1));
  double p2 = 1.0 / (2.0 * static_cast<double>(options_.n2));
  for (uint64_t p = 0; p < options_.n1; ++p) probs[p] = p1;
  for (uint64_t p = options_.n1; p < NumPages(); ++p) probs[p] = p2;
  return probs;
}

}  // namespace lruk
