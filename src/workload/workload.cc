#include "workload/workload.h"

namespace lruk {

std::vector<PageId> MaterializeTrace(ReferenceStringGenerator& generator,
                                     size_t count) {
  std::vector<PageId> trace;
  trace.reserve(count);
  for (size_t i = 0; i < count; ++i) trace.push_back(generator.Next().page);
  return trace;
}

std::vector<PageRef> MaterializeRefs(ReferenceStringGenerator& generator,
                                     size_t count) {
  std::vector<PageRef> refs;
  refs.reserve(count);
  for (size_t i = 0; i < count; ++i) refs.push_back(generator.Next());
  return refs;
}

}  // namespace lruk
