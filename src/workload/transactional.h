// Multi-process transactional workload, generating the paper's Section
// 2.1.1 correlated reference-pair types organically rather than by
// decoration:
//
//   type 1 (intra-transaction)  — a transaction reads a page and later
//                                 updates it before committing;
//   type 2 (transaction-retry)  — a transaction aborts and re-executes,
//                                 touching the same pages again;
//   type 3 (intra-process)      — a batch process commits and its next
//                                 transaction continues on the same page;
//   type 4 (inter-process)      — independent processes happen to touch
//                                 the same (hot) page.
//
// `num_processes` concurrent processes run transactions over a skewed page
// population; their references interleave round-robin, so the gap between
// two correlated references of one transaction is about `num_processes`
// ticks — which is exactly why the Correlated Reference Period (and its
// per-process refinement) exists.

#ifndef LRUK_WORKLOAD_TRANSACTIONAL_H_
#define LRUK_WORKLOAD_TRANSACTIONAL_H_

#include <deque>
#include <vector>

#include "util/random.h"
#include "util/zipf.h"
#include "workload/workload.h"

namespace lruk {

struct TransactionalOptions {
  uint32_t num_processes = 8;
  uint64_t num_pages = 10000;
  // Skew of transaction target pages (recursive alpha-beta, 80-20 default).
  double alpha = 0.8;
  double beta = 0.2;
  // Distinct pages per transaction (geometric, mean >= 1).
  double mean_pages_per_transaction = 5.0;
  // Type 1: probability a page is re-referenced (read, then updated)
  // within the same transaction.
  double intra_transaction_reref = 0.4;
  // Type 2: probability a completed transaction aborts and re-executes.
  double retry_probability = 0.05;
  // Type 3: probability the process's next transaction starts on the same
  // page the previous one ended on (batch update pattern).
  double batch_continuation = 0.2;
  uint64_t seed = 42;
};

class TransactionalWorkload final : public ReferenceStringGenerator {
 public:
  explicit TransactionalWorkload(TransactionalOptions options);

  PageRef Next() override;
  void Reset() override;
  uint64_t NumPages() const override { return options_.num_pages; }
  std::string_view Name() const override { return "transactional"; }

 private:
  struct Process {
    std::deque<PageRef> script;     // Remaining refs of the current txn.
    std::vector<PageRef> last_txn;  // For type-2 retries.
    PageId last_page = kInvalidPageId;  // For type-3 continuation.
  };

  // Builds the next transaction's reference script for process `pid`.
  void StartTransaction(uint32_t pid);

  TransactionalOptions options_;
  RecursiveSkewDistribution dist_;
  RandomEngine rng_;
  std::vector<Process> processes_;
  uint32_t next_process_ = 0;
};

}  // namespace lruk

#endif  // LRUK_WORKLOAD_TRANSACTIONAL_H_
