// Sequential-scan workloads for the Example 1.2 experiments ("cache
// swamping by sequential scans").
//
//  * SequentialScanWorkload — a pure cyclic scan over N pages; the
//    degenerate case where LRU keeps exactly the wrong pages.
//  * MixedScanWorkload — the Example 1.2 scenario: interactive processes
//    with high locality (a hot set absorbing most references) sharing the
//    buffer with batch processes running full sequential scans. The scan
//    can be toggled to model before/during/after phases.

#ifndef LRUK_WORKLOAD_SEQUENTIAL_H_
#define LRUK_WORKLOAD_SEQUENTIAL_H_

#include "util/random.h"
#include "workload/workload.h"

namespace lruk {

struct SequentialScanOptions {
  uint64_t num_pages = 1000;
  PageId start = 0;
};

class SequentialScanWorkload final : public ReferenceStringGenerator {
 public:
  explicit SequentialScanWorkload(SequentialScanOptions options);

  PageRef Next() override;
  void Reset() override;
  uint64_t NumPages() const override { return options_.num_pages; }
  std::string_view Name() const override { return "sequential-scan"; }

 private:
  SequentialScanOptions options_;
  PageId next_;
};

struct MixedScanOptions {
  // Example 1.2 figures: 5000 hot pages out of 1,000,000 take 95% of the
  // interactive references. Scaled-down defaults keep simulations fast;
  // the bench scales them up.
  uint64_t hot_pages = 500;
  uint64_t total_pages = 100000;
  double hot_probability = 0.95;
  // Fraction of references issued by the scanning batch process while a
  // scan is active (interleaving ratio).
  double scan_fraction = 0.5;
  uint64_t seed = 42;
  bool scan_initially_active = false;
};

class MixedScanWorkload final : public ReferenceStringGenerator {
 public:
  explicit MixedScanWorkload(MixedScanOptions options);

  PageRef Next() override;
  void Reset() override;
  uint64_t NumPages() const override { return options_.total_pages; }
  std::string_view Name() const override { return "mixed-scan"; }

  // Page classes: 0 = hot set, 1 = cold.
  uint32_t ClassOf(PageId page) const override {
    return page < options_.hot_pages ? 0 : 1;
  }
  uint32_t NumClasses() const override { return 2; }
  std::string_view ClassName(uint32_t cls) const override {
    return cls == 0 ? "hot" : "cold";
  }

  // Phase control for the before/during/after experiment.
  void SetScanActive(bool active) { scan_active_ = active; }
  bool scan_active() const { return scan_active_; }

 private:
  PageRef InteractiveRef();

  MixedScanOptions options_;
  RandomEngine rng_;
  bool scan_active_;
  PageId scan_cursor_ = 0;
};

}  // namespace lruk

#endif  // LRUK_WORKLOAD_SEQUENTIAL_H_
