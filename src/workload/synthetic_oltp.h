// Synthetic stand-in for the paper's Section 4.3 OLTP trace (a one-hour
// page-reference trace of a large bank's production CODASYL system,
// ~470,000 references, 20 GB database). The real trace is unavailable, so
// this generator reproduces the *statistics the paper reports about it*:
//
//  * "random, sequential, and navigational references to a CODASYL
//    database" — a three-way mixture of (a) independent skewed probes,
//    (b) sequential scan runs, (c) navigational chain traversals (short
//    forward hops along record chains);
//  * "an extremely high access skew for the hottest pages: 40% of the
//    references access only 3% of the database pages" while "90% of the
//    references access 65% of the pages" — the probes draw from a
//    recursive skew distribution with alpha = 0.40, beta = 0.03, whose
//    closed-form CDF (i/N)^(log alpha / log beta) matches BOTH quantiles:
//    Cdf(3%) = 0.40 exactly and Cdf(65%) = 0.894 ~ 0.90.
//
// Mixture components are specified as shares of *references* (not of run
// starts), so `sequential_share = 0.15` really means 15% of the emitted
// reference string comes from scan runs regardless of the mean run length.
//
// See DESIGN.md's substitution table for why this preserves the Table 4.3
// comparison (the conclusions depend on the hot-head/flat-tail skew shape
// plus scan/navigational pollution, not the literal bank data).

#ifndef LRUK_WORKLOAD_SYNTHETIC_OLTP_H_
#define LRUK_WORKLOAD_SYNTHETIC_OLTP_H_

#include <vector>

#include "util/random.h"
#include "util/zipf.h"
#include "workload/workload.h"

namespace lruk {

struct SyntheticOltpOptions {
  uint64_t num_pages = 25000;  // Pages accessed in the trace.
  // Probe skew: `skew_ref_fraction` of probe references hit
  // `skew_page_fraction` of the pages, recursively (paper quantiles).
  double skew_ref_fraction = 0.40;
  double skew_page_fraction = 0.03;
  // Reference-share mixture. Shares must sum to < 1; the remainder are
  // independent skewed probes.
  double sequential_share = 0.15;
  double navigational_share = 0.15;
  double mean_scan_run = 24.0;  // Geometric mean run lengths.
  double mean_nav_run = 8.0;
  uint64_t nav_stride = 3;  // Forward hop of 1..nav_stride pages.
  double write_fraction = 0.2;
  // Slow hot-spot churn: every `hot_drift_period` references one random
  // hot-band rank trades places with one random cold rank (0 disables).
  // A production workload is only "fairly stable" over an hour (paper
  // Section 4.3) — individual hot records come and go even while the
  // aggregate skew stays fixed. The default churns a hot page's identity
  // with a half-life of ~56k references (~7 minutes of the hour-long
  // trace); this is what separates LRU-2 (which re-evaluates a page from
  // its last two references) from the never-forgetting LFU, exactly as
  // the paper observed.
  uint64_t hot_drift_period = 75;
  uint64_t seed = 42;
};

class SyntheticOltpWorkload final : public ReferenceStringGenerator {
 public:
  explicit SyntheticOltpWorkload(SyntheticOltpOptions options);

  PageRef Next() override;
  void Reset() override;
  uint64_t NumPages() const override { return options_.num_pages; }
  std::string_view Name() const override { return "synthetic-oltp"; }

  // Classes follow the two reported quantile boundaries:
  // 0 = hottest 3%, 1 = next 62%, 2 = coldest 35%.
  uint32_t ClassOf(PageId page) const override;
  uint32_t NumClasses() const override { return 3; }
  std::string_view ClassName(uint32_t cls) const override {
    switch (cls) {
      case 0:
        return "hot3%";
      case 1:
        return "warm62%";
      default:
        return "cold35%";
    }
  }

 private:
  enum class Mode { kIdle, kScan, kNav };

  PageId SampleProbe();
  uint64_t GeometricLength(double mean);
  // Applies one hot/cold swap to the rank -> page mapping.
  void ChurnStep();

  SyntheticOltpOptions options_;
  RecursiveSkewDistribution probe_dist_;
  RandomEngine rng_;
  RandomEngine drift_rng_;
  // page_of_rank_[r] = page currently holding rank r+1; rank_of_page_ is
  // its inverse (used by ClassOf).
  std::vector<PageId> page_of_rank_;
  std::vector<uint64_t> rank_of_page_;
  // Per-idle-decision start probabilities derived from reference shares.
  double scan_start_probability_;
  double nav_start_probability_;
  // Class boundaries (page ids): [0, a_end_) hot, [a_end_, b_end_) warm.
  uint64_t a_end_;
  uint64_t b_end_;

  Mode mode_ = Mode::kIdle;
  uint64_t run_remaining_ = 0;
  PageId cursor_ = 0;
  uint64_t refs_emitted_ = 0;
};

}  // namespace lruk

#endif  // LRUK_WORKLOAD_SYNTHETIC_OLTP_H_
