// The Zipfian random-access workload of Section 4.2: independent references
// over N pages where P(page number <= i) = (i/N)^(log alpha / log beta) —
// a fraction alpha of references hits a fraction beta of the pages,
// recursively. Page id = rank - 1 by default (page 0 is hottest); an
// optional seeded shuffle decouples hotness from page-id order so policies
// cannot accidentally benefit from id locality.

#ifndef LRUK_WORKLOAD_ZIPFIAN_WORKLOAD_H_
#define LRUK_WORKLOAD_ZIPFIAN_WORKLOAD_H_

#include <vector>

#include "util/random.h"
#include "util/zipf.h"
#include "workload/workload.h"

namespace lruk {

struct ZipfianOptions {
  uint64_t num_pages = 1000;
  double alpha = 0.8;  // Fraction of references...
  double beta = 0.2;   // ...hitting this fraction of pages (80-20 skew).
  uint64_t seed = 42;
  bool shuffle_pages = false;
  double write_fraction = 0.0;
};

class ZipfianWorkload final : public ReferenceStringGenerator {
 public:
  explicit ZipfianWorkload(ZipfianOptions options);

  PageRef Next() override;
  void Reset() override;
  uint64_t NumPages() const override { return options_.num_pages; }
  std::string_view Name() const override { return "zipfian"; }
  std::optional<std::vector<double>> Probabilities() const override;

 private:
  ZipfianOptions options_;
  RecursiveSkewDistribution dist_;
  RandomEngine rng_;
  // rank-1 -> page id (identity unless shuffle_pages).
  std::vector<PageId> page_of_rank_;
};

}  // namespace lruk

#endif  // LRUK_WORKLOAD_ZIPFIAN_WORKLOAD_H_
