// Reference-string generation (Section 2 of the paper: the system's paging
// behaviour is described by its reference string r_1, r_2, ..., r_t).
//
// A ReferenceStringGenerator produces an endless deterministic stream of
// page references. Reset() rewinds the stream to its beginning so the
// *identical* string can be replayed against every policy under comparison
// (and materialized in advance for the Belady oracle).

#ifndef LRUK_WORKLOAD_WORKLOAD_H_
#define LRUK_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace lruk {

// One element of the reference string. `process` identifies the issuing
// process/transaction stream (the paper's Section 2.1.1 distinguishes
// correlated reference-pair types by process); single-stream workloads
// leave it 0.
struct PageRef {
  PageId page = kInvalidPageId;
  AccessType type = AccessType::kRead;
  uint32_t process = 0;
};

class ReferenceStringGenerator {
 public:
  virtual ~ReferenceStringGenerator() = default;

  // Produces the next reference. The stream never ends.
  virtual PageRef Next() = 0;

  // Rewinds to the beginning of the exact same stream.
  virtual void Reset() = 0;

  // Page ids are dense in [0, NumPages()).
  virtual uint64_t NumPages() const = 0;

  virtual std::string_view Name() const = 0;

  // The true stationary per-page reference probabilities beta_p, when the
  // workload is an Independent Reference Model (feeds the A0 oracle).
  // nullopt for non-stationary workloads (scans, moving hot spots, ...).
  virtual std::optional<std::vector<double>> Probabilities() const {
    return std::nullopt;
  }

  // Workload-defined page class (e.g. index pool vs record pool), used for
  // buffer-composition statistics. Classes are dense in [0, NumClasses()).
  virtual uint32_t ClassOf(PageId /*page*/) const { return 0; }
  virtual uint32_t NumClasses() const { return 1; }
  virtual std::string_view ClassName(uint32_t /*cls*/) const { return "all"; }
};

// Draws `count` references and returns just the page ids, leaving the
// generator positioned after them. Callers normally Reset() afterwards —
// this is how the Belady oracle gets its future.
std::vector<PageId> MaterializeTrace(ReferenceStringGenerator& generator,
                                     size_t count);

// Draws `count` full references (page + access type).
std::vector<PageRef> MaterializeRefs(ReferenceStringGenerator& generator,
                                     size_t count);

}  // namespace lruk

#endif  // LRUK_WORKLOAD_WORKLOAD_H_
