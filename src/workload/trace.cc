#include "workload/trace.h"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <utility>

namespace lruk {

TraceWorkload::TraceWorkload(std::vector<PageRef> refs)
    : refs_(std::move(refs)) {
  LRUK_ASSERT(!refs_.empty(), "trace must contain at least one reference");
  for (const PageRef& ref : refs_) {
    if (ref.page + 1 > num_pages_) num_pages_ = ref.page + 1;
  }
}

PageRef TraceWorkload::Next() {
  PageRef ref = refs_[pos_ % refs_.size()];
  ++pos_;
  return ref;
}

Result<std::vector<PageRef>> ParseTrace(const std::string& text) {
  std::vector<PageRef> refs;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip leading whitespace; skip blanks and comments.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream fields(line.substr(start));
    uint64_t page = 0;
    if (!(fields >> page)) {
      return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                     ": expected a page id");
    }
    PageRef ref;
    ref.page = page;
    std::string type;
    if (fields >> type) {
      if (type == "W" || type == "w") {
        ref.type = AccessType::kWrite;
      } else if (type == "R" || type == "r") {
        ref.type = AccessType::kRead;
      } else {
        return Status::InvalidArgument("trace line " +
                                       std::to_string(line_no) +
                                       ": bad access type '" + type + "'");
      }
    }
    uint32_t process = 0;
    if (fields >> process) {
      ref.process = process;
    } else if (!fields.eof()) {
      return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                     ": bad process id");
    }
    refs.push_back(ref);
  }
  if (refs.empty()) {
    return Status::InvalidArgument("trace contains no references");
  }
  return refs;
}

Result<std::vector<PageRef>> ReadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file: " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("error reading trace file: " + path);
  }
  return ParseTrace(text);
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<PageRef>& refs) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create trace file: " + path);
  }
  std::fprintf(f, "# lruk trace: %zu references (page type process)\n",
               refs.size());
  for (const PageRef& ref : refs) {
    std::fprintf(f, "%llu %c %u\n",
                 static_cast<unsigned long long>(ref.page),
                 ref.type == AccessType::kWrite ? 'W' : 'R', ref.process);
  }
  bool write_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0) write_error = true;
  if (write_error) {
    return Status::IoError("error writing trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace lruk
