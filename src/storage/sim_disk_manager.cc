#include "storage/sim_disk_manager.h"

#include <cstring>
#include <mutex>

namespace lruk {

SimDiskManager::SimDiskManager(SimDiskOptions options) : options_(options) {}

Status SimDiskManager::ReadPage(PageId p, char* out) {
  std::lock_guard<std::mutex> guard(latch_);
  auto it = pages_.find(p);
  if (it == pages_.end()) {
    ++stats_.read_failures;
    return Status::NotFound("read of unallocated page " + std::to_string(p));
  }
  if (it->second.data == nullptr) {
    std::memset(out, 0, kPageSize);  // Allocated but never written: zeros.
  } else {
    std::memcpy(out, it->second.data.get(), kPageSize);
  }
  ++stats_.reads;
  stats_.simulated_micros += options_.read_micros;
  return Status::Ok();
}

Status SimDiskManager::WritePage(PageId p, const char* data) {
  std::lock_guard<std::mutex> guard(latch_);
  auto it = pages_.find(p);
  if (it == pages_.end()) {
    ++stats_.write_failures;
    return Status::NotFound("write of unallocated page " + std::to_string(p));
  }
  if (it->second.data == nullptr) {
    it->second.data = std::make_unique<char[]>(kPageSize);
  }
  std::memcpy(it->second.data.get(), data, kPageSize);
  ++stats_.writes;
  stats_.simulated_micros += options_.write_micros;
  return Status::Ok();
}

Result<PageId> SimDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> guard(latch_);
  PageId p;
  if (!free_list_.empty()) {
    p = free_list_.back();
    free_list_.pop_back();
  } else {
    p = next_page_id_++;
  }
  pages_.emplace(p, Slot{});
  ++stats_.allocations;
  return p;
}

Status SimDiskManager::DeallocatePage(PageId p) {
  std::lock_guard<std::mutex> guard(latch_);
  auto it = pages_.find(p);
  if (it == pages_.end()) {
    return Status::NotFound("deallocation of unallocated page " +
                            std::to_string(p));
  }
  pages_.erase(it);
  free_list_.push_back(p);
  ++stats_.deallocations;
  return Status::Ok();
}

uint64_t SimDiskManager::NumAllocatedPages() const {
  std::lock_guard<std::mutex> guard(latch_);
  return pages_.size();
}

}  // namespace lruk
