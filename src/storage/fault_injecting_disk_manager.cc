#include "storage/fault_injecting_disk_manager.h"

#include <cstring>
#include <mutex>
#include <utility>

#include "util/random.h"

namespace lruk {

FaultRule FaultRule::FailNth(FaultOp op, uint64_t nth) {
  FaultRule rule;
  rule.op = op;
  rule.effect = FaultEffect::kError;
  rule.nth = nth;
  rule.max_fires = 1;
  return rule;
}

FaultRule FaultRule::FailPage(FaultOp op, PageId page) {
  FaultRule rule;
  rule.op = op;
  rule.effect = FaultEffect::kError;
  rule.page = page;
  return rule;
}

FaultRule FaultRule::FailWithProbability(FaultOp op, double p) {
  FaultRule rule;
  rule.op = op;
  rule.effect = FaultEffect::kError;
  rule.probability = p;
  return rule;
}

FaultRule FaultRule::TornWriteNth(uint64_t nth, size_t bytes_written) {
  FaultRule rule;
  rule.op = FaultOp::kWrite;
  rule.effect = FaultEffect::kTornWrite;
  rule.nth = nth;
  rule.max_fires = 1;
  rule.torn_bytes = bytes_written;
  return rule;
}

FaultRule FaultRule::TornWriteWithProbability(double p,
                                              size_t bytes_written) {
  FaultRule rule;
  rule.op = FaultOp::kWrite;
  rule.effect = FaultEffect::kTornWrite;
  rule.probability = p;
  rule.torn_bytes = bytes_written;
  return rule;
}

FaultRule FaultRule::LatencySpikeNth(FaultOp op, uint64_t nth,
                                     double micros) {
  FaultRule rule;
  rule.op = op;
  rule.effect = FaultEffect::kLatency;
  rule.nth = nth;
  rule.max_fires = 1;
  rule.latency_micros = micros;
  return rule;
}

FaultRule FaultRule::LatencyWithProbability(FaultOp op, double p,
                                            double micros) {
  FaultRule rule;
  rule.op = op;
  rule.effect = FaultEffect::kLatency;
  rule.probability = p;
  rule.latency_micros = micros;
  return rule;
}

std::string FaultEventToString(const FaultEvent& event) {
  std::string out = "op#" + std::to_string(event.op_index);
  out += event.op == FaultOp::kRead ? " read" : " write";
  out += " page " + std::to_string(event.page);
  out += " rule " + std::to_string(event.rule_index);
  switch (event.effect) {
    case FaultEffect::kError:
      out += " error";
      break;
    case FaultEffect::kTornWrite:
      out += " torn";
      break;
    case FaultEffect::kLatency:
      out += " latency";
      break;
  }
  return out;
}

FaultInjectingDiskManager::FaultInjectingDiskManager(
    DiskManager* inner, uint64_t seed, std::vector<FaultRule> schedule)
    : inner_(inner),
      rng_state_(seed),
      schedule_(std::move(schedule)),
      rule_state_(schedule_.size()),
      scratch_(std::make_unique<char[]>(kPageSize)) {
  LRUK_ASSERT(inner_ != nullptr, "fault injector needs an inner manager");
}

void FaultInjectingDiskManager::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> guard(latch_);
  schedule_.push_back(rule);
  rule_state_.emplace_back();
  healed_ = false;
}

void FaultInjectingDiskManager::Heal() {
  std::lock_guard<std::mutex> guard(latch_);
  healed_ = true;
}

bool FaultInjectingDiskManager::healed() const {
  std::lock_guard<std::mutex> guard(latch_);
  return healed_;
}

std::vector<FaultEvent> FaultInjectingDiskManager::Trace() const {
  std::lock_guard<std::mutex> guard(latch_);
  return trace_;
}

size_t FaultInjectingDiskManager::TraceSize() const {
  std::lock_guard<std::mutex> guard(latch_);
  return trace_.size();
}

double FaultInjectingDiskManager::NextDraw() {
  // 53 uniform bits into [0, 1), as RandomEngine::NextDouble does.
  return static_cast<double>(SplitMix64Next(rng_state_) >> 11) *
         (1.0 / 9007199254740992.0);
}

void FaultInjectingDiskManager::RecordEventLocked(FaultOp op, PageId p,
                                                  size_t rule_index) {
  trace_.push_back(FaultEvent{op_index_, op, schedule_[rule_index].effect, p,
                              rule_index});
}

std::optional<size_t> FaultInjectingDiskManager::EvaluateLocked(FaultOp op,
                                                                PageId p) {
  if (healed_) return std::nullopt;
  for (size_t i = 0; i < schedule_.size(); ++i) {
    const FaultRule& rule = schedule_[i];
    RuleState& state = rule_state_[i];
    if (rule.op != op) continue;
    if (rule.page.has_value() && *rule.page != p) continue;
    if (rule.max_fires != 0 && state.fires >= rule.max_fires) continue;
    ++state.matches;
    if (rule.nth != 0 && state.matches != rule.nth) continue;
    // The draw is consumed on every armed evaluation of a probabilistic
    // rule — fired or not — so the stream position is a pure function of
    // the op sequence and the faults replay exactly.
    if (rule.probability > 0.0 && NextDraw() >= rule.probability) continue;
    ++state.fires;
    if (rule.effect == FaultEffect::kLatency) {
      injected_.simulated_micros += rule.latency_micros;
      RecordEventLocked(op, p, i);
      continue;  // Non-terminal: the op still happens.
    }
    RecordEventLocked(op, p, i);
    return i;
  }
  return std::nullopt;
}

void FaultInjectingDiskManager::NoteOutcomeLocked(FaultOp op, PageId p,
                                                  bool failed) {
  if (last_op_.has_value() && last_op_->failed && last_op_->op == op &&
      last_op_->page == p) {
    ++injected_.retries;
  }
  last_op_ = LastOp{op, p, failed};
}

Status FaultInjectingDiskManager::ReadPage(PageId p, char* out) {
  std::lock_guard<std::mutex> guard(latch_);
  ++op_index_;
  std::optional<size_t> fired = EvaluateLocked(FaultOp::kRead, p);
  if (fired.has_value()) {
    ++injected_.read_failures;
    NoteOutcomeLocked(FaultOp::kRead, p, /*failed=*/true);
    return Status(schedule_[*fired].error_code,
                  "injected read fault on page " + std::to_string(p));
  }
  Status status = inner_->ReadPage(p, out);
  NoteOutcomeLocked(FaultOp::kRead, p, !status.ok());
  return status;
}

Status FaultInjectingDiskManager::WritePage(PageId p, const char* data) {
  std::lock_guard<std::mutex> guard(latch_);
  ++op_index_;
  std::optional<size_t> fired = EvaluateLocked(FaultOp::kWrite, p);
  if (fired.has_value()) {
    const FaultRule& rule = schedule_[*fired];
    if (rule.effect == FaultEffect::kTornWrite) {
      // Physically tear the page on the inner manager: old image with the
      // new prefix over it. An unreadable page (never written) tears over
      // zeros, matching what the inner read would have produced.
      if (!inner_->ReadPage(p, scratch_.get()).ok()) {
        std::memset(scratch_.get(), 0, kPageSize);
      }
      size_t n = rule.torn_bytes < kPageSize ? rule.torn_bytes : kPageSize;
      std::memcpy(scratch_.get(), data, n);
      (void)inner_->WritePage(p, scratch_.get());
    }
    ++injected_.write_failures;
    NoteOutcomeLocked(FaultOp::kWrite, p, /*failed=*/true);
    return Status(rule.error_code, (rule.effect == FaultEffect::kTornWrite
                                        ? "injected torn write on page "
                                        : "injected write fault on page ") +
                                       std::to_string(p));
  }
  Status status = inner_->WritePage(p, data);
  NoteOutcomeLocked(FaultOp::kWrite, p, !status.ok());
  return status;
}

Result<PageId> FaultInjectingDiskManager::AllocatePage() {
  return inner_->AllocatePage();
}

Status FaultInjectingDiskManager::DeallocatePage(PageId p) {
  return inner_->DeallocatePage(p);
}

uint64_t FaultInjectingDiskManager::NumAllocatedPages() const {
  return inner_->NumAllocatedPages();
}

IoStats FaultInjectingDiskManager::stats() const {
  std::lock_guard<std::mutex> guard(latch_);
  IoStats out = inner_->stats();
  out.read_failures += injected_.read_failures;
  out.write_failures += injected_.write_failures;
  out.retries += injected_.retries;
  out.simulated_micros += injected_.simulated_micros;
  return out;
}

void FaultInjectingDiskManager::ResetStats() {
  std::lock_guard<std::mutex> guard(latch_);
  inner_->ResetStats();
  injected_ = IoStats{};
  last_op_.reset();
}

}  // namespace lruk
