// Deterministic fault injection for the storage layer.
//
// FaultInjectingDiskManager wraps any DiskManager and executes a seeded,
// programmable fault schedule against the read/write stream: transient and
// permanent failures (the Nth matching op, a specific page id, or a
// Bernoulli draw from a SplitMix64 stream), torn/short writes that leave a
// partially updated page image behind, and latency spikes charged into
// IoStats::simulated_micros. Allocation and deallocation are forwarded
// untouched — the paper's Section 4 simulator models service *time* only,
// and this wrapper is how the repo generates the failure scenarios the
// simulator (and the original buffer managers) never saw.
//
// Determinism: given the same (seed, schedule) and the same sequence of
// ReadPage/WritePage calls, the injected faults are byte-for-byte
// identical — every probabilistic rule consumes exactly one SplitMix64
// draw per armed evaluation, in rule order, under the manager's latch. The
// fault trace (Trace()) records each fired rule with the global op index,
// so a replay can be asserted equal event-by-event.
//
// Stats: stats() returns the inner manager's counters plus this wrapper's
// injected ones. Injected failures never reach the inner manager (its
// reads/writes stay untouched); a torn write is the exception — it
// physically performs a read-modify-write of the victim page on the inner
// manager (counted there) and then reports failure to the caller (counted
// here as a write failure). IoStats::retries counts re-issues observed at
// this layer: a read/write of the same page immediately after a failed
// attempt of the same kind.
//
// Thread safety: every operation is serialized by an internal latch (the
// schedule state, RNG stream and trace are shared), so the wrapper is safe
// under a ShardedBufferPool wherever the inner manager is.

#ifndef LRUK_STORAGE_FAULT_INJECTING_DISK_MANAGER_H_
#define LRUK_STORAGE_FAULT_INJECTING_DISK_MANAGER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/disk_manager.h"

namespace lruk {

// Which half of the page I/O stream a rule applies to.
enum class FaultOp : uint8_t { kRead = 0, kWrite = 1 };

// What a fired rule does to the matching operation.
enum class FaultEffect : uint8_t {
  // Fail with `error_code`; the inner manager is never called.
  kError = 0,
  // Write only the first `torn_bytes` of the new image over the old page
  // contents on the inner manager, then fail the call — the torn page is
  // what a crashed sector-granular write leaves on disk.
  kTornWrite = 1,
  // Let the op through but charge `latency_micros` of simulated service
  // time (a latency spike, not a failure). Non-terminal: later rules still
  // evaluate against the same op.
  kLatency = 2,
};

// One entry of a fault schedule. A rule *matches* an op of its kind whose
// page passes the optional filter; each match increments the rule's private
// match counter. A matching rule *fires* when its nth/probability trigger
// holds and it has charges left (`max_fires`, 0 = unlimited). Rules are
// evaluated in schedule order; the first kError/kTornWrite fire terminates
// the op, kLatency fires accumulate.
struct FaultRule {
  FaultOp op = FaultOp::kRead;
  FaultEffect effect = FaultEffect::kError;
  // Trigger: if `page` is set, only ops on that page match. If `nth` > 0,
  // the rule fires on exactly its nth match (1-based). If `probability` >
  // 0, a matching op fires with that probability (one seeded draw per
  // evaluation). nth == 0 && probability == 0 fires on every match.
  std::optional<PageId> page;
  uint64_t nth = 0;
  double probability = 0.0;
  // 0 = unlimited (a "permanent" fault until Heal()); 1 = transient.
  uint64_t max_fires = 0;
  // Effect parameters.
  StatusCode error_code = StatusCode::kIoError;
  size_t torn_bytes = 512;
  double latency_micros = 0.0;

  // -- Convenience constructors for the common schedule entries. --

  // Transient: fail exactly the nth read/write (1-based), once.
  static FaultRule FailNth(FaultOp op, uint64_t nth);
  // Permanent: every op on `page` fails until Heal().
  static FaultRule FailPage(FaultOp op, PageId page);
  // Each matching op fails independently with probability `p`.
  static FaultRule FailWithProbability(FaultOp op, double p);
  // The nth write is torn after `bytes_written` bytes, once.
  static FaultRule TornWriteNth(uint64_t nth, size_t bytes_written);
  // Each write is torn with probability `p` after `bytes_written` bytes.
  static FaultRule TornWriteWithProbability(double p, size_t bytes_written);
  // The nth op is delayed by `micros` of simulated service time, once.
  static FaultRule LatencySpikeNth(FaultOp op, uint64_t nth, double micros);
  // Each op is delayed by `micros` with probability `p`.
  static FaultRule LatencyWithProbability(FaultOp op, double p,
                                          double micros);
};

// One fired rule, recorded in the trace. op_index is the global 1-based
// count of ReadPage+WritePage calls at fire time, so traces from two runs
// line up positionally.
struct FaultEvent {
  uint64_t op_index = 0;
  FaultOp op = FaultOp::kRead;
  FaultEffect effect = FaultEffect::kError;
  PageId page = kInvalidPageId;
  size_t rule_index = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// Renders an event as "op#12 read page 7 rule 0 error" for test failures.
std::string FaultEventToString(const FaultEvent& event);

class FaultInjectingDiskManager final : public DiskManager {
 public:
  // `inner` must outlive the wrapper. The schedule may be empty (the
  // wrapper is then a transparent pass-through) and extended later with
  // AddRule.
  FaultInjectingDiskManager(DiskManager* inner, uint64_t seed = 0,
                            std::vector<FaultRule> schedule = {});

  // Appends a rule to the schedule (evaluated after the existing ones).
  // Also re-arms a healed manager.
  void AddRule(FaultRule rule);

  // Disarms the whole schedule: every subsequent op passes through
  // untouched. The trace and stats are retained for inspection.
  void Heal();
  bool healed() const;

  // Snapshot of the fired-fault trace, in firing order.
  std::vector<FaultEvent> Trace() const;
  // Number of events without copying the trace.
  size_t TraceSize() const;

  Status ReadPage(PageId p, char* out) override;
  Status WritePage(PageId p, const char* data) override;
  Result<PageId> AllocatePage() override;
  Status DeallocatePage(PageId p) override;
  uint64_t NumAllocatedPages() const override;

  // Inner counters plus the injected failures / latency / retries.
  IoStats stats() const override;
  void ResetStats() override;

 private:
  struct RuleState {
    uint64_t matches = 0;
    uint64_t fires = 0;
  };

  // Evaluates the schedule for one op. Returns the terminal rule index
  // (kError/kTornWrite) or nullopt for pass-through; latency fires are
  // applied directly. Caller holds the latch.
  std::optional<size_t> EvaluateLocked(FaultOp op, PageId p);
  void RecordEventLocked(FaultOp op, PageId p, size_t rule_index);
  // Tracks the re-issue (retry) heuristic; call once per read/write with
  // the op's final outcome. Caller holds the latch.
  void NoteOutcomeLocked(FaultOp op, PageId p, bool failed);
  // Uniform [0, 1) draw from the seeded SplitMix64 stream.
  double NextDraw();

  mutable std::mutex latch_;
  DiskManager* inner_;
  uint64_t rng_state_;
  std::vector<FaultRule> schedule_;
  std::vector<RuleState> rule_state_;
  bool healed_ = false;
  uint64_t op_index_ = 0;  // Reads + writes seen, 1-based after increment.
  std::vector<FaultEvent> trace_;
  // Last read/write outcome, for the retry counter.
  struct LastOp {
    FaultOp op;
    PageId page;
    bool failed;
  };
  std::optional<LastOp> last_op_;
  // Injected-only deltas added on top of inner_->stats().
  IoStats injected_;
  // Scratch page image for torn writes (guarded by latch_).
  std::unique_ptr<char[]> scratch_;
};

}  // namespace lruk

#endif  // LRUK_STORAGE_FAULT_INJECTING_DISK_MANAGER_H_
