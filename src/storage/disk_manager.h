// Disk abstraction under the buffer pool. Two implementations:
//   SimDiskManager  — in-memory page store with a service-time cost model,
//                     used by simulations and tests.
//   FileDiskManager — a real file on disk, used by the examples.

#ifndef LRUK_STORAGE_DISK_MANAGER_H_
#define LRUK_STORAGE_DISK_MANAGER_H_

#include <cstdint>

#include "core/types.h"
#include "util/status.h"

namespace lruk {

// Fixed page size; Example 1.1 assumes "disk pages contain 4000 bytes of
// usable space", which a 4 KiB page with headers matches.
inline constexpr size_t kPageSize = 4096;

// Cumulative I/O accounting, including the simulated elapsed service time
// (reads/writes to a simulated disk cost `read/write_micros` each, giving
// benches an I/O-time axis in addition to hit ratios).
//
// Counting semantics: `reads`/`writes` count operations that *succeeded*;
// `read_failures`/`write_failures` count operations that returned an error
// (whether injected by a FaultInjectingDiskManager or organic, e.g. a read
// of an unallocated page). `retries` counts re-issued operations — a
// read/write of the same page immediately after a failed attempt of the
// same kind — as observed by managers that can detect them (the fault
// injector); plain managers leave it 0.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t deallocations = 0;
  uint64_t read_failures = 0;
  uint64_t write_failures = 0;
  uint64_t retries = 0;
  double simulated_micros = 0.0;
};

class DiskManager {
 public:
  DiskManager() = default;
  virtual ~DiskManager() = default;
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  // Reads page `p` into `out` (exactly kPageSize bytes).
  virtual Status ReadPage(PageId p, char* out) = 0;

  // Writes kPageSize bytes from `data` to page `p`.
  virtual Status WritePage(PageId p, const char* data) = 0;

  // Allocates a fresh zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  // Returns `p` to the allocator. Reading a deallocated page is an error.
  virtual Status DeallocatePage(PageId p) = 0;

  // Number of currently allocated pages.
  virtual uint64_t NumAllocatedPages() const = 0;

  // Virtual so wrapping managers (FaultInjectingDiskManager) can merge
  // their own accounting into the view; returns by value for that reason.
  // ResetStats() zeroes every IoStats field, including the failure/retry
  // counters.
  virtual IoStats stats() const { return stats_; }
  virtual void ResetStats() { stats_ = IoStats{}; }

 protected:
  IoStats stats_;
};

}  // namespace lruk

#endif  // LRUK_STORAGE_DISK_MANAGER_H_
