#include "storage/file_disk_manager.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "util/macros.h"

namespace lruk {

FileDiskManager::FileDiskManager(const std::string& path) : path_(path) {
  // "r+b" keeps existing contents; fall back to "w+b" to create.
  file_ = std::fopen(path.c_str(), "r+b");
  if (file_ == nullptr) file_ = std::fopen(path.c_str(), "w+b");
  if (file_ == nullptr) return;
  if (std::fseek(file_, 0, SEEK_END) == 0) {
    long size = std::ftell(file_);
    if (size > 0) {
      next_page_id_ = static_cast<PageId>(size) / kPageSize;
    }
  }
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDiskManager::ReadPage(PageId p, char* out) {
  std::lock_guard<std::mutex> guard(latch_);
  if (file_ == nullptr) {
    ++stats_.read_failures;
    return Status::IoError("database file not open");
  }
  if (p >= next_page_id_ ||
      std::find(free_list_.begin(), free_list_.end(), p) != free_list_.end()) {
    ++stats_.read_failures;
    return Status::NotFound("read of unallocated page " + std::to_string(p));
  }
  if (std::fseek(file_, static_cast<long>(p * kPageSize), SEEK_SET) != 0) {
    ++stats_.read_failures;
    return Status::IoError("seek failed");
  }
  size_t n = std::fread(out, 1, kPageSize, file_);
  if (n < kPageSize) {
    // Allocated but never written past EOF: the tail reads as zeros.
    if (std::ferror(file_) != 0) {
      std::clearerr(file_);
      ++stats_.read_failures;
      return Status::IoError("read failed on page " + std::to_string(p));
    }
    std::memset(out + n, 0, kPageSize - n);
  }
  ++stats_.reads;
  return Status::Ok();
}

Status FileDiskManager::WritePage(PageId p, const char* data) {
  std::lock_guard<std::mutex> guard(latch_);
  if (file_ == nullptr) {
    ++stats_.write_failures;
    return Status::IoError("database file not open");
  }
  if (p >= next_page_id_ ||
      std::find(free_list_.begin(), free_list_.end(), p) != free_list_.end()) {
    ++stats_.write_failures;
    return Status::NotFound("write of unallocated page " + std::to_string(p));
  }
  if (std::fseek(file_, static_cast<long>(p * kPageSize), SEEK_SET) != 0) {
    ++stats_.write_failures;
    return Status::IoError("seek failed");
  }
  if (std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    ++stats_.write_failures;
    return Status::IoError("write failed on page " + std::to_string(p));
  }
  if (std::fflush(file_) != 0) {
    ++stats_.write_failures;
    return Status::IoError("flush failed on page " + std::to_string(p));
  }
  ++stats_.writes;
  return Status::Ok();
}

Result<PageId> FileDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> guard(latch_);
  if (file_ == nullptr) return Status::IoError("database file not open");
  PageId p;
  if (!free_list_.empty()) {
    p = free_list_.back();
    free_list_.pop_back();
  } else {
    p = next_page_id_++;
  }
  ++stats_.allocations;
  return p;
}

Status FileDiskManager::DeallocatePage(PageId p) {
  std::lock_guard<std::mutex> guard(latch_);
  if (file_ == nullptr) return Status::IoError("database file not open");
  if (p >= next_page_id_ ||
      std::find(free_list_.begin(), free_list_.end(), p) != free_list_.end()) {
    return Status::NotFound("deallocation of unallocated page " +
                            std::to_string(p));
  }
  free_list_.push_back(p);
  ++stats_.deallocations;
  return Status::Ok();
}

uint64_t FileDiskManager::NumAllocatedPages() const {
  std::lock_guard<std::mutex> guard(latch_);
  return next_page_id_ - free_list_.size();
}

}  // namespace lruk
