// In-memory simulated disk with a constant-service-time cost model.
//
// Thread safety: every operation is serialized by an internal latch, so
// the shards of a ShardedBufferPool (each holding only its own shard
// latch) may issue reads, write-backs and allocations concurrently.
// stats() remains safe to read once concurrent operations have ceased.

#ifndef LRUK_STORAGE_SIM_DISK_MANAGER_H_
#define LRUK_STORAGE_SIM_DISK_MANAGER_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"

namespace lruk {

struct SimDiskOptions {
  // Service time charged per operation, modeling a late-80s disk arm
  // (~15 accesses/second ~ 66 ms would be period-faithful; defaults use a
  // modern-ish 10 ms so example output reads naturally).
  double read_micros = 10000.0;
  double write_micros = 10000.0;
};

class SimDiskManager final : public DiskManager {
 public:
  explicit SimDiskManager(SimDiskOptions options = {});

  Status ReadPage(PageId p, char* out) override;
  Status WritePage(PageId p, const char* data) override;
  Result<PageId> AllocatePage() override;
  Status DeallocatePage(PageId p) override;
  uint64_t NumAllocatedPages() const override;

 private:
  struct Slot {
    std::unique_ptr<char[]> data;  // Lazily materialized on first write.
  };

  bool Allocated(PageId p) const { return pages_.contains(p); }

  mutable std::mutex latch_;
  SimDiskOptions options_;
  PageId next_page_id_ = 0;
  std::vector<PageId> free_list_;
  std::unordered_map<PageId, Slot> pages_;
};

}  // namespace lruk

#endif  // LRUK_STORAGE_SIM_DISK_MANAGER_H_
