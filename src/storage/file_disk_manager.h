// File-backed disk manager: page p lives at byte offset p * kPageSize.
// All operations are serialized by an internal latch (one shared FILE*
// cursor), so the manager is safe under a ShardedBufferPool.
// The free list is kept in memory only (deallocated pages are reused within
// a process lifetime but not across restarts); allocation high-water mark
// is recovered from the file size on open.

#ifndef LRUK_STORAGE_FILE_DISK_MANAGER_H_
#define LRUK_STORAGE_FILE_DISK_MANAGER_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "storage/disk_manager.h"

namespace lruk {

class FileDiskManager final : public DiskManager {
 public:
  // Opens (creating if needed) the database file at `path`. Check Valid()
  // before use; all operations fail cleanly on an invalid manager.
  explicit FileDiskManager(const std::string& path);
  ~FileDiskManager() override;

  bool Valid() const { return file_ != nullptr; }

  Status ReadPage(PageId p, char* out) override;
  Status WritePage(PageId p, const char* data) override;
  Result<PageId> AllocatePage() override;
  Status DeallocatePage(PageId p) override;
  uint64_t NumAllocatedPages() const override;

 private:
  mutable std::mutex latch_;
  std::string path_;
  std::FILE* file_ = nullptr;
  PageId next_page_id_ = 0;
  std::vector<PageId> free_list_;
};

}  // namespace lruk

#endif  // LRUK_STORAGE_FILE_DISK_MANAGER_H_
