// Online estimation of the Correlated Reference Period (CRP) and Retained
// Information Period (RIP) from measured inter-reference gaps.
//
// Section 5 of the paper leaves CRP and RIP as workload-tuned constants.
// This module closes the loop: it maintains a log2-bucketed histogram of
// per-page backward reference gaps (the time between successive references
// to the same page, in the policy's logical ticks) and reads the two knobs
// off the posterior gap distribution:
//
//   CRP = the `correlated_mass` quantile — gaps below it are short
//         re-touches of the kind Section 2.1.1 calls correlated (index
//         walks, multi-row updates of one page), so treating them as one
//         reference is exactly the CRP's job;
//   RIP = the `retained_mass` quantile — a page silent for longer than
//         almost every observed revisit gap is unlikely to come back, so
//         its history block is safe to drop (the Section 5 memory
//         question).
//
// Like src/analysis/bayes.h this is a Bayesian point estimate, not a
// maximum-likelihood one: the histogram is smoothed with a Dirichlet prior
// of `prior_strength` pseudo-counts spread uniformly over the buckets, so
// early in the stream (few samples) the quantiles stay near the configured
// priors instead of whipsawing on noise, and the data takes over smoothly
// as real gaps accumulate (posterior mean of the bucket probabilities).

#ifndef LRUK_ANALYSIS_INTERVAL_ESTIMATOR_H_
#define LRUK_ANALYSIS_INTERVAL_ESTIMATOR_H_

#include <array>
#include <cstdint>
#include <unordered_map>

#include "core/history_table.h"  // kInfinitePeriod
#include "core/types.h"

namespace lruk {

struct IntervalEstimatorOptions {
  // Bound on the last-reference map (key-only, one Timestamp per tracked
  // page). When full, an arbitrary entry is dropped — losing one gap
  // sample, never correctness.
  size_t max_tracked_pages = 8192;
  // Quantiles read off the smoothed gap distribution (see file comment).
  double correlated_mass = 0.25;
  double retained_mass = 0.95;
  // Total pseudo-count mass of the uniform Dirichlet prior.
  double prior_strength = 32.0;
  // Knob values reported until the data outweighs the prior.
  Timestamp prior_crp = 0;
  Timestamp prior_rip = kInfinitePeriod;
  // Below this many gap samples the priors are returned verbatim.
  uint64_t min_samples = 64;
};

class IntervalEstimator {
 public:
  struct Estimate {
    Timestamp crp = 0;
    Timestamp rip = kInfinitePeriod;
    uint64_t samples = 0;
  };

  explicit IntervalEstimator(IntervalEstimatorOptions options = {});

  // Records a reference to `p` at logical time `now` (monotone
  // non-decreasing). The first reference to a page contributes no gap.
  void Observe(PageId p, Timestamp now);

  // Current posterior-quantile estimates (see file comment).
  Estimate Current() const;

  uint64_t samples() const { return samples_; }

  void Reset();

 private:
  // log2 buckets: bucket i holds gaps in [2^i, 2^(i+1)); bucket 0 holds
  // gap == 1 (a back-to-back re-reference). 48 buckets cover any
  // realizable logical-tick gap.
  static constexpr size_t kBuckets = 48;

  // Upper edge (inclusive) of bucket i, the value reported when a
  // quantile lands in it.
  static Timestamp BucketEdge(size_t i) {
    return (Timestamp{1} << (i + 1)) - 1;
  }

  IntervalEstimatorOptions options_;
  std::array<uint64_t, kBuckets> buckets_{};
  std::unordered_map<PageId, Timestamp> last_ref_;
  uint64_t samples_ = 0;
};

}  // namespace lruk

#endif  // LRUK_ANALYSIS_INTERVAL_ESTIMATOR_H_
