#include "analysis/lru_model.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/macros.h"

namespace lruk {

double DanTowsleyLruHitRatio(const std::vector<double>& beta,
                             size_t buffers) {
  LRUK_ASSERT(!beta.empty(), "beta must be nonempty");
  const size_t n = beta.size();
  if (buffers >= n) return 1.0;
  // b[i] = P(page i among the top-j LRU stack positions), built up one
  // stack position at a time.
  std::vector<double> b(n, 0.0);
  for (size_t j = 0; j < buffers; ++j) {
    double denom = 0.0;
    for (size_t i = 0; i < n; ++i) denom += beta[i] * (1.0 - b[i]);
    if (denom <= 0.0) break;  // Everything already resident.
    for (size_t i = 0; i < n; ++i) {
      b[i] += beta[i] * (1.0 - b[i]) / denom;
    }
  }
  double hit = 0.0;
  for (size_t i = 0; i < n; ++i) hit += beta[i] * std::min(1.0, b[i]);
  return std::min(1.0, hit);
}

double CheLruHitRatio(const std::vector<double>& beta, size_t buffers) {
  LRUK_ASSERT(!beta.empty(), "beta must be nonempty");
  const size_t n = beta.size();
  if (buffers >= n) return 1.0;

  // Expected occupancy at characteristic time T.
  auto occupancy = [&](double t) {
    double total = 0.0;
    for (double p : beta) total += 1.0 - std::exp(-p * t);
    return total;
  };

  // Bisection on T: occupancy is increasing from 0 toward n.
  double lo = 0.0;
  double hi = 1.0;
  while (occupancy(hi) < static_cast<double>(buffers)) {
    hi *= 2.0;
    LRUK_ASSERT(hi < 1e18, "characteristic time failed to bracket");
  }
  for (int iter = 0; iter < 100; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (occupancy(mid) < static_cast<double>(buffers)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  double t = 0.5 * (lo + hi);

  double hit = 0.0;
  for (double p : beta) hit += p * (1.0 - std::exp(-p * t));
  return std::min(1.0, hit);
}

double CheLruKHitRatio(const std::vector<double>& beta, int k,
                       size_t buffers) {
  LRUK_ASSERT(!beta.empty(), "beta must be nonempty");
  LRUK_ASSERT(k >= 1, "K must be >= 1");
  const size_t n = beta.size();
  if (buffers >= n) return 1.0;

  // P(Poisson(lambda) >= k) = 1 - sum_{j<k} e^-lambda lambda^j / j!.
  auto occupancy_of = [k](double lambda) {
    double term = std::exp(-lambda);  // j = 0.
    double cdf = term;
    for (int j = 1; j < k; ++j) {
      term *= lambda / j;
      cdf += term;
    }
    return 1.0 - cdf;
  };
  auto total_occupancy = [&](double t) {
    double total = 0.0;
    for (double p : beta) total += occupancy_of(p * t);
    return total;
  };

  double lo = 0.0;
  double hi = 1.0;
  while (total_occupancy(hi) < static_cast<double>(buffers)) {
    hi *= 2.0;
    LRUK_ASSERT(hi < 1e18, "characteristic time failed to bracket");
  }
  for (int iter = 0; iter < 100; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (total_occupancy(mid) < static_cast<double>(buffers)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  double t = 0.5 * (lo + hi);

  double hit = 0.0;
  for (double p : beta) hit += p * occupancy_of(p * t);
  return std::min(1.0, hit);
}

double A0HitRatio(const std::vector<double>& beta, size_t buffers) {
  LRUK_ASSERT(!beta.empty(), "beta must be nonempty");
  if (buffers >= beta.size()) return 1.0;
  std::vector<double> sorted = beta;
  std::partial_sort(sorted.begin(), sorted.begin() + buffers, sorted.end(),
                    std::greater<double>());
  double hit = 0.0;
  for (size_t i = 0; i < buffers; ++i) hit += sorted[i];
  return std::min(1.0, hit);
}

}  // namespace lruk
