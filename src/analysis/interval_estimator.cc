#include "analysis/interval_estimator.h"

#include <cmath>

#include "util/macros.h"

namespace lruk {

namespace {

// Index of the log2 bucket holding `gap` (gap >= 1).
size_t BucketFor(Timestamp gap) {
  size_t i = 0;
  while (gap > 1 && i + 1 < 48) {
    gap >>= 1;
    ++i;
  }
  return i;
}

}  // namespace

IntervalEstimator::IntervalEstimator(IntervalEstimatorOptions options)
    : options_(options) {
  LRUK_ASSERT(options_.correlated_mass > 0.0 &&
                  options_.correlated_mass < options_.retained_mass &&
                  options_.retained_mass < 1.0,
              "interval estimator quantiles must satisfy 0 < correlated < "
              "retained < 1");
  last_ref_.reserve(options_.max_tracked_pages);
}

void IntervalEstimator::Observe(PageId p, Timestamp now) {
  auto it = last_ref_.find(p);
  if (it != last_ref_.end()) {
    if (now > it->second) {
      ++buckets_[BucketFor(now - it->second)];
      ++samples_;
    }
    it->second = now;
    return;
  }
  if (last_ref_.size() >= options_.max_tracked_pages) {
    // Evict an arbitrary tracked page; one lost gap sample is cheaper than
    // an unbounded map. begin() is deterministic for a fixed insertion
    // history, which keeps simulations reproducible.
    last_ref_.erase(last_ref_.begin());
  }
  last_ref_.emplace(p, now);
}

IntervalEstimator::Estimate IntervalEstimator::Current() const {
  Estimate e;
  e.samples = samples_;
  if (samples_ < options_.min_samples) {
    e.crp = options_.prior_crp;
    e.rip = options_.prior_rip;
    return e;
  }
  // Posterior-mean bucket probabilities under the uniform Dirichlet prior:
  // p_i = (n_i + a) / (N + A) with a = A / kBuckets. Walk the CDF once and
  // read both quantiles off it.
  const double alpha = options_.prior_strength / static_cast<double>(kBuckets);
  const double total =
      static_cast<double>(samples_) + options_.prior_strength;
  double cdf = 0.0;
  bool have_crp = false;
  bool have_rip = false;
  for (size_t i = 0; i < kBuckets; ++i) {
    cdf += (static_cast<double>(buckets_[i]) + alpha) / total;
    if (!have_crp && cdf >= options_.correlated_mass) {
      e.crp = BucketEdge(i);
      have_crp = true;
    }
    if (!have_rip && cdf >= options_.retained_mass) {
      e.rip = BucketEdge(i);
      have_rip = true;
      break;
    }
  }
  if (!have_rip) e.rip = kInfinitePeriod;
  return e;
}

void IntervalEstimator::Reset() {
  buckets_.fill(0);
  last_ref_.clear();
  samples_ = 0;
}

}  // namespace lruk
