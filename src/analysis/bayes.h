// Closed-form implementations of the paper's Section 3 Bayesian analysis.
//
// Under the Independent Reference Model with an unknown permutation mapping
// pages onto a known probability vector beta = {beta_1..beta_n}:
//
//  * Formula (3.6) (Lemma 3.4): the posterior probability that page i maps
//    to component v, given that its Backward K-distance b_t(i,K) = k:
//
//        P(x(i)=v | b) = beta_v^K (1-beta_v)^(k-K+1)
//                        / sum_j beta_j^K (1-beta_j)^(k-K+1)
//
//    (Formula (3.2) / Lemma 3.3 is the K = 2 special case.)
//
//  * Formula (3.7) (Lemma 3.5): the a-posteriori estimate of page i's
//    reference probability,
//
//        E_t(P(i)) = sum_j beta_j^(K+1) (1-beta_j)^(k-K+1)
//                    / sum_j beta_j^K (1-beta_j)^(k-K+1)
//
//  * Lemma 3.6: E_t(P(i)) is strictly decreasing in k whenever beta has at
//    least two distinct values — the fact that makes ordering pages by
//    Backward K-distance optimal. IsMonotoneDecreasing verifies this
//    numerically over a range of k.
//
// All sums are computed in log space so they remain stable for backward
// distances in the millions.

#ifndef LRUK_ANALYSIS_BAYES_H_
#define LRUK_ANALYSIS_BAYES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lruk {

// Formula (3.6). `beta` must be a probability vector (each in (0,1), sum
// ~1); `k` is the observed Backward K-distance and must satisfy k >= K.
// Returns the n posterior probabilities P(x(i)=v | b_t(i,K)=k).
std::vector<double> PosteriorComponentProbabilities(
    const std::vector<double>& beta, int K, uint64_t k);

// Formula (3.7): E(P(i) | b_t(i,K) = k).
double EstimatedReferenceProbability(const std::vector<double>& beta, int K,
                                     uint64_t k);

// Numerically checks Lemma 3.6 over k in [K, k_max]: returns true iff
// EstimatedReferenceProbability is strictly decreasing in k (allowing for
// floating-point slack when all beta values are equal, in which case the
// estimate is constant and the function returns false as the lemma
// requires two distinct values).
bool EstimateIsStrictlyDecreasing(const std::vector<double>& beta, int K,
                                  uint64_t k_max);

// Expected cost of holding the pages with the m largest estimates, i.e. a
// direct evaluation of formula (3.9) for the LRU-K buffer state: given
// backward distances b[i] for each page (UINT64_MAX = infinity), returns
// 1 - sum of the m largest E_t(P(i)). Used to compare LRU-K's buffer
// against alternatives in the analysis bench.
double ExpectedCostOfTopM(const std::vector<double>& beta, int K,
                          const std::vector<uint64_t>& backward_distances,
                          size_t m);

}  // namespace lruk

#endif  // LRUK_ANALYSIS_BAYES_H_
