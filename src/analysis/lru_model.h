// Analytic LRU models under the Independent Reference Model — the kind of
// approximate analysis the paper cites as [DANTOWS] (Dan & Towsley, "An
// Approximate Analysis of the LRU and FIFO Buffer Replacement Schemes",
// SIGMETRICS 1990). These close the loop between Section 3's probability
// theory and Section 4's simulations: the analytic LRU-1 hit ratio should
// match the simulator's measured LRU-1 column without running a single
// reference.
//
//  * DanTowsleyLruHitRatio — the stack-position recursion: position j+1 of
//    the LRU stack holds page i with probability proportional to
//    p_i * (1 - b_i(j)), where b_i(j) is the probability page i is in the
//    top j positions. O(N * B).
//
//  * CheLruHitRatio — the characteristic-time fixed point (widely known as
//    the Che approximation): solve sum_i (1 - e^(-p_i T)) = B for T, then
//    hit ratio = sum_i p_i (1 - e^(-p_i T)). O(N log(1/eps)).
//
//  * A0HitRatio — the exact steady-state hit ratio of the A0 oracle: the
//    sum of the B largest probabilities.

#ifndef LRUK_ANALYSIS_LRU_MODEL_H_
#define LRUK_ANALYSIS_LRU_MODEL_H_

#include <cstddef>
#include <vector>

namespace lruk {

// Dan-Towsley stack approximation of LRU's steady-state hit ratio with
// `buffers` frames under IRM probabilities `beta` (nonnegative, sum ~1).
// If buffers >= beta.size() the ratio is 1.
double DanTowsleyLruHitRatio(const std::vector<double>& beta, size_t buffers);

// Che (characteristic time) approximation of the same quantity.
double CheLruHitRatio(const std::vector<double>& beta, size_t buffers);

// Characteristic-time approximation generalized to LRU-K with retained
// history: under IRM a page is resident iff it has at least K arrivals
// within the characteristic window T (its HIST(p,K) is recent enough), so
// occupancy_i = P(Poisson(p_i * T) >= K); T solves sum_i occupancy_i = B
// and the hit ratio is sum_i p_i * occupancy_i. K = 1 reduces to
// CheLruHitRatio. Assumes CRP = 0 and an unbounded Retained Information
// Period, matching the paper's simulation setup.
double CheLruKHitRatio(const std::vector<double>& beta, int k,
                       size_t buffers);

// Exact steady-state hit ratio of the A0 policy (Definition 3.1): it pins
// the `buffers` most probable pages.
double A0HitRatio(const std::vector<double>& beta, size_t buffers);

}  // namespace lruk

#endif  // LRUK_ANALYSIS_LRU_MODEL_H_
