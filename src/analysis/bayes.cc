#include "analysis/bayes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/macros.h"

namespace lruk {

namespace {

// Validates beta and returns log(beta_j), log(1-beta_j) pairs.
void CheckBeta(const std::vector<double>& beta, int K, uint64_t k) {
  LRUK_ASSERT(!beta.empty(), "beta must be nonempty");
  LRUK_ASSERT(K >= 1, "K must be >= 1");
  LRUK_ASSERT(k >= static_cast<uint64_t>(K),
              "backward distance must be at least K");
  for (double b : beta) {
    LRUK_ASSERT(b > 0.0 && b < 1.0, "beta components must lie in (0,1)");
  }
}

// Computes the two sums of formula (3.7) in log space:
//   num = sum_j beta_j^(K+1) (1-beta_j)^(k-K+1)
//   den = sum_j beta_j^K     (1-beta_j)^(k-K+1)
// Returns per-term log weights of the denominator via `log_weights` when
// non-null (for formula (3.6)).
void LogSums(const std::vector<double>& beta, int K, uint64_t k,
             double* log_num_sum, double* log_den_sum,
             std::vector<double>* log_weights) {
  const double exponent = static_cast<double>(k) - static_cast<double>(K) + 1.0;
  const size_t n = beta.size();
  std::vector<double> log_den(n);
  double max_den = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < n; ++j) {
    log_den[j] =
        static_cast<double>(K) * std::log(beta[j]) + exponent * std::log1p(-beta[j]);
    max_den = std::max(max_den, log_den[j]);
  }
  double den = 0.0;
  double num = 0.0;
  for (size_t j = 0; j < n; ++j) {
    double w = std::exp(log_den[j] - max_den);
    den += w;
    num += w * beta[j];  // Extra beta_j factor turns K into K+1.
  }
  if (log_num_sum != nullptr) *log_num_sum = max_den + std::log(num);
  if (log_den_sum != nullptr) *log_den_sum = max_den + std::log(den);
  if (log_weights != nullptr) *log_weights = std::move(log_den);
}

}  // namespace

std::vector<double> PosteriorComponentProbabilities(
    const std::vector<double>& beta, int K, uint64_t k) {
  CheckBeta(beta, K, k);
  std::vector<double> log_weights;
  double log_den = 0.0;
  LogSums(beta, K, k, nullptr, &log_den, &log_weights);
  std::vector<double> posterior(beta.size());
  for (size_t j = 0; j < beta.size(); ++j) {
    posterior[j] = std::exp(log_weights[j] - log_den);
  }
  return posterior;
}

double EstimatedReferenceProbability(const std::vector<double>& beta, int K,
                                     uint64_t k) {
  CheckBeta(beta, K, k);
  double log_num = 0.0;
  double log_den = 0.0;
  LogSums(beta, K, k, &log_num, &log_den, nullptr);
  return std::exp(log_num - log_den);
}

bool EstimateIsStrictlyDecreasing(const std::vector<double>& beta, int K,
                                  uint64_t k_max) {
  uint64_t k0 = static_cast<uint64_t>(K);
  LRUK_ASSERT(k_max >= k0, "k_max must be at least K");
  double prev = EstimatedReferenceProbability(beta, K, k0);
  for (uint64_t k = k0 + 1; k <= k_max; ++k) {
    double cur = EstimatedReferenceProbability(beta, K, k);
    if (!(cur < prev)) return false;
    prev = cur;
  }
  return true;
}

double ExpectedCostOfTopM(const std::vector<double>& beta, int K,
                          const std::vector<uint64_t>& backward_distances,
                          size_t m) {
  LRUK_ASSERT(m <= backward_distances.size(),
              "buffer larger than the page population");
  // E_t(P(i)) is decreasing in the backward distance (Lemma 3.6), so the
  // top-m estimates belong to the m smallest distances.
  std::vector<uint64_t> sorted = backward_distances;
  std::sort(sorted.begin(), sorted.end());
  double covered = 0.0;
  for (size_t i = 0; i < m; ++i) {
    if (sorted[i] == std::numeric_limits<uint64_t>::max()) break;
    uint64_t k = std::max<uint64_t>(sorted[i], static_cast<uint64_t>(K));
    covered += EstimatedReferenceProbability(beta, K, k);
  }
  double cost = 1.0 - covered;
  return cost < 0.0 ? 0.0 : cost;
}

}  // namespace lruk
