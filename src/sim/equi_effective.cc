#include "sim/equi_effective.h"

#include <algorithm>

namespace lruk {

namespace {

// Measured hit ratio of `config` at integer capacity `capacity`.
Result<double> HitRatioAt(const PolicyConfig& config,
                          ReferenceStringGenerator& generator,
                          const SimOptions& sim, size_t capacity) {
  SimOptions probe = sim;
  probe.capacity = capacity;
  probe.track_classes = false;
  auto result = SimulatePolicy(config, generator, probe);
  if (!result.ok()) return result.status();
  return result->HitRatio();
}

}  // namespace

Result<double> FindCapacityForHitRatio(const PolicyConfig& config,
                                       ReferenceStringGenerator& generator,
                                       const SimOptions& sim,
                                       double target_hit_ratio,
                                       const EquiEffectiveOptions& options) {
  size_t lo = std::max<size_t>(1, options.min_capacity);

  auto at_lo = HitRatioAt(config, generator, sim, lo);
  if (!at_lo.ok()) return at_lo.status();
  if (*at_lo >= target_hit_ratio) return static_cast<double>(lo);

  // Exponential bracket: double until the target is reached.
  size_t hi = lo;
  double hi_ratio = *at_lo;
  while (hi_ratio < target_hit_ratio) {
    if (hi >= options.max_capacity) {
      return static_cast<double>(options.max_capacity);
    }
    lo = hi;
    hi = std::min(options.max_capacity, hi * 2);
    auto r = HitRatioAt(config, generator, sim, hi);
    if (!r.ok()) return r.status();
    hi_ratio = *r;
  }

  // Bisection: maintain ratio(lo) < target <= ratio(hi).
  double lo_ratio = 0.0;
  {
    auto r = HitRatioAt(config, generator, sim, lo);
    if (!r.ok()) return r.status();
    lo_ratio = *r;
  }
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    auto r = HitRatioAt(config, generator, sim, mid);
    if (!r.ok()) return r.status();
    if (*r >= target_hit_ratio) {
      hi = mid;
      hi_ratio = *r;
    } else {
      lo = mid;
      lo_ratio = *r;
    }
  }

  // Linear interpolation between the bracketing capacities.
  if (hi_ratio <= lo_ratio) return static_cast<double>(hi);
  double frac = (target_hit_ratio - lo_ratio) / (hi_ratio - lo_ratio);
  frac = std::clamp(frac, 0.0, 1.0);
  return static_cast<double>(lo) + frac * static_cast<double>(hi - lo);
}

std::optional<double> InterpolateCapacityForHitRatio(
    const std::vector<size_t>& capacities,
    const std::vector<double>& hit_ratios, double target) {
  LRUK_ASSERT(capacities.size() == hit_ratios.size(),
              "curve arrays must have equal length");
  LRUK_ASSERT(!capacities.empty(), "curve must be nonempty");
  if (hit_ratios.front() >= target) {
    return static_cast<double>(capacities.front());
  }
  for (size_t i = 1; i < capacities.size(); ++i) {
    LRUK_ASSERT(capacities[i] > capacities[i - 1],
                "capacities must be strictly increasing");
    if (hit_ratios[i] >= target) {
      double lo = hit_ratios[i - 1];
      double hi = hit_ratios[i];
      double frac = hi > lo ? (target - lo) / (hi - lo) : 1.0;
      frac = std::clamp(frac, 0.0, 1.0);
      return static_cast<double>(capacities[i - 1]) +
             frac * static_cast<double>(capacities[i] - capacities[i - 1]);
    }
  }
  return std::nullopt;  // Target above the measured curve.
}

Result<double> EquiEffectiveRatio(const PolicyConfig& baseline,
                                  const PolicyConfig& better,
                                  ReferenceStringGenerator& generator,
                                  const SimOptions& sim,
                                  const EquiEffectiveOptions& options) {
  auto better_result = SimulatePolicy(better, generator, sim);
  if (!better_result.ok()) return better_result.status();
  double target = better_result->HitRatio();
  auto needed = FindCapacityForHitRatio(baseline, generator, sim, target,
                                        options);
  if (!needed.ok()) return needed.status();
  return *needed / static_cast<double>(sim.capacity);
}

}  // namespace lruk
