// Cache simulation harness reproducing the paper's Section 4 methodology:
// "The buffer hit ratio for each algorithm was evaluated by first allowing
// the algorithm to reach a quasi-stable state, dropping the initial set of
// 10*N1 references, and then measuring the next T = 30*N1 references."
//
// RunSimulation drives one policy over one workload at a fixed buffer
// capacity B, with a warmup phase (counted but not measured) followed by a
// measurement phase. SimulatePolicy additionally handles the oracle
// policies' context needs (A0 probabilities, Belady future trace).

#ifndef LRUK_SIM_SIMULATOR_H_
#define LRUK_SIM_SIMULATOR_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/policy_factory.h"
#include "core/replacement_policy.h"
#include "util/status.h"
#include "workload/workload.h"

namespace lruk {

struct SimOptions {
  // Buffer capacity B in pages.
  size_t capacity = 100;
  // References dropped while reaching the quasi-stable state.
  uint64_t warmup_refs = 1000;
  // References measured after warmup.
  uint64_t measure_refs = 3000;
  // Collect per-class hit statistics and final buffer composition.
  bool track_classes = true;
  // When the workload exposes true stationary probabilities, sample the
  // expected cost of the buffer state (formula 3.8: 1 - sum of beta over
  // resident pages) every `cost_sample_interval` measured references into
  // SimResult::mean_expected_cost. 0 disables sampling.
  uint64_t cost_sample_interval = 0;
};

// Hit statistics for one page class.
struct ClassStats {
  std::string name;
  uint64_t refs = 0;      // Measured-phase references to this class.
  uint64_t hits = 0;
  uint64_t resident_at_end = 0;  // Buffer composition after the run.

  double HitRatio() const {
    return refs == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(refs);
  }
};

struct SimResult {
  std::string policy_name;
  size_t capacity = 0;
  uint64_t warmup_refs = 0;
  uint64_t measure_refs = 0;
  uint64_t hits = 0;        // Measured phase only.
  uint64_t misses = 0;      // Measured phase only.
  uint64_t evictions = 0;   // Whole run.
  uint64_t total_misses = 0;  // Whole run (disk reads).
  // Mean of formula (3.8) over the measured phase (see
  // SimOptions::cost_sample_interval); negative when not sampled.
  double mean_expected_cost = -1.0;
  std::vector<ClassStats> classes;

  // The paper's C = h / T.
  double HitRatio() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// Drives `policy` over `generator` (which is NOT reset first — callers
// control stream position) for warmup + measure references.
SimResult RunSimulation(ReplacementPolicy& policy,
                        ReferenceStringGenerator& generator,
                        const SimOptions& options);

// Builds the policy from `config` (resolving A0/Belady/2Q context from the
// generator and options), resets the generator, and runs. Every policy
// compared through this entry point therefore sees the identical reference
// string.
Result<SimResult> SimulatePolicy(const PolicyConfig& config,
                                 ReferenceStringGenerator& generator,
                                 const SimOptions& options);

}  // namespace lruk

#endif  // LRUK_SIM_SIMULATOR_H_
