#include "sim/sweep.h"

namespace lruk {

Result<SweepResult> RunSweep(const SweepSpec& spec,
                             ReferenceStringGenerator& generator) {
  LRUK_ASSERT(!spec.capacities.empty() && !spec.policies.empty(),
              "sweep grid must be nonempty");
  SweepResult out;
  out.capacities = spec.capacities;
  out.results.resize(spec.capacities.size());

  for (size_t ci = 0; ci < spec.capacities.size(); ++ci) {
    out.results[ci].reserve(spec.policies.size());
    for (const PolicyConfig& config : spec.policies) {
      SimOptions sim = spec.sim;
      sim.capacity = spec.capacities[ci];
      auto result = SimulatePolicy(config, generator, sim);
      if (!result.ok()) return result.status();
      if (ci == 0) out.policy_names.push_back(result->policy_name);
      out.results[ci].push_back(std::move(*result));
    }
  }
  return out;
}

}  // namespace lruk
