#include "sim/trace_analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/macros.h"

namespace lruk {

TraceProfile ProfileTrace(const std::vector<PageRef>& refs) {
  TraceProfile profile;
  profile.total_references = refs.size();
  std::unordered_map<PageId, uint64_t> counts;
  for (const PageRef& ref : refs) {
    ++counts[ref.page];
    if (ref.type == AccessType::kWrite) ++profile.write_references;
  }
  profile.distinct_pages = counts.size();
  profile.sorted_page_counts.reserve(counts.size());
  for (const auto& [page, count] : counts) {
    profile.sorted_page_counts.push_back(count);
  }
  std::sort(profile.sorted_page_counts.begin(),
            profile.sorted_page_counts.end(), std::greater<uint64_t>());
  return profile;
}

double AccessSkew(const TraceProfile& profile, double ref_fraction) {
  LRUK_ASSERT(ref_fraction >= 0.0 && ref_fraction <= 1.0,
              "ref_fraction must be in [0,1]");
  if (profile.total_references == 0) return 0.0;
  uint64_t target = static_cast<uint64_t>(
      std::ceil(ref_fraction * static_cast<double>(profile.total_references)));
  uint64_t covered = 0;
  uint64_t pages = 0;
  for (uint64_t count : profile.sorted_page_counts) {
    if (covered >= target) break;
    covered += count;
    ++pages;
  }
  return static_cast<double>(pages) /
         static_cast<double>(profile.distinct_pages);
}

uint64_t PagesReReferencedWithin(const std::vector<PageRef>& refs,
                                 uint64_t horizon) {
  std::unordered_map<PageId, uint64_t> last_seen;
  std::unordered_map<PageId, bool> qualifies;
  for (uint64_t t = 0; t < refs.size(); ++t) {
    PageId p = refs[t].page;
    auto it = last_seen.find(p);
    if (it != last_seen.end() && t - it->second <= horizon) {
      qualifies[p] = true;
    }
    last_seen[p] = t;
  }
  uint64_t count = 0;
  for (const auto& [page, ok] : qualifies) {
    if (ok) ++count;
  }
  return count;
}

uint64_t PagesWithMeanInterarrivalWithin(const TraceProfile& profile,
                                         uint64_t horizon) {
  LRUK_ASSERT(horizon >= 1, "horizon must be positive");
  // Mean interarrival of a page with c references over a trace of length L
  // is ~L/c, so the criterion is c >= L/horizon. Counts are sorted
  // descending: binary search for the cutoff.
  double needed = static_cast<double>(profile.total_references) /
                  static_cast<double>(horizon);
  uint64_t threshold = static_cast<uint64_t>(std::ceil(needed));
  if (threshold < 2) threshold = 2;  // A once-referenced page never recurs.
  const auto& counts = profile.sorted_page_counts;
  // upper_bound with greater<>: first element strictly below the
  // threshold, so the prefix is exactly the pages with count >= threshold.
  auto it = std::upper_bound(counts.begin(), counts.end(), threshold,
                             std::greater<uint64_t>());
  return static_cast<uint64_t>(it - counts.begin());
}

std::vector<uint64_t> InterarrivalPercentiles(
    const std::vector<PageRef>& refs,
    const std::vector<double>& percentiles) {
  std::unordered_map<PageId, uint64_t> last_seen;
  std::vector<uint64_t> gaps;
  for (uint64_t t = 0; t < refs.size(); ++t) {
    PageId p = refs[t].page;
    auto it = last_seen.find(p);
    if (it != last_seen.end()) gaps.push_back(t - it->second);
    last_seen[p] = t;
  }
  std::vector<uint64_t> out;
  out.reserve(percentiles.size());
  if (gaps.empty()) {
    out.assign(percentiles.size(), 0);
    return out;
  }
  std::sort(gaps.begin(), gaps.end());
  for (double pct : percentiles) {
    LRUK_ASSERT(pct >= 0.0 && pct <= 100.0, "percentile out of range");
    size_t idx = static_cast<size_t>(
        pct / 100.0 * static_cast<double>(gaps.size() - 1) + 0.5);
    out.push_back(gaps[idx]);
  }
  return out;
}

}  // namespace lruk
