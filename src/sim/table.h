// Minimal fixed-width ASCII table formatting for the bench binaries, which
// print their results in the same row/column layout as the paper's tables.

#ifndef LRUK_SIM_TABLE_H_
#define LRUK_SIM_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lruk {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  // Adds a row; cells beyond the header count are dropped, missing cells
  // render empty.
  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string Fixed(double value, int precision);
  static std::string Integer(uint64_t value);

  // Renders with a header underline, columns right-aligned.
  std::string ToString() const;

  // Renders as RFC-4180-ish CSV (fields quoted when they contain commas,
  // quotes, or newlines).
  std::string ToCsv() const;

  // Renders straight to stdout.
  void Print() const;

  // Writes the CSV rendering to `path` (overwriting).
  Status WriteCsv(const std::string& path) const;

  // Convenience for bench binaries: when the environment variable
  // LRUK_CSV_DIR is set, writes the CSV to <dir>/<name>.csv and returns
  // true; otherwise does nothing. Lets `for b in bench/*; do $b; done`
  // stay output-clean while plots can be regenerated on demand.
  bool MaybeWriteCsvFromEnv(const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lruk

#endif  // LRUK_SIM_TABLE_H_
