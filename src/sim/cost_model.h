// Economic cost model around buffering decisions:
//
//  * Expected cost of a buffer state (Definition 3.7 of the paper):
//    C(A, S_t) = 1 - sum_{i in S_t} beta_i — the probability the next
//    reference misses, i.e. the expected disk I/Os per reference.
//  * The Five Minute Rule of [GRAYPUT], which the paper uses to size the
//    Retained Information Period: a page is worth caching when its
//    interarrival time is below roughly 100 seconds (for 1987-era 4KB
//    pages); generalized here with explicit price/rate inputs.

#ifndef LRUK_SIM_COST_MODEL_H_
#define LRUK_SIM_COST_MODEL_H_

#include <unordered_set>
#include <vector>

#include "core/types.h"

namespace lruk {

// C(A, S_t, w) = 1 - sum of beta_p over resident pages (formula 3.8).
// `probabilities` is indexed by PageId; out-of-range pages contribute 0.
double ExpectedCost(const std::vector<double>& probabilities,
                    const std::unordered_set<PageId>& resident);

// Parameters for the Five Minute Rule tradeoff. Defaults are the 1987
// [GRAYPUT] figures: a $30K disk doing 15 accesses/second ($2000 per
// access-per-second) against $5/KB memory, which lands the break-even
// interarrival for a 4 KB page at ~100 seconds — the value the paper uses
// to size the Retained Information Period.
struct FiveMinuteRuleParams {
  double disk_arm_price = 30000.0;  // $ per disk arm.
  double disk_accesses_per_second = 15.0;
  double memory_price_per_mb = 5000.0;  // $ per megabyte (1987 prices!).
  double page_size_kb = 4.0;
};

// Break-even interarrival time in seconds: keep a page in memory when it is
// re-referenced at least this often. With the 1987 defaults this is the
// classic ~100 seconds (the "five minute rule" order of magnitude).
double FiveMinuteRuleBreakEvenSeconds(const FiveMinuteRuleParams& params = {});

// The paper's Retained Information Period guideline (Section 2.1.2): about
// twice the break-even interarrival time, "since we are measuring how far
// back we need to go to see two references before we drop the page".
// Generalized to K: K times the break-even period.
double SuggestedRetainedInformationSeconds(
    int k, const FiveMinuteRuleParams& params = {});

}  // namespace lruk

#endif  // LRUK_SIM_COST_MODEL_H_
