// Trace characterization — the analyses the paper itself ran on the bank
// trace in Section 4.3:
//
//  * access skew quantiles: "40% of the references access only 3% of the
//    database pages", "90% of the references access 65% of the pages";
//  * the Five Minute Rule census: "only about 1400 pages satisfy the
//    criterion of the Five Minute Rule to be kept in memory (i.e., are
//    re-referenced within 100 seconds). Thus, a buffer size of 1400 pages
//    is actually the economically optimal configuration."
//
// Given any reference vector (e.g. loaded via ReadTraceFile), these
// helpers compute the same statistics, so users can characterize their
// own traces and size buffers / Retained Information Periods the way the
// paper does.

#ifndef LRUK_SIM_TRACE_ANALYSIS_H_
#define LRUK_SIM_TRACE_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "workload/workload.h"

namespace lruk {

struct TraceProfile {
  uint64_t total_references = 0;
  uint64_t distinct_pages = 0;
  uint64_t write_references = 0;
  // Reference counts per page, sorted descending (the skew profile).
  std::vector<uint64_t> sorted_page_counts;
};

// Single pass over the trace.
TraceProfile ProfileTrace(const std::vector<PageRef>& refs);

// Smallest fraction of (accessed) pages receiving `ref_fraction` of the
// references — e.g. AccessSkew(profile, 0.40) answers "what fraction of
// pages gets 40% of the references?" (the paper reports 0.03).
double AccessSkew(const TraceProfile& profile, double ref_fraction);

// Number of distinct pages that are re-referenced at least once within
// `horizon` references of a previous reference. A permissive census: on a
// long trace almost any recurring page eventually has one short gap.
uint64_t PagesReReferencedWithin(const std::vector<PageRef>& refs,
                                 uint64_t horizon);

// The Five Minute Rule census proper: pages whose MEAN interarrival over
// the trace is at most `horizon` references (count >= trace length /
// horizon) — the criterion behind the paper's "only about 1400 pages
// satisfy the criterion of the Five Minute Rule to be kept in memory",
// with `horizon` playing the role of "100 seconds" in reference counts.
uint64_t PagesWithMeanInterarrivalWithin(const TraceProfile& profile,
                                         uint64_t horizon);

// Interarrival distribution across all uncorrelated page re-references:
// returns the requested percentiles (each in [0,100]) of the gaps, in
// reference counts. Pages referenced once contribute nothing.
std::vector<uint64_t> InterarrivalPercentiles(
    const std::vector<PageRef>& refs, const std::vector<double>& percentiles);

}  // namespace lruk

#endif  // LRUK_SIM_TRACE_ANALYSIS_H_
