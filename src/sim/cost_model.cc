#include "sim/cost_model.h"

#include "util/macros.h"

namespace lruk {

double ExpectedCost(const std::vector<double>& probabilities,
                    const std::unordered_set<PageId>& resident) {
  double covered = 0.0;
  for (PageId p : resident) {
    if (p < probabilities.size()) covered += probabilities[p];
  }
  double cost = 1.0 - covered;
  return cost < 0.0 ? 0.0 : cost;  // Tolerate rounding on full coverage.
}

double FiveMinuteRuleBreakEvenSeconds(const FiveMinuteRuleParams& params) {
  LRUK_ASSERT(params.disk_accesses_per_second > 0.0 &&
                  params.memory_price_per_mb > 0.0 && params.page_size_kb > 0.0,
              "cost parameters must be positive");
  // Cost of one access/second of disk throughput:
  double dollars_per_access_per_second =
      params.disk_arm_price / params.disk_accesses_per_second;
  // Cost of holding one page in memory:
  double dollars_per_page =
      params.memory_price_per_mb * (params.page_size_kb / 1024.0);
  // Break even when (accesses/second saved) * $/aps == $/page, i.e. at
  // interarrival = $/aps / $/page seconds.
  return dollars_per_access_per_second / dollars_per_page;
}

double SuggestedRetainedInformationSeconds(
    int k, const FiveMinuteRuleParams& params) {
  LRUK_ASSERT(k >= 1, "K must be at least 1");
  return static_cast<double>(k) * FiveMinuteRuleBreakEvenSeconds(params);
}

}  // namespace lruk
