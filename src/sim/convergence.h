// Transient-response measurement: how quickly a policy recovers after the
// workload's hot set shifts. The paper's Section 4.1 claim that "LRU-3 is
// less responsive than LRU-2 in the sense that it needs more references to
// adapt itself to dynamic changes of reference frequencies" is about this
// transient, which steady-state hit ratios average away.
//
// MeasureConvergence warms a policy on the generator until a known shift
// boundary, records the steady-state windowed hit ratio, lets the shift
// happen, and then tracks windowed hit ratios until they recover to a
// fraction of steady state.

#ifndef LRUK_SIM_CONVERGENCE_H_
#define LRUK_SIM_CONVERGENCE_H_

#include <optional>
#include <vector>

#include "core/policy_factory.h"
#include "util/status.h"
#include "workload/workload.h"

namespace lruk {

struct ConvergenceOptions {
  size_t capacity = 100;
  // References before the shift (the generator must be configured to shift
  // exactly at this boundary, e.g. MovingHotspotOptions::epoch_length ==
  // pre_shift_refs).
  uint64_t pre_shift_refs = 50000;
  // Observation horizon after the shift.
  uint64_t post_shift_refs = 50000;
  // Window (in references) for windowed hit ratios.
  uint64_t window = 1000;
  // Recovered when a window reaches this fraction of steady state.
  double recovery_fraction = 0.9;
};

struct ConvergenceResult {
  std::string policy_name;
  // Mean windowed hit ratio over the last quarter of the pre-shift phase.
  double steady_state = 0.0;
  // Windowed hit ratios after the shift, one per window.
  std::vector<double> post_shift_windows;
  // References (rounded up to a window) from the shift until recovery;
  // nullopt if the policy never recovered within the horizon.
  std::optional<uint64_t> recovery_refs;
};

// Builds the policy from `config` (resolving oracle context), resets the
// generator, and measures. The generator must shift its pattern exactly at
// pre_shift_refs.
Result<ConvergenceResult> MeasureConvergence(const PolicyConfig& config,
                                             ReferenceStringGenerator& gen,
                                             const ConvergenceOptions& options);

}  // namespace lruk

#endif  // LRUK_SIM_CONVERGENCE_H_
