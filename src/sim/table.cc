#include "sim/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace lruk {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::Fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string AsciiTable::Integer(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto append_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out.append(widths[c] - cell.size(), ' ');
      out += cell;
      if (c + 1 < headers_.size()) out += "  ";
    }
    out += '\n';
  };

  std::string out;
  append_row(out, headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

std::string AsciiTable::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto append_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += ',';
      out += escape(c < row.size() ? row[c] : std::string());
    }
    out += '\n';
  };
  std::string out;
  append_row(out, headers_);
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

Status AsciiTable::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create " + path);
  std::string csv = ToCsv();
  size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  bool bad = written != csv.size();
  if (std::fclose(f) != 0) bad = true;
  if (bad) return Status::IoError("error writing " + path);
  return Status::Ok();
}

bool AsciiTable::MaybeWriteCsvFromEnv(const std::string& name) const {
  const char* dir = std::getenv("LRUK_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return false;
  std::string path = std::string(dir) + "/" + name + ".csv";
  Status status = WriteCsv(path);
  if (!status.ok()) {
    std::fprintf(stderr, "csv export failed: %s\n",
                 status.ToString().c_str());
    return false;
  }
  std::printf("(csv written to %s)\n", path.c_str());
  return true;
}

void AsciiTable::Print() const {
  std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
}

}  // namespace lruk
