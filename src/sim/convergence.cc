#include "sim/convergence.h"

#include <utility>

#include "workload/workload.h"

namespace lruk {

namespace {

// Drives one reference; returns whether it hit.
bool Step(ReplacementPolicy& policy, ReferenceStringGenerator& gen,
          size_t capacity) {
  PageRef ref = gen.Next();
  policy.SetReferencingProcess(ref.process);
  if (policy.IsResident(ref.page)) {
    policy.RecordAccess(ref.page, ref.type);
    return true;
  }
  policy.PrepareAdmit(ref.page);
  if (policy.ResidentCount() == capacity) {
    auto victim = policy.Evict();
    LRUK_ASSERT(victim.has_value(), "nothing evictable in a full buffer");
  }
  policy.Admit(ref.page, ref.type);
  return false;
}

}  // namespace

Result<ConvergenceResult> MeasureConvergence(
    const PolicyConfig& config, ReferenceStringGenerator& gen,
    const ConvergenceOptions& options) {
  LRUK_ASSERT(options.window >= 1, "window must be positive");
  LRUK_ASSERT(options.pre_shift_refs >= 4 * options.window,
              "pre-shift phase too short for a steady-state estimate");

  PolicyContext context;
  context.capacity = options.capacity;
  if (config.kind == PolicyKind::kA0) {
    auto probs = gen.Probabilities();
    if (!probs) {
      return Status::InvalidArgument(
          "A0 requires a workload with known probabilities");
    }
    context.probabilities = std::move(*probs);
  }
  if (config.kind == PolicyKind::kBelady) {
    gen.Reset();
    context.trace = MaterializeTrace(
        gen, options.pre_shift_refs + options.post_shift_refs);
  }
  auto policy = MakePolicy(config, context);
  if (!policy.ok()) return policy.status();
  gen.Reset();

  ConvergenceResult result;
  result.policy_name = std::string((*policy)->Name());

  // Pre-shift: run to the boundary, averaging windows over the last
  // quarter for the steady-state estimate.
  uint64_t steady_start = options.pre_shift_refs * 3 / 4;
  uint64_t hits_in_window = 0;
  uint64_t steady_windows = 0;
  double steady_sum = 0.0;
  for (uint64_t i = 0; i < options.pre_shift_refs; ++i) {
    if (Step(**policy, gen, options.capacity)) ++hits_in_window;
    if ((i + 1) % options.window == 0) {
      if (i >= steady_start) {
        steady_sum +=
            static_cast<double>(hits_in_window) / options.window;
        ++steady_windows;
      }
      hits_in_window = 0;
    }
  }
  LRUK_ASSERT(steady_windows > 0, "no steady-state windows measured");
  result.steady_state = steady_sum / static_cast<double>(steady_windows);

  // Post-shift: windowed ratios until recovery (but record the full
  // horizon for plotting).
  hits_in_window = 0;
  double target = options.recovery_fraction * result.steady_state;
  for (uint64_t i = 0; i < options.post_shift_refs; ++i) {
    if (Step(**policy, gen, options.capacity)) ++hits_in_window;
    if ((i + 1) % options.window == 0) {
      double ratio = static_cast<double>(hits_in_window) / options.window;
      result.post_shift_windows.push_back(ratio);
      if (!result.recovery_refs.has_value() && ratio >= target) {
        result.recovery_refs = i + 1;
      }
      hits_in_window = 0;
    }
  }
  return result;
}

}  // namespace lruk
