// The equi-effective buffer-size metric of Section 4.1: B(1)/B(2) is the
// factor by which LRU-1 must grow its buffer to match LRU-2's hit ratio.
// "a value of 2.0 ... indicates that while LRU-2 achieves a certain cache
// hit ratio with B(2) buffer pages, LRU-1 must use twice as many buffer
// pages to achieve the same hit ratio."
//
// FindCapacityForHitRatio inverts the (monotone, by the stack property /
// empirically for the policies here) hit-ratio-vs-capacity curve with an
// exponential bracket followed by bisection, then linearly interpolates
// between the bracketing integer capacities for a fractional answer.

#ifndef LRUK_SIM_EQUI_EFFECTIVE_H_
#define LRUK_SIM_EQUI_EFFECTIVE_H_

#include <optional>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "util/status.h"
#include "workload/workload.h"

namespace lruk {

struct EquiEffectiveOptions {
  // Capacity search range. The search gives up (returning max_capacity)
  // when even max_capacity cannot reach the target hit ratio.
  size_t min_capacity = 1;
  size_t max_capacity = 1 << 20;
};

// Smallest (fractional, interpolated) capacity at which `config` reaches
// `target_hit_ratio` on `generator` with the warmup/measure schedule from
// `sim` (whose `capacity` field is ignored).
Result<double> FindCapacityForHitRatio(const PolicyConfig& config,
                                       ReferenceStringGenerator& generator,
                                       const SimOptions& sim,
                                       double target_hit_ratio,
                                       const EquiEffectiveOptions& options = {});

// The paper's B(1)/B(2): runs `better` at `sim.capacity` pages, then finds
// the capacity at which `baseline` matches its hit ratio.
Result<double> EquiEffectiveRatio(const PolicyConfig& baseline,
                                  const PolicyConfig& better,
                                  ReferenceStringGenerator& generator,
                                  const SimOptions& sim,
                                  const EquiEffectiveOptions& options = {});

// Inverts an already-measured hit-ratio-vs-capacity curve: returns the
// (piecewise-linearly interpolated) capacity at which the curve reaches
// `target`, or nullopt when the target exceeds the curve's range. This is
// how the paper's own B(1) values were obtained ("to achieve the same
// cache hit ratio with LRU-1 requires approximately 140 pages") and lets
// the table benches compute every row's B(1)/B(2) from one baseline sweep.
// `capacities` must be strictly increasing and `hit_ratios` of equal size;
// non-monotone dips in the measured curve are tolerated (first crossing
// wins).
std::optional<double> InterpolateCapacityForHitRatio(
    const std::vector<size_t>& capacities,
    const std::vector<double>& hit_ratios, double target);

}  // namespace lruk

#endif  // LRUK_SIM_EQUI_EFFECTIVE_H_
