// Parameter sweeps: run a grid of (buffer capacity x policy) simulations
// over one workload, each cell on the identical reference string. This is
// the shape of every table in the paper's Section 4.

#ifndef LRUK_SIM_SWEEP_H_
#define LRUK_SIM_SWEEP_H_

#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "util/status.h"
#include "workload/workload.h"

namespace lruk {

struct SweepSpec {
  std::vector<size_t> capacities;
  std::vector<PolicyConfig> policies;
  // Warmup/measure schedule; `capacity` is overridden per cell.
  SimOptions sim;
};

struct SweepResult {
  std::vector<size_t> capacities;
  std::vector<std::string> policy_names;
  // results[i][j]: capacity i, policy j.
  std::vector<std::vector<SimResult>> results;

  double HitRatio(size_t capacity_index, size_t policy_index) const {
    return results[capacity_index][policy_index].HitRatio();
  }
};

// Runs every cell of the grid. Policies are rebuilt per cell (2Q and the
// oracles need the capacity / trace context).
Result<SweepResult> RunSweep(const SweepSpec& spec,
                             ReferenceStringGenerator& generator);

}  // namespace lruk

#endif  // LRUK_SIM_SWEEP_H_
