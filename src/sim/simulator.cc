#include "sim/simulator.h"

#include <optional>
#include <utility>

#include "sim/cost_model.h"
#include "sim/stats.h"

namespace lruk {

SimResult RunSimulation(ReplacementPolicy& policy,
                        ReferenceStringGenerator& generator,
                        const SimOptions& options) {
  LRUK_ASSERT(options.capacity >= 1, "capacity must be positive");
  SimResult result;
  result.policy_name = std::string(policy.Name());
  result.capacity = options.capacity;
  result.warmup_refs = options.warmup_refs;
  result.measure_refs = options.measure_refs;

  std::optional<std::vector<double>> probabilities;
  RunningStats cost_stats;
  if (options.cost_sample_interval != 0) {
    probabilities = generator.Probabilities();
  }

  const bool classes = options.track_classes;
  if (classes) {
    result.classes.resize(generator.NumClasses());
    for (uint32_t c = 0; c < generator.NumClasses(); ++c) {
      result.classes[c].name = std::string(generator.ClassName(c));
    }
  }

  const uint64_t total = options.warmup_refs + options.measure_refs;
  for (uint64_t i = 0; i < total; ++i) {
    PageRef ref = generator.Next();
    bool measured = i >= options.warmup_refs;
    policy.SetReferencingProcess(ref.process);
    bool hit = policy.IsResident(ref.page);
    if (hit) {
      policy.RecordAccess(ref.page, ref.type);
    } else {
      ++result.total_misses;
      policy.PrepareAdmit(ref.page);
      if (policy.ResidentCount() == options.capacity) {
        auto victim = policy.Evict();
        LRUK_ASSERT(victim.has_value(),
                    "policy failed to evict from a full, unpinned buffer");
        ++result.evictions;
      }
      policy.Admit(ref.page, ref.type);
    }
    if (measured) {
      (hit ? result.hits : result.misses) += 1;
      if (classes) {
        ClassStats& cs = result.classes[generator.ClassOf(ref.page)];
        ++cs.refs;
        if (hit) ++cs.hits;
      }
      if (probabilities.has_value() &&
          (i - options.warmup_refs) % options.cost_sample_interval == 0) {
        // Formula (3.8): the probability the next reference misses.
        double covered = 0.0;
        policy.ForEachResident([&](PageId p) {
          if (p < probabilities->size()) covered += (*probabilities)[p];
        });
        cost_stats.Add(covered < 1.0 ? 1.0 - covered : 0.0);
      }
    }
  }

  if (cost_stats.Count() > 0) {
    result.mean_expected_cost = cost_stats.Mean();
  }

  if (classes) {
    policy.ForEachResident([&](PageId p) {
      ++result.classes[generator.ClassOf(p)].resident_at_end;
    });
  }
  return result;
}

Result<SimResult> SimulatePolicy(const PolicyConfig& config,
                                 ReferenceStringGenerator& generator,
                                 const SimOptions& options) {
  PolicyContext context;
  context.capacity = options.capacity;
  if (config.kind == PolicyKind::kA0) {
    auto probs = generator.Probabilities();
    if (!probs) {
      return Status::InvalidArgument(
          "A0 requires a workload with known stationary probabilities");
    }
    context.probabilities = std::move(*probs);
  }
  if (config.kind == PolicyKind::kBelady) {
    generator.Reset();
    context.trace = MaterializeTrace(
        generator, options.warmup_refs + options.measure_refs);
  }
  auto policy = MakePolicy(config, context);
  if (!policy.ok()) return policy.status();
  generator.Reset();
  return RunSimulation(**policy, generator, options);
}

}  // namespace lruk
