// Streaming summary statistics (Welford's algorithm) for replicated
// measurements: mean, sample standard deviation, and a normal-approximation
// 95% confidence half-width.

#ifndef LRUK_SIM_STATS_H_
#define LRUK_SIM_STATS_H_

#include <cmath>
#include <cstdint>

namespace lruk {

class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  uint64_t Count() const { return n_; }
  double Mean() const { return mean_; }
  double Min() const { return min_; }
  double Max() const { return max_; }

  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double Variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double StdDev() const { return std::sqrt(Variance()); }

  // Half-width of the normal-approximation 95% confidence interval for the
  // mean (1.96 * stderr); 0 with fewer than two samples.
  double ConfidenceHalfWidth95() const {
    if (n_ < 2) return 0.0;
    return 1.96 * StdDev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lruk

#endif  // LRUK_SIM_STATS_H_
