// Project-wide helper macros.
//
// The library is exception-free (Google style): recoverable errors travel
// through util::Status / util::Result, and violated invariants abort via
// LRUK_ASSERT, which is active in all build types (these are cheap checks on
// control paths, not per-byte data paths).

#ifndef LRUK_UTIL_MACROS_H_
#define LRUK_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Asserts that `expr` holds; prints the failing expression with its source
// location and aborts otherwise. Enabled in release builds as well: every
// use guards a structural invariant whose violation would silently corrupt
// simulation results.
#define LRUK_ASSERT(expr, message)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::fprintf(stderr, "LRUK_ASSERT failed: %s\n  at %s:%d\n  %s\n",    \
                   #expr, __FILE__, __LINE__, message);                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Marks an unreachable branch; aborts if control ever arrives.
#define LRUK_UNREACHABLE(message) LRUK_ASSERT(false, message)

// Disallows copy construction and copy assignment for `TypeName`.
#define LRUK_DISALLOW_COPY(TypeName)      \
  TypeName(const TypeName&) = delete;     \
  TypeName& operator=(const TypeName&) = delete

// Disallows copy and move entirely for `TypeName`.
#define LRUK_DISALLOW_COPY_AND_MOVE(TypeName) \
  LRUK_DISALLOW_COPY(TypeName);               \
  TypeName(TypeName&&) = delete;              \
  TypeName& operator=(TypeName&&) = delete

#endif  // LRUK_UTIL_MACROS_H_
