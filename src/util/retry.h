// Bounded retry-with-backoff for transient I/O failures.
//
// RetryWithBackoff re-issues a fallible operation up to `max_attempts`
// times, sleeping an exponentially growing interval between attempts. Only
// kIoError is considered transient (that's what a FaultInjectingDiskManager
// or a flaky device surfaces); kNotFound and friends are semantic errors
// that retrying cannot fix. The sleep is injectable so tests (and the
// deterministic fault harness) run without wall-clock waits: a null sleep
// function retries immediately.
//
// Retries are off by default (max_attempts = 1); BufferPoolOptions::io_retry
// opts a pool in.

#ifndef LRUK_UTIL_RETRY_H_
#define LRUK_UTIL_RETRY_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "util/status.h"

namespace lruk {

struct RetryOptions {
  // Total attempts including the first; 1 = retries disabled.
  int max_attempts = 1;
  // Sleep before the first retry, in microseconds (0 = no backoff).
  double backoff_micros = 0.0;
  // Each subsequent retry multiplies the backoff by this factor.
  double backoff_multiplier = 2.0;
  // How to wait, given a duration in microseconds. Null = don't wait
  // (deterministic tests); see SystemSleeper() for a wall-clock waiter.
  std::function<void(double)> sleep;
};

// True for errors worth re-issuing the operation on.
inline bool IsRetryableError(StatusCode code) {
  return code == StatusCode::kIoError;
}

struct RetryOutcome {
  Status status;         // Final status after all attempts.
  uint64_t retries = 0;  // Re-issues performed (attempts - 1).
};

// Runs `op` (a callable returning Status) under `options`. Returns the
// first OK or non-retryable status, or the last error once attempts are
// exhausted, plus how many retries were spent.
template <typename Fn>
RetryOutcome RetryWithBackoff(const RetryOptions& options, Fn&& op) {
  RetryOutcome outcome;
  int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  double backoff = options.backoff_micros;
  for (int attempt = 0;; ++attempt) {
    outcome.status = op();
    if (outcome.status.ok() || !IsRetryableError(outcome.status.code()) ||
        attempt + 1 >= attempts) {
      return outcome;
    }
    if (options.sleep && backoff > 0.0) options.sleep(backoff);
    backoff *= options.backoff_multiplier;
    ++outcome.retries;
  }
}

// A wall-clock sleep function for production use of RetryOptions::sleep.
// Declared here, defined in retry.cc, so the header stays <thread>-free.
std::function<void(double)> SystemSleeper();

}  // namespace lruk

#endif  // LRUK_UTIL_RETRY_H_
