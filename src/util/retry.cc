#include "util/retry.h"

#include <chrono>
#include <thread>

namespace lruk {

std::function<void(double)> SystemSleeper() {
  return [](double micros) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(micros));
  };
}

}  // namespace lruk
