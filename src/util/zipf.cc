#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace lruk {

RecursiveSkewDistribution::RecursiveSkewDistribution(double alpha, double beta,
                                                     uint64_t n)
    : n_(n) {
  LRUK_ASSERT(n >= 1, "RecursiveSkewDistribution requires n >= 1");
  LRUK_ASSERT(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  LRUK_ASSERT(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
  theta_ = std::log(alpha) / std::log(beta);
  inv_theta_ = 1.0 / theta_;
}

uint64_t RecursiveSkewDistribution::Sample(RandomEngine& rng) const {
  // Inverse CDF: find the smallest integer i with (i/n)^theta >= u, i.e.
  // i = ceil(n * u^(1/theta)).
  double u = rng.NextDouble();
  double x = static_cast<double>(n_) * std::pow(u, inv_theta_);
  uint64_t rank = static_cast<uint64_t>(std::ceil(x));
  if (rank < 1) rank = 1;
  if (rank > n_) rank = n_;
  return rank;
}

double RecursiveSkewDistribution::Cdf(uint64_t i) const {
  if (i == 0) return 0.0;
  if (i >= n_) return 1.0;
  return std::pow(static_cast<double>(i) / static_cast<double>(n_), theta_);
}

double RecursiveSkewDistribution::Pmf(uint64_t i) const {
  LRUK_ASSERT(i >= 1 && i <= n_, "rank out of range");
  return Cdf(i) - Cdf(i - 1);
}

std::vector<double> RecursiveSkewDistribution::ProbabilityVector() const {
  std::vector<double> probs(n_);
  double prev = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    double cur = Cdf(i);
    probs[i - 1] = cur - prev;
    prev = cur;
  }
  return probs;
}

ClassicZipfDistribution::ClassicZipfDistribution(double s, uint64_t n) {
  LRUK_ASSERT(n >= 1, "ClassicZipfDistribution requires n >= 1");
  LRUK_ASSERT(s >= 0.0, "Zipf exponent must be nonnegative");
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_[i - 1] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // Defend against rounding at the tail.
}

uint64_t ClassicZipfDistribution::Sample(RandomEngine& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

double ClassicZipfDistribution::Pmf(uint64_t i) const {
  LRUK_ASSERT(i >= 1 && i <= n(), "rank out of range");
  double hi = cdf_[i - 1];
  double lo = (i == 1) ? 0.0 : cdf_[i - 2];
  return hi - lo;
}

std::vector<double> ClassicZipfDistribution::ProbabilityVector() const {
  std::vector<double> probs(n());
  for (uint64_t i = 1; i <= n(); ++i) probs[i - 1] = Pmf(i);
  return probs;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  LRUK_ASSERT(!weights.empty(), "DiscreteSampler requires weights");
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    LRUK_ASSERT(w >= 0.0, "weights must be nonnegative");
    total += w;
  }
  LRUK_ASSERT(total > 0.0, "weights must have a positive sum");

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Standard alias-table construction (Vose's stable variant).
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1.0 modulo rounding.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t DiscreteSampler::Sample(RandomEngine& rng) const {
  size_t column = static_cast<size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace lruk
