// Minimal Status / Result error-propagation types.
//
// The library does not use exceptions. Fallible operations return a Status
// (or a Result<T> when they also produce a value). Both are cheap value
// types: an ok Status carries no allocation.

#ifndef LRUK_UTIL_STATUS_H_
#define LRUK_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/macros.h"

namespace lruk {

// Broad error taxonomy; sufficient for a storage/simulation library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // e.g. no evictable frame in the buffer pool
  kIoError,
  kOutOfRange,
  kInternal,
};

// Returns a short stable name for `code` ("OK", "NOT_FOUND", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

// Value-type error carrier. The default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error union. `value()` asserts on error; callers should test
// `ok()` (or propagate `status()`) first.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    LRUK_ASSERT(!status_.ok(), "Result constructed from an OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    LRUK_ASSERT(ok(), status_.ToString().c_str());
    return *value_;
  }
  const T& value() const {
    LRUK_ASSERT(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Moves the value out; only valid when ok().
  T ValueOrDie() && {
    LRUK_ASSERT(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates a non-OK status to the caller.
#define LRUK_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::lruk::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace lruk

#endif  // LRUK_UTIL_STATUS_H_
