// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload generators, the RANDOM
// replacement policy, property tests) draw from RandomEngine so that every
// simulation is reproducible from a single 64-bit seed. The core generator
// is xoshiro256**, seeded through SplitMix64 per the reference
// recommendation; both are tiny, fast, and have no global state.

#ifndef LRUK_UTIL_RANDOM_H_
#define LRUK_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lruk {

// SplitMix64 step: advances `state` and returns the next 64-bit output.
// Used standalone for hashing-style mixing and to seed xoshiro.
uint64_t SplitMix64Next(uint64_t& state);

// xoshiro256** 1.0 wrapped with convenience distributions.
class RandomEngine {
 public:
  // Seeds the generator deterministically from `seed` via SplitMix64.
  explicit RandomEngine(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 uniform bits.
  uint64_t NextUint64();

  // Uniform integer in [0, bound). `bound` must be nonzero. Uses Lemire's
  // multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Samples an index in [0, weights.size()) with probability proportional
  // to weights[i]. Weights must be nonnegative with a positive sum.
  // O(n); for repeated sampling from a fixed distribution prefer
  // DiscreteSampler in zipf.h.
  size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    if (values.empty()) return;
    for (size_t i = values.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  // Forks a statistically independent child engine; used to give each
  // workload component its own stream while preserving reproducibility.
  RandomEngine Fork();

 private:
  uint64_t s_[4];
};

}  // namespace lruk

#endif  // LRUK_UTIL_RANDOM_H_
