#include "util/random.h"

#include "util/macros.h"

namespace lruk {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

RandomEngine::RandomEngine(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64Next(sm);
  }
  // xoshiro's all-zero state is a fixed point; SplitMix64 cannot emit four
  // zero words in a row from any seed, but guard against it regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t RandomEngine::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t RandomEngine::NextBounded(uint64_t bound) {
  LRUK_ASSERT(bound != 0, "NextBounded requires a nonzero bound");
  // Lemire's nearly-divisionless method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t RandomEngine::NextInRange(int64_t lo, int64_t hi) {
  LRUK_ASSERT(lo <= hi, "NextInRange requires lo <= hi");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  uint64_t draw = (span == 0) ? NextUint64() : NextBounded(span);
  return lo + static_cast<int64_t>(draw);
}

double RandomEngine::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool RandomEngine::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t RandomEngine::NextWeighted(const std::vector<double>& weights) {
  LRUK_ASSERT(!weights.empty(), "NextWeighted requires weights");
  double total = 0.0;
  for (double w : weights) {
    LRUK_ASSERT(w >= 0.0, "weights must be nonnegative");
    total += w;
  }
  LRUK_ASSERT(total > 0.0, "weights must have a positive sum");
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Floating-point slack: fall back to the last.
}

RandomEngine RandomEngine::Fork() {
  // Derive the child seed from two outputs so forked streams do not overlap
  // the parent's own future draws in any obvious algebraic way.
  uint64_t a = NextUint64();
  uint64_t b = NextUint64();
  uint64_t mix = a ^ Rotl(b, 31) ^ 0xd1b54a32d192ed03ULL;
  return RandomEngine(mix);
}

}  // namespace lruk
