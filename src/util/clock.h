// Time sources for the replacement policies.
//
// The paper measures all intervals in counts of successive page accesses
// (logical time) but specifies its tuning defaults in wall-clock terms
// ("a canonical period might be 5 seconds", "about 200 seconds"). LRU-K
// accepts an optional Clock: without one it ticks once per reference; with
// one, reference times come from the clock and the Correlated Reference
// Period / Retained Information Period are interpreted in the clock's
// units (e.g. microseconds for SystemClock).

#ifndef LRUK_UTIL_CLOCK_H_
#define LRUK_UTIL_CLOCK_H_

#include <chrono>

#include "core/types.h"

namespace lruk {

class Clock {
 public:
  virtual ~Clock() = default;

  // Current time; must be monotonically nondecreasing across calls.
  virtual Timestamp Now() = 0;
};

// Deterministic, manually advanced clock for tests and simulations that
// want wall-clock semantics without wall-clock nondeterminism.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Timestamp start = 1) : now_(start) {}

  Timestamp Now() override { return now_; }
  void Advance(Timestamp delta) { now_ += delta; }
  void Set(Timestamp t) { now_ = t >= now_ ? t : now_; }

 private:
  Timestamp now_;
};

// Monotonic wall time in microseconds since an arbitrary epoch.
class SystemClock final : public Clock {
 public:
  Timestamp Now() override {
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<Timestamp>(
        std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  }
};

}  // namespace lruk

#endif  // LRUK_UTIL_CLOCK_H_
