// Skewed discrete distributions used by the workload generators.
//
// Two families are provided:
//
//  * RecursiveSkewDistribution — the distribution used in the paper's
//    Section 4.2: "the probability for referencing a page with page number
//    less than or equal to i is (i/N)^(log alpha / log beta)"; i.e. a
//    fraction alpha of references targets a fraction beta of the pages,
//    recursively (the 80-20 rule when alpha=0.8, beta=0.2). The CDF is
//    closed-form, so sampling is a single inverse-CDF evaluation.
//
//  * ClassicZipfDistribution — the textbook Zipf(s) law, P(rank i) ∝ 1/i^s,
//    provided for users replaying standard cache benchmarks.
//
// Plus DiscreteSampler, an O(1) alias-method sampler over an arbitrary
// probability vector, used by the synthetic OLTP workload and by tests that
// need exact finite distributions (e.g. feeding the A0 oracle).

#ifndef LRUK_UTIL_ZIPF_H_
#define LRUK_UTIL_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace lruk {

// The paper's recursive alpha-beta skew over ranks 1..N.
class RecursiveSkewDistribution {
 public:
  // Requires 0 < alpha < 1, 0 < beta < 1, n >= 1. alpha is the fraction of
  // references, beta the fraction of pages they hit.
  RecursiveSkewDistribution(double alpha, double beta, uint64_t n);

  // Samples a rank in [1, n]; rank 1 is the hottest page.
  uint64_t Sample(RandomEngine& rng) const;

  // CDF: probability that a reference hits a rank <= i.
  double Cdf(uint64_t i) const;

  // Exact probability mass of rank i (Cdf(i) - Cdf(i-1)).
  double Pmf(uint64_t i) const;

  // All n per-rank probabilities; feeds the A0 oracle.
  std::vector<double> ProbabilityVector() const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;      // log(alpha) / log(beta)
  double inv_theta_;  // 1 / theta
};

// Classic Zipf(s): P(rank i) = (1/i^s) / H_{N,s}. Sampling is by binary
// search over a precomputed CDF (O(log n)); construction is O(n).
class ClassicZipfDistribution {
 public:
  // Requires n >= 1, s >= 0 (s == 0 degenerates to uniform).
  ClassicZipfDistribution(double s, uint64_t n);

  // Samples a rank in [1, n].
  uint64_t Sample(RandomEngine& rng) const;

  double Pmf(uint64_t i) const;
  std::vector<double> ProbabilityVector() const;

  uint64_t n() const { return static_cast<uint64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

// Walker alias method: O(n) build, O(1) sample, exact for any finite
// probability vector.
class DiscreteSampler {
 public:
  // `weights` must be nonempty and nonnegative with positive sum; they are
  // normalized internally.
  explicit DiscreteSampler(const std::vector<double>& weights);

  // Samples an index in [0, size()).
  size_t Sample(RandomEngine& rng) const;

  size_t size() const { return prob_.size(); }

  // Normalized probability of index i.
  double Probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;     // acceptance threshold per column
  std::vector<uint32_t> alias_;  // alias target per column
  std::vector<double> normalized_;
};

}  // namespace lruk

#endif  // LRUK_UTIL_ZIPF_H_
