// Cross-module integration tests: the full stack (workload -> simulator ->
// policy) reproducing the paper's qualitative claims, and the B+tree +
// buffer pool + LRU-K stack reproducing Example 1.1's buffer composition.

#include <memory>
#include <unordered_set>

#include "btree/btree.h"
#include "bufferpool/buffer_pool.h"
#include "core/lru.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "sim/simulator.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "workload/correlated.h"
#include "workload/trace.h"
#include "workload/moving_hotspot.h"
#include "workload/sequential.h"
#include "workload/two_pool.h"
#include "workload/zipfian_workload.h"

namespace lruk {
namespace {

SimOptions Sim(size_t capacity, uint64_t warmup, uint64_t measure) {
  SimOptions sim;
  sim.capacity = capacity;
  sim.warmup_refs = warmup;
  sim.measure_refs = measure;
  return sim;
}

TEST(IntegrationTest, TwoPoolLru2KeepsHotPoolResident) {
  // Example 1.1's fix: with B slightly above N1, LRU-2 should hold nearly
  // all hot (index) pages while LRU-1 wastes half the buffer on cold pages.
  TwoPoolOptions topt;
  topt.n1 = 100;
  topt.n2 = 10000;
  TwoPoolWorkload gen(topt);
  SimOptions sim = Sim(110, 10 * topt.n1, 30 * topt.n1);

  auto lru1 = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
  auto lru2 = SimulatePolicy(PolicyConfig::LruK(2), gen, sim);
  ASSERT_TRUE(lru1.ok() && lru2.ok());

  // Buffer composition at the end: LRU-1 splits ~50/50 (paper Section 1.1),
  // LRU-2 should hold the vast majority of pool-1 pages.
  uint64_t lru1_hot = lru1->classes[0].resident_at_end;
  uint64_t lru2_hot = lru2->classes[0].resident_at_end;
  EXPECT_LT(lru1_hot, 70u);
  EXPECT_GT(lru2_hot, 90u);
  EXPECT_GT(lru2->HitRatio(), lru1->HitRatio() + 0.1);
}

TEST(IntegrationTest, ScanResistanceOfLru2) {
  // Example 1.2: sequential scans poison LRU but barely dent LRU-2,
  // because scanned pages have b_t(p,2) = infinity and are replaced early.
  MixedScanOptions mopt;
  mopt.hot_pages = 200;
  mopt.total_pages = 20000;
  mopt.hot_probability = 0.95;
  // 70% of references come from the scanner: LRU's residence time
  // (~B / miss-rate ~ 430 refs) then falls below the hot pages'
  // interarrival (~700 refs) and the hot set churns out of the buffer.
  mopt.scan_fraction = 0.7;
  mopt.scan_initially_active = true;

  MixedScanWorkload gen(mopt);
  SimOptions sim = Sim(300, 20000, 40000);
  auto lru1 = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
  auto lru2 = SimulatePolicy(PolicyConfig::LruK(2), gen, sim);
  ASSERT_TRUE(lru1.ok() && lru2.ok());
  // Hot-class hit ratios: LRU-2 keeps serving the interactive class.
  double lru1_hot = lru1->classes[0].HitRatio();
  double lru2_hot = lru2->classes[0].HitRatio();
  EXPECT_GT(lru2_hot, lru1_hot + 0.1);
  EXPECT_GT(lru2_hot, 0.9);
}

TEST(IntegrationTest, Lru2AdaptsToMovingHotspotUnlikeLfu) {
  // Section 4.3's LFU caveat: cumulative counts freeze the old hot set.
  MovingHotspotOptions mopt;
  mopt.num_pages = 5000;
  mopt.hot_pages = 50;
  mopt.hot_probability = 0.9;
  mopt.epoch_length = 15000;
  mopt.shift = 1000;  // Hot set moves far each epoch.
  MovingHotspotWorkload gen(mopt);
  SimOptions sim = Sim(100, 30000, 60000);  // Several epochs measured.
  auto lru2 = SimulatePolicy(PolicyConfig::LruK(2), gen, sim);
  auto lfu = SimulatePolicy(PolicyConfig::Lfu(), gen, sim);
  ASSERT_TRUE(lru2.ok() && lfu.ok());
  EXPECT_GT(lru2->HitRatio(), lfu->HitRatio() + 0.05);
}

TEST(IntegrationTest, CorrelatedReferencePeriodFiltersBursts) {
  // On a burst-heavy cold stream mixed with a steady hot set, an LRU-2
  // with a sufficient CRP must beat an LRU-2 with CRP = 0: without the
  // time-out, a burst of 3 references makes a cold page look hot.
  auto make_gen = [] {
    TwoPoolOptions topt;
    topt.n1 = 64;
    topt.n2 = 20000;
    topt.seed = 5;
    auto base = std::make_unique<TwoPoolWorkload>(topt);
    CorrelatedOptions copt;
    copt.burst_probability = 0.5;
    copt.max_burst_length = 4;
    copt.seed = 6;
    return std::make_unique<CorrelatedWorkload>(std::move(base), copt);
  };
  SimOptions sim = Sim(96, 20000, 60000);
  auto gen_no_crp = make_gen();
  auto no_crp = SimulatePolicy(PolicyConfig::LruK(2, /*crp=*/0),
                               *gen_no_crp, sim);
  auto gen_crp = make_gen();
  auto with_crp = SimulatePolicy(PolicyConfig::LruK(2, /*crp=*/8),
                                 *gen_crp, sim);
  ASSERT_TRUE(no_crp.ok() && with_crp.ok());
  EXPECT_GT(with_crp->HitRatio(), no_crp->HitRatio());
}

TEST(IntegrationTest, RetainedInformationIsLoadBearing) {
  // The Section 2.1.2 scenario: hot pages are re-referenced at intervals
  // (~2*N1 = 200 refs) longer than their first-fault residence, so without
  // retained history LRU-2 never observes a second reference — every fault
  // looks brand new and the policy degenerates to its subsidiary LRU. With
  // history retained, the second fault reveals the finite interarrival and
  // the hot pool gets pinned down.
  // Concretely (paper Section 5): "a page referenced with metronome-like
  // regularity at intervals just above its residence period will [n]ever be
  // noticed as referenced twice" without retained history. Page 0 recurs
  // every 32 references; everything else is a one-shot stream of distinct
  // pages; the buffer holds 16 pages, so page 0 is always evicted before
  // it returns.
  constexpr uint64_t kPeriod = 32;
  constexpr uint64_t kTotal = 4800;
  std::vector<PageRef> refs;
  PageId fresh = 1;
  for (uint64_t t = 0; t < kTotal; ++t) {
    if (t % kPeriod == 0) {
      refs.push_back({0, AccessType::kRead});
    } else {
      refs.push_back({fresh++, AccessType::kRead});
    }
  }
  TraceWorkload gen(std::move(refs));
  SimOptions sim = Sim(16, 800, kTotal - 800);

  auto infinite = SimulatePolicy(
      PolicyConfig::LruK(2, 0, kInfinitePeriod), gen, sim);
  auto tiny = SimulatePolicy(PolicyConfig::LruK(2, 0, /*rip=*/1), gen, sim);
  ASSERT_TRUE(infinite.ok() && tiny.ok());
  // With retained history, page 0's second fault reveals b = 32 (finite),
  // it gets pinned down by the victim order, and every later metronome
  // reference hits. Without history it never hits at all.
  EXPECT_EQ(tiny->hits, 0u);
  EXPECT_GT(infinite->hits, 100u);
}

TEST(IntegrationTest, BTreeExample11CompositionUnderLruK) {
  // Build the Example 1.1 database: a clustered index over 20,000 keys
  // (scaled to 2,000 for test speed) whose values name record pages; probe
  // random keys and fetch the record page for each. Under LRU-2 the pool
  // should fill with index pages, under LRU the mix stays diluted.
  constexpr uint64_t kKeys = 2000;
  constexpr uint64_t kRecordsPerPage = 2;

  auto run = [&](std::unique_ptr<ReplacementPolicy> policy,
                 double* index_fraction) {
    SimDiskManager disk;
    BufferPool pool(32, &disk, std::move(policy));

    // Record pages first.
    std::vector<PageId> record_pages;
    for (uint64_t i = 0; i < kKeys / kRecordsPerPage; ++i) {
      auto page = pool.NewPage();
      ASSERT_TRUE(page.ok());
      record_pages.push_back((*page)->id());
      ASSERT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
    }
    BTreeOptions options;
    options.leaf_capacity = 100;
    BTree tree(&pool, options);
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(tree.Insert(k, record_pages[k / kRecordsPerPage]).ok());
    }
    std::unordered_set<PageId> index_pages;
    auto leaves = tree.LeafPageIds();
    ASSERT_TRUE(leaves.ok());
    index_pages.insert(leaves->begin(), leaves->end());
    index_pages.insert(tree.RootPageId());

    // Probe phase: random key -> index descent -> record page fetch.
    RandomEngine rng(31337);
    for (int probe = 0; probe < 20000; ++probe) {
      uint64_t key = rng.NextBounded(kKeys);
      auto record_page = tree.Get(key);
      ASSERT_TRUE(record_page.ok());
      auto guard = PageGuard::Fetch(pool, *record_page);
      ASSERT_TRUE(guard.ok());
    }

    // Composition: fraction of resident pages that are index pages.
    size_t index_resident = 0;
    size_t total_resident = 0;
    for (PageId p = 0; p < disk.NumAllocatedPages() + 8; ++p) {
      if (!pool.IsResident(p)) continue;
      ++total_resident;
      if (index_pages.contains(p)) ++index_resident;
    }
    ASSERT_GT(total_resident, 0u);
    *index_fraction =
        static_cast<double>(index_resident) / static_cast<double>(total_resident);
  };

  double lru_fraction = 0.0;
  double lruk_fraction = 0.0;
  {
    SCOPED_TRACE("LRU");
    run(std::make_unique<LruPolicy>(), &lru_fraction);
  }
  {
    SCOPED_TRACE("LRU-2");
    LruKOptions options;
    options.k = 2;
    run(std::make_unique<LruKPolicy>(options), &lruk_fraction);
  }
  // LRU-2's buffer must be much richer in index pages. With 2000 keys at
  // 100 per packed leaf the index is 21 pages (20 leaves + root), so the
  // achievable maximum fraction in the 32-frame pool is 21/32 ~ 0.66 —
  // which LRU-2 should hit while LRU stays diluted by record pages.
  EXPECT_GT(lruk_fraction, lru_fraction + 0.1);
  EXPECT_GT(lruk_fraction, 0.62);
  EXPECT_LT(lru_fraction, 0.55);
}

TEST(IntegrationTest, FullStackDeterminism) {
  // Same seed, same configuration: the entire stack must be bit-stable.
  ZipfianOptions zopt;
  zopt.num_pages = 400;
  ZipfianWorkload gen(zopt);
  SimOptions sim = Sim(64, 3000, 9000);
  auto a = SimulatePolicy(PolicyConfig::LruK(3), gen, sim);
  auto b = SimulatePolicy(PolicyConfig::LruK(3), gen, sim);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->hits, b->hits);
  EXPECT_EQ(a->evictions, b->evictions);
  EXPECT_EQ(a->total_misses, b->total_misses);
}

}  // namespace
}  // namespace lruk
