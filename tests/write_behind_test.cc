// Write-behind eviction, I/O priority lanes, and adaptive flusher pacing
// (deterministic half; the threaded property tests live in
// async_io_concurrency_test.cc).
//
// Coverage:
//  * Write-behind — a dirty victim's write-back leaves the miss path: the
//    admission returns while the victim write is still parked behind a
//    gate; a re-fetch of the in-flight victim waits the write out and then
//    reads the freshly written image; inline mode (io_workers = 0) keeps
//    the synchronous path (write_behind is a no-op there).
//  * Failure semantics — a failed victim write re-admits the page exactly
//    (resident, dirty, original image, policy Restore) when a frame can be
//    found, or parks the image when every frame is pinned; parked images
//    are authoritative and are resolved by FetchPage (re-admit), FlushPage
//    / FlushAll (persist), or DeletePage (discard). No frame is ever
//    leaked, no image is ever dropped.
//  * IoPriority — per-lane accept/reject/execute accounting in inline and
//    worker mode; strict demand preference; the anti-starvation budget
//    grants queued background work after a bounded demand streak.
//  * FlusherPacing — the adaptive controller ramps cadence and batch
//    within [min_every, max_every] x [flusher_batch, max_batch] as the
//    dirty ratio crosses [dirty_low, dirty_high], in both directions.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "io/io_dispatcher.h"
#include "storage/fault_injecting_disk_manager.h"
#include "storage/sim_disk_manager.h"

namespace lruk {
namespace {

// Blocks writes of one chosen page until released (the write-side twin of
// the read gate in async_io_test.cc) — parks a write-behind victim write
// mid-flight so the off-miss-path claim can be asserted deterministically.
class WriteGateDiskManager final : public DiskManager {
 public:
  explicit WriteGateDiskManager(DiskManager* inner) : inner_(inner) {}

  void Close(PageId p) {
    std::lock_guard<std::mutex> guard(mutex_);
    gated_ = p;
    open_ = false;
  }
  void Open() {
    std::lock_guard<std::mutex> guard(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  // Blocks until a writer has reached the gate.
  void AwaitWriter() {
    std::unique_lock<std::mutex> guard(mutex_);
    cv_.wait(guard, [&] { return waiting_ > 0; });
  }

  Status ReadPage(PageId p, char* out) override {
    return inner_->ReadPage(p, out);
  }
  Status WritePage(PageId p, const char* data) override {
    {
      std::unique_lock<std::mutex> guard(mutex_);
      if (!open_ && p == gated_) {
        ++waiting_;
        cv_.notify_all();  // Wake AwaitWriter.
        cv_.wait(guard, [&] { return open_; });
        --waiting_;
      }
    }
    return inner_->WritePage(p, data);
  }
  Result<PageId> AllocatePage() override { return inner_->AllocatePage(); }
  Status DeallocatePage(PageId p) override {
    return inner_->DeallocatePage(p);
  }
  uint64_t NumAllocatedPages() const override {
    return inner_->NumAllocatedPages();
  }
  IoStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  DiskManager* inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  PageId gated_ = kInvalidPageId;
  bool open_ = true;
  int waiting_ = 0;
};

void StampPage(Page* page, char fill) {
  std::memset(page->Data(), fill, kPageSize);
}

void ExpectDiskImage(DiskManager& disk, PageId p, char fill) {
  auto image = std::make_unique<char[]>(kPageSize);
  ASSERT_TRUE(disk.ReadPage(p, image.get()).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(image[i], fill) << "disk image of page " << p
                              << " wrong at byte " << i;
  }
}

BufferPoolOptions WriteBehindOptions(size_t workers) {
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = workers;
  options.io_queue_depth = 16;
  options.write_behind = true;
  return options;
}

std::unique_ptr<LruKPolicy> Lru2(size_t capacity) {
  return std::make_unique<LruKPolicy>(
      LruKOptions{.k = 2, .capacity_hint = capacity});
}

// ---------------------------------------------------------------------------
// Write-behind: the dirty write-back leaves the miss path.

TEST(WriteBehindTest, DirtyVictimWriteRunsOffTheMissPath) {
  SimDiskManager inner;
  WriteGateDiskManager disk(&inner);
  BufferPool pool(1, &disk, Lru2(1), WriteBehindOptions(/*workers=*/1));

  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  PageId pa = (*a)->id();
  StampPage(*a, 'a');
  disk.Close(pa);  // Park pa's eventual victim write.
  ASSERT_TRUE(pool.UnpinPage(pa, true).ok());

  // The admission evicts dirty pa. With write-behind the write is handed
  // to the Flush lane and NewPage returns immediately — with a
  // synchronous write-back this call would hang on the gate forever.
  auto b = pool.NewPage();
  ASSERT_TRUE(b.ok());
  PageId pb = (*b)->id();
  disk.AwaitWriter();  // The victim write is in flight, parked.
  EXPECT_EQ(pool.PendingVictimWriteCount(), 1u);
  EXPECT_FALSE(pool.IsResident(pa));
  BufferPoolStats mid = pool.stats();
  EXPECT_EQ(mid.dirty_writebacks, 0u);  // Nothing written in the foreground.
  EXPECT_EQ(mid.writebehind_writes, 0u);  // Not finished yet either.
  EXPECT_EQ(mid.evictions, 1u);  // The eviction itself is counted.

  disk.Open();
  pool.Quiesce();
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.dirty_writebacks, 0u);
  EXPECT_EQ(stats.writebehind_writes, 1u);
  EXPECT_EQ(pool.PendingVictimWriteCount(), 0u);
  ExpectDiskImage(inner, pa, 'a');  // The pinned copy reached disk intact.
  EXPECT_TRUE(pool.UnpinPage(pb, false).ok());
}

TEST(WriteBehindTest, FetchOfInFlightVictimWaitsForTheWrite) {
  SimDiskManager inner;
  WriteGateDiskManager disk(&inner);
  BufferPool pool(2, &disk, Lru2(2), WriteBehindOptions(/*workers=*/2));

  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  PageId pa = (*a)->id();
  StampPage(*a, 'a');
  ASSERT_TRUE(pool.UnpinPage(pa, true).ok());
  auto b = pool.NewPage();
  ASSERT_TRUE(b.ok());
  PageId pb = (*b)->id();
  ASSERT_TRUE(pool.UnpinPage(pb, false).ok());

  // pa is the LRU victim (oldest single reference). Park its write.
  disk.Close(pa);
  auto c = pool.NewPage();
  ASSERT_TRUE(c.ok());
  disk.AwaitWriter();
  ASSERT_EQ(pool.PendingVictimWriteCount(), 1u);

  // A re-fetch of pa must wait the in-flight write out (the only current
  // copy is the pinned copy being written) and then read it back.
  std::atomic<bool> fetched{false};
  std::thread fetcher([&] {
    auto page = pool.FetchPage(pa, AccessType::kRead);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->Data()[0], 'a');
    EXPECT_EQ((*page)->Data()[kPageSize - 1], 'a');
    fetched.store(true);
    EXPECT_TRUE(pool.UnpinPage(pa, false).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(fetched.load());  // Still parked behind the gate.
  disk.Open();
  fetcher.join();
  EXPECT_TRUE(fetched.load());
  pool.Quiesce();
  EXPECT_EQ(pool.PendingVictimWriteCount(), 0u);
  EXPECT_TRUE(pool.UnpinPage((*c)->id(), false).ok());
}

TEST(WriteBehindTest, InlineModeKeepsSynchronousWritebacks) {
  SimDiskManager disk;
  // write_behind requested but io_workers = 0: the option must be a no-op
  // so inline mode stays byte-identical to the direct path.
  BufferPool pool(1, &disk, Lru2(1), WriteBehindOptions(/*workers=*/0));

  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  PageId pa = (*a)->id();
  StampPage(*a, 'a');
  ASSERT_TRUE(pool.UnpinPage(pa, true).ok());
  auto b = pool.NewPage();
  ASSERT_TRUE(b.ok());

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.dirty_writebacks, 1u);  // Synchronous, on the miss path.
  EXPECT_EQ(stats.writebehind_writes, 0u);
  EXPECT_EQ(pool.PendingVictimWriteCount(), 0u);
  ExpectDiskImage(disk, pa, 'a');
  EXPECT_TRUE(pool.UnpinPage((*b)->id(), false).ok());
}

// ---------------------------------------------------------------------------
// Write-behind failure semantics.

TEST(WriteBehindTest, FailedVictimWriteReadmitsThePageDirtyAndIntact) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/7);
  BufferPool pool(2, &disk, Lru2(2), WriteBehindOptions(/*workers=*/1));

  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  PageId pa = (*a)->id();
  StampPage(*a, 'a');
  ASSERT_TRUE(pool.UnpinPage(pa, true).ok());
  auto b = pool.NewPage();
  ASSERT_TRUE(b.ok());
  PageId pb = (*b)->id();
  ASSERT_TRUE(pool.UnpinPage(pb, false).ok());
  ASSERT_TRUE(pool.FlushPage(pb).ok());  // pb clean: its eviction is free.

  disk.AddRule(FaultRule::FailPage(FaultOp::kWrite, pa));  // Permanent.
  // The admission evicts pa (oldest single reference); its write-behind
  // write fails; the re-admit evicts clean pb to make room and restores
  // pa — resident, dirty, and byte-identical — via ReplacementPolicy::
  // Restore (delayed: unrelated admissions happened in between).
  auto c = pool.NewPage();
  ASSERT_TRUE(c.ok());
  pool.Quiesce();

  BufferPoolStats stats = pool.stats();
  EXPECT_GE(stats.write_failures, 1u);
  EXPECT_EQ(stats.writebehind_readmits, 1u);
  EXPECT_EQ(stats.writebehind_writes, 0u);
  EXPECT_EQ(stats.dirty_writebacks, 0u);
  EXPECT_EQ(pool.ParkedVictimCount(), 0u);
  EXPECT_TRUE(pool.IsResident(pa));
  EXPECT_FALSE(pool.IsResident(pb));  // Sacrificed for the re-admit.

  // The image survived the failed write exactly (it travelled out through
  // the pinned copy and back into a frame), and it is still dirty: after
  // the fault heals, a flush persists it.
  auto again = pool.FetchPage(pa, AccessType::kRead);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->Data()[0], 'a');
  EXPECT_EQ((*again)->Data()[kPageSize - 1], 'a');
  EXPECT_TRUE(pool.UnpinPage(pa, false).ok());
  disk.Heal();
  EXPECT_TRUE(pool.FlushPage(pa).ok());
  ExpectDiskImage(inner, pa, 'a');
  EXPECT_TRUE(pool.UnpinPage((*c)->id(), false).ok());
}

TEST(WriteBehindTest, FailedVictimWriteParksWhenEveryFrameIsPinned) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/9);
  BufferPool pool(1, &disk, Lru2(1), WriteBehindOptions(/*workers=*/1));

  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  PageId pa = (*a)->id();
  StampPage(*a, 'a');
  ASSERT_TRUE(pool.UnpinPage(pa, true).ok());
  disk.AddRule(FaultRule::FailPage(FaultOp::kWrite, pa));

  // The only frame stays pinned by pb, so the failed write-behind write
  // has nowhere to re-admit pa: its image is parked, never dropped.
  auto b = pool.NewPage();
  ASSERT_TRUE(b.ok());
  PageId pb = (*b)->id();
  pool.Quiesce();
  EXPECT_EQ(pool.ParkedVictimCount(), 1u);
  EXPECT_EQ(pool.stats().writebehind_readmits, 0u);
  EXPECT_FALSE(pool.IsResident(pa));

  // A fetch while the pool is still full cannot re-admit it...
  auto full = pool.FetchPage(pa, AccessType::kRead);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.ParkedVictimCount(), 1u);  // Still parked, still safe.

  // ...but once a frame frees up, the fetch re-admits the parked image —
  // authoritative over the stale disk copy — dirty and intact.
  ASSERT_TRUE(pool.UnpinPage(pb, false).ok());
  auto again = pool.FetchPage(pa, AccessType::kRead);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->Data()[0], 'a');
  EXPECT_EQ((*again)->Data()[kPageSize - 1], 'a');
  EXPECT_EQ(pool.ParkedVictimCount(), 0u);
  EXPECT_EQ(pool.stats().writebehind_readmits, 1u);
  EXPECT_TRUE(pool.UnpinPage(pa, false).ok());

  // No leaks anywhere: the pool still balances and settles.
  pool.Quiesce();
  disk.Heal();
  EXPECT_TRUE(pool.FlushAll().ok());
  ExpectDiskImage(inner, pa, 'a');
  EXPECT_EQ(pool.ResidentCount() + pool.FreeFrameCount(), pool.capacity());
}

TEST(WriteBehindTest, FlushPersistsAndDeleteDiscardsParkedImages) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/11);
  BufferPool pool(1, &disk, Lru2(1), WriteBehindOptions(/*workers=*/1));

  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  PageId pa = (*a)->id();
  StampPage(*a, 'a');
  ASSERT_TRUE(pool.UnpinPage(pa, true).ok());
  disk.AddRule(FaultRule::FailPage(FaultOp::kWrite, pa));
  auto b = pool.NewPage();  // Pinned: the failed write parks pa.
  ASSERT_TRUE(b.ok());
  pool.Quiesce();
  ASSERT_EQ(pool.ParkedVictimCount(), 1u);

  // FlushPage persists the parked image directly — that IS the flush.
  disk.Heal();
  EXPECT_TRUE(pool.FlushPage(pa).ok());
  EXPECT_EQ(pool.ParkedVictimCount(), 0u);
  EXPECT_FALSE(pool.IsResident(pa));
  ExpectDiskImage(inner, pa, 'a');

  // Park it again (the rule re-arms via AddRule), then delete: the parked
  // image is discarded with the page.
  auto a2 = pool.FetchPage(pa, AccessType::kWrite);
  {
    // Make room first: unpin b so pa can come back in.
    ASSERT_FALSE(a2.ok());  // b still pinned when we tried.
    ASSERT_TRUE(pool.UnpinPage((*b)->id(), false).ok());
    a2 = pool.FetchPage(pa, AccessType::kWrite);
    ASSERT_TRUE(a2.ok());
  }
  StampPage(*a2, 'z');
  ASSERT_TRUE(pool.UnpinPage(pa, true).ok());
  disk.AddRule(FaultRule::FailPage(FaultOp::kWrite, pa));
  auto c = pool.NewPage();  // Pinned: parks pa again.
  ASSERT_TRUE(c.ok());
  pool.Quiesce();
  ASSERT_EQ(pool.ParkedVictimCount(), 1u);
  disk.Heal();
  EXPECT_TRUE(pool.DeletePage(pa).ok());
  EXPECT_EQ(pool.ParkedVictimCount(), 0u);
  EXPECT_TRUE(pool.UnpinPage((*c)->id(), false).ok());
}

// ---------------------------------------------------------------------------
// IoPriority: lanes, preference, anti-starvation.

TEST(IoPriorityTest, InlineModeCountsPerLaneAccounting) {
  IoDispatcher io(IoDispatcherOptions{.workers = 0});
  int ran = 0;
  io.Run([&] { ++ran; });                      // Demand.
  io.Run([&] { ++ran; }, IoClass::kFlush);     // Flush.
  EXPECT_TRUE(io.TryPost([&] { ++ran; }));     // Prefetch (default).
  EXPECT_EQ(ran, 3);

  IoDispatcherStats stats = io.stats();
  EXPECT_EQ(stats.executed_inline, 3u);
  EXPECT_EQ(stats.starvation_grants, 0u);
  for (IoClass cls :
       {IoClass::kDemand, IoClass::kFlush, IoClass::kPrefetch}) {
    EXPECT_EQ(stats.lane(cls).accepted, 1u) << IoClassName(cls);
    EXPECT_EQ(stats.lane(cls).executed, 1u) << IoClassName(cls);
    EXPECT_EQ(stats.lane(cls).rejected, 0u) << IoClassName(cls);
    EXPECT_DOUBLE_EQ(stats.lane(cls).wait_micros, 0.0) << IoClassName(cls);
  }
}

// Holds the single worker inside a closure until released, so queue
// contents (and therefore dispatch order) can be staged deterministically.
class WorkerGate {
 public:
  std::function<void()> Job() {
    return [this] {
      std::unique_lock<std::mutex> guard(mutex_);
      entered_ = true;
      cv_.notify_all();
      cv_.wait(guard, [&] { return open_; });
    };
  }
  void AwaitWorker() {
    std::unique_lock<std::mutex> guard(mutex_);
    cv_.wait(guard, [&] { return entered_; });
  }
  void Open() {
    std::lock_guard<std::mutex> guard(mutex_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool open_ = false;
};

class OrderLog {
 public:
  void Add(const char* tag) {
    std::lock_guard<std::mutex> guard(mutex_);
    order_.emplace_back(tag);
  }
  std::vector<std::string> Get() {
    std::lock_guard<std::mutex> guard(mutex_);
    return order_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> order_;
};

TEST(IoPriorityTest, TryPostRejectionIsPerLane) {
  IoDispatcher io(IoDispatcherOptions{.workers = 1, .queue_depth = 1});
  WorkerGate gate;
  ASSERT_TRUE(io.TryPost(gate.Job(), IoClass::kDemand));
  gate.AwaitWorker();  // Worker busy; lanes empty.

  EXPECT_TRUE(io.TryPost([] {}, IoClass::kFlush));
  EXPECT_FALSE(io.TryPost([] {}, IoClass::kFlush));  // Flush lane full...
  EXPECT_TRUE(io.TryPost([] {}, IoClass::kPrefetch));  // ...prefetch isn't.
  EXPECT_FALSE(io.TryPost([] {}, IoClass::kPrefetch));

  gate.Open();
  io.Drain();
  IoDispatcherStats stats = io.stats();
  EXPECT_EQ(stats.lane(IoClass::kFlush).accepted, 1u);
  EXPECT_EQ(stats.lane(IoClass::kFlush).rejected, 1u);
  EXPECT_EQ(stats.lane(IoClass::kFlush).executed, 1u);
  EXPECT_EQ(stats.lane(IoClass::kFlush).queue_highwater, 1u);
  EXPECT_EQ(stats.lane(IoClass::kPrefetch).accepted, 1u);
  EXPECT_EQ(stats.lane(IoClass::kPrefetch).rejected, 1u);
  EXPECT_EQ(stats.lane(IoClass::kPrefetch).executed, 1u);
  EXPECT_EQ(stats.lane(IoClass::kDemand).executed, 1u);  // The gate job.
  EXPECT_EQ(stats.rejected, 2u);  // Aggregate keeps its PR 5 meaning.
}

TEST(IoPriorityTest, DemandDispatchesBeforeQueuedBackgroundWork) {
  IoDispatcher io(IoDispatcherOptions{.workers = 1, .queue_depth = 8});
  WorkerGate gate;
  OrderLog log;
  ASSERT_TRUE(io.TryPost(gate.Job(), IoClass::kDemand));
  gate.AwaitWorker();

  // Stage: prefetch and flush queued first, demand arriving last.
  ASSERT_TRUE(io.TryPost([&] { log.Add("P"); }, IoClass::kPrefetch));
  ASSERT_TRUE(io.TryPost([&] { log.Add("F"); }, IoClass::kFlush));
  std::thread demand([&] { io.Run([&] { log.Add("D"); }); });
  while (io.LaneDepth(IoClass::kDemand) == 0) std::this_thread::yield();

  gate.Open();
  demand.join();
  io.Drain();
  // Demand jumps the queue; among background work Flush outranks Prefetch.
  EXPECT_EQ(log.Get(), (std::vector<std::string>{"D", "F", "P"}));
}

TEST(IoPriorityTest, StarvationBudgetGrantsQueuedBackgroundWork) {
  IoDispatcher io(IoDispatcherOptions{
      .workers = 1, .queue_depth = 16, .starvation_budget = 2});
  WorkerGate gate;
  OrderLog log;
  ASSERT_TRUE(io.TryPost(gate.Job(), IoClass::kDemand));
  gate.AwaitWorker();

  ASSERT_TRUE(io.TryPost([&] { log.Add("F"); }, IoClass::kFlush));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(io.TryPost([&] { log.Add("D"); }, IoClass::kDemand));
  }
  gate.Open();
  io.Drain();

  std::vector<std::string> order = log.Get();
  ASSERT_EQ(order.size(), 7u);
  size_t flush_at = 0;
  while (flush_at < order.size() && order[flush_at] != "F") ++flush_at;
  // With budget 2 (and the gate job already one demand dispatch), the
  // flush item cannot sit behind more than 2 of the 6 queued demands.
  EXPECT_LE(flush_at, 2u);
  EXPECT_GE(io.stats().starvation_grants, 1u);
}

// ---------------------------------------------------------------------------
// FlusherPacing: the adaptive controller.

TEST(FlusherPacingTest, ControllerRampsWithDirtyRatioWithinBounds) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 0;  // Inline: passes run synchronously in-op.
  options.flusher = true;
  options.flusher_every_ops = 4;
  options.flusher_batch = 1;
  options.flusher_adaptive = true;
  options.flusher_min_every = 2;
  options.flusher_max_every = 16;
  options.flusher_max_batch = 8;
  options.flusher_dirty_low = 0.1;
  options.flusher_dirty_high = 0.5;
  constexpr size_t kFrames = 8;
  BufferPool pool(kFrames, &disk, Lru2(kFrames), options);

  // Adaptive mode starts at the lazy end of the range.
  EXPECT_EQ(pool.flusher_cadence(), 16u);
  EXPECT_EQ(pool.flusher_batch_size(), 1u);

  std::vector<PageId> pages;
  for (size_t i = 0; i < kFrames; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    pages.push_back((*page)->id());
    ASSERT_TRUE(pool.UnpinPage(pages.back(), true).ok());
  }

  // Everything is dirty (ratio 1.0 > dirty_high): the first pass must
  // swing cadence to min_every and batch to max_batch. Cadence/batch stay
  // inside their configured bounds at every step.
  bool ramped_up = false;
  for (int i = 0; i < 64 && !ramped_up; ++i) {
    auto page = pool.FetchPage(pages[0], AccessType::kRead);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
    EXPECT_GE(pool.flusher_cadence(), 2u);
    EXPECT_LE(pool.flusher_cadence(), 16u);
    EXPECT_GE(pool.flusher_batch_size(), 1u);
    EXPECT_LE(pool.flusher_batch_size(), 8u);
    ramped_up =
        pool.flusher_cadence() == 2u && pool.flusher_batch_size() == 8u;
  }
  EXPECT_TRUE(ramped_up);

  // Clean everything (ratio 0 < dirty_low): the next pass must relax back
  // to max_every / flusher_batch.
  ASSERT_TRUE(pool.FlushAll().ok());
  bool ramped_down = false;
  for (int i = 0; i < 64 && !ramped_down; ++i) {
    auto page = pool.FetchPage(pages[0], AccessType::kRead);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
    ramped_down =
        pool.flusher_cadence() == 16u && pool.flusher_batch_size() == 1u;
  }
  EXPECT_TRUE(ramped_down);
}

}  // namespace
}  // namespace lruk
