// Threaded half of the optimistic hit-path battery (the deterministic
// half lives in optimistic_pool_test.cc). Runs under TSan/ASan in CI's
// sanitizer matrix (test names match the 'Optimistic' ctest regex) —
// these are the tests that prove the seqlock/pin handshake, not just
// exercise it: TSan sees every optimistic probe, speculative pin and
// bucket-version dance.
//
// Coverage:
//  * Hot-page hammer — 8 threads fetch/unpin ONE page in a tight loop:
//    the worst case for the old design (every hit serialized on the pool
//    latch) and the best case for this one (all CAS traffic on one pin
//    count). Bytes stay readable throughout; every fetch resolves.
//  * Mixed churn, full stack — 8 threads of skewed read/write traffic
//    over an optimistic pool with worker-mode dispatcher, background
//    flusher and batching: evictions, flusher write-backs and latch-free
//    hits race continuously; frame accounting balances after quiesce.
//  * Delete/reuse churn — concurrent DeletePage + NewPage cycles recycle
//    page ids under live optimistic readers: the eviction/delete bucket
//    handshake (version odd before the pin check) is what keeps a reader
//    from validating a pin on a reused frame.
//  * Sharded churn — optimistic shards under the pool-level readahead
//    detector: the fast path and pool-level prefetch compose.

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

constexpr int kThreads = 8;

std::vector<PageId> AllocateDb(PoolInterface& pool, uint64_t n) {
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < n; ++i) {
    auto page = pool.NewPage();
    EXPECT_TRUE(page.ok());
    pages.push_back((*page)->id());
    EXPECT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
  }
  return pages;
}

// ---------------------------------------------------------------------------
// Hot-page hammer: maximal contention on one pin count.

TEST(OptimisticConcurrencyTest, HotPageHammerStaysCoherent) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  options.batch_capacity = 64;
  options.batch_stripes = 8;
  BufferPool pool(8, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> pages = AllocateDb(pool, 8);
  PageId hot = pages[0];

  // Stamp the hot page once; readers verify the bytes on every hit (no
  // concurrent writers, so TSan-clean by the pin protocol alone).
  constexpr uint64_t kStamp = 0x0DDBA11CAFEF00DULL;
  {
    auto page = pool.FetchPage(hot, AccessType::kWrite);
    ASSERT_TRUE(page.ok());
    std::memcpy((*page)->Data(), &kStamp, sizeof(kStamp));
    ASSERT_TRUE(pool.UnpinPage(hot, true).ok());
  }

  constexpr int kOpsPerThread = 20000;
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        attempts.fetch_add(1, std::memory_order_relaxed);
        auto page = pool.FetchPage(hot, AccessType::kRead);
        ASSERT_TRUE(page.ok());
        uint64_t got;
        std::memcpy(&got, (*page)->Data(), sizeof(got));
        if (got != kStamp) mismatches.fetch_add(1, std::memory_order_relaxed);
        EXPECT_TRUE(pool.UnpinPage(hot, false).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  BufferPoolStats stats = pool.stats();
  // Every fetch resolved to exactly one hit or one miss (+1: the stamping
  // fetch; NewPage admissions count neither).
  EXPECT_EQ(stats.hits + stats.misses, attempts.load() + 1);
  // The hammer ran latch-free: nearly every op is an optimistic hit (the
  // pool never evicts here, so nothing invalidates the hot bucket).
  EXPECT_GT(stats.optimistic_hits, stats.hits / 2);

  // All pins released: a fresh fetch is the only one.
  auto page = pool.FetchPage(hot, AccessType::kRead);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->pin_count(), 1);
  EXPECT_TRUE(pool.UnpinPage(hot, false).ok());
  EXPECT_EQ(pool.ResidentCount() + pool.FreeFrameCount(), pool.capacity());
}

// ---------------------------------------------------------------------------
// Mixed churn over the full async stack.

struct ChurnTotals {
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> failures{0};
};

// Same traffic shape as async_io_concurrency_test.cc's ChurnThread: skewed
// fetches with sequential stretches, 40% writes. Each writer stamps its
// own seed-indexed 8-byte slot — the pin protocol stabilizes the frame,
// writer/writer coordination on the bytes stays the caller's job.
void ChurnThread(PoolInterface& pool, const std::vector<PageId>& pages,
                 uint64_t seed, int ops, ChurnTotals& totals) {
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(seed);
  for (int i = 0; i < ops; ++i) {
    PageId p;
    if (rng.NextBernoulli(0.2)) {
      p = pages[(static_cast<size_t>(i) * 3 + seed) % pages.size()];
    } else {
      p = pages[dist.Sample(rng) - 1];
    }
    bool write = rng.NextBernoulli(0.4);
    totals.attempts.fetch_add(1, std::memory_order_relaxed);
    auto page =
        pool.FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
    if (!page.ok()) {
      totals.failures.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (write) {
      uint64_t stamp = seed * 1000003 + static_cast<uint64_t>(i);
      std::memcpy((*page)->Data() + (seed % 64) * sizeof(stamp), &stamp,
                  sizeof(stamp));
    }
    EXPECT_TRUE(pool.UnpinPage(p, write).ok());
  }
}

TEST(OptimisticConcurrencyTest, MixedChurnKeepsPlainPoolInvariants) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  options.batch_capacity = 64;
  options.batch_stripes = 8;
  options.io_dispatcher = true;
  options.io_workers = 4;
  options.io_queue_depth = 32;
  options.flusher = true;
  options.flusher_every_ops = 32;
  options.flusher_batch = 4;

  BufferPoolStats stats;
  {
    BufferPool pool(24, &disk,
                    std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                    options);
    std::vector<PageId> pages = AllocateDb(pool, 64);
    ChurnTotals totals;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ChurnThread(pool, pages, /*seed=*/400 + t, /*ops=*/3000, totals);
      });
    }
    for (auto& t : threads) t.join();

    pool.Quiesce();
    EXPECT_EQ(totals.failures.load(), 0u);  // No faults in this battery.
    stats = pool.stats();
    // Every fetch resolved to exactly one hit or one miss — latch-free
    // hits included (NewPage admissions count neither).
    EXPECT_EQ(stats.hits + stats.misses, totals.attempts.load());
    EXPECT_GT(stats.optimistic_hits, 0u);

    // Frame accounting balances after quiesce; all pins released.
    EXPECT_EQ(pool.ResidentCount() + pool.FreeFrameCount(), pool.capacity());
    EXPECT_EQ(pool.PendingIoCount(), 0u);
    EXPECT_TRUE(pool.FlushAll().ok());
  }
  // The flusher engaged against the optimistic pin/bucket handshake.
  EXPECT_GT(stats.background_cleans, 0u);
}

// ---------------------------------------------------------------------------
// Delete/reuse churn: page ids recycle under live optimistic readers.

TEST(OptimisticConcurrencyTest, DeleteReuseChurnUnderOptimisticReaders) {
  constexpr size_t kSlots = 48;
  constexpr int kAccessThreads = 6;
  constexpr int kDeleteThreads = 2;

  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;  // batch_capacity auto-bumps to 64.
  options.batch_stripes = 8;
  BufferPool pool(16, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}), options);
  std::vector<PageId> initial = AllocateDb(pool, kSlots);
  // Readers sample slots while delete threads swap fresh ids in; a stale
  // id may be deleted (NotFound), mid-recycle, or already reincarnated by
  // the time the fetch lands — all tolerated, the invariant under test is
  // that no interleaving corrupts pins, frames or the page table.
  std::vector<std::atomic<PageId>> slots(kSlots);
  for (size_t i = 0; i < kSlots; ++i) slots[i].store(initial[i]);

  std::vector<std::thread> threads;
  threads.reserve(kAccessThreads + kDeleteThreads);
  for (int t = 0; t < kAccessThreads; ++t) {
    threads.emplace_back([&, t] {
      RandomEngine rng(/*seed=*/500 + t);
      for (int i = 0; i < 4000; ++i) {
        PageId p = slots[rng.NextBounded(kSlots)].load();
        auto page = pool.FetchPage(p, AccessType::kRead);
        if (!page.ok()) continue;  // Raced with a delete: tolerated.
        EXPECT_TRUE(pool.UnpinPage(p, false).ok());
      }
    });
  }
  // Each delete thread owns a disjoint slot range (ids may still collide
  // across threads through the allocator's free list — also tolerated).
  for (int t = 0; t < kDeleteThreads; ++t) {
    threads.emplace_back([&, t] {
      RandomEngine rng(/*seed=*/600 + t);
      size_t lo = t * (kSlots / kDeleteThreads);
      size_t hi = lo + kSlots / kDeleteThreads;
      for (int i = 0; i < 1500; ++i) {
        size_t idx = lo + rng.NextBounded(hi - lo);
        PageId p = slots[idx].load();
        Status deleted = pool.DeletePage(p);
        if (deleted.code() == StatusCode::kInvalidArgument) {
          continue;  // Pinned by a racing reader: retry another round.
        }
        // Ok, or NotFound when a free-list collision let the other delete
        // thread reap this id first; either way the slot needs a fresh id.
        auto fresh = pool.NewPage();
        ASSERT_TRUE(fresh.ok());
        slots[idx].store((*fresh)->id());
        EXPECT_TRUE(pool.UnpinPage((*fresh)->id(), true).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  // Structure survived the id churn: balanced frames, no stuck pins.
  EXPECT_EQ(pool.ResidentCount() + pool.FreeFrameCount(), pool.capacity());
  EXPECT_TRUE(pool.FlushAll().ok());
  for (size_t i = 0; i < kSlots; ++i) {
    PageId p = slots[i].load();
    auto page = pool.FetchPage(p, AccessType::kRead);
    ASSERT_TRUE(page.ok()) << "slot " << i;
    EXPECT_EQ((*page)->pin_count(), 1);
    EXPECT_TRUE(pool.UnpinPage(p, false).ok());
  }
  EXPECT_GT(pool.stats().optimistic_hits, 0u);
}

// ---------------------------------------------------------------------------
// Sharded churn: optimistic shards under the pool-level readahead.

TEST(OptimisticConcurrencyTest, ShardedChurnComposesWithPoolReadahead) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.optimistic_hits = true;
  options.batch_capacity = 64;
  options.batch_stripes = 8;
  options.io_dispatcher = true;
  options.io_workers = 4;
  options.io_queue_depth = 32;
  options.flusher = true;
  options.flusher_every_ops = 32;
  options.flusher_batch = 4;
  options.readahead = {.enabled = true, .window = 4, .min_run = 3};

  ShardedBufferPool pool(
      32, /*num_shards=*/4, &disk,
      [](size_t, size_t) {
        return std::make_unique<LruKPolicy>(LruKOptions{.k = 2});
      },
      options);
  std::vector<PageId> pages = AllocateDb(pool, 96);
  ChurnTotals totals;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ChurnThread(pool, pages, /*seed=*/700 + t, /*ops=*/3000, totals);
    });
  }
  for (auto& t : threads) t.join();

  pool.Quiesce();
  EXPECT_EQ(totals.failures.load(), 0u);
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, totals.attempts.load());
  // Both machineries ran: per-shard latch-free hits AND pool-level
  // prefetch (the composition the shard-option plumbing promises).
  EXPECT_GT(stats.optimistic_hits, 0u);
  EXPECT_GT(stats.prefetch_issued, 0u);

  size_t free_frames = 0;
  for (size_t i = 0; i < pool.shard_count(); ++i) {
    BufferPool& shard = pool.shard(i);
    EXPECT_EQ(shard.PendingIoCount(), 0u);
    free_frames += shard.FreeFrameCount();
  }
  EXPECT_EQ(pool.ResidentCount() + free_frames, pool.capacity());
  EXPECT_TRUE(pool.FlushAll().ok());
}

}  // namespace
}  // namespace lruk
