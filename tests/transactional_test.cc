// Tests for the multi-process transactional workload and LRU-K's
// per-process Time-Out Correlation.

#include <map>
#include <set>
#include <vector>

#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "workload/transactional.h"

namespace lruk {
namespace {

TEST(TransactionalTest, ProcessesRoundRobin) {
  TransactionalOptions options;
  options.num_processes = 4;
  TransactionalWorkload gen(options);
  for (int i = 0; i < 400; ++i) {
    PageRef ref = gen.Next();
    EXPECT_EQ(ref.process, static_cast<uint32_t>(i % 4));
  }
}

TEST(TransactionalTest, PagesWithinRange) {
  TransactionalOptions options;
  options.num_pages = 500;
  TransactionalWorkload gen(options);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(gen.Next().page, 500u);
  }
}

TEST(TransactionalTest, IntraTransactionRereadsAreReadThenWrite) {
  // With reref probability 1 every page appears exactly twice per
  // transaction: once as a read, later as a write, same process.
  TransactionalOptions options;
  options.num_processes = 1;
  options.intra_transaction_reref = 1.0;
  options.retry_probability = 0.0;
  options.batch_continuation = 0.0;
  TransactionalWorkload gen(options);
  std::map<PageId, int> reads;
  std::map<PageId, int> writes;
  for (int i = 0; i < 2000; ++i) {
    PageRef ref = gen.Next();
    if (ref.type == AccessType::kRead) {
      ++reads[ref.page];
    } else {
      ++writes[ref.page];
      // The write must follow at least one read of the page.
      EXPECT_GE(reads[ref.page], writes[ref.page]) << "page " << ref.page;
    }
  }
  // Aggregate balance (the final transaction may be cut mid-script).
  int total_reads = 0;
  int total_writes = 0;
  for (auto& [p, c] : reads) total_reads += c;
  for (auto& [p, c] : writes) total_writes += c;
  EXPECT_NEAR(total_reads, total_writes, 64);
}

TEST(TransactionalTest, RetryReexecutesSamePages) {
  // With retry probability 1 the same transaction repeats forever.
  TransactionalOptions options;
  options.num_processes = 1;
  options.retry_probability = 1.0;
  options.intra_transaction_reref = 0.0;
  TransactionalWorkload gen(options);
  // The stream must be the first transaction's script repeated forever;
  // find its period by direct check.
  std::vector<PageId> window;
  for (int i = 0; i < 256; ++i) window.push_back(gen.Next().page);
  bool periodic = false;
  for (size_t l = 1; l <= 64 && !periodic; ++l) {
    bool ok = true;
    for (size_t i = l; i < window.size(); ++i) {
      if (window[i] != window[i - l]) {
        ok = false;
        break;
      }
    }
    periodic = ok;
  }
  EXPECT_TRUE(periodic) << "retries must replay the identical script";
}

TEST(TransactionalTest, BatchContinuationChainsTransactions) {
  TransactionalOptions options;
  options.num_processes = 1;
  options.batch_continuation = 1.0;
  options.retry_probability = 0.0;
  options.intra_transaction_reref = 0.0;
  options.mean_pages_per_transaction = 1.0;  // One page per transaction.
  TransactionalWorkload gen(options);
  // Every transaction has one page and starts where the last ended: the
  // whole stream is one page forever.
  PageId first = gen.Next().page;
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gen.Next().page, first);
}

TEST(TransactionalTest, ResetReplaysStream) {
  TransactionalWorkload gen(TransactionalOptions{});
  std::vector<PageRef> first;
  for (int i = 0; i < 3000; ++i) first.push_back(gen.Next());
  gen.Reset();
  for (int i = 0; i < 3000; ++i) {
    PageRef ref = gen.Next();
    ASSERT_EQ(ref.page, first[i].page) << i;
    ASSERT_EQ(ref.process, first[i].process) << i;
    ASSERT_EQ(static_cast<int>(ref.type), static_cast<int>(first[i].type));
  }
}

TEST(TransactionalTest, SkewConcentratesOnHotPages) {
  TransactionalOptions options;
  options.num_pages = 1000;
  options.batch_continuation = 0.0;
  TransactionalWorkload gen(options);
  int hot = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.Next().page < 200) ++hot;  // Hottest 20%.
  }
  EXPECT_GT(hot / static_cast<double>(kDraws), 0.7);  // ~0.8 minus noise.
}

// --- Per-process Time-Out Correlation at the policy level ---

TEST(PerProcessCrpTest, SameProcessWithinCrpIsCorrelated) {
  LruKOptions options;
  options.k = 2;
  options.correlated_reference_period = 10;
  options.per_process_correlation = true;
  LruKPolicy policy(options);
  policy.SetReferencingProcess(3);
  policy.Admit(1, AccessType::kRead);         // t=1 by process 3.
  policy.SetReferencingProcess(3);
  policy.RecordAccess(1, AccessType::kRead);  // t=2, same process: correlated.
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->hist[1], 0u);
  EXPECT_EQ(block->last, 2u);
}

TEST(PerProcessCrpTest, DifferentProcessWithinCrpIsIndependent) {
  LruKOptions options;
  options.k = 2;
  options.correlated_reference_period = 10;
  options.per_process_correlation = true;
  LruKPolicy policy(options);
  policy.SetReferencingProcess(3);
  policy.Admit(1, AccessType::kRead);  // t=1 by process 3.
  policy.SetReferencingProcess(4);
  policy.RecordAccess(1, AccessType::kRead);  // t=2 by process 4: type 4!
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->hist[0], 2u);
  EXPECT_EQ(block->hist[1], 1u);  // Counted as a second reference.
  EXPECT_EQ(policy.BackwardKDistance(1), std::optional<Timestamp>(1));
}

TEST(PerProcessCrpTest, GlobalModeIgnoresProcesses) {
  LruKOptions options;
  options.k = 2;
  options.correlated_reference_period = 10;
  options.per_process_correlation = false;  // The paper's simplification.
  LruKPolicy policy(options);
  policy.SetReferencingProcess(3);
  policy.Admit(1, AccessType::kRead);
  policy.SetReferencingProcess(4);
  policy.RecordAccess(1, AccessType::kRead);  // Different process, but...
  const HistoryBlock* block = policy.DebugBlock(1);
  EXPECT_EQ(block->hist[1], 0u);  // ...still treated as correlated.
}

TEST(PerProcessCrpTest, ProcessSwitchRestartsCorrelationChain) {
  // A-B-A interleave within the CRP: both the B touch and the second A
  // touch count as new uncorrelated references (see the header's
  // approximation note).
  LruKOptions options;
  options.k = 3;
  options.correlated_reference_period = 10;
  options.per_process_correlation = true;
  LruKPolicy policy(options);
  policy.SetReferencingProcess(0);
  policy.Admit(1, AccessType::kRead);  // t=1, A.
  policy.SetReferencingProcess(1);
  policy.RecordAccess(1, AccessType::kRead);  // t=2, B: uncorrelated.
  policy.SetReferencingProcess(0);
  policy.RecordAccess(1, AccessType::kRead);  // t=3, A again: uncorrelated.
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->hist[0], 3u);
  EXPECT_EQ(block->hist[1], 2u);
  EXPECT_EQ(block->hist[2], 1u);
}

}  // namespace
}  // namespace lruk
