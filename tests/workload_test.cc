// Tests for the reference-string generators: determinism under Reset, the
// distributional properties the paper's experiments rely on, and class
// labeling.

#include <memory>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "gtest/gtest.h"
#include "workload/correlated.h"
#include "workload/moving_hotspot.h"
#include "workload/sequential.h"
#include "workload/synthetic_oltp.h"
#include "workload/two_pool.h"
#include "workload/uniform_workload.h"
#include "workload/zipfian_workload.h"

namespace lruk {
namespace {

// Every generator must replay the identical stream after Reset().
void ExpectResetDeterminism(ReferenceStringGenerator& gen, int n = 2000) {
  gen.Reset();  // Start from the stream head regardless of prior draws.
  std::vector<PageId> first;
  first.reserve(n);
  for (int i = 0; i < n; ++i) first.push_back(gen.Next().page);
  gen.Reset();
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(gen.Next().page, first[i]) << "diverged at position " << i;
  }
}

TEST(TwoPoolTest, AlternatesPools) {
  TwoPoolOptions options;
  options.n1 = 10;
  options.n2 = 100;
  TwoPoolWorkload gen(options);
  for (int i = 0; i < 500; ++i) {
    PageRef ref = gen.Next();
    if (i % 2 == 0) {
      EXPECT_LT(ref.page, 10u) << "even positions reference pool 1";
    } else {
      EXPECT_GE(ref.page, 10u);
      EXPECT_LT(ref.page, 110u);
    }
  }
}

TEST(TwoPoolTest, ProbabilitiesMatchPaperFormula) {
  TwoPoolOptions options;
  options.n1 = 100;
  options.n2 = 10000;
  TwoPoolWorkload gen(options);
  auto probs = gen.Probabilities();
  ASSERT_TRUE(probs.has_value());
  ASSERT_EQ(probs->size(), 10100u);
  EXPECT_DOUBLE_EQ((*probs)[0], 1.0 / 200.0);       // beta_1 = 1/(2*N1).
  EXPECT_DOUBLE_EQ((*probs)[100], 1.0 / 20000.0);   // beta_2 = 1/(2*N2).
  double sum = std::accumulate(probs->begin(), probs->end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TwoPoolTest, ClassesSplitAtPoolBoundary) {
  TwoPoolOptions options;
  options.n1 = 10;
  options.n2 = 20;
  TwoPoolWorkload gen(options);
  EXPECT_EQ(gen.NumClasses(), 2u);
  EXPECT_EQ(gen.ClassOf(0), 0u);
  EXPECT_EQ(gen.ClassOf(9), 0u);
  EXPECT_EQ(gen.ClassOf(10), 1u);
  EXPECT_EQ(gen.ClassOf(29), 1u);
}

TEST(TwoPoolTest, ResetReplaysStream) {
  TwoPoolWorkload gen(TwoPoolOptions{});
  ExpectResetDeterminism(gen);
}

TEST(TwoPoolTest, WriteFractionProducesWrites) {
  TwoPoolOptions options;
  options.write_fraction = 0.5;
  TwoPoolWorkload gen(options);
  int writes = 0;
  for (int i = 0; i < 2000; ++i) {
    if (gen.Next().type == AccessType::kWrite) ++writes;
  }
  EXPECT_NEAR(writes / 2000.0, 0.5, 0.05);
}

TEST(ZipfianTest, EightyTwentyReferenceSkew) {
  ZipfianOptions options;
  options.num_pages = 1000;
  options.alpha = 0.8;
  options.beta = 0.2;
  ZipfianWorkload gen(options);
  int hot = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.Next().page < 200) ++hot;  // Hottest 20% of pages.
  }
  EXPECT_NEAR(hot / static_cast<double>(kDraws), 0.8, 0.01);
}

TEST(ZipfianTest, ProbabilitiesSumToOneAndDecrease) {
  ZipfianOptions options;
  options.num_pages = 500;
  ZipfianWorkload gen(options);
  auto probs = gen.Probabilities();
  ASSERT_TRUE(probs.has_value());
  double sum = std::accumulate(probs->begin(), probs->end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (size_t i = 1; i < probs->size(); ++i) {
    EXPECT_LE((*probs)[i], (*probs)[i - 1]);
  }
}

TEST(ZipfianTest, ShuffledMappingKeepsProbabilityMass) {
  ZipfianOptions options;
  options.num_pages = 100;
  options.shuffle_pages = true;
  ZipfianWorkload gen(options);
  auto probs = gen.Probabilities();
  ASSERT_TRUE(probs.has_value());
  double sum = std::accumulate(probs->begin(), probs->end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Shuffled: page 0 is almost surely not the hottest.
  ExpectResetDeterminism(gen);
}

TEST(UniformTest, CoversAllPagesEvenly) {
  UniformOptions options;
  options.num_pages = 50;
  UniformWorkload gen(options);
  std::vector<int> counts(50, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.Next().page];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
  ExpectResetDeterminism(gen);
}

TEST(SequentialScanTest, CyclesInOrder) {
  SequentialScanOptions options;
  options.num_pages = 5;
  options.start = 3;
  SequentialScanWorkload gen(options);
  std::vector<PageId> expected = {3, 4, 0, 1, 2, 3, 4};
  for (PageId want : expected) EXPECT_EQ(gen.Next().page, want);
  gen.Reset();
  EXPECT_EQ(gen.Next().page, 3u);
}

TEST(MixedScanTest, HotSetDominatesWithoutScan) {
  MixedScanOptions options;
  options.hot_pages = 100;
  options.total_pages = 10000;
  options.hot_probability = 0.95;
  MixedScanWorkload gen(options);
  int hot = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.Next().page < 100) ++hot;
  }
  // 95% targeted at the hot set plus ~1% of uniform spill.
  EXPECT_GT(hot / static_cast<double>(kDraws), 0.9);
}

TEST(MixedScanTest, ActiveScanEmitsSequentialRun) {
  MixedScanOptions options;
  options.hot_pages = 10;
  options.total_pages = 1000;
  options.scan_fraction = 1.0;  // Every reference from the scanner.
  options.scan_initially_active = true;
  MixedScanWorkload gen(options);
  for (PageId expected = 0; expected < 50; ++expected) {
    EXPECT_EQ(gen.Next().page, expected);
  }
}

TEST(MixedScanTest, TogglingScanChangesMix) {
  MixedScanOptions options;
  options.hot_pages = 10;
  options.total_pages = 100000;
  options.scan_fraction = 0.9;
  MixedScanWorkload gen(options);
  EXPECT_FALSE(gen.scan_active());
  gen.SetScanActive(true);
  int sequential_region = 0;
  for (int i = 0; i < 1000; ++i) {
    // Scan cursor starts at 0 and the hot set is tiny, so scan references
    // stay below 1000 for this draw count while random cold references
    // almost never land there.
    PageId p = gen.Next().page;
    if (p >= 10 && p < 1000) ++sequential_region;
  }
  EXPECT_GT(sequential_region, 700);
  gen.Reset();
  EXPECT_FALSE(gen.scan_active());  // Reset restores the initial phase.
}

TEST(MovingHotspotTest, WindowMovesEachEpoch) {
  MovingHotspotOptions options;
  options.num_pages = 1000;
  options.hot_pages = 10;
  options.epoch_length = 100;
  options.shift = 50;
  options.hot_probability = 1.0;
  MovingHotspotWorkload gen(options);
  for (int i = 0; i < 100; ++i) {
    PageId p = gen.Next().page;
    EXPECT_LT(p, 10u) << "epoch 0 window is [0,10)";
  }
  for (int i = 0; i < 100; ++i) {
    PageId p = gen.Next().page;
    EXPECT_GE(p, 50u) << "epoch 1 window is [50,60)";
    EXPECT_LT(p, 60u);
  }
  EXPECT_EQ(gen.hot_window_start(), 50u);
  EXPECT_EQ(gen.ClassOf(55), 0u);
  EXPECT_EQ(gen.ClassOf(5), 1u);
}

TEST(MovingHotspotTest, WindowWrapsAround) {
  MovingHotspotOptions options;
  options.num_pages = 100;
  options.hot_pages = 10;
  options.epoch_length = 10;
  options.shift = 95;
  options.hot_probability = 1.0;
  MovingHotspotWorkload gen(options);
  for (int i = 0; i < 10; ++i) gen.Next();
  gen.Next();  // Enter epoch 1: window starts at 95, wraps to 5.
  EXPECT_EQ(gen.hot_window_start(), 95u);
  EXPECT_EQ(gen.ClassOf(97), 0u);
  EXPECT_EQ(gen.ClassOf(3), 0u);  // 95 + 8 wraps.
  EXPECT_EQ(gen.ClassOf(50), 1u);
  ExpectResetDeterminism(gen);
}

TEST(SyntheticOltpTest, MatchesReportedQuantiles) {
  SyntheticOltpOptions options;
  options.num_pages = 20000;
  options.sequential_share = 0.0;  // Isolate the skewed probes.
  options.navigational_share = 0.0;
  options.hot_drift_period = 0;    // Freeze the mapping for fixed bands.
  SyntheticOltpWorkload gen(options);
  constexpr int kDraws = 200000;
  int band_a = 0;
  int band_ab = 0;
  uint64_t a_end = 600;    // 3% of 20000.
  uint64_t b_end = 13000;  // 65% of 20000.
  for (int i = 0; i < kDraws; ++i) {
    PageId p = gen.Next().page;
    if (p < a_end) ++band_a;
    if (p < b_end) ++band_ab;
  }
  // The paper: 40% of references -> 3% of pages; ~90% -> 65% (the
  // recursive-skew CDF gives 0.894 at the 65% boundary).
  EXPECT_NEAR(band_a / static_cast<double>(kDraws), 0.40, 0.01);
  EXPECT_NEAR(band_ab / static_cast<double>(kDraws), 0.894, 0.01);
}

TEST(SyntheticOltpTest, EmitsSequentialRuns) {
  SyntheticOltpOptions options;
  options.num_pages = 10000;
  options.sequential_share = 1.0;  // Scan runs only.
  options.navigational_share = 0.0;
  SyntheticOltpWorkload gen(options);
  int consecutive = 0;
  PageId prev = gen.Next().page;
  for (int i = 0; i < 2000; ++i) {
    PageId p = gen.Next().page;
    if (p == (prev + 1) % 10000) ++consecutive;
    prev = p;
  }
  EXPECT_GT(consecutive, 1800);  // Mostly +1 steps inside runs.
}

TEST(SyntheticOltpTest, ClassesFollowBands) {
  SyntheticOltpOptions options;
  options.num_pages = 10000;
  SyntheticOltpWorkload gen(options);
  EXPECT_EQ(gen.NumClasses(), 3u);
  EXPECT_EQ(gen.ClassOf(0), 0u);
  EXPECT_EQ(gen.ClassOf(299), 0u);    // 3% = 300 pages.
  EXPECT_EQ(gen.ClassOf(300), 1u);
  EXPECT_EQ(gen.ClassOf(6499), 1u);   // 65% boundary at page 6500.
  EXPECT_EQ(gen.ClassOf(6500), 2u);
  EXPECT_EQ(gen.ClassOf(9999), 2u);
  ExpectResetDeterminism(gen);
}

TEST(CorrelatedTest, BurstsRepeatTheSamePage) {
  auto base = std::make_unique<UniformWorkload>(UniformOptions{
      .num_pages = 100000, .seed = 1, .write_fraction = 0.0});
  CorrelatedOptions options;
  options.burst_probability = 1.0;  // Every reference bursts.
  options.max_burst_length = 3;
  CorrelatedWorkload gen(std::move(base), options);
  // With p = 1 the stream is a concatenation of runs of length 2 or 3 of
  // the same page (distinct base pages collide with probability ~1e-5).
  std::vector<PageId> stream;
  for (int i = 0; i < 999; ++i) stream.push_back(gen.Next().page);
  size_t i = 0;
  while (i + 1 < stream.size()) {
    size_t run = 1;
    while (i + run < stream.size() && stream[i + run] == stream[i]) ++run;
    if (i + run >= stream.size()) break;  // Final run may be truncated.
    EXPECT_GE(run, 2u) << "run starting at " << i;
    EXPECT_LE(run, 3u) << "run starting at " << i;
    i += run;
  }
}

TEST(CorrelatedTest, ZeroProbabilityIsTransparent) {
  UniformOptions uopt{.num_pages = 1000, .seed = 7, .write_fraction = 0.0};
  auto base = std::make_unique<UniformWorkload>(uopt);
  UniformWorkload reference(uopt);
  CorrelatedOptions options;
  options.burst_probability = 0.0;
  CorrelatedWorkload gen(std::move(base), options);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(gen.Next().page, reference.Next().page);
  }
}

TEST(CorrelatedTest, ResetRestartsBursts) {
  auto base = std::make_unique<UniformWorkload>(
      UniformOptions{.num_pages = 500, .seed = 3, .write_fraction = 0.0});
  CorrelatedOptions options;
  options.burst_probability = 0.5;
  CorrelatedWorkload gen(std::move(base), options);
  ExpectResetDeterminism(gen);
}

TEST(MaterializeTest, TraceAndRefsAgree) {
  TwoPoolWorkload gen(TwoPoolOptions{});
  auto trace = MaterializeTrace(gen, 100);
  gen.Reset();
  auto refs = MaterializeRefs(gen, 100);
  ASSERT_EQ(trace.size(), 100u);
  ASSERT_EQ(refs.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(trace[i], refs[i].page);
}

}  // namespace
}  // namespace lruk
