#include "analysis/lru_model.h"

#include <vector>

#include "core/policy_factory.h"
#include "gtest/gtest.h"
#include "sim/simulator.h"
#include "workload/two_pool.h"
#include "workload/zipfian_workload.h"

namespace lruk {
namespace {

TEST(A0HitRatioTest, SumsLargestProbabilities) {
  std::vector<double> beta = {0.1, 0.4, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(A0HitRatio(beta, 1), 0.4);
  EXPECT_DOUBLE_EQ(A0HitRatio(beta, 2), 0.7);
  EXPECT_DOUBLE_EQ(A0HitRatio(beta, 4), 1.0);
  EXPECT_DOUBLE_EQ(A0HitRatio(beta, 9), 1.0);
}

TEST(LruModelTest, UniformProbabilitiesGiveBOverN) {
  // Under uniform IRM, LRU holds an arbitrary B of N pages: hit = B/N.
  std::vector<double> beta(100, 0.01);
  EXPECT_NEAR(DanTowsleyLruHitRatio(beta, 25), 0.25, 1e-9);
  EXPECT_NEAR(CheLruHitRatio(beta, 25), 0.25, 1e-6);
}

TEST(LruModelTest, FullBufferIsPerfect) {
  std::vector<double> beta = {0.5, 0.3, 0.2};
  EXPECT_DOUBLE_EQ(DanTowsleyLruHitRatio(beta, 3), 1.0);
  EXPECT_DOUBLE_EQ(CheLruHitRatio(beta, 3), 1.0);
}

TEST(LruModelTest, MonotoneInBuffers) {
  std::vector<double> beta;
  for (int i = 1; i <= 50; ++i) beta.push_back(1.0 / i);
  double total = 0.0;
  for (double b : beta) total += b;
  for (double& b : beta) b /= total;

  double prev_dt = 0.0;
  double prev_che = 0.0;
  for (size_t buffers = 1; buffers <= 50; ++buffers) {
    double dt = DanTowsleyLruHitRatio(beta, buffers);
    double che = CheLruHitRatio(beta, buffers);
    EXPECT_GE(dt, prev_dt - 1e-12) << buffers;
    EXPECT_GE(che, prev_che - 1e-9) << buffers;
    prev_dt = dt;
    prev_che = che;
  }
}

TEST(LruModelTest, BoundedByA0) {
  // No online policy beats A0 under IRM; the models must respect that.
  ZipfianOptions options;
  options.num_pages = 200;
  ZipfianWorkload gen(options);
  auto beta = *gen.Probabilities();
  for (size_t buffers : {10u, 50u, 120u}) {
    double a0 = A0HitRatio(beta, buffers);
    EXPECT_LE(DanTowsleyLruHitRatio(beta, buffers), a0 + 1e-9);
    EXPECT_LE(CheLruHitRatio(beta, buffers), a0 + 1e-9);
  }
}

TEST(CheLruKTest, K1ReducesToCheLru) {
  ZipfianOptions options;
  options.num_pages = 200;
  ZipfianWorkload gen(options);
  auto beta = *gen.Probabilities();
  for (size_t buffers : {10u, 60u, 150u}) {
    EXPECT_NEAR(CheLruKHitRatio(beta, 1, buffers),
                CheLruHitRatio(beta, buffers), 1e-9)
        << buffers;
  }
}

TEST(CheLruKTest, MatchesSimulatedLruK) {
  TwoPoolOptions topt;
  topt.n1 = 100;
  topt.n2 = 10000;
  topt.seed = 77;
  TwoPoolWorkload gen(topt);
  auto beta = *gen.Probabilities();
  SimOptions sim;
  sim.warmup_refs = 10000;
  sim.measure_refs = 60000;
  sim.track_classes = false;
  for (int k : {2, 3}) {
    for (size_t buffers : {60u, 100u, 200u}) {
      sim.capacity = buffers;
      auto simulated = SimulatePolicy(PolicyConfig::LruK(k), gen, sim);
      ASSERT_TRUE(simulated.ok());
      EXPECT_NEAR(CheLruKHitRatio(beta, k, buffers),
                  simulated->HitRatio(), 0.01)
          << "K=" << k << " B=" << buffers;
    }
  }
}

TEST(CheLruKTest, LargerKApproachesA0) {
  // Deeper history sharpens the resident-set selection toward A0 (the
  // paper's "LRU-K approaches A0 with increasing value of K").
  TwoPoolOptions topt;
  topt.n1 = 50;
  topt.n2 = 5000;
  TwoPoolWorkload gen(topt);
  auto beta = *gen.Probabilities();
  size_t buffers = 55;
  double a0 = A0HitRatio(beta, buffers);
  double prev_gap = 1.0;
  for (int k : {1, 2, 3, 5, 8}) {
    double gap = a0 - CheLruKHitRatio(beta, k, buffers);
    EXPECT_GE(gap, -1e-9) << k;
    EXPECT_LE(gap, prev_gap + 1e-9) << k;
    prev_gap = gap;
  }
}

TEST(LruModelTest, MatchesSimulatedLruOnZipf) {
  ZipfianOptions options;
  options.num_pages = 300;
  options.seed = 404;
  ZipfianWorkload gen(options);
  auto beta = *gen.Probabilities();
  SimOptions sim;
  sim.capacity = 60;
  sim.warmup_refs = 5000;
  sim.measure_refs = 60000;
  sim.track_classes = false;
  auto simulated = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
  ASSERT_TRUE(simulated.ok());
  EXPECT_NEAR(DanTowsleyLruHitRatio(beta, 60), simulated->HitRatio(), 0.01);
  EXPECT_NEAR(CheLruHitRatio(beta, 60), simulated->HitRatio(), 0.01);
}

TEST(LruModelTest, TwoModelsAgreeWithEachOther) {
  ZipfianOptions options;
  options.num_pages = 500;
  ZipfianWorkload gen(options);
  auto beta = *gen.Probabilities();
  for (size_t buffers : {20u, 100u, 300u}) {
    EXPECT_NEAR(DanTowsleyLruHitRatio(beta, buffers),
                CheLruHitRatio(beta, buffers), 0.01)
        << buffers;
  }
}

}  // namespace
}  // namespace lruk
