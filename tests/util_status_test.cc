#include "util/status.h"

#include <string>

#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::NotFound("page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "page 7");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: page 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "ALREADY_EXISTS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::IoError("disk on fire"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.status().message(), "disk on fire");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailsThenPropagates(bool fail) {
  auto inner = [&]() -> Status {
    if (fail) return Status::OutOfRange("boom");
    return Status::Ok();
  };
  LRUK_RETURN_IF_ERROR(inner());
  return Status::AlreadyExists("reached the end");
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace lruk
