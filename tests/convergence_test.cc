// Tests for RunningStats, expected-cost sampling, and the convergence
// harness.

#include <cmath>

#include "core/policy_factory.h"
#include "gtest/gtest.h"
#include "sim/convergence.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "workload/moving_hotspot.h"
#include "workload/two_pool.h"

namespace lruk {
namespace {

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.Count(), 8u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_GT(stats.ConfidenceHalfWidth95(), 0.0);
}

TEST(RunningStatsTest, DegenerateCases) {
  RunningStats stats;
  EXPECT_EQ(stats.Count(), 0u);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.ConfidenceHalfWidth95(), 0.0);
}

TEST(RunningStatsTest, ConstantStreamHasZeroVariance) {
  RunningStats stats;
  for (int i = 0; i < 100; ++i) stats.Add(7.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 7.0);
  EXPECT_NEAR(stats.Variance(), 0.0, 1e-12);
}

TEST(ExpectedCostSamplingTest, OrderedByPolicyQuality) {
  // Theorem 3.8 in simulation: mean expected cost (formula 3.8) satisfies
  // A0 <= LRU-2 <= LRU-1 on the two-pool workload.
  TwoPoolOptions topt;
  topt.n1 = 50;
  topt.n2 = 5000;
  TwoPoolWorkload gen(topt);
  SimOptions sim;
  sim.capacity = 60;
  sim.warmup_refs = 5000;
  sim.measure_refs = 20000;
  sim.cost_sample_interval = 100;
  sim.track_classes = false;

  auto a0 = SimulatePolicy(PolicyConfig::A0(), gen, sim);
  auto lru2 = SimulatePolicy(PolicyConfig::LruK(2), gen, sim);
  auto lru1 = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
  ASSERT_TRUE(a0.ok() && lru2.ok() && lru1.ok());
  ASSERT_GE(a0->mean_expected_cost, 0.0);
  EXPECT_LE(a0->mean_expected_cost, lru2->mean_expected_cost + 0.01);
  EXPECT_LT(lru2->mean_expected_cost, lru1->mean_expected_cost - 0.02);
  // Expected cost predicts the measured miss ratio.
  EXPECT_NEAR(lru1->mean_expected_cost, 1.0 - lru1->HitRatio(), 0.05);
}

TEST(ExpectedCostSamplingTest, DisabledByDefault) {
  TwoPoolOptions topt;
  TwoPoolWorkload gen(topt);
  SimOptions sim;
  sim.capacity = 50;
  sim.warmup_refs = 100;
  sim.measure_refs = 500;
  auto result = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->mean_expected_cost, 0.0);  // Sentinel: not sampled.
}

ConvergenceOptions FastConvergence() {
  ConvergenceOptions copt;
  copt.capacity = 60;
  copt.pre_shift_refs = 20000;
  copt.post_shift_refs = 20000;
  copt.window = 500;
  copt.recovery_fraction = 0.9;
  return copt;
}

MovingHotspotOptions ShiftingWorkload() {
  MovingHotspotOptions mopt;
  mopt.num_pages = 5000;
  mopt.hot_pages = 50;
  mopt.hot_probability = 0.9;
  mopt.epoch_length = 20000;  // Must equal pre_shift_refs.
  mopt.shift = 2500;          // Disjoint new hot region.
  mopt.seed = 99;
  return mopt;
}

TEST(ConvergenceTest, SteadyStateMatchesSimulator) {
  MovingHotspotWorkload gen(ShiftingWorkload());
  auto result =
      MeasureConvergence(PolicyConfig::LruK(2), gen, FastConvergence());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Steady state should be near the hot-probability ceiling (~0.9).
  EXPECT_GT(result->steady_state, 0.8);
  EXPECT_LT(result->steady_state, 0.95);
  EXPECT_EQ(result->post_shift_windows.size(), 20000u / 500u);
}

TEST(ConvergenceTest, PoliciesRecoverButLfuDoesNot) {
  MovingHotspotWorkload gen(ShiftingWorkload());
  auto lru2 =
      MeasureConvergence(PolicyConfig::LruK(2), gen, FastConvergence());
  ASSERT_TRUE(lru2.ok());
  EXPECT_TRUE(lru2->recovery_refs.has_value());
  EXPECT_LE(*lru2->recovery_refs, 10000u);

  MovingHotspotWorkload gen2(ShiftingWorkload());
  auto lfu = MeasureConvergence(PolicyConfig::Lfu(), gen2, FastConvergence());
  ASSERT_TRUE(lfu.ok());
  // LFU's cumulative counts freeze the old hot set: no recovery in the
  // observation horizon.
  EXPECT_FALSE(lfu->recovery_refs.has_value());
}

TEST(ConvergenceTest, DeeperHistoryRecoversSlowerInTheFirstWindow) {
  double first_window[3];
  int i = 0;
  for (int k : {1, 2, 4}) {
    MovingHotspotWorkload gen(ShiftingWorkload());
    auto result =
        MeasureConvergence(PolicyConfig::LruK(k), gen, FastConvergence());
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->post_shift_windows.empty());
    first_window[i++] = result->post_shift_windows[0];
  }
  EXPECT_GT(first_window[0], first_window[1]);  // LRU > LRU-2 right after.
  EXPECT_GT(first_window[1], first_window[2]);  // LRU-2 > LRU-4.
}

}  // namespace
}  // namespace lruk
