// The async I/O dispatcher (src/io/) and its buffer-pool integration,
// deterministic half (the threaded half lives in
// async_io_concurrency_test.cc).
//
// Coverage layers:
//  * IoDispatcher units — inline mode runs synchronously in issue order;
//    worker mode executes Run() to completion, bounds the queue, rejects
//    TryPost when full, and drains on destruction.
//  * ReadaheadDetector units — stride-run detection, window emission,
//    re-triggering, run breaks, backward scans, Reset.
//  * Differential battery — with the dispatcher in inline mode (and in
//    worker mode driven single-threaded), both pools produce BYTE-IDENTICAL
//    behaviour to the direct path over a 20k-op mixed workload: same pool
//    counters, same victim sequence, same IoStats, same residency, same
//    disk images. Batch recording on and off.
//  * Replay determinism — the full async stack (inline dispatcher +
//    readahead + flusher) over a seeded fault schedule reproduces the
//    identical fault trace, stats and disk images run-to-run (the PR 4
//    replay story survives the dispatcher).
//  * Prefetch + readahead integration — a sequential scan faults only
//    until the detector locks on; prefetched pages land unpinned, clean,
//    and count prefetch_used on first demand touch; failed or rejected
//    prefetches are dropped without surfacing errors or leaking frames.
//  * Flusher invariants — after a pass with no intervening writes the next
//    flusher_batch victims are clean (their evictions do no write-back);
//    the peek (Evict + LIFO Restore) does not perturb the subsequent
//    victim order; a failed write-back leaves the page dirty, resident,
//    and restored in the policy.
//  * Quiesce/fence — DeletePage waits out an in-flight prefetch of the
//    same page (no resurrection after the delete); FlushAll quiesces the
//    whole dispatcher; a worker-mode prefetch blocked in the disk is
//    fenced deterministically via a gate disk manager.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "differential_harness.h"
#include "gtest/gtest.h"
#include "io/io_dispatcher.h"
#include "io/readahead.h"
#include "storage/fault_injecting_disk_manager.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

// ---------------------------------------------------------------------------
// Helpers. The shared 20k-op differential scaffolding (stats comparators,
// AllocateDb, the victim-recording wrapper, DriveMixedWorkload and the
// scenario driver) lives in differential_harness.h.

using difftest::AllocateDb;
using difftest::DiffScenarioConfig;
using difftest::DiffScenarioResult;
using difftest::ExpectScenarioEq;
using difftest::RecordingPolicy;
using difftest::RunDiffScenario;
using difftest::kDiffCapacity;
using difftest::kDiffDbPages;

// Forwarding disk manager that blocks reads of one chosen page until
// released — pins a worker-mode prefetch mid-flight so fences can be
// exercised deterministically.
class GateDiskManager final : public DiskManager {
 public:
  explicit GateDiskManager(DiskManager* inner) : inner_(inner) {}

  // Future reads of `p` block until Open().
  void Close(PageId p) {
    std::lock_guard<std::mutex> guard(mutex_);
    gated_ = p;
    open_ = false;
  }
  void Open() {
    std::lock_guard<std::mutex> guard(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  // Blocks until a reader has reached the gate.
  void AwaitReader() {
    std::unique_lock<std::mutex> guard(mutex_);
    cv_.wait(guard, [&] { return waiting_ > 0; });
  }

  Status ReadPage(PageId p, char* out) override {
    {
      std::unique_lock<std::mutex> guard(mutex_);
      if (!open_ && p == gated_) {
        ++waiting_;
        cv_.notify_all();  // Wake AwaitReader.
        cv_.wait(guard, [&] { return open_; });
        --waiting_;
      }
    }
    return inner_->ReadPage(p, out);
  }
  Status WritePage(PageId p, const char* data) override {
    return inner_->WritePage(p, data);
  }
  Result<PageId> AllocatePage() override { return inner_->AllocatePage(); }
  Status DeallocatePage(PageId p) override {
    return inner_->DeallocatePage(p);
  }
  uint64_t NumAllocatedPages() const override {
    return inner_->NumAllocatedPages();
  }
  IoStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  DiskManager* inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  PageId gated_ = kInvalidPageId;
  bool open_ = true;
  int waiting_ = 0;
};

// ---------------------------------------------------------------------------
// IoDispatcher units.

TEST(AsyncIoDispatcherTest, InlineModeRunsSynchronouslyInOrder) {
  IoDispatcher io;  // workers = 0.
  EXPECT_TRUE(io.inline_mode());
  std::vector<int> order;
  io.Run([&] { order.push_back(1); });
  EXPECT_TRUE(io.TryPost([&] { order.push_back(2); }));
  io.Run([&] { order.push_back(3); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));

  IoDispatcherStats stats = io.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.posted, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.executed_inline, 3u);
  EXPECT_EQ(stats.executed_async, 0u);
}

TEST(AsyncIoDispatcherTest, WorkerModeRunReturnsAfterExecution) {
  IoDispatcher io(IoDispatcherOptions{/*workers=*/2, /*queue_depth=*/4});
  EXPECT_FALSE(io.inline_mode());
  std::atomic<int> ran{0};
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id executor;
  io.Run([&] {
    executor = std::this_thread::get_id();
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);  // Run() waited for completion.
  EXPECT_NE(executor, caller);
  EXPECT_EQ(io.stats().executed_async, 1u);
}

TEST(AsyncIoDispatcherTest, WorkerModeBoundsQueueAndRejectsTryPost) {
  IoDispatcher io(IoDispatcherOptions{/*workers=*/1, /*queue_depth=*/2});
  // Park the single worker on a gate, then fill the queue.
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  std::atomic<bool> parked{false};
  ASSERT_TRUE(io.TryPost([&] {
    parked.store(true);
    std::unique_lock<std::mutex> guard(m);
    cv.wait(guard, [&] { return open; });
  }));
  // Wait until the worker has dequeued the parked item, so the two posts
  // below are what fills the depth-2 queue.
  while (!parked.load()) std::this_thread::yield();
  std::atomic<int> done{0};
  ASSERT_TRUE(io.TryPost([&] { done.fetch_add(1); }));
  ASSERT_TRUE(io.TryPost([&] { done.fetch_add(1); }));
  // Queue now holds 2 items (depth 2) with the worker parked: full.
  EXPECT_FALSE(io.TryPost([&] { done.fetch_add(1); }));
  EXPECT_EQ(io.stats().rejected, 1u);
  {
    std::lock_guard<std::mutex> guard(m);
    open = true;
  }
  cv.notify_all();
  io.Drain();
  EXPECT_EQ(done.load(), 2);  // The rejected closure never ran.
}

TEST(AsyncIoDispatcherTest, DestructorDrainsAcceptedWork) {
  std::atomic<int> ran{0};
  {
    IoDispatcher io(IoDispatcherOptions{/*workers=*/2, /*queue_depth=*/16});
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(io.TryPost([&] { ran.fetch_add(1); }));
    }
  }  // Destructor joins only after every accepted item executed.
  EXPECT_EQ(ran.load(), 10);
}

// ---------------------------------------------------------------------------
// ReadaheadDetector units.

TEST(AsyncIoReadaheadTest, TriggersAfterMinRunAndEmitsWindow) {
  ReadaheadDetector det({.enabled = true, .window = 4, .min_run = 3});
  std::vector<PageId> out;
  det.Observe(10, &out);
  EXPECT_TRUE(out.empty());
  det.Observe(11, &out);  // Run of 2 (10, 11).
  EXPECT_TRUE(out.empty());
  det.Observe(12, &out);  // Run of 3: trigger.
  EXPECT_EQ(out, (std::vector<PageId>{13, 14, 15, 16}));
  det.Observe(13, &out);  // Re-trigger keeps the horizon ahead.
  EXPECT_EQ(out, (std::vector<PageId>{14, 15, 16, 17}));
}

TEST(AsyncIoReadaheadTest, NonUnitStrideIsDetected) {
  ReadaheadDetector det(
      {.enabled = true, .window = 3, .min_run = 3, .max_stride = 4});
  std::vector<PageId> out;
  det.Observe(0, &out);
  det.Observe(2, &out);
  det.Observe(4, &out);
  EXPECT_EQ(out, (std::vector<PageId>{6, 8, 10}));
}

TEST(AsyncIoReadaheadTest, BackwardScanEmitsDescendingAndStopsAtZero) {
  ReadaheadDetector det({.enabled = true, .window = 4, .min_run = 3});
  std::vector<PageId> out;
  det.Observe(5, &out);
  det.Observe(4, &out);
  det.Observe(3, &out);
  EXPECT_EQ(out, (std::vector<PageId>{2, 1, 0}));  // -1 underflows: dropped.
}

TEST(AsyncIoReadaheadTest, StrideBreakPausesUntilRunReestablishes) {
  ReadaheadDetector det({.enabled = true, .window = 2, .min_run = 3});
  std::vector<PageId> out;
  det.Observe(10, &out);
  det.Observe(11, &out);
  det.Observe(12, &out);
  ASSERT_FALSE(out.empty());
  det.Observe(500, &out);  // Interleaved random reference breaks the run.
  EXPECT_TRUE(out.empty());
  det.Observe(501, &out);  // New pair...
  EXPECT_TRUE(out.empty());
  det.Observe(502, &out);  // ...run of 3 again: trigger.
  EXPECT_EQ(out, (std::vector<PageId>{503, 504}));
}

TEST(AsyncIoReadaheadTest, LargeJumpsAndRepeatsAreNotSequential) {
  ReadaheadDetector det(
      {.enabled = true, .window = 2, .min_run = 2, .max_stride = 4});
  std::vector<PageId> out;
  det.Observe(0, &out);
  det.Observe(100, &out);  // |stride| 100 > max_stride.
  det.Observe(200, &out);  // Same large stride: still not sequential.
  EXPECT_TRUE(out.empty());
  det.Observe(200, &out);  // Stride 0 (a re-reference): never a run.
  det.Observe(200, &out);
  EXPECT_TRUE(out.empty());
}

TEST(AsyncIoReadaheadTest, ResetForgetsTheRun) {
  ReadaheadDetector det({.enabled = true, .window = 2, .min_run = 3});
  std::vector<PageId> out;
  det.Observe(10, &out);
  det.Observe(11, &out);
  det.Reset();
  det.Observe(12, &out);
  det.Observe(13, &out);
  EXPECT_TRUE(out.empty());  // Only a run of 2 since Reset.
  det.Observe(14, &out);
  EXPECT_FALSE(out.empty());
}

// ---------------------------------------------------------------------------
// Differential battery: dispatcher (inline, and worker-mode driven
// single-threaded) vs the direct path — byte-identical.

TEST(AsyncIoDifferentialTest, InlineDispatcherIsByteIdenticalPlainPool) {
  for (size_t batch : {size_t{0}, size_t{64}}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    DiffScenarioResult direct = RunDiffScenario({.batch_capacity = batch});
    DiffScenarioResult inline_mode =
        RunDiffScenario({.batch_capacity = batch, .dispatcher = true});
    ExpectScenarioEq(direct, inline_mode);
    EXPECT_EQ(inline_mode.stats.coalesced_reads, 0u);  // Single-threaded.
  }
}

TEST(AsyncIoDifferentialTest, InlineDispatcherIsByteIdenticalShardedPool) {
  for (size_t batch : {size_t{0}, size_t{64}}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    DiffScenarioResult direct =
        RunDiffScenario({.sharded = true, .batch_capacity = batch});
    DiffScenarioResult inline_mode = RunDiffScenario(
        {.sharded = true, .batch_capacity = batch, .dispatcher = true});
    ExpectScenarioEq(direct, inline_mode);
  }
}

TEST(AsyncIoDifferentialTest, SingleThreadedWorkerModeMatchesDirectPath) {
  // A foreground Run() blocks until its read completes, so a
  // single-threaded driver is sequential even with workers — the whole
  // differential holds, not just the counters.
  DiffScenarioResult direct = RunDiffScenario({});
  DiffScenarioResult workers =
      RunDiffScenario({.dispatcher = true, .io_workers = 2});
  ExpectScenarioEq(direct, workers);
  DiffScenarioResult sharded_direct = RunDiffScenario({.sharded = true});
  DiffScenarioResult sharded_workers = RunDiffScenario(
      {.sharded = true, .dispatcher = true, .io_workers = 2});
  ExpectScenarioEq(sharded_direct, sharded_workers);
}

// ---------------------------------------------------------------------------
// Replay determinism: the full async stack, inline, over a fault schedule.

TEST(AsyncIoDifferentialTest, FaultScheduleReplayIsDeterministicInline) {
  auto run = [](std::string* trace) {
    SimDiskManager inner;
    FaultInjectingDiskManager disk(&inner, /*seed=*/42);
    disk.AddRule(FaultRule::FailWithProbability(FaultOp::kRead, 0.02));
    disk.AddRule(FaultRule::FailWithProbability(FaultOp::kWrite, 0.02));

    BufferPoolOptions options;
    options.io_dispatcher = true;  // Inline: io_workers = 0.
    options.flusher = true;
    options.flusher_every_ops = 32;
    options.flusher_batch = 4;
    options.readahead = {.enabled = true, .window = 4, .min_run = 3};
    BufferPool pool(kDiffCapacity, &disk,
                    std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                    options);

    std::vector<PageId> pages = AllocateDb(pool, kDiffDbPages);
    RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
    RandomEngine rng(/*seed=*/7);
    for (int i = 0; i < 8000; ++i) {
      PageId p;
      if (i % 10 < 3) {
        // Interleave scan stretches so the readahead path fires.
        p = pages[static_cast<size_t>(i / 10 * 3 + i % 10) % pages.size()];
      } else {
        p = pages[dist.Sample(rng) - 1];
      }
      bool write = rng.NextBernoulli(0.3);
      auto page =
          pool.FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
      if (!page.ok()) continue;  // Injected read failure: tolerated.
      if (write) std::memcpy((*page)->Data(), &i, sizeof(i));
      (void)pool.UnpinPage(p, write);
    }
    disk.Heal();
    EXPECT_TRUE(pool.FlushAll().ok());

    BufferPoolStats stats = pool.stats();
    EXPECT_GT(stats.prefetch_issued, 0u);
    EXPECT_GT(stats.prefetch_used, 0u);
    EXPECT_GT(stats.background_cleans, 0u);
    for (const FaultEvent& e : disk.Trace()) {
      *trace += FaultEventToString(e);
      *trace += "\n";
    }
    char buf[kPageSize];
    for (PageId p : pages) {
      EXPECT_TRUE(inner.ReadPage(p, buf).ok());
      trace->append(buf, kPageSize);
    }
    std::string counters;
    counters += std::to_string(stats.hits) + "/" +
                std::to_string(stats.misses) + "/" +
                std::to_string(stats.evictions) + "/" +
                std::to_string(stats.prefetch_issued) + "/" +
                std::to_string(stats.prefetch_used) + "/" +
                std::to_string(stats.prefetch_dropped) + "/" +
                std::to_string(stats.background_cleans);
    *trace += counters;
  };
  std::string first;
  std::string second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Prefetch + readahead integration (inline mode: fully deterministic).

BufferPoolOptions InlineDispatcherOptions() {
  BufferPoolOptions options;
  options.io_dispatcher = true;
  return options;
}

TEST(AsyncIoPrefetchTest, RequestPrefetchAdmitsUnpinnedCleanPage) {
  SimDiskManager disk;
  BufferPool pool(4, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  InlineDispatcherOptions());
  // A raw allocation is on disk but not resident — prefetchable.
  auto raw = disk.AllocatePage();
  ASSERT_TRUE(raw.ok());
  std::vector<PageId> pages{*raw};

  IoStats before = disk.stats();
  pool.RequestPrefetch(pages[0]);
  EXPECT_TRUE(pool.IsResident(pages[0]));
  EXPECT_EQ(disk.stats().reads, before.reads + 1);

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_used, 0u);
  EXPECT_EQ(stats.misses, 0u);  // Prefetches are not demand misses.

  // Unpinned (evictable) and clean: a DeletePage succeeds immediately and
  // triggers no write-back.
  // First, the demand touch counts prefetch_used exactly once.
  auto page = pool.FetchPage(pages[0]);
  ASSERT_TRUE(page.ok());
  stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.prefetch_used, 1u);
  ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
  auto again = pool.FetchPage(pages[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().prefetch_used, 1u);  // Not double counted.
  ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
}

TEST(AsyncIoPrefetchTest, PrefetchOfResidentPageIsANoOp) {
  SimDiskManager disk;
  BufferPool pool(4, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  InlineDispatcherOptions());
  std::vector<PageId> pages = AllocateDb(pool, 1);
  pool.RequestPrefetch(pages[0]);  // Resident: no tracker entry, no read.
  EXPECT_EQ(pool.stats().prefetch_issued, 0u);
  EXPECT_EQ(disk.stats().reads, 0u);
}

TEST(AsyncIoPrefetchTest, FailedPrefetchIsDroppedWithoutLeakingFrames) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/3);
  BufferPool pool(4, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  InlineDispatcherOptions());
  std::vector<PageId> pages = AllocateDb(pool, 2);
  ASSERT_TRUE(pool.FlushAll().ok());
  // Make both non-resident by deleting... instead, use a raw allocation
  // that was never admitted.
  auto raw = disk.AllocatePage();
  ASSERT_TRUE(raw.ok());

  disk.AddRule(FaultRule::FailPage(FaultOp::kRead, *raw));
  size_t free_before = pool.FreeFrameCount();
  pool.RequestPrefetch(*raw);
  EXPECT_FALSE(pool.IsResident(*raw));
  EXPECT_EQ(pool.FreeFrameCount(), free_before);
  EXPECT_EQ(pool.PendingIoCount(), 0u);

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.prefetch_issued, 1u);
  EXPECT_EQ(stats.prefetch_dropped, 1u);
  EXPECT_EQ(stats.read_failures, 0u);  // Not a demand-read failure.

  // The page is perfectly fetchable once the fault clears.
  disk.Heal();
  auto page = pool.FetchPage(*raw);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool.UnpinPage(*raw, false).ok());
}

TEST(AsyncIoPrefetchTest, SequentialScanFaultsOnlyUntilDetectorLocksOn) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.readahead = {.enabled = true, .window = 4, .min_run = 3};

  // 80 allocated, first 64 scanned: the readahead window never runs past
  // the end of the allocated range. Warm the disk through one pool, then
  // scan cold through a second. Capacity >= scan length keeps the test
  // eviction-free, so the counter arithmetic below is exact (under CRP=0,
  // once-referenced prefetched pages are LRU-K's preferred victims — the
  // eviction interplay is bench territory, not unit-test arithmetic).
  std::vector<PageId> pages;
  {
    BufferPool warm(16, &disk,
                    std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
    pages = AllocateDb(warm, 80);
    EXPECT_TRUE(warm.FlushAll().ok());
  }
  BufferPool scan_pool(80, &disk,
                       std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                       options);
  for (size_t i = 0; i < 64; ++i) {
    auto page = scan_pool.FetchPage(pages[i]);
    ASSERT_TRUE(page.ok()) << i;
    ASSERT_TRUE(scan_pool.UnpinPage(pages[i], false).ok());
  }
  BufferPoolStats stats = scan_pool.stats();
  // Pages 0..2 establish the run (3 demand misses); every later page was
  // prefetched before its demand reference arrived.
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 61u);
  EXPECT_EQ(stats.prefetch_used, 61u);
  EXPECT_EQ(stats.prefetch_issued, 65u);  // Window of 4 ahead at the end.
  EXPECT_EQ(stats.prefetch_dropped, 0u);
}

TEST(AsyncIoPrefetchTest, ShardedScanUsesPoolLevelDetector) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.readahead = {.enabled = true, .window = 4, .min_run = 3};
  // Warm the disk through a plain pool, then scan through a sharded one.
  {
    BufferPool warm(16, &disk,
                    std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
    std::vector<PageId> pages = AllocateDb(warm, 80);
    ASSERT_TRUE(warm.FlushAll().ok());
  }
  ShardedBufferPool pool(
      128, /*num_shards=*/4, &disk,  // Eviction-free: exact counters.
      [](size_t, size_t) {
        return std::make_unique<LruKPolicy>(LruKOptions{.k = 2});
      },
      options);
  for (PageId p = 0; p < 64; ++p) {
    auto page = pool.FetchPage(p);
    ASSERT_TRUE(page.ok()) << p;
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  // Hash routing scatters the pages, but the pool-level detector sees the
  // sequential stream: everything past the lock-on is prefetched.
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 61u);
  EXPECT_EQ(stats.prefetch_used, 61u);
  EXPECT_GT(stats.prefetch_issued, 0u);
}

// ---------------------------------------------------------------------------
// Flusher invariants.

TEST(AsyncIoFlusherTest, NextVictimsAreCleanAfterAPass) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.flusher_batch = 4;
  auto policy = std::make_unique<RecordingPolicy>(
      std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
  RecordingPolicy* recorder = policy.get();
  BufferPool pool(8, &disk, std::move(policy), options);

  // Fill the pool with dirty pages.
  std::vector<PageId> pages = AllocateDb(pool, 8);
  ASSERT_EQ(pool.ResidentCount(), 8u);

  pool.RunFlusherPass();
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.background_cleans, 4u);  // flusher_batch dirty victims.
  EXPECT_EQ(stats.evictions, 0u);          // The peek is not an eviction.
  EXPECT_TRUE(recorder->evictions().empty());  // Evict x4 fully Restored.

  // With no intervening writes, the next flusher_batch evictions hit
  // clean pages: no write-back on the miss path.
  std::vector<PageId> extra;
  for (int i = 0; i < 4; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    extra.push_back((*page)->id());
    ASSERT_TRUE(pool.UnpinPage((*page)->id(), false).ok());
  }
  stats = pool.stats();
  EXPECT_EQ(stats.evictions, 4u);
  EXPECT_EQ(stats.dirty_writebacks, 0u);  // The flusher already cleaned them.
  EXPECT_EQ(stats.background_cleans, 4u);
}

TEST(AsyncIoFlusherTest, PeekDoesNotPerturbTheVictimOrder) {
  auto run = [](bool with_flusher_pass) {
    SimDiskManager disk;
    BufferPoolOptions options;
    options.io_dispatcher = true;
    options.flusher_batch = 6;
    auto policy = std::make_unique<RecordingPolicy>(
        std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
    RecordingPolicy* recorder = policy.get();
    BufferPool pool(12, &disk, std::move(policy), options);
    std::vector<PageId> pages = AllocateDb(pool, 48);
    RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
    RandomEngine rng(/*seed=*/99);
    for (int i = 0; i < 2000; ++i) {
      PageId p = pages[dist.Sample(rng) - 1];
      bool write = rng.NextBernoulli(0.4);
      auto page =
          pool.FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
      EXPECT_TRUE(page.ok());
      EXPECT_TRUE(pool.UnpinPage(p, write).ok());
      if (with_flusher_pass && i % 100 == 50) pool.RunFlusherPass();
    }
    return std::make_pair(recorder->evictions(), pool.stats());
  };
  auto [baseline_victims, baseline_stats] = run(false);
  auto [flushed_victims, flushed_stats] = run(true);
  // Same victim sequence: the Evict + LIFO Restore peek is exact.
  EXPECT_EQ(baseline_victims, flushed_victims);
  EXPECT_EQ(baseline_stats.hits, flushed_stats.hits);
  EXPECT_EQ(baseline_stats.misses, flushed_stats.misses);
  EXPECT_EQ(baseline_stats.evictions, flushed_stats.evictions);
  // The flusher moved write-backs off the eviction path.
  EXPECT_GT(flushed_stats.background_cleans, 0u);
  EXPECT_LT(flushed_stats.dirty_writebacks, baseline_stats.dirty_writebacks);
}

TEST(AsyncIoFlusherTest, FailedWriteBackLeavesPageDirtyAndRestored) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/17);
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.flusher_batch = 3;
  auto policy = std::make_unique<RecordingPolicy>(
      std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
  RecordingPolicy* recorder = policy.get();
  BufferPool pool(4, &disk, std::move(policy), options);

  std::vector<PageId> pages = AllocateDb(pool, 4);
  // The flusher peeks victims in eviction order; fail the first one's
  // write-back.
  disk.AddRule(FaultRule::FailPage(FaultOp::kWrite, pages[0]));

  pool.RunFlusherPass();
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.background_cleans, 2u);  // The other two peeked pages.
  EXPECT_EQ(stats.write_failures, 1u);
  EXPECT_TRUE(recorder->evictions().empty());  // All three restored.
  EXPECT_TRUE(pool.IsResident(pages[0]));      // Still resident...

  // ...and still dirty: once the fault heals, its eviction writes it back.
  disk.Heal();
  auto page = pool.NewPage();  // Evicts pages[0] (the restored victim).
  ASSERT_TRUE(page.ok());
  stats = pool.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.dirty_writebacks, 1u);  // The deferred write happened.
  EXPECT_FALSE(pool.IsResident(pages[0]));
  ASSERT_TRUE(pool.UnpinPage((*page)->id(), false).ok());
}

TEST(AsyncIoFlusherTest, PeriodicTriggerFiresEveryNOps) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.flusher = true;
  options.flusher_every_ops = 8;
  options.flusher_batch = 2;
  BufferPool pool(4, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);
  std::vector<PageId> pages = AllocateDb(pool, 4);
  for (int i = 0; i < 32; ++i) {
    PageId p = pages[i % pages.size()];
    auto page = pool.FetchPage(p, AccessType::kWrite);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage(p, true).ok());
  }
  // 32 fetches / 8 = 4 passes, each cleaning up to 2 dirty pages (inline
  // mode: deterministic).
  EXPECT_GT(pool.stats().background_cleans, 0u);
}

// ---------------------------------------------------------------------------
// Quiesce / fence.

TEST(AsyncIoQuiesceTest, DeletePageFencesAnInFlightPrefetch) {
  SimDiskManager inner;
  GateDiskManager disk(&inner);
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 1;
  BufferPool pool(4, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);

  auto target = disk.AllocatePage();
  ASSERT_TRUE(target.ok());
  PageId p = *target;

  disk.Close(p);
  pool.RequestPrefetch(p);
  disk.AwaitReader();  // The worker is mid-read of p.
  EXPECT_EQ(pool.PendingIoCount(), 1u);

  std::thread deleter([&] {
    // Fences: waits for the prefetch to settle, then deletes.
    EXPECT_TRUE(pool.DeletePage(p).ok());
  });
  disk.Open();
  deleter.join();

  // The prefetch could NOT resurrect the deleted page.
  EXPECT_FALSE(pool.IsResident(p));
  EXPECT_EQ(pool.PendingIoCount(), 0u);
  EXPECT_EQ(pool.FreeFrameCount(), 4u);  // No leaked frame.
  EXPECT_EQ(inner.NumAllocatedPages(), 0u);
  char buf[kPageSize];
  EXPECT_FALSE(inner.ReadPage(p, buf).ok());  // Gone on disk too.
}

TEST(AsyncIoQuiesceTest, FlushAllQuiescesInFlightBackgroundWork) {
  SimDiskManager inner;
  GateDiskManager disk(&inner);
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 2;
  BufferPool pool(8, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);
  std::vector<PageId> pages = AllocateDb(pool, 2);
  ASSERT_TRUE(pool.FlushAll().ok());

  auto raw = disk.AllocatePage();
  ASSERT_TRUE(raw.ok());
  disk.Close(*raw);
  pool.RequestPrefetch(*raw);
  disk.AwaitReader();

  std::thread opener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    disk.Open();
  });
  ASSERT_TRUE(pool.FlushAll().ok());  // Blocks until the prefetch settles.
  opener.join();
  EXPECT_EQ(pool.PendingIoCount(), 0u);
  EXPECT_TRUE(pool.IsResident(*raw));  // The prefetch completed first.
}

TEST(AsyncIoQuiesceTest, QuiesceDrainsQueuedPrefetches) {
  SimDiskManager inner;
  GateDiskManager disk(&inner);
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 1;
  options.io_queue_depth = 8;
  BufferPool pool(8, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);
  std::vector<PageId> raws;
  for (int i = 0; i < 4; ++i) {
    auto raw = disk.AllocatePage();
    ASSERT_TRUE(raw.ok());
    raws.push_back(*raw);
  }
  disk.Close(raws[0]);  // Park the worker on the first prefetch...
  for (PageId p : raws) pool.RequestPrefetch(p);
  disk.AwaitReader();
  EXPECT_EQ(pool.PendingIoCount(), 4u);  // ...three more queued behind it.

  std::thread opener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    disk.Open();
  });
  pool.Quiesce();
  opener.join();
  EXPECT_EQ(pool.PendingIoCount(), 0u);
  for (PageId p : raws) EXPECT_TRUE(pool.IsResident(p));
  EXPECT_EQ(pool.stats().prefetch_issued, 4u);
}

TEST(AsyncIoQuiesceTest, QueueFullPrefetchIsDroppedNotLost) {
  SimDiskManager inner;
  GateDiskManager disk(&inner);
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 1;
  options.io_queue_depth = 1;
  BufferPool pool(8, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);
  std::vector<PageId> raws;
  for (int i = 0; i < 3; ++i) {
    auto raw = disk.AllocatePage();
    ASSERT_TRUE(raw.ok());
    raws.push_back(*raw);
  }
  disk.Close(raws[0]);
  pool.RequestPrefetch(raws[0]);  // Parks the worker.
  disk.AwaitReader();
  pool.RequestPrefetch(raws[1]);  // Fills the depth-1 queue.
  pool.RequestPrefetch(raws[2]);  // Rejected: dropped cleanly.

  disk.Open();
  pool.Quiesce();
  EXPECT_TRUE(pool.IsResident(raws[0]));
  EXPECT_TRUE(pool.IsResident(raws[1]));
  EXPECT_FALSE(pool.IsResident(raws[2]));
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.prefetch_issued, 3u);
  EXPECT_EQ(stats.prefetch_dropped, 1u);
  EXPECT_EQ(pool.PendingIoCount(), 0u);

  // The dropped page is still perfectly fetchable on demand.
  auto page = pool.FetchPage(raws[2]);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(pool.UnpinPage(raws[2], false).ok());
}

}  // namespace
}  // namespace lruk
