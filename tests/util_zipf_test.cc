#include "util/zipf.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace lruk {
namespace {

TEST(RecursiveSkewTest, CdfEndpoints) {
  RecursiveSkewDistribution dist(0.8, 0.2, 1000);
  EXPECT_DOUBLE_EQ(dist.Cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(1000), 1.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(2000), 1.0);
}

TEST(RecursiveSkewTest, EightyTwentyProperty) {
  // alpha = 0.8 of references must hit beta = 0.2 of the pages, and
  // recursively within the hot fraction.
  RecursiveSkewDistribution dist(0.8, 0.2, 1000);
  EXPECT_NEAR(dist.Cdf(200), 0.8, 1e-9);
  EXPECT_NEAR(dist.Cdf(40), 0.8 * 0.8, 1e-9);  // 20% of 20% gets 80% of 80%.
}

TEST(RecursiveSkewTest, PmfSumsToOne) {
  RecursiveSkewDistribution dist(0.8, 0.2, 500);
  auto probs = dist.ProbabilityVector();
  ASSERT_EQ(probs.size(), 500u);
  double sum = std::accumulate(probs.begin(), probs.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RecursiveSkewTest, PmfIsDecreasingInRank) {
  RecursiveSkewDistribution dist(0.8, 0.2, 100);
  auto probs = dist.ProbabilityVector();
  for (size_t i = 1; i < probs.size(); ++i) {
    EXPECT_LE(probs[i], probs[i - 1]) << "rank " << i + 1;
  }
}

TEST(RecursiveSkewTest, SampleMatchesCdf) {
  RecursiveSkewDistribution dist(0.8, 0.2, 1000);
  RandomEngine rng(42);
  constexpr int kDraws = 200000;
  int hot = 0;  // Ranks <= 200.
  for (int i = 0; i < kDraws; ++i) {
    uint64_t rank = dist.Sample(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 1000u);
    if (rank <= 200) ++hot;
  }
  EXPECT_NEAR(hot / static_cast<double>(kDraws), 0.8, 0.01);
}

TEST(RecursiveSkewTest, SingletonDistribution) {
  RecursiveSkewDistribution dist(0.8, 0.2, 1);
  RandomEngine rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(dist.Sample(rng), 1u);
  EXPECT_NEAR(dist.Pmf(1), 1.0, 1e-12);
}

TEST(ClassicZipfTest, ExponentZeroIsUniform) {
  ClassicZipfDistribution dist(0.0, 100);
  for (uint64_t i = 1; i <= 100; ++i) {
    EXPECT_NEAR(dist.Pmf(i), 0.01, 1e-12);
  }
}

TEST(ClassicZipfTest, PmfMatchesPowerLaw) {
  ClassicZipfDistribution dist(1.0, 1000);
  // P(1)/P(2) == 2 for s = 1.
  EXPECT_NEAR(dist.Pmf(1) / dist.Pmf(2), 2.0, 1e-9);
  EXPECT_NEAR(dist.Pmf(1) / dist.Pmf(10), 10.0, 1e-9);
}

TEST(ClassicZipfTest, PmfSumsToOne) {
  ClassicZipfDistribution dist(1.2, 333);
  auto probs = dist.ProbabilityVector();
  double sum = std::accumulate(probs.begin(), probs.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ClassicZipfTest, SamplingMatchesPmf) {
  ClassicZipfDistribution dist(1.0, 50);
  RandomEngine rng(9);
  constexpr int kDraws = 100000;
  std::vector<int> counts(50, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[dist.Sample(rng) - 1];
  for (uint64_t rank : {1u, 2u, 5u, 20u}) {
    double expected = dist.Pmf(rank);
    EXPECT_NEAR(counts[rank - 1] / static_cast<double>(kDraws), expected,
                expected * 0.15 + 0.002)
        << "rank " << rank;
  }
}

TEST(DiscreteSamplerTest, NormalizesWeights) {
  DiscreteSampler sampler({2.0, 6.0, 2.0});
  EXPECT_NEAR(sampler.Probability(0), 0.2, 1e-12);
  EXPECT_NEAR(sampler.Probability(1), 0.6, 1e-12);
  EXPECT_NEAR(sampler.Probability(2), 0.2, 1e-12);
}

TEST(DiscreteSamplerTest, SamplingMatchesDistribution) {
  DiscreteSampler sampler({1.0, 2.0, 3.0, 4.0});
  RandomEngine rng(13);
  constexpr int kDraws = 100000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  for (size_t i = 0; i < 4; ++i) {
    double expected = (i + 1) / 10.0;
    EXPECT_NEAR(counts[i] / static_cast<double>(kDraws), expected, 0.01);
  }
}

TEST(DiscreteSamplerTest, HandlesDegenerateDistribution) {
  DiscreteSampler sampler({0.0, 0.0, 5.0});
  RandomEngine rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 2u);
}

TEST(DiscreteSamplerTest, SingleOutcome) {
  DiscreteSampler sampler({3.0});
  RandomEngine rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(DiscreteSamplerTest, ManyTinyWeightsStillExact) {
  std::vector<double> weights(1000, 1e-12);
  weights[500] = 1e-9;  // 1000x heavier than the rest.
  DiscreteSampler sampler(weights);
  RandomEngine rng(21);
  int heavy = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (sampler.Sample(rng) == 500) ++heavy;
  }
  // Heavy item mass: 1e-9 / (1e-9 + 999e-12) ~ 0.5003.
  EXPECT_NEAR(heavy / static_cast<double>(kDraws), 0.5, 0.02);
}

}  // namespace
}  // namespace lruk
