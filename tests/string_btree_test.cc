#include "btree/string_btree.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "core/lru.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

namespace lruk {
namespace {

class StringBTreeTest : public ::testing::Test {
 protected:
  StringBTreeTest() : pool_(128, &disk_, std::make_unique<LruPolicy>()) {}

  SimDiskManager disk_;
  BufferPool pool_;
};

TEST_F(StringBTreeTest, EmptyTree) {
  StringBTree tree(&pool_);
  EXPECT_TRUE(tree.Empty());
  EXPECT_FALSE(tree.Get("missing").ok());
  EXPECT_FALSE(tree.Delete("missing").ok());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(StringBTreeTest, InsertGetUpdateDelete) {
  StringBTree tree(&pool_);
  ASSERT_TRUE(tree.Insert("cust-00042", 42).ok());
  EXPECT_EQ(*tree.Get("cust-00042"), 42u);
  EXPECT_EQ(tree.Insert("cust-00042", 1).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(tree.Update("cust-00042", 99).ok());
  EXPECT_EQ(*tree.Get("cust-00042"), 99u);
  ASSERT_TRUE(tree.Delete("cust-00042").ok());
  EXPECT_FALSE(tree.Get("cust-00042").ok());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(StringBTreeTest, RejectsBadKeys) {
  StringBTree tree(&pool_);
  EXPECT_FALSE(tree.Insert("", 1).ok());
  std::string huge(StringBTree::kMaxKeySize + 1, 'k');
  EXPECT_FALSE(tree.Insert(huge, 1).ok());
  std::string max(StringBTree::kMaxKeySize, 'k');
  EXPECT_TRUE(tree.Insert(max, 1).ok());
}

TEST_F(StringBTreeTest, SplitsUnderManyInserts) {
  StringBTree tree(&pool_);
  // Keys with mixed lengths; enough volume to force multi-level splits.
  for (int i = 0; i < 3000; ++i) {
    std::string key = "key-";
    key.append(std::to_string(i * 7919 % 100000));
    key.append(static_cast<size_t>(i % 40), 'x');
    ASSERT_TRUE(tree.Insert(key, static_cast<uint64_t>(i)).ok()) << i;
  }
  EXPECT_EQ(tree.Size(), 3000u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Every key still reachable.
  for (int i = 0; i < 3000; ++i) {
    std::string key = "key-";
    key.append(std::to_string(i * 7919 % 100000));
    key.append(static_cast<size_t>(i % 40), 'x');
    auto got = tree.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, static_cast<uint64_t>(i));
  }
}

TEST_F(StringBTreeTest, OrderIsBytewiseLexicographic) {
  StringBTree tree(&pool_);
  std::vector<std::string> keys = {"b", "aa", "a", "ab", "ba", "B", "0"};
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(tree.Insert(keys[i], i).ok());
  }
  std::vector<std::string> visited;
  ASSERT_TRUE(tree.Scan("\x01", "\x7f", [&](std::string_view k, uint64_t) {
                    visited.emplace_back(k);
                    return true;
                  }).ok());
  std::vector<std::string> expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(visited, expected);
}

TEST_F(StringBTreeTest, RangeScanWindow) {
  StringBTree tree(&pool_);
  for (int i = 0; i < 500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(tree.Insert(key, static_cast<uint64_t>(i)).ok());
  }
  int count = 0;
  uint64_t first = 0;
  ASSERT_TRUE(tree.Scan("k00100", "k00109",
                        [&](std::string_view, uint64_t v) {
                          if (count == 0) first = v;
                          ++count;
                          return true;
                        })
                  .ok());
  EXPECT_EQ(count, 10);
  EXPECT_EQ(first, 100u);
}

TEST_F(StringBTreeTest, LazyDeletesKeepStructureValid) {
  StringBTree tree(&pool_);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert("d" + std::to_string(i), i).ok());
  }
  for (int i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(tree.Delete("d" + std::to_string(i)).ok());
  }
  EXPECT_EQ(tree.Size(), 1000u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(tree.Get("d" + std::to_string(i)).ok(), i % 2 == 1) << i;
  }
  // Deleted keys can be reinserted (space reclaimed by compaction).
  for (int i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(tree.Insert("d" + std::to_string(i), i + 5000).ok());
  }
  EXPECT_EQ(tree.Size(), 2000u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(StringBTreeTest, RandomizedAgainstStdMap) {
  StringBTree tree(&pool_);
  std::map<std::string, uint64_t> model;
  RandomEngine rng(27182);

  auto random_key = [&rng] {
    size_t len = 1 + rng.NextBounded(24);
    std::string key(len, '?');
    for (auto& c : key) c = static_cast<char>('a' + rng.NextBounded(26));
    return key;
  };

  for (int step = 0; step < 6000; ++step) {
    std::string key = random_key();
    double action = rng.NextDouble();
    if (action < 0.55) {
      uint64_t value = rng.NextUint64();
      Status status = tree.Insert(key, value);
      if (model.contains(key)) {
        ASSERT_EQ(status.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(status.ok()) << status.ToString();
        model[key] = value;
      }
    } else if (action < 0.75 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      ASSERT_TRUE(tree.Delete(it->first).ok());
      model.erase(it);
    } else if (action < 0.9) {
      auto got = tree.Get(key);
      ASSERT_EQ(got.ok(), model.contains(key)) << key;
      if (got.ok()) {
        ASSERT_EQ(*got, model[key]);
      }
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      uint64_t value = rng.NextUint64();
      ASSERT_TRUE(tree.Update(it->first, value).ok());
      it->second = value;
    }
    ASSERT_EQ(tree.Size(), model.size());
    if (step % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());

  // Final full comparison via scan.
  auto it = model.begin();
  uint64_t seen = 0;
  ASSERT_TRUE(tree.Scan(std::string(1, '\x01'), std::string(32, 'z'),
                        [&](std::string_view k, uint64_t v) {
                          EXPECT_NE(it, model.end());
                          if (it != model.end()) {
                            EXPECT_EQ(k, it->first);
                            EXPECT_EQ(v, it->second);
                            ++it;
                          }
                          ++seen;
                          return true;
                        })
                  .ok());
  EXPECT_EQ(seen, model.size());
}

TEST_F(StringBTreeTest, ReattachRecoversSize) {
  PageId root;
  {
    StringBTree tree(&pool_);
    for (int i = 0; i < 800; ++i) {
      ASSERT_TRUE(tree.Insert("r" + std::to_string(i), i).ok());
    }
    ASSERT_TRUE(tree.Delete("r13").ok());
    root = tree.RootPageId();
  }
  StringBTree reattached(&pool_, root);
  EXPECT_EQ(reattached.Size(), 799u);
  EXPECT_EQ(*reattached.Get("r500"), 500u);
  EXPECT_FALSE(reattached.Get("r13").ok());
  ASSERT_TRUE(reattached.CheckInvariants().ok());
}

TEST_F(StringBTreeTest, WorksThroughTinyPoolWithLruK) {
  SimDiskManager disk;
  BufferPool tiny(8, &disk, std::make_unique<LruKPolicy>(LruKOptions{}));
  StringBTree tree(&tiny);
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(tree.Insert("p" + std::to_string(i), i).ok()) << i;
  }
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(tree.Get("p" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GT(disk.stats().reads, 0u);
}

}  // namespace
}  // namespace lruk
