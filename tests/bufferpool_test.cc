#include "bufferpool/buffer_pool.h"

#include <cstring>
#include <memory>

#include "bufferpool/page_guard.h"
#include "core/lru.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"

namespace lruk {
namespace {

std::unique_ptr<ReplacementPolicy> MakeLru() {
  return std::make_unique<LruPolicy>();
}

TEST(BufferPoolTest, NewPageIsPinnedZeroedAndDirty) {
  SimDiskManager disk;
  BufferPool pool(4, &disk, MakeLru());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->pin_count(), 1);
  EXPECT_TRUE((*page)->is_dirty());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ((*page)->Data()[i], 0);
  ASSERT_TRUE(pool.UnpinPage((*page)->id(), false).ok());
}

TEST(BufferPoolTest, DataRoundTripsThroughEviction) {
  SimDiskManager disk;
  BufferPool pool(2, &disk, MakeLru());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId p = (*page)->id();
  std::strcpy((*page)->Data(), "hello buffer pool");
  ASSERT_TRUE(pool.UnpinPage(p, true).ok());

  // Evict p by filling the pool with other pages.
  for (int i = 0; i < 2; ++i) {
    auto filler = pool.NewPage();
    ASSERT_TRUE(filler.ok());
    ASSERT_TRUE(pool.UnpinPage((*filler)->id(), false).ok());
  }
  EXPECT_FALSE(pool.IsResident(p));

  // Fetch back from disk: content must have been written back.
  auto again = pool.FetchPage(p);
  ASSERT_TRUE(again.ok());
  EXPECT_STREQ((*again)->Data(), "hello buffer pool");
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  EXPECT_GE(pool.stats().dirty_writebacks, 1u);
}

TEST(BufferPoolTest, FetchCountsHitsAndMisses) {
  SimDiskManager disk;
  BufferPool pool(4, &disk, MakeLru());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId p = (*page)->id();
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());

  ASSERT_TRUE(pool.FetchPage(p).ok());  // Hit.
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST(BufferPoolTest, RePinningAPinnedPageCountsAsAHit) {
  // The documented BufferPoolStats semantics: every FetchPage of a
  // resident page is a hit, even when the page is already pinned — hits
  // count fetches that avoided disk I/O, not pin-count 0->1 transitions.
  // NewPage counts neither a hit nor a miss. ShardedBufferPool asserts
  // the same semantics in its own suite.
  SimDiskManager disk;
  BufferPool pool(4, &disk, MakeLru());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId p = (*page)->id();
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 0u);

  auto repin = pool.FetchPage(p);  // Still pinned by NewPage.
  ASSERT_TRUE(repin.ok());
  EXPECT_EQ((*repin)->pin_count(), 2);
  auto repin2 = pool.FetchPage(p);
  ASSERT_TRUE(repin2.ok());
  EXPECT_EQ((*repin2)->pin_count(), 3);

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 1.0);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(pool.UnpinPage(p, false).ok());
}

TEST(BufferPoolTest, AllFramesPinnedExhaustsPool) {
  SimDiskManager disk;
  BufferPool pool(2, &disk, MakeLru());
  auto a = pool.NewPage();
  auto b = pool.NewPage();
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = pool.NewPage();  // No evictable frame.
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // Releasing one pin frees a frame again.
  ASSERT_TRUE(pool.UnpinPage((*a)->id(), false).ok());
  auto d = pool.NewPage();
  EXPECT_TRUE(d.ok());
  ASSERT_TRUE(pool.UnpinPage((*b)->id(), false).ok());
  ASSERT_TRUE(pool.UnpinPage((*d)->id(), false).ok());
}

TEST(BufferPoolTest, PinCountNestsAcrossFetches) {
  SimDiskManager disk;
  BufferPool pool(2, &disk, MakeLru());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId p = (*page)->id();
  auto again = pool.FetchPage(p);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*page, *again);  // Same frame.
  EXPECT_EQ((*page)->pin_count(), 2);
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  EXPECT_EQ((*page)->pin_count(), 1);
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  EXPECT_EQ((*page)->pin_count(), 0);
  EXPECT_FALSE(pool.UnpinPage(p, false).ok());  // Over-unpin rejected.
}

TEST(BufferPoolTest, WriteAccessMarksDirty) {
  SimDiskManager disk;
  BufferPool pool(2, &disk, MakeLru());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId p = (*page)->id();
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  ASSERT_TRUE(pool.FlushPage(p).ok());

  auto w = pool.FetchPage(p, AccessType::kWrite);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE((*w)->is_dirty());
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
}

TEST(BufferPoolTest, FlushClearsDirtyAndWritesThrough) {
  SimDiskManager disk;
  BufferPool pool(2, &disk, MakeLru());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId p = (*page)->id();
  std::strcpy((*page)->Data(), "flushed");
  ASSERT_TRUE(pool.FlushPage(p).ok());
  EXPECT_FALSE((*page)->is_dirty());
  char buf[kPageSize];
  ASSERT_TRUE(disk.ReadPage(p, buf).ok());
  EXPECT_STREQ(buf, "flushed");
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
}

TEST(BufferPoolTest, FlushAllWritesEveryDirtyPage) {
  SimDiskManager disk;
  BufferPool pool(4, &disk, MakeLru());
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    (*page)->Data()[0] = static_cast<char>('a' + i);
    ids.push_back((*page)->id());
    ASSERT_TRUE(pool.UnpinPage(ids.back(), true).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  for (int i = 0; i < 3; ++i) {
    char buf[kPageSize];
    ASSERT_TRUE(disk.ReadPage(ids[i], buf).ok());
    EXPECT_EQ(buf[0], static_cast<char>('a' + i));
  }
}

TEST(BufferPoolTest, DeletePageRemovesEverywhere) {
  SimDiskManager disk;
  BufferPool pool(4, &disk, MakeLru());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId p = (*page)->id();
  EXPECT_FALSE(pool.DeletePage(p).ok());  // Still pinned.
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  ASSERT_TRUE(pool.DeletePage(p).ok());
  EXPECT_FALSE(pool.IsResident(p));
  EXPECT_FALSE(pool.FetchPage(p).ok());  // Deallocated on disk too.
}

TEST(BufferPoolTest, DeleteNonResidentPageStillDeallocates) {
  SimDiskManager disk;
  BufferPool pool(2, &disk, MakeLru());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId p = (*page)->id();
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  // Push p out of the pool.
  for (int i = 0; i < 2; ++i) {
    auto filler = pool.NewPage();
    ASSERT_TRUE(filler.ok());
    ASSERT_TRUE(pool.UnpinPage((*filler)->id(), false).ok());
  }
  ASSERT_FALSE(pool.IsResident(p));
  ASSERT_TRUE(pool.DeletePage(p).ok());
  EXPECT_FALSE(pool.FetchPage(p).ok());
}

TEST(BufferPoolTest, LruKPolicyDrivesEviction) {
  // With LRU-2 driving the pool, a once-referenced page is evicted before
  // a twice-referenced one even if the latter is older.
  SimDiskManager disk;
  BufferPool pool(2, &disk, std::make_unique<LruKPolicy>(LruKOptions{}));
  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  PageId pa = (*a)->id();
  ASSERT_TRUE(pool.UnpinPage(pa, false).ok());
  ASSERT_TRUE(pool.FetchPage(pa).ok());  // Second reference to a.
  ASSERT_TRUE(pool.UnpinPage(pa, false).ok());

  auto b = pool.NewPage();
  ASSERT_TRUE(b.ok());
  PageId pb = (*b)->id();
  ASSERT_TRUE(pool.UnpinPage(pb, false).ok());

  auto c = pool.NewPage();  // Must evict pb (one ref), not pa (two refs).
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(pool.IsResident(pa));
  EXPECT_FALSE(pool.IsResident(pb));
  ASSERT_TRUE(pool.UnpinPage((*c)->id(), false).ok());
}

TEST(PageGuardTest, UnpinsOnDestruction) {
  SimDiskManager disk;
  BufferPool pool(2, &disk, MakeLru());
  PageId p;
  {
    auto guard = PageGuard::New(pool);
    ASSERT_TRUE(guard.ok());
    p = guard->id();
    std::strcpy(guard->Data(), "guarded");
  }
  // Guard released: page unpinned and dirty.
  auto page = pool.FetchPage(p);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->pin_count(), 1);
  EXPECT_STREQ((*page)->Data(), "guarded");
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
}

TEST(PageGuardTest, MoveTransfersOwnership) {
  SimDiskManager disk;
  BufferPool pool(2, &disk, MakeLru());
  auto guard = PageGuard::New(pool);
  ASSERT_TRUE(guard.ok());
  PageId p = guard->id();
  PageGuard moved = std::move(*guard);
  EXPECT_FALSE(guard->valid());
  EXPECT_TRUE(moved.valid());
  moved.Release();
  auto page = pool.FetchPage(p);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->pin_count(), 1);  // Exactly one pin: no double unpin.
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
}

TEST(PageGuardTest, ConstAccessStaysClean) {
  SimDiskManager disk;
  BufferPool pool(2, &disk, MakeLru());
  PageId p;
  {
    auto guard = PageGuard::New(pool);
    ASSERT_TRUE(guard.ok());
    p = guard->id();
  }
  ASSERT_TRUE(pool.FlushPage(p).ok());
  uint64_t writes_before = disk.stats().writes;
  {
    auto guard = PageGuard::Fetch(pool, p);
    ASSERT_TRUE(guard.ok());
    const PageGuard& const_ref = *guard;
    (void)const_ref.Data();          // Const read: no dirty bit.
    (void)const_ref.As<uint64_t>();  // Const view: no dirty bit.
  }
  // Evict p; since it stayed clean there must be no extra write-back.
  for (int i = 0; i < 2; ++i) {
    auto filler = pool.NewPage();
    ASSERT_TRUE(filler.ok());
    ASSERT_TRUE(pool.UnpinPage((*filler)->id(), false).ok());
  }
  EXPECT_FALSE(pool.IsResident(p));
  // The fillers were dirty, p was not: exactly 0 writes for p. Fillers may
  // or may not have been written yet; check p specifically via read-back.
  EXPECT_GE(disk.stats().writes, writes_before);
}

}  // namespace
}  // namespace lruk
