// Deterministic fault injection (storage/fault_injecting_disk_manager.h)
// and the error-path hardening of both buffer pools.
//
// Four layers of coverage:
//  * Injector unit tests — rule mechanics (Nth, per-page, probabilistic,
//    torn writes, latency spikes), Heal()/AddRule re-arming, the retry
//    counter, stats merging, and byte-for-byte trace replay under the
//    same (seed, schedule).
//  * Differential test — an empty-schedule wrapper over SimDiskManager is
//    byte-identical to the bare manager under a deterministic pool
//    workload: same IoStats (every field), same pool counters, same
//    victim sequence, same resident set, same page images.
//  * Pool hardening units — a failed read admits nothing; a failed dirty
//    write-back rolls the eviction back (policy Restore, all three victim
//    indices); FlushAll tries every page and keeps failed pages dirty;
//    retries absorb transient faults; NewPage reclaims its id.
//  * Fault-sweep property grid — 208 points of seeds x fault rates x
//    (plain, sharded) x (batch on/off): Zipfian workload with injected
//    faults, then Heal() + FlushAll(), asserting no acknowledged write is
//    ever lost, durability on the inner disk, pool/policy residency sync,
//    pin-count hygiene, and that replaying the same (seed, schedule)
//    reproduces the identical fault trace. A concurrent variant (TSan
//    target) races faults against pin/unpin across shards.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/page_guard.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "storage/fault_injecting_disk_manager.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

// ---------------------------------------------------------------------------
// Helpers.

void ExpectIoStatsEq(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.allocations, b.allocations);
  EXPECT_EQ(a.deallocations, b.deallocations);
  EXPECT_EQ(a.read_failures, b.read_failures);
  EXPECT_EQ(a.write_failures, b.write_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.simulated_micros, b.simulated_micros);
}

void ExpectPoolStatsEq(const BufferPoolStats& a, const BufferPoolStats& b) {
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.dirty_writebacks, b.dirty_writebacks);
  EXPECT_EQ(a.read_failures, b.read_failures);
  EXPECT_EQ(a.write_failures, b.write_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.coalesced_reads, b.coalesced_reads);
  EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
  EXPECT_EQ(a.prefetch_used, b.prefetch_used);
  EXPECT_EQ(a.prefetch_dropped, b.prefetch_dropped);
  EXPECT_EQ(a.background_cleans, b.background_cleans);
}

std::string TraceToString(const std::vector<FaultEvent>& trace) {
  std::string out;
  for (const FaultEvent& e : trace) {
    out += FaultEventToString(e);
    out += "\n";
  }
  return out;
}

// Allocates `n` zeroed pages through any disk manager, returning their ids.
std::vector<PageId> AllocateRaw(DiskManager& disk, uint64_t n) {
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < n; ++i) {
    auto p = disk.AllocatePage();
    EXPECT_TRUE(p.ok());
    pages.push_back(*p);
  }
  return pages;
}

// Allocates `n` pages through a pool (NewPage + unpin-dirty).
std::vector<PageId> AllocateDb(PoolInterface& pool, uint64_t n) {
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < n; ++i) {
    auto page = pool.NewPage();
    EXPECT_TRUE(page.ok());
    pages.push_back((*page)->id());
    EXPECT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
  }
  return pages;
}

// Stamp written into a page image by the sweep workload: the page id plus
// a monotonically increasing write counter.
struct PageStamp {
  PageId page = kInvalidPageId;
  uint64_t value = 0;
};

void WriteStamp(char* data, PageId p, uint64_t value) {
  PageStamp stamp{p, value};
  std::memcpy(data, &stamp, sizeof(stamp));
}

PageStamp ReadStamp(const char* data) {
  PageStamp stamp;
  std::memcpy(&stamp, data, sizeof(stamp));
  return stamp;
}

// Forwarding LRU-K wrapper that records the eviction sequence, so the
// differential test can compare victim choice — not just counters.
class RecordingLruK final : public ReplacementPolicy {
 public:
  explicit RecordingLruK(LruKOptions options) : inner_(options) {}

  void SetReferencingProcess(uint32_t process) override {
    inner_.SetReferencingProcess(process);
  }
  void PrepareAdmit(PageId p) override { inner_.PrepareAdmit(p); }
  void RecordAccess(PageId p, AccessType type) override {
    inner_.RecordAccess(p, type);
  }
  void RecordAccessBatch(const AccessRecord* records, size_t n) override {
    inner_.RecordAccessBatch(records, n);
  }
  void Admit(PageId p, AccessType type) override { inner_.Admit(p, type); }
  std::optional<PageId> Evict() override {
    auto victim = inner_.Evict();
    if (victim.has_value()) evictions_.push_back(*victim);
    return victim;
  }
  void Restore(PageId p) override {
    // The recorded eviction did not happen after all.
    ASSERT_FALSE(evictions_.empty());
    ASSERT_EQ(evictions_.back(), p);
    evictions_.pop_back();
    inner_.Restore(p);
  }
  void Remove(PageId p) override { inner_.Remove(p); }
  void SetEvictable(PageId p, bool evictable) override {
    inner_.SetEvictable(p, evictable);
  }
  size_t ResidentCount() const override { return inner_.ResidentCount(); }
  size_t EvictableCount() const override { return inner_.EvictableCount(); }
  bool IsResident(PageId p) const override { return inner_.IsResident(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override {
    inner_.ForEachResident(visit);
  }
  std::string_view Name() const override { return inner_.Name(); }

  const std::vector<PageId>& evictions() const { return evictions_; }

 private:
  LruKPolicy inner_;
  std::vector<PageId> evictions_;
};

// ---------------------------------------------------------------------------
// Injector unit tests.

TEST(FaultInjectorTest, FailNthReadFiresExactlyOnce) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/1);
  std::vector<PageId> pages = AllocateRaw(disk, 3);
  disk.AddRule(FaultRule::FailNth(FaultOp::kRead, 2));

  char buf[kPageSize];
  EXPECT_TRUE(disk.ReadPage(pages[0], buf).ok());   // 1st read passes.
  Status second = disk.ReadPage(pages[1], buf);     // 2nd fails.
  EXPECT_EQ(second.code(), StatusCode::kIoError);
  EXPECT_TRUE(disk.ReadPage(pages[1], buf).ok());   // Transient: 3rd passes.
  EXPECT_TRUE(disk.ReadPage(pages[2], buf).ok());

  ASSERT_EQ(disk.TraceSize(), 1u);
  FaultEvent event = disk.Trace()[0];
  EXPECT_EQ(event.op_index, 2u);
  EXPECT_EQ(event.op, FaultOp::kRead);
  EXPECT_EQ(event.effect, FaultEffect::kError);
  EXPECT_EQ(event.page, pages[1]);

  IoStats stats = disk.stats();
  EXPECT_EQ(stats.reads, 3u);
  EXPECT_EQ(stats.read_failures, 1u);
  EXPECT_EQ(stats.write_failures, 0u);
  EXPECT_EQ(stats.retries, 1u);  // The re-issue of pages[1] right after.
}

TEST(FaultInjectorTest, FailPageIsPermanentUntilHealAndAddRuleRearms) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/2);
  std::vector<PageId> pages = AllocateRaw(disk, 2);
  disk.AddRule(FaultRule::FailPage(FaultOp::kWrite, pages[0]));

  char buf[kPageSize] = {};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(disk.WritePage(pages[0], buf).code(), StatusCode::kIoError);
  }
  EXPECT_TRUE(disk.WritePage(pages[1], buf).ok());  // Other pages untouched.
  EXPECT_EQ(disk.TraceSize(), 3u);

  EXPECT_FALSE(disk.healed());
  disk.Heal();
  EXPECT_TRUE(disk.healed());
  EXPECT_TRUE(disk.WritePage(pages[0], buf).ok());
  EXPECT_EQ(disk.TraceSize(), 3u);  // No new fires while healed.

  disk.AddRule(FaultRule::FailNth(FaultOp::kRead, 1));  // Re-arms.
  EXPECT_FALSE(disk.healed());
  // The permanent page rule is armed again too.
  EXPECT_EQ(disk.WritePage(pages[0], buf).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.ReadPage(pages[1], buf).code(), StatusCode::kIoError);
}

TEST(FaultInjectorTest, ProbabilisticScheduleRepliesDeterministically) {
  auto run = [](uint64_t seed) {
    SimDiskManager inner;
    FaultInjectingDiskManager disk(&inner, seed);
    std::vector<PageId> pages = AllocateRaw(disk, 8);
    disk.AddRule(FaultRule::FailWithProbability(FaultOp::kRead, 0.3));
    disk.AddRule(FaultRule::FailWithProbability(FaultOp::kWrite, 0.3));
    char buf[kPageSize] = {};
    for (int i = 0; i < 400; ++i) {
      PageId p = pages[i % pages.size()];
      if (i % 3 == 0) {
        (void)disk.WritePage(p, buf);
      } else {
        (void)disk.ReadPage(p, buf);
      }
    }
    return disk.Trace();
  };

  std::vector<FaultEvent> a = run(42);
  std::vector<FaultEvent> b = run(42);
  EXPECT_GT(a.size(), 20u);                   // The rate actually bites.
  EXPECT_LT(a.size(), 250u);                  // ...but not on every op.
  EXPECT_EQ(a, b) << "same seed must replay byte-for-byte:\n"
                  << TraceToString(a) << "vs\n"
                  << TraceToString(b);
  std::vector<FaultEvent> c = run(43);
  EXPECT_NE(a, c) << "different seeds draw different fault patterns";
}

TEST(FaultInjectorTest, TornWriteLeavesPrefixOverOldImage) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/3);
  std::vector<PageId> pages = AllocateRaw(disk, 1);
  PageId p = pages[0];

  char old_image[kPageSize];
  std::memset(old_image, 0xAA, kPageSize);
  ASSERT_TRUE(disk.WritePage(p, old_image).ok());

  constexpr size_t kTornBytes = 512;
  disk.AddRule(FaultRule::TornWriteNth(/*nth=*/1, kTornBytes));
  char new_image[kPageSize];
  std::memset(new_image, 0xBB, kPageSize);
  Status torn = disk.WritePage(p, new_image);
  EXPECT_EQ(torn.code(), StatusCode::kIoError);

  // The inner manager holds the torn hybrid: new prefix, old tail.
  char got[kPageSize];
  ASSERT_TRUE(inner.ReadPage(p, got).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    char want = i < kTornBytes ? static_cast<char>(0xBB)
                               : static_cast<char>(0xAA);
    ASSERT_EQ(got[i], want) << "byte " << i;
  }

  ASSERT_EQ(disk.TraceSize(), 1u);
  EXPECT_EQ(disk.Trace()[0].effect, FaultEffect::kTornWrite);
  EXPECT_EQ(disk.stats().write_failures, 1u);
}

TEST(FaultInjectorTest, LatencySpikeChargesTimeWithoutFailing) {
  SimDiskOptions sim_options;
  sim_options.read_micros = 100.0;
  SimDiskManager inner(sim_options);
  FaultInjectingDiskManager disk(&inner, /*seed=*/4);
  std::vector<PageId> pages = AllocateRaw(disk, 1);
  disk.AddRule(
      FaultRule::LatencySpikeNth(FaultOp::kRead, /*nth=*/2, /*micros=*/5000));

  char buf[kPageSize];
  EXPECT_TRUE(disk.ReadPage(pages[0], buf).ok());
  EXPECT_TRUE(disk.ReadPage(pages[0], buf).ok());  // Spiked but succeeds.
  EXPECT_TRUE(disk.ReadPage(pages[0], buf).ok());

  IoStats stats = disk.stats();
  EXPECT_EQ(stats.reads, 3u);
  EXPECT_EQ(stats.read_failures, 0u);
  EXPECT_DOUBLE_EQ(stats.simulated_micros, 3 * 100.0 + 5000.0);
  ASSERT_EQ(disk.TraceSize(), 1u);
  EXPECT_EQ(disk.Trace()[0].effect, FaultEffect::kLatency);
}

TEST(FaultInjectorTest, ResetStatsClearsInnerAndInjectedCounters) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/5);
  std::vector<PageId> pages = AllocateRaw(disk, 1);
  disk.AddRule(FaultRule::FailNth(FaultOp::kRead, 1));

  char buf[kPageSize] = {};
  EXPECT_FALSE(disk.ReadPage(pages[0], buf).ok());
  EXPECT_TRUE(disk.ReadPage(pages[0], buf).ok());
  EXPECT_TRUE(disk.WritePage(pages[0], buf).ok());
  // Organic failure counted by the inner manager itself.
  EXPECT_EQ(disk.ReadPage(999, buf).code(), StatusCode::kNotFound);

  IoStats before = disk.stats();
  EXPECT_EQ(before.reads, 1u);
  EXPECT_EQ(before.writes, 1u);
  EXPECT_EQ(before.read_failures, 2u);  // 1 injected + 1 organic.
  EXPECT_EQ(before.retries, 1u);

  disk.ResetStats();
  IoStats after = disk.stats();
  ExpectIoStatsEq(after, IoStats{});
  ExpectIoStatsEq(inner.stats(), IoStats{});
}

// ---------------------------------------------------------------------------
// Differential test: an empty schedule is a transparent pass-through.

TEST(FaultInjectorDifferentialTest, EmptyScheduleIsByteIdenticalToBareDisk) {
  constexpr uint64_t kDbPages = 96;
  constexpr size_t kCapacity = 24;

  SimDiskManager bare;
  auto bare_policy = std::make_unique<RecordingLruK>(LruKOptions{.k = 2});
  RecordingLruK* bare_recorder = bare_policy.get();
  BufferPool bare_pool(kCapacity, &bare, std::move(bare_policy));

  SimDiskManager inner;
  FaultInjectingDiskManager wrapped(&inner, /*seed=*/7);
  auto wrapped_policy = std::make_unique<RecordingLruK>(LruKOptions{.k = 2});
  RecordingLruK* wrapped_recorder = wrapped_policy.get();
  BufferPool wrapped_pool(kCapacity, &wrapped, std::move(wrapped_policy));

  std::vector<PageId> bare_pages = AllocateDb(bare_pool, kDbPages);
  std::vector<PageId> wrapped_pages = AllocateDb(wrapped_pool, kDbPages);
  ASSERT_EQ(bare_pages, wrapped_pages);

  auto drive = [&](BufferPool& pool, const std::vector<PageId>& pages) {
    RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
    RandomEngine rng(/*seed=*/20260806);
    for (int i = 0; i < 20000; ++i) {
      PageId p = pages[dist.Sample(rng) - 1];
      bool write = rng.NextBernoulli(0.25);
      auto page =
          pool.FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
      ASSERT_TRUE(page.ok()) << i;
      if (write) WriteStamp((*page)->Data(), p, static_cast<uint64_t>(i));
      ASSERT_TRUE(pool.UnpinPage(p, write).ok()) << i;
      if (i % 1009 == 0) ASSERT_TRUE(pool.FlushPage(p).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  };
  drive(bare_pool, bare_pages);
  drive(wrapped_pool, wrapped_pages);

  // Same victim sequence — replacement behaviour, not just counts.
  EXPECT_EQ(bare_recorder->evictions(), wrapped_recorder->evictions());
  ExpectPoolStatsEq(bare_pool.stats(), wrapped_pool.stats());
  // Same IoStats, every field, through the wrapper's merged view.
  ExpectIoStatsEq(bare.stats(), wrapped.stats());
  EXPECT_EQ(wrapped.TraceSize(), 0u);

  // Same resident set and identical page images on disk.
  ASSERT_EQ(bare_pool.ResidentCount(), wrapped_pool.ResidentCount());
  char a[kPageSize];
  char b[kPageSize];
  for (PageId p : bare_pages) {
    EXPECT_EQ(bare_pool.IsResident(p), wrapped_pool.IsResident(p));
    ASSERT_TRUE(bare.ReadPage(p, a).ok());
    ASSERT_TRUE(inner.ReadPage(p, b).ok());
    EXPECT_EQ(std::memcmp(a, b, kPageSize), 0) << "page " << p;
  }
}

// ---------------------------------------------------------------------------
// Pool hardening units.

TEST(PoolFaultHardeningTest, FailedReadAdmitsNothing) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/11);
  auto policy = std::make_unique<LruKPolicy>(LruKOptions{.k = 2});
  LruKPolicy* lruk = policy.get();
  BufferPool pool(4, &disk, std::move(policy));
  std::vector<PageId> pages = AllocateDb(pool, 2);

  PageId target = pages[0];
  // Make the target non-resident first (delete it from the pool's view by
  // flushing + evicting is fiddly; just use a fresh non-resident page).
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<PageId> extra = AllocateRaw(disk, 1);
  target = extra[0];

  disk.AddRule(FaultRule::FailPage(FaultOp::kRead, target));
  size_t residents_before = pool.ResidentCount();
  Timestamp time_before = lruk->CurrentTime();

  auto fetched = pool.FetchPage(target);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kIoError);

  EXPECT_EQ(pool.ResidentCount(), residents_before);
  EXPECT_FALSE(pool.IsResident(target));
  EXPECT_FALSE(lruk->IsResident(target));
  EXPECT_EQ(lruk->ResidentCount(), residents_before);
  EXPECT_EQ(lruk->CurrentTime(), time_before);  // No phantom tick.
  EXPECT_EQ(pool.stats().read_failures, 1u);

  disk.Heal();
  auto healed = pool.FetchPage(target);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(pool.UnpinPage(target, false).ok());
}

// The write-back rollback, exercised against every victim index: the
// policy must restore the victim exactly (no clock tick, same next victim)
// and the pool must keep the dirty image.
class WriteBackRollbackTest : public ::testing::TestWithParam<VictimIndex> {};

TEST_P(WriteBackRollbackTest, FailedWriteBackRollsBackEviction) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/13);
  LruKOptions options{.k = 2};
  options.victim_index = GetParam();
  auto policy = std::make_unique<LruKPolicy>(options);
  LruKPolicy* lruk = policy.get();
  BufferPool pool(1, &disk, std::move(policy));

  // Resident dirty page A; B waits on disk.
  std::vector<PageId> ids = AllocateRaw(disk, 2);
  PageId a = ids[0];
  PageId b = ids[1];
  auto page_a = pool.FetchPage(a, AccessType::kWrite);
  ASSERT_TRUE(page_a.ok());
  WriteStamp((*page_a)->Data(), a, /*value=*/777);
  ASSERT_TRUE(pool.UnpinPage(a, true).ok());

  disk.AddRule(FaultRule::FailPage(FaultOp::kWrite, a));
  Timestamp time_before = lruk->CurrentTime();
  auto fetched = pool.FetchPage(b);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kIoError);

  // The eviction rolled back: A is still resident (and still dirty — its
  // acknowledged write was not lost), B was never admitted, the policy and
  // frame table agree, no eviction was counted, and the clock is unmoved.
  EXPECT_TRUE(pool.IsResident(a));
  EXPECT_FALSE(pool.IsResident(b));
  EXPECT_TRUE(lruk->IsResident(a));
  EXPECT_EQ(lruk->ResidentCount(), 1u);
  EXPECT_EQ(lruk->EvictableCount(), 1u);
  EXPECT_EQ(lruk->CurrentTime(), time_before);
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.dirty_writebacks, 0u);
  EXPECT_EQ(stats.write_failures, 1u);

  // Re-pinning A sees the unwritten stamp.
  auto again = pool.FetchPage(a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ReadStamp((*again)->Data()).value, 777u);
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());

  // After healing, the same fetch completes: A is written back and B
  // admitted; A's stamp is durable on the inner disk.
  disk.Heal();
  auto healed = pool.FetchPage(b);
  ASSERT_TRUE(healed.ok());
  ASSERT_TRUE(pool.UnpinPage(b, false).ok());
  EXPECT_FALSE(pool.IsResident(a));
  EXPECT_TRUE(pool.IsResident(b));
  char buf[kPageSize];
  ASSERT_TRUE(inner.ReadPage(a, buf).ok());
  EXPECT_EQ(ReadStamp(buf).value, 777u);
  stats = pool.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.dirty_writebacks, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllVictimIndices, WriteBackRollbackTest,
                         ::testing::Values(VictimIndex::kLazyHeap,
                                           VictimIndex::kOrderedSet,
                                           VictimIndex::kLinear),
                         [](const auto& info) {
                           switch (info.param) {
                             case VictimIndex::kLazyHeap:
                               return "LazyHeap";
                             case VictimIndex::kOrderedSet:
                               return "OrderedSet";
                             case VictimIndex::kLinear:
                               return "Linear";
                           }
                           return "Unknown";
                         });

TEST(PoolFaultHardeningTest, FlushAllTriesEveryPageAndKeepsFailedDirty) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/17);
  BufferPool pool(4, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
  std::vector<PageId> pages = AllocateDb(pool, 3);
  ASSERT_TRUE(pool.FlushAll().ok());

  // Dirty all three, then make the middle one unwritable.
  for (size_t i = 0; i < pages.size(); ++i) {
    auto page = pool.FetchPage(pages[i], AccessType::kWrite);
    ASSERT_TRUE(page.ok());
    WriteStamp((*page)->Data(), pages[i], 1000 + i);
    ASSERT_TRUE(pool.UnpinPage(pages[i], true).ok());
  }
  disk.AddRule(FaultRule::FailPage(FaultOp::kWrite, pages[1]));

  Status flushed = pool.FlushAll();
  EXPECT_EQ(flushed.code(), StatusCode::kIoError);

  // The healthy pages reached disk despite the failure in their midst...
  char buf[kPageSize];
  ASSERT_TRUE(inner.ReadPage(pages[0], buf).ok());
  EXPECT_EQ(ReadStamp(buf).value, 1000u);
  ASSERT_TRUE(inner.ReadPage(pages[2], buf).ok());
  EXPECT_EQ(ReadStamp(buf).value, 1002u);
  // ...and the failed page is still dirty, so healing + reflushing
  // completes the job (nothing silently dropped).
  disk.Heal();
  EXPECT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(inner.ReadPage(pages[1], buf).ok());
  EXPECT_EQ(ReadStamp(buf).value, 1001u);
}

TEST(PoolFaultHardeningTest, RetryAbsorbsTransientFaults) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/19);
  BufferPoolOptions options;
  options.io_retry.max_attempts = 3;  // sleep left null: immediate retry.
  BufferPool pool(1, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);
  std::vector<PageId> pages = AllocateDb(pool, 1);

  // One transient write failure: the flush's first attempt fails inside
  // the pool, the retry succeeds, and the caller never sees an error.
  disk.AddRule(FaultRule::FailNth(FaultOp::kWrite, 1));
  auto page = pool.FetchPage(pages[0], AccessType::kWrite);
  ASSERT_TRUE(page.ok());
  WriteStamp((*page)->Data(), pages[0], 4242);
  ASSERT_TRUE(pool.UnpinPage(pages[0], true).ok());
  EXPECT_TRUE(pool.FlushPage(pages[0]).ok());

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.write_failures, 0u);  // Absorbed, not surfaced.
  IoStats io = disk.stats();
  EXPECT_EQ(io.write_failures, 1u);  // The disk level still saw it.
  EXPECT_EQ(io.retries, 1u);
  char buf[kPageSize];
  ASSERT_TRUE(inner.ReadPage(pages[0], buf).ok());
  EXPECT_EQ(ReadStamp(buf).value, 4242u);

  // A transient read failure on the fetch path is absorbed the same way.
  // Push the (now clean) page out of the single frame first, so the next
  // fetch must hit the disk.
  std::vector<PageId> extra = AllocateDb(pool, 1);
  ASSERT_FALSE(pool.IsResident(pages[0]));
  disk.AddRule(FaultRule::FailNth(FaultOp::kRead, 1));
  auto reread = pool.FetchPage(pages[0]);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(ReadStamp((*reread)->Data()).value, 4242u);
  ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
  EXPECT_EQ(pool.stats().read_failures, 0u);
  EXPECT_EQ(pool.stats().retries, 2u);
}

TEST(PoolFaultHardeningTest, NewPageReclaimsItsIdWhenAdmissionFails) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/23);
  BufferPool pool(1, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));

  auto pinned = pool.NewPage();
  ASSERT_TRUE(pinned.ok());  // Holds the only frame, pinned.
  uint64_t allocated_before = disk.NumAllocatedPages();

  auto failed = pool.NewPage();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  // The freshly allocated id was returned to the allocator.
  EXPECT_EQ(disk.NumAllocatedPages(), allocated_before);

  // Same deal when the admission fails on a dirty write-back fault.
  ASSERT_TRUE(pool.UnpinPage((*pinned)->id(), true).ok());
  disk.AddRule(FaultRule::FailPage(FaultOp::kWrite, (*pinned)->id()));
  auto blocked = pool.NewPage();
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kIoError);
  EXPECT_EQ(disk.NumAllocatedPages(), allocated_before);
  EXPECT_TRUE(pool.IsResident((*pinned)->id()));  // Rolled back, intact.
}

TEST(PoolFaultHardeningTest, DeletePageLeavesPoolIntactWhenDiskRefuses) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/29);
  BufferPool pool(2, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
  std::vector<PageId> pages = AllocateDb(pool, 1);

  // Deallocate behind the pool's back, so the pool-level delete fails at
  // the disk step: the resident page (and its policy entry) must survive.
  ASSERT_TRUE(disk.DeallocatePage(pages[0]).ok());
  Status deleted = pool.DeletePage(pages[0]);
  EXPECT_EQ(deleted.code(), StatusCode::kNotFound);
  EXPECT_TRUE(pool.IsResident(pages[0]));
  EXPECT_EQ(pool.ResidentCount(), 1u);
}

// ---------------------------------------------------------------------------
// Fault-sweep property grid.

enum class PoolKind { kPlain, kSharded };

struct SweepPoint {
  uint64_t seed = 0;
  double fault_rate = 0.0;
  PoolKind kind = PoolKind::kPlain;
  bool batched = false;
};

struct SweepResult {
  std::vector<FaultEvent> trace;
  BufferPoolStats stats;
};

constexpr uint64_t kSweepDbPages = 64;
constexpr size_t kSweepCapacity = 16;
constexpr int kSweepTraceLen = 1200;

// Runs one grid point end-to-end and checks every invariant; returns the
// fault trace + final stats so the caller can assert replay equality.
SweepResult RunSweepPoint(const SweepPoint& point) {
  SweepResult result;
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, point.seed);

  BufferPoolOptions options;
  if (point.batched) {
    options.batch_capacity = 8;
    options.batch_stripes = 1;
  }
  if (point.seed % 2 == 1) {
    options.io_retry.max_attempts = 2;  // Null sleep: immediate re-issue.
  }

  auto factory = [](size_t, size_t shard_capacity) {
    LruKOptions o{.k = 2};
    o.capacity_hint = shard_capacity;
    return std::make_unique<LruKPolicy>(o);
  };
  std::unique_ptr<BufferPool> plain;
  std::unique_ptr<ShardedBufferPool> sharded;
  PoolInterface* pool = nullptr;
  if (point.kind == PoolKind::kPlain) {
    plain = std::make_unique<BufferPool>(kSweepCapacity, &disk,
                                         factory(0, kSweepCapacity), options);
    pool = plain.get();
  } else {
    sharded = std::make_unique<ShardedBufferPool>(
        kSweepCapacity, /*num_shards=*/4, &disk, factory, options);
    pool = sharded.get();
  }

  // Allocation runs fault-free so every grid point starts from the same
  // database; the schedule is armed afterwards.
  std::vector<PageId> pages = AllocateDb(*pool, kSweepDbPages);
  if (point.fault_rate > 0.0) {
    disk.AddRule(
        FaultRule::FailWithProbability(FaultOp::kRead, point.fault_rate));
    disk.AddRule(
        FaultRule::FailWithProbability(FaultOp::kWrite, point.fault_rate));
    disk.AddRule(FaultRule::LatencyWithProbability(
        FaultOp::kRead, point.fault_rate / 2, /*micros=*/250.0));
  }

  // Zipfian workload under fire. `shadow` records acknowledged writes
  // (fetch + stamp + unpin-dirty all succeeded): the pool must NEVER lose
  // one, fault or no fault — failed evictions roll back, failed flushes
  // keep the dirty bit.
  std::map<PageId, uint64_t> shadow;
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(point.seed ^ 0x5DEECE66DULL);
  for (int i = 0; i < kSweepTraceLen; ++i) {
    PageId p = pages[dist.Sample(rng) - 1];
    bool write = rng.NextBernoulli(0.3);
    auto page =
        pool->FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
    if (!page.ok()) {
      // Injected faults surface as kIoError; nothing else may leak out of
      // a single-threaded workload with free frames.
      EXPECT_EQ(page.status().code(), StatusCode::kIoError)
          << "op " << i << ": " << page.status().ToString();
      continue;
    }
    EXPECT_GE((*page)->pin_count(), 1) << "op " << i;
    uint64_t value = static_cast<uint64_t>(i) + 1;
    if (write) WriteStamp((*page)->Data(), p, value);
    Status unpinned = pool->UnpinPage(p, write);
    EXPECT_TRUE(unpinned.ok()) << "op " << i;
    if (write && unpinned.ok()) shadow[p] = value;
    if (i % 251 == 0) {
      Status flushed = pool->FlushPage(p);
      EXPECT_TRUE(flushed.ok() ||
                  flushed.code() == StatusCode::kIoError)
          << "op " << i << ": " << flushed.ToString();
    }
  }

  // Heal, then the pool must be able to make everything durable.
  disk.Heal();
  EXPECT_TRUE(pool->FlushAll().ok());

  // Capture replay artifacts before verification perturbs the stats.
  result.trace = disk.Trace();
  result.stats = pool->stats();

  // --- Invariants ---
  EXPECT_LE(pool->ResidentCount(), kSweepCapacity);
  // Every fetch resolves to exactly one hit or miss, errors included
  // (NewPage counts neither, so the allocation phase contributes nothing).
  EXPECT_EQ(result.stats.hits + result.stats.misses,
            static_cast<uint64_t>(kSweepTraceLen));

  // Pool <-> policy residency sync, pin hygiene, history consistency.
  auto check_shard = [&](BufferPool& shard) {
    auto& lruk = static_cast<LruKPolicy&>(shard.policy());
    EXPECT_EQ(shard.ResidentCount(), lruk.ResidentCount());
    // Every frame is unpinned, so everything resident is evictable.
    EXPECT_EQ(lruk.EvictableCount(), lruk.ResidentCount());
    EXPECT_GE(lruk.HistorySize(), lruk.ResidentCount());
    EXPECT_EQ(lruk.HistorySize(),
              lruk.ResidentCount() + lruk.NonResidentHistorySize());
  };
  if (point.kind == PoolKind::kPlain) {
    check_shard(*plain);
    for (PageId p : pages) {
      EXPECT_EQ(plain->IsResident(p), plain->policy().IsResident(p))
          << "page " << p;
    }
  } else {
    for (size_t s = 0; s < sharded->shard_count(); ++s) {
      check_shard(sharded->shard(s));
    }
    for (PageId p : pages) {
      EXPECT_EQ(sharded->IsResident(p),
                sharded->shard(sharded->ShardOf(p)).policy().IsResident(p))
          << "page " << p;
    }
  }

  // No acknowledged write lost: the pool's view has the stamp, and after
  // FlushAll the inner disk has it too (durability).
  char buf[kPageSize];
  for (const auto& [p, value] : shadow) {
    auto page = pool->FetchPage(p);
    EXPECT_TRUE(page.ok()) << "page " << p;
    if (!page.ok()) continue;
    EXPECT_EQ(ReadStamp((*page)->Data()).value, value) << "page " << p;
    EXPECT_EQ((*page)->pin_count(), 1) << "page " << p;  // No leaked pins.
    EXPECT_TRUE(pool->UnpinPage(p, false).ok());
    Status durable = inner.ReadPage(p, buf);
    EXPECT_TRUE(durable.ok()) << "page " << p;
    if (durable.ok()) {
      EXPECT_EQ(ReadStamp(buf).value, value) << "page " << p;
    }
  }
  return result;
}

TEST(FaultSweepTest, GridOfSeedsRatesPoolsAndBatching) {
  const double kRates[] = {0.0, 0.05, 0.15, 0.3};
  int points = 0;
  int faulted_points = 0;
  for (uint64_t seed = 1; seed <= 13; ++seed) {
    for (double rate : kRates) {
      for (PoolKind kind : {PoolKind::kPlain, PoolKind::kSharded}) {
        for (bool batched : {false, true}) {
          SweepPoint point{seed * 7919, rate, kind, batched};
          SCOPED_TRACE(::testing::Message()
                       << "seed=" << point.seed << " rate=" << rate
                       << " kind=" << (kind == PoolKind::kPlain ? "plain"
                                                                : "sharded")
                       << " batched=" << batched);
          SweepResult first = RunSweepPoint(point);
          if (::testing::Test::HasFatalFailure()) return;
          // Replay: the identical (seed, schedule, workload) reproduces
          // the identical fault trace and pool counters.
          SweepResult second = RunSweepPoint(point);
          EXPECT_EQ(first.trace, second.trace)
              << TraceToString(first.trace) << "vs\n"
              << TraceToString(second.trace);
          ExpectPoolStatsEq(first.stats, second.stats);
          if (rate > 0.0) {
            EXPECT_GT(first.trace.size(), 0u)
                << "fault rate " << rate << " never fired";
            ++faulted_points;
          } else {
            EXPECT_EQ(first.trace.size(), 0u);
          }
          ++points;
        }
      }
    }
  }
  EXPECT_GE(points, 200);  // The acceptance bar: >= 200 grid points.
  EXPECT_EQ(points, 13 * 4 * 2 * 2);
  EXPECT_EQ(faulted_points, 13 * 3 * 2 * 2);
}

// ---------------------------------------------------------------------------
// Faults racing concurrent pin/unpin across shards (TSan/ASan target; the
// suite name carries "Concurren" so the sanitizer CI matrix picks it up).

TEST(FaultConcurrencyTest, ConcurrentFaultsPreserveShardInvariants) {
  constexpr size_t kCapacity = 64;
  constexpr uint64_t kDbPages = 256;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;

  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/0xFA17ED);
  BufferPoolOptions options;
  options.batch_capacity = 8;
  options.batch_stripes = 8;
  options.io_retry.max_attempts = 2;
  auto factory = [](size_t, size_t shard_capacity) {
    LruKOptions o{.k = 2};
    o.capacity_hint = shard_capacity;
    return std::make_unique<LruKPolicy>(o);
  };
  ShardedBufferPool pool(kCapacity, /*num_shards=*/4, &disk, factory,
                         options);
  std::vector<PageId> pages = AllocateDb(pool, kDbPages);
  ASSERT_TRUE(pool.FlushAll().ok());
  disk.AddRule(FaultRule::FailWithProbability(FaultOp::kRead, 0.05));
  disk.AddRule(FaultRule::FailWithProbability(FaultOp::kWrite, 0.05));

  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> io_errors{0};
  std::atomic<uint64_t> exhausted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
      RandomEngine rng(0xC0FFEE + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        PageId p = pages[dist.Sample(rng) - 1];
        // kWrite dirties the page (exercising faulty write-backs) but the
        // bytes are never touched — concurrent writers to the same page
        // must coordinate themselves, and this test has no such protocol.
        bool write = rng.NextBernoulli(0.2);
        attempts.fetch_add(1, std::memory_order_relaxed);
        auto page = pool.FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        if (!page.ok()) {
          StatusCode code = page.status().code();
          if (code == StatusCode::kIoError) {
            io_errors.fetch_add(1, std::memory_order_relaxed);
          } else if (code == StatusCode::kResourceExhausted) {
            // All frames of the owning shard momentarily pinned.
            exhausted.fetch_add(1, std::memory_order_relaxed);
          } else {
            ADD_FAILURE() << "unexpected fetch error: "
                          << page.status().ToString();
          }
          continue;
        }
        ASSERT_TRUE(pool.UnpinPage(p, write).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_GT(io_errors.load(), 0u) << "faults never fired under load";

  disk.Heal();
  ASSERT_TRUE(pool.FlushAll().ok());

  // Every fetch resolved to exactly one hit or miss, errors included
  // (NewPage counts neither, so allocation contributes nothing).
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, attempts.load());
  EXPECT_GT(stats.retries, 0u);
  EXPECT_LE(pool.ResidentCount(), kCapacity);

  // Shard <-> policy sync and pin hygiene after the storm.
  for (size_t s = 0; s < pool.shard_count(); ++s) {
    BufferPool& shard = pool.shard(s);
    auto& lruk = static_cast<LruKPolicy&>(shard.policy());
    EXPECT_EQ(shard.ResidentCount(), lruk.ResidentCount()) << "shard " << s;
    EXPECT_EQ(lruk.EvictableCount(), lruk.ResidentCount()) << "shard " << s;
    EXPECT_GE(lruk.HistorySize(), lruk.ResidentCount()) << "shard " << s;
  }
  for (PageId p : pages) {
    if (!pool.IsResident(p)) continue;
    auto page = pool.FetchPage(p);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->pin_count(), 1) << "leaked pin on page " << p;
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
}

}  // namespace
}  // namespace lruk
