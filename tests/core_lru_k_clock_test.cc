// Wall-clock LRU-K: with an injected Clock the Correlated Reference Period
// and Retained Information Period are interpreted in clock units, so the
// paper's "5 seconds" / "200 seconds" tuning guidance maps directly.

#include <optional>

#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "util/clock.h"

namespace lruk {
namespace {

TEST(ManualClockTest, AdvancesMonotonically) {
  ManualClock clock(10);
  EXPECT_EQ(clock.Now(), 10u);
  clock.Advance(5);
  EXPECT_EQ(clock.Now(), 15u);
  clock.Set(12);  // Backward set is ignored (monotone).
  EXPECT_EQ(clock.Now(), 15u);
  clock.Set(99);
  EXPECT_EQ(clock.Now(), 99u);
}

TEST(SystemClockTest, NonDecreasing) {
  SystemClock clock;
  Timestamp a = clock.Now();
  Timestamp b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(LruKClockTest, TimestampsComeFromTheClock) {
  ManualClock clock(1000);
  LruKOptions options;
  options.k = 2;
  options.clock = &clock;
  LruKPolicy policy(options);
  policy.Admit(1, AccessType::kRead);
  EXPECT_EQ(policy.CurrentTime(), 1000u);
  clock.Advance(500);
  policy.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(policy.CurrentTime(), 1500u);
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->hist[0], 1500u);
  EXPECT_EQ(block->hist[1], 1000u);
  EXPECT_EQ(policy.BackwardKDistance(1), std::optional<Timestamp>(500));
}

TEST(LruKClockTest, CrpInClockUnitsSpansManyReferences) {
  // A "5 second" CRP: many intervening references to other pages do not
  // make a re-reference uncorrelated if too little wall time has passed —
  // something logical time cannot express.
  ManualClock clock(1);
  LruKOptions options;
  options.k = 2;
  options.correlated_reference_period = 5'000'000;  // 5 s in microseconds.
  options.clock = &clock;
  LruKPolicy policy(options);

  policy.Admit(1, AccessType::kRead);
  clock.Advance(1'000'000);  // 1 s.
  policy.Admit(2, AccessType::kRead);
  policy.Admit(3, AccessType::kRead);
  clock.Advance(1'000'000);  // 2 s since page 1's reference.
  policy.RecordAccess(1, AccessType::kRead);  // Still correlated.
  const HistoryBlock* block = policy.DebugBlock(1);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->hist[1], 0u);  // No second uncorrelated reference yet.

  clock.Advance(10'000'000);  // 12 s: well past the CRP.
  policy.RecordAccess(1, AccessType::kRead);  // Uncorrelated now.
  block = policy.DebugBlock(1);
  EXPECT_NE(block->hist[1], 0u);
}

TEST(LruKClockTest, RipInClockUnits) {
  ManualClock clock(1);
  LruKOptions options;
  options.k = 2;
  options.retained_information_period = 200;  // "200 seconds".
  options.purge_interval = 0;                 // Lazy expiry only.
  options.clock = &clock;
  LruKPolicy policy(options);

  policy.Admit(1, AccessType::kRead);
  ASSERT_TRUE(policy.Evict().has_value());
  clock.Advance(100);
  policy.Admit(1, AccessType::kRead);  // Within the RIP: history kept.
  EXPECT_EQ(policy.BackwardKDistance(1), std::optional<Timestamp>(100));

  ASSERT_TRUE(policy.Evict().has_value());
  clock.Advance(500);                  // Far past the RIP.
  policy.Admit(1, AccessType::kRead);  // History expired: looks new.
  EXPECT_EQ(policy.BackwardKDistance(1), std::nullopt);
}

TEST(LruKClockTest, SameQuantumReferencesShareTimestamps) {
  ManualClock clock(7);
  LruKOptions options;
  options.k = 2;
  options.clock = &clock;
  LruKPolicy policy(options);
  policy.Admit(1, AccessType::kRead);
  policy.Admit(2, AccessType::kRead);  // Same clock reading.
  EXPECT_EQ(policy.CurrentTime(), 7u);
  clock.Advance(10);
  // Both have one reference at t=7: subsidiary LRU ties break by page id.
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(policy.Evict(), std::optional<PageId>(2));
}

TEST(LruKClockTest, DemonPurgesOnClockSchedule) {
  ManualClock clock(1);
  LruKOptions options;
  options.k = 2;
  options.retained_information_period = 50;
  options.purge_interval = 100;  // Demon runs every 100 clock units.
  options.clock = &clock;
  LruKPolicy policy(options);

  policy.Admit(1, AccessType::kRead);
  ASSERT_TRUE(policy.Evict().has_value());
  EXPECT_EQ(policy.HistorySize(), 1u);
  clock.Advance(200);
  policy.Admit(2, AccessType::kRead);  // Tick: demon fires, purges page 1.
  EXPECT_EQ(policy.DebugBlock(1), nullptr);
}

}  // namespace
}  // namespace lruk
