// Cross-policy stress: every policy in the catalog drives a real
// BufferPool under a B+tree performing randomized inserts, lookups,
// deletes and scans with a pool far smaller than the tree. Exercises
// pinning (guards hold pages across evictions), dirty write-back, page
// deletion (Remove), and the PrepareAdmit protocol, then verifies the tree
// against a std::map model and the structural invariant checker.

#include <map>
#include <memory>
#include <string>

#include "btree/btree.h"
#include "bufferpool/buffer_pool.h"
#include "core/policy_factory.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

namespace lruk {
namespace {

class PolicyStressTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyStressTest, BTreeOverTinyPoolStaysConsistent) {
  constexpr size_t kPoolFrames = 16;
  PolicyContext context;
  context.capacity = kPoolFrames;
  auto config = ParsePolicyName(GetParam());
  ASSERT_TRUE(config.has_value()) << GetParam();
  auto policy = MakePolicy(*config, context);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();

  SimDiskManager disk;
  BufferPool pool(kPoolFrames, &disk, std::move(*policy));
  BTreeOptions tree_options;
  tree_options.leaf_capacity = 8;
  tree_options.internal_capacity = 8;
  BTree tree(&pool, tree_options);

  std::map<uint64_t, uint64_t> model;
  RandomEngine rng(0xBEEF);

  for (int step = 0; step < 4000; ++step) {
    uint64_t key = rng.NextBounded(300);
    double action = rng.NextDouble();
    if (action < 0.5) {
      uint64_t value = rng.NextUint64();
      Status status = tree.Insert(key, value);
      if (model.contains(key)) {
        ASSERT_EQ(status.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(status.ok()) << status.ToString();
        model[key] = value;
      }
    } else if (action < 0.75) {
      Status status = tree.Delete(key);
      ASSERT_EQ(status.ok(), model.erase(key) == 1) << status.ToString();
    } else if (action < 0.95) {
      auto got = tree.Get(key);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(*got, it->second);
      } else {
        ASSERT_FALSE(got.ok());
      }
    } else {
      uint64_t lo = rng.NextBounded(300);
      auto range = tree.Range(lo, lo + 20);
      ASSERT_TRUE(range.ok());
      auto it = model.lower_bound(lo);
      for (const auto& [k, v] : *range) {
        ASSERT_NE(it, model.end());
        ASSERT_EQ(k, it->first);
        ASSERT_EQ(v, it->second);
        ++it;
      }
    }
    ASSERT_EQ(tree.Size(), model.size());
  }

  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GT(pool.stats().evictions, 0u) << "the pool never paged";
  EXPECT_GT(disk.stats().writes, 0u) << "no dirty write-backs happened";
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyStressTest,
    ::testing::Values("LRU", "LRU-2", "LRU-3", "LFU", "FIFO", "CLOCK",
                      "GCLOCK", "LRD", "MRU", "RANDOM", "2Q", "ARC"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace lruk
