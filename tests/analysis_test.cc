// Tests for the Section 3 Bayesian formulas, including a brute-force check
// of formula (3.6) against its direct (non-log-space) evaluation and the
// Lemma 3.6 monotonicity property.

#include "analysis/bayes.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace lruk {
namespace {

// Direct (numerically naive) evaluation of (3.6) for small k.
std::vector<double> DirectPosterior(const std::vector<double>& beta, int K,
                                    uint64_t k) {
  std::vector<double> weights(beta.size());
  double sum = 0.0;
  for (size_t j = 0; j < beta.size(); ++j) {
    weights[j] = std::pow(beta[j], K) *
                 std::pow(1.0 - beta[j], static_cast<double>(k - K + 1));
    sum += weights[j];
  }
  for (auto& w : weights) w /= sum;
  return weights;
}

TEST(PosteriorTest, MatchesDirectEvaluation) {
  std::vector<double> beta = {0.4, 0.3, 0.2, 0.1};
  for (int K : {1, 2, 3}) {
    for (uint64_t k : {static_cast<uint64_t>(K), uint64_t{5}, uint64_t{20}}) {
      auto fast = PosteriorComponentProbabilities(beta, K, k);
      auto slow = DirectPosterior(beta, K, k);
      ASSERT_EQ(fast.size(), slow.size());
      for (size_t j = 0; j < fast.size(); ++j) {
        EXPECT_NEAR(fast[j], slow[j], 1e-12)
            << "K=" << K << " k=" << k << " j=" << j;
      }
    }
  }
}

TEST(PosteriorTest, SumsToOne) {
  std::vector<double> beta = {0.5, 0.25, 0.15, 0.1};
  for (uint64_t k : {2u, 10u, 100u, 100000u}) {
    auto post = PosteriorComponentProbabilities(beta, 2, k);
    double sum = std::accumulate(post.begin(), post.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "k=" << k;
  }
}

TEST(PosteriorTest, SmallDistanceImplicatesHotComponent) {
  // b_t(i,2) = 2 (the smallest possible): the page is almost surely the
  // hot one.
  std::vector<double> beta = {0.9, 0.05, 0.05};
  auto post = PosteriorComponentProbabilities(beta, 2, 2);
  EXPECT_GT(post[0], post[1]);
  EXPECT_GT(post[0], 0.9);
}

TEST(PosteriorTest, LargeDistanceImplicatesColdComponent) {
  std::vector<double> beta = {0.9, 0.05, 0.05};
  auto post = PosteriorComponentProbabilities(beta, 2, 500);
  EXPECT_LT(post[0], 1e-6);  // (1-0.9)^499 annihilates the hot hypothesis.
  EXPECT_NEAR(post[1], 0.5, 1e-6);
}

TEST(PosteriorTest, StableAtHugeBackwardDistances) {
  std::vector<double> beta = {0.5, 0.3, 0.2};
  auto post = PosteriorComponentProbabilities(beta, 2, 5'000'000);
  double sum = std::accumulate(post.begin(), post.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(post[2], 0.99);  // Everything concentrates on the coldest.
}

TEST(EstimateTest, EqualBetaGivesConstantEstimate) {
  std::vector<double> beta(10, 0.1);
  double e1 = EstimatedReferenceProbability(beta, 2, 2);
  double e2 = EstimatedReferenceProbability(beta, 2, 1000);
  EXPECT_NEAR(e1, 0.1, 1e-12);
  EXPECT_NEAR(e2, 0.1, 1e-12);
}

TEST(EstimateTest, BoundsWithinBetaRange) {
  std::vector<double> beta = {0.7, 0.2, 0.1};
  for (uint64_t k : {2u, 5u, 50u, 5000u}) {
    double e = EstimatedReferenceProbability(beta, 2, k);
    EXPECT_GE(e, 0.1 - 1e-12);
    EXPECT_LE(e, 0.7 + 1e-12);
  }
}

TEST(Lemma36Test, EstimateStrictlyDecreasesWithDistance) {
  // k is capped where the decrement is still above double resolution; far
  // beyond that the estimate saturates at min(beta) (see the next test).
  std::vector<double> beta = {0.4, 0.3, 0.2, 0.1};
  EXPECT_TRUE(EstimateIsStrictlyDecreasing(beta, 2, 60));
  EXPECT_TRUE(EstimateIsStrictlyDecreasing(beta, 1, 60));
  EXPECT_TRUE(EstimateIsStrictlyDecreasing(beta, 3, 60));
}

TEST(Lemma36Test, EstimateSaturatesAtColdestComponent) {
  std::vector<double> beta = {0.4, 0.3, 0.2, 0.1};
  EXPECT_NEAR(EstimatedReferenceProbability(beta, 2, 100000), 0.1, 1e-9);
}

TEST(Lemma36Test, RequiresTwoDistinctValues) {
  std::vector<double> beta(5, 0.2);
  // All-equal beta: the estimate is constant, not strictly decreasing —
  // exactly the lemma's caveat.
  EXPECT_FALSE(EstimateIsStrictlyDecreasing(beta, 2, 100));
}

TEST(Lemma36Test, OrderingMatchesLruKVictimChoice) {
  // If b(x) < b(y) then E(P(x)) > E(P(y)) — the inequality that justifies
  // evicting the max-backward-distance page.
  std::vector<double> beta = {0.5, 0.3, 0.15, 0.05};
  for (uint64_t bx = 2; bx < 50; bx += 3) {
    for (uint64_t by = bx + 1; by < 60; by += 7) {
      EXPECT_GT(EstimatedReferenceProbability(beta, 2, bx),
                EstimatedReferenceProbability(beta, 2, by))
          << "bx=" << bx << " by=" << by;
    }
  }
}

TEST(ExpectedCostTest, TopMCoversHottestEstimates) {
  std::vector<double> beta = {0.5, 0.3, 0.2};
  // Three pages with distances 2 (hot), 10, 1000 (cold); m = 2 buffers.
  std::vector<uint64_t> distances = {1000, 2, 10};
  double cost = ExpectedCostOfTopM(beta, 2, distances, 2);
  // Holding the two closest pages must beat holding any other pair.
  double worse = 1.0 - (EstimatedReferenceProbability(beta, 2, 2) +
                        EstimatedReferenceProbability(beta, 2, 1000));
  EXPECT_LT(cost, worse + 1e-12);
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 1.0);
}

TEST(ExpectedCostTest, InfiniteDistancesContributeNothing) {
  std::vector<double> beta = {0.6, 0.4};
  std::vector<uint64_t> distances = {UINT64_MAX, UINT64_MAX};
  EXPECT_DOUBLE_EQ(ExpectedCostOfTopM(beta, 2, distances, 2), 1.0);
}

}  // namespace
}  // namespace lruk
