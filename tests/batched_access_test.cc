// Batched access recording (BufferPoolOptions::batch_capacity +
// core/access_buffer.h).
//
// Three layers of coverage:
//  * AccessBuffer unit tests — striped ring mechanics: fill/refusal,
//    FIFO drain through RecordAccessBatch, process forwarding, capacity
//    rounding, multi-stripe accounting.
//  * Differential tests — on a deterministic single-threaded trace, a
//    batched pool (capacity 1 and 64) must be byte-identical to the
//    unbatched pool: same hit/miss/eviction/write-back counters, same
//    eviction *sequence*, same resident set, same policy clock. Drains
//    preserve reference order, so batching must not change replacement
//    behaviour at all when there is no concurrency.
//  * Concurrency churn (TSan target) — 8 threads over a sharded pool with
//    batch capacity 8 and 64: hit+miss totals stay exact, and after a
//    draining observation point every shard's LRU-K clock plus its counted
//    access_drops equals its fetches + admissions — i.e. every buffered
//    reference was either applied or accounted as a drop, never lost.
//  * Wraparound hammer (TSan/ASan target) — 8 producers push through a
//    tiny single-stripe ring (thousands of laps) against a concurrent
//    drainer: exact totals, per-thread FIFO, no duplicates.

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/access_buffer.h"
#include "core/lru_k.h"
#include "core/policy_factory.h"
#include "differential_harness.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

// ---------------------------------------------------------------------------
// AccessBuffer unit tests.

// Minimal policy that logs the (process, page, type) application order.
class LoggingPolicy : public ReplacementPolicy {
 public:
  struct Applied {
    PageId page;
    uint32_t process;
    AccessType type;
  };

  void SetReferencingProcess(uint32_t process) override {
    current_process_ = process;
  }
  void RecordAccess(PageId p, AccessType type) override {
    applied_.push_back({p, current_process_, type});
  }
  void Admit(PageId p, AccessType type) override { RecordAccess(p, type); }
  std::optional<PageId> Evict() override { return std::nullopt; }
  void Remove(PageId) override {}
  void SetEvictable(PageId, bool) override {}
  size_t ResidentCount() const override { return 0; }
  size_t EvictableCount() const override { return 0; }
  bool IsResident(PageId) const override { return true; }
  void ForEachResident(const std::function<void(PageId)>&) const override {}
  std::string_view Name() const override { return "LOGGING"; }

  const std::vector<Applied>& applied() const { return applied_; }

 private:
  uint32_t current_process_ = 0;
  std::vector<Applied> applied_;
};

TEST(BatchedAccessBufferTest, FillsRefusesAndDrainsInFifoOrder) {
  AccessBuffer buffer(/*capacity=*/4, /*stripes=*/1);
  EXPECT_EQ(buffer.stripe_capacity(), 4u);
  for (PageId p = 0; p < 4; ++p) {
    EXPECT_TRUE(buffer.TryPush({p, 0, AccessType::kRead})) << p;
  }
  EXPECT_FALSE(buffer.TryPush({99, 0, AccessType::kRead}));  // Full.

  LoggingPolicy policy;
  EXPECT_EQ(buffer.Drain(policy), 4u);
  ASSERT_EQ(policy.applied().size(), 4u);
  for (PageId p = 0; p < 4; ++p) {
    EXPECT_EQ(policy.applied()[p].page, p);  // FIFO.
  }

  // Space is reclaimed after the drain; the next lap works.
  EXPECT_TRUE(buffer.TryPush({7, 0, AccessType::kWrite}));
  EXPECT_EQ(buffer.Drain(policy), 1u);
  EXPECT_EQ(policy.applied().back().page, 7u);
  EXPECT_EQ(policy.applied().back().type, AccessType::kWrite);
  EXPECT_EQ(buffer.Drain(policy), 0u);  // Empty drain is a no-op.
}

TEST(BatchedAccessBufferTest, RefusesAtTheConfiguredLogicalCapacity) {
  // The physical ring rounds up (min 2 cells for the sequence protocol),
  // but TryPush must refuse at the configured count — in particular a
  // capacity-1 buffer holds exactly one record, so every reference is
  // applied at the very next drain point.
  AccessBuffer one(/*capacity=*/1, /*stripes=*/2);
  EXPECT_EQ(one.stripe_capacity(), 1u);
  EXPECT_EQ(one.stripe_count(), 2u);
  EXPECT_TRUE(one.TryPush({1, 0, AccessType::kRead}));
  EXPECT_FALSE(one.TryPush({2, 0, AccessType::kRead}));
  LoggingPolicy policy;
  EXPECT_EQ(one.Drain(policy), 1u);
  EXPECT_EQ(policy.applied().back().page, 1u);
  EXPECT_TRUE(one.TryPush({3, 0, AccessType::kRead}));

  AccessBuffer three(/*capacity=*/3, /*stripes=*/1);
  EXPECT_EQ(three.stripe_capacity(), 3u);
  for (PageId p = 0; p < 3; ++p) {
    EXPECT_TRUE(three.TryPush({p, 0, AccessType::kRead}));
  }
  EXPECT_FALSE(three.TryPush({3, 0, AccessType::kRead}));
}

TEST(BatchedAccessBufferTest, ForwardsProcessIdsThroughTheDefaultBatchLoop) {
  AccessBuffer buffer(/*capacity=*/8, /*stripes=*/1);
  EXPECT_TRUE(buffer.TryPush({10, 3, AccessType::kRead}));
  EXPECT_TRUE(buffer.TryPush({11, 5, AccessType::kWrite}));
  LoggingPolicy policy;
  EXPECT_EQ(buffer.Drain(policy), 2u);
  ASSERT_EQ(policy.applied().size(), 2u);
  EXPECT_EQ(policy.applied()[0].process, 3u);
  EXPECT_EQ(policy.applied()[1].process, 5u);
  EXPECT_EQ(policy.applied()[1].type, AccessType::kWrite);
}

TEST(BatchedAccessBufferTest, MultiStripePushesAllSurviveADrain) {
  AccessBuffer buffer(/*capacity=*/64, /*stripes=*/4);
  constexpr int kThreads = 4;
  constexpr PageId kPerThread = 32;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&buffer, t] {
      for (PageId i = 0; i < kPerThread; ++i) {
        PageId p = static_cast<PageId>(t) * 1000 + i;
        ASSERT_TRUE(buffer.TryPush({p, static_cast<uint32_t>(t),
                                    AccessType::kRead}));
      }
    });
  }
  for (auto& w : workers) w.join();

  LoggingPolicy policy;
  EXPECT_EQ(buffer.Drain(policy), kThreads * kPerThread);
  // Per-thread (hence per-stripe) order is FIFO even though the global
  // interleaving across stripes is unspecified.
  std::vector<PageId> last(kThreads, 0);
  for (const auto& a : policy.applied()) {
    int t = static_cast<int>(a.page / 1000);
    PageId i = a.page % 1000;
    if (i > 0) {
      EXPECT_GT(a.page, last[t]) << "stripe order broken";
    }
    last[t] = a.page;
  }
}

TEST(BatchedAccessBufferTest, SkipNonResidentDropsAreCountedNotApplied) {
  // Policy that only considers even pages resident; a skip_non_resident
  // drain must apply those and count (never apply) the rest.
  class EvenResidentPolicy final : public LoggingPolicy {
   public:
    bool IsResident(PageId p) const override { return p % 2 == 0; }
  };

  AccessBuffer buffer(/*capacity=*/8, /*stripes=*/1);
  for (PageId p = 0; p < 6; ++p) {
    ASSERT_TRUE(buffer.TryPush({p, 0, AccessType::kRead}));
  }
  EvenResidentPolicy policy;
  size_t dropped = 0;
  EXPECT_EQ(buffer.Drain(policy, /*skip_non_resident=*/true, &dropped), 3u);
  EXPECT_EQ(dropped, 3u);
  EXPECT_EQ(buffer.stats().dropped_records, 3u);
  ASSERT_EQ(policy.applied().size(), 3u);
  for (const auto& a : policy.applied()) {
    EXPECT_EQ(a.page % 2, 0u);  // Odd pages were dropped, in FIFO order.
  }
  // Drops do not accumulate across drains that skip nothing.
  ASSERT_TRUE(buffer.TryPush({2, 0, AccessType::kRead}));
  dropped = 0;
  EXPECT_EQ(buffer.Drain(policy, /*skip_non_resident=*/true, &dropped), 1u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(buffer.stats().dropped_records, 3u);
}

TEST(BatchedAccessBufferTest, WraparoundHammerKeepsExactTotalsAndFifo) {
  // 8 producers hammer one tiny stripe — the ring wraps thousands of
  // times, exercising every arm of the cell sequence protocol (claim CAS,
  // publish, consume, seal) under maximum ticket contention — while a
  // consumer drains concurrently. Afterwards: every pushed record was
  // applied exactly once, and each thread's records came out in the order
  // it pushed them (per-thread FIFO through the ring).
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  constexpr PageId kThreadBase = 1u << 20;  // page = base*t + sequence.
  AccessBuffer buffer(/*capacity=*/8, /*stripes=*/1);
  LoggingPolicy policy;
  std::mutex drain_latch;  // Stands in for the pool latch: single consumer.

  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> guard(drain_latch);
      buffer.Drain(policy);
    }
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        PageId p = kThreadBase * static_cast<PageId>(t) + i;
        // A refusal (stripe full / cell mid-lap) is the pool's cue to
        // take the latch and drain; do the same here, then retry the
        // push so the record still flows through the ring in order.
        while (!buffer.TryPush({p, static_cast<uint32_t>(t),
                                AccessType::kRead})) {
          std::lock_guard<std::mutex> guard(drain_latch);
          buffer.Drain(policy);
        }
      }
    });
  }
  for (auto& w : producers) w.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  buffer.Drain(policy);  // Collect anything after the consumer's last lap.

  ASSERT_EQ(policy.applied().size(), kThreads * kPerThread);
  std::vector<uint64_t> next(kThreads, 0);
  for (const auto& a : policy.applied()) {
    int t = static_cast<int>(a.page / kThreadBase);
    uint64_t i = a.page % kThreadBase;
    ASSERT_EQ(i, next[t]) << "thread " << t << " order broken";
    ++next[t];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(next[t], kPerThread);
  EXPECT_EQ(buffer.stats().drained_records, kThreads * kPerThread);
  EXPECT_EQ(buffer.stats().dropped_records, 0u);
}

// ---------------------------------------------------------------------------
// Differential tests: batched vs unbatched over the shared deterministic
// 20k-op mixed workload (differential_harness.h).

using difftest::AllocateDb;
using difftest::DiffScenarioResult;
using difftest::ExpectScenarioEq;
using difftest::RunDiffScenario;
using difftest::kDiffDbPages;

class BatchedDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchedDifferentialTest, BatchedPoolIsByteIdenticalToUnbatched) {
  const size_t batch_capacity = GetParam();

  DiffScenarioResult baseline = RunDiffScenario({});  // batch_capacity = 0.
  DiffScenarioResult batched =
      RunDiffScenario({.batch_capacity = batch_capacity});

  // Counters, eviction *sequence*, resident set, disk images and policy
  // clock: byte for byte. Drains preserve reference order, so batching
  // must not change replacement behaviour when there is no concurrency.
  ExpectScenarioEq(baseline, batched);
  EXPECT_GT(batched.stats.hits, 0u);
  EXPECT_GT(batched.stats.evictions, 0u);
  // Single-threaded there are no publish gaps: every eviction point
  // drains first, so no buffered record can outlive its page.
  EXPECT_EQ(batched.stats.access_drops, 0u);
  // Closed-form clock: every reference was applied exactly once — one
  // tick per fetch, per initial NewPage admission, and per delete/new
  // cycle's replacement admission.
  EXPECT_EQ(baseline.clocks[0],
            baseline.stats.hits + baseline.stats.misses + kDiffDbPages +
                static_cast<uint64_t>(baseline.delete_cycles));
}

INSTANTIATE_TEST_SUITE_P(CapacityOneAndSixtyFour, BatchedDifferentialTest,
                         ::testing::Values<size_t>(1, 64));

// ---------------------------------------------------------------------------
// Multi-threaded churn (run under TSan/ASan by the sanitizer CI matrix).

class BatchedAccessConcurrencyTest
    : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchedAccessConcurrencyTest, NoReferenceIsLostUnderChurn) {
  const size_t batch_capacity = GetParam();
  constexpr size_t kFrames = 256;
  constexpr size_t kShards = 4;
  constexpr uint64_t kChurnDbPages = 1024;
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 5000;

  SimDiskManager disk;
  auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
  ASSERT_TRUE(factory.ok());
  ShardedBufferPool pool(kFrames, kShards, &disk, *factory,
                         BufferPoolOptions{.batch_capacity = batch_capacity,
                                           .batch_stripes = 4});

  std::vector<PageId> pages = AllocateDb(pool, kChurnDbPages);
  std::vector<uint64_t> admits_per_shard(kShards, 0);
  for (PageId p : pages) ++admits_per_shard[pool.ShardOf(p)];

  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      RecursiveSkewDistribution dist(0.8, 0.2, kChurnDbPages);
      RandomEngine rng(0xABCD + static_cast<uint64_t>(t));
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        PageId p = pages[dist.Sample(rng) - 1];
        bool write = rng.NextBernoulli(0.1);
        auto page = pool.FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        if (!page.ok()) {
          ++failures;
          continue;
        }
        if (i % 1024 == 0) (void)pool.FlushPage(p);
        (void)pool.UnpinPage(p, false);
        if (i % 4096 == 0) (void)pool.stats();  // Concurrent drains.
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0u);  // 64 frames/shard, <= 8 pinned at once.

  // Exact accounting: every fetch resolved to exactly one hit or miss.
  BufferPoolStats total = pool.stats();  // Draining observation point.
  EXPECT_EQ(total.hits + total.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);

  // No lost references: per shard, the LRU-K logical clock (one tick per
  // RecordAccess/Admit) plus the records the shard counted as dropped
  // (buffered past their page's eviction — possible now that publish is
  // lock-free and a gap can stall a record) must equal that shard's
  // fetches plus its share of the initial admissions. Every buffered
  // record was applied or accounted, never silently lost.
  for (size_t i = 0; i < pool.shard_count(); ++i) {
    BufferPoolStats s = pool.shard(i).stats();
    const auto& policy =
        static_cast<const LruKPolicy&>(pool.shard(i).policy());
    EXPECT_EQ(policy.CurrentTime() + s.access_drops,
              s.hits + s.misses + admits_per_shard[i])
        << "shard " << i;
  }

  ASSERT_TRUE(pool.FlushAll().ok());
}

INSTANTIATE_TEST_SUITE_P(CapacityEightAndSixtyFour,
                         BatchedAccessConcurrencyTest,
                         ::testing::Values<size_t>(8, 64));

}  // namespace
}  // namespace lruk
