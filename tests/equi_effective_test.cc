#include "sim/equi_effective.h"

#include "gtest/gtest.h"
#include "workload/two_pool.h"
#include "workload/zipfian_workload.h"

namespace lruk {
namespace {

SimOptions FastSim(size_t capacity) {
  SimOptions sim;
  sim.capacity = capacity;
  sim.warmup_refs = 2000;
  sim.measure_refs = 8000;
  sim.track_classes = false;
  return sim;
}

TEST(FindCapacityTest, TargetZeroIsSatisfiedImmediately) {
  ZipfianOptions zopt;
  zopt.num_pages = 200;
  ZipfianWorkload gen(zopt);
  auto capacity =
      FindCapacityForHitRatio(PolicyConfig::Lru(), gen, FastSim(1), 0.0);
  ASSERT_TRUE(capacity.ok());
  EXPECT_DOUBLE_EQ(*capacity, 1.0);
}

TEST(FindCapacityTest, FindsCapacityReachingTarget) {
  ZipfianOptions zopt;
  zopt.num_pages = 200;
  ZipfianWorkload gen(zopt);
  SimOptions sim = FastSim(1);
  auto capacity =
      FindCapacityForHitRatio(PolicyConfig::Lru(), gen, sim, 0.5);
  ASSERT_TRUE(capacity.ok());
  // Verify: the found capacity (rounded up) really reaches ~0.5.
  sim.capacity = static_cast<size_t>(*capacity + 1.0);
  auto at = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
  ASSERT_TRUE(at.ok());
  EXPECT_GE(at->HitRatio(), 0.49);
}

TEST(FindCapacityTest, UnreachableTargetReturnsMax) {
  ZipfianOptions zopt;
  zopt.num_pages = 200;
  ZipfianWorkload gen(zopt);
  EquiEffectiveOptions options;
  options.max_capacity = 16;
  auto capacity = FindCapacityForHitRatio(PolicyConfig::Lru(), gen,
                                          FastSim(1), 0.99, options);
  ASSERT_TRUE(capacity.ok());
  EXPECT_DOUBLE_EQ(*capacity, 16.0);
}

TEST(EquiEffectiveRatioTest, Lru2BeatsLru1OnTwoPool) {
  // The paper's headline claim: on the two-pool workload B(1)/B(2) is
  // roughly 2-3x at small buffer sizes.
  TwoPoolOptions topt;
  topt.n1 = 50;
  topt.n2 = 5000;
  TwoPoolWorkload gen(topt);
  SimOptions sim = FastSim(40);
  sim.warmup_refs = 5000;
  sim.measure_refs = 15000;
  auto ratio = EquiEffectiveRatio(PolicyConfig::Lru(), PolicyConfig::LruK(2),
                                  gen, sim);
  ASSERT_TRUE(ratio.ok()) << ratio.status().ToString();
  EXPECT_GT(*ratio, 1.5);
  EXPECT_LT(*ratio, 8.0);
}

TEST(InterpolateCurveTest, ExactPointsAndMidpoints) {
  std::vector<size_t> caps = {10, 20, 40};
  std::vector<double> ratios = {0.1, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(*InterpolateCapacityForHitRatio(caps, ratios, 0.3), 20.0);
  EXPECT_DOUBLE_EQ(*InterpolateCapacityForHitRatio(caps, ratios, 0.2), 15.0);
  EXPECT_DOUBLE_EQ(*InterpolateCapacityForHitRatio(caps, ratios, 0.4), 30.0);
}

TEST(InterpolateCurveTest, BelowAndAboveRange) {
  std::vector<size_t> caps = {10, 20};
  std::vector<double> ratios = {0.1, 0.3};
  // Already satisfied at the smallest capacity.
  EXPECT_DOUBLE_EQ(*InterpolateCapacityForHitRatio(caps, ratios, 0.05),
                   10.0);
  // Unreachable on the measured curve.
  EXPECT_FALSE(InterpolateCapacityForHitRatio(caps, ratios, 0.9).has_value());
}

TEST(InterpolateCurveTest, ToleratesFlatAndDippingSegments) {
  std::vector<size_t> caps = {10, 20, 30, 40};
  std::vector<double> ratios = {0.1, 0.3, 0.29, 0.6};  // Noise dip at 30.
  // First crossing of 0.3 is exactly at capacity 20.
  EXPECT_DOUBLE_EQ(*InterpolateCapacityForHitRatio(caps, ratios, 0.3), 20.0);
  // 0.5 is crossed between 30 and 40.
  double c = *InterpolateCapacityForHitRatio(caps, ratios, 0.5);
  EXPECT_GT(c, 30.0);
  EXPECT_LT(c, 40.0);
}

TEST(EquiEffectiveRatioTest, PolicyAgainstItselfIsAboutOne) {
  ZipfianOptions zopt;
  zopt.num_pages = 300;
  ZipfianWorkload gen(zopt);
  auto ratio = EquiEffectiveRatio(PolicyConfig::Lru(), PolicyConfig::Lru(),
                                  gen, FastSim(50));
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 1.0, 0.15);
}

}  // namespace
}  // namespace lruk
