// Simulator tests: methodology (warmup vs measurement), hit accounting,
// class statistics, oracle-context plumbing, and the qualitative hit-ratio
// orderings the paper's analysis predicts.

#include <cstdio>
#include <memory>

#include "core/lru.h"
#include "gtest/gtest.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "workload/sequential.h"
#include "workload/two_pool.h"
#include "workload/uniform_workload.h"
#include "workload/zipfian_workload.h"

namespace lruk {
namespace {

TEST(SimulatorTest, AllHitsWhenBufferHoldsEverything) {
  UniformOptions uopt;
  uopt.num_pages = 10;
  UniformWorkload gen(uopt);
  LruPolicy lru;
  SimOptions sim;
  sim.capacity = 10;
  sim.warmup_refs = 100;  // Enough to fault all 10 pages in.
  sim.measure_refs = 1000;
  SimResult result = RunSimulation(lru, gen, sim);
  EXPECT_EQ(result.misses, 0u);
  EXPECT_DOUBLE_EQ(result.HitRatio(), 1.0);
  EXPECT_EQ(result.evictions, 0u);
}

TEST(SimulatorTest, SequentialScanWithLruNeverHits) {
  // The classic LRU pathology: a cyclic scan one page larger than the
  // buffer yields a 0% hit ratio.
  SequentialScanOptions sopt;
  sopt.num_pages = 101;
  SequentialScanWorkload gen(sopt);
  LruPolicy lru;
  SimOptions sim;
  sim.capacity = 100;
  sim.warmup_refs = 500;
  sim.measure_refs = 1000;
  SimResult result = RunSimulation(lru, gen, sim);
  EXPECT_EQ(result.hits, 0u);
  EXPECT_DOUBLE_EQ(result.HitRatio(), 0.0);
}

TEST(SimulatorTest, MeasurementExcludesWarmup) {
  UniformOptions uopt;
  uopt.num_pages = 10;
  UniformWorkload gen(uopt);
  LruPolicy lru;
  SimOptions sim;
  sim.capacity = 10;
  sim.warmup_refs = 0;  // Cold start: the compulsory misses are measured.
  sim.measure_refs = 1000;
  SimResult cold = RunSimulation(lru, gen, sim);
  EXPECT_GE(cold.misses, 10u);  // At least the compulsory misses.
  EXPECT_EQ(cold.hits + cold.misses, 1000u);
}

TEST(SimulatorTest, ClassStatsPartitionMeasuredReferences) {
  TwoPoolOptions topt;
  topt.n1 = 10;
  topt.n2 = 100;
  TwoPoolWorkload gen(topt);
  LruPolicy lru;
  SimOptions sim;
  sim.capacity = 20;
  sim.warmup_refs = 200;
  sim.measure_refs = 2000;
  SimResult result = RunSimulation(lru, gen, sim);
  ASSERT_EQ(result.classes.size(), 2u);
  EXPECT_EQ(result.classes[0].name, "pool1(hot)");
  EXPECT_EQ(result.classes[0].refs + result.classes[1].refs, 2000u);
  EXPECT_EQ(result.classes[0].hits + result.classes[1].hits, result.hits);
  // Strict alternation: exactly half the references per pool.
  EXPECT_EQ(result.classes[0].refs, 1000u);
  // Final composition covers the full buffer.
  EXPECT_EQ(result.classes[0].resident_at_end +
                result.classes[1].resident_at_end,
            20u);
}

TEST(SimulatorTest, SimulatePolicyIsDeterministic) {
  ZipfianOptions zopt;
  zopt.num_pages = 200;
  ZipfianWorkload gen(zopt);
  SimOptions sim;
  sim.capacity = 30;
  sim.warmup_refs = 1000;
  sim.measure_refs = 4000;
  auto a = SimulatePolicy(PolicyConfig::LruK(2), gen, sim);
  auto b = SimulatePolicy(PolicyConfig::LruK(2), gen, sim);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->hits, b->hits);
  EXPECT_EQ(a->misses, b->misses);
  EXPECT_EQ(a->evictions, b->evictions);
}

TEST(SimulatorTest, A0ContextResolvedFromWorkload) {
  TwoPoolOptions topt;
  topt.n1 = 20;
  topt.n2 = 200;
  TwoPoolWorkload gen(topt);
  SimOptions sim;
  sim.capacity = 25;
  sim.warmup_refs = 500;
  sim.measure_refs = 2000;
  auto a0 = SimulatePolicy(PolicyConfig::A0(), gen, sim);
  ASSERT_TRUE(a0.ok()) << a0.status().ToString();
  EXPECT_EQ(a0->policy_name, "A0");
  // A0 keeps all 20 hot pages (plus 5 cold): hot hits ~ 50% of refs.
  EXPECT_GT(a0->HitRatio(), 0.45);
}

TEST(SimulatorTest, A0FailsOnNonStationaryWorkload) {
  MixedScanOptions mopt;
  MixedScanWorkload gen(mopt);
  SimOptions sim;
  sim.capacity = 10;
  auto a0 = SimulatePolicy(PolicyConfig::A0(), gen, sim);
  ASSERT_FALSE(a0.ok());
  EXPECT_EQ(a0.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimulatorTest, BeladyContextMaterializesTrace) {
  ZipfianOptions zopt;
  zopt.num_pages = 100;
  ZipfianWorkload gen(zopt);
  SimOptions sim;
  sim.capacity = 20;
  sim.warmup_refs = 500;
  sim.measure_refs = 2000;
  auto b0 = SimulatePolicy(PolicyConfig::Belady(), gen, sim);
  ASSERT_TRUE(b0.ok()) << b0.status().ToString();
  auto lru = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
  ASSERT_TRUE(lru.ok());
  // The clairvoyant optimum bounds every online policy.
  EXPECT_GE(b0->HitRatio(), lru->HitRatio());
}

TEST(SimulatorTest, DominanceOrderingOnSkewedWorkload) {
  // On the two-pool workload the paper's ordering must emerge:
  // LRU-1 <= LRU-2 <= A0 (within noise, strict between LRU-1 and LRU-2).
  TwoPoolOptions topt;
  topt.n1 = 50;
  topt.n2 = 5000;
  TwoPoolWorkload gen(topt);
  SimOptions sim;
  sim.capacity = 60;
  sim.warmup_refs = 5000;
  sim.measure_refs = 20000;
  auto lru1 = SimulatePolicy(PolicyConfig::Lru(), gen, sim);
  auto lru2 = SimulatePolicy(PolicyConfig::LruK(2), gen, sim);
  auto a0 = SimulatePolicy(PolicyConfig::A0(), gen, sim);
  ASSERT_TRUE(lru1.ok() && lru2.ok() && a0.ok());
  EXPECT_LT(lru1->HitRatio() + 0.05, lru2->HitRatio());
  EXPECT_LE(lru2->HitRatio(), a0->HitRatio() + 0.02);
}

TEST(SweepTest, GridShapeAndMonotonicity) {
  ZipfianOptions zopt;
  zopt.num_pages = 300;
  ZipfianWorkload gen(zopt);
  SweepSpec spec;
  spec.capacities = {10, 40, 160};
  spec.policies = {PolicyConfig::Lru(), PolicyConfig::LruK(2)};
  spec.sim.warmup_refs = 2000;
  spec.sim.measure_refs = 8000;
  auto sweep = RunSweep(spec, gen);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  ASSERT_EQ(sweep->capacities.size(), 3u);
  ASSERT_EQ(sweep->policy_names.size(), 2u);
  EXPECT_EQ(sweep->policy_names[0], "LRU");
  EXPECT_EQ(sweep->policy_names[1], "LRU-2");
  // Hit ratio grows with capacity for both policies.
  for (size_t j = 0; j < 2; ++j) {
    EXPECT_LE(sweep->HitRatio(0, j), sweep->HitRatio(1, j) + 0.02);
    EXPECT_LE(sweep->HitRatio(1, j), sweep->HitRatio(2, j) + 0.02);
  }
}

TEST(AsciiTableTest, FormatsAlignedColumns) {
  AsciiTable table({"B", "LRU-1", "LRU-2"});
  table.AddRow({"60", AsciiTable::Fixed(0.14, 2), AsciiTable::Fixed(0.291, 3)});
  table.AddRow({AsciiTable::Integer(100), "0.22", "0.459"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("LRU-1"), std::string::npos);
  EXPECT_NE(out.find("0.291"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(AsciiTableTest, CsvRendering) {
  AsciiTable table({"a", "b"});
  table.AddRow({"1", "plain"});
  table.AddRow({"with,comma", "with\"quote"});
  std::string csv = table.ToCsv();
  EXPECT_EQ(csv,
            "a,b\n"
            "1,plain\n"
            "\"with,comma\",\"with\"\"quote\"\n");
}

TEST(AsciiTableTest, CsvFileRoundTrip) {
  AsciiTable table({"x"});
  table.AddRow({"42"});
  std::string path = ::testing::TempDir() + "/lruk_table.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "x\n42\n");
  std::remove(path.c_str());
}

TEST(AsciiTableTest, ShortRowsRenderEmptyCells) {
  AsciiTable table({"a", "b"});
  table.AddRow({"1"});
  EXPECT_NE(table.ToString().find('1'), std::string::npos);
}

}  // namespace
}  // namespace lruk
