#include "core/policy_factory.h"

#include <string>

#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(PolicyFactoryTest, BuildsEveryContextFreePolicy) {
  PolicyContext context;
  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kLruK, PolicyKind::kLfu,
        PolicyKind::kFifo, PolicyKind::kClock, PolicyKind::kGClock,
        PolicyKind::kLrd, PolicyKind::kMru, PolicyKind::kRandom}) {
    PolicyConfig config;
    config.kind = kind;
    auto policy = MakePolicy(config, context);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    EXPECT_FALSE((*policy)->Name().empty());
  }
}

TEST(PolicyFactoryTest, LruKConvenienceSetsOptions) {
  PolicyConfig config = PolicyConfig::LruK(3, /*crp=*/7, /*rip=*/99);
  EXPECT_EQ(config.lru_k.k, 3);
  EXPECT_EQ(config.lru_k.correlated_reference_period, 7u);
  EXPECT_EQ(config.lru_k.retained_information_period, 99u);
  auto policy = MakePolicy(config, PolicyContext{});
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ((*policy)->Name(), "LRU-3");
}

TEST(PolicyFactoryTest, TwoQTakesCapacityFromContext) {
  PolicyContext context;
  context.capacity = 64;
  auto policy = MakePolicy(PolicyConfig::TwoQ(), context);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_EQ((*policy)->Name(), "2Q");
}

TEST(PolicyFactoryTest, TwoQWithoutCapacityFails) {
  auto policy = MakePolicy(PolicyConfig::TwoQ(), PolicyContext{});
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolicyFactoryTest, ArcTakesCapacityFromContext) {
  auto missing = MakePolicy(PolicyConfig::Arc(), PolicyContext{});
  EXPECT_FALSE(missing.ok());
  PolicyContext context;
  context.capacity = 64;
  auto ok = MakePolicy(PolicyConfig::Arc(), context);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)->Name(), "ARC");
}

TEST(PolicyFactoryTest, DomainSeparationNeedsClassifier) {
  PolicyConfig config = PolicyConfig::Of(PolicyKind::kDomainSeparation);
  auto missing = MakePolicy(config, PolicyContext{});
  EXPECT_FALSE(missing.ok());
  config.domain_separation.classifier = [](PageId) { return 0u; };
  config.domain_separation.domain_capacities = {8};
  auto ok = MakePolicy(config, PolicyContext{});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)->Name(), "DOMAIN-SEP");
}

TEST(PolicyFactoryTest, A0RequiresProbabilities) {
  auto missing = MakePolicy(PolicyConfig::A0(), PolicyContext{});
  EXPECT_FALSE(missing.ok());
  PolicyContext context;
  context.probabilities = {0.5, 0.5};
  auto ok = MakePolicy(PolicyConfig::A0(), context);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->Name(), "A0");
}

TEST(PolicyFactoryTest, BeladyRequiresTrace) {
  auto missing = MakePolicy(PolicyConfig::Belady(), PolicyContext{});
  EXPECT_FALSE(missing.ok());
  PolicyContext context;
  context.trace = {1, 2, 3};
  auto ok = MakePolicy(PolicyConfig::Belady(), context);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->Name(), "B0");
}

TEST(ParsePolicyNameTest, RecognizesCanonicalNames) {
  EXPECT_EQ(ParsePolicyName("LRU")->kind, PolicyKind::kLru);
  EXPECT_EQ(ParsePolicyName("lru")->kind, PolicyKind::kLru);
  EXPECT_EQ(ParsePolicyName("LRU-1")->kind, PolicyKind::kLru);
  EXPECT_EQ(ParsePolicyName("LRU-2")->kind, PolicyKind::kLruK);
  EXPECT_EQ(ParsePolicyName("LRU-2")->lru_k.k, 2);
  EXPECT_EQ(ParsePolicyName("lru-3")->lru_k.k, 3);
  // K is capped by the inline history storage (kMaxHistoryK).
  EXPECT_EQ(ParsePolicyName("LRU-8")->lru_k.k, kMaxHistoryK);
  EXPECT_EQ(ParsePolicyName("LFU")->kind, PolicyKind::kLfu);
  EXPECT_EQ(ParsePolicyName("FIFO")->kind, PolicyKind::kFifo);
  EXPECT_EQ(ParsePolicyName("CLOCK")->kind, PolicyKind::kClock);
  EXPECT_EQ(ParsePolicyName("GCLOCK")->kind, PolicyKind::kGClock);
  EXPECT_EQ(ParsePolicyName("LRD")->kind, PolicyKind::kLrd);
  EXPECT_EQ(ParsePolicyName("LRD-V2")->lrd.aging_interval, 10000u);
  EXPECT_EQ(ParsePolicyName("MRU")->kind, PolicyKind::kMru);
  EXPECT_EQ(ParsePolicyName("RANDOM")->kind, PolicyKind::kRandom);
  EXPECT_EQ(ParsePolicyName("2Q")->kind, PolicyKind::kTwoQ);
  EXPECT_EQ(ParsePolicyName("ARC")->kind, PolicyKind::kArc);
  EXPECT_EQ(ParsePolicyName("arc")->kind, PolicyKind::kArc);
  EXPECT_EQ(ParsePolicyName("A0")->kind, PolicyKind::kA0);
  EXPECT_EQ(ParsePolicyName("B0")->kind, PolicyKind::kBelady);
  EXPECT_EQ(ParsePolicyName("belady")->kind, PolicyKind::kBelady);
  EXPECT_EQ(ParsePolicyName("OPT")->kind, PolicyKind::kBelady);
}

TEST(ParsePolicyNameTest, RejectsGarbage) {
  EXPECT_FALSE(ParsePolicyName("").has_value());
  EXPECT_FALSE(ParsePolicyName("LRU-").has_value());
  EXPECT_FALSE(ParsePolicyName("LRU-x").has_value());
  EXPECT_FALSE(ParsePolicyName("LRU-0").has_value());
  // Beyond the inline-history bound.
  EXPECT_FALSE(ParsePolicyName("LRU-9").has_value());
  EXPECT_FALSE(ParsePolicyName("LRU-10").has_value());
  EXPECT_FALSE(ParsePolicyName("LRU-999").has_value());
}

}  // namespace
}  // namespace lruk
