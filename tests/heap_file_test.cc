#include "heap/heap_file.h"

#include <map>
#include <memory>
#include <string>

#include "bufferpool/buffer_pool.h"
#include "core/lru.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

namespace lruk {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(64, &disk_, std::make_unique<LruPolicy>()) {}

  SimDiskManager disk_;
  BufferPool pool_;
};

TEST_F(HeapFileTest, InsertGetRoundTrip) {
  HeapFile heap(&pool_);
  auto rid = heap.Insert("hello records");
  ASSERT_TRUE(rid.ok()) << rid.status().ToString();
  auto got = heap.Get(*rid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello records");
  EXPECT_EQ(heap.Size(), 1u);
}

TEST_F(HeapFileTest, RejectsBadSizes) {
  HeapFile heap(&pool_);
  EXPECT_FALSE(heap.Insert("").ok());
  std::string huge(HeapFile::MaxRecordSize() + 1, 'x');
  EXPECT_FALSE(heap.Insert(huge).ok());
  std::string max(HeapFile::MaxRecordSize(), 'y');
  EXPECT_TRUE(heap.Insert(max).ok());
}

TEST_F(HeapFileTest, ChainsAcrossPages) {
  HeapFile heap(&pool_);
  // 2000-byte customer rows (Example 1.1): two per 4 KiB page.
  std::vector<RecordId> rids;
  for (int i = 0; i < 100; ++i) {
    std::string row(2000, static_cast<char>('a' + i % 26));
    auto rid = heap.Insert(row);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  auto pages = heap.CountPages();
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(*pages, 50u);  // Exactly two rows per page.
  for (int i = 0; i < 100; ++i) {
    auto got = heap.Get(rids[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)[0], static_cast<char>('a' + i % 26));
    EXPECT_EQ(got->size(), 2000u);
  }
}

TEST_F(HeapFileTest, DeleteTombstonesAndReusesSlot) {
  HeapFile heap(&pool_);
  auto a = heap.Insert("aaaa");
  auto b = heap.Insert("bbbb");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(heap.Delete(*a).ok());
  EXPECT_FALSE(heap.Get(*a).ok());
  EXPECT_EQ(heap.Size(), 1u);
  EXPECT_EQ(heap.Delete(*a).code(), StatusCode::kNotFound);

  auto c = heap.Insert("cccc");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->page, a->page);
  EXPECT_EQ(c->slot, a->slot);  // Tombstoned slot id reused.
  EXPECT_EQ(*heap.Get(*c), "cccc");
  EXPECT_EQ(*heap.Get(*b), "bbbb");
}

TEST_F(HeapFileTest, CompactionReclaimsDeletedSpace) {
  HeapFile heap(&pool_);
  // Fill one page with four ~1000-byte records, delete two, then insert a
  // 1900-byte record: only compaction makes it fit in the same page.
  std::vector<RecordId> rids;
  for (int i = 0; i < 4; ++i) {
    auto rid = heap.Insert(std::string(1000, static_cast<char>('0' + i)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  ASSERT_EQ(*heap.CountPages(), 1u);
  ASSERT_TRUE(heap.Delete(rids[0]).ok());
  ASSERT_TRUE(heap.Delete(rids[2]).ok());
  auto big = heap.Insert(std::string(1900, 'Z'));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*heap.CountPages(), 1u) << "compaction should have made room";
  EXPECT_EQ(heap.Get(*big)->size(), 1900u);
  EXPECT_EQ((*heap.Get(rids[1]))[0], '1');
  EXPECT_EQ((*heap.Get(rids[3]))[0], '3');
}

TEST_F(HeapFileTest, UpdateInPlaceAndGrowing) {
  HeapFile heap(&pool_);
  auto rid = heap.Insert("short");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(heap.Update(*rid, "tiny").ok());  // Shrink in place.
  EXPECT_EQ(*heap.Get(*rid), "tiny");
  ASSERT_TRUE(heap.Update(*rid, std::string(500, 'g')).ok());  // Grow.
  EXPECT_EQ(heap.Get(*rid)->size(), 500u);
  EXPECT_EQ(heap.Size(), 1u);
  // Growing beyond the page fails cleanly and preserves the record.
  std::string too_big(HeapFile::MaxRecordSize(), 'x');
  auto filler = heap.Insert(std::string(3000, 'f'));
  (void)filler;
  Status status = heap.Update(*rid, too_big);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(heap.Get(*rid)->size(), 500u);
}

TEST_F(HeapFileTest, ScanVisitsLiveRecordsInChainOrder) {
  HeapFile heap(&pool_);
  std::vector<RecordId> rids;
  for (int i = 0; i < 20; ++i) {
    auto rid = heap.Insert(std::string(700, static_cast<char>('A' + i)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  ASSERT_TRUE(heap.Delete(rids[3]).ok());
  ASSERT_TRUE(heap.Delete(rids[7]).ok());

  int seen = 0;
  char last = 0;
  ASSERT_TRUE(heap.Scan([&](RecordId rid, std::string_view record) {
                    EXPECT_NE(rid, rids[3]);
                    EXPECT_NE(rid, rids[7]);
                    EXPECT_GE(record[0], last);  // Chain order ascending.
                    last = record[0];
                    ++seen;
                    return true;
                  }).ok());
  EXPECT_EQ(seen, 18);

  // Early stop.
  seen = 0;
  ASSERT_TRUE(heap.Scan([&](RecordId, std::string_view) {
                    return ++seen < 5;
                  }).ok());
  EXPECT_EQ(seen, 5);
}

TEST_F(HeapFileTest, ReattachRecoversSizeAndTail) {
  PageId head;
  RecordId keep;
  {
    HeapFile heap(&pool_);
    for (int i = 0; i < 10; ++i) {
      auto rid = heap.Insert(std::string(1500, 'r'));
      ASSERT_TRUE(rid.ok());
      if (i == 4) keep = *rid;
    }
    ASSERT_TRUE(heap.Delete(keep).ok());
    head = heap.HeadPageId();
  }
  HeapFile reattached(&pool_, head);
  EXPECT_EQ(reattached.Size(), 9u);
  EXPECT_FALSE(reattached.Get(keep).ok());
  // Inserting still works and lands on the tail.
  auto rid = reattached.Insert("after reattach");
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*reattached.Get(*rid), "after reattach");
}

TEST_F(HeapFileTest, RandomizedAgainstModel) {
  SimDiskManager disk;
  BufferPool small_pool(8, &disk, std::make_unique<LruKPolicy>(LruKOptions{}));
  HeapFile heap(&small_pool);
  std::map<uint64_t, std::string> model;  // Packed rid -> payload.
  RandomEngine rng(31415);

  for (int step = 0; step < 2000; ++step) {
    double action = rng.NextDouble();
    if (action < 0.5) {
      std::string payload(1 + rng.NextBounded(600), 'a');
      for (auto& c : payload) {
        c = static_cast<char>('a' + rng.NextBounded(26));
      }
      auto rid = heap.Insert(payload);
      ASSERT_TRUE(rid.ok());
      model[rid->Pack()] = payload;
    } else if (action < 0.75 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      ASSERT_TRUE(heap.Delete(RecordId::Unpack(it->first)).ok());
      model.erase(it);
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      auto got = heap.Get(RecordId::Unpack(it->first));
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, it->second);
    }
    ASSERT_EQ(heap.Size(), model.size());
  }
  // Full verification by scan.
  uint64_t live = 0;
  ASSERT_TRUE(heap.Scan([&](RecordId rid, std::string_view record) {
                    auto it = model.find(rid.Pack());
                    EXPECT_NE(it, model.end());
                    if (it != model.end()) {
                      EXPECT_EQ(record, it->second);
                    }
                    ++live;
                    return true;
                  }).ok());
  EXPECT_EQ(live, model.size());
}

TEST(RecordIdTest, PackUnpackRoundTrip) {
  RecordId rid{123456, 789};
  RecordId back = RecordId::Unpack(rid.Pack());
  EXPECT_EQ(back, rid);
}

}  // namespace
}  // namespace lruk
