#include "sim/trace_analysis.h"

#include <vector>

#include "gtest/gtest.h"
#include "workload/zipfian_workload.h"

namespace lruk {
namespace {

std::vector<PageRef> Refs(std::initializer_list<PageId> pages) {
  std::vector<PageRef> out;
  for (PageId p : pages) out.push_back({p, AccessType::kRead, 0});
  return out;
}

TEST(ProfileTraceTest, CountsAndSorts) {
  auto refs = Refs({1, 2, 1, 3, 1, 2});
  refs[1].type = AccessType::kWrite;
  TraceProfile profile = ProfileTrace(refs);
  EXPECT_EQ(profile.total_references, 6u);
  EXPECT_EQ(profile.distinct_pages, 3u);
  EXPECT_EQ(profile.write_references, 1u);
  ASSERT_EQ(profile.sorted_page_counts.size(), 3u);
  EXPECT_EQ(profile.sorted_page_counts[0], 3u);  // Page 1.
  EXPECT_EQ(profile.sorted_page_counts[1], 2u);  // Page 2.
  EXPECT_EQ(profile.sorted_page_counts[2], 1u);  // Page 3.
}

TEST(AccessSkewTest, ExactSmallCase) {
  // Page 1: 6 refs, pages 2..5: 1 ref each. 60% of refs -> 1 of 5 pages.
  auto refs = Refs({1, 1, 1, 1, 1, 1, 2, 3, 4, 5});
  TraceProfile profile = ProfileTrace(refs);
  EXPECT_DOUBLE_EQ(AccessSkew(profile, 0.60), 0.2);
  // 70% needs the hot page plus one more.
  EXPECT_DOUBLE_EQ(AccessSkew(profile, 0.70), 0.4);
  EXPECT_DOUBLE_EQ(AccessSkew(profile, 1.00), 1.0);
  EXPECT_DOUBLE_EQ(AccessSkew(profile, 0.0), 0.0);
}

TEST(AccessSkewTest, MatchesZipfianConstruction) {
  // The 80-20 workload must measure as ~20% of pages taking 80% of refs.
  ZipfianOptions options;
  options.num_pages = 1000;
  options.seed = 5;
  ZipfianWorkload gen(options);
  auto refs = MaterializeRefs(gen, 200000);
  TraceProfile profile = ProfileTrace(refs);
  EXPECT_NEAR(AccessSkew(profile, 0.80), 0.20, 0.03);
}

TEST(PagesReReferencedWithinTest, HorizonBoundary) {
  // Page 7 recurs with gap 3; page 8 with gap 5; page 9 once.
  auto refs = Refs({7, 8, 1, 7, 2, 3, 8, 9});
  EXPECT_EQ(PagesReReferencedWithin(refs, 2), 0u);
  EXPECT_EQ(PagesReReferencedWithin(refs, 3), 1u);  // Page 7.
  EXPECT_EQ(PagesReReferencedWithin(refs, 5), 2u);  // Pages 7 and 8.
  EXPECT_EQ(PagesReReferencedWithin(refs, 1000), 2u);  // 9 never recurs.
}

TEST(PagesReReferencedWithinTest, MetronomeCensusIsExact) {
  // 10 pages on a strict period of 10: every page re-references at gap 10.
  std::vector<PageRef> refs;
  for (int round = 0; round < 5; ++round) {
    for (PageId p = 0; p < 10; ++p) refs.push_back({p, AccessType::kRead, 0});
  }
  EXPECT_EQ(PagesReReferencedWithin(refs, 9), 0u);
  EXPECT_EQ(PagesReReferencedWithin(refs, 10), 10u);
}

TEST(MeanInterarrivalCensusTest, ThresholdArithmetic) {
  // Trace length 10. Horizon 5 -> need count >= 2. Horizon 2 -> count >= 5.
  auto refs = Refs({1, 1, 1, 1, 1, 2, 2, 3, 4, 5});
  TraceProfile profile = ProfileTrace(refs);
  EXPECT_EQ(PagesWithMeanInterarrivalWithin(profile, 5), 2u);  // 1 and 2.
  EXPECT_EQ(PagesWithMeanInterarrivalWithin(profile, 2), 1u);  // Only 1.
  EXPECT_EQ(PagesWithMeanInterarrivalWithin(profile, 1), 0u);  // Need 10.
  // Huge horizon: every recurring page (count >= 2) qualifies.
  EXPECT_EQ(PagesWithMeanInterarrivalWithin(profile, 1000000), 2u);
}

TEST(InterarrivalPercentilesTest, SimpleDistribution) {
  // Gaps: page 1 -> {2, 2}, page 2 -> {4}. Sorted gaps: {2, 2, 4}.
  auto refs = Refs({1, 2, 1, 9, 1, 2});
  auto pct = InterarrivalPercentiles(refs, {0, 50, 100});
  ASSERT_EQ(pct.size(), 3u);
  EXPECT_EQ(pct[0], 2u);
  EXPECT_EQ(pct[1], 2u);
  EXPECT_EQ(pct[2], 4u);
}

TEST(InterarrivalPercentilesTest, NoRepeatsGiveZeros) {
  auto refs = Refs({1, 2, 3});
  auto pct = InterarrivalPercentiles(refs, {50});
  ASSERT_EQ(pct.size(), 1u);
  EXPECT_EQ(pct[0], 0u);
}

}  // namespace
}  // namespace lruk
