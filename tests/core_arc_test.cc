#include "core/arc.h"

#include <optional>

#include "gtest/gtest.h"
#include "util/random.h"

namespace lruk {
namespace {

// Drives the standard miss protocol: PrepareAdmit + (Evict when full) +
// Admit, like the simulator does.
void Miss(ArcPolicy& arc, PageId p, size_t capacity) {
  arc.PrepareAdmit(p);
  if (arc.ResidentCount() == capacity) {
    ASSERT_TRUE(arc.Evict().has_value());
  }
  arc.Admit(p, AccessType::kRead);
}

TEST(ArcTest, NewPagesEnterT1) {
  ArcPolicy arc(4);
  Miss(arc, 1, 4);
  Miss(arc, 2, 4);
  EXPECT_EQ(arc.T1Size(), 2u);
  EXPECT_EQ(arc.T2Size(), 0u);
}

TEST(ArcTest, HitPromotesToT2) {
  ArcPolicy arc(4);
  Miss(arc, 1, 4);
  Miss(arc, 2, 4);
  arc.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(arc.T1Size(), 1u);
  EXPECT_EQ(arc.T2Size(), 1u);
  arc.RecordAccess(1, AccessType::kRead);  // T2 hit stays in T2.
  EXPECT_EQ(arc.T2Size(), 1u);
}

TEST(ArcTest, EvictionFromT1GoesToGhostB1) {
  ArcPolicy arc(3);
  Miss(arc, 1, 3);
  arc.RecordAccess(1, AccessType::kRead);  // 1 -> T2, so |T1| < c later.
  Miss(arc, 2, 3);
  Miss(arc, 3, 3);
  Miss(arc, 4, 3);  // REPLACE evicts T1's LRU (page 2) into B1.
  EXPECT_FALSE(arc.IsResident(2));
  EXPECT_TRUE(arc.InGhostB1(2));
  EXPECT_EQ(arc.B1Size(), 1u);
}

TEST(ArcTest, FullT1CaseBypassesGhost) {
  // Megiddo-Modha Case IV with |T1| = c: the T1 LRU page leaves the
  // directory entirely (B1 stays empty).
  ArcPolicy arc(3);
  Miss(arc, 1, 3);
  Miss(arc, 2, 3);
  Miss(arc, 3, 3);
  Miss(arc, 4, 3);
  EXPECT_FALSE(arc.IsResident(1));
  EXPECT_FALSE(arc.InGhostB1(1));
  EXPECT_EQ(arc.B1Size(), 0u);
}

TEST(ArcTest, GhostB1HitRaisesTargetAndPromotes) {
  ArcPolicy arc(3);
  Miss(arc, 1, 3);
  arc.RecordAccess(1, AccessType::kRead);  // 1 -> T2.
  Miss(arc, 2, 3);
  Miss(arc, 3, 3);
  Miss(arc, 4, 3);  // 2 -> B1.
  ASSERT_TRUE(arc.InGhostB1(2));
  double p_before = arc.target_p();
  Miss(arc, 2, 3);  // Refault from B1.
  EXPECT_GT(arc.target_p(), p_before);
  EXPECT_FALSE(arc.InGhostB1(2));
  EXPECT_TRUE(arc.IsResident(2));
  EXPECT_EQ(arc.T2Size(), 2u);  // Straight into the frequency side.
}

TEST(ArcTest, GhostB2HitLowersTarget) {
  ArcPolicy arc(2);
  // Build a T2 page, evict it into B2, then refault it.
  Miss(arc, 1, 2);
  arc.RecordAccess(1, AccessType::kRead);  // 1 in T2.
  Miss(arc, 2, 2);
  Miss(arc, 3, 2);  // Evict: T1 has 2; p=0 -> T1 tail (2) -> B1.
  ASSERT_TRUE(arc.InGhostB1(2));
  // Raise p via the B1 ghost so T1 is preferred later.
  Miss(arc, 2, 2);
  double p_raised = arc.target_p();
  ASSERT_GT(p_raised, 0.0);
  // Now force an eviction out of T2 (T1 is empty or within target).
  // Current state: T2 = {1, 2}. A new page evicts from T2 -> B2.
  Miss(arc, 4, 2);
  ASSERT_EQ(arc.B2Size(), 1u);
  PageId ghost2 = arc.InGhostB2(1) ? 1 : 2;
  Miss(arc, ghost2, 2);  // B2 refault lowers p.
  EXPECT_LT(arc.target_p(), p_raised);
  EXPECT_TRUE(arc.IsResident(ghost2));
}

TEST(ArcTest, GhostListsAreBounded) {
  constexpr size_t kCapacity = 8;
  ArcPolicy arc(kCapacity);
  for (PageId p = 0; p < 200; ++p) Miss(arc, p, kCapacity);
  // |T1| + |B1| <= c and total directory <= 2c.
  EXPECT_LE(arc.T1Size() + arc.B1Size(), kCapacity);
  EXPECT_LE(arc.T1Size() + arc.T2Size() + arc.B1Size() + arc.B2Size(),
            2 * kCapacity);
}

TEST(ArcTest, ScanDoesNotFlushFrequentPages) {
  constexpr size_t kCapacity = 16;
  ArcPolicy arc(kCapacity);
  // Establish a frequent working set {100..103} in T2.
  for (PageId p = 100; p < 104; ++p) Miss(arc, p, kCapacity);
  for (int round = 0; round < 3; ++round) {
    for (PageId p = 100; p < 104; ++p) {
      arc.RecordAccess(p, AccessType::kRead);
    }
  }
  ASSERT_EQ(arc.T2Size(), 4u);
  // One-touch scan of 100 cold pages.
  for (PageId p = 0; p < 100; ++p) Miss(arc, p, kCapacity);
  for (PageId p = 100; p < 104; ++p) {
    EXPECT_TRUE(arc.IsResident(p)) << "scan flushed hot page " << p;
  }
}

TEST(ArcTest, EvictWithoutHintStillWorks) {
  ArcPolicy arc(2);
  arc.Admit(1, AccessType::kRead);
  arc.Admit(2, AccessType::kRead);
  auto victim = arc.Evict();  // No PrepareAdmit: plain REPLACE.
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(arc.ResidentCount(), 1u);
}

TEST(ArcTest, PinnedPagesSurviveReplace) {
  ArcPolicy arc(3);
  Miss(arc, 1, 3);
  Miss(arc, 2, 3);
  Miss(arc, 3, 3);
  arc.SetEvictable(1, false);  // 1 is T1's LRU but pinned.
  arc.PrepareAdmit(9);
  auto victim = arc.Evict();
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(*victim, 1u);
  EXPECT_TRUE(arc.IsResident(1));
}

TEST(ArcTest, RandomizedDirectoryInvariants) {
  constexpr size_t kCapacity = 12;
  ArcPolicy arc(kCapacity);
  RandomEngine rng(88);
  for (int step = 0; step < 20000; ++step) {
    PageId p = rng.NextBounded(64);
    if (arc.IsResident(p)) {
      arc.RecordAccess(p, AccessType::kRead);
    } else {
      Miss(arc, p, kCapacity);
    }
    ASSERT_LE(arc.ResidentCount(), kCapacity);
    ASSERT_LE(arc.T1Size() + arc.B1Size(), kCapacity);
    ASSERT_LE(arc.T1Size() + arc.T2Size() + arc.B1Size() + arc.B2Size(),
              2 * kCapacity);
    ASSERT_GE(arc.target_p(), 0.0);
    ASSERT_LE(arc.target_p(), static_cast<double>(kCapacity));
  }
}

}  // namespace
}  // namespace lruk
