// The adaptive meta-policy (core/adaptive_policy.h), its spec grammar
// (core/policy_factory.h), the online CRP/RIP estimator
// (analysis/interval_estimator.h), and the MetaStats plumbing through both
// pools.
//
// Coverage layers:
//  * Ghost-exactness grid — each expert's ghost cache, fed through the
//    meta-policy, produces a victim sequence and miss count byte-identical
//    to the standalone expert driven through the same reference loop at
//    the same capacity (experts x capacities x seeds, 20k-op traces).
//  * Switch hysteresis units — a dominated incumbent is switched out; the
//    margin, the minimum-miss floor, and the cooldown each independently
//    veto the switch; identical experts never flap; switches never happen
//    inside EvictBatch (they run on reference ticks only).
//  * Restore routing — a victim nominated before an expert switch is
//    Restored into its nominating expert exactly; the others re-admit.
//  * Fixed-expert differential — `adaptive:lruk2` is byte-identical to
//    plain `lruk2` through the shared 20k-op scenario harness, across the
//    plain pool, the sharded pool, the optimistic+batched pool, and the
//    full async stack (flusher Evict/Restore peeks included).
//  * Interval-estimator units — priors until min_samples, quantiles
//    tracking the observed gap distribution, Reset.
//  * Online tuning — retunes fire, the tuned CRP/RIP are clamped and
//    applied to the live LRU-K expert, and surface in MetaStats.
//  * Spec grammar — positive parses for `adaptive:`/`adaptive-tuned:`,
//    and negative parses that name the offending token.
//  * MetaStats plumbing — BufferPool::MetaStats() and the sharded merge.

#include <memory>
#include <string>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "analysis/interval_estimator.h"
#include "core/adaptive_policy.h"
#include "core/lru_k.h"
#include "core/policy_factory.h"
#include "differential_harness.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

using difftest::AllocateDb;
using difftest::DiffScenarioConfig;
using difftest::DiffScenarioResult;
using difftest::ExpectScenarioEq;
using difftest::RunDiffScenario;

// ---------------------------------------------------------------------------
// Helpers.

std::unique_ptr<ReplacementPolicy> BuildPolicy(const std::string& spec,
                                               size_t capacity) {
  auto config = ParsePolicySpec(spec);
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  PolicyContext context;
  context.capacity = capacity;
  auto policy = MakePolicy(*config, context);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return std::move(*policy);
}

// Direct construction (the factory does not expose every test knob, e.g.
// record_ghost_victims, or deliberately rejects duplicate experts).
std::unique_ptr<AdaptivePolicy> BuildAdaptive(
    const std::vector<std::string>& expert_specs,
    AdaptivePolicyOptions options) {
  std::vector<AdaptiveExpert> experts;
  for (const std::string& spec : expert_specs) {
    experts.push_back({spec, BuildPolicy(spec, options.capacity),
                       BuildPolicy(spec, options.capacity)});
  }
  return std::make_unique<AdaptivePolicy>(std::move(experts), options);
}

std::vector<PageId> ZipfTrace(size_t pages, int len, uint64_t seed) {
  RecursiveSkewDistribution dist(0.8, 0.2, pages);
  RandomEngine rng(seed);
  std::vector<PageId> trace;
  trace.reserve(len);
  for (int i = 0; i < len; ++i) {
    trace.push_back(static_cast<PageId>(dist.Sample(rng) - 1));
  }
  return trace;
}

std::vector<PageId> CyclicTrace(size_t pages, int len) {
  std::vector<PageId> trace;
  trace.reserve(len);
  for (int i = 0; i < len; ++i) {
    trace.push_back(static_cast<PageId>(i % pages));
  }
  return trace;
}

// Drives `policy` through the simulator's reference loop (the loop the
// ghost caches mirror — see AdaptivePolicy::ObserveGhost): resident pages
// get RecordAccess, misses evict-at-capacity then Admit. Returns the miss
// count; appends each victim to *victims when given.
uint64_t DriveReferenceSim(ReplacementPolicy& policy,
                           const std::vector<PageId>& trace, size_t capacity,
                           std::vector<PageId>* victims = nullptr) {
  uint64_t misses = 0;
  for (PageId p : trace) {
    policy.SetReferencingProcess(0);
    if (policy.IsResident(p)) {
      policy.RecordAccess(p, AccessType::kRead);
      continue;
    }
    ++misses;
    policy.PrepareAdmit(p);
    if (policy.ResidentCount() >= capacity) {
      std::optional<PageId> victim = policy.Evict();
      EXPECT_TRUE(victim.has_value());
      if (victims != nullptr && victim.has_value()) {
        victims->push_back(*victim);
      }
    }
    policy.Admit(p, AccessType::kRead);
  }
  return misses;
}

// ---------------------------------------------------------------------------
// Ghost-exactness grid: every ghost byte-identical to the standalone
// expert on the same reference stream.

TEST(AdaptiveGhostTest, GhostVictimSequencesMatchStandaloneExperts) {
  const std::vector<std::string> experts = {"lruk2", "arc", "2q", "lfu"};
  for (size_t capacity : {size_t{16}, size_t{48}}) {
    for (uint64_t seed : {uint64_t{1}, uint64_t{42}, uint64_t{20260809}}) {
      SCOPED_TRACE("capacity=" + std::to_string(capacity) +
                   " seed=" + std::to_string(seed));
      std::vector<PageId> trace =
          ZipfTrace(/*pages=*/4 * capacity, /*len=*/20000, seed);

      AdaptivePolicyOptions options;
      options.capacity = capacity;
      options.record_ghost_victims = true;
      auto meta = BuildAdaptive(experts, options);
      DriveReferenceSim(*meta, trace, capacity);

      for (size_t i = 0; i < experts.size(); ++i) {
        SCOPED_TRACE("expert=" + experts[i]);
        auto standalone = BuildPolicy(experts[i], capacity);
        std::vector<PageId> victims;
        uint64_t misses =
            DriveReferenceSim(*standalone, trace, capacity, &victims);
        EXPECT_EQ(meta->ghost_misses(i), misses);
        EXPECT_EQ(meta->ghost_victims(i), victims);
      }
    }
  }
}

TEST(AdaptiveGhostTest, WindowSumsNeverExceedCumulativeMisses) {
  AdaptivePolicyOptions options;
  options.capacity = 16;
  options.window_refs = 512;
  options.window_buckets = 4;
  auto meta = BuildAdaptive({"lruk2", "lfu"}, options);
  std::vector<PageId> trace = ZipfTrace(/*pages=*/64, /*len=*/6000, 7);
  uint64_t meta_misses = DriveReferenceSim(*meta, trace, options.capacity);
  EXPECT_EQ(meta->total_meta_misses(), meta_misses);
  for (size_t i = 0; i < meta->num_experts(); ++i) {
    EXPECT_LE(meta->window_ghost_misses(i), meta->ghost_misses(i));
    EXPECT_GT(meta->ghost_misses(i), 0u);
  }
  EXPECT_LE(meta->window_meta_misses(), meta->total_meta_misses());
}

// ---------------------------------------------------------------------------
// Switch hysteresis.

// On a cyclic scan one page longer than the window of retained pages, LRU
// misses every reference while MRU stabilizes — a textbook dominated
// incumbent (paper Section 3.2's sequential-flooding motivation).
AdaptivePolicyOptions ScanOptions() {
  AdaptivePolicyOptions options;
  options.capacity = 16;
  options.window_refs = 256;
  options.window_buckets = 4;
  options.min_window_misses = 8;
  options.cooldown_refs = 64;
  options.switch_margin = 0.10;
  return options;
}

TEST(AdaptiveSwitchTest, DominatedIncumbentIsSwitchedOut) {
  AdaptivePolicyOptions options = ScanOptions();
  auto meta = BuildAdaptive({"lru", "mru"}, options);
  EXPECT_EQ(meta->active_expert(), 0u);
  std::vector<PageId> trace = CyclicTrace(/*pages=*/24, /*len=*/4000);
  DriveReferenceSim(*meta, trace, options.capacity);
  EXPECT_EQ(meta->active_expert(), 1u);  // MRU won.
  EXPECT_GE(meta->switches(), 1u);
  EXPECT_GT(meta->evaluations(), 0u);
  EXPECT_LT(meta->window_ghost_misses(1), meta->window_ghost_misses(0));
}

TEST(AdaptiveSwitchTest, CooldownVetoesTheSwitch) {
  AdaptivePolicyOptions options = ScanOptions();
  options.cooldown_refs = 1u << 30;  // Longer than the trace.
  auto meta = BuildAdaptive({"lru", "mru"}, options);
  DriveReferenceSim(*meta, CyclicTrace(24, 4000), options.capacity);
  EXPECT_EQ(meta->switches(), 0u);
  EXPECT_EQ(meta->active_expert(), 0u);
  EXPECT_EQ(meta->evaluations(), 0u);  // Cooldown gates the evaluation too.
}

TEST(AdaptiveSwitchTest, MinWindowMissFloorVetoesTheSwitch) {
  AdaptivePolicyOptions options = ScanOptions();
  options.min_window_misses = 1u << 30;
  auto meta = BuildAdaptive({"lru", "mru"}, options);
  DriveReferenceSim(*meta, CyclicTrace(24, 4000), options.capacity);
  EXPECT_EQ(meta->switches(), 0u);
  EXPECT_GT(meta->evaluations(), 0u);  // Evaluated, vetoed.
}

TEST(AdaptiveSwitchTest, MarginVetoesANarrowWin) {
  AdaptivePolicyOptions options = ScanOptions();
  // MRU's steady-state miss ratio on this cycle is well above 1% of
  // LRU's 100%, so a 0.99 margin (challenger must cut misses by 99%)
  // blocks the switch that the 0.10 margin allows.
  options.switch_margin = 0.99;
  auto meta = BuildAdaptive({"lru", "mru"}, options);
  DriveReferenceSim(*meta, CyclicTrace(24, 4000), options.capacity);
  EXPECT_EQ(meta->switches(), 0u);
  EXPECT_GT(meta->evaluations(), 0u);
}

TEST(AdaptiveSwitchTest, IdenticalExpertsNeverFlap) {
  AdaptivePolicyOptions options = ScanOptions();
  auto meta = BuildAdaptive({"lru", "lru"}, options);
  DriveReferenceSim(*meta, CyclicTrace(24, 4000), options.capacity);
  EXPECT_EQ(meta->switches(), 0u);  // Strict < keeps ties on the incumbent.
  EXPECT_EQ(meta->active_expert(), 0u);
  EXPECT_EQ(meta->window_ghost_misses(0), meta->window_ghost_misses(1));
}

TEST(AdaptiveSwitchTest, NoSwitchHappensInsideEvictBatch) {
  // Interleave EvictBatch + Restore pairs with the reference stream that
  // provokes switching: the active expert may only change on reference
  // ticks, never across a batch nomination (an LRUK_ASSERT inside the
  // policy backstops this; here we also observe it from the outside).
  AdaptivePolicyOptions options = ScanOptions();
  auto meta = BuildAdaptive({"lru", "mru"}, options);
  std::vector<PageId> trace = CyclicTrace(24, 4000);
  uint64_t switches_seen = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    PageId p = trace[i];
    meta->SetReferencingProcess(0);
    if (meta->IsResident(p)) {
      meta->RecordAccess(p, AccessType::kRead);
    } else {
      meta->PrepareAdmit(p);
      if (meta->ResidentCount() >= options.capacity) {
        ASSERT_TRUE(meta->Evict().has_value());
      }
      meta->Admit(p, AccessType::kRead);
    }
    if (i % 37 == 36) {
      size_t active_before = meta->active_expert();
      std::vector<PageId> nominated;
      meta->EvictBatch(2, &nominated);
      EXPECT_EQ(meta->active_expert(), active_before);
      // Undo the peek, write-behind style: nominees come back.
      for (auto it = nominated.rbegin(); it != nominated.rend(); ++it) {
        meta->Restore(*it);
      }
    }
    switches_seen = meta->switches();
  }
  EXPECT_GE(switches_seen, 1u);  // Switching did happen — on ticks.
}

TEST(AdaptiveRestoreTest, RestoreRoutesToTheNominatingExpert) {
  AdaptivePolicyOptions options = ScanOptions();
  auto meta = BuildAdaptive({"lru", "mru"}, options);
  std::vector<PageId> trace = CyclicTrace(24, 2000);
  DriveReferenceSim(*meta, trace, options.capacity);

  // The cyclic warm-up put MRU in charge. Nominate a victim under it,
  // then feed a skewed stream (where MRU is the worst expert) until the
  // meta-policy switches back to LRU, then Restore.
  ASSERT_EQ(meta->active_expert(), 1u);
  size_t nominator = meta->active_expert();
  std::optional<PageId> victim = meta->Evict();
  ASSERT_TRUE(victim.has_value());
  EXPECT_FALSE(meta->expert_live(0).IsResident(*victim));
  EXPECT_FALSE(meta->expert_live(1).IsResident(*victim));

  uint64_t switches_before = meta->switches();
  std::vector<PageId> more = ZipfTrace(/*pages=*/48, /*len=*/8000, 5);
  for (PageId p : more) {
    if (p == *victim) continue;  // Keep the in-flight victim in flight.
    if (meta->switches() != switches_before) break;
    meta->SetReferencingProcess(0);
    if (meta->IsResident(p)) {
      meta->RecordAccess(p, AccessType::kRead);
    } else {
      meta->PrepareAdmit(p);
      if (meta->ResidentCount() >= options.capacity) {
        ASSERT_TRUE(meta->Evict().has_value());
      }
      meta->Admit(p, AccessType::kRead);
    }
  }
  ASSERT_NE(meta->switches(), switches_before) << "no switch provoked";
  ASSERT_NE(meta->active_expert(), nominator);

  // The delayed Restore still lands in the nominating expert (exactly)
  // and re-admits into the rest: the page is resident everywhere.
  meta->Restore(*victim);
  EXPECT_TRUE(meta->IsResident(*victim));
  EXPECT_TRUE(meta->expert_live(0).IsResident(*victim));
  EXPECT_TRUE(meta->expert_live(1).IsResident(*victim));
}

// ---------------------------------------------------------------------------
// Fixed-expert differential: `adaptive:lruk2` == plain `lruk2`, byte for
// byte, through every pool configuration the harness drives.

difftest::MakePolicyFn SpecPolicy(std::string spec) {
  return [spec = std::move(spec)](size_t, size_t capacity) {
    return BuildPolicy(spec, capacity);
  };
}

// The adaptive wrapper is not an LruKPolicy, so the harness reports its
// clock slot as 0; compare everything else byte-for-byte.
void ExpectScenarioEqModuloClocks(DiffScenarioResult a, DiffScenarioResult b) {
  a.clocks.assign(a.clocks.size(), 0);
  b.clocks.assign(b.clocks.size(), 0);
  ExpectScenarioEq(a, b);
}

TEST(AdaptiveDifferentialTest, SingleExpertAdaptiveMatchesPlainLruK) {
  struct Case {
    const char* name;
    DiffScenarioConfig config;
  };
  const Case cases[] = {
      {"plain", {}},
      {"sharded", {.sharded = true}},
      {"optimistic+batched", {.batch_capacity = 64, .optimistic = true}},
      {"async-stack", {.async_stack = true}},
      {"readahead", {.readahead = true}},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    DiffScenarioConfig plain = c.config;
    plain.make_policy = SpecPolicy("lruk2");
    DiffScenarioConfig adaptive = c.config;
    adaptive.make_policy = SpecPolicy("adaptive:lruk2");
    ExpectScenarioEqModuloClocks(RunDiffScenario(plain),
                                 RunDiffScenario(adaptive));
  }
}

// ---------------------------------------------------------------------------
// Interval estimator.

TEST(IntervalEstimatorTest, ReturnsPriorsUntilMinSamples) {
  IntervalEstimatorOptions options;
  options.prior_crp = 7;
  options.prior_rip = 999;
  options.min_samples = 64;
  IntervalEstimator est(options);
  Timestamp now = 1;
  for (int i = 0; i < 32; ++i) {
    est.Observe(5, now);
    now += 3;
  }
  EXPECT_EQ(est.samples(), 31u);  // The first reference contributes no gap.
  IntervalEstimator::Estimate e = est.Current();
  EXPECT_EQ(e.crp, 7u);
  EXPECT_EQ(e.rip, 999u);
}

TEST(IntervalEstimatorTest, QuantilesTrackTheObservedGapDistribution) {
  IntervalEstimator est;
  Timestamp now = 1;
  est.Observe(7, now);
  // 5000 back-to-back gaps (bucket edge 1) and 5000 gaps of 512 (bucket
  // [512, 1023], edge 1023): the 25% quantile sits in the first mass, the
  // 95% quantile in the second.
  for (int i = 0; i < 5000; ++i) est.Observe(7, now += 1);
  for (int i = 0; i < 5000; ++i) est.Observe(7, now += 512);
  IntervalEstimator::Estimate e = est.Current();
  EXPECT_EQ(e.samples, 10000u);
  EXPECT_EQ(e.crp, 1u);
  EXPECT_EQ(e.rip, 1023u);
}

TEST(IntervalEstimatorTest, ConcentratedGapsCollapseBothQuantiles) {
  IntervalEstimator est;
  Timestamp now = 1;
  est.Observe(3, now);
  for (int i = 0; i < 10000; ++i) est.Observe(3, now += 10);  // Bucket [8,15].
  IntervalEstimator::Estimate e = est.Current();
  EXPECT_EQ(e.crp, 15u);
  EXPECT_EQ(e.rip, 15u);
}

TEST(IntervalEstimatorTest, ResetClearsStateBackToPriors) {
  IntervalEstimator est;
  Timestamp now = 1;
  est.Observe(1, now);
  for (int i = 0; i < 500; ++i) est.Observe(1, now += 2);
  EXPECT_GT(est.samples(), 0u);
  est.Reset();
  EXPECT_EQ(est.samples(), 0u);
  IntervalEstimator::Estimate e = est.Current();
  EXPECT_EQ(e.crp, 0u);
  EXPECT_EQ(e.rip, kInfinitePeriod);
}

// ---------------------------------------------------------------------------
// Online CRP/RIP tuning.

TEST(AdaptiveTuningTest, RetunesApplyClampedEstimatesToTheLruKExpert) {
  AdaptivePolicyOptions options;
  options.capacity = 16;
  options.tune_lruk = true;
  options.tune_interval = 512;
  auto meta = BuildAdaptive({"lruk2", "lfu"}, options);

  std::vector<PageId> trace = ZipfTrace(/*pages=*/64, /*len=*/8192, 11);
  DriveReferenceSim(*meta, trace, options.capacity);

  EXPECT_GT(meta->retunes(), 0u);
  // CRP capped at capacity / 2; a finite RIP floored at 8 * capacity.
  EXPECT_LE(meta->tuned_crp(), options.capacity / 2);
  ASSERT_NE(meta->tuned_rip(), kInfinitePeriod);
  EXPECT_GE(meta->tuned_rip(), 8 * static_cast<Timestamp>(options.capacity));

  // The tuned values actually reached the live LRU-K instance.
  const auto& lruk = dynamic_cast<const LruKPolicy&>(meta->expert_live(0));
  EXPECT_EQ(lruk.options().correlated_reference_period, meta->tuned_crp());
  EXPECT_EQ(lruk.options().retained_information_period, meta->tuned_rip());

  MetaPolicyStats stats = meta->GetMetaStats();
  EXPECT_EQ(stats.retunes, meta->retunes());
  EXPECT_EQ(stats.tuned_crp, meta->tuned_crp());
  EXPECT_EQ(stats.tuned_rip, meta->tuned_rip());
}

TEST(AdaptiveTuningTest, TuningOffLeavesTheExpertKnobsAlone) {
  AdaptivePolicyOptions options;
  options.capacity = 16;
  auto meta = BuildAdaptive({"lruk2"}, options);
  DriveReferenceSim(*meta, ZipfTrace(64, 8192, 11), options.capacity);
  EXPECT_EQ(meta->retunes(), 0u);
  const auto& lruk = dynamic_cast<const LruKPolicy&>(meta->expert_live(0));
  EXPECT_EQ(lruk.options().correlated_reference_period, 0u);
  EXPECT_EQ(lruk.options().retained_information_period, kInfinitePeriod);
}

// ---------------------------------------------------------------------------
// Spec grammar.

void ExpectParseError(const std::string& spec, const std::string& needle) {
  auto parsed = ParsePolicySpec(spec);
  ASSERT_FALSE(parsed.ok()) << spec << " parsed unexpectedly";
  EXPECT_NE(parsed.status().message().find(needle), std::string::npos)
      << "spec '" << spec << "': error was: " << parsed.status().message();
}

TEST(AdaptiveSpecTest, ParsesExpertListsAndTunedVariant) {
  auto parsed = ParsePolicySpec("adaptive:lruk2+arc+2q");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, PolicyKind::kAdaptive);
  ASSERT_EQ(parsed->adaptive.experts.size(), 3u);
  EXPECT_EQ(parsed->adaptive.experts[0].kind, PolicyKind::kLruK);
  EXPECT_EQ(parsed->adaptive.experts[0].lru_k.k, 2);
  EXPECT_EQ(parsed->adaptive.experts[1].kind, PolicyKind::kArc);
  EXPECT_EQ(parsed->adaptive.experts[2].kind, PolicyKind::kTwoQ);
  EXPECT_FALSE(parsed->adaptive.tune_lruk);
  ASSERT_EQ(parsed->adaptive.expert_names.size(), 3u);
  EXPECT_EQ(parsed->adaptive.expert_names[0], "lruk2");

  auto tuned = ParsePolicySpec("ADAPTIVE-TUNED:lru-3+lfu");
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  EXPECT_TRUE(tuned->adaptive.tune_lruk);
  ASSERT_EQ(tuned->adaptive.experts.size(), 2u);
  EXPECT_EQ(tuned->adaptive.experts[0].lru_k.k, 3);

  // The parsed config actually builds, and Name() reflects the experts.
  PolicyContext context;
  context.capacity = 8;
  auto policy = MakePolicy(*parsed, context);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ((*policy)->Name(), "adaptive(lruk2+arc+2q)");
}

TEST(AdaptiveSpecTest, ErrorsNameTheOffendingToken) {
  ExpectParseError("adaptive", "must list experts");
  ExpectParseError("adaptive:", "lists no experts");
  ExpectParseError("adaptive-tuned:", "lists no experts");
  ExpectParseError("adaptive:lruk2+", "empty expert token");
  ExpectParseError("adaptive:+lruk2", "empty expert token");
  ExpectParseError("adaptive:bogus", "unknown policy name 'bogus'");
  ExpectParseError("adaptive:lruk2+adaptive:lfu", "nests another adaptive");
  ExpectParseError("adaptive:a0", "'a0' needs oracle context");
  ExpectParseError("adaptive:lruk2+belady", "'belady' needs oracle context");
  ExpectParseError("adaptive:lruk2+lruk2", "duplicate expert 'lruk2'");
  ExpectParseError("adaptive:lru-2+lruk2", "duplicate expert 'lruk2'");
  ExpectParseError("adaptive:2q+twoq", "duplicate expert 'twoq'");
  ExpectParseError("adaptive:lruk0", "depth must be between 1 and");
  ExpectParseError("adaptive:lru-99", "depth must be between 1 and");
  ExpectParseError("adaptive:lru-x", "malformed LRU-K depth");
  ExpectParseError("lru-", "missing LRU-K depth");
  ExpectParseError("xyz", "unknown policy name 'xyz'");
}

TEST(AdaptiveSpecTest, FactoryRejectsMisconfiguredAdaptive) {
  PolicyContext no_capacity;  // capacity = 0.
  auto parsed = ParsePolicySpec("adaptive:lruk2+lfu");
  ASSERT_TRUE(parsed.ok());
  auto policy = MakePolicy(*parsed, no_capacity);
  ASSERT_FALSE(policy.ok());
  EXPECT_NE(policy.status().message().find("needs a capacity"),
            std::string::npos);

  PolicyConfig nested = PolicyConfig::Adaptive({*parsed});
  PolicyContext context;
  context.capacity = 8;
  auto nested_policy = MakePolicy(nested, context);
  ASSERT_FALSE(nested_policy.ok());
  EXPECT_NE(nested_policy.status().message().find("cannot nest"),
            std::string::npos);

  PolicyConfig empty = PolicyConfig::Adaptive({});
  auto empty_policy = MakePolicy(empty, context);
  ASSERT_FALSE(empty_policy.ok());
  EXPECT_NE(empty_policy.status().message().find("at least one expert"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// MetaStats plumbing through the pools.

TEST(AdaptiveMetaStatsTest, BufferPoolExposesExpertCounters) {
  SimDiskManager disk;
  auto policy = BuildPolicy("adaptive:lruk2+arc+2q", /*capacity=*/16);
  BufferPool pool(16, &disk, std::move(policy));
  std::vector<PageId> pages = AllocateDb(pool, 64);
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(3);
  for (int i = 0; i < 3000; ++i) {
    PageId p = pages[dist.Sample(rng) - 1];
    ASSERT_TRUE(pool.FetchPage(p).ok());
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  MetaPolicyStats stats = pool.MetaStats();
  EXPECT_TRUE(stats.adaptive);
  ASSERT_EQ(stats.experts.size(), 3u);
  EXPECT_EQ(stats.experts[0].name, "lruk2");
  EXPECT_EQ(stats.experts[1].name, "arc");
  EXPECT_EQ(stats.experts[2].name, "2q");
  EXPECT_GT(stats.total_misses, 0u);
  uint64_t ghost_sum = 0;
  for (const MetaExpertStats& e : stats.experts) {
    EXPECT_GT(e.ghost_misses, 0u);
    ghost_sum += e.ghost_misses;
  }
  // Every live miss was also a miss for at least one ghost... not
  // guaranteed in general, but the ghosts each saw the whole stream, so
  // their summed misses bound the window's worth of live misses.
  EXPECT_GE(ghost_sum, stats.window_misses);
  uint64_t active_refs = 0;
  for (const MetaExpertStats& e : stats.experts) active_refs += e.active_refs;
  EXPECT_EQ(active_refs, 3000u + 64u);  // One per fetch + initial admit.
}

TEST(AdaptiveMetaStatsTest, PlainPoliciesReportNonAdaptive) {
  SimDiskManager disk;
  BufferPool pool(8, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));
  (void)AllocateDb(pool, 16);
  MetaPolicyStats stats = pool.MetaStats();
  EXPECT_FALSE(stats.adaptive);
  EXPECT_TRUE(stats.experts.empty());
  EXPECT_EQ(stats.total_misses, 0u);
}

TEST(AdaptiveMetaStatsTest, ShardedPoolMergesExpertWise) {
  SimDiskManager disk;
  auto parsed = ParsePolicySpec("adaptive:lruk2+arc");
  ASSERT_TRUE(parsed.ok());
  auto factory = MakeShardPolicyFactory(*parsed);
  ASSERT_TRUE(factory.ok());
  ShardedBufferPool pool(64, /*num_shards=*/4, &disk, *factory);
  std::vector<PageId> pages = AllocateDb(pool, 256);
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(9);
  for (int i = 0; i < 4000; ++i) {
    PageId p = pages[dist.Sample(rng) - 1];
    ASSERT_TRUE(pool.FetchPage(p).ok());
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
  MetaPolicyStats merged = pool.MetaStats();
  EXPECT_TRUE(merged.adaptive);
  ASSERT_EQ(merged.experts.size(), 2u);
  EXPECT_EQ(merged.experts[0].name, "lruk2");

  MetaPolicyStats manual;
  for (size_t i = 0; i < pool.shard_count(); ++i) {
    manual += pool.shard(i).MetaStats();
  }
  EXPECT_EQ(merged.total_misses, manual.total_misses);
  EXPECT_EQ(merged.switches, manual.switches);
  for (size_t i = 0; i < merged.experts.size(); ++i) {
    EXPECT_EQ(merged.experts[i].ghost_misses,
              manual.experts[i].ghost_misses);
    EXPECT_EQ(merged.experts[i].active_refs, manual.experts[i].active_refs);
  }
  // Per-shard snapshots account for every reference the shard observed.
  uint64_t merged_refs = 0;
  for (const MetaExpertStats& e : merged.experts) {
    merged_refs += e.active_refs;
  }
  EXPECT_EQ(merged_refs, 4000u + 256u);
}

}  // namespace
}  // namespace lruk
