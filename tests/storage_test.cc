#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "storage/file_disk_manager.h"
#include "storage/sim_disk_manager.h"

namespace lruk {
namespace {

void FillPattern(char* buf, char seed) {
  for (size_t i = 0; i < kPageSize; ++i) {
    buf[i] = static_cast<char>(seed + static_cast<char>(i % 13));
  }
}

template <typename Manager>
void RunBasicDiskContract(Manager& disk) {
  auto p1 = disk.AllocatePage();
  ASSERT_TRUE(p1.ok());
  auto p2 = disk.AllocatePage();
  ASSERT_TRUE(p2.ok());
  EXPECT_NE(*p1, *p2);
  EXPECT_EQ(disk.NumAllocatedPages(), 2u);

  char write_buf[kPageSize];
  char read_buf[kPageSize];
  FillPattern(write_buf, 3);
  ASSERT_TRUE(disk.WritePage(*p1, write_buf).ok());
  ASSERT_TRUE(disk.ReadPage(*p1, read_buf).ok());
  EXPECT_EQ(std::memcmp(write_buf, read_buf, kPageSize), 0);

  // Unwritten page reads as zeros.
  ASSERT_TRUE(disk.ReadPage(*p2, read_buf).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(read_buf[i], 0);

  // Deallocate and verify access fails.
  ASSERT_TRUE(disk.DeallocatePage(*p2).ok());
  EXPECT_FALSE(disk.ReadPage(*p2, read_buf).ok());
  EXPECT_FALSE(disk.WritePage(*p2, write_buf).ok());
  EXPECT_FALSE(disk.DeallocatePage(*p2).ok());
  EXPECT_EQ(disk.NumAllocatedPages(), 1u);

  // Freed ids are reused.
  auto p3 = disk.AllocatePage();
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(*p3, *p2);
}

TEST(SimDiskTest, BasicContract) {
  SimDiskManager disk;
  RunBasicDiskContract(disk);
}

TEST(SimDiskTest, ReadOfNeverAllocatedPageFails) {
  SimDiskManager disk;
  char buf[kPageSize];
  EXPECT_EQ(disk.ReadPage(123, buf).code(), StatusCode::kNotFound);
}

TEST(SimDiskTest, StatsAccumulateServiceTime) {
  SimDiskOptions options;
  options.read_micros = 100.0;
  options.write_micros = 200.0;
  SimDiskManager disk(options);
  auto p = disk.AllocatePage();
  ASSERT_TRUE(p.ok());
  char buf[kPageSize] = {0};
  ASSERT_TRUE(disk.WritePage(*p, buf).ok());
  ASSERT_TRUE(disk.ReadPage(*p, buf).ok());
  ASSERT_TRUE(disk.ReadPage(*p, buf).ok());
  EXPECT_EQ(disk.stats().reads, 2u);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().allocations, 1u);
  EXPECT_DOUBLE_EQ(disk.stats().simulated_micros, 400.0);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().reads, 0u);
}

TEST(FileDiskTest, BasicContract) {
  std::string path = ::testing::TempDir() + "/lruk_filedisk_contract.db";
  std::remove(path.c_str());
  FileDiskManager disk(path);
  ASSERT_TRUE(disk.Valid());
  RunBasicDiskContract(disk);
  std::remove(path.c_str());
}

TEST(FileDiskTest, DataSurvivesReopen) {
  std::string path = ::testing::TempDir() + "/lruk_filedisk_reopen.db";
  std::remove(path.c_str());
  char write_buf[kPageSize];
  FillPattern(write_buf, 9);
  PageId p;
  {
    FileDiskManager disk(path);
    ASSERT_TRUE(disk.Valid());
    auto allocated = disk.AllocatePage();
    ASSERT_TRUE(allocated.ok());
    p = *allocated;
    ASSERT_TRUE(disk.WritePage(p, write_buf).ok());
  }
  {
    FileDiskManager disk(path);
    ASSERT_TRUE(disk.Valid());
    EXPECT_EQ(disk.NumAllocatedPages(), 1u);
    char read_buf[kPageSize];
    ASSERT_TRUE(disk.ReadPage(p, read_buf).ok());
    EXPECT_EQ(std::memcmp(write_buf, read_buf, kPageSize), 0);
  }
  std::remove(path.c_str());
}

TEST(FileDiskTest, InvalidPathFailsCleanly) {
  FileDiskManager disk("/nonexistent-dir/sub/file.db");
  EXPECT_FALSE(disk.Valid());
  char buf[kPageSize];
  EXPECT_FALSE(disk.ReadPage(0, buf).ok());
  EXPECT_FALSE(disk.AllocatePage().ok());
}

TEST(FileDiskTest, ShortReadAtEofZeroFillsTheTail) {
  // An allocated-but-never-written page sits past the file's EOF (the file
  // only grows on write); the read must come back as all zeros, not as an
  // error and not as a short buffer. Writing an *earlier* page afterwards
  // must not change that.
  std::string path = ::testing::TempDir() + "/lruk_filedisk_shortread.db";
  std::remove(path.c_str());
  FileDiskManager disk(path);
  ASSERT_TRUE(disk.Valid());

  auto p0 = disk.AllocatePage();
  auto p1 = disk.AllocatePage();
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());

  char buf[kPageSize];
  std::memset(buf, 0x5C, kPageSize);  // Poison: zeros must be written.
  ASSERT_TRUE(disk.ReadPage(*p1, buf).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(buf[i], 0) << i;
  EXPECT_EQ(disk.stats().read_failures, 0u);

  // Write p0: the file now ends mid-way before p1's slot. p1 still reads
  // as zeros (a genuinely short fread path, not the empty-file one).
  char image[kPageSize];
  FillPattern(image, 5);
  ASSERT_TRUE(disk.WritePage(*p0, image).ok());
  std::memset(buf, 0x5C, kPageSize);
  ASSERT_TRUE(disk.ReadPage(*p1, buf).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(buf[i], 0) << i;
  std::remove(path.c_str());
}

TEST(FileDiskTest, FailurePathsCountIntoIoStats) {
  std::string path = ::testing::TempDir() + "/lruk_filedisk_failures.db";
  std::remove(path.c_str());
  FileDiskManager disk(path);
  ASSERT_TRUE(disk.Valid());
  auto p = disk.AllocatePage();
  ASSERT_TRUE(p.ok());

  char buf[kPageSize] = {};
  EXPECT_EQ(disk.ReadPage(*p + 10, buf).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk.WritePage(*p + 10, buf).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk.stats().read_failures, 1u);
  EXPECT_EQ(disk.stats().write_failures, 1u);
  EXPECT_EQ(disk.stats().reads, 0u);
  EXPECT_EQ(disk.stats().writes, 0u);

  // ResetStats covers the failure/retry counters too.
  disk.ResetStats();
  EXPECT_EQ(disk.stats().read_failures, 0u);
  EXPECT_EQ(disk.stats().write_failures, 0u);
  EXPECT_EQ(disk.stats().retries, 0u);
  std::remove(path.c_str());
}

TEST(FileDiskTest, UnopenedFileCountsEveryOpAsFailure) {
  // The injection seam for "the device is gone": every read and write
  // fails with kIoError and is accounted as a failure.
  FileDiskManager disk("/nonexistent-dir/sub/file.db");
  ASSERT_FALSE(disk.Valid());
  char buf[kPageSize] = {};
  EXPECT_EQ(disk.ReadPage(0, buf).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.WritePage(0, buf).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.ReadPage(1, buf).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.stats().read_failures, 2u);
  EXPECT_EQ(disk.stats().write_failures, 1u);
}

TEST(SimDiskTest, FailurePathsCountIntoIoStats) {
  SimDiskManager disk;
  char buf[kPageSize] = {};
  EXPECT_EQ(disk.ReadPage(7, buf).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk.WritePage(7, buf).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk.stats().read_failures, 1u);
  EXPECT_EQ(disk.stats().write_failures, 1u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().read_failures, 0u);
  EXPECT_EQ(disk.stats().write_failures, 0u);
}

}  // namespace
}  // namespace lruk
