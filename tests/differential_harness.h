// Shared 20k-op differential harness.
//
// Three suites (async_io_test.cc, optimistic_pool_test.cc,
// batched_access_test.cc) grew byte-for-byte copies of the same
// scaffolding: the stats comparators, the AllocateDb warm-up, a
// victim-recording policy wrapper, and the mixed deterministic workload
// with its RunScenario driver. This header is the single home for all of
// it; adaptive_policy_test.cc builds its fixed-expert differential on the
// same pieces (DiffScenarioConfig::make_policy swaps the policy under
// record).
//
// Everything is inline and header-only: each test binary stays standalone,
// and the compiler sees one definition per TU.

#ifndef LRUK_TESTS_DIFFERENTIAL_HARNESS_H_
#define LRUK_TESTS_DIFFERENTIAL_HARNESS_H_

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace difftest {

inline void ExpectPoolStatsEq(const BufferPoolStats& a,
                              const BufferPoolStats& b) {
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.dirty_writebacks, b.dirty_writebacks);
  EXPECT_EQ(a.read_failures, b.read_failures);
  EXPECT_EQ(a.write_failures, b.write_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.coalesced_reads, b.coalesced_reads);
  EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
  EXPECT_EQ(a.prefetch_used, b.prefetch_used);
  EXPECT_EQ(a.prefetch_dropped, b.prefetch_dropped);
  EXPECT_EQ(a.background_cleans, b.background_cleans);
}

inline void ExpectIoStatsEq(const IoStats& a, const IoStats& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.allocations, b.allocations);
  EXPECT_EQ(a.deallocations, b.deallocations);
  EXPECT_EQ(a.read_failures, b.read_failures);
  EXPECT_EQ(a.write_failures, b.write_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_DOUBLE_EQ(a.simulated_micros, b.simulated_micros);
}

inline std::vector<PageId> AllocateDb(PoolInterface& pool, uint64_t n) {
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < n; ++i) {
    auto page = pool.NewPage();
    EXPECT_TRUE(page.ok());
    pages.push_back((*page)->id());
    EXPECT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
  }
  return pages;
}

// Forwarding wrapper recording the surviving eviction sequence around ANY
// inner policy (a Restore pops its eviction — eviction skips, flusher
// peeks, and write-behind rollbacks cancel out exactly, so what remains is
// the true victim order). Unused EvictBatch nominees come back in reverse
// nomination order, but a batch's CONSUMED nominee stays evicted
// mid-sequence — so Restore erases the most recent occurrence instead of
// asserting strict LIFO.
class RecordingPolicy final : public ReplacementPolicy {
 public:
  explicit RecordingPolicy(std::unique_ptr<ReplacementPolicy> inner)
      : inner_(std::move(inner)) {}

  void SetReferencingProcess(uint32_t process) override {
    inner_->SetReferencingProcess(process);
  }
  void PrepareAdmit(PageId p) override { inner_->PrepareAdmit(p); }
  void RecordAccess(PageId p, AccessType type) override {
    inner_->RecordAccess(p, type);
  }
  void RecordAccessBatch(const AccessRecord* records, size_t n) override {
    inner_->RecordAccessBatch(records, n);
  }
  void Admit(PageId p, AccessType type) override { inner_->Admit(p, type); }
  std::optional<PageId> Evict() override {
    auto victim = inner_->Evict();
    if (victim.has_value()) evictions_.push_back(*victim);
    return victim;
  }
  size_t EvictBatch(size_t k, std::vector<PageId>* out) override {
    size_t n = inner_->EvictBatch(k, out);
    evictions_.insert(evictions_.end(), out->begin(), out->end());
    return n;
  }
  void Restore(PageId p) override {
    auto it = std::find(evictions_.rbegin(), evictions_.rend(), p);
    ASSERT_TRUE(it != evictions_.rend());
    evictions_.erase(std::next(it).base());
    inner_->Restore(p);
  }
  void Remove(PageId p) override { inner_->Remove(p); }
  void SetEvictable(PageId p, bool evictable) override {
    inner_->SetEvictable(p, evictable);
  }
  size_t ResidentCount() const override { return inner_->ResidentCount(); }
  size_t EvictableCount() const override { return inner_->EvictableCount(); }
  bool IsResident(PageId p) const override { return inner_->IsResident(p); }
  void ForEachResident(
      const std::function<void(PageId)>& visit) const override {
    inner_->ForEachResident(visit);
  }
  std::string_view Name() const override { return inner_->Name(); }
  MetaPolicyStats GetMetaStats() const override {
    return inner_->GetMetaStats();
  }

  const std::vector<PageId>& evictions() const { return evictions_; }
  ReplacementPolicy& inner() { return *inner_; }
  const ReplacementPolicy& inner() const { return *inner_; }

 private:
  std::unique_ptr<ReplacementPolicy> inner_;
  std::vector<PageId> evictions_;
};

constexpr uint64_t kDiffDbPages = 96;
constexpr size_t kDiffCapacity = 24;
constexpr int kDiffOps = 20000;

// A mixed deterministic workload: skewed fetches, 25% writes, periodic
// FlushPage, periodic DeletePage + NewPage (id churn through the
// allocator's free list). Exercises every pool entry point the async
// stack, the optimistic hit path, and batched publishing touch. Reports
// the number of delete/new cycles through *delete_cycles (for closed-form
// policy-clock assertions: clock == hits + misses + initial admissions +
// delete cycles).
inline void DriveMixedWorkload(PoolInterface& pool,
                               std::vector<PageId>& pages,
                               int ops = kDiffOps,
                               int* delete_cycles = nullptr) {
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(/*seed=*/20260809);
  int cycles = 0;
  for (int i = 0; i < ops; ++i) {
    size_t idx = dist.Sample(rng) - 1;
    PageId p = pages[idx];
    bool write = rng.NextBernoulli(0.25);
    auto page =
        pool.FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
    ASSERT_TRUE(page.ok()) << "op " << i;
    if (write) {
      std::memcpy((*page)->Data(), &i, sizeof(i));
    }
    ASSERT_TRUE(pool.UnpinPage(p, write).ok()) << "op " << i;
    if (i % 1009 == 0) {
      ASSERT_TRUE(pool.FlushPage(p).ok());
    }
    if (i % 501 == 250) {
      ASSERT_TRUE(pool.DeletePage(p).ok()) << "op " << i;
      auto fresh = pool.NewPage();
      ASSERT_TRUE(fresh.ok());
      pages[idx] = (*fresh)->id();
      ASSERT_TRUE(pool.UnpinPage((*fresh)->id(), true).ok());
      ++cycles;
    }
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  if (delete_cycles != nullptr) *delete_cycles = cycles;
}

// Builds the policy under record for one pool (shard_index 0 for the
// plain pool). Defaults to the repo's canonical LRU-2.
using MakePolicyFn = std::function<std::unique_ptr<ReplacementPolicy>(
    size_t shard_index, size_t capacity)>;

struct DiffScenarioConfig {
  bool sharded = false;
  size_t num_shards = 4;
  size_t capacity = kDiffCapacity;
  uint64_t db_pages = kDiffDbPages;
  int ops = kDiffOps;
  size_t batch_capacity = 0;
  bool optimistic = false;
  bool dispatcher = false;  // Inline unless io_workers > 0.
  size_t io_workers = 0;
  bool async_stack = false;  // Inline dispatcher + background flusher.
  bool readahead = false;    // Implies the dispatcher (inline).
  MakePolicyFn make_policy{};  // Null: LruKOptions{.k = 2}.
};

struct DiffScenarioResult {
  BufferPoolStats stats;
  IoStats io;
  // Surviving eviction sequence per policy instance (one for the plain
  // pool, one per shard for the sharded pool).
  std::vector<std::vector<PageId>> evictions;
  std::vector<bool> residency;
  std::vector<std::string> images;
  // Inner policy logical clocks, parallel to `evictions` (0 when the
  // inner policy is not LRU-K).
  std::vector<Timestamp> clocks;
  int delete_cycles = 0;
};

inline DiffScenarioResult RunDiffScenario(const DiffScenarioConfig& config) {
  SimDiskManager disk;
  BufferPoolOptions options;
  options.batch_capacity = config.batch_capacity;
  options.optimistic_hits = config.optimistic;
  options.io_dispatcher = config.dispatcher;
  options.io_workers = config.io_workers;
  if (config.async_stack) {
    options.io_dispatcher = true;  // Inline: io_workers = 0.
    options.flusher = true;
    options.flusher_every_ops = 32;
    options.flusher_batch = 4;
  }
  if (config.readahead) {
    options.io_dispatcher = true;
    options.readahead = {.enabled = true, .window = 4, .min_run = 3};
  }
  MakePolicyFn make_policy = config.make_policy;
  if (!make_policy) {
    make_policy = [](size_t, size_t) {
      return std::make_unique<LruKPolicy>(LruKOptions{.k = 2});
    };
  }

  DiffScenarioResult result;
  std::vector<PageId> pages;
  std::vector<RecordingPolicy*> recorders;
  auto finish = [&](PoolInterface& pool) {
    result.stats = pool.stats();
    for (RecordingPolicy* r : recorders) {
      result.evictions.push_back(r->evictions());
      const auto* lruk = dynamic_cast<const LruKPolicy*>(&r->inner());
      result.clocks.push_back(lruk != nullptr ? lruk->CurrentTime() : 0);
    }
    for (PageId p : pages) result.residency.push_back(pool.IsResident(p));
  };
  if (!config.sharded) {
    auto policy = std::make_unique<RecordingPolicy>(
        make_policy(0, config.capacity));
    recorders.push_back(policy.get());
    BufferPool pool(config.capacity, &disk, std::move(policy), options);
    pages = AllocateDb(pool, config.db_pages);
    DriveMixedWorkload(pool, pages, config.ops, &result.delete_cycles);
    finish(pool);
  } else {
    recorders.resize(config.num_shards, nullptr);
    ShardedBufferPool pool(
        config.capacity, config.num_shards, &disk,
        [&](size_t shard, size_t shard_capacity) {
          auto policy = std::make_unique<RecordingPolicy>(
              make_policy(shard, shard_capacity));
          recorders[shard] = policy.get();
          return policy;
        },
        options);
    pages = AllocateDb(pool, config.db_pages);
    DriveMixedWorkload(pool, pages, config.ops, &result.delete_cycles);
    finish(pool);
  }
  result.io = disk.stats();
  char buf[kPageSize];
  for (PageId p : pages) {
    EXPECT_TRUE(disk.ReadPage(p, buf).ok());
    result.images.emplace_back(buf, kPageSize);
  }
  return result;
}

inline void ExpectScenarioEq(const DiffScenarioResult& a,
                             const DiffScenarioResult& b) {
  ExpectPoolStatsEq(a.stats, b.stats);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.residency, b.residency);
  EXPECT_EQ(a.images, b.images);
  EXPECT_EQ(a.clocks, b.clocks);
  // IoStats modulo the verification reads RunDiffScenario itself issued
  // (same count on both sides, so full equality still holds
  // field-for-field).
  ExpectIoStatsEq(a.io, b.io);
}

}  // namespace difftest
}  // namespace lruk

#endif  // LRUK_TESTS_DIFFERENTIAL_HARNESS_H_
