// Threaded half of the async I/O dispatcher battery (the deterministic
// half lives in async_io_test.cc). Runs under TSan/ASan in CI's sanitizer
// matrix (test names match the 'AsyncIo' ctest regex).
//
// Coverage:
//  * Request coalescing — 8 threads missing on the same page while its
//    read is parked behind a gate produce exactly ONE physical read; every
//    waiter gets the same pinned page, stats account one primary miss plus
//    seven coalesced ones.
//  * Coalesced failure — the same setup with an injected read fault: every
//    waiter observes the same error status, no frame is leaked, nothing is
//    admitted, and the page is fetchable after Heal().
//  * Concurrency + fault churn — 8 threads of mixed traffic over both
//    pools with probabilistic read/write faults, flusher and readahead on:
//    after Heal + quiesce, frame accounting balances to capacity, every
//    fetch resolved to exactly one hit or miss, all pins were released,
//    and FlushAll converges.
//  * Same-page churn — a page-id range smaller than the thread count over
//    a tiny pool forces constant coalesce/evict cycles without deadlock.
//  * Anti-starvation property — under a sustained demand flood, every
//    accepted Flush-lane item still executes within a bounded number of
//    demand completions (the starvation budget at work).
//  * Write-behind fault churn — threaded dirty-heavy traffic with
//    probabilistic write faults over a write-behind pool: failed victim
//    writes re-admit or park without losing images, frames, or counts.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "io/io_dispatcher.h"
#include "storage/fault_injecting_disk_manager.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

// Forwarding disk manager counting physical reads per page — the witness
// for "one coalesced group, one physical read". Outermost wrapper, so it
// sees exactly what the pool issued (including retry re-issues).
class CountingDiskManager final : public DiskManager {
 public:
  explicit CountingDiskManager(DiskManager* inner) : inner_(inner) {}

  uint64_t ReadsOf(PageId p) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = reads_.find(p);
    return it == reads_.end() ? 0 : it->second;
  }
  uint64_t TotalReads() const {
    std::lock_guard<std::mutex> guard(mutex_);
    uint64_t total = 0;
    for (const auto& [p, n] : reads_) total += n;
    return total;
  }

  Status ReadPage(PageId p, char* out) override {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++reads_[p];
    }
    return inner_->ReadPage(p, out);
  }
  Status WritePage(PageId p, const char* data) override {
    return inner_->WritePage(p, data);
  }
  Result<PageId> AllocatePage() override { return inner_->AllocatePage(); }
  Status DeallocatePage(PageId p) override {
    return inner_->DeallocatePage(p);
  }
  uint64_t NumAllocatedPages() const override {
    return inner_->NumAllocatedPages();
  }
  IoStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  DiskManager* inner_;
  mutable std::mutex mutex_;
  std::unordered_map<PageId, uint64_t> reads_;
};

// Blocks reads of one chosen page until released (same shape as the gate
// in async_io_test.cc; duplicated to keep the test binaries standalone).
class GateDiskManager final : public DiskManager {
 public:
  explicit GateDiskManager(DiskManager* inner) : inner_(inner) {}

  void Close(PageId p) {
    std::lock_guard<std::mutex> guard(mutex_);
    gated_ = p;
    open_ = false;
  }
  void Open() {
    std::lock_guard<std::mutex> guard(mutex_);
    open_ = true;
    cv_.notify_all();
  }
  void AwaitReader() {
    std::unique_lock<std::mutex> guard(mutex_);
    cv_.wait(guard, [&] { return waiting_ > 0; });
  }

  Status ReadPage(PageId p, char* out) override {
    {
      std::unique_lock<std::mutex> guard(mutex_);
      if (!open_ && p == gated_) {
        ++waiting_;
        cv_.notify_all();
        cv_.wait(guard, [&] { return open_; });
        --waiting_;
      }
    }
    return inner_->ReadPage(p, out);
  }
  Status WritePage(PageId p, const char* data) override {
    return inner_->WritePage(p, data);
  }
  Result<PageId> AllocatePage() override { return inner_->AllocatePage(); }
  Status DeallocatePage(PageId p) override {
    return inner_->DeallocatePage(p);
  }
  uint64_t NumAllocatedPages() const override {
    return inner_->NumAllocatedPages();
  }
  IoStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

 private:
  DiskManager* inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  PageId gated_ = kInvalidPageId;
  bool open_ = true;
  int waiting_ = 0;
};

std::vector<PageId> AllocateDb(PoolInterface& pool, uint64_t n) {
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < n; ++i) {
    auto page = pool.NewPage();
    EXPECT_TRUE(page.ok());
    pages.push_back((*page)->id());
    EXPECT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
  }
  return pages;
}

constexpr int kThreads = 8;

// ---------------------------------------------------------------------------
// Coalescing: one physical read per group.

TEST(AsyncIoCoalescingTest, ConcurrentMissesOnSamePageShareOneRead) {
  SimDiskManager inner;
  GateDiskManager gate(&inner);
  CountingDiskManager disk(&gate);
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 2;
  BufferPool pool(8, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);

  auto target = inner.AllocatePage();
  ASSERT_TRUE(target.ok());
  PageId p = *target;

  // Park the primary's read behind the gate; once it is parked, the pool
  // latch is free and the other 7 threads enqueue as coalesced waiters.
  gate.Close(p);
  std::atomic<int> entered{0};
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      entered.fetch_add(1);
      auto page = pool.FetchPage(p);
      ASSERT_TRUE(page.ok());
      EXPECT_EQ((*page)->id(), p);
      ok_count.fetch_add(1);
      EXPECT_TRUE(pool.UnpinPage(p, false).ok());
    });
  }
  gate.AwaitReader();  // The primary is mid-read.
  // Give the remaining threads time to reach the waiter branch: they need
  // only the pool latch, which the primary released before reading.
  while (entered.load() < kThreads) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gate.Open();
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok_count.load(), kThreads);
  EXPECT_EQ(disk.ReadsOf(p), 1u);  // One physical read for the group.
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.coalesced_reads, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(pool.PendingIoCount(), 0u);
  // Frame accounting balances: one resident page, the rest free.
  EXPECT_EQ(pool.ResidentCount() + pool.FreeFrameCount(), pool.capacity());
}

TEST(AsyncIoCoalescingTest, EveryWaiterSeesTheSameFailureAndNoFrameLeaks) {
  SimDiskManager inner;
  FaultInjectingDiskManager faulty(&inner, /*seed=*/5);
  GateDiskManager gate(&faulty);
  CountingDiskManager disk(&gate);
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 2;
  BufferPool pool(8, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);

  auto target = inner.AllocatePage();
  ASSERT_TRUE(target.ok());
  PageId p = *target;
  faulty.AddRule(FaultRule::FailPage(FaultOp::kRead, p));  // Permanent.

  gate.Close(p);
  std::atomic<int> entered{0};
  std::vector<Status> statuses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      entered.fetch_add(1);
      auto page = pool.FetchPage(p);
      ASSERT_FALSE(page.ok());
      statuses[t] = page.status();
    });
  }
  gate.AwaitReader();
  while (entered.load() < kThreads) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gate.Open();
  for (auto& t : threads) t.join();

  // Every thread failed with the same status code. (A straggler that
  // missed the coalescing window would retry as its own primary against
  // the permanent fault and still observe kIoError.)
  for (const Status& s : statuses) {
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
  // No admission, no leaked frame, no stuck tracker entry.
  EXPECT_FALSE(pool.IsResident(p));
  EXPECT_EQ(pool.PendingIoCount(), 0u);
  EXPECT_EQ(pool.FreeFrameCount(), pool.capacity());
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(kThreads));
  EXPECT_GE(stats.coalesced_reads, 1u);
  EXPECT_GE(stats.read_failures, 1u);
  // Total fetch attempts all resolved: hits + misses == kThreads.
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kThreads));

  // The page is fetchable once the fault clears.
  faulty.Heal();
  auto page = pool.FetchPage(p);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(pool.UnpinPage(p, false).ok());
}

// ---------------------------------------------------------------------------
// Concurrency + fault churn.

struct ChurnTotals {
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> failures{0};
};

void ChurnThread(PoolInterface& pool, const std::vector<PageId>& pages,
                 uint64_t seed, int ops, ChurnTotals& totals) {
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(seed);
  for (int i = 0; i < ops; ++i) {
    PageId p;
    if (rng.NextBernoulli(0.2)) {
      // Short sequential stretches keep the readahead path hot.
      p = pages[(static_cast<size_t>(i) * 3 + seed) % pages.size()];
    } else {
      p = pages[dist.Sample(rng) - 1];
    }
    bool write = rng.NextBernoulli(0.4);
    totals.attempts.fetch_add(1, std::memory_order_relaxed);
    auto page =
        pool.FetchPage(p, write ? AccessType::kWrite : AccessType::kRead);
    if (!page.ok()) {
      totals.failures.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (write) {
      // Page contents are accessed outside the pool latch; the pin
      // protocol makes the frame stable but leaves writer/writer
      // coordination to the caller, so each thread stamps its own
      // seed-indexed 8-byte slot instead of a shared offset.
      uint64_t stamp = seed * 1000003 + static_cast<uint64_t>(i);
      std::memcpy((*page)->Data() + (seed % 64) * sizeof(stamp), &stamp,
                  sizeof(stamp));
    }
    EXPECT_TRUE(pool.UnpinPage(p, write).ok());
  }
}

TEST(AsyncIoConcurrencyTest, FaultChurnKeepsPlainPoolInvariants) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/31);

  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 4;
  options.io_queue_depth = 32;
  options.flusher = true;
  options.flusher_every_ops = 32;
  options.flusher_batch = 4;
  options.readahead = {.enabled = true, .window = 4, .min_run = 3};
  options.batch_capacity = 64;
  options.batch_stripes = 8;

  BufferPoolStats stats;
  {
    BufferPool pool(24, &disk,
                    std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                    options);
    std::vector<PageId> pages = AllocateDb(pool, 64);
    // Arm the faults only once the DB exists (allocation itself must not
    // fail; the churn tolerates fetch failures).
    disk.AddRule(FaultRule::FailWithProbability(FaultOp::kRead, 0.03));
    disk.AddRule(FaultRule::FailWithProbability(FaultOp::kWrite, 0.03));
    ChurnTotals totals;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ChurnThread(pool, pages, /*seed=*/100 + t, /*ops=*/3000, totals);
      });
    }
    for (auto& t : threads) t.join();

    disk.Heal();
    pool.Quiesce();
    stats = pool.stats();
    // Every fetch resolved to exactly one hit or one miss.
    EXPECT_EQ(stats.hits + stats.misses, totals.attempts.load());
    // A failed fetch is a miss; coalesced waiters of a failed read are
    // misses too, but only primaries count read_failures.
    EXPECT_LE(stats.read_failures, totals.failures.load());
    EXPECT_GE(stats.misses, totals.failures.load());

    // All pins released: every resident page is evictable again.
    EXPECT_EQ(pool.policy().EvictableCount(), pool.policy().ResidentCount());
    // Frame accounting balances after quiesce.
    EXPECT_EQ(pool.ResidentCount() + pool.FreeFrameCount(), pool.capacity());
    EXPECT_EQ(pool.PendingIoCount(), 0u);

    EXPECT_TRUE(pool.FlushAll().ok());
  }
  // Background machinery actually engaged under the churn.
  EXPECT_GT(stats.background_cleans, 0u);
  EXPECT_GT(stats.prefetch_issued, 0u);
}

TEST(AsyncIoConcurrencyTest, FaultChurnKeepsShardedPoolInvariants) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/37);

  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 4;
  options.io_queue_depth = 32;
  options.flusher = true;
  options.flusher_every_ops = 32;
  options.flusher_batch = 4;
  options.readahead = {.enabled = true, .window = 4, .min_run = 3};

  ShardedBufferPool pool(
      32, /*num_shards=*/4, &disk,
      [](size_t, size_t) {
        return std::make_unique<LruKPolicy>(LruKOptions{.k = 2});
      },
      options);
  std::vector<PageId> pages = AllocateDb(pool, 96);
  disk.AddRule(FaultRule::FailWithProbability(FaultOp::kRead, 0.03));
  disk.AddRule(FaultRule::FailWithProbability(FaultOp::kWrite, 0.03));
  ChurnTotals totals;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ChurnThread(pool, pages, /*seed=*/200 + t, /*ops=*/3000, totals);
    });
  }
  for (auto& t : threads) t.join();

  disk.Heal();
  pool.Quiesce();
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, totals.attempts.load());
  EXPECT_LE(stats.read_failures, totals.failures.load());

  size_t free_frames = 0;
  for (size_t i = 0; i < pool.shard_count(); ++i) {
    BufferPool& shard = pool.shard(i);
    EXPECT_EQ(shard.policy().EvictableCount(), shard.policy().ResidentCount());
    EXPECT_EQ(shard.PendingIoCount(), 0u);
    free_frames += shard.FreeFrameCount();
  }
  EXPECT_EQ(pool.ResidentCount() + free_frames, pool.capacity());
  EXPECT_TRUE(pool.FlushAll().ok());
}

TEST(AsyncIoConcurrencyTest, SamePageChurnOverTinyPoolCoalescesConstantly) {
  SimDiskManager inner;
  CountingDiskManager disk(&inner);
  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 2;
  options.io_queue_depth = 8;
  BufferPool pool(2, &disk, std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);
  std::vector<PageId> pages = AllocateDb(pool, 4);
  ASSERT_TRUE(pool.FlushAll().ok());

  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> exhausted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RandomEngine rng(/*seed=*/300 + t);
      for (int i = 0; i < 2000; ++i) {
        PageId p = pages[rng.NextUint64() % pages.size()];
        attempts.fetch_add(1, std::memory_order_relaxed);
        auto page = pool.FetchPage(p, AccessType::kRead);
        if (!page.ok()) {
          // Capacity 2 with 8 threads: transient RESOURCE_EXHAUSTED (all
          // frames pinned) is legitimate; nothing else is.
          EXPECT_EQ(page.status().code(), StatusCode::kResourceExhausted);
          exhausted.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        EXPECT_TRUE(pool.UnpinPage(p, false).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  pool.Quiesce();
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(pool.PendingIoCount(), 0u);
  EXPECT_EQ(pool.ResidentCount() + pool.FreeFrameCount(), pool.capacity());
  EXPECT_EQ(stats.hits + stats.misses, attempts.load());
  // Read accounting brackets: a fetch issues at most one physical read, so
  // reads <= misses; and every miss-counted fetch either read, coalesced,
  // or bounced off a full pool (a fetch can both coalesce and then retry
  // as a primary, hence >= rather than ==). The exact one-read-per-group
  // semantics are proven by the gated coalescing tests above.
  EXPECT_LE(disk.TotalReads(), stats.misses);
  EXPECT_GE(disk.TotalReads() + stats.coalesced_reads + exhausted.load(),
            stats.misses);
  EXPECT_TRUE(pool.FlushAll().ok());
}

// ---------------------------------------------------------------------------
// Priority lanes: the anti-starvation property under a demand flood.

TEST(IoPriorityConcurrencyTest, FlushWorkIsBoundedlyDelayedByDemandFlood) {
  constexpr size_t kBudget = 4;
  constexpr size_t kQueueDepth = 32;
  constexpr int kDemandThreads = 4;
  constexpr int kDemandOpsPerThread = 500;
  constexpr int kFlushItems = 50;
  IoDispatcher io(IoDispatcherOptions{.workers = 2,
                                      .queue_depth = kQueueDepth,
                                      .starvation_budget = kBudget});

  std::atomic<uint64_t> demand_done{0};
  std::atomic<uint64_t> flush_done{0};
  std::atomic<uint64_t> max_delay{0};  // Demand completions while queued.

  std::vector<std::thread> demand_threads;
  demand_threads.reserve(kDemandThreads);
  for (int t = 0; t < kDemandThreads; ++t) {
    demand_threads.emplace_back([&] {
      for (int i = 0; i < kDemandOpsPerThread; ++i) {
        io.Run([&] { demand_done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  // Interleave flush posts with the flood; retry rejected posts (the lane
  // is bounded) so every item is eventually ACCEPTED — the property below
  // covers accepted items only.
  std::thread flusher([&] {
    for (int i = 0; i < kFlushItems; ++i) {
      for (;;) {
        uint64_t at_post = demand_done.load(std::memory_order_relaxed);
        bool posted = io.TryPost(
            [&, at_post] {
              uint64_t delay =
                  demand_done.load(std::memory_order_relaxed) - at_post;
              uint64_t seen = max_delay.load(std::memory_order_relaxed);
              while (delay > seen &&
                     !max_delay.compare_exchange_weak(seen, delay)) {
              }
              flush_done.fetch_add(1, std::memory_order_relaxed);
            },
            IoClass::kFlush);
        if (posted) break;
        std::this_thread::yield();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (auto& t : demand_threads) t.join();
  flusher.join();
  io.Drain();

  EXPECT_EQ(flush_done.load(), static_cast<uint64_t>(kFlushItems));
  // Anti-starvation bound: an accepted flush item sits behind at most the
  // items already in its lane (≤ queue_depth), each granted after at most
  // `budget` demand dispatches, plus slack for the two workers' in-flight
  // items and the racy read of the counter. The demand flood alone is
  // 2000 completions — without the budget a flush item could wait out
  // nearly all of them.
  constexpr uint64_t kBound = (kQueueDepth + 1) * kBudget + 16;
  EXPECT_LE(max_delay.load(), kBound);
  IoDispatcherStats stats = io.stats();
  EXPECT_GT(stats.starvation_grants, 0u);
  EXPECT_EQ(stats.lane(IoClass::kFlush).executed,
            static_cast<uint64_t>(kFlushItems));
}

// ---------------------------------------------------------------------------
// Write-behind under threaded churn with injected write faults.

TEST(WriteBehindConcurrencyTest, FaultChurnKeepsWriteBehindInvariants) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/41);

  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 2;
  options.io_queue_depth = 16;
  options.write_behind = true;
  options.flusher = true;
  options.flusher_every_ops = 16;
  options.flusher_batch = 2;
  options.flusher_adaptive = true;
  options.flusher_min_every = 4;
  options.flusher_max_every = 64;
  options.flusher_max_batch = 8;
  options.batch_capacity = 64;

  BufferPool pool(16, &disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}),
                  options);
  std::vector<PageId> pages = AllocateDb(pool, 48);
  ASSERT_TRUE(pool.FlushAll().ok());
  // Write faults only: every fetch failure must then be a full pool (a
  // parked image that cannot re-admit), never an I/O error surfacing on
  // the read path.
  disk.AddRule(FaultRule::FailWithProbability(FaultOp::kWrite, 0.1));

  std::atomic<uint64_t> attempts{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RandomEngine rng(/*seed=*/400 + t);
      for (int i = 0; i < 2000; ++i) {
        PageId p = pages[rng.NextUint64() % pages.size()];
        bool write = rng.NextBernoulli(0.6);
        attempts.fetch_add(1, std::memory_order_relaxed);
        auto page = pool.FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        if (!page.ok()) {
          EXPECT_EQ(page.status().code(), StatusCode::kResourceExhausted);
          continue;
        }
        if (write) {
          uint64_t stamp = static_cast<uint64_t>(t) * 1000003 +
                           static_cast<uint64_t>(i);
          std::memcpy((*page)->Data() + (static_cast<size_t>(t) % 64) *
                                            sizeof(stamp),
                      &stamp, sizeof(stamp));
        }
        EXPECT_TRUE(pool.UnpinPage(p, write).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  disk.Heal();
  pool.Quiesce();
  BufferPoolStats stats = pool.stats();
  // Every fetch resolved to exactly one hit or one miss — including
  // parked re-admits (counted as misses) and victim-write waiters.
  EXPECT_EQ(stats.hits + stats.misses, attempts.load());
  // The write-behind machinery engaged, and failures were re-absorbed:
  // either re-admitted or parked, never dropped.
  EXPECT_GT(stats.writebehind_writes, 0u);
  EXPECT_GT(stats.write_failures, 0u);
  // Settled: no in-flight victim writes, all pins released, frame
  // accounting balances (parked pages hold no frame).
  EXPECT_EQ(pool.PendingVictimWriteCount(), 0u);
  EXPECT_EQ(pool.PendingIoCount(), 0u);
  EXPECT_EQ(pool.policy().EvictableCount(), pool.policy().ResidentCount());
  EXPECT_EQ(pool.ResidentCount() + pool.FreeFrameCount(), pool.capacity());
  // FlushAll persists every surviving dirty page AND every parked image.
  EXPECT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.ParkedVictimCount(), 0u);
  // Nothing was lost: every page is readable afterwards.
  for (PageId p : pages) {
    auto page = pool.FetchPage(p, AccessType::kRead);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
}

TEST(WriteBehindConcurrencyTest, ShardedPoolChurnsWithWriteBehind) {
  SimDiskManager inner;
  FaultInjectingDiskManager disk(&inner, /*seed=*/43);

  BufferPoolOptions options;
  options.io_dispatcher = true;
  options.io_workers = 4;
  options.io_queue_depth = 16;
  options.write_behind = true;
  options.flusher = true;
  options.flusher_every_ops = 16;
  options.flusher_batch = 2;
  options.flusher_adaptive = true;

  ShardedBufferPool pool(
      32, /*num_shards=*/4, &disk,
      [](size_t, size_t) {
        return std::make_unique<LruKPolicy>(LruKOptions{.k = 2});
      },
      options);
  std::vector<PageId> pages = AllocateDb(pool, 96);
  ASSERT_TRUE(pool.FlushAll().ok());
  disk.AddRule(FaultRule::FailWithProbability(FaultOp::kWrite, 0.05));

  std::atomic<uint64_t> attempts{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
      RandomEngine rng(/*seed=*/500 + t);
      for (int i = 0; i < 2000; ++i) {
        PageId p = pages[dist.Sample(rng) - 1];
        bool write = rng.NextBernoulli(0.6);
        attempts.fetch_add(1, std::memory_order_relaxed);
        auto page = pool.FetchPage(
            p, write ? AccessType::kWrite : AccessType::kRead);
        if (!page.ok()) {
          EXPECT_EQ(page.status().code(), StatusCode::kResourceExhausted);
          continue;
        }
        EXPECT_TRUE(pool.UnpinPage(p, write).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  disk.Heal();
  pool.Quiesce();
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, attempts.load());
  EXPECT_GT(stats.writebehind_writes, 0u);
  EXPECT_TRUE(pool.FlushAll().ok());
  size_t free_frames = 0;
  for (size_t i = 0; i < pool.shard_count(); ++i) {
    BufferPool& shard = pool.shard(i);
    EXPECT_EQ(shard.PendingVictimWriteCount(), 0u);
    EXPECT_EQ(shard.ParkedVictimCount(), 0u);
    EXPECT_EQ(shard.PendingIoCount(), 0u);
    free_frames += shard.FreeFrameCount();
  }
  EXPECT_EQ(pool.ResidentCount() + free_frames, pool.capacity());
}

}  // namespace
}  // namespace lruk
