// B+tree tests: CRUD correctness, splits and merges, range scans, and
// structural invariants maintained under randomized insert/delete storms.

#include "btree/btree.h"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "core/lru.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"

namespace lruk {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  // A generous pool so tree structure, not buffering, is under test.
  BTreeTest()
      : pool_(256, &disk_, std::make_unique<LruPolicy>()) {}

  SimDiskManager disk_;
  BufferPool pool_;
};

TEST_F(BTreeTest, EmptyTree) {
  BTree tree(&pool_);
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_FALSE(tree.Get(1).ok());
  EXPECT_FALSE(tree.Delete(1).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, SingleInsertAndGet) {
  BTree tree(&pool_);
  ASSERT_TRUE(tree.Insert(10, 100).ok());
  auto v = tree.Get(10);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100u);
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_FALSE(tree.Get(11).ok());
}

TEST_F(BTreeTest, UpdateOverwritesInPlace) {
  BTree tree(&pool_);
  ASSERT_TRUE(tree.Insert(5, 50).ok());
  ASSERT_TRUE(tree.Update(5, 99).ok());
  EXPECT_EQ(*tree.Get(5), 99u);
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Update(6, 1).code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree.Update(5, 100).ok());
  EXPECT_EQ(*tree.Get(5), 100u);
}

TEST_F(BTreeTest, UpdateAcrossManyLeaves) {
  BTreeOptions options;
  options.leaf_capacity = 4;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  for (uint64_t k = 0; k < 100; k += 7) {
    ASSERT_TRUE(tree.Update(k, k * 1000).ok());
  }
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(*tree.Get(k), k % 7 == 0 ? k * 1000 : k);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, DuplicateInsertRejected) {
  BTree tree(&pool_);
  ASSERT_TRUE(tree.Insert(5, 1).ok());
  Status dup = tree.Insert(5, 2);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(*tree.Get(5), 1u);  // Original value untouched.
  EXPECT_EQ(tree.Size(), 1u);
}

TEST_F(BTreeTest, SequentialInsertCausesSplits) {
  BTreeOptions options;
  options.leaf_capacity = 4;
  options.internal_capacity = 4;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree.Insert(k, k * 7).ok()) << "key " << k;
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (uint64_t k = 0; k < 200; ++k) {
    auto v = tree.Get(k);
    ASSERT_TRUE(v.ok()) << "key " << k;
    EXPECT_EQ(*v, k * 7);
  }
  auto pages = tree.CountPages();
  ASSERT_TRUE(pages.ok());
  EXPECT_GT(*pages, 50u);  // Many small nodes: splits actually happened.
}

TEST_F(BTreeTest, ReverseAndShuffledInsertOrders) {
  BTreeOptions options;
  options.leaf_capacity = 6;
  options.internal_capacity = 6;
  for (int mode = 0; mode < 2; ++mode) {
    BTree tree(&pool_, options);
    std::vector<uint64_t> keys(300);
    for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
    if (mode == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      RandomEngine rng(77);
      rng.Shuffle(keys);
    }
    for (uint64_t k : keys) ASSERT_TRUE(tree.Insert(k, k + 1).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok());
    for (uint64_t k = 0; k < 300; ++k) {
      ASSERT_TRUE(tree.Get(k).ok()) << "mode " << mode << " key " << k;
    }
  }
}

TEST_F(BTreeTest, RangeScanReturnsSortedWindow) {
  BTreeOptions options;
  options.leaf_capacity = 4;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 100; k += 2) {  // Even keys only.
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  auto range = tree.Range(11, 29);
  ASSERT_TRUE(range.ok());
  std::vector<std::pair<uint64_t, uint64_t>> expected;
  for (uint64_t k = 12; k <= 28; k += 2) expected.emplace_back(k, k);
  EXPECT_EQ(*range, expected);
}

TEST_F(BTreeTest, ScanEarlyStop) {
  BTree tree(&pool_);
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  int visited = 0;
  ASSERT_TRUE(tree.Scan(0, 49, [&visited](uint64_t, uint64_t) {
                    return ++visited < 10;
                  }).ok());
  EXPECT_EQ(visited, 10);
}

TEST_F(BTreeTest, ScanAcrossLeafBoundaries) {
  BTreeOptions options;
  options.leaf_capacity = 4;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(tree.Insert(k, 2 * k).ok());
  auto all = tree.Range(0, UINT64_MAX);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 64u);
  for (uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ((*all)[k].first, k);
    EXPECT_EQ((*all)[k].second, 2 * k);
  }
}

TEST_F(BTreeTest, DeleteLeavesTreeConsistent) {
  BTreeOptions options;
  options.leaf_capacity = 4;
  options.internal_capacity = 4;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  // Delete every third key.
  for (uint64_t k = 0; k < 100; k += 3) {
    ASSERT_TRUE(tree.Delete(k).ok()) << "key " << k;
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (uint64_t k = 0; k < 100; ++k) {
    if (k % 3 == 0) {
      EXPECT_FALSE(tree.Get(k).ok()) << "key " << k;
    } else {
      EXPECT_TRUE(tree.Get(k).ok()) << "key " << k;
    }
  }
  EXPECT_EQ(tree.Size(), 100u - 34u);
}

TEST_F(BTreeTest, DeleteEverythingCollapsesTree) {
  BTreeOptions options;
  options.leaf_capacity = 4;
  options.internal_capacity = 4;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 150; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  for (uint64_t k = 0; k < 150; ++k) {
    ASSERT_TRUE(tree.Delete(k).ok()) << "key " << k;
    if (k % 10 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "key " << k;
    }
  }
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.Size(), 0u);
  // All tree pages returned to the allocator except nothing: the root is
  // gone too, so a fresh insert builds a new tree.
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  EXPECT_TRUE(tree.Get(1).ok());
}

TEST_F(BTreeTest, DeleteMissingKeyFails) {
  BTree tree(&pool_);
  ASSERT_TRUE(tree.Insert(1, 1).ok());
  EXPECT_EQ(tree.Delete(2).code(), StatusCode::kNotFound);
  EXPECT_EQ(tree.Size(), 1u);
}

TEST_F(BTreeTest, RandomizedInsertDeleteAgainstStdMap) {
  BTreeOptions options;
  options.leaf_capacity = 5;
  options.internal_capacity = 5;
  BTree tree(&pool_, options);
  std::map<uint64_t, uint64_t> model;
  RandomEngine rng(2024);

  for (int step = 0; step < 3000; ++step) {
    uint64_t key = rng.NextBounded(500);
    double action = rng.NextDouble();
    if (action < 0.6) {
      uint64_t value = rng.NextUint64();
      Status status = tree.Insert(key, value);
      if (model.contains(key)) {
        ASSERT_EQ(status.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(status.ok());
        model[key] = value;
      }
    } else if (action < 0.9) {
      Status status = tree.Delete(key);
      if (model.contains(key)) {
        ASSERT_TRUE(status.ok()) << status.ToString();
        model.erase(key);
      } else {
        ASSERT_EQ(status.code(), StatusCode::kNotFound);
      }
    } else {
      auto got = tree.Get(key);
      if (model.contains(key)) {
        ASSERT_TRUE(got.ok());
        ASSERT_EQ(*got, model[key]);
      } else {
        ASSERT_FALSE(got.ok());
      }
    }
    ASSERT_EQ(tree.Size(), model.size());
    if (step % 250 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Full final comparison via scan.
  auto all = tree.Range(0, UINT64_MAX);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    EXPECT_EQ((*all)[i].first, k);
    EXPECT_EQ((*all)[i].second, v);
    ++i;
  }
}

TEST_F(BTreeTest, LeafPageIdsCoverAllLeaves) {
  BTreeOptions options;
  options.leaf_capacity = 4;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  auto leaves = tree.LeafPageIds();
  ASSERT_TRUE(leaves.ok());
  // 64 keys at <= 4 per leaf: at least 16 leaves.
  EXPECT_GE(leaves->size(), 16u);
}

TEST_F(BTreeTest, Example11GeometryHasExactly100PackedLeaves) {
  // The paper's Example 1.1: 20,000 keys at 200 entries per packed-full
  // leaf = exactly 100 leaf pages, thanks to the rightmost-split
  // optimization (pack_sequential_inserts, on by default).
  BTreeOptions options;
  options.leaf_capacity = 200;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 20000; ++k) {
    ASSERT_TRUE(tree.Insert(k, 100 + k / 2).ok());
  }
  auto leaves = tree.LeafPageIds();
  ASSERT_TRUE(leaves.ok());
  EXPECT_EQ(leaves->size(), 100u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, PackedInsertsDisabledGivesHalfFullLeaves) {
  BTreeOptions options;
  options.leaf_capacity = 200;
  options.pack_sequential_inserts = false;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 20000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  auto leaves = tree.LeafPageIds();
  ASSERT_TRUE(leaves.ok());
  EXPECT_GT(leaves->size(), 150u);  // Ceil-half splits: ~2x the leaves.
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST_F(BTreeTest, PackedTailLeafSurvivesDeleteRebalance) {
  BTreeOptions options;
  options.leaf_capacity = 6;
  options.internal_capacity = 6;
  BTree tree(&pool_, options);
  for (uint64_t k = 0; k < 60; ++k) ASSERT_TRUE(tree.Insert(k, k).ok());
  // Drain the (possibly underfull) tail region and verify consistency.
  for (uint64_t k = 59; k >= 30; --k) {
    ASSERT_TRUE(tree.Delete(k).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "key " << k;
  }
  for (uint64_t k = 0; k < 30; ++k) ASSERT_TRUE(tree.Get(k).ok());
}

TEST_F(BTreeTest, SmallPoolStillWorks) {
  // The tree must operate with a pool barely larger than its height
  // (guards pin one page per level during descent).
  SimDiskManager disk;
  BufferPool tiny_pool(8, &disk, std::make_unique<LruPolicy>());
  BTreeOptions options;
  options.leaf_capacity = 4;
  options.internal_capacity = 4;
  BTree tree(&tiny_pool, options);
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok()) << "key " << k;
  }
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree.Get(k).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GT(disk.stats().reads, 0u);  // The pool actually paged.
}

}  // namespace
}  // namespace lruk
