// Tests for the two oracle policies: A0 (true probabilities) and Belady B0
// (true future).

#include <optional>
#include <vector>

#include "core/a0.h"
#include "core/belady.h"
#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(A0Test, EvictsSmallestProbabilityFirst) {
  A0Policy a0({0.5, 0.1, 0.3, 0.1});
  a0.Admit(0, AccessType::kRead);
  a0.Admit(1, AccessType::kRead);
  a0.Admit(2, AccessType::kRead);
  EXPECT_EQ(a0.Evict(), std::optional<PageId>(1));  // beta = 0.1.
  EXPECT_EQ(a0.Evict(), std::optional<PageId>(2));  // beta = 0.3.
  EXPECT_EQ(a0.Evict(), std::optional<PageId>(0));  // beta = 0.5.
}

TEST(A0Test, TiesBrokenByPageId) {
  A0Policy a0({0.2, 0.2, 0.2});
  a0.Admit(2, AccessType::kRead);
  a0.Admit(0, AccessType::kRead);
  a0.Admit(1, AccessType::kRead);
  EXPECT_EQ(a0.Evict(), std::optional<PageId>(0));
  EXPECT_EQ(a0.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(a0.Evict(), std::optional<PageId>(2));
}

TEST(A0Test, ReferencesDoNotChangeOrdering) {
  A0Policy a0({0.9, 0.1});
  a0.Admit(0, AccessType::kRead);
  a0.Admit(1, AccessType::kRead);
  for (int i = 0; i < 10; ++i) a0.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(a0.Evict(), std::optional<PageId>(1));  // Still lowest beta.
}

TEST(A0Test, UnknownPagesHaveZeroProbability) {
  A0Policy a0({0.5, 0.5});
  a0.Admit(0, AccessType::kRead);
  a0.Admit(99, AccessType::kRead);  // Outside the vector: beta = 0.
  EXPECT_DOUBLE_EQ(a0.ProbabilityOf(99), 0.0);
  EXPECT_EQ(a0.Evict(), std::optional<PageId>(99));
}

TEST(A0Test, PinningRespected) {
  A0Policy a0({0.1, 0.9});
  a0.Admit(0, AccessType::kRead);
  a0.Admit(1, AccessType::kRead);
  a0.SetEvictable(0, false);
  EXPECT_EQ(a0.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(a0.Evict(), std::nullopt);
}

TEST(BeladyTest, EvictsFarthestFutureUse) {
  // Trace: 1 2 3 1 2 3 ... page order of next use after t=3 is 1,2,3.
  std::vector<PageId> trace = {1, 2, 3, 1, 2, 3};
  BeladyPolicy b0(trace);
  b0.Admit(1, AccessType::kRead);
  b0.Admit(2, AccessType::kRead);
  b0.Admit(3, AccessType::kRead);
  // Next uses: 1 -> pos 3, 2 -> pos 4, 3 -> pos 5. Farthest is 3.
  EXPECT_EQ(b0.Evict(), std::optional<PageId>(3));
}

TEST(BeladyTest, NeverUsedAgainIsPreferredVictim) {
  std::vector<PageId> trace = {1, 2, 3, 1, 1, 1};
  BeladyPolicy b0(trace);
  b0.Admit(1, AccessType::kRead);
  b0.Admit(2, AccessType::kRead);
  b0.Admit(3, AccessType::kRead);
  // Pages 2 and 3 never recur; the larger "infinity" set is drained first.
  auto v1 = b0.Evict();
  auto v2 = b0.Evict();
  ASSERT_TRUE(v1.has_value() && v2.has_value());
  EXPECT_TRUE((*v1 == 2 && *v2 == 3) || (*v1 == 3 && *v2 == 2));
  EXPECT_EQ(b0.Evict(), std::optional<PageId>(1));
}

TEST(BeladyTest, RecordAccessAdvancesOracle) {
  std::vector<PageId> trace = {1, 1, 2, 1};
  BeladyPolicy b0(trace);
  b0.Admit(1, AccessType::kRead);         // pos 0, next use 1.
  b0.RecordAccess(1, AccessType::kRead);  // pos 1, next use 3.
  b0.Admit(2, AccessType::kRead);         // pos 2, next use: never.
  EXPECT_EQ(b0.Position(), 3u);
  EXPECT_EQ(b0.Evict(), std::optional<PageId>(2));
}

TEST(BeladyTest, AchievesOptimalHitsOnKnownPattern) {
  // Capacity 2, trace 1 2 3 1 2 3 1 2 3: OPT hits 3 of 9 (keep 1 and 2,
  // stream 3 through); LRU would hit 0.
  std::vector<PageId> trace;
  for (int i = 0; i < 3; ++i) {
    trace.push_back(1);
    trace.push_back(2);
    trace.push_back(3);
  }
  BeladyPolicy b0(trace);
  size_t hits = 0;
  size_t resident_cap = 2;
  std::vector<PageId> resident;
  for (PageId p : trace) {
    bool hit = b0.IsResident(p);
    if (hit) {
      ++hits;
      b0.RecordAccess(p, AccessType::kRead);
    } else {
      if (b0.ResidentCount() == resident_cap) {
        ASSERT_TRUE(b0.Evict().has_value());
      }
      b0.Admit(p, AccessType::kRead);
    }
  }
  // OPT on this trace with capacity 2: references 4..9 alternate hits.
  EXPECT_GE(hits, 3u);
}

}  // namespace
}  // namespace lruk
