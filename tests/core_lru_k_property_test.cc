// Property tests for LRU-K, parameterized over K, the Correlated Reference
// Period, the Retained Information Period, and the random seed:
//
//  1. All three victim-index structures (lazy min-heap, ordered set, the
//     paper's O(n) linear scan — LruKOptions::victim_index) are
//     behaviourally identical on arbitrary operation sequences, including
//     pinning, removal, post-eviction re-admission, fallback eviction
//     (every page inside its CRP) and mid-script history purges.
//  2. LRU-K with K = 1 and CRP = 0 is exactly classical LRU.
//  3. The policy is deterministic from its inputs.
//  4. Internal counters agree with a model of the resident set.

#include <optional>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "core/lru.h"
#include "core/lru_k.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace lruk {
namespace {

constexpr size_t kCapacity = 16;
constexpr PageId kPages = 48;
constexpr int kSteps = 4000;

// Drives N policies with an identical randomized reference/pin/remove
// script, asserting identical observable behavior at every step.
void RunLockstepMany(const std::vector<ReplacementPolicy*>& policies,
                     uint64_t seed) {
  ASSERT_FALSE(policies.empty());
  RandomEngine rng(seed);
  std::unordered_set<PageId> resident;
  std::unordered_set<PageId> pinned;

  // Evicts from every policy; all victims must agree. Returns the common
  // victim (nullopt when everything is pinned / inside its CRP with no
  // fallback possible).
  auto evict_all = [&](int step) -> std::optional<PageId> {
    std::optional<PageId> first = policies[0]->Evict();
    for (size_t i = 1; i < policies.size(); ++i) {
      std::optional<PageId> other = policies[i]->Evict();
      EXPECT_EQ(first, other)
          << "victims diverged at step " << step << " (policy 0 vs " << i
          << ")";
    }
    return first;
  };

  for (int step = 0; step < kSteps; ++step) {
    double action = rng.NextDouble();
    if (action < 0.80) {
      // A page reference.
      PageId p = rng.NextBounded(kPages);
      if (resident.contains(p)) {
        for (ReplacementPolicy* policy : policies) {
          policy->RecordAccess(p, AccessType::kRead);
        }
      } else {
        if (resident.size() == kCapacity) {
          auto victim = evict_all(step);
          if (::testing::Test::HasFailure()) return;
          if (!victim.has_value()) continue;  // Everything pinned; skip.
          resident.erase(*victim);
          pinned.erase(*victim);
        }
        for (ReplacementPolicy* policy : policies) {
          policy->Admit(p, AccessType::kRead);
        }
        resident.insert(p);
      }
    } else if (action < 0.90) {
      // Toggle a pin on a random resident page.
      if (resident.empty()) continue;
      std::vector<PageId> pool(resident.begin(), resident.end());
      PageId p = pool[rng.NextBounded(pool.size())];
      bool make_evictable = pinned.contains(p);
      for (ReplacementPolicy* policy : policies) {
        policy->SetEvictable(p, make_evictable);
      }
      if (make_evictable) {
        pinned.erase(p);
      } else {
        pinned.insert(p);
      }
    } else if (action < 0.95) {
      // Remove a random resident page.
      if (resident.empty()) continue;
      std::vector<PageId> pool(resident.begin(), resident.end());
      PageId p = pool[rng.NextBounded(pool.size())];
      for (ReplacementPolicy* policy : policies) policy->Remove(p);
      resident.erase(p);
      pinned.erase(p);
    } else {
      // Spontaneous eviction.
      auto victim = evict_all(step);
      if (::testing::Test::HasFailure()) return;
      if (victim.has_value()) {
        resident.erase(*victim);
        pinned.erase(*victim);
      }
    }

    for (ReplacementPolicy* policy : policies) {
      ASSERT_EQ(policy->ResidentCount(), resident.size());
      ASSERT_EQ(policy->EvictableCount(), resident.size() - pinned.size());
    }
    for (PageId p = 0; p < kPages; ++p) {
      for (ReplacementPolicy* policy : policies) {
        ASSERT_EQ(policy->IsResident(p), resident.contains(p));
      }
    }
  }
}

void RunLockstep(ReplacementPolicy& a, ReplacementPolicy& b, uint64_t seed) {
  RunLockstepMany({&a, &b}, seed);
}

class LruKImplEquivalence
    : public ::testing::TestWithParam<
          std::tuple<int, Timestamp, Timestamp, uint64_t>> {};

TEST_P(LruKImplEquivalence, IndexedMatchesLinearScan) {
  auto [k, crp, rip, seed] = GetParam();
  LruKOptions indexed_opts;
  indexed_opts.k = k;
  indexed_opts.correlated_reference_period = crp;
  indexed_opts.retained_information_period = rip;
  // A short demon period so a finite RIP actually purges mid-script (the
  // default 4096 would never fire inside kSteps references).
  indexed_opts.purge_interval = 64;
  LruKOptions linear_opts = indexed_opts;
  linear_opts.use_linear_scan = true;

  LruKPolicy indexed(indexed_opts);
  LruKPolicy linear(linear_opts);
  RunLockstep(indexed, linear, seed);
}

// The RIP axis sweeps infinite retention plus finite periods straddling
// the reuse distance of the kPages/kCapacity script, so victim selection
// runs both with and without expired-history discards; combined with
// nonzero CRPs this covers the corner where the linear-scan and
// ordered-index victim paths could diverge (history shifts by the closed
// correlated period re-key the index; purges drop blocks the scan would
// otherwise visit).
INSTANTIATE_TEST_SUITE_P(
    KCrpRipSeedGrid, LruKImplEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values<Timestamp>(0, 3, 20),
                       ::testing::Values<Timestamp>(kInfinitePeriod, 48, 400),
                       ::testing::Values<uint64_t>(1, 7, 1234)));

// Three-way lockstep across every victim-index structure: the lazy heap,
// the ordered set and the linear scan must pick byte-identical victims on
// the same randomized script (references, pin toggles, removals,
// spontaneous evictions — so evicted pages are re-admitted with surviving
// history, and with a finite RIP the purge demon fires mid-script). The
// CRP axis includes a period longer than the whole script, which forces
// every eviction down the fallback path (no page is ever eligible).
class LruKIndexEquivalence
    : public ::testing::TestWithParam<
          std::tuple<int, Timestamp, Timestamp, uint64_t>> {};

TEST_P(LruKIndexEquivalence, AllThreeIndexesPickIdenticalVictims) {
  auto [k, crp, rip, seed] = GetParam();
  LruKOptions options;
  options.k = k;
  options.correlated_reference_period = crp;
  options.retained_information_period = rip;
  options.purge_interval = 64;

  LruKOptions heap_opts = options;
  heap_opts.victim_index = VictimIndex::kLazyHeap;
  LruKOptions set_opts = options;
  set_opts.victim_index = VictimIndex::kOrderedSet;
  LruKOptions linear_opts = options;
  linear_opts.victim_index = VictimIndex::kLinear;

  LruKPolicy heap(heap_opts);
  LruKPolicy ordered(set_opts);
  LruKPolicy linear(linear_opts);
  ASSERT_EQ(heap.victim_index(), VictimIndex::kLazyHeap);
  ASSERT_EQ(ordered.victim_index(), VictimIndex::kOrderedSet);
  ASSERT_EQ(linear.victim_index(), VictimIndex::kLinear);

  RunLockstepMany({&heap, &ordered, &linear}, seed);

  // The structures must agree on the side effects too, not just victims.
  EXPECT_EQ(heap.fallback_evictions(), ordered.fallback_evictions());
  EXPECT_EQ(heap.fallback_evictions(), linear.fallback_evictions());
  EXPECT_EQ(heap.HistorySize(), ordered.HistorySize());
  EXPECT_EQ(heap.HistorySize(), linear.HistorySize());
  if (crp > static_cast<Timestamp>(kSteps)) {
    // Sanity: the fallback-heavy axis actually exercised the fallback.
    EXPECT_GT(heap.fallback_evictions(), 0u);
  }
  // The lazy heap may hold stale duplicates, but it must stay bounded by
  // pages-with-history, not grow with the operation count.
  EXPECT_LE(heap.VictimHeapSize(), heap.HistorySize() + kCapacity);
}

INSTANTIATE_TEST_SUITE_P(
    KCrpRipSeedGrid, LruKIndexEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 5),
                       ::testing::Values<Timestamp>(0, 3, 5000),
                       ::testing::Values<Timestamp>(kInfinitePeriod, 48),
                       ::testing::Values<uint64_t>(1, 7, 1234)));

class LruK1VsLru : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LruK1VsLru, K1WithZeroCrpIsClassicalLru) {
  LruKOptions options;
  options.k = 1;
  options.correlated_reference_period = 0;
  LruKPolicy lru_k(options);
  LruPolicy lru;
  RunLockstep(lru_k, lru, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruK1VsLru,
                         ::testing::Values<uint64_t>(2, 3, 5, 8, 13, 21));

class LruKDeterminism
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(LruKDeterminism, SameScriptSameBehavior) {
  auto [k, seed] = GetParam();
  LruKOptions options;
  options.k = k;
  LruKPolicy a(options);
  LruKPolicy b(options);
  RunLockstep(a, b, seed);  // Lockstep with itself proves determinism.
}

INSTANTIATE_TEST_SUITE_P(
    KSeedGrid, LruKDeterminism,
    ::testing::Combine(::testing::Values(2, 4),
                       ::testing::Values<uint64_t>(99, 100)));

// On a pure reference stream (no pins/removes), the eviction victim under
// K=2 always has the maximal backward-2-distance among resident pages —
// checked against brute force over DebugBlock.
TEST(LruKVictimProperty, VictimMaximizesBackwardKDistance) {
  LruKOptions options;
  options.k = 2;
  LruKPolicy policy(options);
  RandomEngine rng(4242);
  std::unordered_set<PageId> resident;

  for (int step = 0; step < 3000; ++step) {
    PageId p = rng.NextBounded(kPages);
    if (resident.contains(p)) {
      policy.RecordAccess(p, AccessType::kRead);
      continue;
    }
    if (resident.size() == kCapacity) {
      // Compute the expected victim by brute force *before* evicting:
      // smallest (HIST(p,K), HIST(p,1)) pair.
      std::optional<std::tuple<Timestamp, Timestamp, PageId>> best;
      for (PageId q : resident) {
        const HistoryBlock* block = policy.DebugBlock(q);
        ASSERT_NE(block, nullptr);
        auto key = std::make_tuple(block->HistK(), block->Hist1(), q);
        if (!best || key < *best) best = key;
      }
      auto victim = policy.Evict();
      ASSERT_TRUE(victim.has_value());
      ASSERT_EQ(*victim, std::get<2>(*best)) << "step " << step;
      resident.erase(*victim);
    }
    policy.Admit(p, AccessType::kRead);
    resident.insert(p);
  }
}

// With CRP = 0 and an infinite RIP, LRU-K's eviction priorities depend
// only on the reference string, never on the buffer size, so it is a
// stack algorithm: hit counts are monotone non-decreasing in capacity
// (the inclusion property). This is also why the B(1)/B(2) inversion in
// the table benches is well-defined.
TEST(LruKStackProperty, HitsMonotoneInCapacity) {
  RandomEngine rng(777);
  std::vector<PageId> trace;
  for (int i = 0; i < 20000; ++i) {
    // Mildly skewed: square of a uniform draw concentrates on low ids.
    uint64_t u = rng.NextBounded(64);
    trace.push_back(u * u / 64);
  }

  for (int k : {1, 2, 3}) {
    uint64_t prev_hits = 0;
    for (size_t capacity : {4u, 8u, 16u, 32u, 64u}) {
      LruKOptions options;
      options.k = k;
      LruKPolicy policy(options);
      uint64_t hits = 0;
      for (PageId p : trace) {
        if (policy.IsResident(p)) {
          policy.RecordAccess(p, AccessType::kRead);
          ++hits;
        } else {
          if (policy.ResidentCount() == capacity) {
            ASSERT_TRUE(policy.Evict().has_value());
          }
          policy.Admit(p, AccessType::kRead);
        }
      }
      ASSERT_GE(hits, prev_hits)
          << "K=" << k << " capacity=" << capacity;
      prev_hits = hits;
    }
  }
}

}  // namespace
}  // namespace lruk
