#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(SplitMix64Test, ProducesKnownSequenceDeterministically) {
  uint64_t s1 = 12345;
  uint64_t s2 = 12345;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SplitMix64Next(s1), SplitMix64Next(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  uint64_t a = 1;
  uint64_t b = 2;
  EXPECT_NE(SplitMix64Next(a), SplitMix64Next(b));
}

TEST(RandomEngineTest, DeterministicFromSeed) {
  RandomEngine a(99);
  RandomEngine b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomEngineTest, SeedsProduceDistinctStreams) {
  RandomEngine a(1);
  RandomEngine b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RandomEngineTest, NextBoundedStaysInRange) {
  RandomEngine rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomEngineTest, NextBoundedOneAlwaysZero) {
  RandomEngine rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RandomEngineTest, NextBoundedIsRoughlyUniform) {
  RandomEngine rng(11);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  double expected = static_cast<double>(kDraws) / kBuckets;
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.1) << "bucket " << b;
  }
}

TEST(RandomEngineTest, NextInRangeInclusiveBounds) {
  RandomEngine rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomEngineTest, NextDoubleInUnitInterval) {
  RandomEngine rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomEngineTest, BernoulliEdgeCases) {
  RandomEngine rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RandomEngineTest, BernoulliMatchesProbability) {
  RandomEngine rng(17);
  int heads = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.3, 0.01);
}

TEST(RandomEngineTest, WeightedSamplingRespectsWeights) {
  RandomEngine rng(23);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.015);
}

TEST(RandomEngineTest, WeightedSamplingSkipsZeroWeights) {
  RandomEngine rng(29);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextWeighted(weights), 1u);
  }
}

TEST(RandomEngineTest, ShuffleIsAPermutation) {
  RandomEngine rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RandomEngineTest, ShuffleHandlesEmptyAndSingle) {
  RandomEngine rng(31);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RandomEngineTest, ForkedEnginesAreIndependentAndDeterministic) {
  RandomEngine parent1(77);
  RandomEngine parent2(77);
  RandomEngine child1 = parent1.Fork();
  RandomEngine child2 = parent2.Fork();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child1.NextUint64(), child2.NextUint64());
  }
  // Child stream should differ from the parent's continued stream.
  RandomEngine parent3(77);
  RandomEngine child3 = parent3.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent3.NextUint64() == child3.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace lruk
