#include "sim/cost_model.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace lruk {
namespace {

TEST(ExpectedCostTest, EmptyBufferCostsEverything) {
  std::vector<double> probs = {0.5, 0.3, 0.2};
  EXPECT_DOUBLE_EQ(ExpectedCost(probs, {}), 1.0);
}

TEST(ExpectedCostTest, FullCoverageCostsNothing) {
  std::vector<double> probs = {0.5, 0.3, 0.2};
  std::unordered_set<PageId> resident = {0, 1, 2};
  EXPECT_NEAR(ExpectedCost(probs, resident), 0.0, 1e-12);
}

TEST(ExpectedCostTest, PartialCoverage) {
  std::vector<double> probs = {0.5, 0.3, 0.2};
  std::unordered_set<PageId> resident = {0};
  EXPECT_NEAR(ExpectedCost(probs, resident), 0.5, 1e-12);
}

TEST(ExpectedCostTest, UnknownPagesContributeZero) {
  std::vector<double> probs = {0.5, 0.5};
  std::unordered_set<PageId> resident = {0, 77};
  EXPECT_NEAR(ExpectedCost(probs, resident), 0.5, 1e-12);
}

TEST(FiveMinuteRuleTest, Classic1987ParametersGiveAbout100Seconds) {
  // [GRAYPUT]: $2000/arm at 15 accesses/sec, $5/KB memory, 4KB pages
  // => break-even interarrival ~ 100s-400s ("five minutes").
  double seconds = FiveMinuteRuleBreakEvenSeconds();
  EXPECT_GT(seconds, 30.0);
  EXPECT_LT(seconds, 500.0);
}

TEST(FiveMinuteRuleTest, CheaperMemoryLengthensBreakEven) {
  FiveMinuteRuleParams cheap;
  cheap.memory_price_per_mb /= 10.0;
  EXPECT_GT(FiveMinuteRuleBreakEvenSeconds(cheap),
            FiveMinuteRuleBreakEvenSeconds());
}

TEST(FiveMinuteRuleTest, FasterDisksShortenBreakEven) {
  FiveMinuteRuleParams fast;
  fast.disk_accesses_per_second *= 10.0;
  EXPECT_LT(FiveMinuteRuleBreakEvenSeconds(fast),
            FiveMinuteRuleBreakEvenSeconds());
}

TEST(RetainedInformationTest, ScalesLinearlyWithK) {
  // Section 2.1.2: RIP ~ 2x the break-even period for LRU-2.
  double base = FiveMinuteRuleBreakEvenSeconds();
  EXPECT_NEAR(SuggestedRetainedInformationSeconds(1), base, 1e-9);
  EXPECT_NEAR(SuggestedRetainedInformationSeconds(2), 2 * base, 1e-9);
  EXPECT_NEAR(SuggestedRetainedInformationSeconds(5), 5 * base, 1e-9);
}

}  // namespace
}  // namespace lruk
