// Baseline-policy tests: per-policy semantics plus a parameterized
// interface-contract suite every ReplacementPolicy must satisfy.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/arc.h"
#include "core/clock_policy.h"
#include "core/domain_separation.h"
#include "core/fifo.h"
#include "core/gclock.h"
#include "core/lfu.h"
#include "core/lrd.h"
#include "core/lru.h"
#include "core/lru_k.h"
#include "core/mru.h"
#include "core/random_policy.h"
#include "core/two_q.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace lruk {
namespace {

// ---------- LFU ----------

TEST(LfuTest, EvictsLowestCount) {
  LfuPolicy lfu;
  lfu.Admit(1, AccessType::kRead);
  lfu.Admit(2, AccessType::kRead);
  lfu.RecordAccess(1, AccessType::kRead);
  lfu.RecordAccess(1, AccessType::kRead);
  lfu.RecordAccess(2, AccessType::kRead);
  EXPECT_EQ(lfu.ReferenceCount(1), 3u);
  EXPECT_EQ(lfu.ReferenceCount(2), 2u);
  EXPECT_EQ(lfu.Evict(), std::optional<PageId>(2));
}

TEST(LfuTest, TieBrokenByLeastRecentUse) {
  LfuPolicy lfu;
  lfu.Admit(1, AccessType::kRead);
  lfu.Admit(2, AccessType::kRead);
  lfu.RecordAccess(1, AccessType::kRead);  // Counts tie at 2 after this...
  lfu.RecordAccess(2, AccessType::kRead);  // ...and 2 is more recent.
  EXPECT_EQ(lfu.Evict(), std::optional<PageId>(1));
}

TEST(LfuTest, NeverForgetsByDefault) {
  // The paper's LFU (Section 4.3) keeps counts across residencies.
  LfuPolicy lfu;
  lfu.Admit(1, AccessType::kRead);
  lfu.RecordAccess(1, AccessType::kRead);
  lfu.RecordAccess(1, AccessType::kRead);
  ASSERT_EQ(lfu.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(lfu.ReferenceCount(1), 3u);  // Survives the eviction.
  lfu.Admit(2, AccessType::kRead);
  lfu.Admit(1, AccessType::kRead);  // Count becomes 4.
  // Page 2 (count 1) loses to page 1 (count 4) despite being resident
  // longer: old fame protects page 1.
  EXPECT_EQ(lfu.Evict(), std::optional<PageId>(2));
}

TEST(LfuTest, ForgetOnEvictionVariantResetsCounts) {
  LfuOptions options;
  options.forget_on_eviction = true;
  LfuPolicy lfu(options);
  EXPECT_EQ(lfu.Name(), "LFU-inbuf");
  lfu.Admit(1, AccessType::kRead);
  lfu.RecordAccess(1, AccessType::kRead);
  ASSERT_EQ(lfu.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(lfu.ReferenceCount(1), 0u);
}

TEST(LfuTest, PinnedPageSurvivesEviction) {
  LfuPolicy lfu;
  lfu.Admit(1, AccessType::kRead);
  lfu.Admit(2, AccessType::kRead);
  lfu.RecordAccess(2, AccessType::kRead);
  lfu.SetEvictable(1, false);
  EXPECT_EQ(lfu.Evict(), std::optional<PageId>(2));  // 1 is pinned.
}

// ---------- FIFO ----------

TEST(FifoTest, EvictsInArrivalOrderIgnoringAccesses) {
  FifoPolicy fifo;
  fifo.Admit(1, AccessType::kRead);
  fifo.Admit(2, AccessType::kRead);
  fifo.Admit(3, AccessType::kRead);
  fifo.RecordAccess(1, AccessType::kRead);  // Must not refresh.
  fifo.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(fifo.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(fifo.Evict(), std::optional<PageId>(2));
  EXPECT_EQ(fifo.Evict(), std::optional<PageId>(3));
}

TEST(FifoTest, SkipsPinned) {
  FifoPolicy fifo;
  fifo.Admit(1, AccessType::kRead);
  fifo.Admit(2, AccessType::kRead);
  fifo.SetEvictable(1, false);
  EXPECT_EQ(fifo.Evict(), std::optional<PageId>(2));
}

// ---------- MRU ----------

TEST(MruTest, EvictsMostRecentlyUsed) {
  MruPolicy mru;
  mru.Admit(1, AccessType::kRead);
  mru.Admit(2, AccessType::kRead);
  mru.Admit(3, AccessType::kRead);
  mru.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(mru.Evict(), std::optional<PageId>(1));
  EXPECT_EQ(mru.Evict(), std::optional<PageId>(3));
  EXPECT_EQ(mru.Evict(), std::optional<PageId>(2));
}

// ---------- CLOCK ----------

TEST(ClockTest, SecondChanceProtectsReferencedPages) {
  ClockPolicy clock;
  clock.Admit(1, AccessType::kRead);
  clock.Admit(2, AccessType::kRead);
  clock.Admit(3, AccessType::kRead);
  // All three still carry their admission reference bit; the first sweep
  // clears them, the second evicts the first swept page.
  auto v1 = clock.Evict();
  ASSERT_TRUE(v1.has_value());
  // Re-reference a survivor: it must outlive the next unreferenced page.
  std::vector<PageId> alive;
  for (PageId p : {PageId{1}, PageId{2}, PageId{3}}) {
    if (clock.IsResident(p)) alive.push_back(p);
  }
  ASSERT_EQ(alive.size(), 2u);
  clock.RecordAccess(alive[0], AccessType::kRead);
  auto v2 = clock.Evict();
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, alive[1]);
}

TEST(ClockTest, EvictAllThenEmpty) {
  ClockPolicy clock;
  clock.Admit(1, AccessType::kRead);
  clock.Admit(2, AccessType::kRead);
  EXPECT_TRUE(clock.Evict().has_value());
  EXPECT_TRUE(clock.Evict().has_value());
  EXPECT_EQ(clock.Evict(), std::nullopt);
}

TEST(ClockTest, RemoveUnderTheHand) {
  ClockPolicy clock;
  clock.Admit(1, AccessType::kRead);
  clock.Remove(1);
  EXPECT_EQ(clock.ResidentCount(), 0u);
  clock.Admit(2, AccessType::kRead);
  EXPECT_EQ(clock.Evict(), std::optional<PageId>(2));
}

// ---------- GCLOCK ----------

TEST(GClockTest, CounterGrantsMultipleSweepSurvivals) {
  GClockOptions options;
  options.initial_count = 1;
  options.reference_increment = 2;
  options.max_count = 8;
  GClockPolicy gclock(options);
  gclock.Admit(1, AccessType::kRead);
  gclock.Admit(2, AccessType::kRead);
  // Pump page 1's counter well above page 2's.
  for (int i = 0; i < 3; ++i) gclock.RecordAccess(1, AccessType::kRead);
  EXPECT_EQ(gclock.Evict(), std::optional<PageId>(2));
}

TEST(GClockTest, CounterIsCapped) {
  GClockOptions options;
  options.max_count = 2;
  GClockPolicy gclock(options);
  gclock.Admit(1, AccessType::kRead);
  for (int i = 0; i < 100; ++i) gclock.RecordAccess(1, AccessType::kRead);
  gclock.Admit(2, AccessType::kRead);
  // Page 1's counter is capped at 2, so it cannot survive indefinitely.
  EXPECT_EQ(gclock.Evict(), std::optional<PageId>(2));  // count 1 < cap.
  EXPECT_EQ(gclock.Evict(), std::optional<PageId>(1));
}

TEST(GClockTest, SetOnReferenceVariant) {
  GClockOptions options;
  options.increment_on_reference = false;
  options.reference_increment = 3;
  options.max_count = 8;
  GClockPolicy gclock(options);
  gclock.Admit(1, AccessType::kRead);
  for (int i = 0; i < 10; ++i) gclock.RecordAccess(1, AccessType::kRead);
  gclock.Admit(2, AccessType::kRead);
  gclock.RecordAccess(2, AccessType::kRead);
  // Page 1 saturates at 3 (set, not accumulate); page 2 also has 3; both
  // equal so the sweep order decides — just assert it terminates.
  EXPECT_TRUE(gclock.Evict().has_value());
}

// ---------- LRD ----------

TEST(LrdTest, EvictsLowestDensity) {
  LrdPolicy lrd;
  lrd.Admit(1, AccessType::kRead);  // clock 1, admitted at 0.
  lrd.Admit(2, AccessType::kRead);  // clock 2, admitted at 1.
  // Ten more references to page 1.
  for (int i = 0; i < 10; ++i) lrd.RecordAccess(1, AccessType::kRead);
  EXPECT_GT(lrd.Density(1), lrd.Density(2));
  EXPECT_EQ(lrd.Evict(), std::optional<PageId>(2));
}

TEST(LrdTest, AgingDecaysCounts) {
  LrdOptions options;
  options.aging_interval = 4;
  options.aging_divisor = 4;
  LrdPolicy lrd(options);
  EXPECT_EQ(lrd.Name(), "LRD-V2");
  lrd.Admit(1, AccessType::kRead);
  lrd.RecordAccess(1, AccessType::kRead);
  lrd.RecordAccess(1, AccessType::kRead);
  double before = lrd.Density(1);
  lrd.RecordAccess(1, AccessType::kRead);  // Tick 4: counts /= 4.
  double after = lrd.Density(1);
  EXPECT_LT(after, before);
}

TEST(LrdTest, V1NameAndDeterministicTieBreak) {
  LrdPolicy lrd;
  EXPECT_EQ(lrd.Name(), "LRD-V1");
  lrd.Admit(5, AccessType::kRead);
  lrd.Admit(9, AccessType::kRead);
  lrd.Admit(9000, AccessType::kRead);
  // Densities differ slightly by age; just check a victim emerges and the
  // policy drains fully.
  int evicted = 0;
  while (lrd.Evict().has_value()) ++evicted;
  EXPECT_EQ(evicted, 3);
}

// ---------- RANDOM ----------

TEST(RandomPolicyTest, EvictsOnlyResidentEvictablePages) {
  RandomPolicy random(7);
  for (PageId p = 0; p < 10; ++p) random.Admit(p, AccessType::kRead);
  random.SetEvictable(3, false);
  std::unordered_set<PageId> evicted;
  for (int i = 0; i < 9; ++i) {
    auto v = random.Evict();
    ASSERT_TRUE(v.has_value());
    EXPECT_NE(*v, 3u);
    EXPECT_TRUE(evicted.insert(*v).second) << "double eviction";
  }
  EXPECT_EQ(random.Evict(), std::nullopt);
  EXPECT_TRUE(random.IsResident(3));
}

TEST(RandomPolicyTest, DeterministicUnderSeed) {
  RandomPolicy a(123);
  RandomPolicy b(123);
  for (PageId p = 0; p < 20; ++p) {
    a.Admit(p, AccessType::kRead);
    b.Admit(p, AccessType::kRead);
  }
  for (int i = 0; i < 20; ++i) ASSERT_EQ(a.Evict(), b.Evict());
}

// ---------- Parameterized interface contract ----------

using PolicyFactory = std::function<std::unique_ptr<ReplacementPolicy>()>;

struct NamedFactory {
  std::string label;
  PolicyFactory make;
};

class PolicyContractTest : public ::testing::TestWithParam<NamedFactory> {};

TEST_P(PolicyContractTest, EmptyPolicyHasNothingToEvict) {
  auto policy = GetParam().make();
  EXPECT_EQ(policy->Evict(), std::nullopt);
  EXPECT_EQ(policy->ResidentCount(), 0u);
  EXPECT_EQ(policy->EvictableCount(), 0u);
}

TEST_P(PolicyContractTest, AdmitEvictRoundTrip) {
  auto policy = GetParam().make();
  policy->Admit(42, AccessType::kRead);
  EXPECT_TRUE(policy->IsResident(42));
  auto victim = policy->Evict();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 42u);
  EXPECT_FALSE(policy->IsResident(42));
}

TEST_P(PolicyContractTest, EvictedPagesAreDistinctAndResident) {
  auto policy = GetParam().make();
  constexpr size_t kPages = 32;
  for (PageId p = 0; p < kPages; ++p) policy->Admit(p, AccessType::kRead);
  std::unordered_set<PageId> evicted;
  for (size_t i = 0; i < kPages; ++i) {
    auto v = policy->Evict();
    ASSERT_TRUE(v.has_value());
    ASSERT_LT(*v, kPages);
    ASSERT_TRUE(evicted.insert(*v).second);
  }
  EXPECT_EQ(policy->Evict(), std::nullopt);
}

TEST_P(PolicyContractTest, PinningExcludesFromEviction) {
  auto policy = GetParam().make();
  for (PageId p = 0; p < 8; ++p) policy->Admit(p, AccessType::kRead);
  for (PageId p = 0; p < 8; p += 2) policy->SetEvictable(p, false);
  EXPECT_EQ(policy->EvictableCount(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto v = policy->Evict();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v % 2, 1u) << "evicted a pinned page";
  }
  EXPECT_EQ(policy->Evict(), std::nullopt);
  EXPECT_EQ(policy->ResidentCount(), 4u);
}

TEST_P(PolicyContractTest, ForEachResidentEnumeratesExactly) {
  auto policy = GetParam().make();
  std::unordered_set<PageId> expected;
  for (PageId p = 0; p < 10; ++p) {
    policy->Admit(p, AccessType::kRead);
    expected.insert(p);
  }
  policy->SetEvictable(4, false);  // Pinned pages are still resident.
  auto victim = policy->Evict();
  ASSERT_TRUE(victim.has_value());
  expected.erase(*victim);
  std::unordered_set<PageId> seen;
  policy->ForEachResident([&seen](PageId p) {
    EXPECT_TRUE(seen.insert(p).second) << "page visited twice";
  });
  EXPECT_EQ(seen, expected);
}

TEST_P(PolicyContractTest, RemoveForgetsResidency) {
  auto policy = GetParam().make();
  policy->Admit(1, AccessType::kRead);
  policy->Admit(2, AccessType::kRead);
  policy->Remove(2);
  EXPECT_FALSE(policy->IsResident(2));
  EXPECT_EQ(policy->ResidentCount(), 1u);
  auto v = policy->Evict();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
}

TEST_P(PolicyContractTest, CountsSurviveMixedWorkload) {
  auto policy = GetParam().make();
  RandomEngine rng(55);
  std::unordered_set<PageId> resident;
  std::unordered_set<PageId> pinned;
  for (int step = 0; step < 2000; ++step) {
    PageId p = rng.NextBounded(24);
    if (resident.contains(p)) {
      policy->RecordAccess(p, AccessType::kRead);
    } else {
      if (resident.size() == 12) {
        auto v = policy->Evict();
        if (v.has_value()) {
          resident.erase(*v);
          pinned.erase(*v);
        } else {
          continue;
        }
      }
      policy->Admit(p, AccessType::kRead);
      resident.insert(p);
    }
    if (step % 37 == 0 && !resident.empty()) {
      PageId q = *resident.begin();
      bool evictable = pinned.contains(q);
      policy->SetEvictable(q, evictable);
      if (evictable) {
        pinned.erase(q);
      } else {
        pinned.insert(q);
      }
    }
    ASSERT_EQ(policy->ResidentCount(), resident.size());
    ASSERT_EQ(policy->EvictableCount(), resident.size() - pinned.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyContractTest,
    ::testing::Values(
        NamedFactory{"LRU",
                     [] { return std::make_unique<LruPolicy>(); }},
        NamedFactory{"LRU2",
                     [] {
                       LruKOptions o;
                       o.k = 2;
                       return std::make_unique<LruKPolicy>(o);
                     }},
        NamedFactory{"LRU3",
                     [] {
                       LruKOptions o;
                       o.k = 3;
                       return std::make_unique<LruKPolicy>(o);
                     }},
        NamedFactory{"LRU2crp",
                     [] {
                       LruKOptions o;
                       o.k = 2;
                       o.correlated_reference_period = 5;
                       return std::make_unique<LruKPolicy>(o);
                     }},
        NamedFactory{"LFU", [] { return std::make_unique<LfuPolicy>(); }},
        NamedFactory{"FIFO", [] { return std::make_unique<FifoPolicy>(); }},
        NamedFactory{"CLOCK",
                     [] { return std::make_unique<ClockPolicy>(); }},
        NamedFactory{"GCLOCK",
                     [] { return std::make_unique<GClockPolicy>(); }},
        NamedFactory{"LRD", [] { return std::make_unique<LrdPolicy>(); }},
        NamedFactory{"MRU", [] { return std::make_unique<MruPolicy>(); }},
        NamedFactory{"RANDOM",
                     [] { return std::make_unique<RandomPolicy>(3); }},
        NamedFactory{"TwoQ",
                     [] {
                       TwoQOptions o;
                       o.capacity = 32;
                       return std::make_unique<TwoQPolicy>(o);
                     }},
        NamedFactory{"ARC",
                     [] { return std::make_unique<ArcPolicy>(32); }},
        NamedFactory{"DomainSep",
                     [] {
                       DomainSeparationOptions o;
                       o.classifier = [](PageId p) {
                         return static_cast<uint32_t>(p % 2);
                       };
                       o.domain_capacities = {16, 16};
                       return std::make_unique<DomainSeparationPolicy>(o);
                     }}),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace lruk
