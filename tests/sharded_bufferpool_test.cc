// ShardedBufferPool tests.
//
// The anchor is a differential test: with a single shard the sharded pool
// routes every page to one unmodified BufferPool, so on any deterministic
// trace it must produce byte-for-byte identical hit/miss/eviction/
// write-back counters to a standalone BufferPool — the sharding layer adds
// routing, never behaviour. Multi-shard runs then check the invariants
// that survive partitioning: resident count bounded by capacity, stats
// summing across shards, pinned pages never evicted, FlushAll leaving no
// dirty residents, and the hit-counting semantics matching BufferPool's
// (re-pins of already-pinned pages count as hits).

#include <memory>
#include <vector>

#include "bufferpool/buffer_pool.h"
#include "bufferpool/page_guard.h"
#include "bufferpool/sharded_buffer_pool.h"
#include "core/lru_k.h"
#include "core/policy_factory.h"
#include "gtest/gtest.h"
#include "storage/sim_disk_manager.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lruk {
namespace {

constexpr uint64_t kDbPages = 192;
constexpr size_t kCapacity = 48;
constexpr int kTraceLen = 30000;

ShardPolicyFactory LruK2Factory() {
  auto factory = MakeShardPolicyFactory(PolicyConfig::LruK(2));
  EXPECT_TRUE(factory.ok());
  return *factory;
}

// One step of the deterministic trace applied to any pool: mostly fetch/
// unpin (20% writes), occasional explicit flushes. Returns false on an
// unexpected failure.
template <typename Pool>
void DriveTrace(Pool& pool, const std::vector<PageId>& pages, uint64_t seed) {
  RecursiveSkewDistribution dist(0.8, 0.2, pages.size());
  RandomEngine rng(seed);
  for (int i = 0; i < kTraceLen; ++i) {
    PageId p = pages[dist.Sample(rng) - 1];
    bool write = rng.NextBernoulli(0.2);
    auto page = pool.FetchPage(
        p, write ? AccessType::kWrite : AccessType::kRead);
    ASSERT_TRUE(page.ok()) << i;
    ASSERT_TRUE(pool.UnpinPage(p, false).ok()) << i;
    if (i % 997 == 0) {
      ASSERT_TRUE(pool.FlushPage(p).ok()) << i;
    }
  }
}

std::vector<PageId> AllocateDb(PoolInterface& pool, uint64_t n) {
  std::vector<PageId> pages;
  for (uint64_t i = 0; i < n; ++i) {
    auto page = pool.NewPage();
    EXPECT_TRUE(page.ok());
    pages.push_back((*page)->id());
    EXPECT_TRUE(pool.UnpinPage((*page)->id(), true).ok());
  }
  return pages;
}

TEST(ShardedDifferentialTest, OneShardMatchesBufferPoolExactly) {
  SimDiskManager flat_disk;
  BufferPool flat(kCapacity, &flat_disk,
                  std::make_unique<LruKPolicy>(LruKOptions{.k = 2}));

  SimDiskManager sharded_disk;
  ShardedBufferPool sharded(kCapacity, /*num_shards=*/1, &sharded_disk,
                            LruK2Factory());
  ASSERT_EQ(sharded.shard_count(), 1u);
  ASSERT_EQ(sharded.shard(0).capacity(), kCapacity);

  std::vector<PageId> flat_pages = AllocateDb(flat, kDbPages);
  std::vector<PageId> sharded_pages = AllocateDb(sharded, kDbPages);
  ASSERT_EQ(flat_pages, sharded_pages);  // Same allocator, same ids.

  DriveTrace(flat, flat_pages, /*seed=*/20260806);
  DriveTrace(sharded, sharded_pages, /*seed=*/20260806);

  BufferPoolStats a = flat.stats();
  BufferPoolStats b = sharded.stats();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.dirty_writebacks, b.dirty_writebacks);
  EXPECT_GT(a.hits, 0u);
  EXPECT_GT(a.evictions, 0u);

  // Same resident set, not just same counters.
  EXPECT_EQ(flat.ResidentCount(), sharded.ResidentCount());
  for (PageId p : flat_pages) {
    EXPECT_EQ(flat.IsResident(p), sharded.IsResident(p)) << "page " << p;
  }
}

TEST(ShardedBufferPoolTest, FramesPartitionWithRemainderHandling) {
  SimDiskManager disk;
  // 37 frames over 8 shards: 5,5,5,5,5,4,4,4.
  ShardedBufferPool pool(37, 8, &disk, LruK2Factory());
  size_t total = 0;
  for (size_t i = 0; i < pool.shard_count(); ++i) {
    size_t c = pool.shard(i).capacity();
    EXPECT_EQ(c, i < 5 ? 5u : 4u) << "shard " << i;
    total += c;
  }
  EXPECT_EQ(total, 37u);
  EXPECT_EQ(pool.capacity(), 37u);
}

TEST(ShardedBufferPoolTest, RoutingIsStableAndConsistent) {
  SimDiskManager disk;
  ShardedBufferPool pool(32, 4, &disk, LruK2Factory());
  std::vector<PageId> pages = AllocateDb(pool, 64);
  for (PageId p : pages) {
    size_t s = pool.ShardOf(p);
    ASSERT_LT(s, pool.shard_count());
    EXPECT_EQ(pool.ShardOf(p), s);  // Pure function of the id.
    EXPECT_EQ(pool.IsResident(p), pool.shard(s).IsResident(p));
    for (size_t other = 0; other < pool.shard_count(); ++other) {
      if (other != s) {
        EXPECT_FALSE(pool.shard(other).IsResident(p));
      }
    }
  }
}

TEST(ShardedBufferPoolTest, MultiShardInvariantsUnderZipfianTraffic) {
  SimDiskManager disk;
  ShardedBufferPool pool(kCapacity, 4, &disk, LruK2Factory());
  std::vector<PageId> pages = AllocateDb(pool, kDbPages);

  // Pin a handful of pages for the whole run; their payloads must survive
  // any amount of eviction pressure around them.
  std::vector<PageId> pinned(pages.begin(), pages.begin() + 8);
  for (PageId p : pinned) {
    auto page = pool.FetchPage(p, AccessType::kWrite);
    ASSERT_TRUE(page.ok());
    *(*page)->As<PageId>() = p ^ 0xABCDEF;
  }

  DriveTrace(pool, pages, /*seed=*/99);

  // Resident count never exceeds capacity (checked at the end and per
  // shard, whose pools enforce it structurally).
  EXPECT_LE(pool.ResidentCount(), pool.capacity());
  size_t resident_sum = 0;
  for (size_t i = 0; i < pool.shard_count(); ++i) {
    EXPECT_LE(pool.shard(i).ResidentCount(), pool.shard(i).capacity());
    resident_sum += pool.shard(i).ResidentCount();
  }
  EXPECT_EQ(resident_sum, pool.ResidentCount());

  // Aggregate stats are exactly the per-shard sum, and every shard saw
  // traffic (the id mix spreads a Zipfian head across shards).
  BufferPoolStats sum;
  for (const BufferPoolStats& s : pool.ShardStats()) {
    EXPECT_GT(s.hits + s.misses, 0u);
    sum += s;
  }
  BufferPoolStats aggregate = pool.stats();
  EXPECT_EQ(sum.hits, aggregate.hits);
  EXPECT_EQ(sum.misses, aggregate.misses);
  EXPECT_EQ(sum.evictions, aggregate.evictions);
  EXPECT_EQ(sum.dirty_writebacks, aggregate.dirty_writebacks);

  // Pinned pages were never evicted and kept their payloads.
  for (PageId p : pinned) {
    ASSERT_TRUE(pool.IsResident(p));
    auto page = pool.FetchPage(p);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->pin_count(), 2);  // Original pin + this fetch.
    EXPECT_EQ(*(*page)->As<PageId>(), p ^ 0xABCDEF);
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
    ASSERT_TRUE(pool.UnpinPage(p, true).ok());  // Drop the long-lived pin.
  }

  // FlushAll leaves no dirty resident page in any shard.
  ASSERT_TRUE(pool.FlushAll().ok());
  for (PageId p : pages) {
    if (!pool.IsResident(p)) continue;
    auto page = pool.FetchPage(p);  // kRead: does not re-dirty.
    ASSERT_TRUE(page.ok());
    EXPECT_FALSE((*page)->is_dirty()) << "page " << p;
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  }
}

TEST(ShardedBufferPoolTest, RePinningAPinnedPageCountsAsAHitLikeBufferPool) {
  // The documented BufferPoolStats semantics: every fetch of a resident
  // page is a hit, pinned or not. The sharded pool must count identically.
  SimDiskManager disk;
  ShardedBufferPool pool(8, 2, &disk, LruK2Factory());
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId p = (*page)->id();
  EXPECT_EQ(pool.stats().hits, 0u);   // NewPage counts neither.
  EXPECT_EQ(pool.stats().misses, 0u);

  auto repin = pool.FetchPage(p);     // Still pinned by NewPage.
  ASSERT_TRUE(repin.ok());
  EXPECT_EQ((*repin)->pin_count(), 2);
  auto repin2 = pool.FetchPage(p);
  ASSERT_TRUE(repin2.ok());
  EXPECT_EQ((*repin2)->pin_count(), 3);

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 1.0);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(pool.UnpinPage(p, false).ok());
}

TEST(ShardedBufferPoolTest, DeletePageFreesTheFrameAndTheDiskPage) {
  SimDiskManager disk;
  ShardedBufferPool pool(8, 2, &disk, LruK2Factory());
  std::vector<PageId> pages = AllocateDb(pool, 4);
  EXPECT_EQ(disk.NumAllocatedPages(), 4u);

  // Pinned pages cannot be deleted.
  auto held = pool.FetchPage(pages[0]);
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(pool.DeletePage(pages[0]).ok());
  ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());

  ASSERT_TRUE(pool.DeletePage(pages[0]).ok());
  EXPECT_FALSE(pool.IsResident(pages[0]));
  EXPECT_EQ(disk.NumAllocatedPages(), 3u);
  EXPECT_FALSE(pool.FetchPage(pages[0]).ok());  // Gone from disk too.
}

TEST(ShardedBufferPoolTest, PageGuardWorksOverTheSharedInterface) {
  SimDiskManager disk;
  ShardedBufferPool pool(8, 2, &disk, LruK2Factory());
  PageId p;
  {
    auto guard = PageGuard::New(pool);
    ASSERT_TRUE(guard.ok());
    p = guard->id();
    *guard->AsMut<uint64_t>() = 7777;
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  {
    auto guard = PageGuard::Fetch(pool, p);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(*guard->As<uint64_t>(), 7777u);
  }
  auto check = pool.FetchPage(p);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ((*check)->pin_count(), 1);  // Guards balanced their pins.
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
}

TEST(ShardedBufferPoolTest, ResourceExhaustedWhenOwningShardFullyPinned) {
  SimDiskManager disk;
  ShardedBufferPool pool(4, 2, &disk, LruK2Factory());
  // Allocate until one shard is fully pinned, keeping everything pinned.
  std::vector<PageId> held;
  Status failure = Status::Ok();
  for (int i = 0; i < 64; ++i) {
    auto page = pool.NewPage();
    if (!page.ok()) {
      failure = page.status();
      break;
    }
    held.push_back((*page)->id());
  }
  EXPECT_EQ(failure.code(), StatusCode::kResourceExhausted);
  // The documented weakening: the pool as a whole may still have free
  // frames — only the owning shard matters.
  EXPECT_LE(held.size(), pool.capacity());
  for (PageId p : held) ASSERT_TRUE(pool.UnpinPage(p, true).ok());
}

}  // namespace
}  // namespace lruk
